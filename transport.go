package damulticast

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"damulticast/internal/core"
)

// Transport carries encoded protocol messages between nodes.
// Implementations must be safe for concurrent use; Send may be called
// from the node's protocol goroutine while the receive path runs on
// transport goroutines. Delivery is best-effort: Send errors are
// treated as channel losses by the protocol.
//
// The payload passed to Send is only valid for the duration of the
// call: the sender fans the same pooled buffer out to many peers and
// reuses it afterwards, so implementations that deliver or transmit
// asynchronously must copy first.
//
// On receive the ownership flips: the buffer passed to the handler
// belongs to the handler — the transport must hand it a fresh buffer
// per frame and never touch it again. The hub relies on this to queue
// raw frames and decode them in place without copying; both bundled
// transports comply (TCPTransport reads each frame into a new buffer,
// MemTransport copies before enqueueing).
type Transport interface {
	// Addr returns the address other nodes use to reach this
	// transport; it doubles as the node's default process id.
	Addr() string
	// Send transmits payload to the transport at addr. It must not
	// retain payload past its return.
	Send(addr string, payload []byte) error
	// SetHandler installs the receive callback. Must be called before
	// any delivery; Node.Start does this. Each call to the handler
	// transfers ownership of the payload buffer to the handler.
	SetHandler(func(payload []byte))
	// Close releases resources; subsequent Sends fail.
	Close() error
}

// encodeMessageJSON serializes a protocol message as JSON — the wire
// format of format version 0, kept for migration tooling and the
// cross-decode tests. The live path uses the binary codec (codec.go).
func encodeMessageJSON(m *core.Message) ([]byte, error) {
	return json.Marshal(m)
}

// decodeMessageJSON parses a frame produced by encodeMessageJSON.
// Frames that are not valid JSON — including binary frames, whose
// leading version byte can never open a JSON document — or whose
// message type is missing or unknown, are rejected.
func decodeMessageJSON(payload []byte) (*core.Message, error) {
	var m core.Message
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, fmt.Errorf("damulticast: decode: %w", err)
	}
	if !m.Type.Known() {
		return nil, fmt.Errorf("damulticast: decode: unknown message type %d", int(m.Type))
	}
	return &m, nil
}

// Transport errors.
var (
	ErrTransportClosed = errors.New("damulticast: transport closed")
	ErrUnknownAddr     = errors.New("damulticast: unknown address")
	ErrDuplicateAddr   = errors.New("damulticast: duplicate address")
)

// MemNetwork is an in-process transport fabric for tests, examples and
// single-binary deployments: every MemTransport created from it can
// reach every other by address. Optionally lossy (LossRate) to emulate
// the paper's unreliable channels.
type MemNetwork struct {
	mu         sync.RWMutex
	transports map[string]*MemTransport
	// LossRate in [0,1) drops that fraction of frames (test aid).
	lossRate float64
	lossSeq  uint64
}

// NewMemNetwork creates an empty fabric.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{transports: make(map[string]*MemTransport)}
}

// SetLossRate makes the fabric drop the given fraction of frames,
// deterministically interleaved (every k-th frame pattern), which
// keeps tests reproducible without a shared random source.
func (n *MemNetwork) SetLossRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if rate < 0 {
		rate = 0
	}
	if rate >= 1 {
		rate = 0.999
	}
	n.lossRate = rate
}

// NewTransport registers a new endpoint with the given address.
// Panics on duplicate addresses (programming error in fixtures).
func (n *MemNetwork) NewTransport(addr string) *MemTransport {
	t, err := n.AddTransport(addr)
	if err != nil {
		panic(err)
	}
	return t
}

// AddTransport registers a new endpoint, failing on duplicates.
func (n *MemNetwork) AddTransport(addr string) (*MemTransport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.transports[addr]; dup {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateAddr, addr)
	}
	t := &MemTransport{
		net:   n,
		addr:  addr,
		queue: make(chan []byte, memDeliveryQueue),
		done:  make(chan struct{}),
	}
	n.transports[addr] = t
	go t.deliverLoop()
	return t, nil
}

// deliver routes a frame to the destination's handler, applying loss.
func (n *MemNetwork) deliver(to string, payload []byte) error {
	n.mu.RLock()
	target, ok := n.transports[to]
	loss := n.lossRate
	n.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	if loss > 0 {
		n.mu.Lock()
		n.lossSeq++
		drop := float64(n.lossSeq%1000) < loss*1000
		n.mu.Unlock()
		if drop {
			return nil // silently lost, like a UDP drop
		}
	}
	// Skip the copy when nothing will consume the frame (endpoint
	// closed or no handler installed yet) — the old pre-queue fast path.
	target.mu.RLock()
	listening := target.handler != nil && !target.closed
	target.mu.RUnlock()
	if !listening {
		return nil
	}
	// Copy the payload: the receiver must never alias sender buffers
	// (the sender reuses pooled encode buffers after Send returns).
	cp := make([]byte, len(payload))
	copy(cp, payload)
	target.enqueue(cp)
	return nil
}

// remove unregisters a closed endpoint.
func (n *MemNetwork) remove(addr string) {
	n.mu.Lock()
	delete(n.transports, addr)
	n.mu.Unlock()
}

// memDeliveryQueue bounds each endpoint's inbound frame queue. Frames
// arriving while the queue is full are dropped, like any other channel
// loss — the protocol is built for that.
const memDeliveryQueue = 4096

// MemTransport is one endpoint of a MemNetwork.
//
// Inbound frames flow through a bounded queue drained by a single
// delivery goroutine per endpoint, so a burst of senders costs one
// goroutine instead of one per frame and every peer observes a stable
// FIFO delivery order.
type MemTransport struct {
	net   *MemNetwork
	addr  string
	queue chan []byte
	done  chan struct{}

	mu      sync.RWMutex
	handler func([]byte)
	closed  bool
}

// enqueue appends one inbound frame, dropping it when the queue is
// full or the endpoint closed.
func (t *MemTransport) enqueue(payload []byte) {
	select {
	case <-t.done:
	case t.queue <- payload:
	default: // queue full: lost, like a UDP drop
	}
}

// deliverLoop serially hands queued frames to the handler.
func (t *MemTransport) deliverLoop() {
	for {
		select {
		case <-t.done:
			return
		case payload := <-t.queue:
			t.mu.RLock()
			h := t.handler
			closed := t.closed
			t.mu.RUnlock()
			if closed {
				return
			}
			if h != nil {
				h(payload)
			}
		}
	}
}

var _ Transport = (*MemTransport)(nil)

// Addr returns the endpoint address.
func (t *MemTransport) Addr() string { return t.addr }

// SetHandler installs the receive callback.
func (t *MemTransport) SetHandler(h func([]byte)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// Send routes a frame through the fabric.
func (t *MemTransport) Send(addr string, payload []byte) error {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return ErrTransportClosed
	}
	return t.net.deliver(addr, payload)
}

// Close unregisters the endpoint and stops its delivery goroutine.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	t.net.remove(t.addr)
	return nil
}
