package damulticast

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"damulticast/internal/core"
)

// TestRacePublishDuringStop is the liveness gate for Publish and
// Leave racing Stop: every publisher must return promptly — with a
// published id, ErrNotRunning, or core.ErrStopped — no matter how the
// shutdown interleaves. The reply/ack waits are guarded by n.done
// (see Publish); this hammer keeps that guarantee from regressing if
// the loop's channel discipline ever changes.
func TestRacePublishDuringStop(t *testing.T) {
	for round := 0; round < 25; round++ {
		net := NewMemNetwork()
		n, err := NewNode(Config{
			ID:           "solo",
			Topic:        ".x",
			Transport:    net.NewTransport("solo"),
			Params:       liveParams(),
			TickInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(context.Background()); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					if _, err := n.Publish([]byte("spin")); err != nil {
						// ErrNotRunning when the node stopped first;
						// core.ErrStopped when the loop serviced the
						// publish after Leave stopped the process.
						if !errors.Is(err, ErrNotRunning) && !errors.Is(err, core.ErrStopped) {
							t.Errorf("publish error = %v", err)
						}
						return
					}
				}
			}()
		}
		// A concurrent Leave exercises the same shutdown race on the
		// ack channel.
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = n.Leave()
		}()
		time.Sleep(time.Duration(rand.Intn(3)) * time.Millisecond)
		if err := n.Stop(); err != nil {
			t.Fatal(err)
		}
		wg.Wait() // deadlocks here without the done-channel escape
	}
}

// TestDroppedFramesCounted feeds the receive path garbage and floods
// the inbox of a stopped loop: both loss classes must be counted and
// surfaced by DroppedFrames/Stats instead of vanishing silently.
func TestDroppedFramesCounted(t *testing.T) {
	net := NewMemNetwork()
	n, err := NewNode(Config{ID: "sink", Topic: ".x", Transport: net.NewTransport("sink")})
	if err != nil {
		t.Fatal(err)
	}

	// Malformed frames: the receive callback rejects anything whose
	// routing prefix (version, type, dest) doesn't parse — wrong
	// version byte, legacy JSON, truncation inside the prefix, empty.
	// (Frames with a valid prefix but broken body are counted too, at
	// the loop's full decode; TestGarbageFramesOverTransport covers
	// that end to end.)
	valid, err := encodeMessage(&core.Message{Type: core.MsgPing, From: "peer", FromTopic: ".x"})
	if err != nil {
		t.Fatal(err)
	}
	for _, frame := range [][]byte{
		[]byte("complete garbage"),
		[]byte(`{"Type":1}`),
		valid[:1],
		{},
	} {
		n.onRaw(frame)
	}
	if got := n.MalformedFrames(); got != 4 {
		t.Errorf("MalformedFrames = %d, want 4", got)
	}

	// Overflow: the node is not started, so nothing drains the inbox;
	// filling it past capacity must count overflow drops.
	overflow := cap(n.inbox) + 7
	for i := 0; i < overflow; i++ {
		n.onRaw(valid)
	}
	stats := n.Stats()
	if stats.OverflowFrames != 7 {
		t.Errorf("OverflowFrames = %d, want 7", stats.OverflowFrames)
	}
	if stats.MalformedFrames != 4 {
		t.Errorf("Stats().MalformedFrames = %d, want 4", stats.MalformedFrames)
	}
	if got, want := n.DroppedFrames(), int64(4+7); got != want {
		t.Errorf("DroppedFrames = %d, want %d", got, want)
	}
}

// TestGarbageFramesOverTransport covers the same counter end-to-end: a
// peer speaking garbage over the shared fabric is counted, not
// crashed on, and the node keeps working.
func TestGarbageFramesOverTransport(t *testing.T) {
	net := NewMemNetwork()
	n, err := NewNode(Config{
		ID:           "victim",
		Topic:        ".x",
		Transport:    net.NewTransport("victim"),
		Params:       liveParams(),
		TickInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Stop() })

	attacker := net.NewTransport("attacker")
	for i := 0; i < 5; i++ {
		if err := attacker.Send("victim", []byte("\x7fnot a frame")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for n.MalformedFrames() < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("malformed frames = %d, want 5", n.MalformedFrames())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := n.Publish([]byte("still alive")); err != nil {
		t.Errorf("node unusable after garbage: %v", err)
	}
}

// TestLiveRecoveryPullsMissedEvent: a node that joins after a
// publication pulls the missed event from a group mate's store via the
// anti-entropy exchange — delivery of an event that was never sent to
// it.
func TestLiveRecoveryPullsMissedEvent(t *testing.T) {
	params := liveParams()
	params.RecoverPeriod = 1
	params.RecoverMaxAge = 100000 // the store must outlive test scheduling
	net := NewMemNetwork()
	ctx := context.Background()

	holder, err := NewNode(Config{
		ID:           "holder",
		Topic:        ".room",
		Transport:    net.NewTransport("holder"),
		Params:       params,
		TickInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = holder.Stop() })

	// Publish while the late joiner does not exist yet: this event can
	// only ever reach it through recovery.
	missedID, err := holder.Publish([]byte("you missed this"))
	if err != nil {
		t.Fatal(err)
	}

	late, err := NewNode(Config{
		ID:            "late",
		Topic:         ".room",
		Transport:     net.NewTransport("late"),
		Params:        params,
		GroupContacts: []string{"holder"},
		TickInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := late.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = late.Stop() })

	select {
	case ev := <-late.Events():
		if ev.ID != missedID {
			t.Fatalf("late node got %s, want %s", ev.ID, missedID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("late node never recovered the missed event")
	}
	// The event may arrive via either recovery path: pushed directly in
	// answer to the late node's empty digest (no request drawn), or
	// pulled after the holder's digest exposed the gap (one request).
	if st := late.RecoveryStats(); st.Recovered != 1 {
		t.Errorf("late recovery stats = %+v, want exactly 1 recovered", st)
	}
}
