// Command damcd runs a live daMulticast node over TCP: it subscribes
// to one topic, prints every delivered event to stdout, and publishes
// each line read from stdin as an event of its topic.
//
// Usage:
//
//	damcd -listen :7001 -topic .news
//	damcd -listen :7002 -topic .news.sports \
//	      -super-topic .news -super 127.0.0.1:7001 \
//	      -peers 127.0.0.1:7003,127.0.0.1:7004
//
// A small cluster can be assembled by hand: start the supergroup
// first, then point subgroup nodes at it with -super (or let them find
// it via -seeds and the FIND_SUPER_CONTACT search).
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"damulticast"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "damcd:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("damcd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address (also the node id)")
	tp := fs.String("topic", "", "topic of interest, e.g. .news.sports")
	peers := fs.String("peers", "", "comma-separated group-mate addresses")
	super := fs.String("super", "", "comma-separated supergroup addresses")
	superTopic := fs.String("super-topic", "", "topic of the -super contacts")
	seeds := fs.String("seeds", "", "comma-separated bootstrap seed addresses")
	tick := fs.Duration("tick", 250*time.Millisecond, "protocol tick interval")
	once := fs.Bool("once", false, "exit after stdin is exhausted (for scripting)")
	params := damulticast.DefaultParams()
	fs.Float64Var(&params.C, "c", params.C, "gossip fanout constant c (fanout = ln S + c)")
	fs.Float64Var(&params.G, "g", params.G, "self-election numerator g (pSel = g/S)")
	fs.Float64Var(&params.A, "a", params.A, "upward-send numerator a (pA = a/z)")
	fs.IntVar(&params.Z, "z", params.Z, "supertopic table size z")
	fs.IntVar(&params.RecoverPeriod, "recover", params.RecoverPeriod,
		"anti-entropy recovery wave period in ticks (0 disables recovery)")
	fs.IntVar(&params.RecoverFanout, "recover-fanout", params.RecoverFanout,
		"group mates contacted per recovery wave")
	fs.IntVar(&params.RecoverStoreCap, "recover-store", params.RecoverStoreCap,
		"recovery event-store capacity (events)")
	fs.IntVar(&params.RecoverMaxAge, "recover-age", params.RecoverMaxAge,
		"recovery store age bound in ticks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tp == "" {
		return fmt.Errorf("-topic is required")
	}

	tr, err := damulticast.NewTCPTransport(*listen)
	if err != nil {
		return err
	}
	node, err := damulticast.NewNode(damulticast.Config{
		Topic:         *tp,
		Transport:     tr,
		Params:        params,
		GroupContacts: splitList(*peers),
		SuperContacts: splitList(*super),
		SuperTopic:    *superTopic,
		Seeds:         splitList(*seeds),
		TickInterval:  *tick,
	})
	if err != nil {
		_ = tr.Close()
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	if err := node.Start(ctx); err != nil {
		return err
	}
	defer func() { _ = node.Stop() }()
	fmt.Fprintf(stdout, "damcd: node %s subscribed to %s\n", node.ID(), node.Topic())

	// Delivery printer.
	go func() {
		for ev := range node.Events() {
			fmt.Fprintf(stdout, "[%s] %s: %s\n", ev.Topic, ev.ID, ev.Payload)
		}
	}()

	// Publish stdin lines.
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return nil
		case line, ok := <-lines:
			if !ok {
				if *once {
					// Give in-flight gossip a moment before exiting.
					time.Sleep(2 * *tick)
					return nil
				}
				<-ctx.Done()
				return nil
			}
			if line == "" {
				continue
			}
			id, err := node.Publish([]byte(line))
			if err != nil {
				return fmt.Errorf("publish: %w", err)
			}
			fmt.Fprintf(stdout, "published %s\n", id)
		}
	}
}
