// Command damcd runs a live daMulticast hub over TCP: one listen
// socket multiplexing any number of topic subscriptions. It prints
// every delivered event to stdout and publishes each line read from
// stdin as an event of its first topic.
//
// Usage:
//
//	damcd -listen :7001 -topic .news
//	damcd -listen :7002 -topics .news,.market.nyse -seeds 127.0.0.1:7001
//	damcd -listen :7003 -topic .news.sports \
//	      -super-topic .news -super 127.0.0.1:7001 \
//	      -peers 127.0.0.1:7004,127.0.0.1:7005
//
// A small cluster can be assembled by hand: start the supergroup
// first, then point subgroup nodes at it with -super (or let them find
// it via -seeds and the FIND_SUPER_CONTACT search). With -topics the
// hub joins every listed topic over the same socket; -peers and
// -super/-super-topic apply to the first topic, -seeds to all of them.
//
// With -metricsaddr the hub's counters are served in the Prometheus
// text format:
//
//	damcd -listen :7001 -topic .news -metricsaddr 127.0.0.1:9100
//	curl http://127.0.0.1:9100/metrics
//
// Soak mode stands up a whole in-process cluster instead of one hub
// and drives it through a seeded fault schedule (kills, restarts, a
// partition, a loss burst), grading delivery against an SLO:
//
//	damcd -soak 24 -soakseed 7 -soaksteps 14 -soakslo 0.99
//
// The exit status reports whether the SLO was met; the same seed
// always replays the same schedule.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"damulticast"
	"damulticast/internal/chaos"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "damcd:", err)
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("damcd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address (also the hub id)")
	tp := fs.String("topic", "", "topic of interest, e.g. .news.sports")
	topics := fs.String("topics", "", "comma-separated topics to join over the one socket (first is the publish topic)")
	peers := fs.String("peers", "", "comma-separated group-mate addresses (first topic)")
	super := fs.String("super", "", "comma-separated supergroup addresses (first topic)")
	superTopic := fs.String("super-topic", "", "topic of the -super contacts")
	seeds := fs.String("seeds", "", "comma-separated bootstrap seed addresses (all topics)")
	tick := fs.Duration("tick", 250*time.Millisecond, "protocol tick interval")
	once := fs.Bool("once", false, "exit after stdin is exhausted (for scripting)")
	metricsAddr := fs.String("metricsaddr", "", "serve Prometheus metrics on this address at /metrics (empty disables)")
	soak := fs.Int("soak", 0, "soak mode: stand up this many in-process hubs under a seeded fault schedule (0 = off)")
	soakSeed := fs.Int64("soakseed", 1, "soak mode: schedule and protocol seed (same seed = same run)")
	soakSteps := fs.Int("soaksteps", 14, "soak mode: schedule length in steps")
	soakSLO := fs.Float64("soakslo", 0.99, "soak mode: delivery SLO over surviving subscribers in [0, 1]")
	params := damulticast.DefaultParams()
	fs.Float64Var(&params.C, "c", params.C, "gossip fanout constant c (fanout = ln S + c)")
	fs.Float64Var(&params.G, "g", params.G, "self-election numerator g (pSel = g/S)")
	fs.Float64Var(&params.A, "a", params.A, "upward-send numerator a (pA = a/z)")
	fs.IntVar(&params.Z, "z", params.Z, "supertopic table size z")
	fs.IntVar(&params.RecoverPeriod, "recover", params.RecoverPeriod,
		"anti-entropy recovery wave period in ticks (0 disables recovery)")
	fs.IntVar(&params.RecoverFanout, "recover-fanout", params.RecoverFanout,
		"group mates contacted per recovery wave")
	fs.IntVar(&params.RecoverStoreCap, "recover-store", params.RecoverStoreCap,
		"recovery event-store capacity (events)")
	fs.IntVar(&params.RecoverMaxAge, "recover-age", params.RecoverMaxAge,
		"recovery store age bound in ticks")
	fs.IntVar(&params.RecoverDigestBits, "recover-bits", params.RecoverDigestBits,
		"bloom digest size in bits per stored event (higher = fewer false positives, bigger digests)")
	fs.IntVar(&params.CrossRecoverPeriod, "recover-cross", params.CrossRecoverPeriod,
		"cross-group recovery wave period in ticks: digests also climb/descend the topic hierarchy (0 disables)")
	fs.IntVar(&params.CrossRecoverFanout, "recover-cross-fanout", params.CrossRecoverFanout,
		"contacts per direction contacted per cross-group recovery wave")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *soak > 0 {
		return runSoak(stdout, *soak, *soakSeed, *soakSteps, *soakSLO)
	}
	joinTopics := splitList(*topics)
	if *tp != "" {
		joinTopics = append([]string{*tp}, joinTopics...)
	}
	if len(joinTopics) == 0 {
		return fmt.Errorf("-topic or -topics is required")
	}

	tr, err := damulticast.NewTCPTransport(*listen)
	if err != nil {
		return err
	}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	// Registered before the hub's Stop so it runs after it (defers are
	// LIFO): Stop closes every Events channel, which ends the printer
	// goroutines this waits for.
	var printers sync.WaitGroup
	defer printers.Wait()

	hub, err := damulticast.NewHub(tr,
		damulticast.WithParams(params),
		damulticast.WithTickInterval(*tick),
		damulticast.WithContext(ctx),
	)
	if err != nil {
		_ = tr.Close()
		return err
	}
	defer func() { _ = hub.Stop() }()

	// The first topic gets the explicit contacts; every topic gets the
	// bootstrap seeds.
	var subs []*damulticast.Subscription
	for i, topicStr := range joinTopics {
		opts := []damulticast.JoinOption{damulticast.WithSeeds(splitList(*seeds)...)}
		if i == 0 {
			if p := splitList(*peers); len(p) > 0 {
				opts = append(opts, damulticast.WithGroupContacts(p...))
			}
			if s := splitList(*super); len(s) > 0 {
				opts = append(opts, damulticast.WithSuperContacts(*superTopic, s...))
			}
		}
		sub, err := hub.Join(ctx, topicStr, opts...)
		if err != nil {
			return fmt.Errorf("join %s: %w", topicStr, err)
		}
		subs = append(subs, sub)
		fmt.Fprintf(stdout, "damcd: hub %s subscribed to %s\n", hub.ID(), sub.Topic())
	}

	// Optional Prometheus endpoint.
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			_ = hub.WriteMetrics(w)
		})
		srv := &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() { _ = srv.ListenAndServe() }()
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(stdout, "damcd: metrics on http://%s/metrics\n", *metricsAddr)
	}

	// Delivery printers, one per subscription.
	for _, sub := range subs {
		printers.Add(1)
		go func(sub *damulticast.Subscription) {
			defer printers.Done()
			for ev := range sub.Events() {
				fmt.Fprintf(stdout, "[%s] %s: %s\n", ev.Topic, ev.ID, ev.Payload)
			}
		}(sub)
	}

	// Publish stdin lines on the first topic.
	pub := subs[0]
	lines := make(chan string)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return nil
		case line, ok := <-lines:
			if !ok {
				if *once {
					// Give in-flight gossip a moment before exiting.
					time.Sleep(2 * *tick)
					return nil
				}
				<-ctx.Done()
				return nil
			}
			if line == "" {
				continue
			}
			id, err := pub.Publish(ctx, []byte(line))
			if err != nil {
				return fmt.Errorf("publish: %w", err)
			}
			fmt.Fprintf(stdout, "published %s\n", id)
		}
	}
}

// runSoak drives an in-process chaos soak: n hubs on loopback TCP,
// three topics, and the seeded fault schedule. The tick is pinned fast
// (the soak is a stress run, not an interactive daemon) so a default
// 14-step schedule finishes in a few seconds.
func runSoak(w io.Writer, n int, seed int64, steps int, slo float64) error {
	cfg := chaos.Config{
		Endpoints: n,
		Topics:    []string{".t0", ".t1", ".t2"},
		Seed:      seed,
		Tick:      15 * time.Millisecond,
		Recovery:  true,
		Schedule:  chaos.GenSchedule(seed, steps),
		SLO:       slo,
	}
	fmt.Fprintf(w, "damcd soak: %d endpoints, seed %d, %d faults scheduled, SLO %.2f\n",
		n, seed, len(cfg.Schedule), slo)
	start := time.Now()
	rep, err := chaos.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  faults applied:  %v\n", rep.FaultCounts)
	for _, t := range cfg.Topics {
		fmt.Fprintf(w, "  %-8s published %d, delivered %.4f of surviving subscribers\n",
			t, rep.Published[t], rep.PerTopic[t])
	}
	fmt.Fprintf(w, "  recovered:       %d events via anti-entropy (%d pushes digest-suppressed)\n",
		rep.Final.Recovered, rep.Final.Suppressed)
	fmt.Fprintf(w, "  injected drops:  %d partition, %d loss\n",
		rep.Final.PartitionDrops, rep.Final.LossDrops)
	fmt.Fprintf(w, "  alive at end:    %d of %d\n", rep.AliveEndpoints, n)
	fmt.Fprintf(w, "  reliability:     %.4f (wall time %s)\n",
		rep.Reliability, time.Since(start).Round(time.Millisecond))
	if !rep.MetSLO {
		return fmt.Errorf("soak: reliability %.4f below SLO %.2f", rep.Reliability, slo)
	}
	fmt.Fprintln(w, "  SLO met")
	return nil
}
