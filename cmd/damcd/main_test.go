package main

import (
	"io"
	"net"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSplitList(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b", []string{"a", "b"}},
		{" a , b ,", []string{"a", "b"}},
		{",,", nil},
	}
	for _, tt := range tests {
		got := splitList(tt.in)
		if len(got) == 0 && len(tt.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("splitList(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestRunRequiresTopic(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("missing -topic accepted")
	}
}

// TestRunMultiTopicAndMetrics: one damcd hub joins two topics over one
// socket (-topics), a publisher in the second topic's subgroup pushes
// an event up to it, and the -metricsaddr endpoint serves the
// Prometheus dump with both subscriptions labeled.
func TestRunMultiTopicAndMetrics(t *testing.T) {
	hubAddr := freePort(t)
	pubAddr := freePort(t)
	metricsAddr := freePort(t)

	hubOut := &syncWriter{}
	hubIn, hubInW := io.Pipe()
	hubDone := make(chan error, 1)
	go func() {
		hubDone <- run([]string{
			"-listen", hubAddr,
			"-topics", ".news,.market",
			"-metricsaddr", metricsAddr,
			"-tick", "20ms",
		}, hubIn, hubOut)
	}()
	// Give the hub a moment to bind both the gossip and metrics ports.
	time.Sleep(300 * time.Millisecond)

	pubOut := &syncWriter{}
	pubDone := make(chan error, 1)
	go func() {
		pubDone <- run([]string{
			"-listen", pubAddr,
			"-topic", ".market.nyse",
			"-super-topic", ".market",
			"-super", hubAddr,
			"-tick", "20ms",
			"-a", "3", // pA = 1: the single upward link always fires
			"-once",
		}, strings.NewReader("AAPL up\n"), pubOut)
	}()
	if err := <-pubDone; err != nil {
		t.Fatalf("publisher: %v", err)
	}

	// The hub's .market subscription must print the climbed event.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(hubOut.String(), "AAPL up") {
		if time.Now().After(deadline) {
			t.Fatalf("hub never printed the event; output:\n%s", hubOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(hubOut.String(), "subscribed to .news") ||
		!strings.Contains(hubOut.String(), "subscribed to .market") {
		t.Errorf("hub did not announce both subscriptions:\n%s", hubOut.String())
	}

	// The metrics endpoint serves both subscriptions.
	resp, err := http.Get("http://" + metricsAddr + "/metrics")
	if err != nil {
		t.Fatalf("metrics endpoint: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"damulticast_subscriptions 2",
		`damulticast_dropped_deliveries_total{topic=".news"}`,
		`damulticast_dropped_deliveries_total{topic=".market"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}
	if err := hubInW.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-topic", "not-a-topic"}, strings.NewReader(""), &out)
	if err == nil {
		t.Error("bad topic accepted")
	}
	err = run([]string{"-topic", ".a", "-listen", "256.256.256.256:1"}, strings.NewReader(""), &out)
	if err == nil {
		t.Error("bad listen address accepted")
	}
}

// freePort reserves a TCP port and releases it for reuse.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return addr
}

// syncWriter serializes concurrent writes from both daemon goroutines.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func TestTwoDaemonsEndToEnd(t *testing.T) {
	subAddr := freePort(t)
	pubAddr := freePort(t)

	subOut := &syncWriter{}
	subIn, subInW := io.Pipe()
	subDone := make(chan error, 1)
	go func() {
		subDone <- run([]string{
			"-listen", subAddr,
			"-topic", ".news",
			"-tick", "20ms",
		}, subIn, subOut)
	}()
	// Give the subscriber a moment to bind.
	time.Sleep(200 * time.Millisecond)

	pubOut := &syncWriter{}
	pubDone := make(chan error, 1)
	go func() {
		pubDone <- run([]string{
			"-listen", pubAddr,
			"-topic", ".news.sports",
			"-super-topic", ".news",
			"-super", subAddr,
			"-tick", "20ms",
			"-a", "3", // pA = 1: the single upward link always fires
			"-once",
		}, strings.NewReader("goal scored\n"), pubOut)
	}()

	if err := <-pubDone; err != nil {
		t.Fatalf("publisher: %v", err)
	}
	// The subscriber must print the climbed event.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(subOut.String(), "goal scored") {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber never printed the event; output:\n%s", subOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !strings.Contains(pubOut.String(), "published ") {
		t.Errorf("publisher output missing confirmation:\n%s", pubOut.String())
	}
	// Shut the subscriber down by closing its stdin... it waits on
	// ctx with -once unset, so just leak it into test teardown by
	// closing the pipe writer (scanner goroutine ends; daemon keeps
	// waiting on ctx — acceptable for the test process lifetime).
	if err := subInW.Close(); err != nil {
		t.Fatal(err)
	}
}
