// Command damcvet is the project's invariant multichecker: it runs
// the internal/vet analyzers — detrand (determinism contract),
// framealias (wire.Decoder buffer lifetime), wiresym (codec
// round-trip symmetry and retired MsgType slots) and loopblock (hub
// demux loop never blocks) — over the packages matched by its
// arguments (default ./...), honoring each analyzer's package scope
// and the //damcvet:allow suppression grammar.
//
//	go run ./cmd/damcvet ./...
//
// Findings print as path:line:col: [analyzer] message, sorted by
// position; the exit status is 1 when there are findings (or malformed
// //damcvet: directives, which are findings themselves) and 0 on a
// clean tree. CI runs this next to go vet and staticcheck.
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"damulticast/internal/vet/analysis"
	"damulticast/internal/vet/detrand"
	"damulticast/internal/vet/framealias"
	"damulticast/internal/vet/loadpkg"
	"damulticast/internal/vet/loopblock"
	"damulticast/internal/vet/wiresym"
)

// suite is the registered analyzer set. Order is presentation-only;
// diagnostics are sorted by position before printing.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		framealias.Analyzer,
		wiresym.Analyzer,
		loopblock.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Stdout, os.Stderr, os.Args[1:]))
}

// run executes the multichecker and returns the process exit code:
// 0 clean, 1 findings, 2 operational failure.
func run(stdout, stderr io.Writer, patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "damcvet:", err)
		return 2
	}

	pkgs, err := loadpkg.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "damcvet:", err)
		return 2
	}

	broken := false
	for _, p := range pkgs {
		for _, e := range p.Errors {
			broken = true
			fmt.Fprintf(stderr, "damcvet: %s: %v\n", p.PkgPath, e)
		}
	}
	if broken {
		fmt.Fprintln(stderr, "damcvet: type errors above; fix the build first")
		return 2
	}

	diags := collect(pkgs)

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := loadpkg.Fset().Position(diags[i].Pos), loadpkg.Fset().Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})

	for _, d := range diags {
		pos := loadpkg.Fset().Position(d.Pos)
		rel, err := filepath.Rel(cwd, pos.Filename)
		if err != nil || len(rel) > len(pos.Filename) {
			rel = pos.Filename
		}
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "damcvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// collect runs every applicable analyzer over every package.
func collect(pkgs []*loadpkg.Package) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	for _, p := range pkgs {
		allow := analysis.BuildAllowIndex(p.Fset, p.Files)
		diags = append(diags, allow.Malformed...)
		for _, a := range suite() {
			if a.AppliesTo != nil && !a.AppliesTo(p.PkgPath) {
				continue
			}
			ds, err := analysis.Run(a, p.Fset, p.Files, p.Types, p.TypesInfo, allow)
			if err != nil {
				diags = append(diags, analysis.Diagnostic{
					Pos: p.Files[0].Pos(), Analyzer: a.Name,
					Message: fmt.Sprintf("analyzer failed: %v", err),
				})
				continue
			}
			diags = append(diags, ds...)
		}
	}
	return diags
}
