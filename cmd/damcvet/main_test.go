package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSuiteRegistersAllAnalyzers pins the multichecker's analyzer set:
// dropping one silently un-enforces a standing contract.
func TestSuiteRegistersAllAnalyzers(t *testing.T) {
	want := map[string]bool{
		"detrand":    true,
		"framealias": true,
		"wiresym":    true,
		"loopblock":  true,
	}
	got := suite()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for _, a := range got {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %q has no documentation", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
	}
	for name := range want {
		t.Errorf("analyzer %q not registered", name)
	}
}

// TestRunCleanPackage drives the checker end-to-end over a package
// that must be finding-free (internal/wire is wiresym's home turf and
// exempt from framealias by scope).
func TestRunCleanPackage(t *testing.T) {
	restoreWd(t)
	var stdout, stderr bytes.Buffer
	if code := run(&stdout, &stderr, []string{"./internal/wire"}); code != 0 {
		t.Fatalf("exit %d on internal/wire\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run printed findings:\n%s", stdout.String())
	}
}

// TestRunFlagsSeededViolations drives the checker over the loopblock
// bad-case fixture and demands a non-zero exit with findings from the
// expected analyzer — the end-to-end proof that reverting a guarded
// invariant fails the lint gate.
func TestRunFlagsSeededViolations(t *testing.T) {
	restoreWd(t)
	var stdout, stderr bytes.Buffer
	code := run(&stdout, &stderr, []string{"./internal/vet/loopblock/testdata/src/loopblockbad"})
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[loopblock]") {
		t.Errorf("expected loopblock findings, got:\n%s", stdout.String())
	}
}

// restoreWd moves the test process to the module root so ./... style
// patterns resolve, restoring the original directory afterwards.
func restoreWd(t *testing.T) {
	t.Helper()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := orig
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatal("go.mod not found above test directory")
		}
		root = parent
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = os.Chdir(orig) })
}
