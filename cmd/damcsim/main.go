// Command damcsim regenerates the paper's simulation figures
// (Figs. 8-11 of "Data-Aware Multicast", DSN 2004) as CSV on stdout,
// and runs large-scale dynamic scenarios on the sharded parallel
// kernel.
//
// Usage:
//
//	damcsim -fig 8 [-runs 5] [-points 10] [-out fig8.csv]
//	damcsim -fig all -runs 3 -sweepworkers 8 -report report.json
//	damcsim -fig churn            # beyond-paper churn-wave sweep
//	damcsim -fig recovery         # anti-entropy recovery on/off vs loss
//	damcsim -fig recoverystore    # bloom vs raw-id digest frame bytes vs store size
//	damcsim -fig recoverydepth    # cross-group root revival vs hierarchy depth
//	damcsim -fig baselines        # da-multicast vs §VI-E baselines under faults
//	damcsim -fig scale            # struct-of-arrays kernel swept to 1e6 processes
//	damcsim -scenario churn -n 20000 [-intensity 0.3] [-rounds 24] [-workers 0]
//	damcsim -scenario lossburst -recoverperiod 2   # scenarios with recovery on
//
// Each paper figure sweeps the fraction of alive processes over the
// paper's setting (t=3, S={1000,100,10}, b=3, c=5, g=5, a=1, z=3,
// psucc=0.85) and prints one CSV block per figure; -fig all also
// appends the churn sweep (x = fraction surviving a crash wave) and
// the recovery sweep (x = channel success probability). Sweep points fan out across
// -sweepworkers goroutines on the experiment orchestrator; the CSV
// bytes are identical for every worker count (per-run seeds derive
// from the figure/point/run labels, never from scheduling). -report
// writes a machine-readable JSON run report (per-run seeds, rounds,
// per-kind message counts, wall/CPU/mutex-wait time) for CI to archive
// and diff. Scenario mode builds one flat group of -n processes and
// drives a named dynamic schedule (churn, flashcrowd, partition,
// lossburst) through the parallel kernel, printing a summary. Results
// are byte-identical for every -workers value.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"damulticast/internal/experiment"
	"damulticast/internal/sim"
	"damulticast/internal/topic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "damcsim:", err)
		os.Exit(1)
	}
}

// figureKeys maps the CLI's -fig values to canonical figure names.
var figureKeys = map[string]string{
	"8":             "fig8",
	"9":             "fig9",
	"10":            "fig10",
	"11":            "fig11",
	"churn":         "churn",
	"recovery":      "recovery",
	"recoverystore": "recoverystore",
	"recoverydepth": "recoverydepth",
	"baselines":     "baselines",
	"scale":         "scale",
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("damcsim", flag.ContinueOnError)
	fig := fs.String("fig", "all", `figure to regenerate: "8", "9", "10", "11", "churn", "recovery", "recoverystore", "recoverydepth", "baselines", "scale" or "all"`)
	runs := fs.Int("runs", 3, "independent runs averaged per point")
	points := fs.Int("points", 10, "x-axis points per figure: alive fractions in (0, 1] for the paper figures; pinned-grid figures (baselines, scale) take the first -points grid entries")
	out := fs.String("out", "", "write CSV to this file instead of stdout")
	sweepWorkers := fs.Int("sweepworkers", 0, "figure-sweep worker pool size; 0 = GOMAXPROCS, 1 = serial (CSV identical for every value)")
	reportPath := fs.String("report", "", "write a JSON run report (config, seeds, per-kind counts, timing) to this file")
	seed := fs.Int64("seed", 1, "base random seed (figures: per-run seeds derive from it; scenarios: the run seed)")
	scenario := fs.String("scenario", "", `run a named scenario instead of figures (one of "churn", "flashcrowd", "partition", "lossburst")`)
	n := fs.Int("n", 20000, "scenario population (processes)")
	intensity := fs.Float64("intensity", 0, "scenario knob in [0,1]; 0 selects the scenario default")
	rounds := fs.Int("rounds", 0, "scenario rounds; 0 selects the default")
	workers := fs.Int("workers", 0, "kernel shard count; 0 = GOMAXPROCS, 1 = sequential")
	recoverPeriod := fs.Int("recoverperiod", 0, "scenario mode: enable anti-entropy recovery with this wave period in rounds (0 = off)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 || *points < 1 {
		return fmt.Errorf("runs and points must be >= 1")
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "damcsim: cpuprofile close:", cerr)
			}
		}()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *scenario != "" {
		return runScenario(stdout, *scenario, *n, *intensity, *rounds, *seed, *workers, *recoverPeriod)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "damcsim: close:", cerr)
			}
		}()
		w = f
	}

	// "all" really means all: the paper figures plus the beyond-paper
	// churn, recovery and baselines sweeps (their x-axes read as
	// "fraction surviving" and "channel success probability").
	order := []string{"8", "9", "10", "11", "churn", "recovery", "recoverystore", "recoverydepth", "baselines", "scale"}
	selected := order
	if *fig != "all" {
		if _, ok := figureKeys[*fig]; !ok {
			return fmt.Errorf("unknown figure %q (want 8, 9, 10, 11, churn, recovery, recoverystore, recoverydepth, baselines, scale or all)", *fig)
		}
		selected = []string{*fig}
	}
	report := &experiment.Report{
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		SweepWorkers: *sweepWorkers,
	}
	opts := sim.FigureOpts{
		RunsPerPoint: *runs,
		SweepWorkers: *sweepWorkers,
		BaseSeed:     *seed,
	}
	for _, key := range selected {
		// Each figure owns its x-axis grid: most sweep i/points over
		// (0, 1], the baselines figure pins [0.4, 1.0].
		xs := sim.FigureXs(figureKeys[key], *points)
		f, figReport, err := sim.GenerateFigure(context.Background(), figureKeys[key], xs, opts)
		if err != nil {
			return fmt.Errorf("figure %s: %w", key, err)
		}
		report.Figures = append(report.Figures, *figReport)
		fmt.Fprintf(w, "# %s: %s vs %s\n", f.Name, f.YLabel, f.XLabel)
		if _, err := io.WriteString(w, f.CSV()); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		if err := report.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("report: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("report: %w", err)
		}
	}
	return nil
}

// runScenario builds and drives one named scenario on the sharded
// kernel and prints a human-readable summary.
func runScenario(w io.Writer, name string, n int, intensity float64, rounds int, seed int64, workers, recoverPeriod int) error {
	cfg, sc, err := sim.BuiltinScenario(name, n, intensity, rounds, seed, workers)
	if err != nil {
		return err
	}
	if recoverPeriod > 0 {
		cfg.Params.RecoverPeriod = recoverPeriod
	}
	start := time.Now()
	res, err := sim.RunScenario(cfg, sc)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(w, "scenario %s: n=%d workers=%d rounds=%d seed=%d\n", sc.Name, n, workers, sc.Rounds, seed)
	fmt.Fprintf(w, "  events sent:   %d\n", res.TotalEvents)
	fmt.Fprintf(w, "  parasites:     %d\n", res.Parasites)
	root := topic.Root
	fmt.Fprintf(w, "  alive at end:  %d of %d\n", res.Alive[root], res.Size[root])
	fmt.Fprintf(w, "  delivered:     %.4f of alive (%.4f of all)\n", res.Reliability[root], res.ReliabilityAll[root])
	if r, ok := res.FirstDeliveryRound[root]; ok {
		fmt.Fprintf(w, "  first delivery: round %d\n", r)
	}
	if recoverPeriod > 0 {
		fmt.Fprintf(w, "  recovered:     %d events via anti-entropy (%d recovery msgs)\n",
			res.KindTotals["recovered"], res.KindTotals["recover_msg"])
	}
	fmt.Fprintf(w, "  wall time:     %s\n", elapsed.Round(time.Millisecond))
	return nil
}
