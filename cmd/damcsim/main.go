// Command damcsim regenerates the paper's simulation figures
// (Figs. 8-11 of "Data-Aware Multicast", DSN 2004) as CSV on stdout.
//
// Usage:
//
//	damcsim -fig 8 [-runs 5] [-points 10] [-out fig8.csv]
//	damcsim -fig all -runs 3
//
// Each figure sweeps the fraction of alive processes over the paper's
// setting (t=3, S={1000,100,10}, b=3, c=5, g=5, a=1, z=3, psucc=0.85)
// and prints one CSV block per figure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"damulticast/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "damcsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("damcsim", flag.ContinueOnError)
	fig := fs.String("fig", "all", `figure to regenerate: "8", "9", "10", "11" or "all"`)
	runs := fs.Int("runs", 3, "independent runs averaged per point")
	points := fs.Int("points", 10, "alive-fraction points in (0, 1]")
	out := fs.String("out", "", "write CSV to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 || *points < 1 {
		return fmt.Errorf("runs and points must be >= 1")
	}

	alives := make([]float64, 0, *points)
	for i := 1; i <= *points; i++ {
		alives = append(alives, float64(i)/float64(*points))
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "damcsim: close:", cerr)
			}
		}()
		w = f
	}

	type gen func([]float64, int) (*sim.Figure, error)
	gens := map[string]gen{
		"8":  sim.Figure8,
		"9":  sim.Figure9,
		"10": sim.Figure10,
		"11": sim.Figure11,
	}
	order := []string{"8", "9", "10", "11"}

	selected := order
	if *fig != "all" {
		if _, ok := gens[*fig]; !ok {
			return fmt.Errorf("unknown figure %q (want 8, 9, 10, 11 or all)", *fig)
		}
		selected = []string{*fig}
	}
	for _, name := range selected {
		f, err := gens[name](alives, *runs)
		if err != nil {
			return fmt.Errorf("figure %s: %w", name, err)
		}
		fmt.Fprintf(w, "# %s: %s vs %s\n", f.Name, f.YLabel, f.XLabel)
		if _, err := io.WriteString(w, f.CSV()); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
