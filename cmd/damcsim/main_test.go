package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"damulticast/internal/experiment"
	"damulticast/internal/sim"
)

func TestRunSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size sweep")
	}
	var out strings.Builder
	// Two points, one run: fast smoke of the real figure path.
	if err := run([]string{"-fig", "9", "-runs", "1", "-points", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# fig9") {
		t.Errorf("missing header: %q", s)
	}
	if !strings.Contains(s, "alive,") {
		t.Errorf("missing CSV header: %q", s)
	}
	if !strings.Contains(s, "T2->T1") {
		t.Errorf("missing link series: %q", s)
	}
}

func TestRunWritesFile(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size sweep")
	}
	path := filepath.Join(t.TempDir(), "fig.csv")
	var out strings.Builder
	if err := run([]string{"-fig", "10", "-runs", "1", "-points", "2", "-out", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# fig10") {
		t.Errorf("file content: %q", data)
	}
}

func TestRunScenarioMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "churn", "-n", "300", "-rounds", "12", "-workers", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"scenario churn", "events sent", "delivered", "wall time"} {
		if !strings.Contains(s, want) {
			t.Errorf("scenario summary missing %q:\n%s", want, s)
		}
	}
}

func TestRunScenarioUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scenario", "bogus"}, &out); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestRunChurnFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size sweep")
	}
	var out strings.Builder
	if err := run([]string{"-fig", "churn", "-runs", "1", "-points", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "# churn:") {
		t.Errorf("missing churn figure header:\n%s", out.String())
	}
}

func TestRunScaleFigure(t *testing.T) {
	var out strings.Builder
	// Two grid points (1e3, 3162): fast smoke of the scale-kernel path.
	if err := run([]string{"-fig", "scale", "-runs", "1", "-points", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "# scale:") {
		t.Errorf("missing scale figure header:\n%s", s)
	}
	for _, want := range []string{"state_bytes_per_proc", "events_per_proc", "1000.00"} {
		if !strings.Contains(s, want) {
			t.Errorf("scale CSV missing %q:\n%s", want, s)
		}
	}
}

// TestFigureKeysCoverSimFigures keeps the CLI's figure table in sync
// with the sim registry: every canonical figure must be reachable from
// -fig, and the -fig all order must enumerate exactly the known keys.
func TestFigureKeysCoverSimFigures(t *testing.T) {
	canonical := map[string]bool{}
	for _, name := range sim.FigureNames() {
		canonical[name] = true
	}
	covered := map[string]bool{}
	for key, name := range figureKeys {
		if !canonical[name] {
			t.Errorf("figureKeys[%q] = %q is not a sim figure", key, name)
		}
		covered[name] = true
	}
	for name := range canonical {
		if !covered[name] {
			t.Errorf("sim figure %q unreachable from -fig", name)
		}
	}
	order := []string{"8", "9", "10", "11", "churn", "recovery", "recoverystore", "recoverydepth", "baselines", "scale"}
	if len(order) != len(figureKeys) {
		t.Fatalf("-fig all order has %d entries, figureKeys %d", len(order), len(figureKeys))
	}
	for _, key := range order {
		if _, ok := figureKeys[key]; !ok {
			t.Errorf("-fig all key %q missing from figureKeys", key)
		}
	}
}

// TestRunSweepWorkersReproducible checks the CLI-level determinism
// contract: -sweepworkers must not change a single output byte, and
// -report must emit a parseable JSON run report.
func TestRunSweepWorkersReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size sweep")
	}
	dir := t.TempDir()
	serialCSV := filepath.Join(dir, "serial.csv")
	parallelCSV := filepath.Join(dir, "parallel.csv")
	reportPath := filepath.Join(dir, "report.json")
	var out strings.Builder
	if err := run([]string{"-fig", "8", "-runs", "2", "-points", "2",
		"-sweepworkers", "1", "-out", serialCSV}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fig", "8", "-runs", "2", "-points", "2",
		"-sweepworkers", "8", "-out", parallelCSV, "-report", reportPath}, &out); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(serialCSV)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelCSV)
	if err != nil {
		t.Fatal(err)
	}
	if string(serial) != string(parallel) {
		t.Errorf("-sweepworkers changed the CSV bytes:\n%s\nvs\n%s", serial, parallel)
	}

	rep, err := experiment.ReadReportFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Figures) != 1 || rep.Figures[0].Name != "fig8" {
		t.Fatalf("report figures = %+v", rep.Figures)
	}
	figRep := rep.Figures[0]
	if len(figRep.Runs) != 4 {
		t.Errorf("report runs = %d, want 4", len(figRep.Runs))
	}
	if figRep.Totals["intra"] <= 0 {
		t.Errorf("report totals = %v", figRep.Totals)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-runs", "0"}, &out); err == nil {
		t.Error("runs=0 accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}
