// Command damcanalysis prints the §VI-E comparison tables of the paper
// — message complexity, memory complexity and reliability of
// daMulticast versus (a) gossip broadcast, (b) gossip multicast and
// (c) hierarchical gossip broadcast — combining the closed-form
// analysis with measured simulation runs of all four algorithms.
//
// Usage:
//
//	damcanalysis -table msg|mem|rel|all [-alive 1.0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"text/tabwriter"

	"damulticast/internal/analysis"
	"damulticast/internal/baseline"
	"damulticast/internal/sim"
	"damulticast/internal/topic"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "damcanalysis:", err)
		os.Exit(1)
	}
}

// paperLevels builds the analysis model of the §VII-A setting.
func paperLevels() []analysis.Level {
	pi := analysis.GossipReliability(5)
	mk := func(s int) analysis.Level {
		return analysis.Level{S: s, C: 5, G: 5, A: 1, Z: 3, PSucc: 0.85, Pi: pi}
	}
	return []analysis.Level{mk(10), mk(100), mk(1000)}
}

// otherSize is a disjoint ".other" population added to every measured
// run. Its members are NOT interested in the published T2 events, so
// any delivery to them is a parasite message — the cost the paper's
// motivation hinges on. In daMulticast they form their own group and
// receive nothing; under the broadcast baselines they receive
// everything.
const otherSize = 200

// totalN is the total population including the disjoint branch.
const totalN = 10 + 100 + 1000 + otherSize

func baselineConfig(alive float64, seed int64) baseline.Config {
	t0, t1, t2 := sim.PaperTopics()
	return baseline.Config{
		Populations: []baseline.Population{
			{Topic: t0, Size: 10},
			{Topic: t1, Size: 100},
			{Topic: t2, Size: 1000},
			{Topic: topic.MustParse(".other"), Size: otherSize},
		},
		PublishTopic:  t2,
		B:             3,
		C:             5,
		PSucc:         0.85,
		AliveFraction: alive,
		NumGroups:     10,
		MaxRounds:     300,
		Seed:          seed,
	}
}

// measured aggregates the per-algorithm measurements, averaged over
// several independent runs (single runs are noisy: the upward hop
// involves only ~g expected electors).
type measured struct {
	daEvents, daParasites, daRootRel float64
	bcMsgs, bcParasites, bcRel       float64
	mcMsgs, mcParasites, mcRel       float64
	hcMsgs, hcParasites, hcRel       float64
}

func measure(alive float64, baseSeed int64, runs int) (*measured, error) {
	t0, _, _ := sim.PaperTopics()
	var m measured
	for i := 0; i < runs; i++ {
		seed := baseSeed + int64(i)
		// The daMulticast topology gains the same disjoint ".other"
		// group the baselines carry, so the parasite comparison is
		// apples to apples.
		cfg := sim.PaperConfig(alive, seed)
		cfg.Groups = append(cfg.Groups, sim.GroupSpec{
			Topic: topic.MustParse(".other"), Size: otherSize,
		})
		if alive >= 1 {
			cfg.FailureMode = sim.FailNone
		}
		daRes, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		bcRes, err := baseline.RunBroadcast(baselineConfig(alive, seed))
		if err != nil {
			return nil, err
		}
		mcRes, err := baseline.RunMulticast(baselineConfig(alive, seed))
		if err != nil {
			return nil, err
		}
		hcRes, err := baseline.RunHierarchical(baselineConfig(alive, seed))
		if err != nil {
			return nil, err
		}
		m.daEvents += float64(daRes.TotalEvents)
		m.daParasites += float64(daRes.Parasites)
		m.daRootRel += daRes.Reliability[t0]
		m.bcMsgs += float64(bcRes.Messages)
		m.bcParasites += float64(bcRes.Parasites)
		m.bcRel += bcRes.Reliability()
		m.mcMsgs += float64(mcRes.Messages)
		m.mcParasites += float64(mcRes.Parasites)
		m.mcRel += mcRes.Reliability()
		m.hcMsgs += float64(hcRes.Messages)
		m.hcParasites += float64(hcRes.Parasites)
		m.hcRel += hcRes.Reliability()
	}
	n := float64(runs)
	m.daEvents /= n
	m.daParasites /= n
	m.daRootRel /= n
	m.bcMsgs /= n
	m.bcParasites /= n
	m.bcRel /= n
	m.mcMsgs /= n
	m.mcParasites /= n
	m.mcRel /= n
	m.hcMsgs /= n
	m.hcParasites /= n
	m.hcRel /= n
	return &m, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("damcanalysis", flag.ContinueOnError)
	table := fs.String("table", "all", `table to print: "msg", "mem", "rel" or "all"`)
	alive := fs.Float64("alive", 1.0, "alive fraction for measured columns")
	seed := fs.Int64("seed", 1, "base simulation seed")
	runs := fs.Int("runs", 5, "independent runs averaged for measured columns")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *table {
	case "msg", "mem", "rel", "all":
	default:
		return fmt.Errorf("unknown table %q", *table)
	}
	if *runs < 1 {
		return fmt.Errorf("-runs must be >= 1")
	}

	m, err := measure(*alive, *seed, *runs)
	if err != nil {
		return err
	}
	levels := paperLevels()
	if *table == "msg" || *table == "all" {
		if err := printMsgTable(stdout, levels, m); err != nil {
			return err
		}
	}
	if *table == "mem" || *table == "all" {
		if err := printMemTable(stdout, levels); err != nil {
			return err
		}
	}
	if *table == "rel" || *table == "all" {
		if err := printRelTable(stdout, levels, m); err != nil {
			return err
		}
	}
	return nil
}

func printMsgTable(w io.Writer, levels []analysis.Level, m *measured) error {
	daF, err := analysis.DaMulticastMessages(levels)
	if err != nil {
		return err
	}
	bcF, err := analysis.BroadcastMessages(totalN, 5)
	if err != nil {
		return err
	}
	mcF, err := analysis.MulticastMessages(levels)
	if err != nil {
		return err
	}
	hcF, err := analysis.HierarchicalMessages(10, totalN/10, 5, 5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Message complexity (events per publication, §VI-E.1) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tclosed-form\tmeasured")
	fmt.Fprintf(tw, "daMulticast\t%.0f\t%.0f\n", daF, m.daEvents)
	fmt.Fprintf(tw, "(a) gossip broadcast\t%.0f\t%.0f\n", bcF, m.bcMsgs)
	fmt.Fprintf(tw, "(b) gossip multicast\t%.0f\t%.0f\n", mcF, m.mcMsgs)
	fmt.Fprintf(tw, "(c) hierarchical broadcast\t%.0f\t%.0f\n", hcF, m.hcMsgs)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "parasite deliveries: da=%.0f bcast=%.0f mcast=%.0f hier=%.0f\n\n",
		m.daParasites, m.bcParasites, m.mcParasites, m.hcParasites)
	return nil
}

func printMemTable(w io.Writer, levels []analysis.Level) error {
	daMem, err := analysis.DaMulticastMemory(1000, 5, 3, false)
	if err != nil {
		return err
	}
	daRoot, err := analysis.DaMulticastMemory(10, 5, 3, true)
	if err != nil {
		return err
	}
	bcMem, err := analysis.BroadcastMemory(totalN, 5)
	if err != nil {
		return err
	}
	mcMem, err := analysis.MulticastMemory(levels)
	if err != nil {
		return err
	}
	hcMem, err := analysis.HierarchicalMemory(10, totalN/10, 5, 5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Memory complexity (membership entries per process, §VI-E.2) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tper-process entries")
	fmt.Fprintf(tw, "daMulticast (T2 member)\t%.1f  (ln S + c + z)\n", daMem)
	fmt.Fprintf(tw, "daMulticast (root member)\t%.1f  (ln S + c)\n", daRoot)
	fmt.Fprintf(tw, "(a) gossip broadcast\t%.1f  (ln n + c)\n", bcMem)
	fmt.Fprintf(tw, "(b) gossip multicast\t%.1f  (Σ ln S_i + c_i)\n", mcMem)
	fmt.Fprintf(tw, "(c) hierarchical broadcast\t%.1f  (ln N + ln m + c1 + c2)\n", hcMem)
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return nil
}

func printRelTable(w io.Writer, levels []analysis.Level, m *measured) error {
	daRel, err := analysis.Reliability(levels, 0)
	if err != nil {
		return err
	}
	mcRel, err := analysis.MulticastReliability(levels)
	if err != nil {
		return err
	}
	hcRel, err := analysis.HierarchicalReliability(10, 5, 5)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "== Reliability (P[all root-group processes receive], §VI-E.3) ==")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "algorithm\tclosed-form\tmeasured (alive frac of interested)")
	fmt.Fprintf(tw, "daMulticast\t%.5f\t%.5f\n", daRel, m.daRootRel)
	fmt.Fprintf(tw, "(a) gossip broadcast\t%.5f\t%.5f\n", analysis.BroadcastReliability(5), m.bcRel)
	fmt.Fprintf(tw, "(b) gossip multicast\t%.5f\t%.5f\n", mcRel, m.mcRel)
	fmt.Fprintf(tw, "(c) hierarchical broadcast\t%.5f\t%.5f\n", hcRel, m.hcRel)
	if err := tw.Flush(); err != nil {
		return err
	}

	// Tuning ranges (appendix): feasible c windows for equal
	// reliability and the corresponding z bounds.
	pit := levels[len(levels)-1].Pit()
	fmt.Fprintf(w, "\ntuning (average case, pit=%.6f):\n", pit)
	if c1, err := analysis.TuneVsMulticast(5, pit); err == nil {
		fmt.Fprintf(w, "  match (b) at c=5: c1=%.4f", c1)
		if zb, err := analysis.ZBoundVsMulticast(3, 1000, 5, pit); err == nil {
			fmt.Fprintf(w, ", memory win iff z <= %.1f", zb)
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintf(w, "  match (b) infeasible at c=5: need c <= %.4f\n",
			-math.Log(-math.Log(pit)))
	}
	if c1, err := analysis.TuneVsBroadcast(5, pit, 3); err == nil {
		fmt.Fprintf(w, "  match (a) at c=5: c1=%.4f\n", c1)
	} else {
		fmt.Fprintf(w, "  match (a) infeasible at c=5 (%v)\n", err)
	}
	if cT, err := analysis.TuneVsHierarchical(5, pit, 3, 10); err == nil {
		fmt.Fprintf(w, "  match (c) at c=5: cT=%.4f\n", cT)
	} else {
		fmt.Fprintf(w, "  match (c) infeasible at c=5 (%v)\n", err)
	}
	fmt.Fprintln(w)
	return nil
}
