package main

import (
	"strings"
	"testing"
)

func TestRunAllTables(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size simulation")
	}
	var out strings.Builder
	if err := run([]string{"-table", "all", "-alive", "1.0"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"Message complexity",
		"Memory complexity",
		"Reliability",
		"daMulticast",
		"gossip broadcast",
		"gossip multicast",
		"hierarchical broadcast",
		"parasite deliveries",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// daMulticast must report zero parasites.
	if !strings.Contains(s, "da=0") {
		t.Errorf("daMulticast parasites nonzero:\n%s", s)
	}
}

func TestRunSingleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size simulation")
	}
	var out strings.Builder
	if err := run([]string{"-table", "mem"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Memory complexity") {
		t.Error("missing memory table")
	}
	if strings.Contains(s, "Message complexity") {
		t.Error("unexpected message table")
	}
}

// TestRunMemTableShort keeps -short coverage alive: the memory table
// only builds topologies (no dissemination), so a single replication
// is cheap enough to run unconditionally.
func TestRunMemTableShort(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "mem", "-runs", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Memory complexity") {
		t.Error("missing memory table")
	}
}

func TestRunBadTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table", "bogus"}, &out); err == nil {
		t.Error("unknown table accepted")
	}
}
