package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: damulticast/internal/simnet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStepMerge20k 	      20	  33093523 ns/op	 2555147 B/op	       3 allocs/op
BenchmarkCodecEncode-8   	12345678	        95.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSharded20k 	       3	2028741713 ns/op	         1.000 delivery	    299995 event-msgs	796944448 B/op	 1221081 allocs/op
BenchmarkBogusLogLine that should be ignored
PASS
ok  	damulticast/internal/simnet	26.830s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(report.Results), report.Results)
	}

	r := report.Results[0]
	if r.Name != "BenchmarkStepMerge20k" || r.Iterations != 20 ||
		r.NsPerOp != 33093523 || r.BytesPerOp != 2555147 || r.AllocsPerOp != 3 {
		t.Errorf("StepMerge20k parsed as %+v", r)
	}

	if r := report.Results[1]; r.Name != "BenchmarkCodecEncode-8" || r.NsPerOp != 95.1 {
		t.Errorf("name not recorded verbatim: %+v", r)
	}

	r = report.Results[2]
	if r.Metrics["delivery"] != 1.0 || r.Metrics["event-msgs"] != 299995 {
		t.Errorf("custom metrics parsed as %+v", r.Metrics)
	}
	if r.BytesPerOp != 796944448 || r.AllocsPerOp != 1221081 {
		t.Errorf("benchmem columns after metrics parsed as %+v", r)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", "BenchmarkFoo 3", "BenchmarkFoo x y ns/op",
		"BenchmarkFoo 3 12.5 widgets",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}
