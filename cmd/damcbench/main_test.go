package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: damulticast/internal/simnet
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStepMerge20k 	      20	  33093523 ns/op	 2555147 B/op	       3 allocs/op
BenchmarkCodecEncode-8   	12345678	        95.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkSharded20k 	       3	2028741713 ns/op	         1.000 delivery	    299995 event-msgs	796944448 B/op	 1221081 allocs/op
BenchmarkBogusLogLine that should be ignored
PASS
ok  	damulticast/internal/simnet	26.830s
`

func TestParse(t *testing.T) {
	report, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(report.Results), report.Results)
	}

	r := report.Results[0]
	if r.Name != "BenchmarkStepMerge20k" || r.Iterations != 20 ||
		r.NsPerOp != 33093523 || r.BytesPerOp != 2555147 || r.AllocsPerOp != 3 {
		t.Errorf("StepMerge20k parsed as %+v", r)
	}

	if r := report.Results[1]; r.Name != "BenchmarkCodecEncode-8" || r.NsPerOp != 95.1 {
		t.Errorf("name not recorded verbatim: %+v", r)
	}

	r = report.Results[2]
	if r.Metrics["delivery"] != 1.0 || r.Metrics["event-msgs"] != 299995 {
		t.Errorf("custom metrics parsed as %+v", r.Metrics)
	}
	if r.BytesPerOp != 796944448 || r.AllocsPerOp != 1221081 {
		t.Errorf("benchmem columns after metrics parsed as %+v", r)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkFoo", "BenchmarkFoo 3", "BenchmarkFoo x y ns/op",
		"BenchmarkFoo 3 12.5 widgets",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("line %q accepted", line)
		}
	}
}

func TestCompareKeyStripsProcSuffix(t *testing.T) {
	tests := []struct{ in, want string }{
		{"BenchmarkFoo-8", "BenchmarkFoo"},
		{"BenchmarkFoo-128", "BenchmarkFoo"},
		{"BenchmarkFoo", "BenchmarkFoo"},
		{"BenchmarkSharded20k", "BenchmarkSharded20k"},
		{"BenchmarkSweepWorkers/workers=4-8", "BenchmarkSweepWorkers/workers=4"},
	}
	for _, tt := range tests {
		if got := compareKey(tt.in); got != tt.want {
			t.Errorf("compareKey(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestCompareReports(t *testing.T) {
	base := &Report{Results: []Result{
		{Name: "BenchmarkFast", NsPerOp: 100, BytesPerOp: 1024, AllocsPerOp: 4},
		{Name: "BenchmarkAllocFree", NsPerOp: 50, BytesPerOp: 0, AllocsPerOp: 0},
		{Name: "BenchmarkGone", NsPerOp: 10},
	}}

	// Within threshold (+20% ns, +7% bytes, same allocs): clean.
	cur := &Report{Results: []Result{
		{Name: "BenchmarkFast-8", NsPerOp: 120, BytesPerOp: 1100, AllocsPerOp: 4},
		{Name: "BenchmarkAllocFree-8", NsPerOp: 55, AllocsPerOp: 0},
		{Name: "BenchmarkNew-8", NsPerOp: 1}, // no baseline: ignored
	}}
	regs, matched := compareReports(base, cur, 0.25, 0, 0)
	if matched != 2 {
		t.Errorf("matched = %d, want 2", matched)
	}
	if len(regs) != 0 {
		t.Errorf("unexpected regressions: %v", regs)
	}

	// ns/op blowout, byte and alloc growth, and bytes/allocs appearing
	// from zero.
	cur = &Report{Results: []Result{
		{Name: "BenchmarkFast-8", NsPerOp: 200, BytesPerOp: 2048, AllocsPerOp: 6},
		{Name: "BenchmarkAllocFree-8", NsPerOp: 50, BytesPerOp: 16, AllocsPerOp: 1},
	}}
	regs, matched = compareReports(base, cur, 0.25, 0, 0)
	if matched != 2 {
		t.Errorf("matched = %d, want 2", matched)
	}
	if len(regs) != 5 {
		t.Fatalf("regressions = %v, want 5 entries", regs)
	}
	joined := strings.Join(regs, "\n")
	for _, want := range []string{
		"BenchmarkFast-8 ns/op", "BenchmarkFast-8 B/op", "BenchmarkFast-8 allocs/op",
		"BenchmarkAllocFree-8 B/op 0", "BenchmarkAllocFree-8 allocs/op 0",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("regressions missing %q:\n%s", want, joined)
		}
	}

	// Below the ns floor the timing check is skipped (machine-constant
	// noise), but byte and alloc regressions still fire.
	regs, _ = compareReports(base, cur, 0.25, 1000, 0)
	joined = strings.Join(regs, "\n")
	if strings.Contains(joined, "ns/op") {
		t.Errorf("sub-floor timing gated:\n%s", joined)
	}
	for _, want := range []string{"BenchmarkFast-8 B/op", "BenchmarkFast-8 allocs/op", "allocation-free"} {
		if !strings.Contains(joined, want) {
			t.Errorf("byte/alloc regressions lost under ns floor:\n%s", joined)
		}
	}

	// Below the bytes floor the relative B/op check is skipped too —
	// one size-class bump is not a regression — but growth from zero
	// still fails (that transition is deterministic at any size).
	regs, _ = compareReports(base, cur, 0.25, 0, 4096)
	joined = strings.Join(regs, "\n")
	if strings.Contains(joined, "BenchmarkFast-8 B/op") {
		t.Errorf("sub-floor bytes gated:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkAllocFree-8 B/op 0") {
		t.Errorf("zero-to-nonzero bytes lost under bytes floor:\n%s", joined)
	}
}

func TestRunCompareGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "baseline.json")
	base := &Report{Results: []Result{{Name: "BenchmarkStepMerge20k", NsPerOp: 33093523, BytesPerOp: 2555147, AllocsPerOp: 3}}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}

	// The sample run matches the baseline exactly: gate passes, and
	// stdout still carries the new JSON report.
	var stdout, stderr strings.Builder
	if err := run([]string{"-label", "x", "-compare", baseline},
		strings.NewReader(sample), &stdout, &stderr); err != nil {
		t.Fatalf("clean compare failed: %v\n%s", err, stderr.String())
	}
	var rep Report
	if err := json.Unmarshal([]byte(stdout.String()), &rep); err != nil {
		t.Fatalf("stdout is not a report: %v", err)
	}
	if rep.Label != "x" || len(rep.Results) != 3 {
		t.Errorf("emitted report = %+v", rep)
	}
	if !strings.Contains(stderr.String(), "no regressions") {
		t.Errorf("stderr = %q", stderr.String())
	}

	// A much slower baseline turns the same run into a failure.
	base.Results[0].NsPerOp = 1000
	data, err = json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, data, 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	err = run([]string{"-compare", baseline}, strings.NewReader(sample), &stdout, &stderr)
	if !errors.Is(err, errRegression) {
		t.Fatalf("err = %v, want errRegression", err)
	}
	if !strings.Contains(stderr.String(), "REGRESSION") {
		t.Errorf("stderr = %q", stderr.String())
	}
}

func TestRunCompareMissingBaseline(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"-compare", filepath.Join(t.TempDir(), "nope.json")},
		strings.NewReader(sample), &stdout, &stderr)
	if err == nil || errors.Is(err, errRegression) {
		t.Errorf("err = %v, want read failure", err)
	}
}
