// Command damcbench converts `go test -bench -benchmem` output into a
// JSON document, so CI can archive benchmark runs (BENCH_PR2.json and
// successors) as machine-readable artifacts and diff them across
// commits — and gates on them: -compare checks the parsed run against
// a baseline report and fails on regressions.
//
// Usage:
//
//	go test -bench . -benchmem ./... | damcbench -label after > BENCH.json
//	go test -bench . -benchmem ./... | damcbench -compare BENCH_BASELINE.json > BENCH.json
//
// Standard columns (iterations, ns/op, B/op, allocs/op) become fixed
// fields; every extra `value unit` pair reported via b.ReportMetric
// lands in the metrics map.
//
// In -compare mode the new report is still written to stdout, then
// every benchmark present in both runs is checked: ns/op, B/op or
// allocs/op worse than baseline by more than -threshold (default 0.25,
// i.e. +25%) is a regression, as is any allocation (count or bytes)
// appearing where the baseline had zero (both are deterministic).
// Benchmarks are matched with the trailing -GOMAXPROCS suffix
// stripped, so a baseline recorded on one machine gates runs on
// another. Because sub-microsecond timings are dominated by machine
// constants (cache geometry, turbo states) rather than code,
// benchmarks whose baseline ns/op is below -nsfloor (default 1µs) are
// exempt from the ns check — their allocs/op is still gated; likewise
// baseline B/op below -bfloor (default 64, one small size class) is
// exempt from the bytes check. Regressions are listed on stderr and
// the command exits nonzero.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Label   string   `json:"label,omitempty"`
	Results []Result `json:"results"`
}

// errRegression marks a failed -compare gate (exit 1, message already
// printed).
var errRegression = errors.New("benchmark regression vs baseline")

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		if !errors.Is(err, errRegression) {
			fmt.Fprintln(os.Stderr, "damcbench:", err)
		}
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("damcbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "", "label recorded in the output (e.g. before/after, a commit hash)")
	compare := fs.String("compare", "", "baseline report JSON to gate against; regressions fail the run")
	threshold := fs.Float64("threshold", 0.25, "relative ns/op and allocs/op slack before a change counts as a regression")
	nsFloor := fs.Float64("nsfloor", 1000, "baseline ns/op below which the ns check is skipped (timing noise floor; allocs still gated)")
	bFloor := fs.Float64("bfloor", 64, "baseline B/op below which the bytes check is skipped (allocator size-class noise floor)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold < 0 {
		return fmt.Errorf("threshold must be >= 0, got %g", *threshold)
	}
	if *nsFloor < 0 {
		return fmt.Errorf("nsfloor must be >= 0, got %g", *nsFloor)
	}
	if *bFloor < 0 {
		return fmt.Errorf("bfloor must be >= 0, got %g", *bFloor)
	}
	report, err := parse(stdin)
	if err != nil {
		return err
	}
	report.Label = *label
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if *compare == "" {
		return nil
	}
	baseline, err := readReport(*compare)
	if err != nil {
		return fmt.Errorf("compare: %w", err)
	}
	regs, matched := compareReports(baseline, report, *threshold, *nsFloor, *bFloor)
	fmt.Fprintf(stderr, "damcbench: compared %d benchmark(s) against %s (threshold +%.0f%%)\n",
		matched, *compare, *threshold*100)
	if len(regs) == 0 {
		fmt.Fprintln(stderr, "damcbench: no regressions")
		return nil
	}
	for _, r := range regs {
		fmt.Fprintln(stderr, "damcbench: REGRESSION:", r)
	}
	return errRegression
}

func readReport(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out Report
	if err := json.NewDecoder(f).Decode(&out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &out, nil
}

// procSuffix matches the -GOMAXPROCS suffix go test appends to
// benchmark names ("BenchmarkFoo-8").
var procSuffix = regexp.MustCompile(`-\d+$`)

// compareKey normalizes a benchmark name for cross-machine matching by
// stripping the trailing proc-count suffix. A benchmark whose own name
// ends in "-<digits>" would collide; none do here, and the baseline is
// checked in alongside the code, so collisions would be caught in
// review.
func compareKey(name string) string { return procSuffix.ReplaceAllString(name, "") }

// compareReports gates cur against base: every benchmark present in
// both is checked for ns/op, B/op and allocs/op regressions beyond
// threshold; the ns check only applies when the baseline timing is at
// least nsFloor (below it, cross-machine constants drown real signal),
// and the bytes check when the baseline B/op is at least bFloor (below
// it, a single size-class bump reads as a huge relative jump). B/op is
// deterministic like allocs/op, so bytes appearing where the baseline
// allocated none always fail. It returns the regression descriptions
// and how many benchmarks matched.
func compareReports(base, cur *Report, threshold, nsFloor, bFloor float64) (regressions []string, matched int) {
	baseline := make(map[string]Result, len(base.Results))
	for _, r := range base.Results {
		baseline[compareKey(r.Name)] = r
	}
	for _, r := range cur.Results {
		b, ok := baseline[compareKey(r.Name)]
		if !ok {
			continue
		}
		matched++
		if b.NsPerOp >= nsFloor && r.NsPerOp > b.NsPerOp*(1+threshold) {
			regressions = append(regressions, fmt.Sprintf(
				"%s ns/op %.4g -> %.4g (+%.1f%%, limit +%.0f%%)",
				r.Name, b.NsPerOp, r.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100, threshold*100))
		}
		switch {
		case b.BytesPerOp == 0 && r.BytesPerOp > 0:
			regressions = append(regressions, fmt.Sprintf(
				"%s B/op 0 -> %g (baseline was allocation-free)", r.Name, r.BytesPerOp))
		case b.BytesPerOp >= bFloor && r.BytesPerOp > b.BytesPerOp*(1+threshold):
			regressions = append(regressions, fmt.Sprintf(
				"%s B/op %g -> %g (+%.1f%%, limit +%.0f%%)",
				r.Name, b.BytesPerOp, r.BytesPerOp, (r.BytesPerOp/b.BytesPerOp-1)*100, threshold*100))
		}
		switch {
		case b.AllocsPerOp == 0 && r.AllocsPerOp > 0:
			regressions = append(regressions, fmt.Sprintf(
				"%s allocs/op 0 -> %g (baseline was allocation-free)", r.Name, r.AllocsPerOp))
		case b.AllocsPerOp > 0 && r.AllocsPerOp > b.AllocsPerOp*(1+threshold):
			regressions = append(regressions, fmt.Sprintf(
				"%s allocs/op %g -> %g (+%.1f%%, limit +%.0f%%)",
				r.Name, b.AllocsPerOp, r.AllocsPerOp, (r.AllocsPerOp/b.AllocsPerOp-1)*100, threshold*100))
		}
	}
	return regressions, matched
}

// parse scans benchmark output, ignoring everything that is not a
// benchmark result line.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if res, ok := parseLine(line); ok {
			report.Results = append(report.Results, res)
		}
	}
	return report, sc.Err()
}

// parseLine parses one `BenchmarkName-P  N  1234 ns/op  [value unit]...`
// line. Returns ok=false for lines that merely start with "Benchmark"
// (e.g. a benchmark's own log output).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	// The name is recorded exactly as printed (GOMAXPROCS suffix
	// included, when present): stripping it cannot be done reliably —
	// "-2" might be part of the benchmark's own name — and consumers
	// diffing runs from the same machine see consistent names anyway.
	// Only -compare normalizes names, where cross-machine matching
	// outweighs that ambiguity.
	res := Result{
		Name:       fields[0],
		Iterations: iters,
		NsPerOp:    ns,
	}
	// Remaining fields come in `value unit` pairs.
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[fields[i+1]] = v
		}
	}
	return res, true
}
