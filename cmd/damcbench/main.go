// Command damcbench converts `go test -bench -benchmem` output into a
// JSON document, so CI can archive benchmark runs (BENCH_PR2.json and
// successors) as machine-readable artifacts and diff them across
// commits.
//
// Usage:
//
//	go test -bench . -benchmem ./... | damcbench -label after > BENCH.json
//
// Standard columns (iterations, ns/op, B/op, allocs/op) become fixed
// fields; every extra `value unit` pair reported via b.ReportMetric
// lands in the metrics map.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Label   string   `json:"label,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	label := flag.String("label", "", "label recorded in the output (e.g. before/after, a commit hash)")
	flag.Parse()
	report, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "damcbench:", err)
		os.Exit(1)
	}
	report.Label = *label
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "damcbench:", err)
		os.Exit(1)
	}
}

// parse scans benchmark output, ignoring everything that is not a
// benchmark result line.
func parse(r io.Reader) (*Report, error) {
	report := &Report{Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if res, ok := parseLine(line); ok {
			report.Results = append(report.Results, res)
		}
	}
	return report, sc.Err()
}

// parseLine parses one `BenchmarkName-P  N  1234 ns/op  [value unit]...`
// line. Returns ok=false for lines that merely start with "Benchmark"
// (e.g. a benchmark's own log output).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	ns, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return Result{}, false
	}
	// The name is recorded exactly as printed (GOMAXPROCS suffix
	// included, when present): stripping it cannot be done reliably —
	// "-2" might be part of the benchmark's own name — and consumers
	// diffing runs from the same machine see consistent names anyway.
	res := Result{
		Name:       fields[0],
		Iterations: iters,
		NsPerOp:    ns,
	}
	// Remaining fields come in `value unit` pairs.
	for i := 4; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[fields[i+1]] = v
		}
	}
	return res, true
}
