// Command damcload is the live-path load generator and benchmark: it
// stands up one hub subscribed to many topics, aims a fleet of
// publisher hubs at it, and measures delivered events per second
// through the hub's receive path — the number the batched wire path
// (EVENT_BATCH frames + pooled decode, codec v5) exists to move.
//
// Topology: a central hub joins -topics topics; each topic gets -peers
// publisher hubs (their own endpoints) that know the central hub as a
// group contact and publish -events events each. Throughput is counted
// at the central hub's delivery channels (Block overflow policy, so
// the count is honest), and the clock stops at the last delivery.
//
// Usage:
//
//	damcload -topics 8 -peers 4 -events 2000 -batch 16
//	damcload -mode both -check 2.0        # gate: batched >= 2x unbatched
//	damcload -transport tcp -topics 2 -peers 2 -events 500
//
// -mode unbatched publishes one event per call (one loop round-trip
// and one frame per elected target, the pre-v5 path); -mode batched
// hands the publisher -batch events per PublishBatch call so events
// for a shared target coalesce into EVENT_BATCH frames; -mode both
// runs both and reports the ratio, failing if it is below -check.
//
// With -benchfmt the results are printed as Go benchmark lines
// (ns/op per delivered event, plus an events/sec metric), so a run can
// be piped through damcbench and land in BENCH_BASELINE.json next to
// the microbenchmarks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"damulticast"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "damcload:", err)
		os.Exit(1)
	}
}

type config struct {
	topics    int
	peers     int
	events    int
	batch     int
	payload   int
	mode      string
	transport string
	check     float64
	benchfmt  bool
	timeout   time.Duration
}

// result is one measured load run.
type result struct {
	published int64
	delivered int64
	elapsed   time.Duration
}

func (r result) rate() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.delivered) / r.elapsed.Seconds()
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("damcload", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	cfg := config{}
	fs.IntVar(&cfg.topics, "topics", 8, "topics the central hub subscribes to")
	fs.IntVar(&cfg.peers, "peers", 4, "publisher hubs per topic")
	fs.IntVar(&cfg.events, "events", 1000, "events published per publisher")
	fs.IntVar(&cfg.batch, "batch", 16, "events per PublishBatch call in batched mode")
	fs.IntVar(&cfg.payload, "payload", 100, "payload bytes per event")
	fs.StringVar(&cfg.mode, "mode", "both", "batched, unbatched, or both")
	fs.StringVar(&cfg.transport, "transport", "mem", "mem (in-process fabric) or tcp (loopback sockets)")
	fs.Float64Var(&cfg.check, "check", 0, "with -mode both: fail unless batched/unbatched rate ratio >= this")
	fs.BoolVar(&cfg.benchfmt, "benchfmt", false, "print Go benchmark lines (damcbench-compatible)")
	fs.DurationVar(&cfg.timeout, "timeout", 2*time.Minute, "per-run wall clock budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.topics < 1 || cfg.peers < 1 || cfg.events < 1 || cfg.payload < 1 {
		return fmt.Errorf("topics, peers, events and payload must all be >= 1")
	}
	if cfg.batch < 2 {
		return fmt.Errorf("batch must be >= 2 (1 is what unbatched mode measures), got %d", cfg.batch)
	}
	if cfg.transport != "mem" && cfg.transport != "tcp" {
		return fmt.Errorf("unknown transport %q", cfg.transport)
	}

	switch cfg.mode {
	case "batched", "unbatched":
		batch := 1
		if cfg.mode == "batched" {
			batch = cfg.batch
		}
		res, err := measure(cfg, batch)
		if err != nil {
			return err
		}
		report(stdout, cfg, cfg.mode, batch, res)
		return nil
	case "both":
		un, err := measure(cfg, 1)
		if err != nil {
			return err
		}
		report(stdout, cfg, "unbatched", 1, un)
		ba, err := measure(cfg, cfg.batch)
		if err != nil {
			return err
		}
		report(stdout, cfg, "batched", cfg.batch, ba)
		ratio := 0.0
		if un.rate() > 0 {
			ratio = ba.rate() / un.rate()
		}
		fmt.Fprintf(stdout, "damcload: batched/unbatched throughput ratio = %.2fx\n", ratio)
		if cfg.check > 0 && ratio < cfg.check {
			return fmt.Errorf("ratio %.2fx below required %.2fx", ratio, cfg.check)
		}
		return nil
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}
}

func report(w io.Writer, cfg config, mode string, batch int, r result) {
	total := int64(cfg.topics) * int64(cfg.peers) * int64(cfg.events)
	if cfg.benchfmt {
		nsPerEvent := float64(r.elapsed.Nanoseconds()) / float64(max64(r.delivered, 1))
		fmt.Fprintf(w, "BenchmarkLiveLoad%s \t%8d\t%12.1f ns/op\t%12.0f events/sec\n",
			titleCase(mode), r.delivered, nsPerEvent, r.rate())
		return
	}
	fmt.Fprintf(w, "damcload: %-9s topics=%d peers=%d events=%d batch=%d transport=%s: %d/%d delivered in %v (%.0f events/sec)\n",
		mode, cfg.topics, cfg.peers, cfg.events, batch, cfg.transport,
		r.delivered, total, r.elapsed.Round(time.Millisecond), r.rate())
}

func titleCase(s string) string {
	if s == "" {
		return s
	}
	return string(s[0]-'a'+'A') + s[1:]
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// measure runs one full load round at the given publish batch size
// (1 = the single-Publish path) and reports delivered throughput at
// the central hub.
func measure(cfg config, batch int) (result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	// Transport factory: a fresh fabric (or fresh loopback sockets)
	// per run, so runs never share queues.
	var mem *damulticast.MemNetwork
	if cfg.transport == "mem" {
		mem = damulticast.NewMemNetwork()
	}
	newTransport := func(name string) (damulticast.Transport, string, error) {
		if mem != nil {
			tr, err := mem.AddTransport(name)
			return tr, name, err
		}
		tr, err := damulticast.NewTCPTransport("127.0.0.1:0")
		if err != nil {
			return nil, "", err
		}
		return tr, tr.Addr(), nil
	}

	params := damulticast.DefaultParams()
	params.GroupSizeHint = cfg.peers + 1

	centralTr, centralAddr, err := newTransport("central")
	if err != nil {
		return result{}, err
	}
	central, err := damulticast.NewHub(centralTr,
		damulticast.WithParams(params),
		damulticast.WithTickInterval(100*time.Millisecond))
	if err != nil {
		return result{}, err
	}
	defer central.Stop()

	var delivered atomic.Int64
	var lastDelivery atomic.Int64 // ns since start, stamped per event
	start := time.Now()
	var drainers sync.WaitGroup
	topicName := func(i int) string { return fmt.Sprintf(".load%d", i) }
	for t := 0; t < cfg.topics; t++ {
		sub, err := central.Join(ctx, topicName(t),
			damulticast.WithOverflow(damulticast.Block),
			damulticast.WithEventBuffer(4096))
		if err != nil {
			return result{}, err
		}
		drainers.Add(1)
		go func() {
			defer drainers.Done()
			for range sub.Events() {
				delivered.Add(1)
				lastDelivery.Store(int64(time.Since(start)))
			}
		}()
	}

	// The publisher fleet: one hub per (topic, peer), all aimed at the
	// central hub.
	type pubHandle struct {
		hub *damulticast.Hub
		sub *damulticast.Subscription
	}
	pubs := make([]pubHandle, 0, cfg.topics*cfg.peers)
	defer func() {
		for _, p := range pubs {
			_ = p.hub.Stop()
		}
	}()
	for t := 0; t < cfg.topics; t++ {
		for p := 0; p < cfg.peers; p++ {
			tr, _, err := newTransport(fmt.Sprintf("pub-t%d-p%d", t, p))
			if err != nil {
				return result{}, err
			}
			hub, err := damulticast.NewHub(tr,
				damulticast.WithParams(params),
				damulticast.WithTickInterval(100*time.Millisecond))
			if err != nil {
				return result{}, err
			}
			sub, err := hub.Join(ctx, topicName(t), damulticast.WithGroupContacts(centralAddr))
			if err != nil {
				_ = hub.Stop()
				return result{}, err
			}
			pubs = append(pubs, pubHandle{hub: hub, sub: sub})
		}
	}

	payload := make([]byte, cfg.payload)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	var published atomic.Int64
	var publishers sync.WaitGroup
	var firstErr atomic.Value
	start = time.Now()
	for _, p := range pubs {
		publishers.Add(1)
		go func(sub *damulticast.Subscription) {
			defer publishers.Done()
			if batch <= 1 {
				for i := 0; i < cfg.events; i++ {
					if _, err := sub.Publish(ctx, payload); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					published.Add(1)
				}
				return
			}
			chunk := make([][]byte, 0, batch)
			for done := 0; done < cfg.events; {
				n := min(batch, cfg.events-done)
				chunk = chunk[:0]
				for i := 0; i < n; i++ {
					chunk = append(chunk, payload)
				}
				if _, err := sub.PublishBatch(ctx, chunk); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				published.Add(int64(n))
				done += n
			}
		}(p.sub)
	}
	publishers.Wait()
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return result{}, err
	}

	// Let in-flight deliveries settle: done when every published event
	// arrived, or nothing new has arrived for a while (frames shed
	// under overload are counted losses, not hangs).
	expected := published.Load()
	settle := time.NewTicker(20 * time.Millisecond)
	defer settle.Stop()
	stable := 0
	last := int64(-1)
	for delivered.Load() < expected && stable < 25 && ctx.Err() == nil {
		<-settle.C
		if d := delivered.Load(); d == last {
			stable++
		} else {
			stable, last = 0, d
		}
	}

	res := result{
		published: published.Load(),
		delivered: delivered.Load(),
		elapsed:   time.Duration(lastDelivery.Load()),
	}
	// Tear down before the drainers are waited on: Stop closes every
	// subscription channel.
	_ = central.Stop()
	drainers.Wait()
	return res, nil
}
