package damulticast

import (
	"strings"
	"testing"

	"damulticast/internal/core"
	"damulticast/internal/ids"
)

// nullTransport swallows frames: the encode-side microscope. Send does
// nothing, so any allocation measured through it belongs to the
// serialization path alone.
type nullTransport struct{ addr string }

func (t *nullTransport) Addr() string                    { return t.addr }
func (t *nullTransport) Send(string, []byte) error       { return nil }
func (t *nullTransport) SetHandler(func(payload []byte)) {}
func (t *nullTransport) Close() error                    { return nil }

// fanoutFixture builds a node over a null transport plus a
// representative event message and target list.
func fanoutFixture(t testing.TB, targets int) (*subEnv, []ids.ProcessID, *core.Message) {
	t.Helper()
	n, err := NewNode(Config{Topic: ".bench", Transport: &nullTransport{addr: "null"}})
	if err != nil {
		t.Fatal(err)
	}
	tgts := make([]ids.ProcessID, targets)
	for i := range tgts {
		tgts[i] = ids.ProcessID(strings.Repeat("t", 8) + string(rune('a'+i)))
	}
	m := &core.Message{
		Type: core.MsgEvent, From: "publisher", FromTopic: ".bench",
		Event: &core.Event{
			ID:      ids.EventID{Origin: "publisher", Seq: 42},
			Topic:   ".bench",
			Payload: []byte("benchmark-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		},
	}
	return (*subEnv)(n.sub), tgts, m
}

// TestEncodeOnceFanoutAllocs is the allocation regression gate for the
// encode-once fan-out: broadcasting one event to 8 targets must cost
// at most 1 allocation on the encode side (pooled buffers amortize to
// zero), and at least 5x fewer than the per-target JSON path it
// replaced.
func TestEncodeOnceFanoutAllocs(t *testing.T) {
	env, targets, m := fanoutFixture(t, 8)

	env.SendBatch(targets, m) // warm the buffer pool
	binAllocs := testing.AllocsPerRun(200, func() {
		env.SendBatch(targets, m)
	})
	if binAllocs > 1 {
		t.Errorf("encode-once fan-out to %d targets: %.1f allocs, want <= 1", len(targets), binAllocs)
	}

	// The replaced path: one JSON encoding per target.
	jsonAllocs := testing.AllocsPerRun(200, func() {
		for range targets {
			if _, err := encodeMessageJSON(m); err != nil {
				t.Fatal(err)
			}
		}
	})
	if floor := max(binAllocs, 1); jsonAllocs < 5*floor {
		t.Errorf("JSON fan-out = %.1f allocs vs binary %.1f: less than the 5x win the codec exists for", jsonAllocs, binAllocs)
	}
	t.Logf("fan-out to %d targets: binary %.1f allocs, per-target JSON %.1f allocs", len(targets), binAllocs, jsonAllocs)
}

// TestSingleSendAllocs: the non-batched send path also runs on pooled
// buffers.
func TestSingleSendAllocs(t *testing.T) {
	env, targets, m := fanoutFixture(t, 1)
	env.Send(targets[0], m)
	if allocs := testing.AllocsPerRun(200, func() { env.Send(targets[0], m) }); allocs > 1 {
		t.Errorf("single send: %.1f allocs, want <= 1", allocs)
	}
}

// TestBinaryRejectsJSONFrame / TestJSONRejectsBinaryFrame pin the
// compatibility policy: the version byte cleanly separates the codecs,
// so a version-0 (JSON) peer and a version-1 (binary) peer can never
// silently misparse each other.
func TestBinaryRejectsJSONFrame(t *testing.T) {
	for _, m := range codecSeedMessages() {
		frame, err := encodeMessageJSON(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeMessage(frame); err == nil {
			t.Errorf("%s: binary decoder accepted a JSON frame", m.Type)
		}
	}
}

func TestJSONRejectsBinaryFrame(t *testing.T) {
	for _, m := range codecSeedMessages() {
		frame, err := encodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := decodeMessageJSON(frame); err == nil {
			t.Errorf("%s: JSON decoder accepted a binary frame", m.Type)
		}
	}
}

// TestDecodeTruncatedFrames: every proper prefix of a valid frame must
// be rejected, never panic, never decode.
func TestDecodeTruncatedFrames(t *testing.T) {
	for _, m := range codecSeedMessages() {
		frame, err := encodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, err := decodeMessage(frame[:cut]); err == nil {
				t.Fatalf("%s: truncation to %d of %d bytes accepted", m.Type, cut, len(frame))
			}
		}
	}
}

// TestDecodeTrailingGarbage: extra bytes after a complete message are
// rejected (frames are exact).
func TestDecodeTrailingGarbage(t *testing.T) {
	frame, err := encodeMessage(&core.Message{Type: core.MsgPing, From: "p"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := decodeMessage(append(frame, 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestDecodeOversizedCounts: a corrupt frame claiming more elements or
// string bytes than it carries must be rejected before any giant
// allocation happens.
func TestDecodeOversizedCounts(t *testing.T) {
	// version, type=MsgReqContact, empty Dest/From/FromTopic, no
	// event, empty Origin/OriginTopic, then a search-topic count of
	// 2^40.
	frame := []byte{codecVersion, byte(core.MsgReqContact), 0, 0, 0, 0, 0, 0,
		0x80, 0x80, 0x80, 0x80, 0x80, 0x20} // uvarint(1<<40)
	if _, err := decodeMessage(frame); err == nil {
		t.Error("absurd element count accepted")
	}
	// A string field (the dest demux) claiming 100 bytes in a tiny
	// frame.
	frame = []byte{codecVersion, byte(core.MsgPing), 100, 'x', 'y', 'z'}
	if _, err := decodeMessage(frame); err == nil {
		t.Error("oversized string length accepted")
	}
}

// TestDecodeBadVersionAndType: other versions (the retired versions
// 1-4 as well as future ones) and unknown types are refused outright.
func TestDecodeBadVersionAndType(t *testing.T) {
	good, err := encodeMessage(&core.Message{Type: core.MsgPong, From: "p"})
	if err != nil {
		t.Fatal(err)
	}
	for _, version := range []byte{0x01, 0x02, 0x03, 0x04, 0x06} {
		bad := append([]byte{}, good...)
		bad[0] = version
		if _, err := decodeMessage(bad); err == nil {
			t.Errorf("version byte %#x accepted", version)
		}
	}
	for _, typ := range []uint64{0, 13, 15, 99} {
		frame := append([]byte{codecVersion, byte(typ)}, good[2:]...)
		if _, err := decodeMessage(frame); err == nil {
			t.Errorf("unknown type %d accepted", typ)
		}
	}
}

// TestDecodeRejectsRetiredVersionFrames pins the cross-version policy:
// retired layouts under any message type must be rejected by the
// version byte alone — peers from different generations can never
// silently misparse each other. A v4 frame is byte-identical to the
// v5 frame apart from the version byte (v5 only added the EVENT_BATCH
// type); a v3 frame is the v4 frame with the
// three zero bytes of the empty bloom digest collapsed to the one
// zero-count byte of the id-list digest it replaced; a v2 frame is the
// v3 frame minus the dest demux field (one zero byte after the type,
// for the topic-less seed messages); a v1 frame additionally lacks the
// two trailing zero-count recovery fields.
func TestDecodeRejectsRetiredVersionFrames(t *testing.T) {
	for _, m := range codecSeedMessages() {
		if m.Dest != "" || m.BloomBits != nil || len(m.Events) > 0 {
			continue // only zero-dest empty-tail frames shrink to the old layouts
		}
		frame, err := encodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		v4 := append([]byte{}, frame...)
		v4[0] = 0x04
		if _, err := decodeMessage(v4); err == nil {
			t.Errorf("%s: version-4 frame accepted", m.Type)
		}
		// The frame tail is superTopic(0) bloom(0,0,0) events(0); the
		// v3 tail was superTopic(0) digestIDs(0) events(0) — two fewer
		// zero bytes.
		v3 := append([]byte{}, frame[:len(frame)-2]...)
		v3[0] = 0x03
		if _, err := decodeMessage(v3); err == nil {
			t.Errorf("%s: version-3 frame accepted", m.Type)
		}
		v2 := append([]byte{}, v3[:2]...) // version + 1-byte type
		v2 = append(v2, v3[3:]...)        // skip the empty dest
		v2[0] = 0x02
		if _, err := decodeMessage(v2); err == nil {
			t.Errorf("%s: version-2 frame accepted", m.Type)
		}
		v1 := append([]byte{}, v2[:len(v2)-2]...)
		v1[0] = 0x01
		if _, err := decodeMessage(v1); err == nil {
			t.Errorf("%s: version-1 frame accepted", m.Type)
		}
	}
}

// --- Codec microbenchmarks -------------------------------------------

func codecBenchMessage() *core.Message {
	return &core.Message{
		Type: core.MsgEvent, From: "proc-17", FromTopic: ".news.sports",
		Event: &core.Event{
			ID:      ids.EventID{Origin: "proc-17", Seq: 123456},
			Topic:   ".news.sports.football",
			Payload: []byte("benchmark-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		},
	}
}

func BenchmarkCodecEncode(b *testing.B) {
	m := codecBenchMessage()
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendMessage(buf[:0], m)
	}
	_ = buf
}

func BenchmarkCodecEncodeJSON(b *testing.B) {
	m := codecBenchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := encodeMessageJSON(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecode(b *testing.B) {
	frame, err := encodeMessage(codecBenchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeMessage(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecDecodeJSON(b *testing.B) {
	frame, err := encodeMessageJSON(codecBenchMessage())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := decodeMessageJSON(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecFanout8 measures a full 8-target event broadcast on
// the encode-once path (vs the per-target JSON encode it replaced).
func BenchmarkCodecFanout8(b *testing.B) {
	env, targets, m := fanoutFixture(b, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.SendBatch(targets, m)
	}
}

func BenchmarkCodecFanout8JSON(b *testing.B) {
	_, targets, m := fanoutFixture(b, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for range targets {
			if _, err := encodeMessageJSON(m); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkCodecRoundTrip covers the full wire cycle for a topic-table
// shuffle — the heaviest control message.
func BenchmarkCodecRoundTrip(b *testing.B) {
	m := codecSeedMessages()[5] // MsgShuffle with digest + super entries
	if m.Type != core.MsgShuffle {
		b.Fatalf("seed order changed: %s", m.Type)
	}
	var buf []byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = appendMessage(buf[:0], m)
		if _, err := decodeMessage(buf); err != nil {
			b.Fatal(err)
		}
	}
}
