package damulticast

import (
	"bytes"
	"reflect"
	"testing"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
)

// codecSeedMessages covers every message type the wire carries,
// populated fields included.
func codecSeedMessages() []*core.Message {
	return []*core.Message{
		{
			Type: core.MsgEvent, From: "p1", FromTopic: ".a", Dest: ".a",
			Event: &core.Event{ID: ids.EventID{Origin: "p1", Seq: 7}, Topic: ".a.b", Payload: []byte("payload")},
		},
		{
			Type: core.MsgReqContact, From: "p2", FromTopic: ".a.b",
			Origin: "p2", OriginTopic: ".a.b",
			SearchTopics: []topic.Topic{".a", "."}, TTL: 3, ReqID: 11,
		},
		{Type: core.MsgAnsContact, From: "p3", Dest: ".a.b", Contacts: []ids.ProcessID{"x", "y"}, ContactsTopic: ".a"},
		{Type: core.MsgNewProcessReq, From: "p4"},
		{Type: core.MsgNewProcessAns, From: "p5", Contacts: []ids.ProcessID{"z"}, ContactsTopic: "."},
		{
			Type: core.MsgShuffle, From: "p6",
			Digest:       membership.Digest{Entries: []membership.Entry{{ID: "q", Age: 3}}},
			SuperEntries: []membership.Entry{{ID: "s", Age: 1}},
			SuperTopic:   ".a",
		},
		{Type: core.MsgShuffleReply, From: "p7", Digest: membership.Digest{}},
		{Type: core.MsgPing, From: "p8"},
		{Type: core.MsgPong, From: "p9"},
		{Type: core.MsgLeave, From: "p10", FromTopic: ".a.b"},
		{
			Type: core.MsgDigest, From: "p11", FromTopic: ".a", Dest: ".a", TTL: 1,
			BloomBits: []byte{0xde, 0xad, 0xbe, 0xef}, BloomK: 3, BloomSeed: 0x1234567890abcdef,
		},
		{
			Type: core.MsgDigestAns, From: "p12", FromTopic: ".a",
			Events: []*core.Event{
				{ID: ids.EventID{Origin: "p1", Seq: 7}, Topic: ".a", Payload: []byte("missed")},
				{ID: ids.EventID{Origin: "p2", Seq: 1}, Topic: ".a.b", Payload: nil},
			},
		},
		// Appended last: BenchmarkCodecRoundTrip indexes this list.
		{
			Type: core.MsgEventBatch, From: "p13", FromTopic: ".a.b", Dest: ".a",
			Events: []*core.Event{
				{ID: ids.EventID{Origin: "p13", Seq: 41}, Topic: ".a.b", Payload: []byte("batched-1")},
				{ID: ids.EventID{Origin: "p13", Seq: 42}, Topic: ".a.b", Payload: []byte("batched-2")},
				{ID: ids.EventID{Origin: "p9", Seq: 5}, Topic: ".a.b.c", Payload: nil},
			},
		},
	}
}

// FuzzMessageCodec asserts two properties of the binary codec over
// arbitrary byte input:
//
//  1. decodeMessage never panics, and rejects malformed frames with an
//     error rather than handing garbage to the protocol;
//  2. any frame it accepts round-trips: re-encoding the decoded
//     message and decoding again yields a deep-equal message
//     (encode∘decode is a fixpoint), so accepted frames carry
//     well-defined protocol state.
//
// Seeds cover valid binary frames of every message type, truncations
// and corruptions of them, legacy JSON frames (which the version byte
// must reject), and structural garbage.
func FuzzMessageCodec(f *testing.F) {
	for _, m := range codecSeedMessages() {
		raw, err := encodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
		f.Add(raw[:len(raw)/2])              // truncated mid-message
		f.Add(append(raw[:0:0], raw[1:]...)) // version byte sheared off
		mut := append(raw[:0:0], raw...)
		mut[len(mut)/2] ^= 0xff // flipped bits in the middle
		f.Add(mut)
		jsonRaw, err := encodeMessageJSON(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(jsonRaw) // legacy wire format: must be cleanly rejected
	}
	f.Add([]byte("{not json"))
	f.Add([]byte(`{}`))
	f.Add([]byte{codecVersion})
	f.Add([]byte{codecVersion, 0})
	f.Add([]byte{codecVersion, 99, 0, 0, 0})
	f.Add([]byte{0x01, 1, 0, 0, 0})                              // retired version 1
	f.Add([]byte{0x02, 1, 0, 0, 0})                              // retired version 2
	f.Add([]byte{0x03, 1, 0, 0, 0})                              // retired version 3 (id-list digests)
	f.Add([]byte{0x04, 1, 0, 0, 0})                              // retired version 4 (no EVENT_BATCH)
	f.Add([]byte{0x06, 1, 0, 0, 0})                              // future version
	f.Add([]byte{codecVersion, 1, 0xff, 0xff, 0xff, 0xff, 0xff}) // runaway varint
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMessage(data)
		if err != nil {
			return // rejected: fine, as long as we did not panic
		}
		if !m.Type.Known() {
			t.Fatalf("decoder accepted unknown type %d", int(m.Type))
		}
		re, err := encodeMessage(m)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		m2, err := decodeMessage(re)
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("codec not a fixpoint:\n  first:  %+v\n  second: %+v", m, m2)
		}
	})
}

// TestMessageCodecRoundTripAllTypes pins exact round-trip fidelity for
// every populated message type (the fuzz seeds, verified field by
// field rather than only as a fixpoint).
func TestMessageCodecRoundTripAllTypes(t *testing.T) {
	for _, m := range codecSeedMessages() {
		raw, err := encodeMessage(m)
		if err != nil {
			t.Fatalf("%s: encode: %v", m.Type, err)
		}
		got, err := decodeMessage(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s: round trip mismatch:\n  sent: %+v\n  got:  %+v", m.Type, m, got)
		}
	}
}

// TestDecodeMessageRejectsUnknownType: garbage type fields never reach
// the protocol, on either codec.
func TestDecodeMessageRejectsUnknownType(t *testing.T) {
	for _, frame := range []string{`{}`, `{"Type":0}`, `{"Type":-3}`, `{"Type":999}`} {
		if _, err := decodeMessage([]byte(frame)); err == nil {
			t.Errorf("frame %s accepted by binary decoder", frame)
		}
		if _, err := decodeMessageJSON([]byte(frame)); err == nil {
			t.Errorf("frame %s accepted by JSON decoder", frame)
		}
	}
	for _, frame := range [][]byte{{codecVersion, 0}, {codecVersion, 99}, {codecVersion, 0xb}} {
		if _, err := decodeMessage(frame); err == nil {
			t.Errorf("binary frame % x accepted", frame)
		}
	}
}

// TestEncodeDecodePayloadAliasing: decoding allocates fresh buffers, so
// mutating the original payload after encode never leaks through.
func TestEncodeDecodePayloadAliasing(t *testing.T) {
	payload := []byte("immutable?")
	m := &core.Message{
		Type: core.MsgEvent, From: "p",
		Event: &core.Event{ID: ids.EventID{Origin: "p", Seq: 1}, Topic: ".t", Payload: payload},
	}
	raw, err := encodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	payload[0] = 'X'
	got, err := decodeMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Event.Payload, []byte("immutable?")) {
		t.Errorf("decoded payload aliased the encoder input: %q", got.Event.Payload)
	}
}
