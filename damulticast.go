// Package damulticast is a Go implementation of Data-Aware Multicast
// (daMulticast) — the decentralized, gossip-based multicast protocol
// for hierarchical topic-based publish/subscribe of Baehni, Eugster
// and Guerraoui (EPFL TR IC/2003/73, DSN 2004).
//
// Every Node is interested in exactly one topic of a dotted hierarchy
// (e.g. ".news.sports.football") and transitively receives events
// published on that topic or any of its subtopics. Nodes self-organize
// into one gossip group per topic, link each group to its supergroup
// with a constant-size supertopic table, gossip events within groups
// (fanout ln(S)+c) and push them up the hierarchy probabilistically.
// No process ever receives an event of a topic it is not interested
// in, no central broker exists, and per-node memory is bounded by
// ln(S) + c + z regardless of the hierarchy's size.
//
// A minimal publisher/subscriber pair over the in-memory transport:
//
//	net := damulticast.NewMemNetwork()
//	sub, _ := damulticast.NewNode(damulticast.Config{
//	    Topic:     ".news",
//	    Transport: net.NewTransport("sub"),
//	})
//	pub, _ := damulticast.NewNode(damulticast.Config{
//	    Topic:         ".news.sports",
//	    Transport:     net.NewTransport("pub"),
//	    GroupContacts: nil,
//	    SuperTopic:    ".news",
//	    SuperContacts: []string{"sub"},
//	})
//	sub.Start(ctx); pub.Start(ctx)
//	pub.Publish([]byte("goal!"))
//	ev := <-sub.Events() // the event climbs to the supergroup
//
// The same protocol engine also powers the round-based simulator that
// regenerates the paper's figures; see internal/sim and EXPERIMENTS.md.
package damulticast

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Params are the protocol constants; see the package documentation and
// the paper's §V. The zero value is invalid; start from DefaultParams.
type Params = core.Params

// DefaultParams returns the paper's simulation constants (§VII-A):
// b=3, c=5, g=5, a=1, z=3.
func DefaultParams() Params { return core.DefaultParams() }

// Event is a delivered application event.
type Event struct {
	// ID is the globally unique event identifier ("origin#seq").
	ID string
	// Topic is the topic the event was published on (always included
	// by the receiving node's topic).
	Topic string
	// Payload is the application payload.
	Payload []byte
}

// Config configures a Node.
type Config struct {
	// ID is the node's process identifier. It must equal the address
	// other nodes reach it at. Defaults to Transport.Addr().
	ID string
	// Topic is the single topic this node is interested in (§III-A).
	Topic string
	// Transport carries the node's messages.
	Transport Transport
	// Params are the protocol constants; zero value selects
	// DefaultParams.
	Params Params
	// Seeds are bootstrap overlay contacts (the paper's
	// neighborhood(p)) used by FIND_SUPER_CONTACT. Optional when
	// SuperContacts is set or Topic is the root.
	Seeds []string
	// GroupContacts are known members of this node's own topic group.
	GroupContacts []string
	// SuperContacts are known members of the supergroup; when set
	// together with SuperTopic the bootstrap search is skipped
	// (Fig. 4 lines 5-8).
	SuperContacts []string
	// SuperTopic is the topic SuperContacts are interested in; it
	// must strictly include Topic.
	SuperTopic string
	// TickInterval is the period of the protocol's maintenance tick
	// (membership shuffles, link maintenance). Default 500ms.
	TickInterval time.Duration
	// EventBuffer is the capacity of the delivery channel; when the
	// application falls behind, further deliveries are dropped
	// (best-effort, like the underlying channels). Default 256.
	EventBuffer int
	// Seed seeds the node's random source; 0 derives one from the id.
	Seed int64
}

// Errors.
var (
	ErrNoTransport   = errors.New("damulticast: config needs a Transport")
	ErrAlreadyRunned = errors.New("damulticast: node already started")
	ErrNotRunning    = errors.New("damulticast: node not running")
)

// Node is a live daMulticast process: a goroutine-driven wrapper
// around the core protocol engine. All methods are safe for concurrent
// use.
type Node struct {
	cfg    Config
	id     ids.ProcessID
	topic  topic.Topic
	params Params

	proc *core.Process
	rng  *rand.Rand

	inbox   chan *core.Message
	pubCh   chan publishReq
	leaveCh chan chan struct{}
	events  chan Event

	seeds []ids.ProcessID

	started atomic.Bool
	stopped atomic.Bool
	done    chan struct{}
	cancel  context.CancelFunc

	mu      sync.Mutex
	dropped int64 // deliveries dropped because the app fell behind

	// Receive-path loss counters (see onRaw): frames the decoder
	// rejected, and decoded messages discarded because the inbox was
	// full. Atomics, because the transport's receive goroutines bump
	// them while callers read.
	malformedFrames atomic.Int64
	overflowFrames  atomic.Int64
}

type publishReq struct {
	payload []byte
	reply   chan publishResult
}

type publishResult struct {
	id  string
	err error
}

// NewNode validates the configuration and builds a stopped node.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, ErrNoTransport
	}
	if cfg.ID == "" {
		cfg.ID = cfg.Transport.Addr()
	}
	tp, err := topic.Parse(cfg.Topic)
	if err != nil {
		return nil, fmt.Errorf("damulticast: topic: %w", err)
	}
	params := cfg.Params
	if params == (Params{}) {
		params = DefaultParams()
	}
	// Without an explicit size hint, the configured contacts are the
	// best lower bound on the group size; sizing the topic table from
	// them keeps every provided contact instead of evicting to the
	// minimum view.
	if params.GroupSizeHint == 0 && len(cfg.GroupContacts) > 0 {
		params.GroupSizeHint = len(cfg.GroupContacts) + 1
	}
	if cfg.TickInterval <= 0 {
		cfg.TickInterval = 500 * time.Millisecond
	}
	if cfg.EventBuffer <= 0 {
		cfg.EventBuffer = 256
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(len(cfg.ID))*7919 + hashString(cfg.ID)
	}

	n := &Node{
		cfg:     cfg,
		id:      ids.ProcessID(cfg.ID),
		topic:   tp,
		params:  params,
		rng:     rand.New(rand.NewSource(seed)),
		inbox:   make(chan *core.Message, 1024),
		pubCh:   make(chan publishReq),
		leaveCh: make(chan chan struct{}),
		events:  make(chan Event, cfg.EventBuffer),
		done:    make(chan struct{}),
	}
	for _, s := range cfg.Seeds {
		if s != cfg.ID {
			n.seeds = append(n.seeds, ids.ProcessID(s))
		}
	}

	proc, err := core.NewProcess(n.id, tp, params, (*nodeEnv)(n))
	if err != nil {
		return nil, err
	}
	n.proc = proc

	if len(cfg.GroupContacts) > 0 {
		contacts := make([]ids.ProcessID, 0, len(cfg.GroupContacts))
		for _, c := range cfg.GroupContacts {
			contacts = append(contacts, ids.ProcessID(c))
		}
		proc.SeedTopicTable(contacts)
	}
	if len(cfg.SuperContacts) > 0 {
		st, err := topic.Parse(cfg.SuperTopic)
		if err != nil {
			return nil, fmt.Errorf("damulticast: super topic: %w", err)
		}
		if !st.StrictlyIncludes(tp) {
			return nil, fmt.Errorf("damulticast: super topic %s does not include %s", st, tp)
		}
		contacts := make([]ids.ProcessID, 0, len(cfg.SuperContacts))
		for _, c := range cfg.SuperContacts {
			contacts = append(contacts, ids.ProcessID(c))
		}
		proc.SeedSuperTable(st, contacts)
	}
	return n, nil
}

// hashString is a tiny FNV-style hash for default seeding.
func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// ID returns the node's process id.
func (n *Node) ID() string { return string(n.id) }

// Topic returns the node's topic.
func (n *Node) Topic() string { return string(n.topic) }

// Events returns the delivery channel. It is closed when the node
// stops.
func (n *Node) Events() <-chan Event { return n.events }

// DroppedDeliveries reports how many events were discarded because the
// Events channel was full.
func (n *Node) DroppedDeliveries() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// DroppedFrames reports how many inbound frames were discarded before
// reaching the protocol: malformed frames the decoder rejected plus
// decoded messages dropped because the inbox overflowed. Both are
// best-effort losses by design, but counting them makes live-node loss
// diagnosable instead of silent.
func (n *Node) DroppedFrames() int64 {
	return n.malformedFrames.Load() + n.overflowFrames.Load()
}

// MalformedFrames reports the decoder-rejected share of DroppedFrames.
func (n *Node) MalformedFrames() int64 { return n.malformedFrames.Load() }

// RecoveryStats returns the anti-entropy recovery counters (all zero
// unless Params.RecoverPeriod enables the recovery subsystem). Safe
// for concurrent use.
func (n *Node) RecoveryStats() core.RecoveryStats { return n.proc.RecoveryStats() }

// NodeStats is a point-in-time snapshot of the node's loss and
// recovery counters.
type NodeStats struct {
	// DroppedDeliveries counts events discarded because the application
	// fell behind the Events channel.
	DroppedDeliveries int64
	// MalformedFrames counts inbound frames the wire decoder rejected.
	MalformedFrames int64
	// OverflowFrames counts decoded messages dropped on inbox overflow.
	OverflowFrames int64
	// Recovery holds the anti-entropy recovery counters.
	Recovery core.RecoveryStats
}

// Stats snapshots every node counter in one call.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		DroppedDeliveries: n.DroppedDeliveries(),
		MalformedFrames:   n.malformedFrames.Load(),
		OverflowFrames:    n.overflowFrames.Load(),
		Recovery:          n.proc.RecoveryStats(),
	}
}

// Start launches the node's protocol loop. The node stops when ctx is
// cancelled or Stop is called.
func (n *Node) Start(ctx context.Context) error {
	if !n.started.CompareAndSwap(false, true) {
		return ErrAlreadyRunned
	}
	ctx, cancel := context.WithCancel(ctx)
	n.cancel = cancel
	n.cfg.Transport.SetHandler(n.onRaw)
	go n.loop(ctx)
	return nil
}

// Stop terminates the node and closes its transport and delivery
// channel. Safe to call multiple times.
func (n *Node) Stop() error {
	if !n.started.Load() {
		return ErrNotRunning
	}
	if !n.stopped.CompareAndSwap(false, true) {
		return nil
	}
	n.cancel()
	<-n.done
	return n.cfg.Transport.Close()
}

// Publish disseminates an event of the node's topic and returns its
// id. Blocks until the protocol loop accepts the publication or the
// node stops.
func (n *Node) Publish(payload []byte) (string, error) {
	if !n.started.Load() {
		return "", ErrNotRunning
	}
	req := publishReq{payload: payload, reply: make(chan publishResult, 1)}
	select {
	case n.pubCh <- req:
	case <-n.done:
		return "", ErrNotRunning
	}
	// Never wait on the reply without a shutdown escape. Today a
	// successful pubCh send implies the loop committed to servicing it
	// (the channel is unbuffered and the case body always replies), but
	// that liveness rests on invariants one refactor away from breaking
	// — a buffered pubCh, an early return in the loop body — so the
	// wait is guarded by n.done rather than by convention.
	select {
	case res := <-req.reply:
		return res.id, res.err
	case <-n.done:
		// The reply is buffered, so a service that raced the shutdown
		// may still have landed; prefer it over reporting failure.
		select {
		case res := <-req.reply:
			return res.id, res.err
		default:
			return "", ErrNotRunning
		}
	}
}

// Leave announces a graceful departure to every known peer (they purge
// this node from their tables immediately instead of waiting out
// failure suspicion), then stops the node. After Leave the node is
// stopped; Stop may still be called to release the transport.
func (n *Node) Leave() error {
	if !n.started.Load() {
		return ErrNotRunning
	}
	ack := make(chan struct{})
	select {
	case n.leaveCh <- ack:
		// Same rationale as Publish's reply wait: never block on the
		// ack without a shutdown escape.
		select {
		case <-ack:
		case <-n.done:
		}
	case <-n.done:
		return ErrNotRunning
	}
	return n.Stop()
}

// onRaw is the transport receive callback: decode and enqueue,
// dropping when the inbox overflows (channels are best-effort). Drops
// are counted, never silent: see DroppedFrames.
func (n *Node) onRaw(payload []byte) {
	m, err := decodeMessage(payload)
	if err != nil {
		n.malformedFrames.Add(1)
		return
	}
	select {
	case n.inbox <- m:
	default:
		n.overflowFrames.Add(1)
	}
}

// loop owns the core.Process: all protocol state is touched only here.
func (n *Node) loop(ctx context.Context) {
	defer close(n.done)
	defer close(n.events)

	// Bootstrap: without provided super contacts, search for them.
	if !n.topic.IsRoot() && len(n.cfg.SuperContacts) == 0 {
		n.proc.StartFindSuperContact()
	}

	ticker := time.NewTicker(n.cfg.TickInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case m := <-n.inbox:
			n.proc.HandleMessage(m)
		case req := <-n.pubCh:
			ev, err := n.proc.Publish(req.payload)
			if err != nil {
				req.reply <- publishResult{err: err}
				continue
			}
			req.reply <- publishResult{id: ev.ID.String()}
		case ack := <-n.leaveCh:
			n.proc.Leave()
			close(ack)
		case <-ticker.C:
			n.proc.Tick()
		}
	}
}

// nodeEnv adapts *Node to core.Env. Methods run on the loop goroutine.
type nodeEnv Node

func (e *nodeEnv) Send(to ids.ProcessID, m *core.Message) {
	buf := getEncBuf()
	buf.b = appendMessage(buf.b, m)
	// Transport errors are best-effort losses by design. Transports
	// must not retain the payload, so the buffer is safe to reuse.
	_ = e.cfg.Transport.Send(string(to), buf.b)
	putEncBuf(buf)
}

// SendBatch implements core.SendBatcher: the message is serialized
// exactly once, and the same pooled frame goes out to every target.
func (e *nodeEnv) SendBatch(targets []ids.ProcessID, m *core.Message) {
	buf := getEncBuf()
	buf.b = appendMessage(buf.b, m)
	for _, to := range targets {
		_ = e.cfg.Transport.Send(string(to), buf.b)
	}
	putEncBuf(buf)
}

func (e *nodeEnv) Deliver(ev *core.Event) {
	out := Event{
		ID:      ev.ID.String(),
		Topic:   string(ev.Topic),
		Payload: ev.Payload,
	}
	select {
	case e.events <- out:
	default:
		e.mu.Lock()
		e.dropped++
		e.mu.Unlock()
	}
}

func (e *nodeEnv) Neighborhood(k int) []ids.ProcessID {
	// The bootstrap overlay is the configured seeds plus whatever
	// group mates we already know.
	pool := make([]ids.ProcessID, 0, len(e.seeds)+8)
	pool = append(pool, e.seeds...)
	pool = append(pool, e.proc.TopicTable()...)
	return xrand.SampleIDs(e.rng, pool, k)
}

func (e *nodeEnv) Rand() *rand.Rand { return e.rng }
