// Package damulticast is a Go implementation of Data-Aware Multicast
// (daMulticast) — the decentralized, gossip-based multicast protocol
// for hierarchical topic-based publish/subscribe of Baehni, Eugster
// and Guerraoui (EPFL TR IC/2003/73, DSN 2004).
//
// Subscribers are interested in topics of a dotted hierarchy (e.g.
// ".news.sports.football") and transitively receive events published
// on their topic or any of its subtopics. Members of a topic group
// self-organize by gossip, link each group to its supergroup with a
// constant-size supertopic table, gossip events within groups (fanout
// ln(S)+c) and push them up the hierarchy probabilistically. No
// process ever receives an event of a topic it is not interested in,
// no central broker exists, and memory per subscription is bounded by
// ln(S) + c + z regardless of the hierarchy's size.
//
// The public API is the Hub: one transport endpoint hosting any
// number of topic subscriptions over a single socket (the wire
// protocol demultiplexes groups per frame). A minimal
// publisher/subscriber pair over the in-memory transport:
//
//	net := damulticast.NewMemNetwork()
//	sub, _ := damulticast.NewHub(net.NewTransport("sub"))
//	news, _ := sub.Join(ctx, ".news")
//	pub, _ := damulticast.NewHub(net.NewTransport("pub"))
//	sports, _ := pub.Join(ctx, ".news.sports",
//	    damulticast.WithSuperContacts(".news", "sub"))
//	sports.Publish(ctx, []byte("goal!"))
//	ev := <-news.Events() // the event climbs to the supergroup
//
// Node is the deprecated single-topic predecessor of Hub, kept as a
// thin adapter (one hub, one subscription) so existing code compiles.
//
// The same protocol engine also powers the round-based simulator that
// regenerates the paper's figures; see internal/sim and EXPERIMENTS.md.
package damulticast

import (
	"context"
	"errors"
	"time"

	"damulticast/internal/core"
)

// Params are the protocol constants; see the package documentation and
// the paper's §V. The zero value is invalid; start from DefaultParams.
type Params = core.Params

// DefaultParams returns the paper's simulation constants (§VII-A):
// b=3, c=5, g=5, a=1, z=3.
func DefaultParams() Params { return core.DefaultParams() }

// Event is a delivered application event.
type Event struct {
	// ID is the globally unique event identifier ("origin#seq").
	ID string
	// Topic is the topic the event was published on (always included
	// by the receiving subscription's topic).
	Topic string
	// Payload is the application payload.
	Payload []byte
}

// Errors. All configuration and lifecycle failures are typed sentinels
// (possibly wrapped with detail); match with errors.Is.
var (
	// ErrNoTransport rejects construction without a Transport.
	ErrNoTransport = errors.New("damulticast: config needs a Transport")
	// ErrAlreadyStarted reports a second Start on an already-running
	// hub or node.
	ErrAlreadyStarted = errors.New("damulticast: already started")
	// ErrNotRunning reports an operation on a hub or node that is not
	// (or no longer) running.
	ErrNotRunning = errors.New("damulticast: node not running")
	// ErrInvalidTopic rejects a malformed topic.
	ErrInvalidTopic = errors.New("damulticast: invalid topic")
	// ErrInvalidSuperTopic rejects a supertopic that is malformed or
	// does not strictly include the subscribed topic.
	ErrInvalidSuperTopic = errors.New("damulticast: invalid super topic")
	// ErrDuplicateTopic rejects joining a topic the hub is already
	// subscribed to.
	ErrDuplicateTopic = errors.New("damulticast: already subscribed to topic")
)

// Config configures a Node.
//
// Deprecated: new code should use NewHub with HubOption/JoinOption
// functional options; Config remains for the Node adapter.
type Config struct {
	// ID is the node's process identifier. It must equal the address
	// other nodes reach it at. Defaults to Transport.Addr().
	ID string
	// Topic is the single topic this node is interested in (§III-A).
	Topic string
	// Transport carries the node's messages.
	Transport Transport
	// Params are the protocol constants; zero value selects
	// DefaultParams.
	Params Params
	// Seeds are bootstrap overlay contacts (the paper's
	// neighborhood(p)) used by FIND_SUPER_CONTACT. Optional when
	// SuperContacts is set or Topic is the root.
	Seeds []string
	// GroupContacts are known members of this node's own topic group.
	GroupContacts []string
	// SuperContacts are known members of the supergroup; when set
	// together with SuperTopic the bootstrap search is skipped
	// (Fig. 4 lines 5-8).
	SuperContacts []string
	// SuperTopic is the topic SuperContacts are interested in; it
	// must strictly include Topic.
	SuperTopic string
	// TickInterval is the period of the protocol's maintenance tick
	// (membership shuffles, link maintenance). Default 500ms.
	TickInterval time.Duration
	// EventBuffer is the capacity of the delivery channel; when the
	// application falls behind, further deliveries are dropped
	// (best-effort, like the underlying channels). Default 256.
	EventBuffer int
	// Seed seeds the node's random source; 0 derives one from the id.
	Seed int64
}

// Node is a single-topic daMulticast process: a Hub carrying exactly
// one Subscription, behind the original one-node-one-topic API. All
// methods are safe for concurrent use.
//
// Deprecated: use NewHub and Hub.Join — one hub multiplexes any number
// of topics over one transport, and its Publish/Leave take contexts.
// Node remains a supported adapter: NewNode(cfg) is NewHub + one Join.
type Node struct {
	hub *Hub
	sub *Subscription

	// inbox aliases the hub's raw-frame queue (tests inspect its
	// capacity and overflow behavior).
	inbox chan []byte
}

// NewNode validates the configuration and builds a stopped node.
//
// Deprecated: use NewHub and Hub.Join; the README's "Migrating from
// the v1 Node API" table maps every Node call to its Hub equivalent.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Transport == nil {
		return nil, ErrNoTransport
	}
	if cfg.ID == "" {
		cfg.ID = cfg.Transport.Addr()
	}
	// Zero-value params/tick/buffer fall through to newHub's defaults.
	// The seed keeps the v1 derivation (from the id alone, not id +
	// topic) so existing deployments reproduce their streams.
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(len(cfg.ID))*7919 + hashString(cfg.ID)
	}
	h, err := newHub(cfg.Transport,
		WithID(cfg.ID),
		WithParams(cfg.Params),
		WithTickInterval(cfg.TickInterval),
		WithEventBuffer(cfg.EventBuffer),
	)
	if err != nil {
		return nil, err
	}
	sub, err := h.prepare(cfg.Topic, joinConfig{
		seed:          seed,
		seeds:         cfg.Seeds,
		groupContacts: cfg.GroupContacts,
		superTopic:    cfg.SuperTopic,
		superContacts: cfg.SuperContacts,
	})
	if err != nil {
		return nil, err
	}
	return &Node{hub: h, sub: sub, inbox: h.inbox}, nil
}

// hashString is a tiny FNV-style hash for default seeding.
func hashString(s string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h & 0x7fffffffffffffff)
}

// ID returns the node's process id.
func (n *Node) ID() string { return n.hub.ID() }

// Topic returns the node's topic.
func (n *Node) Topic() string { return n.sub.Topic() }

// Events returns the delivery channel. It is closed when the node
// stops.
func (n *Node) Events() <-chan Event { return n.sub.Events() }

// DroppedDeliveries reports how many events were discarded because the
// Events channel was full.
func (n *Node) DroppedDeliveries() int64 { return n.sub.DroppedDeliveries() }

// DroppedFrames reports how many inbound frames were discarded before
// reaching the protocol: malformed frames the decoder rejected plus
// decoded messages dropped because the inbox overflowed. Both are
// best-effort losses by design, but counting them makes live-node loss
// diagnosable instead of silent.
func (n *Node) DroppedFrames() int64 {
	return n.hub.malformedFrames.Load() + n.hub.overflowFrames.Load()
}

// MalformedFrames reports the decoder-rejected share of DroppedFrames.
func (n *Node) MalformedFrames() int64 { return n.hub.malformedFrames.Load() }

// RecoveryStats returns the anti-entropy recovery counters (all zero
// unless Params.RecoverPeriod enables the recovery subsystem). Safe
// for concurrent use.
func (n *Node) RecoveryStats() core.RecoveryStats { return n.sub.RecoveryStats() }

// NodeStats is a point-in-time snapshot of the node's loss and
// recovery counters.
type NodeStats struct {
	// DroppedDeliveries counts events discarded because the application
	// fell behind the Events channel.
	DroppedDeliveries int64
	// MalformedFrames counts inbound frames the wire decoder rejected.
	MalformedFrames int64
	// OverflowFrames counts frames dropped on receive-queue overflow.
	OverflowFrames int64
	// Recovery holds the anti-entropy recovery counters.
	Recovery core.RecoveryStats
}

// Stats snapshots every node counter in one call.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		DroppedDeliveries: n.sub.DroppedDeliveries(),
		MalformedFrames:   n.hub.malformedFrames.Load(),
		OverflowFrames:    n.hub.overflowFrames.Load(),
		Recovery:          n.sub.RecoveryStats(),
	}
}

// Start launches the node's protocol loop. The node stops when ctx is
// cancelled or Stop is called.
func (n *Node) Start(ctx context.Context) error {
	if err := n.hub.start(ctx); err != nil {
		return err
	}
	return n.hub.register(ctx, n.sub)
}

// Stop terminates the node and closes its transport and delivery
// channel. Safe to call multiple times.
func (n *Node) Stop() error { return n.hub.Stop() }

// Publish disseminates an event of the node's topic and returns its
// id. Blocks until the protocol loop accepts the publication or the
// node stops. (Subscription.Publish is the context-aware form.)
func (n *Node) Publish(payload []byte) (string, error) {
	return n.sub.Publish(context.Background(), payload)
}

// Leave announces a graceful departure to every known peer (they purge
// this node from their tables immediately instead of waiting out
// failure suspicion), then stops the node. After Leave the node is
// stopped; Stop may still be called to release the transport.
func (n *Node) Leave() error {
	if err := n.sub.Leave(context.Background()); err != nil {
		return err
	}
	return n.hub.Stop()
}

// onRaw is the transport receive callback (tests feed it directly).
func (n *Node) onRaw(payload []byte) { n.hub.onRaw(payload) }
