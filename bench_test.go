// Benchmarks regenerating every figure and comparison table of the
// paper's evaluation (see EXPERIMENTS.md for the recorded results):
//
//	BenchmarkFig8  — events sent within each group vs. alive fraction
//	BenchmarkFig9  — intergroup events vs. alive fraction
//	BenchmarkFig10 — reliability, stillborn failures
//	BenchmarkFig11 — reliability, weakly consistent failures
//	BenchmarkMsgComplexity*  — §VI-E.1 message-complexity comparison
//	BenchmarkMemComplexity   — §VI-E.2 memory-complexity comparison
//	BenchmarkReliability*    — §VI-E.3 reliability comparison
//	BenchmarkAblation*       — z/g/a/c knob ablations (DESIGN.md §5)
//	BenchmarkLivePublish     — live-runtime publish path microbench
//
// Each benchmark runs the paper-scale workload once per iteration and
// reports the headline quantity via b.ReportMetric, so `go test
// -bench=. -benchmem` regenerates the numbers alongside timing.
package damulticast_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"damulticast"
	"damulticast/internal/analysis"
	"damulticast/internal/baseline"
	"damulticast/internal/sim"
	"damulticast/internal/topic"
	"damulticast/internal/workload"
)

// benchAlive is the operating point used for the per-iteration bench
// runs (full-scale sweeps live in cmd/damcsim).
const benchAlive = 0.8

func benchSeed(i int) int64 { return int64(i + 1) }

// --- Figures 8-11 ---------------------------------------------------

func BenchmarkFig8(b *testing.B) {
	_, _, t2 := sim.PaperTopics()
	var intra float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.PaperConfig(benchAlive, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		intra += float64(res.Intra[t2])
	}
	b.ReportMetric(intra/float64(b.N), "T2-intra-msgs")
}

func BenchmarkFig9(b *testing.B) {
	t0, t1, t2 := sim.PaperTopics()
	var up21, up10 float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.PaperConfig(benchAlive, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		up21 += float64(res.Inter[[2]topic.Topic{t2, t1}])
		up10 += float64(res.Inter[[2]topic.Topic{t1, t0}])
	}
	b.ReportMetric(up21/float64(b.N), "T2-T1-msgs")
	b.ReportMetric(up10/float64(b.N), "T1-T0-msgs")
}

func BenchmarkFig10(b *testing.B) {
	t0, _, t2 := sim.PaperTopics()
	var relT2, relT0 float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.PaperConfig(benchAlive, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		relT2 += res.ReliabilityAll[t2]
		relT0 += res.ReliabilityAll[t0]
	}
	b.ReportMetric(relT2/float64(b.N), "T2-delivery")
	b.ReportMetric(relT0/float64(b.N), "T0-delivery")
}

func BenchmarkFig11(b *testing.B) {
	t0, _, t2 := sim.PaperTopics()
	var relT2, relT0 float64
	for i := 0; i < b.N; i++ {
		cfg := sim.PaperConfig(benchAlive, benchSeed(i))
		cfg.FailureMode = sim.FailPerObserver
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		relT2 += res.ReliabilityAll[t2]
		relT0 += res.ReliabilityAll[t0]
	}
	b.ReportMetric(relT2/float64(b.N), "T2-delivery")
	b.ReportMetric(relT0/float64(b.N), "T0-delivery")
}

// --- §VI-E.1 message complexity --------------------------------------

func paperBaselineConfig(seed int64) baseline.Config {
	t0, t1, t2 := sim.PaperTopics()
	return baseline.Config{
		Populations: []baseline.Population{
			{Topic: t0, Size: 10},
			{Topic: t1, Size: 100},
			{Topic: t2, Size: 1000},
		},
		PublishTopic:  t2,
		B:             3,
		C:             5,
		PSucc:         0.85,
		AliveFraction: benchAlive,
		NumGroups:     10,
		MaxRounds:     300,
		Seed:          seed,
	}
}

func BenchmarkMsgComplexityDaMulticast(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.PaperConfig(benchAlive, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.TotalEvents)
	}
	b.ReportMetric(msgs/float64(b.N), "event-msgs")
}

func BenchmarkMsgComplexityBroadcast(b *testing.B) {
	var msgs, parasites float64
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunBroadcast(paperBaselineConfig(benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.Messages)
		parasites += float64(res.Parasites)
	}
	b.ReportMetric(msgs/float64(b.N), "event-msgs")
	b.ReportMetric(parasites/float64(b.N), "parasites")
}

func BenchmarkMsgComplexityMulticast(b *testing.B) {
	var msgs float64
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunMulticast(paperBaselineConfig(benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.Messages)
	}
	b.ReportMetric(msgs/float64(b.N), "event-msgs")
}

func BenchmarkMsgComplexityHierarchical(b *testing.B) {
	var msgs, parasites float64
	for i := 0; i < b.N; i++ {
		res, err := baseline.RunHierarchical(paperBaselineConfig(benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		msgs += float64(res.Messages)
		parasites += float64(res.Parasites)
	}
	b.ReportMetric(msgs/float64(b.N), "event-msgs")
	b.ReportMetric(parasites/float64(b.N), "parasites")
}

// --- §VI-E.2 memory complexity ---------------------------------------

func BenchmarkMemComplexity(b *testing.B) {
	// Measured: build the paper topology and inspect actual table
	// sizes; closed forms reported alongside.
	var daMax float64
	_, _, t2 := sim.PaperTopics()
	for i := 0; i < b.N; i++ {
		r, err := sim.NewRunner(sim.PaperConfig(1, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		max := 0
		for _, p := range r.Group(t2) {
			if m := p.MemoryComplexity(); m > max {
				max = m
			}
		}
		daMax += float64(max)
	}
	b.ReportMetric(daMax/float64(b.N), "da-T2-entries")

	pi := analysis.GossipReliability(5)
	mk := func(s int) analysis.Level {
		return analysis.Level{S: s, C: 5, G: 5, A: 1, Z: 3, PSucc: 0.85, Pi: pi}
	}
	levels := []analysis.Level{mk(10), mk(100), mk(1000)}
	daF, _ := analysis.DaMulticastMemory(1000, 5, 3, false)
	bcF, _ := analysis.BroadcastMemory(1110, 5)
	mcF, _ := analysis.MulticastMemory(levels)
	hcF, _ := analysis.HierarchicalMemory(10, 111, 5, 5)
	b.ReportMetric(daF, "da-formula")
	b.ReportMetric(bcF, "bcast-formula")
	b.ReportMetric(mcF, "mcast-formula")
	b.ReportMetric(hcF, "hier-formula")
}

// --- §VI-E.3 reliability ---------------------------------------------

func BenchmarkReliabilityDaMulticast(b *testing.B) {
	t0, _, _ := sim.PaperTopics()
	var rel float64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.PaperConfig(benchAlive, benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		rel += res.Reliability[t0]
	}
	b.ReportMetric(rel/float64(b.N), "root-delivery")
	pi := analysis.GossipReliability(5)
	mk := func(s int) analysis.Level {
		return analysis.Level{S: s, C: 5, G: 5, A: 1, Z: 3, PSucc: 0.85, Pi: pi}
	}
	theory, _ := analysis.Reliability([]analysis.Level{mk(10), mk(100), mk(1000)}, 0)
	b.ReportMetric(theory, "eq1-theory")
}

func BenchmarkReliabilityBaselines(b *testing.B) {
	var bc, mc, hc float64
	for i := 0; i < b.N; i++ {
		r1, err := baseline.RunBroadcast(paperBaselineConfig(benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		r2, err := baseline.RunMulticast(paperBaselineConfig(benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		r3, err := baseline.RunHierarchical(paperBaselineConfig(benchSeed(i)))
		if err != nil {
			b.Fatal(err)
		}
		bc += r1.Reliability()
		mc += r2.Reliability()
		hc += r3.Reliability()
	}
	b.ReportMetric(bc/float64(b.N), "bcast-delivery")
	b.ReportMetric(mc/float64(b.N), "mcast-delivery")
	b.ReportMetric(hc/float64(b.N), "hier-delivery")
}

// --- Ablations (DESIGN.md §5) ----------------------------------------

func ablate(b *testing.B, mutate func(*sim.Config)) (interMsgs, rootRel float64) {
	b.Helper()
	t0, t1, t2 := sim.PaperTopics()
	for i := 0; i < b.N; i++ {
		cfg := sim.PaperConfig(benchAlive, benchSeed(i))
		mutate(&cfg)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		interMsgs += float64(res.Inter[[2]topic.Topic{t2, t1}] + res.Inter[[2]topic.Topic{t1, t0}])
		rootRel += res.Reliability[t0]
	}
	return interMsgs / float64(b.N), rootRel / float64(b.N)
}

func BenchmarkAblationZ(b *testing.B) {
	for _, z := range []int{1, 3, 8} {
		b.Run(fmt.Sprintf("z=%d", z), func(b *testing.B) {
			inter, rel := ablate(b, func(c *sim.Config) { c.Params.Z = z })
			b.ReportMetric(inter, "inter-msgs")
			b.ReportMetric(rel, "root-delivery")
		})
	}
}

func BenchmarkAblationG(b *testing.B) {
	for _, g := range []float64{1, 5, 25} {
		b.Run(fmt.Sprintf("g=%g", g), func(b *testing.B) {
			inter, rel := ablate(b, func(c *sim.Config) { c.Params.G = g })
			b.ReportMetric(inter, "inter-msgs")
			b.ReportMetric(rel, "root-delivery")
		})
	}
}

func BenchmarkAblationA(b *testing.B) {
	for _, a := range []float64{1, 2, 3} {
		b.Run(fmt.Sprintf("a=%g", a), func(b *testing.B) {
			inter, rel := ablate(b, func(c *sim.Config) { c.Params.A = a })
			b.ReportMetric(inter, "inter-msgs")
			b.ReportMetric(rel, "root-delivery")
		})
	}
}

func BenchmarkAblationC(b *testing.B) {
	_, _, t2 := sim.PaperTopics()
	for _, c := range []float64{0, 2, 5} {
		b.Run(fmt.Sprintf("c=%g", c), func(b *testing.B) {
			var intra, rel float64
			for i := 0; i < b.N; i++ {
				cfg := sim.PaperConfig(benchAlive, benchSeed(i))
				cfg.Params.C = c
				res, err := sim.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				intra += float64(res.Intra[t2])
				rel += res.Reliability[t2]
			}
			b.ReportMetric(intra/float64(b.N), "T2-intra-msgs")
			b.ReportMetric(rel/float64(b.N), "T2-delivery")
			b.ReportMetric(analysis.GossipReliability(c), "theory")
		})
	}
}

// BenchmarkRandomWorkload runs generated (non-paper) topologies:
// random trees with Zipf-skewed populations, publishing at the deepest
// topic. Guards the protocol's behaviour beyond the fixed §VII-A
// setting.
func BenchmarkRandomWorkload(b *testing.B) {
	params := damulticast.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	var rel, parasites float64
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(benchSeed(i)))
		h, err := workload.RandomTree(rng, workload.TreeSpec{Depth: 3, MaxBranch: 2})
		if err != nil {
			b.Fatal(err)
		}
		sizes, err := workload.ZipfSizes(rng, h, 1500, 1.2)
		if err != nil {
			b.Fatal(err)
		}
		cfg, err := workload.Config(h, sizes, params, 0.85, benchAlive, sim.FailStillborn, benchSeed(i))
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rel += res.Reliability[cfg.PublishTopic]
		parasites += float64(res.Parasites)
	}
	b.ReportMetric(rel/float64(b.N), "publish-group-delivery")
	b.ReportMetric(parasites/float64(b.N), "parasites")
}

// --- Live runtime microbenches ----------------------------------------

func BenchmarkLivePublish(b *testing.B) {
	net := damulticast.NewMemNetwork()
	params := damulticast.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	ctx := context.Background()
	mk := func(id string, contacts []string) *damulticast.Subscription {
		hub, err := damulticast.NewHub(net.NewTransport(id),
			damulticast.WithParams(params),
			damulticast.WithTickInterval(time.Hour), // no background ticks during bench
		)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = hub.Stop() })
		sub, err := hub.Join(ctx, ".bench", damulticast.WithGroupContacts(contacts...))
		if err != nil {
			b.Fatal(err)
		}
		return sub
	}
	pub := mk("pub", []string{"sub"})
	mk("sub", []string{"pub"})

	payload := []byte("benchmark-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pub.Publish(ctx, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageCodec(b *testing.B) {
	// Exercised indirectly by every live send; measured here so codec
	// regressions show up in isolation. Uses the public wire format
	// via a private hook in the package test below (kept here as a
	// publish round for black-box measurement).
	net := damulticast.NewMemNetwork()
	ctx := context.Background()
	hub, err := damulticast.NewHub(net.NewTransport("codec"),
		damulticast.WithTickInterval(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = hub.Stop() }()
	sub, err := hub.Join(ctx, ".x")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sub.Publish(ctx, []byte("x")); err != nil {
			b.Fatal(err)
		}
	}
}
