package damulticast

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// twoHubPair wires a publisher and a subscriber hub for one topic over
// a shared MemNetwork, the subscriber joined with the given options.
func twoHubPair(t *testing.T, topicStr string, subOpts ...JoinOption) (pub, sub *Subscription) {
	t.Helper()
	net := NewMemNetwork()
	ctx := context.Background()
	subHub, err := NewHub(net.NewTransport("sub"), WithParams(liveParams()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = subHub.Stop() })
	sub, err = subHub.Join(ctx, topicStr, subOpts...)
	if err != nil {
		t.Fatal(err)
	}
	pubHub, err := NewHub(net.NewTransport("pub"), WithParams(liveParams()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pubHub.Stop() })
	pub, err = pubHub.Join(ctx, topicStr, WithGroupContacts("sub"))
	if err != nil {
		t.Fatal(err)
	}
	return pub, sub
}

// payloads builds n distinct payloads "e0".."e<n-1>".
func payloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte(fmt.Sprintf("e%d", i))
	}
	return out
}

// TestPublishBatchRoundTrip: a batch publish returns one id per
// payload, in publish order with sequential sequence numbers, and
// every event reaches a group peer exactly once.
func TestPublishBatchRoundTrip(t *testing.T) {
	pub, sub := twoHubPair(t, ".batch")
	ctx := context.Background()

	if got, err := pub.PublishBatch(ctx, nil); got != nil || err != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", got, err)
	}
	const n = 20
	eventIDs, err := pub.PublishBatch(ctx, payloads(n))
	if err != nil {
		t.Fatal(err)
	}
	if len(eventIDs) != n {
		t.Fatalf("got %d ids, want %d", len(eventIDs), n)
	}
	// Ids are this publisher's, with consecutive sequence numbers (the
	// counter may not start at 1: bootstrap request ids share it).
	var first uint64
	if _, err := fmt.Sscanf(eventIDs[0], "pub#%d", &first); err != nil {
		t.Fatalf("id[0] = %q: %v", eventIDs[0], err)
	}
	for i, id := range eventIDs {
		if want := fmt.Sprintf("pub#%d", first+uint64(i)); id != want {
			t.Errorf("id[%d] = %s, want %s", i, id, want)
		}
	}
	got := make(map[string]bool)
	for _, ev := range drainTopics(t, sub, n, ".batch") {
		if got[ev.ID] {
			t.Errorf("event %s delivered twice", ev.ID)
		}
		got[ev.ID] = true
	}
}

// TestOverflowDropNewest: under the default policy a full Events
// channel keeps the unread backlog and discards arrivals, counted as
// DroppedNewest.
func TestOverflowDropNewest(t *testing.T) {
	pub, sub := twoHubPair(t, ".x", WithEventBuffer(4))
	if _, err := pub.PublishBatch(context.Background(), payloads(20)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sub.DroppedDeliveries() == 16 })
	st := sub.Stats()
	if st.Overflow != DropNewest {
		t.Errorf("policy = %v, want DropNewest", st.Overflow)
	}
	if st.DroppedNewest != 16 || st.DroppedOldest != 0 {
		t.Errorf("drops = newest %d / oldest %d, want 16 / 0", st.DroppedNewest, st.DroppedOldest)
	}
	// The survivors are the OLDEST four: e0..e3.
	for i, ev := range drainTopics(t, sub, 4, ".x") {
		if want := fmt.Sprintf("e%d", i); string(ev.Payload) != want {
			t.Errorf("kept[%d] = %q, want %q", i, ev.Payload, want)
		}
	}
}

// TestOverflowDropOldest: the DropOldest policy evicts the unread
// backlog instead, keeping a latest-wins window.
func TestOverflowDropOldest(t *testing.T) {
	pub, sub := twoHubPair(t, ".x", WithEventBuffer(4), WithOverflow(DropOldest))
	if _, err := pub.PublishBatch(context.Background(), payloads(20)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return sub.DroppedDeliveries() == 16 })
	st := sub.Stats()
	if st.Overflow != DropOldest {
		t.Errorf("policy = %v, want DropOldest", st.Overflow)
	}
	if st.DroppedOldest != 16 || st.DroppedNewest != 0 {
		t.Errorf("drops = newest %d / oldest %d, want 0 / 16", st.DroppedNewest, st.DroppedOldest)
	}
	// The survivors are the NEWEST four: e16..e19.
	for i, ev := range drainTopics(t, sub, 4, ".x") {
		if want := fmt.Sprintf("e%d", 16+i); string(ev.Payload) != want {
			t.Errorf("kept[%d] = %q, want %q", i, ev.Payload, want)
		}
	}
}

// TestOverflowBlock: the Block policy is lossless — a slow consumer
// stalls delivery instead of shedding it, and every event eventually
// arrives with nothing counted dropped.
func TestOverflowBlock(t *testing.T) {
	pub, sub := twoHubPair(t, ".x", WithEventBuffer(2), WithOverflow(Block))
	const n = 12
	if _, err := pub.PublishBatch(context.Background(), payloads(n)); err != nil {
		t.Fatal(err)
	}
	// Consume slowly; the hub loop blocks between reads rather than
	// dropping.
	var got []Event
	for len(got) < n {
		select {
		case ev := <-sub.Events():
			got = append(got, ev)
			time.Sleep(time.Millisecond)
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d/%d events arrived", len(got), n)
		}
	}
	for i, ev := range got {
		if want := fmt.Sprintf("e%d", i); string(ev.Payload) != want {
			t.Errorf("event[%d] = %q, want %q", i, ev.Payload, want)
		}
	}
	if d := sub.DroppedDeliveries(); d != 0 {
		t.Errorf("Block policy dropped %d deliveries", d)
	}
}

// TestHubFairnessHotCold is the starvation gate for the demux
// redesign: one subscription's topic being flooded must not starve a
// cold sibling subscription on the same hub — the round-robin drain
// guarantees the cold topic's frames their quantum, and the drops the
// flood does cause land where the policy says they land.
func TestHubFairnessHotCold(t *testing.T) {
	net := NewMemNetwork()
	ctx := context.Background()

	hub, err := NewHub(net.NewTransport("h"), WithParams(liveParams()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Stop() })
	// The hot subscription gets a tiny buffer nobody reads: its drops
	// are expected, counted, and must stay on the hot topic.
	hot, err := hub.Join(ctx, ".hot", WithEventBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := hub.Join(ctx, ".cold", WithEventBuffer(64))
	if err != nil {
		t.Fatal(err)
	}

	hotHub, err := NewHub(net.NewTransport("hotpub"), WithParams(liveParams()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hotHub.Stop() })
	hotPub, err := hotHub.Join(ctx, ".hot", WithGroupContacts("h"))
	if err != nil {
		t.Fatal(err)
	}
	coldHub, err := NewHub(net.NewTransport("coldpub"), WithParams(liveParams()))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = coldHub.Stop() })
	coldPub, err := coldHub.Join(ctx, ".cold", WithGroupContacts("h"))
	if err != nil {
		t.Fatal(err)
	}

	// Flood the hot topic from a background goroutine for the whole
	// duration of the cold publishes.
	floodCtx, stopFlood := context.WithCancel(ctx)
	floodDone := make(chan struct{})
	var flooded atomic.Int64
	go func() {
		defer close(floodDone)
		burst := payloads(64)
		for floodCtx.Err() == nil {
			ids, err := hotPub.PublishBatch(floodCtx, burst)
			if err != nil {
				return
			}
			flooded.Add(int64(len(ids)))
		}
	}()
	t.Cleanup(func() { stopFlood(); <-floodDone })
	// Let the flood get rolling before the cold traffic starts, so the
	// cold events genuinely contend with it.
	waitFor(t, func() bool { return flooded.Load() >= 64 })

	// Publish on the cold topic mid-flood; every event must get
	// through promptly.
	const coldEvents = 30
	for i := 0; i < coldEvents; i++ {
		if _, err := coldPub.Publish(ctx, []byte(fmt.Sprintf("cold-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := drainTopics(t, cold, coldEvents, ".cold")
	if len(got) != coldEvents {
		t.Fatalf("cold topic starved: %d/%d delivered", len(got), coldEvents)
	}
	stopFlood()
	<-floodDone
	if flooded.Load() < 64 {
		t.Fatalf("flood never got going: %d events", flooded.Load())
	}

	// Drop accounting matches the policy: the unread hot subscription
	// dropped (newest, its policy's side), the cold one dropped
	// nothing.
	waitFor(t, func() bool { return hot.Stats().DroppedNewest > 0 })
	if st := cold.Stats(); st.DroppedDeliveries != 0 {
		t.Errorf("cold subscription dropped %d deliveries", st.DroppedDeliveries)
	}
	if st := hot.Stats(); st.DroppedOldest != 0 {
		t.Errorf("hot subscription counted %d oldest-drops under DropNewest", st.DroppedOldest)
	}
}
