package damulticast

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport carries protocol frames over TCP with a 4-byte
// big-endian length prefix. Each node listens on one address (which is
// also its process id) and lazily maintains outbound connections to
// its peers. Frame delivery remains best-effort: connection errors
// surface as Send errors, which the protocol treats as channel losses.
type TCPTransport struct {
	listener net.Listener
	addr     string

	mu      sync.Mutex
	handler func([]byte)
	conns   map[string]net.Conn   // outbound, keyed by peer address
	inbound map[net.Conn]struct{} // accepted connections being served
	closed  bool
	wg      sync.WaitGroup

	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default 1 MiB).
	MaxFrame uint32
}

var _ Transport = (*TCPTransport)(nil)

// ErrFrameTooLarge signals an oversized inbound or outbound frame.
var ErrFrameTooLarge = errors.New("damulticast: frame exceeds MaxFrame")

// NewTCPTransport listens on listenAddr ("host:port", ":0" picks a
// free port) and starts accepting inbound peers.
func NewTCPTransport(listenAddr string) (*TCPTransport, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("damulticast: listen: %w", err)
	}
	t := &TCPTransport{
		listener:    l,
		addr:        l.Addr().String(),
		conns:       make(map[string]net.Conn),
		inbound:     make(map[net.Conn]struct{}),
		DialTimeout: 2 * time.Second,
		MaxFrame:    1 << 20,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.addr }

// SetHandler installs the receive callback.
func (t *TCPTransport) SetHandler(h func([]byte)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		payload, err := t.readFrame(r)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(payload)
		}
	}
}

func (t *TCPTransport) readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > t.MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Send frames and transmits payload to addr, dialing or reusing a
// cached connection. A failed write evicts the cached connection so
// the next Send redials.
func (t *TCPTransport) Send(addr string, payload []byte) error {
	if uint32(len(payload)) > t.MaxFrame {
		return ErrFrameTooLarge
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrTransportClosed
	}
	conn, ok := t.conns[addr]
	t.mu.Unlock()

	if !ok {
		var err error
		conn, err = net.DialTimeout("tcp", addr, t.DialTimeout)
		if err != nil {
			return fmt.Errorf("damulticast: dial %s: %w", addr, err)
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return ErrTransportClosed
		}
		if existing, race := t.conns[addr]; race {
			// Another Send raced us; keep the existing connection.
			t.mu.Unlock()
			_ = conn.Close()
			conn = existing
		} else {
			t.conns[addr] = conn
			t.mu.Unlock()
		}
	}

	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	if _, err := conn.Write(frame); err != nil {
		t.mu.Lock()
		if t.conns[addr] == conn {
			delete(t.conns, addr)
		}
		t.mu.Unlock()
		_ = conn.Close()
		return fmt.Errorf("damulticast: write %s: %w", addr, err)
	}
	return nil
}

// Close stops the listener and all connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]net.Conn)
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	err := t.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
	return err
}
