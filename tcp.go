package damulticast

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCPTransport carries protocol frames over TCP with a 4-byte
// big-endian length prefix. Each node listens on one address (which is
// also its process id) and lazily maintains outbound connections to
// its peers. Frame delivery remains best-effort: connection errors
// surface as Send errors, which the protocol treats as channel losses.
//
// Writes are lock-striped per connection: each outbound peer owns a
// mutex and a buffered writer, so concurrent sends to different peers
// never serialize on a transport-wide lock, frames are appended to the
// connection's buffer without a per-send allocation, and a
// small-deadline flush (FlushDelay) coalesces bursts of frames — an
// event fan-out, a shuffle exchange — into one syscall per peer.
type TCPTransport struct {
	listener net.Listener
	addr     string

	mu      sync.Mutex
	handler func([]byte)
	conns   map[string]*tcpConn   // outbound, keyed by peer address
	inbound map[net.Conn]struct{} // accepted connections being served
	closed  bool
	wg      sync.WaitGroup

	// DialTimeout bounds connection establishment (default 2s).
	DialTimeout time.Duration
	// MaxFrame bounds accepted frame sizes (default 1 MiB).
	MaxFrame uint32
	// FlushDelay is how long written frames may linger in a
	// connection's buffer waiting for companions before being flushed
	// (default 200µs). Negative flushes synchronously on every Send.
	// Complementary to wire-level batching: EVENT_BATCH frames pack
	// events into one frame, FlushDelay packs frames into one syscall.
	FlushDelay time.Duration
}

var _ Transport = (*TCPTransport)(nil)

// ErrFrameTooLarge signals an oversized inbound or outbound frame.
var ErrFrameTooLarge = errors.New("damulticast: frame exceeds MaxFrame")

// tcpWriteBuf is the per-connection write buffer: large enough to
// coalesce a whole gossip burst, small enough to be cheap per peer.
const tcpWriteBuf = 64 << 10

// frameTooLarge is the outbound size guard, compared in int64 space: a
// payload over 4 GiB would wrap a uint32 cast, slip past a same-width
// comparison and write a corrupt length prefix the receiver would
// misframe on.
func frameTooLarge(n int64, max uint32) bool { return n > int64(max) }

// tcpConn is one cached outbound connection: its own write lock,
// buffered writer and flush state. The first write or flush error
// poisons the connection and evicts it from the transport's cache (via
// evictFn), so dead peers do not pin sockets until the next Send.
type tcpConn struct {
	conn    net.Conn
	evictFn func() // removes this conn from the cache and closes it

	mu           sync.Mutex
	w            *bufio.Writer
	timer        *time.Timer // reusable coalescing-flush timer
	flushPending bool
	err          error
}

// writeFrame appends one length-prefixed frame to the connection's
// buffer and arranges for it to be flushed within flushDelay.
func (c *tcpConn) writeFrame(payload []byte, flushDelay time.Duration) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		c.err = err
		return err
	}
	if _, err := c.w.Write(payload); err != nil {
		c.err = err
		return err
	}
	if flushDelay < 0 {
		err := c.w.Flush()
		c.err = err
		return err
	}
	if !c.flushPending {
		c.flushPending = true
		// One timer per connection, reset per flush window: the send
		// path stays allocation-free under sustained traffic. Reset is
		// safe because flushPending was false, so the previous firing
		// has already run (or is harmlessly about to flush early).
		if c.timer == nil {
			c.timer = time.AfterFunc(flushDelay, c.flush)
		} else {
			c.timer.Reset(flushDelay)
		}
	}
	return nil
}

// flush drains the write buffer; called from the coalescing timer and
// from Close. A flush error evicts the connection immediately — the
// timer path has no caller to report to.
func (c *tcpConn) flush() {
	c.mu.Lock()
	c.flushPending = false
	if c.err == nil {
		c.err = c.w.Flush()
	}
	failed := c.err != nil
	c.mu.Unlock()
	if failed && c.evictFn != nil {
		c.evictFn()
	}
}

// NewTCPTransport listens on listenAddr ("host:port", ":0" picks a
// free port) and starts accepting inbound peers.
func NewTCPTransport(listenAddr string) (*TCPTransport, error) {
	l, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("damulticast: listen: %w", err)
	}
	t := &TCPTransport{
		listener:    l,
		addr:        l.Addr().String(),
		conns:       make(map[string]*tcpConn),
		inbound:     make(map[net.Conn]struct{}),
		DialTimeout: 2 * time.Second,
		MaxFrame:    1 << 20,
		FlushDelay:  200 * time.Microsecond,
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPTransport) Addr() string { return t.addr }

// SetHandler installs the receive callback.
func (t *TCPTransport) SetHandler(h func([]byte)) {
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = conn.Close()
			return
		}
		t.inbound[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		_ = conn.Close()
		t.mu.Lock()
		delete(t.inbound, conn)
		t.mu.Unlock()
	}()
	r := bufio.NewReader(conn)
	for {
		payload, err := t.readFrame(r)
		if err != nil {
			return
		}
		t.mu.Lock()
		h := t.handler
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if h != nil {
			h(payload)
		}
	}
}

// readFrame reads one length-prefixed frame into a fresh buffer — the
// allocation is deliberate: the handler owns the buffer (see the
// Transport receive contract), and the hub's pooled decoder aliases
// payload bytes into it.
func (t *TCPTransport) readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(lenBuf[:])
	if size > t.MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Send frames and transmits payload to addr, dialing or reusing a
// cached connection. The payload is copied into the connection's write
// buffer before Send returns (callers may reuse it immediately); the
// bytes reach the wire within FlushDelay. A failed write poisons and
// evicts the cached connection; when the failure hit a *cached*
// connection — the classic half-dead socket to a peer that restarted
// since the last exchange — Send retries exactly once on a freshly
// dialed connection instead of losing the frame, so the first message
// to a restarted peer does not silently turn into a channel loss.
// Fresh-dial failures are not retried (the peer is genuinely down),
// and neither is the retry itself, so a flapping peer costs one extra
// dial per Send at most.
func (t *TCPTransport) Send(addr string, payload []byte) error {
	if frameTooLarge(int64(len(payload)), t.MaxFrame) {
		return ErrFrameTooLarge
	}
	conn, cached, err := t.connFor(addr)
	if err != nil {
		return err
	}
	werr := conn.writeFrame(payload, t.FlushDelay)
	if werr == nil {
		return nil
	}
	t.evict(addr, conn)
	if !cached {
		return fmt.Errorf("damulticast: write %s: %w", addr, werr)
	}
	retry, _, err := t.connFor(addr)
	if err != nil {
		return fmt.Errorf("damulticast: write %s: %w (redial failed: %v)", addr, werr, err)
	}
	if err := retry.writeFrame(payload, t.FlushDelay); err != nil {
		t.evict(addr, retry)
		return fmt.Errorf("damulticast: write %s after redial: %w", addr, err)
	}
	return nil
}

// connFor returns the connection to addr, dialing one if needed;
// cached reports whether it came from the cache (and may therefore be
// arbitrarily stale). Only the transport map is guarded by t.mu; frame
// writes take the per-connection lock.
func (t *TCPTransport) connFor(addr string) (conn *tcpConn, cached bool, err error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, ErrTransportClosed
	}
	if conn, ok := t.conns[addr]; ok {
		t.mu.Unlock()
		return conn, true, nil
	}
	t.mu.Unlock()

	raw, err := net.DialTimeout("tcp", addr, t.DialTimeout)
	if err != nil {
		return nil, false, fmt.Errorf("damulticast: dial %s: %w", addr, err)
	}
	conn = &tcpConn{conn: raw, w: bufio.NewWriterSize(raw, tcpWriteBuf)}
	conn.evictFn = func() { t.evict(addr, conn) }
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = raw.Close()
		return nil, false, ErrTransportClosed
	}
	if existing, race := t.conns[addr]; race {
		// Another Send raced us; keep the existing connection.
		t.mu.Unlock()
		_ = raw.Close()
		return existing, true, nil
	}
	t.conns[addr] = conn
	t.mu.Unlock()
	return conn, false, nil
}

// evict drops a failed connection from the cache and closes it.
func (t *TCPTransport) evict(addr string, conn *tcpConn) {
	t.mu.Lock()
	if t.conns[addr] == conn {
		delete(t.conns, addr)
	}
	t.mu.Unlock()
	conn.stopTimer()
	_ = conn.conn.Close()
}

// stopTimer disarms a pending coalescing flush so evicted or
// closed connections do not keep timers (and their write buffers)
// alive past teardown.
func (c *tcpConn) stopTimer() {
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
	}
	c.flushPending = false
	c.mu.Unlock()
}

// Close stops the listener and all connections.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = make(map[string]*tcpConn)
	inbound := make([]net.Conn, 0, len(t.inbound))
	for c := range t.inbound {
		inbound = append(inbound, c)
	}
	t.mu.Unlock()

	err := t.listener.Close()
	for _, c := range conns {
		// Drain coalescing buffers before tearing down, under a short
		// deadline: a stalled peer must not block shutdown.
		_ = c.conn.SetWriteDeadline(time.Now().Add(time.Second))
		c.flush()
		c.stopTimer()
		_ = c.conn.Close()
	}
	for _, c := range inbound {
		_ = c.Close()
	}
	t.wg.Wait()
	return err
}
