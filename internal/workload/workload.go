// Package workload generates topic hierarchies and subscriber
// populations for experiments beyond the paper's fixed three-level
// chain: random trees with configurable depth and branching, and
// population assignments that mimic realistic subscription skew
// (bigger groups toward the leaves, as in §VII-A where S grows 10× per
// level, or Zipf-like skew across branches).
//
// The generators produce sim.Config values, so any generated workload
// runs on the same harness that reproduces the paper's figures.
package workload

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"damulticast/internal/core"
	"damulticast/internal/sim"
	"damulticast/internal/sizing"
	"damulticast/internal/topic"
)

// TreeSpec parameterizes a random topic tree.
type TreeSpec struct {
	// Depth is the maximum topic depth (>= 1).
	Depth int
	// MaxBranch bounds the children per topic (>= 1). The actual
	// count per node is uniform in [1, MaxBranch].
	MaxBranch int
	// Prefix names the segments; segments are "<prefix><n>".
	Prefix string
}

// Errors.
var (
	ErrBadSpec   = errors.New("workload: invalid tree spec")
	ErrBadSizing = errors.New("workload: invalid sizing parameters")
)

// RandomTree builds a random topic hierarchy: starting from a single
// depth-1 topic, each topic at depth < spec.Depth gets a uniform
// number of children in [1, MaxBranch].
func RandomTree(rng *rand.Rand, spec TreeSpec) (*topic.Hierarchy, error) {
	if spec.Depth < 1 || spec.Depth > topic.MaxDepth || spec.MaxBranch < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadSpec, spec)
	}
	if spec.Prefix == "" {
		spec.Prefix = "n"
	}
	h := topic.NewHierarchy()
	seq := 0
	nextSeg := func() string {
		seq++
		return fmt.Sprintf("%s%d", spec.Prefix, seq)
	}
	var grow func(parent topic.Topic, depth int) error
	grow = func(parent topic.Topic, depth int) error {
		if depth > spec.Depth {
			return nil
		}
		kids := 1 + rng.Intn(spec.MaxBranch)
		for i := 0; i < kids; i++ {
			child, err := parent.Child(nextSeg())
			if err != nil {
				return err
			}
			if err := h.Add(child); err != nil {
				return err
			}
			if err := grow(child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := grow(topic.Root, 1); err != nil {
		return nil, err
	}
	return h, nil
}

// Chain returns the paper's linear hierarchy of the given depth as a
// Hierarchy (levels T1..Tdepth below the root T0).
func Chain(depth int) (*topic.Hierarchy, error) {
	topics, err := topic.Chain(depth, "t")
	if err != nil {
		return nil, err
	}
	h := topic.NewHierarchy()
	for _, t := range topics {
		if err := h.Add(t); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Sizing assigns subscriber counts to topics.
type Sizing struct {
	// RootSize is the population of the root group (>= 1).
	RootSize int
	// GrowthPerLevel multiplies the population per depth level
	// (the paper uses 10: 10, 100, 1000). Must be >= 1.
	GrowthPerLevel float64
	// MaxSize caps any single group.
	MaxSize int
	// Jitter in [0,1) perturbs each size by ±Jitter·size.
	Jitter float64
}

// PaperSizing reproduces §VII-A's 10×-per-level growth.
func PaperSizing() Sizing {
	return Sizing{RootSize: 10, GrowthPerLevel: 10, MaxSize: 1000}
}

// Assign computes a group size for every topic in h.
func (s Sizing) Assign(rng *rand.Rand, h *topic.Hierarchy) (map[topic.Topic]int, error) {
	if s.RootSize < 1 || s.GrowthPerLevel < 1 {
		return nil, fmt.Errorf("%w: %+v", ErrBadSizing, s)
	}
	if s.Jitter < 0 || s.Jitter >= 1 {
		return nil, fmt.Errorf("%w: jitter %g", ErrBadSizing, s.Jitter)
	}
	out := make(map[topic.Topic]int, h.Len())
	for _, t := range h.Topics() {
		size := float64(s.RootSize) * math.Pow(s.GrowthPerLevel, float64(t.Depth()))
		if s.Jitter > 0 {
			size *= 1 + s.Jitter*(2*rng.Float64()-1)
		}
		n := int(math.Round(size))
		if n < 1 {
			n = 1
		}
		if s.MaxSize > 0 && n > s.MaxSize {
			n = s.MaxSize
		}
		out[t] = n
	}
	return out, nil
}

// ZipfSizes distributes total subscribers over the topics with a
// Zipf(s=exponent) rank distribution, deepest-first ranking — a
// common model for subscription popularity skew. Every topic gets at
// least one subscriber. The distribution itself lives in
// internal/sizing (a leaf package the figure specs can also import);
// this wrapper keeps workload's historical signature.
func ZipfSizes(rng *rand.Rand, h *topic.Hierarchy, total int, exponent float64) (map[topic.Topic]int, error) {
	_ = rng // reserved for future randomized tie-breaking
	out, err := sizing.Zipf(h, total, exponent)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSizing, err)
	}
	return out, nil
}

// Config assembles a sim.Config from a hierarchy and sizes, publishing
// at the deepest (and with the paper's sizing, largest) topic.
func Config(h *topic.Hierarchy, sizes map[topic.Topic]int, params core.Params,
	psucc, alive float64, mode sim.FailureMode, seed int64) (sim.Config, error) {
	var groups []sim.GroupSpec
	var deepest topic.Topic
	for _, t := range h.Topics() {
		n, ok := sizes[t]
		if !ok {
			return sim.Config{}, fmt.Errorf("workload: no size for topic %s", t)
		}
		groups = append(groups, sim.GroupSpec{Topic: t, Size: n})
		if deepest == "" || t.Depth() > deepest.Depth() {
			deepest = t
		}
	}
	cfg := sim.Config{
		Groups:        groups,
		Params:        params,
		PSucc:         psucc,
		AliveFraction: alive,
		FailureMode:   mode,
		PublishTopic:  deepest,
		Publications:  1,
		MaxRounds:     300,
		Seed:          seed,
	}
	return cfg, cfg.Validate()
}
