package workload

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"damulticast/internal/core"
	"damulticast/internal/sim"
	"damulticast/internal/topic"
)

func newRng() *rand.Rand { return rand.New(rand.NewSource(7)) }

func TestRandomTreeShape(t *testing.T) {
	h, err := RandomTree(newRng(), TreeSpec{Depth: 3, MaxBranch: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h.Depth() != 3 {
		t.Errorf("depth = %d", h.Depth())
	}
	if h.Len() < 4 { // root + at least one per level
		t.Errorf("Len = %d", h.Len())
	}
	// Every non-root topic's parent is registered (tree property).
	for _, tp := range h.Topics() {
		if tp.IsRoot() {
			continue
		}
		if !h.Contains(tp.Super()) {
			t.Errorf("parent of %s missing", tp)
		}
	}
}

func TestRandomTreeValidation(t *testing.T) {
	if _, err := RandomTree(newRng(), TreeSpec{Depth: 0, MaxBranch: 2}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v", err)
	}
	if _, err := RandomTree(newRng(), TreeSpec{Depth: 2, MaxBranch: 0}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v", err)
	}
	if _, err := RandomTree(newRng(), TreeSpec{Depth: topic.MaxDepth + 1, MaxBranch: 1}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("err = %v", err)
	}
}

func TestChain(t *testing.T) {
	h, err := Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 || h.Depth() != 2 {
		t.Errorf("Len=%d Depth=%d", h.Len(), h.Depth())
	}
}

func TestPaperSizing(t *testing.T) {
	h, err := Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := PaperSizing().Assign(newRng(), h)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 10, 1: 100, 2: 1000}
	for tp, n := range sizes {
		if n != want[tp.Depth()] {
			t.Errorf("size of %s = %d, want %d", tp, n, want[tp.Depth()])
		}
	}
}

func TestSizingValidationAndClamps(t *testing.T) {
	h, _ := Chain(2)
	if _, err := (Sizing{RootSize: 0, GrowthPerLevel: 2}).Assign(newRng(), h); !errors.Is(err, ErrBadSizing) {
		t.Errorf("err = %v", err)
	}
	if _, err := (Sizing{RootSize: 1, GrowthPerLevel: 0.5}).Assign(newRng(), h); !errors.Is(err, ErrBadSizing) {
		t.Errorf("err = %v", err)
	}
	if _, err := (Sizing{RootSize: 1, GrowthPerLevel: 2, Jitter: 1}).Assign(newRng(), h); !errors.Is(err, ErrBadSizing) {
		t.Errorf("err = %v", err)
	}
	sizes, err := Sizing{RootSize: 10, GrowthPerLevel: 10, MaxSize: 50}.Assign(newRng(), h)
	if err != nil {
		t.Fatal(err)
	}
	for tp, n := range sizes {
		if n > 50 {
			t.Errorf("size of %s = %d above cap", tp, n)
		}
	}
	// Jitter keeps sizes positive.
	sizes, err = Sizing{RootSize: 1, GrowthPerLevel: 1, Jitter: 0.9}.Assign(newRng(), h)
	if err != nil {
		t.Fatal(err)
	}
	for tp, n := range sizes {
		if n < 1 {
			t.Errorf("size of %s = %d", tp, n)
		}
	}
}

func TestZipfSizes(t *testing.T) {
	h, err := RandomTree(newRng(), TreeSpec{Depth: 3, MaxBranch: 2})
	if err != nil {
		t.Fatal(err)
	}
	const total = 5000
	sizes, err := ZipfSizes(newRng(), h, total, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range sizes {
		if n < 1 {
			t.Fatalf("zero-size group")
		}
		sum += n
	}
	if sum != total {
		t.Errorf("total = %d, want %d", sum, total)
	}
	// Validation.
	if _, err := ZipfSizes(newRng(), h, h.Len()-1, 1.1); !errors.Is(err, ErrBadSizing) {
		t.Errorf("err = %v", err)
	}
	if _, err := ZipfSizes(newRng(), h, total, 0); !errors.Is(err, ErrBadSizing) {
		t.Errorf("err = %v", err)
	}
}

func TestZipfSizesEveryTopicAssigned(t *testing.T) {
	h, err := RandomTree(newRng(), TreeSpec{Depth: 3, MaxBranch: 3})
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := ZipfSizes(newRng(), h, h.Len()*10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sizes) != h.Len() {
		t.Fatalf("assigned %d topics, hierarchy has %d", len(sizes), h.Len())
	}
	for _, tp := range h.Topics() {
		if n, ok := sizes[tp]; !ok || n < 1 {
			t.Errorf("topic %s: size %d (assigned=%v)", tp, n, ok)
		}
	}
	// Skew direction: the deepest topic outweighs the root.
	var deepest topic.Topic
	for _, tp := range h.Topics() {
		if deepest == "" || tp.Depth() > deepest.Depth() {
			deepest = tp
		}
	}
	if sizes[deepest] <= sizes[topic.Root] {
		t.Errorf("deepest %s = %d not above root = %d", deepest, sizes[deepest], sizes[topic.Root])
	}
}

func TestZipfSizesStableUnderFixedSeed(t *testing.T) {
	// The distribution is a pure function of (hierarchy, total,
	// exponent) — the figure sweep's determinism contract relies on it.
	build := func() map[topic.Topic]int {
		h, err := RandomTree(newRng(), TreeSpec{Depth: 2, MaxBranch: 3})
		if err != nil {
			t.Fatal(err)
		}
		sizes, err := ZipfSizes(newRng(), h, 4000, 1.3)
		if err != nil {
			t.Fatal(err)
		}
		return sizes
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("topic counts differ: %d vs %d", len(a), len(b))
	}
	for tp, n := range a {
		if b[tp] != n {
			t.Errorf("topic %s: %d vs %d across identical seeds", tp, n, b[tp])
		}
	}
}

func TestRandomTreeStableUnderFixedSeed(t *testing.T) {
	spec := TreeSpec{Depth: 3, MaxBranch: 4}
	h1, err := RandomTree(newRng(), spec)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := RandomTree(newRng(), spec)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := h1.Topics(), h2.Topics()
	if len(t1) != len(t2) {
		t.Fatalf("topic counts differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Errorf("topic %d: %s vs %s across identical seeds", i, t1[i], t2[i])
		}
	}
}

func TestConfigBuildsValidSimConfig(t *testing.T) {
	h, err := Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	sizes, err := Sizing{RootSize: 5, GrowthPerLevel: 3}.Assign(newRng(), h)
	if err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	cfg, err := Config(h, sizes, params, 1, 1, sim.FailNone, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PublishTopic.Depth() != 2 {
		t.Errorf("publish topic = %s", cfg.PublishTopic)
	}
	// The generated workload actually runs, reliably, end to end.
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parasites != 0 {
		t.Errorf("parasites = %d", res.Parasites)
	}
	for tp, rel := range res.Reliability {
		if rel < 1 {
			t.Errorf("group %s reliability = %g under lossless/no-failure", tp, rel)
		}
	}
	// Missing size is an error.
	delete(sizes, cfg.PublishTopic)
	if _, err := Config(h, sizes, params, 1, 1, sim.FailNone, 3); err == nil {
		t.Error("missing size accepted")
	}
}

// Property: any random tree + Zipf sizing yields a valid, runnable
// sim.Config whose run produces no parasites.
func TestPropGeneratedWorkloadsRun(t *testing.T) {
	params := core.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, err := RandomTree(rng, TreeSpec{Depth: 1 + rng.Intn(3), MaxBranch: 1 + rng.Intn(2)})
		if err != nil {
			return false
		}
		sizes, err := ZipfSizes(rng, h, h.Len()*20, 1.2)
		if err != nil {
			return false
		}
		cfg, err := Config(h, sizes, params, 0.9, 0.8, sim.FailStillborn, seed)
		if err != nil {
			return false
		}
		res, err := sim.Run(cfg)
		if err != nil {
			return false
		}
		return res.Parasites == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
