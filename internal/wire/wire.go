// Package wire is the binary codec for protocol frames, format
// version 5.
//
// Every frame starts with a version byte (0x05) followed by the
// message type as an unsigned varint, the destination-group demux
// topic, and the envelope fields in a fixed order:
//
//	frame    := version(1 byte) type(uvarint) dest body
//	body     := from fromTopic event origin originTopic searchTopics
//	            ttl reqID contacts contactsTopic digest superEntries
//	            superTopic bloom events
//	dest, from, fromTopic, origin, originTopic,
//	contactsTopic, superTopic              := string
//	event    := 0x00 | 0x01 eventBody
//	eventBody:= string(origin) uvarint(seq) string(topic)
//	            bytes(payload)
//	searchTopics, contacts                 := uvarint(count) string*
//	ttl      := varint (zigzag)
//	reqID    := uvarint
//	digest   := string(from) entries
//	superEntries, entries                  := uvarint(count)
//	            (string(id) varint(age))*
//	bloom    := bytes(filter) uvarint(k) uvarint(seed)
//	events   := uvarint(count) eventBody*
//	string   := uvarint(len) raw bytes
//	bytes    := uvarint(len) raw bytes
//
// Unset fields cost one zero byte each, which keeps the encoder
// branch-free enough to skip per-type layouts entirely. The decoder is
// strict: it bounds-checks every read, rejects unknown versions and
// message types, rejects element counts that cannot fit the remaining
// bytes, and rejects frames with trailing garbage — a peer speaking
// garbage must never reach the protocol state machine.
//
// The dest field sits right after the type: it is the demultiplex key
// multi-topic endpoints route on (see core.Registry), cheap to peek at
// without parsing the body (PeekDest), so it leads the frame ahead of
// the bulkier envelope fields.
//
// Version 5 introduces the EVENT_BATCH message type: the events list
// that v4 reserved for recovery answers now also carries live
// event-batch frames (N events for one destination group in one
// frame). The field layout is unchanged from v4; the version bump
// exists because a v4 peer would reject the new type id, and the
// policy is that decoders never partially understand a generation.
//
// Compatibility policy: the version byte is the whole negotiation.
// Version 5 frames begin with 0x05; version-4 frames (same layout,
// without the EVENT_BATCH type) began with 0x04, version-3 frames
// (whose recovery digest was an explicit event-id list where v4 grew a
// bloom filter) began with 0x03, version-2 frames (which lacked the
// dest demux field) began with 0x02, version-1 frames (which also
// lacked the recovery tail) began with 0x01, and all are rejected
// outright, as are the legacy JSON codec's frames, which begin with
// '{' (0x7b) — see the cross-decode tests. Any incompatible layout
// change must bump Version, and decoders only ever accept versions
// they were built to understand.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
)

// Version is the wire format version byte leading every frame.
const Version = 0x05

// ErrCodec is the base error wrapped by all decode failures.
var ErrCodec = errors.New("damulticast: decode")

// AppendMessage appends the binary encoding of m to dst and returns
// the extended slice. Encoding cannot fail: every representable
// Message has a valid frame.
func AppendMessage(dst []byte, m *core.Message) []byte {
	dst = append(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(m.Type))
	dst = appendWireString(dst, string(m.Dest))
	dst = appendWireString(dst, string(m.From))
	dst = appendWireString(dst, string(m.FromTopic))
	if ev := m.Event; ev != nil {
		dst = append(dst, 1)
		dst = appendEventBody(dst, ev)
	} else {
		dst = append(dst, 0)
	}
	dst = appendWireString(dst, string(m.Origin))
	dst = appendWireString(dst, string(m.OriginTopic))
	dst = binary.AppendUvarint(dst, uint64(len(m.SearchTopics)))
	for _, t := range m.SearchTopics {
		dst = appendWireString(dst, string(t))
	}
	dst = binary.AppendVarint(dst, int64(m.TTL))
	dst = binary.AppendUvarint(dst, m.ReqID)
	dst = binary.AppendUvarint(dst, uint64(len(m.Contacts)))
	for _, id := range m.Contacts {
		dst = appendWireString(dst, string(id))
	}
	dst = appendWireString(dst, string(m.ContactsTopic))
	dst = appendWireString(dst, string(m.Digest.From))
	dst = appendEntries(dst, m.Digest.Entries)
	dst = appendEntries(dst, m.SuperEntries)
	dst = appendWireString(dst, string(m.SuperTopic))
	dst = binary.AppendUvarint(dst, uint64(len(m.BloomBits)))
	dst = append(dst, m.BloomBits...)
	dst = binary.AppendUvarint(dst, uint64(m.BloomK))
	dst = binary.AppendUvarint(dst, m.BloomSeed)
	dst = binary.AppendUvarint(dst, uint64(len(m.Events)))
	for _, ev := range m.Events {
		dst = appendEventBody(dst, ev)
	}
	return dst
}

// appendEventBody appends one event's wire form (origin, seq, topic,
// payload) — shared by the single-event field, the live event-batch
// list and the recovery bulk list.
func appendEventBody(dst []byte, ev *core.Event) []byte {
	dst = appendWireString(dst, string(ev.ID.Origin))
	dst = binary.AppendUvarint(dst, ev.ID.Seq)
	dst = appendWireString(dst, string(ev.Topic))
	dst = binary.AppendUvarint(dst, uint64(len(ev.Payload)))
	return append(dst, ev.Payload...)
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendEntries(dst []byte, entries []membership.Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendWireString(dst, string(e.ID))
		dst = binary.AppendVarint(dst, int64(e.Age))
	}
	return dst
}

// EncodeMessage serializes a protocol message into a fresh frame.
// Hot paths use AppendMessage with pooled buffers instead; this entry
// point serves tests and one-shot callers.
func EncodeMessage(m *core.Message) ([]byte, error) {
	return AppendMessage(nil, m), nil
}

// decoder is a strict cursor over one frame. The first failed read
// latches err; subsequent reads return zero values, so parse code
// reads straight through and checks once at the end.
//
// With a nil scratch the cursor decodes into fresh allocations (the
// DecodeMessage path: every string, slice and payload is its own heap
// copy). With a scratch Decoder attached it decodes into the Decoder's
// reusable buffers instead: strings go through the intern table, byte
// fields alias the frame, and slices reuse the Decoder's backing
// arrays — see Decoder for the resulting lifetime contract.
type decoder struct {
	buf     []byte
	off     int
	err     error
	scratch *Decoder
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated frame at byte %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads an element count and rejects values that cannot fit in
// the remaining bytes (minBytes per element), so corrupt frames cannot
// induce giant allocations.
func (d *decoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.remaining()/minBytes) {
		d.fail("count %d exceeds remaining %d bytes", v, d.remaining())
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("string length %d exceeds remaining %d bytes", n, d.remaining())
		return ""
	}
	b := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if d.scratch != nil {
		return d.scratch.intern(b)
	}
	return string(b)
}

// bytes reads a length-prefixed byte field. The allocating path copies
// into a fresh buffer (the frame may alias a transport buffer; decoded
// messages must not); the pooled path returns a subslice of the frame
// itself — Decoder's lifetime contract. Zero length decodes as nil.
func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail("bytes length %d exceeds remaining %d bytes", n, d.remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	if d.scratch != nil {
		out := d.buf[d.off : d.off+int(n) : d.off+int(n)]
		d.off += int(n)
		return out
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// eventBodyInto reads one event's wire form (see appendEventBody) into
// a caller-provided struct.
func (d *decoder) eventBodyInto(ev *core.Event) {
	ev.ID.Origin = ids.ProcessID(d.str())
	ev.ID.Seq = d.uvarint()
	ev.Topic = topic.Topic(d.str())
	ev.Payload = d.bytes()
}

func (d *decoder) entries(scratch *[]membership.Entry) []membership.Entry {
	n := d.count(2) // id length byte + age byte minimum
	if d.err != nil || n == 0 {
		return nil
	}
	var out []membership.Entry
	if scratch != nil {
		if cap(*scratch) < n {
			*scratch = make([]membership.Entry, n)
		}
		out = (*scratch)[:n]
	} else {
		out = make([]membership.Entry, n)
	}
	for i := range out {
		out[i].ID = ids.ProcessID(d.str())
		out[i].Age = int(d.varint())
	}
	return out
}

// message parses one whole frame into m; shared by the allocating
// DecodeMessage and the pooled Decoder.Decode (which differ only in
// where the cursor's primitive reads put their results).
func (d *decoder) message(m *core.Message) error {
	if v := d.byte(); d.err == nil && v != Version {
		return fmt.Errorf("%w: unsupported wire version %d (want %d)", ErrCodec, v, Version)
	}
	m.Type = core.MsgType(d.uvarint())
	if d.err == nil && !m.Type.Known() {
		return fmt.Errorf("%w: unknown message type %d", ErrCodec, int(m.Type))
	}
	m.Dest = topic.Topic(d.str())
	m.From = ids.ProcessID(d.str())
	m.FromTopic = topic.Topic(d.str())
	switch flag := d.byte(); {
	case d.err != nil:
	case flag == 1:
		if d.scratch != nil {
			d.scratch.ev = core.Event{}
			m.Event = &d.scratch.ev
		} else {
			m.Event = &core.Event{}
		}
		d.eventBodyInto(m.Event)
	case flag != 0:
		d.fail("bad event flag %d", flag)
	}
	m.Origin = ids.ProcessID(d.str())
	m.OriginTopic = topic.Topic(d.str())
	if n := d.count(1); d.err == nil && n > 0 {
		if d.scratch != nil {
			m.SearchTopics = d.scratch.topicSlots(n)
		} else {
			m.SearchTopics = make([]topic.Topic, n)
		}
		for i := range m.SearchTopics {
			m.SearchTopics[i] = topic.Topic(d.str())
		}
	}
	m.TTL = int(d.varint())
	m.ReqID = d.uvarint()
	if n := d.count(1); d.err == nil && n > 0 {
		if d.scratch != nil {
			m.Contacts = d.scratch.contactSlots(n)
		} else {
			m.Contacts = make([]ids.ProcessID, n)
		}
		for i := range m.Contacts {
			m.Contacts[i] = ids.ProcessID(d.str())
		}
	}
	m.ContactsTopic = topic.Topic(d.str())
	m.Digest.From = ids.ProcessID(d.str())
	var dEnt, sEnt *[]membership.Entry
	if d.scratch != nil {
		dEnt, sEnt = &d.scratch.dEntries, &d.scratch.sEntries
	}
	m.Digest.Entries = d.entries(dEnt)
	m.SuperEntries = d.entries(sEnt)
	m.SuperTopic = topic.Topic(d.str())
	m.BloomBits = d.bytes()
	m.BloomK = int(d.uvarint())
	m.BloomSeed = d.uvarint()
	if n := d.count(4); d.err == nil && n > 0 { // origin+topic+payload length bytes + seq byte
		if d.scratch != nil {
			evs, ptrs := d.scratch.eventSlots(n)
			for i := range evs {
				d.eventBodyInto(&evs[i])
				ptrs[i] = &evs[i]
			}
			m.Events = ptrs
		} else {
			m.Events = make([]*core.Event, n)
			for i := range m.Events {
				m.Events[i] = &core.Event{}
				d.eventBodyInto(m.Events[i])
			}
		}
	}
	if d.err != nil {
		return d.err
	}
	if d.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after message", ErrCodec, d.remaining())
	}
	return nil
}

// DecodeMessage parses a binary frame produced by AppendMessage into
// freshly allocated structures (nothing aliases the frame; the result
// may be retained indefinitely). Frames with an unknown version byte
// (including retired versions and legacy JSON frames, which start with
// '{'), an unknown message type, truncated or oversized fields, or
// trailing bytes are rejected. Steady-state receive paths use Decoder
// instead.
func DecodeMessage(payload []byte) (*core.Message, error) {
	d := decoder{buf: payload}
	var m core.Message
	if err := d.message(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

// maxInternedStrings bounds the Decoder's string intern table; a peer
// cycling through unbounded distinct ids or topics costs a table reset,
// not unbounded memory.
const maxInternedStrings = 4096

// Decoder is a reusable frame decoder for a single receive loop: all
// decode scratch — the Message, event structs, slice backing arrays —
// is owned by the Decoder and reused across calls, and strings are
// interned in a bounded table, so steady-state decoding of live
// traffic performs zero allocations per frame.
//
// The contract is strict in exchange:
//
//   - The returned Message and everything reachable from it (events,
//     slices) is valid only until the next Decode call. Callers that
//     retain events past the handling of one frame must Clone them
//     first (the hub does, for processes whose recovery store retains
//     events).
//   - Byte fields (event payloads, bloom filter bits) alias the frame
//     itself, so the frame buffer must stay untouched while the decoded
//     message is in use, and the caller must own it (both bundled
//     transports hand the receive callback a fresh buffer per frame).
//   - Interned strings are ordinary heap strings; retaining them (ids
//     in membership views, seen-set keys) is safe and is exactly what
//     the interning exists for.
//
// A Decoder is not safe for concurrent use; one goroutine owns it.
type Decoder struct {
	msg      core.Message
	ev       core.Event
	events   []core.Event
	evPtrs   []*core.Event
	topics   []topic.Topic
	contacts []ids.ProcessID
	dEntries []membership.Entry
	sEntries []membership.Entry
	strings  map[string]string
}

// NewDecoder returns an empty Decoder.
func NewDecoder() *Decoder {
	return &Decoder{strings: make(map[string]string, 64)}
}

// Decode parses one frame into the Decoder's reusable scratch. See the
// type comment for the lifetime contract; errors match DecodeMessage's.
func (dec *Decoder) Decode(frame []byte) (*core.Message, error) {
	dec.msg = core.Message{}
	d := decoder{buf: frame, scratch: dec}
	if err := d.message(&dec.msg); err != nil {
		return nil, err
	}
	return &dec.msg, nil
}

// intern maps raw string bytes to a stable heap string, allocating only
// on first sight (the map lookup on []byte-to-string conversion does
// not allocate). The table is reset when it reaches its bound.
func (dec *Decoder) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := dec.strings[string(b)]; ok {
		return s
	}
	if len(dec.strings) >= maxInternedStrings {
		clear(dec.strings)
	}
	s := string(b)
	dec.strings[s] = s
	return s
}

func (dec *Decoder) topicSlots(n int) []topic.Topic {
	if cap(dec.topics) < n {
		dec.topics = make([]topic.Topic, n)
	}
	return dec.topics[:n]
}

func (dec *Decoder) contactSlots(n int) []ids.ProcessID {
	if cap(dec.contacts) < n {
		dec.contacts = make([]ids.ProcessID, n)
	}
	return dec.contacts[:n]
}

// eventSlots returns n zeroable event structs and a parallel pointer
// slice. The structs are sized up front so taking their addresses is
// stable (no append-regrowth after pointers are handed out).
func (dec *Decoder) eventSlots(n int) ([]core.Event, []*core.Event) {
	if cap(dec.events) < n {
		dec.events = make([]core.Event, n)
	}
	if cap(dec.evPtrs) < n {
		dec.evPtrs = make([]*core.Event, n)
	}
	return dec.events[:n], dec.evPtrs[:n]
}

// PeekDest reads a frame's routing prefix — version byte, message type
// and destination-group demux topic — without touching the body. The
// returned dest subslices the frame (no allocation); an empty dest is
// returned as an empty slice. Receive loops use it to fan frames into
// per-subscription queues before paying for a full decode, and to
// reject frames of foreign wire generations (version byte) or unknown
// type at the door. A valid prefix does not imply a valid body; the
// full decode still validates everything it reads.
func PeekDest(frame []byte) (core.MsgType, []byte, error) {
	d := decoder{buf: frame}
	if v := d.byte(); d.err == nil && v != Version {
		return 0, nil, fmt.Errorf("%w: unsupported wire version %d (want %d)", ErrCodec, v, Version)
	}
	t := core.MsgType(d.uvarint())
	if d.err == nil && !t.Known() {
		return 0, nil, fmt.Errorf("%w: unknown message type %d", ErrCodec, int(t))
	}
	n := d.uvarint()
	if d.err == nil && n > uint64(d.remaining()) {
		d.fail("string length %d exceeds remaining %d bytes", n, d.remaining())
	}
	if d.err != nil {
		return 0, nil, d.err
	}
	return t, frame[d.off : d.off+int(n)], nil
}
