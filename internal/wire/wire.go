// Package wire is the binary codec for protocol frames, format
// version 4.
//
// Every frame starts with a version byte (0x04) followed by the
// message type as an unsigned varint, the destination-group demux
// topic, and the envelope fields in a fixed order:
//
//	frame    := version(1 byte) type(uvarint) dest body
//	body     := from fromTopic event origin originTopic searchTopics
//	            ttl reqID contacts contactsTopic digest superEntries
//	            superTopic bloom events
//	dest, from, fromTopic, origin, originTopic,
//	contactsTopic, superTopic              := string
//	event    := 0x00 | 0x01 eventBody
//	eventBody:= string(origin) uvarint(seq) string(topic)
//	            bytes(payload)
//	searchTopics, contacts                 := uvarint(count) string*
//	ttl      := varint (zigzag)
//	reqID    := uvarint
//	digest   := string(from) entries
//	superEntries, entries                  := uvarint(count)
//	            (string(id) varint(age))*
//	bloom    := bytes(filter) uvarint(k) uvarint(seed)
//	events   := uvarint(count) eventBody*
//	string   := uvarint(len) raw bytes
//	bytes    := uvarint(len) raw bytes
//
// Unset fields cost one zero byte each, which keeps the encoder
// branch-free enough to skip per-type layouts entirely. The decoder is
// strict: it bounds-checks every read, rejects unknown versions and
// message types, rejects element counts that cannot fit the remaining
// bytes, and rejects frames with trailing garbage — a peer speaking
// garbage must never reach the protocol state machine.
//
// The dest field sits right after the type: it is the demultiplex key
// multi-topic endpoints route on (see core.Registry), so it leads the
// frame ahead of the bulkier envelope fields.
//
// Compatibility policy: the version byte is the whole negotiation.
// Version 4 frames begin with 0x04; version-3 frames (whose recovery
// digest was an explicit event-id list where v4 carries a bloom
// filter) began with 0x03, version-2 frames (which lacked the dest
// demux field) began with 0x02, version-1 frames (which also lacked
// the recovery tail) began with 0x01, and all are rejected outright,
// as are the legacy JSON codec's frames, which begin with '{' (0x7b) —
// see the cross-decode tests. Any incompatible layout change must bump
// Version, and decoders only ever accept versions they were built to
// understand.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
)

// Version is the wire format version byte leading every frame.
const Version = 0x04

// ErrCodec is the base error wrapped by all decode failures.
var ErrCodec = errors.New("damulticast: decode")

// AppendMessage appends the binary encoding of m to dst and returns
// the extended slice. Encoding cannot fail: every representable
// Message has a valid frame.
func AppendMessage(dst []byte, m *core.Message) []byte {
	dst = append(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(m.Type))
	dst = appendWireString(dst, string(m.Dest))
	dst = appendWireString(dst, string(m.From))
	dst = appendWireString(dst, string(m.FromTopic))
	if ev := m.Event; ev != nil {
		dst = append(dst, 1)
		dst = appendEventBody(dst, ev)
	} else {
		dst = append(dst, 0)
	}
	dst = appendWireString(dst, string(m.Origin))
	dst = appendWireString(dst, string(m.OriginTopic))
	dst = binary.AppendUvarint(dst, uint64(len(m.SearchTopics)))
	for _, t := range m.SearchTopics {
		dst = appendWireString(dst, string(t))
	}
	dst = binary.AppendVarint(dst, int64(m.TTL))
	dst = binary.AppendUvarint(dst, m.ReqID)
	dst = binary.AppendUvarint(dst, uint64(len(m.Contacts)))
	for _, id := range m.Contacts {
		dst = appendWireString(dst, string(id))
	}
	dst = appendWireString(dst, string(m.ContactsTopic))
	dst = appendWireString(dst, string(m.Digest.From))
	dst = appendEntries(dst, m.Digest.Entries)
	dst = appendEntries(dst, m.SuperEntries)
	dst = appendWireString(dst, string(m.SuperTopic))
	dst = binary.AppendUvarint(dst, uint64(len(m.BloomBits)))
	dst = append(dst, m.BloomBits...)
	dst = binary.AppendUvarint(dst, uint64(m.BloomK))
	dst = binary.AppendUvarint(dst, m.BloomSeed)
	dst = binary.AppendUvarint(dst, uint64(len(m.Events)))
	for _, ev := range m.Events {
		dst = appendEventBody(dst, ev)
	}
	return dst
}

// appendEventBody appends one event's wire form (origin, seq, topic,
// payload) — shared by the single-event field and the recovery bulk
// list.
func appendEventBody(dst []byte, ev *core.Event) []byte {
	dst = appendWireString(dst, string(ev.ID.Origin))
	dst = binary.AppendUvarint(dst, ev.ID.Seq)
	dst = appendWireString(dst, string(ev.Topic))
	dst = binary.AppendUvarint(dst, uint64(len(ev.Payload)))
	return append(dst, ev.Payload...)
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendEntries(dst []byte, entries []membership.Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	for _, e := range entries {
		dst = appendWireString(dst, string(e.ID))
		dst = binary.AppendVarint(dst, int64(e.Age))
	}
	return dst
}

// EncodeMessage serializes a protocol message into a fresh frame.
// Hot paths use AppendMessage with pooled buffers instead; this entry
// point serves tests and one-shot callers.
func EncodeMessage(m *core.Message) ([]byte, error) {
	return AppendMessage(nil, m), nil
}

// decoder is a strict cursor over one frame. The first failed read
// latches err; subsequent reads return zero values, so parse code
// reads straight through and checks once at the end.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCodec, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) remaining() int { return len(d.buf) - d.off }

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated frame at byte %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads an element count and rejects values that cannot fit in
// the remaining bytes (minBytes per element), so corrupt frames cannot
// induce giant allocations.
func (d *decoder) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(d.remaining()/minBytes) {
		d.fail("count %d exceeds remaining %d bytes", v, d.remaining())
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.remaining()) {
		d.fail("string length %d exceeds remaining %d bytes", n, d.remaining())
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// bytes reads a length-prefixed byte field into a fresh buffer (the
// frame may alias a transport buffer; decoded messages must not).
// Zero length decodes as nil.
func (d *decoder) bytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.remaining()) {
		d.fail("bytes length %d exceeds remaining %d bytes", n, d.remaining())
		return nil
	}
	if n == 0 {
		return nil
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out
}

// eventBody reads one event's wire form (see appendEventBody).
func (d *decoder) eventBody() *core.Event {
	ev := &core.Event{}
	ev.ID.Origin = ids.ProcessID(d.str())
	ev.ID.Seq = d.uvarint()
	ev.Topic = topic.Topic(d.str())
	ev.Payload = d.bytes()
	return ev
}

func (d *decoder) entries() []membership.Entry {
	n := d.count(2) // id length byte + age byte minimum
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]membership.Entry, n)
	for i := range out {
		out[i].ID = ids.ProcessID(d.str())
		out[i].Age = int(d.varint())
	}
	return out
}

// DecodeMessage parses a binary frame produced by AppendMessage.
// Frames with an unknown version byte (including retired versions and
// legacy JSON frames, which start with '{'), an unknown message type,
// truncated or oversized fields, or trailing bytes are rejected.
func DecodeMessage(payload []byte) (*core.Message, error) {
	d := &decoder{buf: payload}
	if v := d.byte(); d.err == nil && v != Version {
		return nil, fmt.Errorf("%w: unsupported wire version %d (want %d)", ErrCodec, v, Version)
	}
	var m core.Message
	m.Type = core.MsgType(d.uvarint())
	if d.err == nil && !m.Type.Known() {
		return nil, fmt.Errorf("%w: unknown message type %d", ErrCodec, int(m.Type))
	}
	m.Dest = topic.Topic(d.str())
	m.From = ids.ProcessID(d.str())
	m.FromTopic = topic.Topic(d.str())
	switch flag := d.byte(); {
	case d.err != nil:
	case flag == 1:
		m.Event = d.eventBody()
	case flag != 0:
		d.fail("bad event flag %d", flag)
	}
	m.Origin = ids.ProcessID(d.str())
	m.OriginTopic = topic.Topic(d.str())
	if n := d.count(1); d.err == nil && n > 0 {
		m.SearchTopics = make([]topic.Topic, n)
		for i := range m.SearchTopics {
			m.SearchTopics[i] = topic.Topic(d.str())
		}
	}
	m.TTL = int(d.varint())
	m.ReqID = d.uvarint()
	if n := d.count(1); d.err == nil && n > 0 {
		m.Contacts = make([]ids.ProcessID, n)
		for i := range m.Contacts {
			m.Contacts[i] = ids.ProcessID(d.str())
		}
	}
	m.ContactsTopic = topic.Topic(d.str())
	m.Digest.From = ids.ProcessID(d.str())
	m.Digest.Entries = d.entries()
	m.SuperEntries = d.entries()
	m.SuperTopic = topic.Topic(d.str())
	m.BloomBits = d.bytes()
	m.BloomK = int(d.uvarint())
	m.BloomSeed = d.uvarint()
	if n := d.count(4); d.err == nil && n > 0 { // origin+topic+payload length bytes + seq byte
		m.Events = make([]*core.Event, n)
		for i := range m.Events {
			m.Events[i] = d.eventBody()
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after message", ErrCodec, d.remaining())
	}
	return &m, nil
}
