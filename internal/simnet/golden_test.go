package simnet

import (
	"fmt"
	"hash/fnv"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/xrand"
)

// runDigest drives a fixed chatter workload — loss, per-observer
// failure appearances, a severed link, ticking nodes — and folds the
// kernel's complete observable stream (every OnSend envelope with its
// drop decision, every round's delivery count, every node's final log)
// into one FNV-1a digest.
func runDigest(t *testing.T, workers int) string {
	t.Helper()
	const seed, n = 424242, 41
	net, nodes := buildChatter(t, seed, n, workers)
	net.TickNodes = true
	net.SetPairDown(PairDownCoin(seed+1, 0.1))
	net.SetLinkDown(func(from, to ids.ProcessID) bool { return from == "n003" && to == "n007" })

	h := fnv.New64a()
	net.OnSend = func(env Envelope, dropped bool) {
		fmt.Fprintf(h, "s|%s|%s|%d|%v|%v\n", env.From, env.To, env.Seq, env.Msg, dropped)
	}
	net.OnRoundEnd = func(round int) {
		fmt.Fprintf(h, "r|%d|%d\n", round, net.Pending())
	}
	for i := 0; i < 7; i++ {
		net.Send(nodes[i].id, nodes[(i*5)%n].id, fmt.Sprintf("seed%d", i))
	}
	for r := 0; r < 10; r++ {
		fmt.Fprintf(h, "d|%d\n", net.Step())
	}
	// Mid-run topology churn (legal between rounds) plus an
	// unregistered external sender, then more rounds.
	if err := net.Crash(nodes[4].id); err != nil {
		t.Fatal(err)
	}
	extra := &chatterNode{
		id: "zz-extra", net: net, rng: xrand.NewStream(seed, "node:zz-extra"),
		peers: []ids.ProcessID{nodes[0].id, nodes[1].id}, hops: 3,
	}
	if err := net.AddNode(extra); err != nil {
		t.Fatal(err)
	}
	net.Send("external", extra.id, "boot")
	for r := 0; r < 8; r++ {
		fmt.Fprintf(h, "d|%d\n", net.Step())
	}
	for _, nd := range nodes {
		fmt.Fprintf(h, "l|%s|%v\n", nd.id, nd.received)
	}
	fmt.Fprintf(h, "l|%s|%v\n", extra.id, extra.received)
	return fmt.Sprintf("%016x", h.Sum64())
}

// goldenKernelDigest pins the kernel's exact observable behavior for
// the workload above, captured from the pre-rewrite kernel (global
// sort.Slice merge, PR 1). The merge rewrite (per-shard outbox sort +
// sorted-sender concatenation) must reproduce it bit for bit: any
// change to delivery order, loss decisions, OnSend sequence or round
// accounting changes this digest and fails the gate.
const goldenKernelDigest = "e526a9056055173b"

// TestGoldenKernelDigest is the before/after determinism gate for
// kernel refactors, for every worker count.
func TestGoldenKernelDigest(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		if got := runDigest(t, workers); got != goldenKernelDigest {
			t.Errorf("workers=%d: kernel digest = %s, want %s", workers, got, goldenKernelDigest)
		}
	}
}
