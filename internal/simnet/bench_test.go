package simnet

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
)

// benchFanNode sends a fixed fan-out of messages to deterministic
// targets on every tick and counts deliveries. HandleMessage does no
// work of its own, so the benchmark isolates the kernel: shard
// dispatch, loss decisions, outbox buffering, the round merge and the
// queue build.
type benchFanNode struct {
	id     ids.ProcessID
	net    *Network
	peers  []ids.ProcessID
	self   int
	fanout int
	got    int
}

func (n *benchFanNode) ID() ids.ProcessID     { return n.id }
func (n *benchFanNode) HandleMessage(msg any) { n.got++ }

func (n *benchFanNode) Tick() {
	// Stride through the peer list with a prime step so targets spread
	// across every shard without drawing randomness.
	for k := 1; k <= n.fanout; k++ {
		to := n.peers[(n.self+k*7919)%len(n.peers)]
		n.net.Send(n.id, to, k)
	}
}

// buildFanNet assembles n ticking fan-out nodes.
func buildFanNet(tb testing.TB, n, fanout, workers int) *Network {
	tb.Helper()
	net := New(1)
	net.Workers = workers
	net.TickNodes = true
	net.PSucc = 0.98 // exercise the per-sender loss streams
	peers := make([]ids.ProcessID, n)
	for i := range peers {
		peers[i] = ids.ProcessID(fmt.Sprintf("n%05d", i))
	}
	for i, id := range peers {
		if err := net.AddNode(&benchFanNode{
			id: id, net: net, peers: peers, self: i, fanout: fanout,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return net
}

// benchStepMerge measures one kernel round at steady state: every node
// sends `fanout` messages per tick, so each Step delivers ~n*fanout
// envelopes and merges as many pending sends.
func benchStepMerge(b *testing.B, n, fanout, workers int) {
	b.Helper()
	net := buildFanNet(b, n, fanout, workers)
	net.Step() // prime: first round has an empty queue
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Step()
	}
}

func BenchmarkStepMerge1k(b *testing.B)  { benchStepMerge(b, 1000, 4, 0) }
func BenchmarkStepMerge20k(b *testing.B) { benchStepMerge(b, 20000, 4, 0) }
func BenchmarkStepMerge50k(b *testing.B) { benchStepMerge(b, 50000, 4, 0) }

// BenchmarkStepMergeWorkers compares shard counts at 20k nodes; results
// are byte-identical across variants, only wall clock differs.
func BenchmarkStepMergeWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchStepMerge(b, 20000, 4, workers)
		})
	}
}
