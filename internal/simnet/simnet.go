// Package simnet is a deterministic, round-based message-passing
// kernel for protocol simulation. It reproduces the paper's simulator
// semantics (§VII-A): synchronous gossip rounds, unreliable best-effort
// channels (per-message Bernoulli loss with success probability
// psucc), and two failure models —
//
//   - stillborn: a process is failed from the start, for everyone
//     (Figs. 8-10), and
//   - per-observer (weakly consistent): a process can appear failed to
//     one observer while appearing alive to another (Fig. 11); the
//     appearance is fixed per (observer, target) pair for the run.
//
// Messages sent in round r are delivered in round r+1. The kernel is
// single-threaded and fully deterministic given its seed.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"

	"damulticast/internal/ids"
)

// Node is a simulated process: a message-driven state machine.
type Node interface {
	// ID returns the node's identity.
	ID() ids.ProcessID
	// HandleMessage processes one delivered message.
	HandleMessage(msg any)
	// Tick advances the node's logical clock one round.
	Tick()
}

// Envelope is one in-flight message.
type Envelope struct {
	From, To ids.ProcessID
	Msg      any
}

// Errors.
var (
	ErrDuplicateNode = errors.New("simnet: duplicate node id")
	ErrUnknownNode   = errors.New("simnet: unknown node id")
)

// Network is the simulation kernel.
type Network struct {
	rng   *rand.Rand
	nodes map[ids.ProcessID]Node
	order []ids.ProcessID // insertion order, for deterministic iteration

	queue []Envelope // deliveries for the next round
	round int

	// PSucc is the per-message channel success probability (1 = lossless).
	PSucc float64

	// TickNodes controls whether Step ticks every node each round.
	TickNodes bool

	down map[ids.ProcessID]bool

	// pairDown, when non-nil, implements the weakly consistent model:
	// pairDown(observer, target) reports whether target appears failed
	// to observer; such sends are dropped.
	pairDown func(observer, target ids.ProcessID) bool

	// OnSend, when non-nil, observes every send attempt. dropped
	// reports whether the channel lost it (loss, dead target, or
	// per-observer failure appearance). Counting happens here: the
	// paper's message complexity counts events *sent*.
	OnSend func(env Envelope, dropped bool)
}

// New creates a lossless network with the given seed.
func New(seed int64) *Network {
	return &Network{
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[ids.ProcessID]Node),
		down:  make(map[ids.ProcessID]bool),
		PSucc: 1,
	}
}

// Rand exposes the network's deterministic random source. Nodes built
// on the network should draw from it so a run is one random stream.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Round returns the current round number (0 before the first Step).
func (n *Network) Round() int { return n.round }

// AddNode registers a node.
func (n *Network) AddNode(node Node) error {
	id := node.ID()
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	n.nodes[id] = node
	n.order = append(n.order, id)
	return nil
}

// Node returns the registered node, or nil.
func (n *Network) Node(id ids.ProcessID) Node { return n.nodes[id] }

// NodeIDs returns all node ids in insertion order (copy).
func (n *Network) NodeIDs() []ids.ProcessID {
	out := make([]ids.ProcessID, len(n.order))
	copy(out, n.order)
	return out
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.order) }

// Crash marks a node failed for everyone (stillborn when applied
// before the first round). Crashed nodes neither receive nor should
// send; sends they nevertheless attempt are delivered (the kernel does
// not police senders — protocol-level Stop should silence them).
func (n *Network) Crash(id ids.ProcessID) error {
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	n.down[id] = true
	return nil
}

// Recover clears the crashed mark.
func (n *Network) Recover(id ids.ProcessID) { delete(n.down, id) }

// Down reports whether id is crashed.
func (n *Network) Down(id ids.ProcessID) bool { return n.down[id] }

// AliveIDs returns ids of nodes not crashed, in insertion order.
func (n *Network) AliveIDs() []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(n.order))
	for _, id := range n.order {
		if !n.down[id] {
			out = append(out, id)
		}
	}
	return out
}

// SetPairDown installs the weakly consistent failure view (Fig. 11
// model). Pass nil to clear.
func (n *Network) SetPairDown(f func(observer, target ids.ProcessID) bool) {
	n.pairDown = f
}

// Send enqueues a message for delivery next round. Loss is decided at
// send time: the channel may drop it (1-PSucc), the target may be
// crashed, or the target may appear failed to the sender under the
// weakly consistent model. OnSend observes the attempt either way.
func (n *Network) Send(from, to ids.ProcessID, msg any) {
	env := Envelope{From: from, To: to, Msg: msg}
	dropped := false
	switch {
	case n.down[to]:
		dropped = true
	case n.pairDown != nil && n.pairDown(from, to):
		dropped = true
	case n.PSucc < 1 && n.rng.Float64() >= n.PSucc:
		dropped = true
	}
	if n.OnSend != nil {
		n.OnSend(env, dropped)
	}
	if dropped {
		return
	}
	n.queue = append(n.queue, env)
}

// Pending returns the number of messages waiting for the next round.
func (n *Network) Pending() int { return len(n.queue) }

// Step runs one synchronous round: deliver everything queued (sends
// performed during delivery land in the following round), then tick
// nodes if TickNodes is set. It returns the number of messages
// delivered.
func (n *Network) Step() int {
	n.round++
	batch := n.queue
	n.queue = nil
	delivered := 0
	for _, env := range batch {
		node, ok := n.nodes[env.To]
		if !ok || n.down[env.To] {
			continue
		}
		node.HandleMessage(env.Msg)
		delivered++
	}
	if n.TickNodes {
		for _, id := range n.order {
			if !n.down[id] {
				n.nodes[id].Tick()
			}
		}
	}
	return delivered
}

// Run steps until the network quiesces (no pending messages) or
// maxRounds elapse, returning the number of rounds executed. With
// TickNodes set the network may never quiesce (periodic tasks keep
// sending); the bound then decides.
func (n *Network) Run(maxRounds int) int {
	ran := 0
	for ran < maxRounds && len(n.queue) > 0 {
		n.Step()
		ran++
	}
	return ran
}

// PairDownCoin builds a deterministic per-(observer,target) failure
// appearance: each ordered pair independently appears failed with
// probability pFail, fixed for the run. It draws all coins from seed
// up front lazily, caching decisions.
func PairDownCoin(seed int64, pFail float64) func(observer, target ids.ProcessID) bool {
	if pFail <= 0 {
		return func(ids.ProcessID, ids.ProcessID) bool { return false }
	}
	if pFail >= 1 {
		return func(ids.ProcessID, ids.ProcessID) bool { return true }
	}
	type pair struct{ a, b ids.ProcessID }
	cache := make(map[pair]bool)
	rng := rand.New(rand.NewSource(seed))
	return func(observer, target ids.ProcessID) bool {
		p := pair{observer, target}
		if v, ok := cache[p]; ok {
			return v
		}
		v := rng.Float64() < pFail
		cache[p] = v
		return v
	}
}
