// Package simnet is a deterministic, round-based message-passing
// kernel for protocol simulation. It reproduces the paper's simulator
// semantics (§VII-A): synchronous gossip rounds, unreliable best-effort
// channels (per-message Bernoulli loss with success probability
// psucc), and two failure models —
//
//   - stillborn: a process is failed from the start, for everyone
//     (Figs. 8-10), and
//   - per-observer (weakly consistent): a process can appear failed to
//     one observer while appearing alive to another (Fig. 11); the
//     appearance is fixed per (observer, target) pair for the run.
//
// Messages sent in round r are delivered in round r+1.
//
// # Sharded parallel execution
//
// The kernel partitions its nodes into P shards (Workers; default
// GOMAXPROCS) and runs each round's HandleMessage/Tick phase
// concurrently, one goroutine per shard. Determinism is preserved by
// construction, not by locks:
//
//   - every node draws randomness from its own stream, never from a
//     shared source, so the interleaving of shards cannot change what
//     any node observes;
//   - channel-loss coins are drawn from a per-sender stream owned by
//     the kernel, in the sender's deterministic send order;
//   - per-pair failure appearances (SetPairDown) and link filters
//     (SetLinkDown) must be pure functions — PairDownCoin builds one
//     from a stateless hash;
//   - sends buffer into per-sender outboxes during the phase and merge
//     into the next round's queue in a canonical order, sorted by
//     (From, To, Seq), after all shards join. OnSend observers fire
//     serially during the merge, in that same canonical order.
//
// Consequently a run's full observable behavior — deliveries, their
// order, loss decisions, OnSend sequences — is byte-identical for every
// worker count, including Workers=1 (the sequential kernel).
//
// Contract for nodes under parallel execution: HandleMessage and Tick
// may touch only the node's own state, and Send during a phase must
// use the handling node's own id as From. Mutating kernel topology
// (AddNode, Crash, Recover, SetPairDown, SetLinkDown, Workers) is
// legal only between rounds.
package simnet

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"

	"damulticast/internal/ids"
	"damulticast/internal/xrand"
)

// Node is a simulated process: a message-driven state machine.
// Under parallel execution HandleMessage and Tick are invoked from the
// shard goroutine owning the node; they must not touch other nodes'
// state or shared mutable structures.
type Node interface {
	// ID returns the node's identity.
	ID() ids.ProcessID
	// HandleMessage processes one delivered message.
	HandleMessage(msg any)
	// Tick advances the node's logical clock one round.
	Tick()
}

// Envelope is one in-flight message. Seq is the per-sender send
// counter, part of the canonical (From, To, Seq) merge order.
type Envelope struct {
	From, To ids.ProcessID
	Seq      uint64
	Msg      any
}

// Errors.
var (
	ErrDuplicateNode = errors.New("simnet: duplicate node id")
	ErrUnknownNode   = errors.New("simnet: unknown node id")
)

// pendingSend is a buffered send attempt: the loss decision is made at
// send time (from the sender's deterministic streams) and carried to
// the serial merge, where OnSend observes it in canonical order. delay
// is the number of extra rounds (beyond the normal next-round delivery)
// the link keeps the message in flight.
type pendingSend struct {
	env     Envelope
	dropped bool
	delay   int
}

// senderCtx is the kernel's per-sender state: the outbox buffered
// during a parallel phase, the monotonic send counter, and the loss
// stream. Each ctx is only ever touched by the goroutine currently
// running its node (or the serial driver), so no locking is needed.
// The outbox slice is recycled across rounds ([:0] after each merge).
type senderCtx struct {
	id   ids.ProcessID
	out  []pendingSend
	seq  uint64
	loss *rand.Rand
}

// Network is the simulation kernel.
type Network struct {
	seed  int64
	rng   *rand.Rand
	nodes map[ids.ProcessID]Node
	order []ids.ProcessID       // insertion order, for deterministic iteration
	index map[ids.ProcessID]int // id -> insertion index (shard assignment)
	ctx   map[ids.ProcessID]*senderCtx

	queue    []Envelope // deliveries for the next round, canonical order
	round    int
	stepping bool // inside a parallel phase: Sends buffer to outboxes

	// delayed holds messages kept in flight by the link-delay function,
	// keyed by delivery round. Allocated lazily: runs without delays
	// never touch it. Within a bucket, envelopes appear in the order
	// their sends were merged (canonical per round, rounds ascending),
	// and a round delivers its bucket before the regular queue — older
	// sends first.
	delayed map[int][]Envelope

	// senders lists every sender context in ascending id order — the
	// concatenation order of the round merge. sendersDirty marks it
	// stale after new ctxs appear (only legal between rounds); the next
	// Step re-sorts it once instead of paying an ordered insert per add.
	senders      []*senderCtx
	sendersDirty bool

	// Recycled per-Step scratch (the kernel's rounds are allocation-free
	// at steady state): the destination-shard partitions, the per-shard
	// delivery counters, and the spare queue buffer that double-buffers
	// with queue across rounds.
	perShard   [][]Envelope
	delivered  []int
	queueSpare []Envelope

	// PSucc is the per-message channel success probability (1 = lossless).
	PSucc float64

	// TickNodes controls whether Step ticks every node each round.
	TickNodes bool

	// Workers is the shard count P. 0 selects GOMAXPROCS; 1 runs the
	// round phase inline (the sequential kernel). Results are identical
	// for every value.
	Workers int

	down map[ids.ProcessID]bool

	// pairDown, when non-nil, implements the weakly consistent model:
	// pairDown(observer, target) reports whether target appears failed
	// to observer; such sends are dropped. Must be a pure function.
	pairDown func(observer, target ids.ProcessID) bool

	// linkDown, when non-nil, drops sends whose (from, to) link it
	// reports severed — the partition primitive. Must be a pure
	// function.
	linkDown func(from, to ids.ProcessID) bool

	// linkDelay, when non-nil, returns the extra rounds a send spends
	// in flight beyond the normal next-round delivery (straggler
	// links). Must be a pure function of its arguments.
	linkDelay func(from, to ids.ProcessID, seq uint64) int

	// OnSend, when non-nil, observes every send attempt. dropped
	// reports whether the channel lost it (loss, dead target, severed
	// link, or per-observer failure appearance). Counting happens here:
	// the paper's message complexity counts events *sent*. During a
	// parallel phase the callback fires at the serial merge, in
	// canonical (From, To, Seq) order.
	OnSend func(env Envelope, dropped bool)

	// OnRoundEnd, when non-nil, runs serially at the very end of every
	// Step, after all shards joined and outboxes merged. Drivers use it
	// to flush per-node effect buffers in deterministic order.
	OnRoundEnd func(round int)
}

// New creates a lossless network with the given seed.
func New(seed int64) *Network {
	return &Network{
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		nodes: make(map[ids.ProcessID]Node),
		index: make(map[ids.ProcessID]int),
		ctx:   make(map[ids.ProcessID]*senderCtx),
		down:  make(map[ids.ProcessID]bool),
		PSucc: 1,
	}
}

// Rand exposes the network's serial deterministic random source, for
// setup, failure installation and publish-site selection between
// rounds. Nodes must NOT draw from it — give each node its own stream
// (xrand.NewStream) so parallel rounds stay deterministic.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Seed returns the seed the network was created with.
func (n *Network) Seed() int64 { return n.seed }

// Round returns the current round number (0 before the first Step).
func (n *Network) Round() int { return n.round }

// AddNode registers a node.
func (n *Network) AddNode(node Node) error {
	id := node.ID()
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	n.nodes[id] = node
	n.index[id] = len(n.order)
	n.order = append(n.order, id)
	n.newSenderCtx(id)
	return nil
}

// newSenderCtx returns the per-sender state for id, creating and
// registering it on first sight. Reusing an existing ctx matters for
// ids that sent before being registered as nodes (senderCtxFor): their
// Seq counter must keep climbing, never restart — the merge order
// relies on (From, Seq) uniqueness — and n.senders must list each
// sender exactly once.
func (n *Network) newSenderCtx(id ids.ProcessID) *senderCtx {
	if c, ok := n.ctx[id]; ok {
		return c
	}
	c := &senderCtx{id: id, loss: xrand.NewStream(n.seed, "loss:"+string(id))}
	n.ctx[id] = c
	n.senders = append(n.senders, c)
	n.sendersDirty = true
	return c
}

// Node returns the registered node, or nil.
func (n *Network) Node(id ids.ProcessID) Node { return n.nodes[id] }

// NodeIDs returns all node ids in insertion order (copy).
func (n *Network) NodeIDs() []ids.ProcessID {
	out := make([]ids.ProcessID, len(n.order))
	copy(out, n.order)
	return out
}

// Len returns the number of nodes.
func (n *Network) Len() int { return len(n.order) }

// Crash marks a node failed for everyone (stillborn when applied
// before the first round). Crashed nodes neither receive nor should
// send; sends they nevertheless attempt are delivered (the kernel does
// not police senders — protocol-level Stop should silence them).
func (n *Network) Crash(id ids.ProcessID) error {
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	n.down[id] = true
	return nil
}

// Recover clears the crashed mark.
func (n *Network) Recover(id ids.ProcessID) { delete(n.down, id) }

// Down reports whether id is crashed.
func (n *Network) Down(id ids.ProcessID) bool { return n.down[id] }

// AliveIDs returns ids of nodes not crashed, in insertion order.
func (n *Network) AliveIDs() []ids.ProcessID {
	out := make([]ids.ProcessID, 0, len(n.order))
	for _, id := range n.order {
		if !n.down[id] {
			out = append(out, id)
		}
	}
	return out
}

// SetPairDown installs the weakly consistent failure view (Fig. 11
// model). f must be a pure function: it is called concurrently from
// shard goroutines. Pass nil to clear.
func (n *Network) SetPairDown(f func(observer, target ids.ProcessID) bool) {
	n.pairDown = f
}

// SetLinkDown installs a link filter: sends for which f(from, to)
// reports true are dropped (network partitions, correlated link
// failures). f must be a pure function: it is called concurrently from
// shard goroutines. Pass nil to heal.
func (n *Network) SetLinkDown(f func(from, to ids.ProcessID) bool) {
	n.linkDown = f
}

// SetLinkDelay installs a per-send delay function: f(from, to, seq)
// returns how many EXTRA rounds the message stays in flight beyond the
// normal next-round delivery (0 = deliver normally). f must be a pure
// function of its arguments: it is evaluated at send time, possibly on
// a shard goroutine. Pass nil to restore uniform one-round links.
// Delay is only evaluated for sends the channel did not already drop.
func (n *Network) SetLinkDelay(f func(from, to ids.ProcessID, seq uint64) int) {
	n.linkDelay = f
}

// senderCtxFor returns the per-sender context, creating one for
// senders that are not registered nodes (test drivers injecting
// traffic). Unregistered-sender creation is only legal between rounds.
func (n *Network) senderCtxFor(from ids.ProcessID) *senderCtx {
	if c, ok := n.ctx[from]; ok {
		return c
	}
	return n.newSenderCtx(from)
}

// Send enqueues a message for delivery next round. Loss is decided at
// send time: the channel may drop it (1-PSucc, from the sender's loss
// stream), the target may be crashed, the link may be severed, or the
// target may appear failed to the sender under the weakly consistent
// model. OnSend observes the attempt either way.
//
// During a round phase, Send buffers into the sender's outbox and the
// caller must pass the handling node's own id as from. Between rounds,
// Send resolves immediately into the queue.
func (n *Network) Send(from, to ids.ProcessID, msg any) {
	c := n.senderCtxFor(from)
	c.seq++
	env := Envelope{From: from, To: to, Seq: c.seq, Msg: msg}
	dropped := false
	switch {
	case n.down[to]:
		dropped = true
	case n.pairDown != nil && n.pairDown(from, to):
		dropped = true
	case n.linkDown != nil && n.linkDown(from, to):
		dropped = true
	case n.PSucc < 1 && c.loss.Float64() >= n.PSucc:
		dropped = true
	}
	delay := 0
	if !dropped && n.linkDelay != nil {
		if delay = n.linkDelay(from, to, c.seq); delay < 0 {
			delay = 0
		}
	}
	if n.stepping {
		c.out = append(c.out, pendingSend{env: env, dropped: dropped, delay: delay})
		return
	}
	if n.OnSend != nil {
		n.OnSend(env, dropped)
	}
	if dropped {
		return
	}
	if delay > 0 {
		n.holdDelayed(env, delay)
		return
	}
	n.queue = append(n.queue, env)
}

// holdDelayed parks a send in the delayed bucket for its delivery
// round. Only called serially (between rounds, or at the merge).
func (n *Network) holdDelayed(env Envelope, delay int) {
	if n.delayed == nil {
		n.delayed = make(map[int][]Envelope)
	}
	due := n.round + 1 + delay
	n.delayed[due] = append(n.delayed[due], env)
}

// Pending returns the number of messages in flight: next round's queue
// plus any delayed sends still held by straggler links.
func (n *Network) Pending() int {
	p := len(n.queue)
	for _, bucket := range n.delayed {
		p += len(bucket)
	}
	return p
}

// workers returns the effective shard count for the current topology.
func (n *Network) workers() int {
	p := n.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > len(n.order) {
		p = len(n.order)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// shardOf maps a node to its shard by insertion index, in contiguous
// blocks of the given size: shard s owns indexes [s·block, (s+1)·block).
// Contiguous slabs (rather than the round-robin index%p) keep each
// worker's nodes — and everything they point to, allocated in insertion
// order — adjacent in memory, so a shard's round walks a compact slab
// instead of striding the whole heap. Results are invariant either way:
// every node is owned by exactly one shard, and the serial merge
// canonicalizes outbox order.
func shardOf(index, block int) int { return index / block }

// shardBlock returns the slab size for p shards over n nodes (ceiling
// division; the last shard may own a short slab).
func shardBlock(n, p int) int { return (n + p - 1) / p }

// compareOutbox orders one sender's buffered sends by (To, Seq) — the
// canonical order with From fixed. Seq never repeats within a sender,
// so the order is total (no stability requirement on the sort).
func compareOutbox(a, b pendingSend) int {
	if c := strings.Compare(string(a.env.To), string(b.env.To)); c != 0 {
		return c
	}
	return cmp.Compare(a.env.Seq, b.env.Seq)
}

// Step runs one synchronous round: deliver everything queued (sends
// performed during delivery land in the following round), then tick
// nodes if TickNodes is set. The delivery/tick phase runs across
// Workers shards concurrently; each shard then sorts its own nodes'
// outboxes by (To, Seq) while still parallel, and the serial tail
// merely concatenates senders in ascending-From order — reproducing
// the exact canonical (From, To, Seq) order of a global sort without
// one. All round buffers (shard partitions, outboxes, the queue) are
// recycled, so steady-state rounds allocate nothing. It returns the
// number of messages delivered.
func (n *Network) Step() int {
	n.round++
	p := n.workers()
	if n.sendersDirty {
		slices.SortFunc(n.senders, func(a, b *senderCtx) int {
			return strings.Compare(string(a.id), string(b.id))
		})
		n.sendersDirty = false
	}

	// Double-buffer the delivery queue: this round's batch becomes the
	// spare that next round's queue is rebuilt into.
	batch := n.queue
	n.queue = n.queueSpare[:0]

	// Straggler sends whose delay expires this round deliver ahead of
	// the regular queue — they are the older sends. The merged slice
	// replaces batch (and hence the recycled spare); the displaced
	// buffer is simply dropped to the GC, which rounds with stragglers
	// are rare enough to afford.
	if n.delayed != nil {
		if due := n.delayed[n.round]; len(due) > 0 {
			merged := make([]Envelope, 0, len(due)+len(batch))
			merged = append(merged, due...)
			merged = append(merged, batch...)
			batch = merged
		}
		delete(n.delayed, n.round)
	}

	// Partition the batch by destination shard, preserving canonical
	// order within each shard, into the recycled partition buffers.
	if cap(n.perShard) < p {
		n.perShard = make([][]Envelope, p)
	}
	perShard := n.perShard[:p]
	for s := range perShard {
		perShard[s] = perShard[s][:0]
	}
	block := shardBlock(len(n.order), p)
	for _, env := range batch {
		idx, ok := n.index[env.To]
		if !ok {
			continue // unknown target: silently dropped
		}
		s := shardOf(idx, block)
		perShard[s] = append(perShard[s], env)
	}
	n.perShard = perShard
	clear(batch) // drop Msg references: recycled capacity must not pin message graphs
	n.queueSpare = batch[:0]

	if cap(n.delivered) < p {
		n.delivered = make([]int, p)
	}
	delivered := n.delivered[:p]
	for s := range delivered {
		delivered[s] = 0
	}

	n.stepping = true
	runShard := func(s int) {
		lo := s * block
		hi := lo + block
		if hi > len(n.order) {
			hi = len(n.order)
		}
		for _, env := range perShard[s] {
			if n.down[env.To] {
				continue
			}
			n.nodes[env.To].HandleMessage(env.Msg)
			delivered[s]++
		}
		if n.TickNodes {
			for i := lo; i < hi; i++ {
				if id := n.order[i]; !n.down[id] {
					n.nodes[id].Tick()
				}
			}
		}
		// Sort this shard's outboxes while the other shards are still
		// busy: each sender ctx is owned by exactly one shard, so the
		// per-sender sorts need no coordination and the serial merge
		// below degenerates to a concatenation.
		for i := lo; i < hi; i++ {
			if c := n.ctx[n.order[i]]; len(c.out) > 1 {
				slices.SortFunc(c.out, compareOutbox)
			}
		}
	}
	if p == 1 {
		runShard(0)
	} else {
		var wg sync.WaitGroup
		wg.Add(p)
		for s := 0; s < p; s++ {
			go func(s int) {
				defer wg.Done()
				runShard(s)
			}(s)
		}
		wg.Wait()
	}
	n.stepping = false

	// Serial merge: senders in ascending-From order, each outbox
	// already (To, Seq)-sorted. Observers fire in canonical order; the
	// queue is appended in place.
	for _, c := range n.senders {
		if len(c.out) == 0 {
			continue
		}
		for i := range c.out {
			ps := &c.out[i]
			if n.OnSend != nil {
				n.OnSend(ps.env, ps.dropped)
			}
			if ps.dropped {
				continue
			}
			if ps.delay > 0 {
				n.holdDelayed(ps.env, ps.delay)
				continue
			}
			n.queue = append(n.queue, ps.env)
		}
		clear(c.out)
		c.out = c.out[:0]
	}

	// Likewise release this round's delivered envelopes from the shard
	// partitions; the capacity stays for the next round.
	for s := range perShard {
		clear(perShard[s])
		perShard[s] = perShard[s][:0]
	}

	total := 0
	for _, d := range delivered {
		total += d
	}
	if n.OnRoundEnd != nil {
		n.OnRoundEnd(n.round)
	}
	return total
}

// Run steps until the network quiesces (no pending messages, delayed
// ones included) or maxRounds elapse, returning the number of rounds
// executed. With TickNodes set the network may never quiesce (periodic
// tasks keep sending); the bound then decides.
func (n *Network) Run(maxRounds int) int {
	ran := 0
	for ran < maxRounds && n.Pending() > 0 {
		n.Step()
		ran++
	}
	return ran
}

// PairDownCoin builds a deterministic per-(observer,target) failure
// appearance: each ordered pair independently appears failed with
// probability pFail, fixed for the run. The coin is a pure hash of
// (seed, observer, target) — stateless, and therefore safe to call
// concurrently from shard goroutines and independent of evaluation
// order.
func PairDownCoin(seed int64, pFail float64) func(observer, target ids.ProcessID) bool {
	if pFail <= 0 {
		return func(ids.ProcessID, ids.ProcessID) bool { return false }
	}
	if pFail >= 1 {
		return func(ids.ProcessID, ids.ProcessID) bool { return true }
	}
	return func(observer, target ids.ProcessID) bool {
		return xrand.HashCoin(seed, string(observer)+"\x00"+string(target), pFail)
	}
}

// StragglerDelay builds a deterministic link-delay function for
// SetLinkDelay: each send is independently a straggler with probability
// p, in which case it spends between 1 and maxExtra extra rounds in
// flight. Both the coin and the delay magnitude are pure hashes of
// (seed, from, to, seq) — stateless, safe from shard goroutines, and
// independent of evaluation order, so figure runs stay byte-identical
// for every worker count.
func StragglerDelay(seed int64, p float64, maxExtra int) func(from, to ids.ProcessID, seq uint64) int {
	if p <= 0 || maxExtra < 1 {
		return func(ids.ProcessID, ids.ProcessID, uint64) int { return 0 }
	}
	return func(from, to ids.ProcessID, seq uint64) int {
		label := string(from) + "\x00" + string(to) + "\x00" + strconv.FormatUint(seq, 16)
		if !xrand.HashCoin(seed, label, p) {
			return 0
		}
		return 1 + int(xrand.HashUniform(seed+1, label)*float64(maxExtra))
	}
}
