package simnet

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
)

// fixedDelay delays every send by the same number of extra rounds.
func fixedDelay(extra int) func(from, to ids.ProcessID, seq uint64) int {
	return func(ids.ProcessID, ids.ProcessID, uint64) int { return extra }
}

func TestLinkDelayDeliveryRound(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	n.SetLinkDelay(fixedDelay(2))
	n.Send("a", "b", "slow")
	if n.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (delayed counts)", n.Pending())
	}
	// Normal delivery would be round 1; delay 2 pushes it to round 3.
	for round := 1; round <= 2; round++ {
		if got := n.Step(); got != 0 {
			t.Fatalf("round %d delivered %d, want 0", round, got)
		}
	}
	if got := n.Step(); got != 1 {
		t.Fatalf("round 3 delivered %d, want 1", got)
	}
	if len(b.received) != 1 || b.received[0] != "slow" {
		t.Fatalf("received = %v", b.received)
	}
	if n.Pending() != 0 {
		t.Fatalf("Pending = %d after delivery", n.Pending())
	}
}

func TestLinkDelayMidRoundSend(t *testing.T) {
	// A send performed during delivery (round r) with delay d lands in
	// round r+1+d, mirroring the normal r+1 contract.
	n := New(1)
	a := addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	c := addEcho(t, n, "c")
	a.forward = "c" // unused; keep a referenced
	b.forward = "c"
	n.Send("a", "b", "ping")
	n.SetLinkDelay(fixedDelay(1))
	n.Step() // round 1: b receives, forwards to c with delay 1
	if got := n.Step(); got != 0 {
		t.Fatalf("round 2 delivered %d, want 0", got)
	}
	if got := n.Step(); got != 1 {
		t.Fatalf("round 3 delivered %d, want 1", got)
	}
	if len(c.received) != 1 {
		t.Fatalf("c.received = %v", c.received)
	}
}

func TestLinkDelayDroppedSendsNotDelayed(t *testing.T) {
	// Delay is only evaluated for sends the channel kept: a send to a
	// crashed node must not linger in the delayed buckets and keep
	// Run alive.
	n := New(1)
	addEcho(t, n, "a")
	addEcho(t, n, "b")
	if err := n.Crash("b"); err != nil {
		t.Fatal(err)
	}
	n.SetLinkDelay(fixedDelay(5))
	n.Send("a", "b", "void")
	if n.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0 for dropped send", n.Pending())
	}
}

func TestRunDrainsDelayedMessages(t *testing.T) {
	// Run must not stop while messages are still in flight on slow
	// links, even when the regular queue is empty.
	n := New(1)
	addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	n.SetLinkDelay(fixedDelay(3))
	n.Send("a", "b", "late")
	ran := n.Run(100)
	if ran != 4 {
		t.Fatalf("Run executed %d rounds, want 4", ran)
	}
	if len(b.received) != 1 {
		t.Fatalf("received = %v", b.received)
	}
}

func TestLinkDelayOrderingDueBeforeQueue(t *testing.T) {
	// A round's due stragglers deliver before that round's regular
	// queue: they are the older sends.
	n := New(1)
	addEcho(t, n, "a")
	addEcho(t, n, "b")
	c := addEcho(t, n, "c")
	n.SetLinkDelay(func(from, to ids.ProcessID, seq uint64) int {
		if from == "a" {
			return 1
		}
		return 0
	})
	n.Send("a", "c", "old") // due round 2
	n.Step()                // round 1
	n.Send("b", "c", "new") // due round 2
	n.Step()                // round 2: both deliver, old first
	want := []any{"old", "new"}
	if len(c.received) != 2 || c.received[0] != want[0] || c.received[1] != want[1] {
		t.Fatalf("received = %v, want %v", c.received, want)
	}
}

func TestStragglerDelayBounds(t *testing.T) {
	f := StragglerDelay(42, 0.5, 3)
	sawZero, sawDelay := false, false
	for seq := uint64(0); seq < 200; seq++ {
		d := f("a", "b", seq)
		if d < 0 || d > 3 {
			t.Fatalf("delay %d out of [0,3]", d)
		}
		if d == 0 {
			sawZero = true
		} else {
			sawDelay = true
		}
		if d2 := f("a", "b", seq); d2 != d {
			t.Fatalf("StragglerDelay not pure: %d then %d", d, d2)
		}
	}
	if !sawZero || !sawDelay {
		t.Fatalf("degenerate distribution: sawZero=%v sawDelay=%v", sawZero, sawDelay)
	}
	if f := StragglerDelay(42, 0, 3); f("a", "b", 1) != 0 {
		t.Fatal("p=0 must never delay")
	}
	if f := StragglerDelay(42, 1, 0); f("a", "b", 1) != 0 {
		t.Fatal("maxExtra=0 must never delay")
	}
}

// delayFanNode fans a received message to every peer, exercising the
// parallel merge path with delays.
type delayFanNode struct {
	id    ids.ProcessID
	net   *Network
	peers []ids.ProcessID
	got   int
}

func (d *delayFanNode) ID() ids.ProcessID { return d.id }
func (d *delayFanNode) Tick()             {}
func (d *delayFanNode) HandleMessage(msg any) {
	d.got++
	if d.got == 1 {
		for _, p := range d.peers {
			d.net.Send(d.id, p, msg)
		}
	}
}

func TestLinkDelayWorkerCountInvariance(t *testing.T) {
	trace := func(workers int) []string {
		n := New(7)
		n.Workers = workers
		n.PSucc = 0.9
		const pop = 40
		allIDs := make([]ids.ProcessID, pop)
		for i := 0; i < pop; i++ {
			allIDs[i] = ids.ProcessID(fmt.Sprintf("n%03d", i))
		}
		for i, id := range allIDs {
			node := &delayFanNode{id: id, net: n}
			for j, p := range allIDs {
				if j != i {
					node.peers = append(node.peers, p)
				}
			}
			if err := n.AddNode(node); err != nil {
				t.Fatal(err)
			}
		}
		n.SetLinkDelay(StragglerDelay(99, 0.3, 3))
		var log []string
		n.OnSend = func(env Envelope, dropped bool) {
			log = append(log, fmt.Sprintf("%s>%s#%d:%v", env.From, env.To, env.Seq, dropped))
		}
		n.Send(allIDs[0], allIDs[1], "seed")
		n.Run(20)
		return log
	}
	base := trace(1)
	if len(base) == 0 {
		t.Fatal("no sends traced")
	}
	for _, w := range []int{2, 8} {
		got := trace(w)
		if len(got) != len(base) {
			t.Fatalf("workers=%d traced %d sends, want %d", w, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d diverges at %d: %s vs %s", w, i, got[i], base[i])
			}
		}
	}
}
