package simnet

import (
	"fmt"
	"reflect"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/xrand"
)

// chatterNode deterministically gossips: on every message it forwards
// to a few pseudo-random peers drawn from its own stream, recording
// everything it receives in order.
type chatterNode struct {
	id       ids.ProcessID
	net      *Network
	peers    []ids.ProcessID
	rng      interface{ Intn(int) int }
	hops     int
	received []string
	ticks    int
}

func (c *chatterNode) ID() ids.ProcessID { return c.id }
func (c *chatterNode) Tick()             { c.ticks++ }
func (c *chatterNode) HandleMessage(msg any) {
	s := msg.(string)
	c.received = append(c.received, s)
	if c.hops <= 0 {
		return
	}
	c.hops--
	for i := 0; i < 3; i++ {
		to := c.peers[c.rng.Intn(len(c.peers))]
		c.net.Send(c.id, to, s+">"+string(c.id))
	}
}

// buildChatter assembles n chatter nodes with per-node streams.
func buildChatter(t *testing.T, seed int64, n, workers int) (*Network, []*chatterNode) {
	t.Helper()
	net := New(seed)
	net.Workers = workers
	net.PSucc = 0.8
	peers := make([]ids.ProcessID, n)
	for i := range peers {
		peers[i] = ids.ProcessID(fmt.Sprintf("n%03d", i))
	}
	nodes := make([]*chatterNode, n)
	for i, id := range peers {
		nodes[i] = &chatterNode{
			id:    id,
			net:   net,
			peers: peers,
			rng:   xrand.NewStream(seed, "node:"+string(id)),
			hops:  4,
		}
		if err := net.AddNode(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	return net, nodes
}

// traceRun drives a gossip storm and returns every node's full
// delivery log plus the kernel's per-round observable stream.
func traceRun(t *testing.T, seed int64, n, workers int) (logs map[ids.ProcessID][]string, sends []string) {
	t.Helper()
	net, nodes := buildChatter(t, seed, n, workers)
	net.TickNodes = true
	net.OnSend = func(env Envelope, dropped bool) {
		sends = append(sends, fmt.Sprintf("%s->%s#%d:%v:%v", env.From, env.To, env.Seq, env.Msg, dropped))
	}
	for i := 0; i < 5; i++ {
		net.Send(nodes[0].id, nodes[i%n].id, fmt.Sprintf("seed%d", i))
	}
	for r := 0; r < 12; r++ {
		net.Step()
	}
	logs = make(map[ids.ProcessID][]string, n)
	for _, nd := range nodes {
		logs[nd.id] = nd.received
	}
	return logs, sends
}

// TestParallelDeterminism is the kernel's core contract: worker counts
// 1, 2 and 8 produce byte-identical delivery logs AND an identical
// OnSend stream (same envelopes, same order, same drop decisions).
func TestParallelDeterminism(t *testing.T) {
	refLogs, refSends := traceRun(t, 99, 37, 1)
	for _, workers := range []int{2, 8} {
		logs, sends := traceRun(t, 99, 37, workers)
		if !reflect.DeepEqual(refLogs, logs) {
			t.Errorf("workers=%d: delivery logs differ from sequential kernel", workers)
		}
		if !reflect.DeepEqual(refSends, sends) {
			t.Errorf("workers=%d: OnSend stream differs from sequential kernel", workers)
		}
	}
}

// TestParallelDeliversEverything sanity-checks that sharding does not
// lose or duplicate deliveries relative to the sequential kernel.
func TestParallelDeliversEverything(t *testing.T) {
	count := func(workers int) int {
		net, nodes := buildChatter(t, 7, 20, workers)
		net.PSucc = 1
		for i := 0; i < 20; i++ {
			net.Send("ext", nodes[i].id, "boot")
		}
		total := 0
		for r := 0; r < 10; r++ {
			total += net.Step()
		}
		return total
	}
	seq := count(1)
	if seq == 0 {
		t.Fatal("sequential run delivered nothing")
	}
	for _, workers := range []int{2, 4} {
		if got := count(workers); got != seq {
			t.Errorf("workers=%d delivered %d, sequential %d", workers, got, seq)
		}
	}
}

// TestWorkersExceedingNodes clamps gracefully.
func TestWorkersExceedingNodes(t *testing.T) {
	net, nodes := buildChatter(t, 3, 2, 64)
	net.Send(nodes[0].id, nodes[1].id, "x")
	if got := net.Step(); got != 1 {
		t.Errorf("delivered %d", got)
	}
}

// TestLinkDown verifies the partition primitive: severed links drop,
// OnSend observes the drop, and healing restores delivery.
func TestLinkDown(t *testing.T) {
	net := New(1)
	a := &chatterNode{id: "a"}
	b := &chatterNode{id: "b"}
	for _, nd := range []*chatterNode{a, b} {
		if err := net.AddNode(nd); err != nil {
			t.Fatal(err)
		}
	}
	var drops int
	net.OnSend = func(env Envelope, dropped bool) {
		if dropped {
			drops++
		}
	}
	net.SetLinkDown(func(from, to ids.ProcessID) bool { return from == "a" && to == "b" })
	net.Send("a", "b", "blocked")
	net.Send("b", "a", "passes")
	net.Step()
	if len(b.received) != 0 {
		t.Error("partitioned link delivered")
	}
	if len(a.received) != 1 {
		t.Error("reverse direction did not deliver")
	}
	if drops != 1 {
		t.Errorf("drops = %d", drops)
	}
	net.SetLinkDown(nil)
	net.Send("a", "b", "healed")
	net.Step()
	if len(b.received) != 1 {
		t.Error("healed link did not deliver")
	}
}

// TestOnRoundEnd fires serially once per Step with the round number.
func TestOnRoundEnd(t *testing.T) {
	net := New(1)
	var rounds []int
	net.OnRoundEnd = func(r int) { rounds = append(rounds, r) }
	net.Step()
	net.Step()
	if !reflect.DeepEqual(rounds, []int{1, 2}) {
		t.Errorf("rounds = %v", rounds)
	}
}

// TestCanonicalMergeOrder: sends buffered during a phase surface to
// OnSend sorted by (From, To, Seq) regardless of handling order.
func TestCanonicalMergeOrder(t *testing.T) {
	net := New(5)
	net.Workers = 4
	mk := func(id ids.ProcessID, targets []ids.ProcessID) {
		nd := &fanNode{id: id, net: net, targets: targets}
		if err := net.AddNode(nd); err != nil {
			t.Fatal(err)
		}
	}
	mk("z", []ids.ProcessID{"w", "x"})
	mk("y", []ids.ProcessID{"z", "w"})
	mk("x", nil)
	mk("w", nil)
	net.Send("ext", "z", "go")
	net.Send("ext", "y", "go")
	var order []string
	net.OnSend = func(env Envelope, dropped bool) {
		order = append(order, fmt.Sprintf("%s->%s", env.From, env.To))
	}
	net.Step()
	want := []string{"y->w", "y->z", "z->w", "z->x"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("merge order = %v, want %v", order, want)
	}
}

// fanNode forwards each message to a fixed target list.
type fanNode struct {
	id      ids.ProcessID
	net     *Network
	targets []ids.ProcessID
}

func (f *fanNode) ID() ids.ProcessID { return f.id }
func (f *fanNode) Tick()             {}
func (f *fanNode) HandleMessage(msg any) {
	for _, to := range f.targets {
		f.net.Send(f.id, to, msg)
	}
}
