package simnet

import (
	"errors"
	"math"
	"testing"

	"damulticast/internal/ids"
)

// echoNode counts received messages and optionally forwards once.
type echoNode struct {
	id       ids.ProcessID
	net      *Network
	received []any
	forward  ids.ProcessID // if set, forward each message here once
	ticks    int
}

func (e *echoNode) ID() ids.ProcessID { return e.id }
func (e *echoNode) Tick()             { e.ticks++ }
func (e *echoNode) HandleMessage(msg any) {
	e.received = append(e.received, msg)
	if e.forward != "" {
		to := e.forward
		e.forward = ""
		e.net.Send(e.id, to, msg)
	}
}

func addEcho(t *testing.T, n *Network, id ids.ProcessID) *echoNode {
	t.Helper()
	e := &echoNode{id: id, net: n}
	if err := n.AddNode(e); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestAddNodeDuplicate(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	err := n.AddNode(&echoNode{id: "a"})
	if !errors.Is(err, ErrDuplicateNode) {
		t.Errorf("err = %v", err)
	}
}

func TestSendDeliverNextRound(t *testing.T) {
	n := New(1)
	a := addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	n.Send("a", "b", "hello")
	if len(b.received) != 0 {
		t.Fatal("delivered before Step")
	}
	if n.Pending() != 1 {
		t.Fatalf("Pending = %d", n.Pending())
	}
	if got := n.Step(); got != 1 {
		t.Fatalf("Step delivered %d", got)
	}
	if len(b.received) != 1 || b.received[0] != "hello" {
		t.Fatalf("b.received = %v", b.received)
	}
	if len(a.received) != 0 {
		t.Error("sender received its own message")
	}
	if n.Round() != 1 {
		t.Errorf("Round = %d", n.Round())
	}
}

func TestSendsDuringDeliveryLandNextRound(t *testing.T) {
	n := New(1)
	a := addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	c := addEcho(t, n, "c")
	_ = a
	b.forward = "c"
	n.Send("a", "b", "x")
	n.Step()
	if len(c.received) != 0 {
		t.Fatal("forward delivered same round")
	}
	n.Step()
	if len(c.received) != 1 {
		t.Fatal("forward not delivered next round")
	}
}

func TestRunQuiesces(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	b.forward = "a"
	n.Send("a", "b", "x")
	rounds := n.Run(100)
	if rounds != 2 {
		t.Errorf("rounds = %d, want 2", rounds)
	}
	if n.Pending() != 0 {
		t.Error("pending after Run")
	}
}

func TestCrashBlocksDelivery(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	if err := n.Crash("b"); err != nil {
		t.Fatal(err)
	}
	if !n.Down("b") {
		t.Error("Down = false")
	}
	n.Send("a", "b", "x")
	n.Step()
	if len(b.received) != 0 {
		t.Error("crashed node received")
	}
	n.Recover("b")
	n.Send("a", "b", "y")
	n.Step()
	if len(b.received) != 1 {
		t.Error("recovered node did not receive")
	}
	if err := n.Crash("zzz"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("Crash(unknown) = %v", err)
	}
}

func TestAliveIDs(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	addEcho(t, n, "b")
	addEcho(t, n, "c")
	_ = n.Crash("b")
	alive := n.AliveIDs()
	if len(alive) != 2 || alive[0] != "a" || alive[1] != "c" {
		t.Errorf("AliveIDs = %v", alive)
	}
	if n.Len() != 3 {
		t.Errorf("Len = %d", n.Len())
	}
	idsAll := n.NodeIDs()
	if len(idsAll) != 3 || idsAll[1] != "b" {
		t.Errorf("NodeIDs = %v", idsAll)
	}
}

func TestLossRate(t *testing.T) {
	n := New(42)
	addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	n.PSucc = 0.85
	const total = 20000
	for i := 0; i < total; i++ {
		n.Send("a", "b", i)
	}
	n.Step()
	got := float64(len(b.received)) / total
	if math.Abs(got-0.85) > 0.01 {
		t.Errorf("delivery rate = %.4f, want ~0.85", got)
	}
}

func TestOnSendObservesDrops(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	addEcho(t, n, "b")
	_ = n.Crash("b")
	var attempts, drops int
	n.OnSend = func(env Envelope, dropped bool) {
		attempts++
		if dropped {
			drops++
		}
	}
	n.Send("a", "b", "x") // dead target: dropped
	if attempts != 1 || drops != 1 {
		t.Errorf("attempts=%d drops=%d", attempts, drops)
	}
}

func TestPairDown(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	c := addEcho(t, n, "c")
	// b appears failed to a, but not to c.
	n.SetPairDown(func(obs, tgt ids.ProcessID) bool {
		return obs == "a" && tgt == "b"
	})
	n.Send("a", "b", "x")
	n.Send("c", "b", "y")
	n.Step()
	if len(b.received) != 1 || b.received[0] != "y" {
		t.Errorf("b.received = %v", b.received)
	}
	_ = c
	n.SetPairDown(nil)
	n.Send("a", "b", "z")
	n.Step()
	if len(b.received) != 2 {
		t.Error("clearing pairDown did not restore delivery")
	}
}

func TestPairDownCoin(t *testing.T) {
	coin := PairDownCoin(7, 0.5)
	// Deterministic: same pair always same answer.
	first := coin("a", "b")
	for i := 0; i < 10; i++ {
		if coin("a", "b") != first {
			t.Fatal("coin not stable for a pair")
		}
	}
	// Roughly half of many pairs are down.
	down := 0
	const total = 10000
	for i := 0; i < total; i++ {
		if coin(ids.ProcessID(rune(i)), ids.ProcessID(rune(i+total))) {
			down++
		}
	}
	frac := float64(down) / total
	if math.Abs(frac-0.5) > 0.03 {
		t.Errorf("down fraction = %.3f", frac)
	}
	// Extremes allocate no cache.
	never := PairDownCoin(7, 0)
	if never("a", "b") {
		t.Error("pFail=0 coin returned true")
	}
	always := PairDownCoin(7, 1)
	if !always("a", "b") {
		t.Error("pFail=1 coin returned false")
	}
}

func TestTickNodes(t *testing.T) {
	n := New(1)
	a := addEcho(t, n, "a")
	b := addEcho(t, n, "b")
	_ = n.Crash("b")
	n.TickNodes = true
	n.Send("a", "a", "keepalive") // to self; fine, kernel permits
	n.Step()
	n.Step()
	if a.ticks != 2 {
		t.Errorf("a.ticks = %d", a.ticks)
	}
	if b.ticks != 0 {
		t.Errorf("crashed node ticked %d times", b.ticks)
	}
}

func TestSendToUnknownNodeIsDropped(t *testing.T) {
	n := New(1)
	addEcho(t, n, "a")
	n.Send("a", "ghost", "x")
	if got := n.Step(); got != 0 {
		t.Errorf("delivered %d to ghost", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []any {
		n := New(99)
		n.PSucc = 0.5
		addEcho(t, n, "a")
		b := addEcho(t, n, "b")
		for i := 0; i < 100; i++ {
			n.Send("a", "b", i)
		}
		n.Step()
		return b.received
	}
	r1, r2 := run(), run()
	if len(r1) != len(r2) {
		t.Fatalf("non-deterministic: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("non-deterministic delivery order")
		}
	}
}
