// Package membership implements the gossip-based "flat" membership
// substrate daMulticast builds on (paper reference [10]: Kermarrec,
// Massoulié, Ganesh — "Probabilistic Reliable Dissemination in
// Large-Scale Systems", IEEE TPDS 2003).
//
// Every process keeps a *partial view* of its group: a uniform random
// sample of the group's members of size (b+1)·ln(S). Views are kept
// fresh by periodic shuffle exchanges with random partners and by
// age-based eviction, so failed processes eventually disappear and the
// sample stays uniform. daMulticast instantiates one such view per
// process as its "topic table" (Table_l^Ti in the paper), and a second,
// constant-size view as its "supertopic table" (sTable_l^Ti).
package membership

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"damulticast/internal/ids"
	"damulticast/internal/xrand"
)

// Entry is one view slot: a process id plus a freshness age. Age 0 is
// freshest; ages grow on every maintenance tick and entries with the
// highest age are evicted first when the view overflows.
type Entry struct {
	ID  ids.ProcessID
	Age int
}

// View is a bounded partial view over a group's members.
//
// View is not goroutine-safe: each protocol process owns its views and
// drives them from a single goroutine (or the single-threaded
// simulator).
type View struct {
	capacity int
	entries  []Entry
	index    map[ids.ProcessID]int // id -> position in entries
	self     ids.ProcessID         // never admitted into the view
}

// NewView creates a view with the given capacity that will refuse to
// contain self (a process never gossips to itself). capacity < 1 is
// raised to 1.
func NewView(self ids.ProcessID, capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{
		capacity: capacity,
		index:    make(map[ids.ProcessID]int, capacity),
		self:     self,
	}
}

// Cap returns the view capacity.
func (v *View) Cap() int { return v.capacity }

// SetCap resizes the view, evicting oldest entries if shrinking.
func (v *View) SetCap(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	v.capacity = capacity
	for len(v.entries) > v.capacity {
		v.evictOldest()
	}
}

// Len returns the number of entries currently held.
func (v *View) Len() int { return len(v.entries) }

// Contains reports whether id is in the view.
func (v *View) Contains(id ids.ProcessID) bool {
	_, ok := v.index[id]
	return ok
}

// Add inserts id with age 0, or refreshes its age to 0 if present.
// The self id is silently ignored. If the view is full, the oldest
// entry is evicted. Add reports whether the id is present afterwards.
func (v *View) Add(id ids.ProcessID) bool {
	return v.AddAged(id, 0)
}

// AddAged inserts id with an explicit age (used when merging views
// received from peers, which carry their own ages). If the id is
// already present the smaller age wins. Returns false only for self.
func (v *View) AddAged(id ids.ProcessID, age int) bool {
	if id == v.self || id == "" {
		return false
	}
	if pos, ok := v.index[id]; ok {
		if age < v.entries[pos].Age {
			v.entries[pos].Age = age
		}
		return true
	}
	if len(v.entries) >= v.capacity {
		v.evictOldest()
	}
	v.index[id] = len(v.entries)
	v.entries = append(v.entries, Entry{ID: id, Age: age})
	return true
}

// evictOldest removes the entry with the maximal age (ties broken by
// position, i.e. insertion order).
func (v *View) evictOldest() {
	if len(v.entries) == 0 {
		return
	}
	worst := 0
	for i, e := range v.entries {
		if e.Age > v.entries[worst].Age {
			worst = i
		}
	}
	v.removeAt(worst)
}

// Remove deletes id from the view if present, reporting whether it was.
func (v *View) Remove(id ids.ProcessID) bool {
	pos, ok := v.index[id]
	if !ok {
		return false
	}
	v.removeAt(pos)
	return true
}

func (v *View) removeAt(pos int) {
	id := v.entries[pos].ID
	last := len(v.entries) - 1
	if pos != last {
		v.entries[pos] = v.entries[last]
		v.index[v.entries[pos].ID] = pos
	}
	v.entries = v.entries[:last]
	delete(v.index, id)
}

// IDs returns a fresh slice of the member ids (unspecified order).
func (v *View) IDs() []ids.ProcessID {
	out := make([]ids.ProcessID, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.ID
	}
	return out
}

// SortedIDs returns the member ids sorted (for deterministic tests).
func (v *View) SortedIDs() []ids.ProcessID {
	return ids.SortProcessIDs(v.IDs())
}

// Entries returns a copy of the entries with their ages.
func (v *View) Entries() []Entry {
	out := make([]Entry, len(v.entries))
	copy(out, v.entries)
	return out
}

// Sample returns min(k, Len) distinct random members.
func (v *View) Sample(r *rand.Rand, k int) []ids.ProcessID {
	return xrand.SampleIDs(r, v.IDs(), k)
}

// SampleExcluding samples k members not present in exclude.
func (v *View) SampleExcluding(r *rand.Rand, k int, exclude map[ids.ProcessID]struct{}) []ids.ProcessID {
	return xrand.SampleExcluding(r, v.IDs(), k, exclude)
}

// Pick returns one random member, or false if the view is empty.
func (v *View) Pick(r *rand.Rand) (ids.ProcessID, bool) {
	return xrand.Pick(r, v.IDs())
}

// AgeAll increments every entry's age by one. Called once per
// maintenance tick.
func (v *View) AgeAll() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// EvictOlderThan removes all entries with age > maxAge and returns the
// removed ids. This is the failure-suspicion mechanism: an entry whose
// age was never refreshed by gossip within maxAge ticks is presumed
// failed (detection "via timeouts", paper footnote 7).
func (v *View) EvictOlderThan(maxAge int) []ids.ProcessID {
	var removed []ids.ProcessID
	for i := 0; i < len(v.entries); {
		if v.entries[i].Age > maxAge {
			removed = append(removed, v.entries[i].ID)
			v.removeAt(i)
			continue
		}
		i++
	}
	return removed
}

// Merge folds the peer entries into the view, keeping the freshest age
// per id and evicting oldest entries beyond capacity. This is the
// paper's MERGE: "keep the favorite superprocesses ... and replace the
// failed ones with the fresh ones" — concretely, fresher entries
// displace staler ones.
func (v *View) Merge(peer []Entry) {
	for _, e := range peer {
		v.AddAged(e.ID, e.Age)
	}
}

// MergeIDs folds bare ids (age 0, i.e. maximally fresh) into the view.
func (v *View) MergeIDs(peer []ids.ProcessID) {
	for _, id := range peer {
		v.AddAged(id, 0)
	}
}

// Clone returns a deep copy with the same capacity and self.
func (v *View) Clone() *View {
	c := NewView(v.self, v.capacity)
	for _, e := range v.entries {
		c.AddAged(e.ID, e.Age)
	}
	return c
}

// String renders the view as "{id:age, ...}" sorted by id.
func (v *View) String() string {
	es := v.Entries()
	sort.Slice(es, func(i, j int) bool { return es[i].ID < es[j].ID })
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range es {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", e.ID, e.Age)
	}
	b.WriteByte('}')
	return b.String()
}
