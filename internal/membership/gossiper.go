package membership

import (
	"math/rand"

	"damulticast/internal/ids"
)

// Digest is the payload of one membership shuffle: a sample of the
// sender's view (with ages) plus the sender itself at age 0. Receivers
// merge the digest; the initiator merges the reply. Shuffles keep each
// view a fresh, near-uniform sample of the live group (cf. [10]).
type Digest struct {
	From    ids.ProcessID
	Entries []Entry
}

// Gossiper drives shuffle exchanges for one view. It is a pure state
// machine: methods build or consume digests; the owner sends/receives
// them over whatever channel it has.
type Gossiper struct {
	self ids.ProcessID
	view *View
	// Fanout is how many view entries each digest carries. 0 means
	// "half the view", the classic shuffle size.
	Fanout int
}

// NewGossiper wraps view for shuffling on behalf of self.
func NewGossiper(self ids.ProcessID, view *View) *Gossiper {
	return &Gossiper{self: self, view: view}
}

// View returns the underlying view.
func (g *Gossiper) View() *View { return g.view }

func (g *Gossiper) digestSize() int {
	if g.Fanout > 0 {
		return g.Fanout
	}
	n := g.view.Len() / 2
	if n < 1 {
		n = 1
	}
	return n
}

// InitiateShuffle picks a random partner and builds the digest to send
// it. Returns false if the view is empty.
func (g *Gossiper) InitiateShuffle(r *rand.Rand) (partner ids.ProcessID, d Digest, ok bool) {
	partner, ok = g.view.Pick(r)
	if !ok {
		return "", Digest{}, false
	}
	return partner, g.BuildDigest(r), true
}

// BuildDigest samples the view and prepends the sender at age 0.
func (g *Gossiper) BuildDigest(r *rand.Rand) Digest {
	sample := g.view.Sample(r, g.digestSize())
	entries := make([]Entry, 0, len(sample)+1)
	entries = append(entries, Entry{ID: g.self, Age: 0})
	all := g.view.Entries()
	byID := make(map[ids.ProcessID]int, len(all))
	for _, e := range all {
		byID[e.ID] = e.Age
	}
	for _, id := range sample {
		entries = append(entries, Entry{ID: id, Age: byID[id]})
	}
	return Digest{From: g.self, Entries: entries}
}

// OnDigest merges a received digest and returns the reply digest the
// receiver should send back (pull half of push-pull).
func (g *Gossiper) OnDigest(r *rand.Rand, d Digest) Digest {
	reply := g.BuildDigest(r)
	g.view.Merge(d.Entries)
	g.view.Add(d.From)
	return reply
}

// OnReply merges the reply to a shuffle this gossiper initiated.
func (g *Gossiper) OnReply(d Digest) {
	g.view.Merge(d.Entries)
	g.view.Add(d.From)
}

// Tick performs one maintenance step: ages all entries and evicts those
// older than maxAge, returning the suspected-failed ids.
func (g *Gossiper) Tick(maxAge int) []ids.ProcessID {
	g.view.AgeAll()
	if maxAge <= 0 {
		return nil
	}
	return g.view.EvictOlderThan(maxAge)
}
