package membership

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"damulticast/internal/ids"
)

func TestNewViewClampsCap(t *testing.T) {
	v := NewView("self", 0)
	if v.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", v.Cap())
	}
	v = NewView("self", -4)
	if v.Cap() != 1 {
		t.Errorf("Cap = %d, want 1", v.Cap())
	}
}

func TestAddRefusesSelfAndEmpty(t *testing.T) {
	v := NewView("me", 4)
	if v.Add("me") {
		t.Error("view admitted self")
	}
	if v.Add("") {
		t.Error("view admitted empty id")
	}
	if v.Len() != 0 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestAddAndContains(t *testing.T) {
	v := NewView("me", 4)
	if !v.Add("a") {
		t.Error("Add(a) = false")
	}
	if !v.Contains("a") {
		t.Error("Contains(a) = false")
	}
	if v.Contains("b") {
		t.Error("Contains(b) = true")
	}
	// Re-adding refreshes age.
	v.AgeAll()
	v.Add("a")
	if es := v.Entries(); es[0].Age != 0 {
		t.Errorf("age after refresh = %d", es[0].Age)
	}
}

func TestAddAgedKeepsFresher(t *testing.T) {
	v := NewView("me", 4)
	v.AddAged("a", 5)
	v.AddAged("a", 2)
	if es := v.Entries(); es[0].Age != 2 {
		t.Errorf("age = %d, want 2", es[0].Age)
	}
	// A staler report never overrides a fresher one.
	v.AddAged("a", 9)
	if es := v.Entries(); es[0].Age != 2 {
		t.Errorf("age = %d, want 2", es[0].Age)
	}
}

func TestEvictionPrefersOldest(t *testing.T) {
	v := NewView("me", 3)
	v.AddAged("a", 0)
	v.AddAged("b", 7)
	v.AddAged("c", 3)
	v.AddAged("d", 1) // overflows; "b" (age 7) must go
	if v.Contains("b") {
		t.Error("oldest entry not evicted")
	}
	for _, id := range []ids.ProcessID{"a", "c", "d"} {
		if !v.Contains(id) {
			t.Errorf("%s missing", id)
		}
	}
}

func TestRemove(t *testing.T) {
	v := NewView("me", 4)
	v.Add("a")
	v.Add("b")
	if !v.Remove("a") {
		t.Error("Remove(a) = false")
	}
	if v.Remove("zz") {
		t.Error("Remove(zz) = true")
	}
	if v.Contains("a") || !v.Contains("b") {
		t.Error("wrong entry removed")
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestSetCapShrinks(t *testing.T) {
	v := NewView("me", 5)
	v.AddAged("a", 0)
	v.AddAged("b", 9)
	v.AddAged("c", 4)
	v.SetCap(1)
	if v.Len() != 1 {
		t.Fatalf("Len = %d", v.Len())
	}
	if !v.Contains("a") {
		t.Error("freshest entry should survive shrink")
	}
	v.SetCap(0)
	if v.Cap() != 1 {
		t.Errorf("Cap = %d", v.Cap())
	}
}

func TestIDsAndSorted(t *testing.T) {
	v := NewView("me", 4)
	v.Add("c")
	v.Add("a")
	v.Add("b")
	got := v.SortedIDs()
	want := []ids.ProcessID{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortedIDs = %v", got)
	}
	// IDs returns a copy: mutating it must not affect the view.
	idsCopy := v.IDs()
	idsCopy[0] = "zzz"
	if v.Contains("zzz") {
		t.Error("IDs returned internal storage")
	}
}

func TestAgeAllAndEvictOlderThan(t *testing.T) {
	v := NewView("me", 8)
	v.Add("a")
	v.Add("b")
	v.AgeAll()
	v.Add("c") // fresh
	v.AgeAll()
	// ages: a=2, b=2, c=1
	removed := v.EvictOlderThan(1)
	if len(removed) != 2 {
		t.Fatalf("removed = %v", removed)
	}
	if !v.Contains("c") || v.Len() != 1 {
		t.Errorf("view after eviction: %s", v)
	}
}

func TestMergeRespectsCapacity(t *testing.T) {
	v := NewView("me", 3)
	v.Merge([]Entry{{"a", 0}, {"b", 1}, {"c", 2}, {"d", 3}, {"me", 0}})
	if v.Len() != 3 {
		t.Errorf("Len = %d", v.Len())
	}
	if v.Contains("me") {
		t.Error("merge admitted self")
	}
}

func TestClone(t *testing.T) {
	v := NewView("me", 4)
	v.AddAged("a", 2)
	c := v.Clone()
	c.Add("b")
	if v.Contains("b") {
		t.Error("clone shares state with original")
	}
	if !c.Contains("a") {
		t.Error("clone missing entry")
	}
	if es := c.Entries(); es[0].Age != 2 {
		t.Errorf("clone lost age: %d", es[0].Age)
	}
}

func TestString(t *testing.T) {
	v := NewView("me", 4)
	v.AddAged("b", 1)
	v.AddAged("a", 0)
	if got := v.String(); got != "{a:0, b:1}" {
		t.Errorf("String = %q", got)
	}
}

func TestSampleAndPick(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	v := NewView("me", 10)
	for _, id := range []ids.ProcessID{"a", "b", "c", "d", "e"} {
		v.Add(id)
	}
	s := v.Sample(r, 3)
	if len(s) != 3 {
		t.Errorf("Sample len = %d", len(s))
	}
	excl := map[ids.ProcessID]struct{}{"a": {}, "b": {}, "c": {}}
	s = v.SampleExcluding(r, 5, excl)
	if len(s) != 2 {
		t.Errorf("SampleExcluding len = %d", len(s))
	}
	if _, ok := v.Pick(r); !ok {
		t.Error("Pick failed on non-empty view")
	}
	empty := NewView("me", 2)
	if _, ok := empty.Pick(r); ok {
		t.Error("Pick succeeded on empty view")
	}
}

// Property: Len never exceeds Cap regardless of operation sequence.
func TestPropViewBounded(t *testing.T) {
	prop := func(seed int64, ops []uint8) bool {
		r := rand.New(rand.NewSource(seed))
		v := NewView("self", 1+int(uint(seed)%7))
		for _, op := range ops {
			id := ids.ProcessID(string(rune('a' + int(op)%10)))
			switch op % 4 {
			case 0, 1:
				v.AddAged(id, int(op)%5)
			case 2:
				v.Remove(id)
			case 3:
				v.AgeAll()
				v.EvictOlderThan(3)
			}
			if v.Len() > v.Cap() {
				return false
			}
			if v.Contains("self") {
				return false
			}
			_ = r
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: index stays consistent with entries after arbitrary ops
// (every id in IDs() is Contains(), and Len matches).
func TestPropIndexConsistent(t *testing.T) {
	prop := func(ops []uint8) bool {
		v := NewView("self", 5)
		for _, op := range ops {
			id := ids.ProcessID(string(rune('a' + int(op)%8)))
			if op%3 == 0 {
				v.Remove(id)
			} else {
				v.AddAged(id, int(op)%4)
			}
		}
		seen := 0
		for _, id := range v.IDs() {
			if !v.Contains(id) {
				return false
			}
			seen++
		}
		return seen == v.Len()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
