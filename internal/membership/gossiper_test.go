package membership

import (
	"math/rand"
	"testing"

	"damulticast/internal/ids"
)

func TestGossiperInitiateEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := NewGossiper("me", NewView("me", 4))
	if _, _, ok := g.InitiateShuffle(r); ok {
		t.Error("InitiateShuffle succeeded with empty view")
	}
}

func TestGossiperDigestIncludesSelf(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := NewView("me", 8)
	v.Add("a")
	v.Add("b")
	g := NewGossiper("me", v)
	d := g.BuildDigest(r)
	if d.From != "me" {
		t.Errorf("From = %s", d.From)
	}
	if len(d.Entries) == 0 || d.Entries[0].ID != "me" || d.Entries[0].Age != 0 {
		t.Errorf("digest does not lead with fresh self: %+v", d.Entries)
	}
}

func TestGossiperFanoutOverride(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	v := NewView("me", 16)
	for i := 0; i < 10; i++ {
		v.Add(ids.ProcessID(rune('a' + i)))
	}
	g := NewGossiper("me", v)
	g.Fanout = 2
	d := g.BuildDigest(r)
	if len(d.Entries) != 3 { // self + 2
		t.Errorf("entries = %d, want 3", len(d.Entries))
	}
	g.Fanout = 0 // half the view
	d = g.BuildDigest(r)
	if len(d.Entries) != 6 { // self + 5
		t.Errorf("entries = %d, want 6", len(d.Entries))
	}
}

func TestShuffleExchangeMergesBothSides(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	va := NewView("a", 8)
	vb := NewView("b", 8)
	va.Add("b")
	va.Add("x")
	vb.Add("y")
	ga := NewGossiper("a", va)
	gb := NewGossiper("b", vb)

	partner, digest, ok := ga.InitiateShuffle(r)
	if !ok {
		t.Fatal("InitiateShuffle failed")
	}
	_ = partner
	reply := gb.OnDigest(r, digest)
	ga.OnReply(reply)

	// b must now know a (digest carried self) and likely x.
	if !vb.Contains("a") {
		t.Error("receiver did not learn initiator")
	}
	// a must know b and y (reply carried b's view sample + self).
	if !va.Contains("b") {
		t.Error("initiator lost partner")
	}
	if !va.Contains("y") {
		t.Error("initiator did not learn receiver's entries")
	}
}

func TestGossiperTick(t *testing.T) {
	v := NewView("me", 8)
	v.Add("a")
	g := NewGossiper("me", v)
	if removed := g.Tick(5); removed != nil {
		t.Errorf("premature eviction: %v", removed)
	}
	for i := 0; i < 4; i++ {
		g.Tick(5)
	}
	// Age of "a" is now 6 > 5; next tick evicts.
	if !v.Contains("a") {
		t.Fatal("evicted too early")
	}
	removed := g.Tick(5)
	if len(removed) != 1 || removed[0] != "a" {
		t.Errorf("removed = %v", removed)
	}
	// maxAge <= 0 disables eviction.
	v.Add("b")
	for i := 0; i < 50; i++ {
		if rm := g.Tick(0); rm != nil {
			t.Fatalf("eviction with maxAge=0: %v", rm)
		}
	}
}

// Simulate a small group shuffling for a while: every process should
// end with a full view containing only real members, and knowledge
// should spread from a single seed.
func TestShuffleConvergence(t *testing.T) {
	const n = 30
	r := rand.New(rand.NewSource(9))
	members := make([]ids.ProcessID, n)
	gossipers := make(map[ids.ProcessID]*Gossiper, n)
	for i := 0; i < n; i++ {
		id := ids.ProcessID(rune('A' + i))
		members[i] = id
	}
	for i, id := range members {
		v := NewView(id, 8)
		// Ring seeding: each knows only its successor.
		v.Add(members[(i+1)%n])
		gossipers[id] = NewGossiper(id, v)
	}
	for round := 0; round < 50; round++ {
		for _, id := range members {
			g := gossipers[id]
			partner, d, ok := g.InitiateShuffle(r)
			if !ok {
				continue
			}
			reply := gossipers[partner].OnDigest(r, d)
			g.OnReply(reply)
		}
	}
	for _, id := range members {
		v := gossipers[id].View()
		if v.Len() < v.Cap() {
			t.Errorf("%s view underfull: %d/%d", id, v.Len(), v.Cap())
		}
		for _, m := range v.IDs() {
			if m == id {
				t.Errorf("%s contains itself", id)
			}
		}
	}
}

func BenchmarkShuffle(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	va := NewView("a", 28)
	vb := NewView("b", 28)
	for i := 0; i < 28; i++ {
		va.Add(ids.ProcessID(rune('c' + i)))
		vb.Add(ids.ProcessID(rune('C' + i)))
	}
	ga := NewGossiper("a", va)
	gb := NewGossiper("b", vb)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, d, _ := ga.InitiateShuffle(r)
		reply := gb.OnDigest(r, d)
		ga.OnReply(reply)
	}
}
