package baseline

import (
	"errors"
	"fmt"

	"damulticast/internal/ids"
	"damulticast/internal/simnet"
	"damulticast/internal/xrand"
)

// ScheduleKind identifies a mid-run fault injected into a baseline
// run. The kinds mirror internal/sim's scenario events so head-to-head
// figures can subject da-multicast and the baselines to the same
// adversity.
type ScheduleKind int

const (
	// ScheduleCrash kills Fraction of the currently-alive processes.
	ScheduleCrash ScheduleKind = iota + 1
	// ScheduleRestart revives Fraction of the currently-down processes.
	// Like the sim scenario runner's flash crowd, the process model's
	// state survives the outage — but a restartee that had not yet seen
	// the event stays without it: the one-shot epidemic is long gone
	// and baselines have no recovery plane to win it back.
	ScheduleRestart
	// SchedulePartition splits the population into Cells cells and
	// severs every inter-cell link. Cell assignment uses the same hash
	// as the sim scenario runner, so paired runs partition identically.
	SchedulePartition
	// ScheduleHeal removes the partition.
	ScheduleHeal
	// ScheduleLossBurst drops channel success to PSucc.
	ScheduleLossBurst
	// ScheduleLossRestore returns channel success to the configured
	// baseline PSucc.
	ScheduleLossRestore
	// ScheduleStragglers makes Fraction of sends spend 1..Delay extra
	// rounds in flight (Fraction <= 0 clears). Pure-hash decisions keep
	// worker invariance.
	ScheduleStragglers
)

// ErrBadSchedule reports an invalid schedule event.
var ErrBadSchedule = errors.New("baseline: invalid schedule event")

// ScheduleEvent is one fault application at the end of round Round
// (round 0 applies before the initial publish fanout).
type ScheduleEvent struct {
	Round int
	Kind  ScheduleKind
	// Fraction of processes (Crash/Restart) or sends (Stragglers).
	Fraction float64
	// Cells for Partition (>= 2).
	Cells int
	// PSucc for LossBurst.
	PSucc float64
	// Delay is the maximum extra rounds for Stragglers (>= 1 when
	// Fraction > 0).
	Delay int
}

func (ev ScheduleEvent) validate() error {
	if ev.Round < 0 {
		return fmt.Errorf("%w: negative round %d", ErrBadSchedule, ev.Round)
	}
	switch ev.Kind {
	case ScheduleCrash, ScheduleRestart:
		if ev.Fraction < 0 || ev.Fraction > 1 {
			return fmt.Errorf("%w: fraction %g", ErrBadSchedule, ev.Fraction)
		}
	case SchedulePartition:
		if ev.Cells < 2 {
			return fmt.Errorf("%w: partition needs >= 2 cells, got %d", ErrBadSchedule, ev.Cells)
		}
	case ScheduleHeal, ScheduleLossRestore:
		// No parameters.
	case ScheduleLossBurst:
		if ev.PSucc <= 0 || ev.PSucc > 1 {
			return fmt.Errorf("%w: psucc %g", ErrBadSchedule, ev.PSucc)
		}
	case ScheduleStragglers:
		if ev.Fraction < 0 || ev.Fraction > 1 {
			return fmt.Errorf("%w: fraction %g", ErrBadSchedule, ev.Fraction)
		}
		if ev.Fraction > 0 && ev.Delay < 1 {
			return fmt.Errorf("%w: stragglers need Delay >= 1", ErrBadSchedule)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadSchedule, ev.Kind)
	}
	return nil
}

// applySchedule executes one fault between rounds (serial context).
func (w *world) applySchedule(ev ScheduleEvent) {
	switch ev.Kind {
	case ScheduleCrash:
		alive := w.net.AliveIDs()
		n := int(float64(len(alive)) * ev.Fraction)
		for _, id := range xrand.SampleIDs(w.sched, alive, n) {
			_ = w.net.Crash(id)
		}
	case ScheduleRestart:
		var down []ids.ProcessID
		for _, n := range w.nodes {
			if w.net.Down(n.id) {
				down = append(down, n.id)
			}
		}
		n := int(float64(len(down)) * ev.Fraction)
		for _, id := range xrand.SampleIDs(w.sched, down, n) {
			w.net.Recover(id)
		}
	case SchedulePartition:
		seed := w.cfg.Seed + int64(ev.Round)
		cells := make(map[ids.ProcessID]int, len(w.nodes))
		for _, n := range w.nodes {
			cells[n.id] = int(xrand.HashUniform(seed, "cell:"+string(n.id)) * float64(ev.Cells))
		}
		w.net.SetLinkDown(func(from, to ids.ProcessID) bool {
			return cells[from] != cells[to]
		})
	case ScheduleHeal:
		w.net.SetLinkDown(nil)
	case ScheduleLossBurst:
		w.net.PSucc = ev.PSucc
	case ScheduleLossRestore:
		w.net.PSucc = w.cfg.PSucc
	case ScheduleStragglers:
		if ev.Fraction <= 0 {
			w.net.SetLinkDelay(nil)
			return
		}
		w.net.SetLinkDelay(simnet.StragglerDelay(
			xrand.SeedFor(w.cfg.Seed, "stragglers"), ev.Fraction, ev.Delay))
	}
}
