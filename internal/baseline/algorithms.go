package baseline

import (
	"damulticast/internal/ids"
	"damulticast/internal/xrand"
)

// RunBroadcast executes baseline (a): gossip-based broadcast. Every
// process joins the single global group with a view of (B+1)·ln(n)
// members and forwards events to ln(n)+C of them. All processes —
// interested or not — receive everything.
func RunBroadcast(cfg Config) (*Result, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	n := len(w.nodes)
	pool := allIDs(w.nodes)
	viewCap := xrand.ViewSize(n, cfg.B)
	fanout := xrand.Fanout(n, cfg.C)
	rng := w.views
	for _, node := range w.nodes {
		node.views = []bView{{
			pool:   sampleView(rng, pool, node.id, viewCap),
			fanout: fanout,
		}}
	}
	return w.publishAndRun()
}

// RunMulticast executes baseline (b): gossip-based multicast with one
// group per topic. The group of topic Ti gathers the processes
// interested in Ti plus the subscribers of every supertopic of Ti
// (subscribers join all subtopic groups, §IV-A pattern (1)). An event
// of Ti is gossiped only within group(Ti), so there are no parasites —
// at the cost of each process holding one table per group joined.
func RunMulticast(cfg Config) (*Result, error) {
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	rng := w.views

	// Build group membership: group(T) = interested(T) ∪
	// {interested(T') : T' strictly includes T}.
	groupMembers := make(map[int][]*bNode, len(cfg.Populations))
	for gi, pop := range cfg.Populations {
		for _, n := range w.nodes {
			if n.topic == pop.Topic || n.topic.StrictlyIncludes(pop.Topic) {
				groupMembers[gi] = append(groupMembers[gi], n)
			}
		}
	}

	// Every member of a group holds a view over that group. Only the
	// published topic's group circulates the event, but all tables
	// count toward memory (§VI-E.2: Σ (ln(S_i)+c_i) tables).
	for gi, pop := range cfg.Populations {
		members := groupMembers[gi]
		pool := allIDs(members)
		viewCap := xrand.ViewSize(len(members), cfg.B)
		fanout := 0
		if pop.Topic == cfg.PublishTopic {
			fanout = xrand.Fanout(len(members), cfg.C)
		}
		for _, n := range members {
			n.views = append(n.views, bView{
				pool:   sampleView(rng, pool, n.id, viewCap),
				fanout: fanout,
			})
		}
	}
	return w.publishAndRun()
}

// RunHierarchical executes baseline (c): the two-level hierarchical
// gossip broadcast of [10]. Processes are partitioned — independently
// of their interests — into NumGroups small groups of roughly equal
// size. Each process keeps an intra-group view (fanout ln(m)+C) and an
// inter-group view over foreign processes (fanout ln(N)+C). Every
// process receives every event, interested or not.
func RunHierarchical(cfg Config) (*Result, error) {
	if cfg.NumGroups < 1 {
		return nil, ErrBadGroups
	}
	w, err := newWorld(cfg)
	if err != nil {
		return nil, err
	}
	rng := w.views
	n := len(w.nodes)
	numGroups := cfg.NumGroups
	if numGroups > n {
		numGroups = n
	}

	// Interest-agnostic partition.
	perm := rng.Perm(n)
	groups := make([][]*bNode, numGroups)
	for i, pi := range perm {
		g := i % numGroups
		groups[g] = append(groups[g], w.nodes[pi])
	}

	m := (n + numGroups - 1) / numGroups // group size (ceil)
	intraFanout := xrand.Fanout(m, cfg.C)
	interFanout := xrand.Fanout(numGroups, cfg.C)
	intraCap := xrand.ViewSize(m, cfg.B)
	interCap := xrand.ViewSize(numGroups, cfg.B)

	for gi, members := range groups {
		pool := allIDs(members)
		// Foreign pool: one random representative per other group is
		// the classic construction; we approximate with a uniform
		// sample over all foreign processes.
		var foreign []ids.ProcessID
		for gj, other := range groups {
			if gj == gi {
				continue
			}
			foreign = append(foreign, allIDs(other)...)
		}
		for _, node := range members {
			node.views = []bView{
				{pool: sampleView(rng, pool, node.id, intraCap), fanout: intraFanout},
				{pool: sampleView(rng, foreign, node.id, interCap), fanout: interFanout},
			}
		}
	}
	return w.publishAndRun()
}
