package baseline

import (
	"errors"
	"math"
	"testing"

	"damulticast/internal/topic"
)

func testConfig() Config {
	return Config{
		Populations: []Population{
			{Topic: topic.Root, Size: 10},
			{Topic: ".t1", Size: 30},
			{Topic: ".t1.t2", Size: 80},
		},
		PublishTopic:  ".t1.t2",
		B:             3,
		C:             5,
		PSucc:         1,
		AliveFraction: 1,
		NumGroups:     8,
		MaxRounds:     200,
		Seed:          1,
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Populations = nil
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrNoPopulation) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.PSucc = 0
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrBadPSucc) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.AliveFraction = 2
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrBadAlive) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.Populations[0].Size = 0
	if _, err := RunBroadcast(cfg); err == nil {
		t.Error("zero population accepted")
	}
	cfg = testConfig()
	cfg.NumGroups = 0
	if _, err := RunHierarchical(cfg); !errors.Is(err, ErrBadGroups) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.PublishTopic = ".ghost"
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrNoPublisher) {
		t.Errorf("err = %v", err)
	}
}

func TestBroadcastReachesEveryoneAndProducesParasites(t *testing.T) {
	// Publish on .t1.t2; root and .t1 subscribers are interested
	// (their topics include .t1.t2)... every node receives, so zero
	// interested processes are missed and NO parasites would require
	// uninterested processes. Add a disjoint branch to see parasites.
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reliability(); got < 0.99 {
		t.Errorf("broadcast reliability = %g", got)
	}
	// All 40 .other processes receive an event they never subscribed
	// to: the parasite count the paper's motivation hinges on.
	if res.Parasites < 35 {
		t.Errorf("parasites = %d, want ~40", res.Parasites)
	}
	if res.Messages == 0 || res.Rounds == 0 {
		t.Errorf("empty run: %+v", res)
	}
	// Memory: one view of (B+1)ln(n) = 4·ln(160) ≈ 21.
	if res.MaxMemory < 15 || res.MaxMemory > 25 {
		t.Errorf("MaxMemory = %d", res.MaxMemory)
	}
}

func TestMulticastNoParasites(t *testing.T) {
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	res, err := RunMulticast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parasites != 0 {
		t.Errorf("multicast produced %d parasites", res.Parasites)
	}
	if got := res.Reliability(); got < 0.99 {
		t.Errorf("multicast reliability = %g", got)
	}
	// Memory: a root subscriber joins group(.t1.t2), group(.t1),
	// group(root) and group(.other): several tables.
	broadcast, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMemory <= broadcast.MaxMemory {
		t.Errorf("multicast memory (%d) not above broadcast (%d)",
			res.MaxMemory, broadcast.MaxMemory)
	}
}

func TestMulticastMessageComplexityScopedToGroup(t *testing.T) {
	// Messages circulate only in group(.t1.t2) = 120 processes, not
	// among the 40 .other ones.
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	multicast, err := RunMulticast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	broadcast, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multicast.Messages >= broadcast.Messages {
		t.Errorf("multicast messages (%d) >= broadcast (%d)",
			multicast.Messages, broadcast.Messages)
	}
}

func TestHierarchicalReachesEveryone(t *testing.T) {
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	res, err := RunHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reliability(); got < 0.95 {
		t.Errorf("hierarchical reliability = %g", got)
	}
	if res.Parasites < 30 {
		t.Errorf("hierarchical parasites = %d, want ~40", res.Parasites)
	}
	// Memory: ln-size intra view + ln-size inter view, much smaller
	// than broadcast's global-n view when N is small.
	if res.MaxMemory == 0 {
		t.Error("no memory recorded")
	}
}

func TestHierarchicalGroupsClamped(t *testing.T) {
	cfg := testConfig()
	cfg.NumGroups = 10000 // more groups than processes: clamped
	res, err := RunHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reliability(); got < 0.9 {
		t.Errorf("reliability = %g", got)
	}
}

func TestFailuresReduceReliability(t *testing.T) {
	cfg := testConfig()
	cfg.PSucc = 0.85
	cfg.AliveFraction = 0.3
	cfg.Seed = 5
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := testConfig()
	full.Seed = 5
	fres, err := RunBroadcast(full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages >= fres.Messages {
		t.Errorf("failed run sent more: %d >= %d", res.Messages, fres.Messages)
	}
	if res.InterestedTotal >= fres.InterestedTotal {
		t.Errorf("alive interested: %d >= %d", res.InterestedTotal, fres.InterestedTotal)
	}
}

func TestReliabilityZeroDenominator(t *testing.T) {
	var r Result
	if r.Reliability() != 0 {
		t.Error("empty result reliability != 0")
	}
}

func TestBroadcastMessageComplexityOrder(t *testing.T) {
	// Total messages ≈ n·(ln n + c): every process forwards once.
	cfg := testConfig()
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 120.0
	expect := n * (math.Log(n) + cfg.C)
	if got := float64(res.Messages); got < 0.5*expect || got > 1.5*expect {
		t.Errorf("messages = %g, expected ~%g", got, expect)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.PSucc = 0.7
	cfg.AliveFraction = 0.8
	a, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.InterestedDelivered != b.InterestedDelivered {
		t.Error("non-deterministic baseline run")
	}
}
