package baseline

import (
	"errors"
	"math"
	"testing"

	"damulticast/internal/topic"
)

func testConfig() Config {
	return Config{
		Populations: []Population{
			{Topic: topic.Root, Size: 10},
			{Topic: ".t1", Size: 30},
			{Topic: ".t1.t2", Size: 80},
		},
		PublishTopic:  ".t1.t2",
		B:             3,
		C:             5,
		PSucc:         1,
		AliveFraction: 1,
		NumGroups:     8,
		MaxRounds:     200,
		Seed:          1,
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Populations = nil
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrNoPopulation) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.PSucc = 0
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrBadPSucc) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.AliveFraction = 2
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrBadAlive) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.Populations[0].Size = 0
	if _, err := RunBroadcast(cfg); err == nil {
		t.Error("zero population accepted")
	}
	cfg = testConfig()
	cfg.NumGroups = 0
	if _, err := RunHierarchical(cfg); !errors.Is(err, ErrBadGroups) {
		t.Errorf("err = %v", err)
	}
	cfg = testConfig()
	cfg.PublishTopic = ".ghost"
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrNoPublisher) {
		t.Errorf("err = %v", err)
	}
}

func TestBroadcastReachesEveryoneAndProducesParasites(t *testing.T) {
	// Publish on .t1.t2; root and .t1 subscribers are interested
	// (their topics include .t1.t2)... every node receives, so zero
	// interested processes are missed and NO parasites would require
	// uninterested processes. Add a disjoint branch to see parasites.
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reliability(); got < 0.99 {
		t.Errorf("broadcast reliability = %g", got)
	}
	// All 40 .other processes receive an event they never subscribed
	// to: the parasite count the paper's motivation hinges on.
	if res.Parasites < 35 {
		t.Errorf("parasites = %d, want ~40", res.Parasites)
	}
	if res.Messages == 0 || res.Rounds == 0 {
		t.Errorf("empty run: %+v", res)
	}
	// Memory: one view of (B+1)ln(n) = 4·ln(160) ≈ 21.
	if res.MaxMemory < 15 || res.MaxMemory > 25 {
		t.Errorf("MaxMemory = %d", res.MaxMemory)
	}
}

func TestMulticastNoParasites(t *testing.T) {
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	res, err := RunMulticast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parasites != 0 {
		t.Errorf("multicast produced %d parasites", res.Parasites)
	}
	if got := res.Reliability(); got < 0.99 {
		t.Errorf("multicast reliability = %g", got)
	}
	// Memory: a root subscriber joins group(.t1.t2), group(.t1),
	// group(root) and group(.other): several tables.
	broadcast, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMemory <= broadcast.MaxMemory {
		t.Errorf("multicast memory (%d) not above broadcast (%d)",
			res.MaxMemory, broadcast.MaxMemory)
	}
}

func TestMulticastMessageComplexityScopedToGroup(t *testing.T) {
	// Messages circulate only in group(.t1.t2) = 120 processes, not
	// among the 40 .other ones.
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	multicast, err := RunMulticast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	broadcast, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if multicast.Messages >= broadcast.Messages {
		t.Errorf("multicast messages (%d) >= broadcast (%d)",
			multicast.Messages, broadcast.Messages)
	}
}

func TestHierarchicalReachesEveryone(t *testing.T) {
	cfg := testConfig()
	cfg.Populations = append(cfg.Populations, Population{Topic: ".other", Size: 40})
	res, err := RunHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reliability(); got < 0.95 {
		t.Errorf("hierarchical reliability = %g", got)
	}
	if res.Parasites < 30 {
		t.Errorf("hierarchical parasites = %d, want ~40", res.Parasites)
	}
	// Memory: ln-size intra view + ln-size inter view, much smaller
	// than broadcast's global-n view when N is small.
	if res.MaxMemory == 0 {
		t.Error("no memory recorded")
	}
}

func TestHierarchicalGroupsClamped(t *testing.T) {
	cfg := testConfig()
	cfg.NumGroups = 10000 // more groups than processes: clamped
	res, err := RunHierarchical(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Reliability(); got < 0.9 {
		t.Errorf("reliability = %g", got)
	}
}

func TestFailuresReduceReliability(t *testing.T) {
	cfg := testConfig()
	cfg.PSucc = 0.85
	cfg.AliveFraction = 0.3
	cfg.Seed = 5
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full := testConfig()
	full.Seed = 5
	fres, err := RunBroadcast(full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages >= fres.Messages {
		t.Errorf("failed run sent more: %d >= %d", res.Messages, fres.Messages)
	}
	if res.InterestedTotal >= fres.InterestedTotal {
		t.Errorf("alive interested: %d >= %d", res.InterestedTotal, fres.InterestedTotal)
	}
}

func TestReliabilityZeroDenominator(t *testing.T) {
	var r Result
	if r.Reliability() != 0 {
		t.Error("empty result reliability != 0")
	}
}

func TestBroadcastMessageComplexityOrder(t *testing.T) {
	// Total messages ≈ n·(ln n + c): every process forwards once.
	cfg := testConfig()
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 120.0
	expect := n * (math.Log(n) + cfg.C)
	if got := float64(res.Messages); got < 0.5*expect || got > 1.5*expect {
		t.Errorf("messages = %g, expected ~%g", got, expect)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := testConfig()
	cfg.PSucc = 0.7
	cfg.AliveFraction = 0.8
	a, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages != b.Messages || a.InterestedDelivered != b.InterestedDelivered {
		t.Error("non-deterministic baseline run")
	}
}

func TestConfigValidateTable(t *testing.T) {
	valid := testConfig()
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr error // nil = any error unacceptable
	}{
		{"valid", func(c *Config) {}, nil},
		{"empty population", func(c *Config) { c.Populations = nil }, ErrNoPopulation},
		{"zero-size group", func(c *Config) { c.Populations[0].Size = 0 }, nil},
		{"negative-size group", func(c *Config) { c.Populations[1].Size = -3 }, nil},
		{"psucc zero", func(c *Config) { c.PSucc = 0 }, ErrBadPSucc},
		{"psucc above one", func(c *Config) { c.PSucc = 1.5 }, ErrBadPSucc},
		{"psucc negative", func(c *Config) { c.PSucc = -0.1 }, ErrBadPSucc},
		{"alive negative", func(c *Config) { c.AliveFraction = -0.01 }, ErrBadAlive},
		{"alive above one", func(c *Config) { c.AliveFraction = 1.01 }, ErrBadAlive},
		{"schedule negative round", func(c *Config) {
			c.Schedule = []ScheduleEvent{{Round: -1, Kind: ScheduleHeal}}
		}, ErrBadSchedule},
		{"schedule unknown kind", func(c *Config) {
			c.Schedule = []ScheduleEvent{{Round: 1}}
		}, ErrBadSchedule},
		{"schedule crash fraction", func(c *Config) {
			c.Schedule = []ScheduleEvent{{Round: 1, Kind: ScheduleCrash, Fraction: 2}}
		}, ErrBadSchedule},
		{"schedule partition one cell", func(c *Config) {
			c.Schedule = []ScheduleEvent{{Round: 1, Kind: SchedulePartition, Cells: 1}}
		}, ErrBadSchedule},
		{"schedule burst psucc", func(c *Config) {
			c.Schedule = []ScheduleEvent{{Round: 1, Kind: ScheduleLossBurst, PSucc: 0}}
		}, ErrBadSchedule},
		{"schedule stragglers no delay", func(c *Config) {
			c.Schedule = []ScheduleEvent{{Round: 1, Kind: ScheduleStragglers, Fraction: 0.5}}
		}, ErrBadSchedule},
		{"schedule stragglers clear ok", func(c *Config) {
			c.Schedule = []ScheduleEvent{{Round: 1, Kind: ScheduleStragglers, Fraction: 0}}
		}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := valid
			cfg.Populations = append([]Population(nil), valid.Populations...)
			tc.mutate(&cfg)
			err := cfg.validate()
			switch tc.name {
			case "valid", "schedule stragglers clear ok":
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestReliabilityEdgeCases(t *testing.T) {
	// Zero population -> zero denominator handled.
	r := Result{InterestedTotal: 0, InterestedDelivered: 0}
	if got := r.Reliability(); got != 0 {
		t.Errorf("zero-denominator reliability = %g", got)
	}
	r = Result{InterestedTotal: 10, InterestedDelivered: 7}
	if got := r.Reliability(); got != 0.7 {
		t.Errorf("reliability = %g, want 0.7", got)
	}
	// All interested processes dead -> no publisher to start from.
	cfg := testConfig()
	cfg.AliveFraction = 0
	if _, err := RunBroadcast(cfg); !errors.Is(err, ErrNoPublisher) {
		t.Errorf("all-dead err = %v", err)
	}
	// View cap above population: views clamp to the (pop-1) others.
	cfg = testConfig()
	cfg.Populations = []Population{{Topic: ".t1.t2", Size: 3}}
	cfg.B = 50 // (B+1)ln(3) >> 2
	res, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMemory > 2 {
		t.Errorf("MaxMemory = %d, want <= 2 for population 3", res.MaxMemory)
	}
	if res.Reliability() != 1 {
		t.Errorf("tiny lossless population reliability = %g", res.Reliability())
	}
}

// chaosSchedule is a representative multi-fault schedule used by the
// determinism tests.
func chaosSchedule() []ScheduleEvent {
	return []ScheduleEvent{
		{Round: 0, Kind: ScheduleStragglers, Fraction: 0.2, Delay: 2},
		{Round: 1, Kind: SchedulePartition, Cells: 2},
		{Round: 2, Kind: ScheduleCrash, Fraction: 0.15},
		{Round: 3, Kind: ScheduleLossBurst, PSucc: 0.5},
		{Round: 5, Kind: ScheduleHeal},
		{Round: 6, Kind: ScheduleLossRestore},
		{Round: 8, Kind: ScheduleRestart, Fraction: 1},
	}
}

func TestScheduleReplaysIdentically(t *testing.T) {
	cfg := testConfig()
	cfg.PSucc = 0.9
	cfg.MaxRounds = 30
	cfg.Schedule = chaosSchedule()
	run := func() *Result {
		res, err := RunHierarchical(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("schedule replay diverged: %+v vs %+v", a, b)
	}
}

func TestBaselineWorkerCountInvariance(t *testing.T) {
	// The full §VI-E comparison result must not depend on the shard
	// count — the contract the head-to-head figure's byte-identical
	// CSVs rest on. Exercise all three algorithms under a fault
	// schedule that touches every randomness consumer.
	algos := map[string]func(Config) (*Result, error){
		"broadcast":    RunBroadcast,
		"multicast":    RunMulticast,
		"hierarchical": RunHierarchical,
	}
	for name, run := range algos {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			cfg.PSucc = 0.85
			cfg.AliveFraction = 0.9
			cfg.MaxRounds = 30
			cfg.Schedule = chaosSchedule()
			var base *Result
			for _, workers := range []int{1, 2, 8} {
				cfg.Workers = workers
				res, err := run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if base == nil {
					base = res
					continue
				}
				if *res != *base {
					t.Errorf("workers=%d diverged: %+v vs %+v", workers, res, base)
				}
			}
		})
	}
}

func TestScheduleFaultsDegradeAndPartitionConfines(t *testing.T) {
	// A partition in place before the initial fanout and never healed
	// must confine the epidemic to the publisher's cell: reliability
	// strictly below a fault-free run. (Applied any later, the first
	// round's fanout has already infected both cells and each cell
	// saturates on its own.)
	cfg := testConfig()
	cfg.MaxRounds = 40
	clean, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Schedule = []ScheduleEvent{{Round: 0, Kind: SchedulePartition, Cells: 2}}
	cut, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Reliability() >= clean.Reliability() {
		t.Errorf("partition did not confine: %g >= %g", cut.Reliability(), clean.Reliability())
	}
	// Crash-all one round in kills the epidemic mid-flight; restarting
	// everyone later brings the full population back into the
	// denominator but nothing re-disseminates, so reliability stays far
	// below the clean run.
	cfg.Schedule = []ScheduleEvent{
		{Round: 1, Kind: ScheduleCrash, Fraction: 1},
		{Round: 10, Kind: ScheduleRestart, Fraction: 1},
	}
	wiped, err := RunBroadcast(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wiped.Reliability() > 0.5*clean.Reliability() {
		t.Errorf("crash-all+restart reliability = %g, want far below clean %g",
			wiped.Reliability(), clean.Reliability())
	}
}
