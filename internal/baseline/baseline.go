// Package baseline implements the three alternative dissemination
// algorithms daMulticast is compared against in §VI-E, on the same
// simnet kernel and with the same underlying membership assumptions
// (partial views of size (b+1)·ln(S)):
//
//	(a) gossip-based broadcast — one global group; every event is
//	    broadcast to everyone with fanout ln(n)+c (parasites galore);
//	(b) gossip-based multicast — one group per topic containing its
//	    subscribers and the subscribers of every supertopic; events of
//	    Ti gossip within group(Ti) only (no parasites, heavy memory);
//	(c) hierarchical gossip-based broadcast — the two-level scheme of
//	    [10]: interest-agnostic small groups with intra-group fanout
//	    ln(m)+c1 and inter-group fanout ln(N)+c2 (parasites again).
//
// Each baseline measures the §VI-E comparison quantities: total event
// messages, delivery fraction among interested processes, parasite
// deliveries, and per-process memory (membership table entries).
package baseline

import (
	"cmp"
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"damulticast/internal/ids"
	"damulticast/internal/simnet"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Population describes the subscriber populations per topic, mirroring
// sim.GroupSpec but decoupled so baselines stay independent.
type Population struct {
	Topic topic.Topic
	Size  int
}

// Config parameterizes a baseline run.
type Config struct {
	// Populations lists processes by the single topic each is
	// interested in.
	Populations []Population
	// PublishTopic is the published event's topic.
	PublishTopic topic.Topic
	// B sizes membership views: (B+1)·ln(group size).
	B float64
	// C is the gossip fanout constant (c for (a)/(b); c1=c2=C for (c)).
	C float64
	// PSucc is the channel success probability.
	PSucc float64
	// AliveFraction of processes are alive (stillborn model).
	AliveFraction float64
	// NumGroups is the hierarchical scheme's N (ignored by (a),(b)).
	NumGroups int
	// MaxRounds bounds the run.
	MaxRounds int
	// Seed drives randomness.
	Seed int64
	// Workers is the simnet shard count (0 = GOMAXPROCS). Results are
	// identical for every value: all randomness flows through per-node
	// or setup-only streams derived from Seed.
	Workers int
	// Schedule injects mid-run faults (crashes, restarts, partitions,
	// loss bursts, stragglers), mirroring the sim scenario presets so
	// baselines face the same adversity as da-multicast in head-to-head
	// figures. Events apply between rounds, in Round order.
	Schedule []ScheduleEvent
}

// Errors.
var (
	ErrNoPopulation = errors.New("baseline: empty population")
	ErrBadPSucc     = errors.New("baseline: PSucc must be in (0,1]")
	ErrBadAlive     = errors.New("baseline: AliveFraction must be in [0,1]")
	ErrNoPublisher  = errors.New("baseline: no alive process interested in publish topic")
	ErrBadGroups    = errors.New("baseline: NumGroups must be >= 1")
)

func (c Config) validate() error {
	if len(c.Populations) == 0 {
		return ErrNoPopulation
	}
	for _, p := range c.Populations {
		if p.Size < 1 {
			return fmt.Errorf("baseline: population %s has size %d", p.Topic, p.Size)
		}
	}
	if c.PSucc <= 0 || c.PSucc > 1 {
		return fmt.Errorf("%w: %g", ErrBadPSucc, c.PSucc)
	}
	if c.AliveFraction < 0 || c.AliveFraction > 1 {
		return fmt.Errorf("%w: %g", ErrBadAlive, c.AliveFraction)
	}
	for i, ev := range c.Schedule {
		if err := ev.validate(); err != nil {
			return fmt.Errorf("baseline: schedule[%d]: %w", i, err)
		}
	}
	return nil
}

// Result reports a baseline run's measurements.
type Result struct {
	// Messages is the total number of event messages sent.
	Messages int64
	// InterestedDelivered / InterestedTotal measure reliability among
	// alive processes whose topic includes the published topic.
	InterestedDelivered int
	InterestedTotal     int
	// Parasites counts deliveries to processes NOT interested in the
	// event (their topic does not include the publish topic).
	Parasites int64
	// MaxMemory is the largest per-process membership table total
	// (entries) across all processes — the §VI-E.2 comparison value.
	MaxMemory int
	// Rounds ran before quiescence.
	Rounds int
}

// Reliability returns the fraction of interested alive processes
// reached.
func (r *Result) Reliability() float64 {
	if r.InterestedTotal == 0 {
		return 0
	}
	return float64(r.InterestedDelivered) / float64(r.InterestedTotal)
}

// bEvent is the event payload circulated by all baselines.
type bEvent struct {
	id    ids.EventID
	topic topic.Topic
}

// bNode is a generic gossip node: on first reception it forwards the
// event to a sample of each of its views.
type bNode struct {
	id    ids.ProcessID
	net   *simnet.Network
	rng   *rand.Rand
	topic topic.Topic // the topic this node is interested in

	// views are the node's membership tables: a name (for memory
	// accounting) plus the pool and per-event fanout.
	views []bView

	seen      map[ids.EventID]bool
	delivered int
	parasites int
}

type bView struct {
	pool   []ids.ProcessID
	fanout int
}

func (n *bNode) ID() ids.ProcessID { return n.id }
func (n *bNode) Tick()             {}

func (n *bNode) HandleMessage(msg any) {
	ev, ok := msg.(bEvent)
	if !ok {
		return
	}
	if n.seen[ev.id] {
		return
	}
	n.seen[ev.id] = true
	if n.topic.Includes(ev.topic) {
		n.delivered++
	} else {
		n.parasites++
	}
	n.forward(ev)
}

func (n *bNode) forward(ev bEvent) {
	for _, v := range n.views {
		for _, target := range xrand.SampleIDs(n.rng, v.pool, v.fanout) {
			if target != n.id {
				n.net.Send(n.id, target, ev)
			}
		}
	}
}

func (n *bNode) memory() int {
	total := 0
	for _, v := range n.views {
		total += len(v.pool)
	}
	return total
}

// world is the shared construction state of all three baselines.
type world struct {
	cfg   Config
	net   *simnet.Network
	nodes []*bNode
	// byTopic indexes nodes by their interest.
	byTopic map[topic.Topic][]*bNode
	msgs    int64

	// Dedicated deterministic streams: views draws membership tables
	// (setup only), publish picks the publisher, sched picks fault
	// targets between rounds. Keeping them separate — and giving every
	// node its own stream — makes runs reproducible under the simnet
	// worker-invariance contract: no draw order depends on another
	// consumer's position in a shared stream.
	views   *rand.Rand
	publish *rand.Rand
	sched   *rand.Rand
}

func newWorld(cfg Config) (*world, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	w := &world{
		cfg:     cfg,
		net:     simnet.New(cfg.Seed),
		byTopic: make(map[topic.Topic][]*bNode),
		views:   xrand.NewStream(cfg.Seed, "baseline:views"),
		publish: xrand.NewStream(cfg.Seed, "baseline:publish"),
		sched:   xrand.NewStream(cfg.Seed, "baseline:schedule"),
	}
	w.net.PSucc = cfg.PSucc
	w.net.Workers = cfg.Workers
	w.net.OnSend = func(env simnet.Envelope, dropped bool) {
		if _, ok := env.Msg.(bEvent); ok {
			w.msgs++
		}
	}
	for _, pop := range cfg.Populations {
		for i := 0; i < pop.Size; i++ {
			id := ids.ProcessID(fmt.Sprintf("%s#%d", pop.Topic, i))
			n := &bNode{
				id:    id,
				net:   w.net,
				rng:   xrand.NewStream(cfg.Seed, "bnode:"+string(id)),
				topic: pop.Topic,
				seen:  make(map[ids.EventID]bool),
			}
			w.nodes = append(w.nodes, n)
			w.byTopic[pop.Topic] = append(w.byTopic[pop.Topic], n)
			if err := w.net.AddNode(n); err != nil {
				return nil, err
			}
		}
	}
	// Stillborn failures, uniformly across the whole population.
	rng := xrand.NewStream(cfg.Seed, "baseline:failures")
	nFail := int(float64(len(w.nodes)) * (1 - cfg.AliveFraction))
	perm := rng.Perm(len(w.nodes))
	for i := 0; i < nFail; i++ {
		if err := w.net.Crash(w.nodes[perm[i]].id); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// publishAndRun picks an alive publisher interested in PublishTopic,
// injects the event, runs to quiescence (or until the schedule and
// MaxRounds are exhausted) and collects the result. Schedule events
// with Round r apply after r rounds have run — round-0 events land
// before the initial forward, so stragglers and partitions shape the
// first fanout exactly as they do in the sim scenario runner.
func (w *world) publishAndRun() (*Result, error) {
	cfg := w.cfg
	var pubs []*bNode
	for _, n := range w.byTopic[cfg.PublishTopic] {
		if !w.net.Down(n.id) {
			pubs = append(pubs, n)
		}
	}
	if len(pubs) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoPublisher, cfg.PublishTopic)
	}
	pub := pubs[w.publish.Intn(len(pubs))]
	ev := bEvent{id: ids.EventID{Origin: pub.id, Seq: 1}, topic: cfg.PublishTopic}

	events := make([]ScheduleEvent, len(cfg.Schedule))
	copy(events, cfg.Schedule)
	slices.SortStableFunc(events, func(a, b ScheduleEvent) int {
		return cmp.Compare(a.Round, b.Round)
	})

	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 500
	}
	ei := 0
	for ei < len(events) && events[ei].Round <= 0 {
		w.applySchedule(events[ei])
		ei++
	}

	pub.seen[ev.id] = true
	pub.delivered++ // publisher trivially has the event
	pub.forward(ev)

	rounds := 0
	for rounds < maxRounds {
		if w.net.Pending() == 0 && ei >= len(events) {
			break
		}
		w.net.Step()
		rounds++
		for ei < len(events) && events[ei].Round <= rounds {
			w.applySchedule(events[ei])
			ei++
		}
	}

	res := &Result{Messages: w.msgs, Rounds: rounds}
	for _, n := range w.nodes {
		if m := n.memory(); m > res.MaxMemory {
			res.MaxMemory = m
		}
		res.Parasites += int64(n.parasites)
		if w.net.Down(n.id) {
			continue
		}
		if n.topic.Includes(cfg.PublishTopic) {
			res.InterestedTotal++
			if n.delivered > 0 {
				res.InterestedDelivered++
			}
		}
	}
	return res, nil
}

// allIDs collects ids of the given nodes.
func allIDs(nodes []*bNode) []ids.ProcessID {
	out := make([]ids.ProcessID, len(nodes))
	for i, n := range nodes {
		out[i] = n.id
	}
	return out
}

// sampleView builds a membership view for one node: up to cap distinct
// members of pool, excluding self.
func sampleView(rng *rand.Rand, pool []ids.ProcessID, self ids.ProcessID, cap int) []ids.ProcessID {
	return xrand.SampleExcluding(rng, pool, cap, map[ids.ProcessID]struct{}{self: {}})
}
