// Package analysis implements the closed-form results of §VI and the
// appendix: the reliability equation (Eq. 1), message and memory
// complexity formulas for daMulticast and the three baselines, and the
// parameter-tuning equivalences (appendix eqs. 14-30) that trade the
// supertopic-table size z against reliability.
//
// Conventions: natural logarithms throughout (as in the paper);
// probabilities in [0,1]; S denotes group sizes; t the hierarchy depth.
package analysis

import (
	"errors"
	"fmt"
	"math"
)

// Level holds the per-level parameters of the analysis model of §VI-A:
// a chain T0 (root) ... Tt (bottom-most), one entry per level.
type Level struct {
	// S is the number of processes interested in this level's topic.
	S int
	// C is the gossip fanout constant c_Ti.
	C float64
	// G determines pSel = G/S.
	G float64
	// A determines pA = A/Z.
	A float64
	// Z is the supertopic table size.
	Z int
	// PSucc is the inter-group channel success probability psucc_Ti.
	PSucc float64
	// Pi is the proportion of the group that receives an event via
	// the underlying gossip (π_Ti in §VI-D); e^{-e^{-c}}-ish in the
	// ideal case. Values in (0,1].
	Pi float64
}

// Errors.
var (
	ErrNoLevels    = errors.New("analysis: no levels")
	ErrBadLevel    = errors.New("analysis: invalid level parameters")
	ErrOutOfRange  = errors.New("analysis: c outside the feasible tuning range")
	ErrBadArgument = errors.New("analysis: invalid argument")
)

func validateLevels(levels []Level) error {
	if len(levels) == 0 {
		return ErrNoLevels
	}
	for i, l := range levels {
		if l.S < 1 || l.Z < 1 || l.PSucc < 0 || l.PSucc > 1 || l.Pi < 0 || l.Pi > 1 {
			return fmt.Errorf("%w: level %d: %+v", ErrBadLevel, i, l)
		}
	}
	return nil
}

// GossipReliability is the Erdős–Rényi asymptotic probability that a
// fanout of ln(S)+c infects the whole group: e^{-e^{-c}} (§VI-D,
// ref [3]).
func GossipReliability(c float64) float64 {
	return math.Exp(-math.Exp(-c))
}

// PSel returns g/S clamped to [0,1].
func (l Level) PSel() float64 {
	if l.S <= 0 {
		return 0
	}
	p := l.G / float64(l.S)
	return clamp01(p)
}

// PA returns a/z clamped to [0,1].
func (l Level) PA() float64 {
	if l.Z <= 0 {
		return 0
	}
	return clamp01(l.A / float64(l.Z))
}

func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// NbSuperMsg is the expected number of events sent from one group to
// its supergroup: S·pSel·pA·z·psucc (§VI-B).
func (l Level) NbSuperMsg() float64 {
	return float64(l.S) * l.PSel() * l.PA() * float64(l.Z) * l.PSucc
}

// NbSuscProc is the expected number of processes able to propagate the
// event upward: S·pSel·π (§VI-D).
func (l Level) NbSuscProc() float64 {
	return float64(l.S) * l.PSel() * l.Pi
}

// Pit is the probability that at least one event crosses from this
// group to its supergroup: 1 - (1-psucc)^{nbSuscProc·pA·z} (§VI-D).
func (l Level) Pit() float64 {
	exponent := l.NbSuscProc() * l.PA() * float64(l.Z)
	return 1 - math.Pow(1-l.PSucc, exponent)
}

// Reliability evaluates Eq. 1: the probability that all processes of
// level j (0 = root) receive an event published at the bottom-most
// level t = len(levels)-1:
//
//	Π_{i=t..j} e^{-e^{-c_i}} · pit_i
//
// with pit of the root level taken as 1 (no upward hop from the root).
// levels[0] is the root.
func Reliability(levels []Level, j int) (float64, error) {
	if err := validateLevels(levels); err != nil {
		return 0, err
	}
	t := len(levels) - 1
	if j < 0 || j > t {
		return 0, fmt.Errorf("%w: j=%d with t=%d", ErrBadArgument, j, t)
	}
	r := 1.0
	for i := t; i >= j; i-- {
		r *= GossipReliability(levels[i].C)
		if i > j {
			// The hop from level i to level i-1 must succeed.
			r *= levels[i].Pit()
		}
	}
	return r, nil
}

// DaMulticastMessages is the total expected number of event messages
// for one publication at the bottom-most level (§VI-B):
//
//	Σ_{i=t..0} S_i(ln S_i + c_i) + Σ_{i=t..1} S_i·pSel·pA·psucc·z.
func DaMulticastMessages(levels []Level) (float64, error) {
	if err := validateLevels(levels); err != nil {
		return 0, err
	}
	total := 0.0
	for i, l := range levels {
		total += float64(l.S) * (math.Log(float64(l.S)) + l.C)
		if i > 0 { // non-root levels also push upward
			total += l.NbSuperMsg()
		}
	}
	return total, nil
}

// DaMulticastMemory is ln(S)+c+z, the per-process membership entries
// of §VI-C (root processes save the z term).
func DaMulticastMemory(s int, c float64, z int, isRoot bool) (float64, error) {
	if s < 1 || z < 0 {
		return 0, fmt.Errorf("%w: s=%d z=%d", ErrBadArgument, s, z)
	}
	m := math.Log(float64(s)) + c
	if !isRoot {
		m += float64(z)
	}
	return m, nil
}

// BroadcastMessages is n(ln n + c) (appendix eq. 7).
func BroadcastMessages(n int, c float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadArgument, n)
	}
	return float64(n) * (math.Log(float64(n)) + c), nil
}

// BroadcastMemory is ln(n)+c (appendix eq. 6).
func BroadcastMemory(n int, c float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadArgument, n)
	}
	return math.Log(float64(n)) + c, nil
}

// BroadcastReliability is e^{-e^{-c}} (§VI-E.3 (a)).
func BroadcastReliability(c float64) float64 { return GossipReliability(c) }

// MulticastMessages is Σ S_i(ln S_i + c_i) (appendix eq. 3): the
// publisher publishes in its group and every supergroup.
func MulticastMessages(levels []Level) (float64, error) {
	if err := validateLevels(levels); err != nil {
		return 0, err
	}
	total := 0.0
	for _, l := range levels {
		total += float64(l.S) * (math.Log(float64(l.S)) + l.C)
	}
	return total, nil
}

// MulticastMemory is Σ (ln S_i + c_i) (appendix eq. 2): one table per
// level joined.
func MulticastMemory(levels []Level) (float64, error) {
	if err := validateLevels(levels); err != nil {
		return 0, err
	}
	total := 0.0
	for _, l := range levels {
		total += math.Log(float64(l.S)) + l.C
	}
	return total, nil
}

// MulticastReliability is Π e^{-e^{-c_i}} (§VI-E.3 (b)).
func MulticastReliability(levels []Level) (float64, error) {
	if err := validateLevels(levels); err != nil {
		return 0, err
	}
	r := 1.0
	for _, l := range levels {
		r *= GossipReliability(l.C)
	}
	return r, nil
}

// HierarchicalMessages is N·m(ln N + ln m + c1 + c2) (appendix eq. 10).
func HierarchicalMessages(numGroups, groupSize int, c1, c2 float64) (float64, error) {
	if numGroups < 1 || groupSize < 1 {
		return 0, fmt.Errorf("%w: N=%d m=%d", ErrBadArgument, numGroups, groupSize)
	}
	nN, m := float64(numGroups), float64(groupSize)
	return nN * m * (math.Log(nN) + math.Log(m) + c1 + c2), nil
}

// HierarchicalMemory is ln(N)+c1+ln(m)+c2 (appendix eq. 9).
func HierarchicalMemory(numGroups, groupSize int, c1, c2 float64) (float64, error) {
	if numGroups < 1 || groupSize < 1 {
		return 0, fmt.Errorf("%w: N=%d m=%d", ErrBadArgument, numGroups, groupSize)
	}
	return math.Log(float64(numGroups)) + c1 + math.Log(float64(groupSize)) + c2, nil
}

// HierarchicalReliability is e^{-N e^{-c1} - e^{-c2}} (§VI-E.3 (c)).
func HierarchicalReliability(numGroups int, c1, c2 float64) (float64, error) {
	if numGroups < 1 {
		return 0, fmt.Errorf("%w: N=%d", ErrBadArgument, numGroups)
	}
	return math.Exp(-float64(numGroups)*math.Exp(-c1) - math.Exp(-c2)), nil
}
