package analysis

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// Cross-check: plugging the tuned c1 back into daMulticast's
// reliability formula must reproduce the baseline's reliability.

func TestTuneVsMulticastRoundTrip(t *testing.T) {
	// Worst case j=0: Π_{i=t..0} e^{-e^{-c1}}·pit vs Π e^{-e^{-c}}.
	// With all levels equal the appendix reduces to
	// e^{-c1} - ln(pit) = e^{-c} per level.
	pit := 0.995
	c := 1.0 // within [0, -ln(-ln(0.995))] = [0, 5.29]
	c1, err := TuneVsMulticast(c, pit)
	if err != nil {
		t.Fatal(err)
	}
	lhs := math.Exp(-c1) - math.Log(pit)
	rhs := math.Exp(-c)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("identity broken: %g vs %g", lhs, rhs)
	}
	// c1 must be >= 0 and <= c (daMulticast needs a larger fanout
	// constant... actually smaller: the pit term subtracts; verify
	// bounds only).
	if c1 < 0 {
		t.Errorf("c1 = %g < 0", c1)
	}
}

func TestTuneVsMulticastEdges(t *testing.T) {
	// pit = 1: c1 == c exactly.
	c1, err := TuneVsMulticast(2.5, 1)
	if err != nil || c1 != 2.5 {
		t.Errorf("pit=1: c1=%g err=%v", c1, err)
	}
	// c out of range.
	if _, err := TuneVsMulticast(10, 0.5); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := TuneVsMulticast(-1, 0.9); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	// pit invalid.
	if _, err := TuneVsMulticast(1, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v", err)
	}
	if _, err := TuneVsMulticast(1, 1.5); !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v", err)
	}
}

func TestTuneVsBroadcastRoundTrip(t *testing.T) {
	// Identity: e^{-c1} - ln(pit) = e^{-c}/t  per level (appendix eq. 22).
	pit := 0.999
	tDepth := 3
	c := 1.5
	c1, err := TuneVsBroadcast(c, pit, tDepth)
	if err != nil {
		t.Fatal(err)
	}
	lhs := math.Exp(-c1) - math.Log(pit)
	rhs := math.Exp(-c) / float64(tDepth)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("identity broken: %g vs %g", lhs, rhs)
	}
}

func TestTuneVsBroadcastEdges(t *testing.T) {
	// pit = 1: c1 = c + ln t.
	c1, err := TuneVsBroadcast(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c1-(2+math.Log(4))) > 1e-12 {
		t.Errorf("c1 = %g", c1)
	}
	if _, err := TuneVsBroadcast(50, 0.9, 3); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := TuneVsBroadcast(1, 0.9, 0); !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v", err)
	}
}

func TestTuneVsHierarchicalRoundTrip(t *testing.T) {
	// Identity: t·e^{-cT} - t·ln(pit) = (N+1)·e^{-c} (appendix eq. 27).
	pit := 0.999
	tDepth, numGroups := 3, 10
	c := 2.0
	cT, err := TuneVsHierarchical(c, pit, tDepth, numGroups)
	if err != nil {
		t.Fatal(err)
	}
	tf, nf := float64(tDepth), float64(numGroups)
	lhs := tf*math.Exp(-cT) - tf*math.Log(pit)
	rhs := (nf + 1) * math.Exp(-c)
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("identity broken: %g vs %g", lhs, rhs)
	}
}

func TestTuneVsHierarchicalEdges(t *testing.T) {
	if _, err := TuneVsHierarchical(99, 0.9, 3, 10); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	// c below the lower bound.
	if _, err := TuneVsHierarchical(-5, 0.9, 3, 10); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := TuneVsHierarchical(1, 0.9, 0, 10); !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v", err)
	}
	if _, err := TuneVsHierarchical(1, 2, 3, 10); !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v", err)
	}
}

func TestZBounds(t *testing.T) {
	// Paper setting: n=1110, t=3, sT=1000 (avg-case sT; the paper's
	// condition needs ln n > ln sT + ln t for any gain vs broadcast).
	zb, err := ZBoundVsBroadcast(1110, 3, 1000, 1, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	// ln(1110) < ln(1000)+ln(3): bound is negative — no z gives a
	// memory win vs plain broadcast here, exactly the paper's caveat.
	if zb > 0 {
		t.Errorf("zBound = %g, expected negative for this setting", zb)
	}
	// With many more total processes than sT·t the bound turns positive.
	zb, err = ZBoundVsBroadcast(100000, 3, 1000, 1, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if zb <= 0 {
		t.Errorf("zBound = %g, want positive", zb)
	}

	zm, err := ZBoundVsMulticast(3, 1000, 5, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	// (t-1)(ln sT + c) ≈ 2·11.9: plenty of room — z=3 qualifies.
	if zm < 3 {
		t.Errorf("zBound vs multicast = %g, want >= 3", zm)
	}

	zh, err := ZBoundVsHierarchical(3, 10, 5, 0.9999)
	if err != nil {
		t.Fatal(err)
	}
	if zh <= 0 {
		t.Errorf("zBound vs hierarchical = %g", zh)
	}

	// Validation.
	if _, err := ZBoundVsBroadcast(0, 3, 10, 1, 0.9); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ZBoundVsMulticast(0, 10, 1, 0.9); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := ZBoundVsHierarchical(0, 10, 1, 0.9); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := ZBoundVsMulticast(3, 10, 1, 0); err == nil {
		t.Error("pit=0 accepted")
	}
}

// Property: whenever TuneVsMulticast succeeds, the tuned c1 is finite,
// non-negative, and satisfies the defining identity.
func TestPropTuneVsMulticast(t *testing.T) {
	prop := func(cRaw, pitRaw uint8) bool {
		pit := 0.90 + float64(pitRaw%100)/1000 // [0.90, 0.999]
		maxC := -math.Log(-math.Log(pit))
		c := float64(cRaw) / 255 * maxC // within range
		c1, err := TuneVsMulticast(c, pit)
		if err != nil {
			return true // out-of-range combinations are fine
		}
		if math.IsNaN(c1) || math.IsInf(c1, 0) || c1 < -1e-9 {
			return false
		}
		lhs := math.Exp(-c1) - math.Log(pit)
		return math.Abs(lhs-math.Exp(-c)) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: reliability (Eq. 1) is monotonically non-increasing as
// events climb the hierarchy (j decreasing).
func TestPropReliabilityMonotone(t *testing.T) {
	prop := func(sizes [3]uint8, cRaw uint8) bool {
		c := 1 + float64(cRaw%8)
		mk := func(s uint8) Level {
			return Level{S: 1 + int(s), C: c, G: 5, A: 1, Z: 3, PSucc: 0.85, Pi: 0.9}
		}
		levels := []Level{mk(sizes[0]), mk(sizes[1]), mk(sizes[2])}
		prev := -1.0
		for j := len(levels) - 1; j >= 0; j-- {
			r, err := Reliability(levels, j)
			if err != nil {
				return false
			}
			if prev >= 0 && r > prev+1e-12 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
