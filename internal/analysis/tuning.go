package analysis

import (
	"fmt"
	"math"
)

// This file implements the appendix's "trading membership with
// reliability" results: for each baseline, the value c1 (daMulticast's
// per-level fanout constant) that yields the *same* reliability as the
// baseline run with constant c, the feasibility range for c, and the
// bound on z under which daMulticast's memory is still no larger than
// the baseline's. The average-case simplifications of the paper apply:
// all levels share S_T = sT, z, pit.

// TuneVsMulticast computes c1 such that daMulticast matches baseline
// (b)'s reliability (appendix eq. 16):
//
//	c1 = c - ln(1 + e^c·ln(pit)),  feasible iff 0 ≤ c ≤ -ln(-ln(pit)).
func TuneVsMulticast(c, pit float64) (float64, error) {
	if err := checkPit(pit); err != nil {
		return 0, err
	}
	if pit == 1 {
		return c, nil // condition 3 in the appendix: c1 == c
	}
	if c < 0 || c > -math.Log(-math.Log(pit)) {
		return 0, fmt.Errorf("%w: c=%g pit=%g needs 0<=c<=%g",
			ErrOutOfRange, c, pit, -math.Log(-math.Log(pit)))
	}
	inner := 1 + math.Exp(c)*math.Log(pit)
	if inner <= 0 {
		return 0, fmt.Errorf("%w: c=%g pit=%g", ErrOutOfRange, c, pit)
	}
	return c - math.Log(inner), nil
}

// ZBoundVsMulticast is appendix eq. 19: daMulticast's memory stays at
// or below gossip multicast's iff
//
//	z ≤ (t-1)(ln sT + c) + ln(1 + e^c·ln(pit)).
func ZBoundVsMulticast(t int, sT int, c, pit float64) (float64, error) {
	if err := checkTS(t, sT); err != nil {
		return 0, err
	}
	if err := checkPit(pit); err != nil {
		return 0, err
	}
	inner := 1 + math.Exp(c)*math.Log(pit)
	if inner <= 0 {
		return 0, fmt.Errorf("%w: c=%g pit=%g", ErrOutOfRange, c, pit)
	}
	return float64(t-1)*(math.Log(float64(sT))+c) + math.Log(inner), nil
}

// TuneVsBroadcast computes c1 matching baseline (a)'s reliability
// (appendix eq. 23):
//
//	c1 = c - ln(1 + t·e^c·ln(pit)) + ln(t),
//	feasible iff 0 ≤ c ≤ -ln(-t·ln(pit)).
func TuneVsBroadcast(c, pit float64, t int) (float64, error) {
	if err := checkPit(pit); err != nil {
		return 0, err
	}
	if t < 1 {
		return 0, fmt.Errorf("%w: t=%d", ErrBadArgument, t)
	}
	if pit == 1 {
		// e^{-c1}·t = e^{-c}: c1 = c + ln t.
		return c + math.Log(float64(t)), nil
	}
	upper := -math.Log(-float64(t) * math.Log(pit))
	if c < 0 || c > upper {
		return 0, fmt.Errorf("%w: c=%g pit=%g t=%d needs 0<=c<=%g",
			ErrOutOfRange, c, pit, t, upper)
	}
	inner := 1 + float64(t)*math.Exp(c)*math.Log(pit)
	if inner <= 0 {
		return 0, fmt.Errorf("%w: c=%g pit=%g t=%d", ErrOutOfRange, c, pit, t)
	}
	return c - math.Log(inner) + math.Log(float64(t)), nil
}

// ZBoundVsBroadcast is appendix eq. 25: daMulticast's memory stays at
// or below gossip broadcast's iff
//
//	z ≤ ln(n) + ln(1 + t·e^c·ln(pit)) - ln(sT) - ln(t).
func ZBoundVsBroadcast(n, t, sT int, c, pit float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("%w: n=%d", ErrBadArgument, n)
	}
	if err := checkTS(t, sT); err != nil {
		return 0, err
	}
	if err := checkPit(pit); err != nil {
		return 0, err
	}
	inner := 1 + float64(t)*math.Exp(c)*math.Log(pit)
	if inner <= 0 {
		return 0, fmt.Errorf("%w: c=%g pit=%g t=%d", ErrOutOfRange, c, pit, t)
	}
	return math.Log(float64(n)) + math.Log(inner) -
		math.Log(float64(sT)) - math.Log(float64(t)), nil
}

// TuneVsHierarchical computes cT matching baseline (c)'s reliability
// with c1 = c2 = c (appendix eq. 28):
//
//	cT = ln(t) + c - ln(t·e^c·ln(pit) + N + 1),
//	feasible iff -ln(t(1-ln pit)/(N+1)) ≤ c ≤ -ln(-t·ln(pit)/(N+1)).
func TuneVsHierarchical(c, pit float64, t, numGroups int) (float64, error) {
	if err := checkPit(pit); err != nil {
		return 0, err
	}
	if t < 1 || numGroups < 1 {
		return 0, fmt.Errorf("%w: t=%d N=%d", ErrBadArgument, t, numGroups)
	}
	tf, nf := float64(t), float64(numGroups)
	lower := -math.Log(tf * (1 - math.Log(pit)) / (nf + 1))
	var upper float64
	if pit == 1 {
		upper = math.Inf(1)
	} else {
		upper = -math.Log(-tf * math.Log(pit) / (nf + 1))
	}
	if c < lower || c > upper {
		return 0, fmt.Errorf("%w: c=%g needs [%g, %g]", ErrOutOfRange, c, lower, upper)
	}
	inner := tf*math.Exp(c)*math.Log(pit) + nf + 1
	if inner <= 0 {
		return 0, fmt.Errorf("%w: c=%g pit=%g", ErrOutOfRange, c, pit)
	}
	return math.Log(tf) + c - math.Log(inner), nil
}

// ZBoundVsHierarchical is appendix eq. 30: daMulticast's memory stays
// at or below the hierarchical broadcast's iff
//
//	z ≤ c + ln(N) + ln(N + 1 + t·e^c·ln(pit)) - ln(t).
func ZBoundVsHierarchical(t, numGroups int, c, pit float64) (float64, error) {
	if t < 1 || numGroups < 1 {
		return 0, fmt.Errorf("%w: t=%d N=%d", ErrBadArgument, t, numGroups)
	}
	if err := checkPit(pit); err != nil {
		return 0, err
	}
	tf, nf := float64(t), float64(numGroups)
	inner := nf + 1 + tf*math.Exp(c)*math.Log(pit)
	if inner <= 0 {
		return 0, fmt.Errorf("%w: c=%g pit=%g", ErrOutOfRange, c, pit)
	}
	return c + math.Log(nf) + math.Log(inner) - math.Log(tf), nil
}

func checkPit(pit float64) error {
	if pit <= 0 || pit > 1 {
		return fmt.Errorf("%w: pit=%g must be in (0,1]", ErrBadArgument, pit)
	}
	return nil
}

func checkTS(t, sT int) error {
	if t < 1 || sT < 1 {
		return fmt.Errorf("%w: t=%d sT=%d", ErrBadArgument, t, sT)
	}
	return nil
}
