package analysis

import (
	"errors"
	"math"
	"testing"
)

func paperLevels() []Level {
	// §VII-A: S = {10, 100, 1000} root..leaf, c=5, g=5, a=1, z=3,
	// psucc=0.85. Pi set to the ideal gossip coverage e^{-e^{-5}}.
	pi := GossipReliability(5)
	mk := func(s int) Level {
		return Level{S: s, C: 5, G: 5, A: 1, Z: 3, PSucc: 0.85, Pi: pi}
	}
	return []Level{mk(10), mk(100), mk(1000)}
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestGossipReliability(t *testing.T) {
	// e^{-e^{-5}} ≈ 0.99329.
	if got := GossipReliability(5); !almost(got, 0.99329, 1e-4) {
		t.Errorf("GossipReliability(5) = %g", got)
	}
	// c=0: e^{-1} ≈ 0.3679.
	if got := GossipReliability(0); !almost(got, math.Exp(-1), 1e-12) {
		t.Errorf("GossipReliability(0) = %g", got)
	}
	// Monotone in c.
	if GossipReliability(1) >= GossipReliability(2) {
		t.Error("not monotone")
	}
}

func TestLevelProbabilities(t *testing.T) {
	l := Level{S: 1000, G: 5, A: 1, Z: 3, PSucc: 0.85, Pi: 1}
	if got := l.PSel(); !almost(got, 0.005, 1e-12) {
		t.Errorf("PSel = %g", got)
	}
	if got := l.PA(); !almost(got, 1.0/3, 1e-12) {
		t.Errorf("PA = %g", got)
	}
	// nbSuperMsg = 1000·0.005·(1/3)·3·0.85 = 4.25 — matching Fig. 9's
	// ≈4 intergroup messages at full aliveness.
	if got := l.NbSuperMsg(); !almost(got, 4.25, 1e-9) {
		t.Errorf("NbSuperMsg = %g", got)
	}
	if got := l.NbSuscProc(); !almost(got, 5, 1e-9) {
		t.Errorf("NbSuscProc = %g", got)
	}
	// pit = 1 - 0.15^{5·(1/3)·3} = 1 - 0.15^5 ≈ 0.99992.
	if got := l.Pit(); !almost(got, 1-math.Pow(0.15, 5), 1e-12) {
		t.Errorf("Pit = %g", got)
	}
}

func TestPSelClamps(t *testing.T) {
	l := Level{S: 2, G: 100, A: 5, Z: 3}
	if l.PSel() != 1 {
		t.Errorf("PSel = %g", l.PSel())
	}
	if l.PA() != 1 {
		t.Errorf("PA = %g", l.PA())
	}
	zero := Level{S: 0, Z: 0}
	if zero.PSel() != 0 || zero.PA() != 0 {
		t.Error("zero-size level probabilities not 0")
	}
}

func TestReliabilityEquation(t *testing.T) {
	levels := paperLevels()
	// Reliability at the publishing level itself (j = t = 2): just the
	// intra-group term.
	r2, err := Reliability(levels, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(r2, GossipReliability(5), 1e-9) {
		t.Errorf("R(T2) = %g", r2)
	}
	// Climbing reduces reliability monotonically.
	r1, err := Reliability(levels, 1)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := Reliability(levels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(r0 < r1 && r1 < r2) {
		t.Errorf("not monotone: r0=%g r1=%g r2=%g", r0, r1, r2)
	}
	// With the paper's parameters everything is close to 1.
	if r0 < 0.97 {
		t.Errorf("R(T0) = %g unexpectedly low", r0)
	}
	// Errors.
	if _, err := Reliability(nil, 0); !errors.Is(err, ErrNoLevels) {
		t.Errorf("err = %v", err)
	}
	if _, err := Reliability(levels, 5); !errors.Is(err, ErrBadArgument) {
		t.Errorf("err = %v", err)
	}
	bad := paperLevels()
	bad[0].S = 0
	if _, err := Reliability(bad, 0); !errors.Is(err, ErrBadLevel) {
		t.Errorf("err = %v", err)
	}
}

func TestDaMulticastMessages(t *testing.T) {
	levels := paperLevels()
	got, err := DaMulticastMessages(levels)
	if err != nil {
		t.Fatal(err)
	}
	// Dominant term: 1000·(ln 1000 + 5) ≈ 11908; plus 100·(ln100+5),
	// plus 10·(ln10+5) plus two small upward terms.
	want := 1000*(math.Log(1000)+5) + 100*(math.Log(100)+5) + 10*(math.Log(10)+5)
	if got < want || got > want+20 {
		t.Errorf("messages = %g, want ~%g (+<20 upward)", got, want)
	}
	if _, err := DaMulticastMessages(nil); err == nil {
		t.Error("nil levels accepted")
	}
}

func TestDaMulticastMemory(t *testing.T) {
	m, err := DaMulticastMemory(1000, 5, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(m, math.Log(1000)+5+3, 1e-9) {
		t.Errorf("memory = %g", m)
	}
	root, err := DaMulticastMemory(10, 5, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(root, math.Log(10)+5, 1e-9) {
		t.Errorf("root memory = %g", root)
	}
	if _, err := DaMulticastMemory(0, 5, 3, false); err == nil {
		t.Error("s=0 accepted")
	}
}

func TestBaselineFormulas(t *testing.T) {
	msgs, err := BroadcastMessages(1110, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(msgs, 1110*(math.Log(1110)+5), 1e-6) {
		t.Errorf("broadcast messages = %g", msgs)
	}
	mem, err := BroadcastMemory(1110, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mem, math.Log(1110)+5, 1e-9) {
		t.Errorf("broadcast memory = %g", mem)
	}
	if BroadcastReliability(5) != GossipReliability(5) {
		t.Error("broadcast reliability mismatch")
	}

	levels := paperLevels()
	mm, err := MulticastMessages(levels)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := DaMulticastMessages(levels)
	if err != nil {
		t.Fatal(err)
	}
	// daMulticast adds only the tiny upward terms over multicast.
	if dm <= mm || dm > mm+20 {
		t.Errorf("daMulticast %g vs multicast %g", dm, mm)
	}
	mmem, err := MulticastMemory(levels)
	if err != nil {
		t.Fatal(err)
	}
	dmem, _ := DaMulticastMemory(1000, 5, 3, false)
	if dmem >= mmem {
		t.Errorf("daMulticast memory %g not below multicast %g", dmem, mmem)
	}
	mr, err := MulticastReliability(levels)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mr, math.Pow(GossipReliability(5), 3), 1e-9) {
		t.Errorf("multicast reliability = %g", mr)
	}

	hm, err := HierarchicalMessages(10, 111, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hm <= 0 {
		t.Errorf("hierarchical messages = %g", hm)
	}
	hmem, err := HierarchicalMemory(10, 111, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(hmem, math.Log(10)+math.Log(111)+10, 1e-9) {
		t.Errorf("hierarchical memory = %g", hmem)
	}
	hr, err := HierarchicalReliability(10, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-10*math.Exp(-5) - math.Exp(-5))
	if !almost(hr, want, 1e-12) {
		t.Errorf("hierarchical reliability = %g want %g", hr, want)
	}

	// Argument validation.
	if _, err := BroadcastMessages(0, 5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := BroadcastMemory(0, 5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := HierarchicalMessages(0, 5, 1, 1); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := HierarchicalMemory(5, 0, 1, 1); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := HierarchicalReliability(0, 1, 1); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := MulticastMessages(nil); err == nil {
		t.Error("nil levels accepted")
	}
	if _, err := MulticastMemory(nil); err == nil {
		t.Error("nil levels accepted")
	}
	if _, err := MulticastReliability(nil); err == nil {
		t.Error("nil levels accepted")
	}
}

// §VI-E.2 comparison. Against multicast and hierarchical broadcast,
// daMulticast's memory is below for the paper's configuration. Against
// plain broadcast the appendix requires ln(n) > ln(sT) + ln(t) for a
// gain — which does NOT hold at n=1110, sT=1000, t=3, so we check both
// directions of that caveat.
func TestMemoryComparisonPaperSetting(t *testing.T) {
	levels := paperLevels()
	da, _ := DaMulticastMemory(1000, 5, 3, false)
	mc, _ := MulticastMemory(levels)
	hc, _ := HierarchicalMemory(3, 370, 5, 5)
	if da >= mc {
		t.Errorf("da %g >= multicast %g", da, mc)
	}
	if da >= hc {
		t.Errorf("da %g >= hierarchical %g", da, hc)
	}
	// Broadcast caveat, small system: no gain expected.
	bcSmall, _ := BroadcastMemory(1110, 5)
	if da < bcSmall {
		t.Errorf("da %g unexpectedly below broadcast %g at n=1110", da, bcSmall)
	}
	// Broadcast caveat, large system (ln n > ln sT + ln t): gain.
	bcLarge, _ := BroadcastMemory(100000, 5)
	if da >= bcLarge {
		t.Errorf("da %g >= broadcast %g at n=100000", da, bcLarge)
	}
}
