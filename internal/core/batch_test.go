package core

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"damulticast/internal/ids"
)

// election is one (target, destination group, event) triple a
// dissemination elected, independent of how events were packed into
// frames.
type election struct {
	to   ids.ProcessID
	dest string
	ev   string
}

// elections expands an env's sent messages (single events and batch
// frames alike) into sorted election triples.
func elections(t *testing.T, sent []sentMsg) []election {
	t.Helper()
	var out []election
	for _, s := range sent {
		switch s.msg.Type {
		case MsgEvent:
			out = append(out, election{to: s.to, dest: string(s.msg.Dest), ev: s.msg.Event.ID.String()})
		case MsgEventBatch:
			if len(s.msg.Events) < 2 {
				t.Errorf("batch frame to %s carries %d events; singletons must use MsgEvent", s.to, len(s.msg.Events))
			}
			for _, ev := range s.msg.Events {
				out = append(out, election{to: s.to, dest: string(s.msg.Dest), ev: ev.ID.String()})
			}
		default:
			t.Fatalf("unexpected %s frame", s.msg.Type)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.to != b.to {
			return a.to < b.to
		}
		if a.dest != b.dest {
			return a.dest < b.dest
		}
		return a.ev < b.ev
	})
	return out
}

// TestPublishBatchMatchesSequentialElections pins the RNG contract of
// the batched path: PublishBatch draws the random stream exactly as
// the same sequence of Publish calls would, so the elected (target,
// group, event) triples are identical — only the framing differs.
func TestPublishBatchMatchesSequentialElections(t *testing.T) {
	contacts := []ids.ProcessID{"m1", "m2", "m3", "m4", "m5", "m6"}
	build := func() (*Process, *fakeEnv) {
		env := newFakeEnv(42)
		p := MustNewProcess("p", ".a", testParams(), env)
		p.SeedTopicTable(contacts)
		return p, env
	}

	payloads := [][]byte{[]byte("e0"), []byte("e1"), []byte("e2"), []byte("e3")}

	seqProc, seqEnv := build()
	for _, pl := range payloads {
		if _, err := seqProc.Publish(pl); err != nil {
			t.Fatal(err)
		}
	}

	batchProc, batchEnv := build()
	evs, err := batchProc.PublishBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(payloads) {
		t.Fatalf("PublishBatch returned %d events, want %d", len(evs), len(payloads))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("p#%d", i+1); ev.ID.String() != want {
			t.Errorf("event %d id = %s, want %s", i, ev.ID, want)
		}
	}

	seq, batch := elections(t, seqEnv.sent), elections(t, batchEnv.sent)
	if len(seq) != len(batch) {
		t.Fatalf("election counts differ: sequential %d, batched %d", len(seq), len(batch))
	}
	for i := range seq {
		if seq[i] != batch[i] {
			t.Fatalf("election %d differs: sequential %+v, batched %+v", i, seq[i], batch[i])
		}
	}
	// The whole point: the batched path needs fewer frames whenever any
	// target was elected for more than one event (with fanout ln(6)+5
	// over 6 contacts and 4 events, some always is).
	if len(batchEnv.sent) >= len(seqEnv.sent) {
		t.Errorf("batched path sent %d frames, sequential %d — no coalescing happened",
			len(batchEnv.sent), len(seqEnv.sent))
	}
	var sawBatch bool
	for _, s := range batchEnv.sent {
		if s.msg.Type == MsgEventBatch {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Error("no MsgEventBatch frame emitted")
	}
	// Coalescing contract: at most one frame per (target, dest) pair.
	type pair struct {
		to   ids.ProcessID
		dest string
	}
	seen := make(map[pair]bool)
	for _, s := range batchEnv.sent {
		k := pair{to: s.to, dest: string(s.msg.Dest)}
		if seen[k] {
			t.Errorf("two frames for pair %+v", k)
		}
		seen[k] = true
	}
}

// TestOnEventBatchDeliversAndForwards: receiving a batch frame
// delivers each first-time event once, re-disseminates them (also
// coalesced), and silently skips duplicates — exactly like the same
// events arriving one frame each.
func TestOnEventBatchDeliversAndForwards(t *testing.T) {
	env := newFakeEnv(7)
	p := MustNewProcess("p", ".a", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"m1", "m2", "m3"})

	evA := &Event{ID: ids.EventID{Origin: "q", Seq: 1}, Topic: ".a", Payload: []byte("a")}
	evB := &Event{ID: ids.EventID{Origin: "q", Seq: 2}, Topic: ".a", Payload: []byte("b")}
	batch := &Message{Type: MsgEventBatch, From: "q", FromTopic: ".a", Dest: ".a", Events: []*Event{evA, evB}}
	p.HandleMessage(batch)
	if len(env.delivered) != 2 {
		t.Fatalf("delivered %d events, want 2", len(env.delivered))
	}
	if env.delivered[0].ID != evA.ID || env.delivered[1].ID != evB.ID {
		t.Errorf("delivered ids %v %v", env.delivered[0].ID, env.delivered[1].ID)
	}
	// Delivered events are clones, never the inbound structs (the hub
	// may decode into reusable scratch).
	if env.delivered[0] == evA {
		t.Error("delivered event aliases the inbound message")
	}
	forwarded := len(env.sent)
	if forwarded == 0 {
		t.Error("first-time batch events were not re-disseminated")
	}

	// The same batch again, plus one fresh event: only the fresh one
	// acts.
	env.reset()
	evC := &Event{ID: ids.EventID{Origin: "q", Seq: 3}, Topic: ".a", Payload: []byte("c")}
	p.HandleMessage(&Message{Type: MsgEventBatch, From: "q", FromTopic: ".a", Dest: ".a", Events: []*Event{evA, nil, evB, evC}})
	if len(env.delivered) != 1 || env.delivered[0].ID != evC.ID {
		t.Fatalf("re-handled batch delivered %v, want just %v", env.delivered, evC.ID)
	}
}

// TestPublishBatchLifecycle: empty batches are a no-op, and a stopped
// process refuses batches like single publishes.
func TestPublishBatchLifecycle(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p", ".a", testParams(), env)
	evs, err := p.PublishBatch(nil)
	if err != nil || evs != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", evs, err)
	}
	p.Leave()
	if _, err := p.PublishBatch([][]byte{[]byte("x")}); !errors.Is(err, ErrStopped) {
		t.Errorf("stopped PublishBatch err = %v, want ErrStopped", err)
	}
}

// TestRetainsEvents: only processes with a recovery store retain event
// pointers past HandleMessage (the hub's clone gate keys off this).
func TestRetainsEvents(t *testing.T) {
	env := newFakeEnv(1)
	if p := MustNewProcess("p", ".a", testParams(), env); p.RetainsEvents() {
		t.Error("process without recovery store claims to retain events")
	}
	params := testParams()
	params.RecoverPeriod = 4
	if p := MustNewProcess("q", ".a", params, newFakeEnv(2)); !p.RetainsEvents() {
		t.Error("recovery-enabled process does not claim to retain events")
	}
}

// TestEventBatchPropagatesThroughGroup: a batch published into a
// connected group reaches every member intact, across gossip hops
// (batches re-disseminate as batches, not one frame per event).
func TestEventBatchPropagatesThroughGroup(t *testing.T) {
	k := newKernel(3)
	params := testParams()
	ps := make([]*Process, 0, 6)
	idsList := make([]ids.ProcessID, 0, 6)
	for i := 0; i < 6; i++ {
		id := ids.ProcessID(fmt.Sprintf("n%d", i))
		idsList = append(idsList, id)
		ps = append(ps, k.add(id, ".g", params))
	}
	for _, p := range ps {
		p.SeedTopicTable(idsList)
	}
	payloads := [][]byte{[]byte("p0"), []byte("p1"), []byte("p2"), []byte("p3"), []byte("p4")}
	if _, err := ps[0].PublishBatch(payloads); err != nil {
		t.Fatal(err)
	}
	k.pump(10000)
	for _, id := range idsList[1:] {
		got := make(map[string]bool)
		for _, ev := range k.delivered[id] {
			got[string(ev.Payload)] = true
		}
		if len(got) != len(payloads) {
			t.Errorf("%s delivered %d distinct events, want %d", id, len(got), len(payloads))
		}
	}
}
