package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/topic"
)

// These tests exercise the protocol's self-healing under churn: crashed
// superprocesses are detected by the timeout-based CHECK, evicted, and
// replaced with fresh contacts obtained via NEWPROCESS — or, when the
// whole table dies, via a restarted FIND_SUPER_CONTACT.

// churnKernelParams enables all periodic tasks with deterministic
// election.
func churnKernelParams() Params {
	p := DefaultParams()
	p.ShufflePeriod = 1
	p.MaintainPeriod = 1
	p.PingTimeout = 1
	p.FindSuperPeriod = 2
	p.MaxAge = 20
	p.G = 1 << 20 // pSel = 1: maintenance always runs
	p.A = 3       // pA = 1
	return p
}

// stopInKernel marks the process stopped so it drops pings (the kernel
// has no independent down-state; Stop is the crash model here).
func TestSuperTableSelfHealsAfterCrash(t *testing.T) {
	k := newKernel(31)
	params := churnKernelParams()

	// Supergroup .a of 6; subscriber group .a.b of 1.
	var supers []*Process
	for i := 0; i < 6; i++ {
		supers = append(supers, k.add(ids.ProcessID(fmt.Sprintf("s%d", i)), ".a", params))
	}
	var sids []ids.ProcessID
	for _, s := range supers {
		sids = append(sids, s.ID())
	}
	for _, s := range supers {
		s.SetTopicTableCap(8)
		s.SeedTopicTable(sids)
	}
	child := k.add("c0", ".a.b", params)
	child.SeedSuperTable(".a", []ids.ProcessID{"s0", "s1", "s2"})

	// Crash two of the three linked superprocesses.
	k.procs["s0"].Stop()
	k.procs["s1"].Stop()

	for i := 0; i < 20; i++ {
		k.tickAll(1 << 16)
	}
	table := child.SuperTable()
	if len(table) == 0 {
		t.Fatal("super table empty after healing window")
	}
	for _, id := range table {
		if id == "s0" || id == "s1" {
			t.Errorf("crashed process %s still in super table", id)
		}
	}
	// The table must have been replenished beyond the lone survivor.
	if len(table) < 2 {
		t.Errorf("table not replenished: %v", table)
	}
}

func TestTotalSuperDeathTriggersRebootstrap(t *testing.T) {
	k := newKernel(37)
	params := churnKernelParams()
	params.NeighborhoodFanout = 8
	params.ReqContactTTL = 4

	// Two disjoint pools of .a processes: the "old" pool (will die)
	// and the "new" pool (only discoverable via the overlay).
	var oldPool, newPool []*Process
	for i := 0; i < 3; i++ {
		oldPool = append(oldPool, k.add(ids.ProcessID(fmt.Sprintf("old%d", i)), ".a", params))
	}
	for i := 0; i < 3; i++ {
		newPool = append(newPool, k.add(ids.ProcessID(fmt.Sprintf("new%d", i)), ".a", params))
	}
	seed := func(g []*Process) {
		var all []ids.ProcessID
		for _, p := range g {
			all = append(all, p.ID())
		}
		for _, p := range g {
			p.SetTopicTableCap(8)
			p.SeedTopicTable(all)
		}
	}
	seed(oldPool)
	seed(newPool)

	child := k.add("c0", ".a.b", params)
	child.SeedSuperTable(".a", []ids.ProcessID{"old0", "old1", "old2"})

	for _, p := range oldPool {
		p.Stop()
	}
	for i := 0; i < 40 && len(child.SuperTable()) == 0 || i < 5; i++ {
		k.tickAll(1 << 16)
	}
	// After the old pool dies, the child must find the new pool via
	// FIND_SUPER_CONTACT through the overlay.
	table := child.SuperTable()
	if len(table) == 0 {
		t.Fatal("child never re-bootstrapped after total super death")
	}
	for _, id := range table {
		switch id {
		case "new0", "new1", "new2":
		default:
			t.Errorf("unexpected super contact %s", id)
		}
	}
}

func TestCrashRecoveryRejoinsDissemination(t *testing.T) {
	k := newKernel(41)
	params := churnKernelParams()
	var group []*Process
	for i := 0; i < 6; i++ {
		group = append(group, k.add(ids.ProcessID(fmt.Sprintf("g%d", i)), ".a", params))
	}
	var gids []ids.ProcessID
	for _, p := range group {
		gids = append(gids, p.ID())
	}
	for _, p := range group {
		p.SetTopicTableCap(8)
		p.SeedTopicTable(gids)
	}

	// g5 crashes, misses an event, recovers, and receives the next.
	group[5].Stop()
	if _, err := group[0].Publish([]byte("while-down")); err != nil {
		t.Fatal(err)
	}
	k.pump(1 << 16)
	if got := k.delivered["g5"]; len(got) != 0 {
		t.Fatalf("crashed process delivered: %v", got)
	}

	group[5].Restart()
	ev2, err := group[0].Publish([]byte("after-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	k.pump(1 << 16)
	got := k.delivered["g5"]
	if len(got) != 1 || got[0].ID != ev2.ID {
		t.Fatalf("recovered process deliveries = %v", got)
	}
}

// Membership churn: with shuffles enabled, a group seeded as a ring
// converges to full views and disseminates reliably afterwards.
func TestRingSeededGroupConvergesAndDisseminates(t *testing.T) {
	k := newKernel(43)
	params := churnKernelParams()
	params.GroupSizeHint = 12
	const n = 12
	var group []*Process
	for i := 0; i < n; i++ {
		group = append(group, k.add(ids.ProcessID(fmt.Sprintf("r%d", i)), ".ring", params))
	}
	// Ring: each knows only its successor.
	for i, p := range group {
		p.SeedTopicTable([]ids.ProcessID{group[(i+1)%n].ID()})
	}
	for i := 0; i < 30; i++ {
		k.tickAll(1 << 16)
	}
	// Views should have grown well beyond the single seed.
	for _, p := range group {
		if len(p.TopicTable()) < 3 {
			t.Errorf("%s view stuck at %d entries", p.ID(), len(p.TopicTable()))
		}
	}
	ev, err := group[0].Publish([]byte("converged"))
	if err != nil {
		t.Fatal(err)
	}
	k.pump(1 << 16)
	reached := 0
	for _, p := range group[1:] {
		for _, d := range k.delivered[p.ID()] {
			if d.ID == ev.ID {
				reached++
				break
			}
		}
	}
	if reached < n-2 { // allow one unlucky miss
		t.Errorf("event reached only %d/%d after convergence", reached, n-1)
	}
}

func TestStoppedProcessSilent(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", churnKernelParams(), env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1"})
	p.Stop()
	for i := 0; i < 10; i++ {
		p.Tick()
	}
	if len(env.sent) != 0 {
		t.Errorf("stopped process sent %d messages", len(env.sent))
	}
	p.HandleMessage(&Message{Type: MsgPing, From: "x"})
	if len(env.sent) != 0 {
		t.Error("stopped process answered a ping")
	}
	_ = topic.Root // keep the import for clarity of intent above
}
