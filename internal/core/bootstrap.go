package core

import (
	"damulticast/internal/ids"
	"damulticast/internal/topic"
)

// StartFindSuperContact launches the FIND_SUPER_CONTACT task (Fig. 4)
// if the process is not in the root group and the task is not already
// running. The first wave searches for processes interested in
// super(Ti); every FindSuperPeriod ticks without an answer the scope
// widens by one level, up to the root.
func (p *Process) StartFindSuperContact() {
	if p.stopped || p.topic.IsRoot() || p.findSuper != nil {
		return
	}
	p.nextSeq++ // reuse the sequence counter for unique request ids
	p.findSuper = &findSuperState{
		searchTopics: []topic.Topic{p.topic.Super()},
		lastWave:     p.tick,
		reqID:        p.nextSeq,
	}
	p.sendReqContactWave()
}

// FindSuperRunning reports whether the bootstrap task is active.
func (p *Process) FindSuperRunning() bool { return p.findSuper != nil }

// findSuperTick widens the search scope after FindSuperPeriod silent
// ticks and re-floods (Fig. 4 lines 19-27).
func (p *Process) findSuperTick() {
	fs := p.findSuper
	if fs == nil {
		return
	}
	if p.tick-fs.lastWave < p.params.FindSuperPeriod {
		return
	}
	// Timeout: enlarge the scope with the supertopic of the last
	// (shallowest) searched topic, unless we already reached the root
	// or a known supergroup bounds the search (once contacts for some
	// inducing topic exist, the search stays strictly below it —
	// Fig. 4 line 34).
	last := fs.searchTopics[len(fs.searchTopics)-1]
	if !last.IsRoot() {
		next := last.Super()
		if p.superKnown == "" || p.superKnown.StrictlyIncludes(next) {
			fs.searchTopics = append(fs.searchTopics, next)
		}
	}
	// Each wave gets a fresh request id so relays that deduplicated an
	// earlier (narrower) wave still process the widened one.
	p.nextSeq++
	fs.reqID = p.nextSeq
	fs.lastWave = p.tick
	p.sendReqContactWave()
}

// sendReqContactWave floods a REQCONTACT to the bootstrap
// neighborhood.
func (p *Process) sendReqContactWave() {
	fs := p.findSuper
	if fs == nil {
		return
	}
	neighbors := p.env.Neighborhood(p.params.NeighborhoodFanout)
	for _, n := range neighbors {
		if n == p.id {
			continue
		}
		p.env.Send(n, &Message{
			Type:         MsgReqContact,
			From:         p.id,
			FromTopic:    p.topic,
			Origin:       p.id,
			OriginTopic:  p.topic,
			SearchTopics: append([]topic.Topic(nil), fs.searchTopics...),
			TTL:          p.params.ReqContactTTL,
			ReqID:        fs.reqID,
		})
	}
}

// onReqContact handles a REQCONTACT (Fig. 4 lines 4-13): if this
// process can answer — it is itself interested in one of the searched
// topics, or its tables know processes that are — it replies with an
// ANSCONTACT; otherwise it forwards the request to its own
// neighborhood while the TTL lasts.
//
// Duplicate waves are suppressed with the (origin, reqID, TTL) tuple
// folded into the seen-set ("done only the first time the message is
// received").
func (p *Process) onReqContact(m *Message) {
	if m.Origin == p.id {
		return
	}
	// Duplicate suppression: one handling per (origin, request) wave.
	dedupID := reqDedupID(m)
	if !p.seen.Add(dedupID) {
		return
	}

	answered := false
	for _, searched := range m.SearchTopics {
		// Case 1: we are interested in the searched topic. We answer
		// with ourselves plus group mates.
		if p.topic == searched {
			contacts := append(p.topicTable.IDs(), p.id)
			p.send(m.Origin, &Message{
				Type:          MsgAnsContact,
				From:          p.id,
				FromTopic:     p.topic,
				Dest:          m.OriginTopic,
				Contacts:      contacts,
				ContactsTopic: p.topic,
				ReqID:         m.ReqID,
			})
			answered = true
			break
		}
		// Case 2: our supertopic table holds contacts for the searched
		// topic.
		if p.superKnown == searched && p.superTable.Len() > 0 {
			p.send(m.Origin, &Message{
				Type:          MsgAnsContact,
				From:          p.id,
				FromTopic:     p.topic,
				Dest:          m.OriginTopic,
				Contacts:      p.superTable.IDs(),
				ContactsTopic: p.superKnown,
				ReqID:         m.ReqID,
			})
			answered = true
			break
		}
	}
	if answered {
		return
	}
	// Forward the search while the TTL lasts ("if initMsg has not
	// expired", Fig. 4 line 10).
	if m.TTL <= 0 {
		return
	}
	fwd := *m
	fwd.From = p.id
	fwd.FromTopic = p.topic
	fwd.Dest = "" // a flood stays undirected; receivers demux by type
	fwd.TTL = m.TTL - 1
	for _, n := range p.env.Neighborhood(p.params.NeighborhoodFanout) {
		if n == p.id || n == m.Origin {
			continue
		}
		p.env.Send(n, &fwd)
	}
}

// reqDedupID folds a REQCONTACT wave identity into an EventID so the
// shared seen-set can suppress duplicates.
//
// The origin is marked with a "#req" suffix: request ids draw from the
// same per-process sequence counter as event ids, and on a multiplexed
// endpoint every member process floods waves under the same transport
// address. An unmarked {origin, reqID} tuple can therefore collide
// with a real event id — the seen-set would then swallow the event as
// a "duplicate" and the group silently loses it. Marked, request waves
// deduplicate only among themselves.
func reqDedupID(m *Message) ids.EventID {
	return ids.EventID{Origin: m.Origin + "#req", Seq: m.ReqID}
}

// onAnsContact handles an ANSCONTACT (Fig. 4 lines 30-37): merge the
// contacts, stop the task if they are for the direct supertopic,
// otherwise narrow the search to topics deeper than the one found
// (line 34: "remove all Tj in initMsg that include Tx").
func (p *Process) onAnsContact(m *Message) {
	if len(m.Contacts) == 0 || m.ContactsTopic == "" {
		return
	}
	p.adoptSuper(m.ContactsTopic, m.Contacts)

	fs := p.findSuper
	if fs == nil {
		return
	}
	if m.ContactsTopic == p.topic.Super() {
		// Found the direct supertopic: task complete (lines 31-32).
		p.findSuper = nil
		return
	}
	// Narrow: drop searched topics that include (are shallower than)
	// the answered topic; keep searching only strictly deeper ones.
	kept := fs.searchTopics[:0]
	for _, t := range fs.searchTopics {
		if !t.Includes(m.ContactsTopic) {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		// Everything searched was at or above the answer; restart the
		// narrowed search from the direct supertopic downward-up.
		kept = append(kept, p.topic.Super())
	}
	fs.searchTopics = kept
}

func (p *Process) send(to ids.ProcessID, m *Message) {
	if to == p.id {
		return
	}
	p.env.Send(to, m)
}
