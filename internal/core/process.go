package core

import (
	"fmt"
	"math"
	"math/rand"

	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Env is the driver-provided environment a Process runs in. The
// simulator implements it with synchronous-round queues and counters;
// the live runtime implements it with transports and channels.
//
// Implementations must be usable from the single goroutine driving the
// Process; the Process itself never spawns goroutines. Drivers that
// run many Processes concurrently (the sharded simulation kernel in
// internal/simnet) must give every Process its own Env with a private
// Rand stream (see xrand.NewStream) and per-process buffers: a Process
// only ever touches its own Env, so per-process Envs need no locking,
// and private streams keep runs deterministic regardless of how
// processes interleave across goroutines.
type Env interface {
	// Send transmits m to the process identified by to, best-effort
	// (the channel may drop it; the paper assumes unreliable links).
	Send(to ids.ProcessID, m *Message)
	// Deliver hands a first-time event to the application.
	Deliver(ev *Event)
	// Neighborhood returns up to k processes from the weakly
	// consistent global overlay (the paper's neighborhood(p), used
	// only during bootstrap). May return fewer, or none.
	Neighborhood(k int) []ids.ProcessID
	// Rand is the process's random source (seedable for
	// reproducibility).
	Rand() *rand.Rand
}

// SendBatcher is an optional Env extension for envs that can transmit
// one message to many targets more cheaply than repeated Send calls —
// the live runtime serializes the message once and fans the same
// frame out to every target. The Process routes its event fan-out and
// leave announcements through it when available.
//
// Contract: targets is only valid for the duration of the call (the
// Process reuses the slice), and m is shared across all targets and
// possibly retained by simulators, so receivers must treat it as
// immutable.
type SendBatcher interface {
	SendBatch(targets []ids.ProcessID, m *Message)
}

// Process is one daMulticast process: a member of exactly one topic
// group (paper §III-A). It is a deterministic message-driven state
// machine: feed it messages via HandleMessage and time via Tick.
//
// Not goroutine-safe; one owner drives it.
type Process struct {
	id     ids.ProcessID
	topic  topic.Topic
	params Params
	env    Env

	// Topic table (Table_l^Ti): partial view over the group of
	// processes interested in the same topic, maintained by the
	// underlying membership substrate.
	topicTable *membership.View
	gossiper   *membership.Gossiper

	// Supertopic table (sTable_l^Ti): constant-size set of contacts
	// interested in superKnown. superKnown is super(Ti) when direct
	// superprocesses are known, otherwise the nearest supertopic that
	// "induces" Ti for which contacts were found. Empty topic means
	// "nothing known yet".
	superTable *membership.View
	superKnown topic.Topic

	// Liveness bookkeeping for the CHECK of Fig. 6: last tick at
	// which each supertopic-table entry proved alive, and the tick at
	// which we last pinged it.
	superSeen   map[ids.ProcessID]int
	pingStarted int // tick of the outstanding ping wave; -1 if none

	// Multiple-inheritance extension (§VIII): one extra supertopic
	// table per application-declared additional parent topic. Nil
	// until AddExtraSuperTable is called. extraOrder holds the topics
	// sorted: every RNG-consuming or send-emitting walk over the
	// tables uses it, so runs stay deterministic regardless of map
	// iteration order.
	extras     map[topic.Topic]*membership.View
	extraSeen  map[topic.Topic]map[ids.ProcessID]int
	extraOrder []topic.Topic

	seen    *ids.SeenSet
	nextSeq uint64

	// Anti-entropy recovery state (recover.go): the bounded store of
	// recently seen events served to peers, the ticks of the last
	// intra-group and cross-group recovery waves, the learned subgroup
	// contacts the downward cross wave digests to, and the subsystem's
	// counters. store is nil when RecoverPeriod is 0 (recovery
	// disabled); subContacts stays empty unless CrossRecoverPeriod > 0.
	store            *eventStore
	lastRecover      int
	lastCrossRecover int
	subContacts      []subContact
	recoverStats     recoveryCounters

	// batcher caches the env's optional SendBatcher implementation
	// (one type assertion at construction, not one per event).
	batcher SendBatcher
	// batch is the reusable target-collection buffer for fan-outs.
	batch []ids.ProcessID
	// segs is the reusable destination-group segmentation of batch:
	// fan-outs that cross group boundaries (dissemination reaching the
	// supergroup, leave announcements) carry a different wire Dest per
	// group, so the batch is sent one contiguous segment per group.
	segs []groupSeg
	// accum is the reusable multi-event coalescing accumulator for the
	// batched dissemination paths (batch.go); nil while one is in use.
	accum *batchAccum

	findSuper *findSuperState

	tick         int
	lastShuffle  int
	lastMaintain int

	// stopped marks an unsubscribed/crashed process: it drops all
	// input. The simulator uses this for stillborn failures.
	stopped bool
}

// findSuperState is the FIND_SUPER_CONTACT task (Fig. 4).
type findSuperState struct {
	// searchTopics is the paper's initMsg: the list of supertopics
	// currently searched, deepest first. It grows toward the root on
	// every timeout.
	searchTopics []topic.Topic
	// lastWave is the tick of the last REQCONTACT wave.
	lastWave int
	// reqID tags this task's waves for duplicate suppression.
	reqID uint64
}

// NewProcess creates a process interested in tp, with empty tables.
// The topic table capacity is (B+1)·ln(sizeHint) when
// params.GroupSizeHint > 0, else a default minimum that grows as the
// view fills (re-derived on demand).
func NewProcess(id ids.ProcessID, tp topic.Topic, params Params, env Env) (*Process, error) {
	if !tp.Valid() {
		return nil, fmt.Errorf("core: invalid topic %q", string(tp))
	}
	params = params.withDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	cap := xrand.ViewSize(params.GroupSizeHint, params.B)
	if cap < 4 {
		cap = 4 // minimum working view for tiny/unknown groups
	}
	p := &Process{
		id:          id,
		topic:       tp,
		params:      params,
		env:         env,
		topicTable:  membership.NewView(id, cap),
		superTable:  membership.NewView(id, params.Z),
		superSeen:   make(map[ids.ProcessID]int, params.Z),
		seen:        ids.NewSeenSet(params.SeenCap),
		pingStarted: -1,
	}
	p.gossiper = membership.NewGossiper(id, p.topicTable)
	p.batcher, _ = env.(SendBatcher)
	if p.recoveryEnabled() {
		p.store = newEventStore(params.RecoverStoreCap)
	}
	return p, nil
}

// sendToAll transmits one shared message to every target, through the
// env's batch path when it has one. Callers hand over p.batch (or any
// scratch slice); the env must not retain it.
func (p *Process) sendToAll(targets []ids.ProcessID, m *Message) {
	if len(targets) == 0 {
		return
	}
	if p.batcher != nil {
		p.batcher.SendBatch(targets, m)
		return
	}
	for _, to := range targets {
		p.env.Send(to, m)
	}
}

// groupSeg marks one destination group's contiguous slice of a batched
// target list: targets[start:end] (start is the previous segment's
// end) all belong to the group subscribed to dest.
type groupSeg struct {
	dest topic.Topic
	end  int
}

// appendSeg closes the segment covering targets added since the last
// boundary. Empty segments are skipped.
func appendSeg(segs []groupSeg, dest topic.Topic, end int) []groupSeg {
	start := 0
	if len(segs) > 0 {
		start = segs[len(segs)-1].end
	}
	if end == start {
		return segs
	}
	return append(segs, groupSeg{dest: dest, end: end})
}

// sendSegments fans one logical message out over a segmented target
// list: each destination group gets its own copy of proto with the
// matching wire Dest, sent via sendToAll (so batch-capable envs still
// serialize once per group). The first segment reuses proto itself —
// the dominant all-intra-group fan-out costs exactly one Message, as
// before segmentation. Receivers may retain the sent messages, so a
// message handed to the env is never mutated again.
func (p *Process) sendSegments(targets []ids.ProcessID, segs []groupSeg, proto *Message) {
	start := 0
	for i, s := range segs {
		m := proto
		if i > 0 {
			cp := *proto
			m = &cp
		}
		m.Dest = s.dest
		p.sendToAll(targets[start:s.end], m)
		start = s.end
	}
}

// MustNewProcess is NewProcess for tests and fixtures with known-good
// arguments.
func MustNewProcess(id ids.ProcessID, tp topic.Topic, params Params, env Env) *Process {
	p, err := NewProcess(id, tp, params, env)
	if err != nil {
		panic(err)
	}
	return p
}

// ID returns the process identifier.
func (p *Process) ID() ids.ProcessID { return p.id }

// Topic returns the topic this process is interested in.
func (p *Process) Topic() topic.Topic { return p.topic }

// Params returns the protocol constants in force.
func (p *Process) Params() Params { return p.params }

// TopicTable returns the current topic-table member ids.
func (p *Process) TopicTable() []ids.ProcessID { return p.topicTable.IDs() }

// SuperTable returns the current supertopic-table member ids.
func (p *Process) SuperTable() []ids.ProcessID { return p.superTable.IDs() }

// SuperKnownTopic returns the topic the supertopic-table entries are
// interested in ("" when the table is uninitialized).
func (p *Process) SuperKnownTopic() topic.Topic { return p.superKnown }

// MemoryComplexity returns the total membership entries held — the
// quantity bounded by ln(S)+c+z in §VI-C (plus z per declared extra
// supertopic under the §VIII multiple-inheritance extension).
func (p *Process) MemoryComplexity() int {
	total := p.topicTable.Len() + p.superTable.Len()
	for _, v := range p.extras {
		total += v.Len()
	}
	return total
}

// Stopped reports whether the process has been stopped.
func (p *Process) Stopped() bool { return p.stopped }

// Stop makes the process inert (crash / unsubscribe). All subsequent
// input is dropped.
func (p *Process) Stop() { p.stopped = true }

// Restart clears the stopped flag (crash-recovery model of §III-A).
// Tables survive; staleness is handled by the membership substrate.
func (p *Process) Restart() { p.stopped = false }

// SeedTopicTable installs contacts into the topic table (bootstrap or
// simulator static setup).
func (p *Process) SeedTopicTable(contacts []ids.ProcessID) {
	p.topicTable.MergeIDs(contacts)
}

// SeedSuperTable installs supertopic contacts known to be interested
// in sup. Used by bootstrap-with-contacts (Fig. 4 lines 5-8) and the
// simulator's static setup.
func (p *Process) SeedSuperTable(sup topic.Topic, contacts []ids.ProcessID) {
	if len(contacts) == 0 {
		return
	}
	p.adoptSuper(sup, contacts)
}

// SetTopicTableCap resizes the topic table (the simulator sizes it as
// (b+1)·ln(S) with the true S).
func (p *Process) SetTopicTableCap(capacity int) { p.topicTable.SetCap(capacity) }

// groupSize estimates S_Ti. With a hint, the hint wins; otherwise we
// invert the (B+1)·ln(S) table-sizing rule on the observed table
// occupancy (floor 2 so ln(S) > 0).
func (p *Process) groupSize() int {
	if p.params.GroupSizeHint > 0 {
		return p.params.GroupSizeHint
	}
	occ := p.topicTable.Len()
	if occ == 0 {
		return 1
	}
	s := int(math.Ceil(math.Exp(float64(occ) / (p.params.B + 1))))
	if s < occ+1 {
		s = occ + 1
	}
	return s
}

// pSel returns the self-election probability g/S (paper §V-B).
func (p *Process) pSel() float64 { return xrand.PSel(p.params.G, p.groupSize()) }

// pA returns the per-superprocess send probability a/z.
func (p *Process) pA() float64 { return xrand.PA(p.params.A, p.params.Z) }

// fanout returns ln(S)+c, the intra-group dissemination fanout.
func (p *Process) fanout() int { return xrand.Fanout(p.groupSize(), p.params.C) }

// adoptSuper merges contacts for topic sup into the supertopic table.
// A strictly deeper (closer to p.topic) supertopic supersedes the old
// table entirely; same-topic contacts merge; shallower ones are
// ignored once something better is known.
func (p *Process) adoptSuper(sup topic.Topic, contacts []ids.ProcessID) {
	if !sup.StrictlyIncludes(p.topic) {
		return // not a supertopic of ours; refuse
	}
	switch {
	case p.superKnown == "" || sup.Depth() > p.superKnown.Depth():
		// Better (deeper) supergroup found: restart the table.
		p.superTable = membership.NewView(p.id, p.params.Z)
		p.superSeen = make(map[ids.ProcessID]int, p.params.Z)
		p.superKnown = sup
	case sup != p.superKnown:
		return // shallower than what we already track
	}
	for _, c := range contacts {
		if p.superTable.Add(c) {
			p.superSeen[c] = p.tick
		}
	}
}

// HandleMessage feeds one received message into the state machine.
// Stopped processes drop everything (a crashed process neither
// receives nor sends).
func (p *Process) HandleMessage(m *Message) {
	if p.stopped || m == nil {
		return
	}
	if p.crossRecoveryEnabled() {
		p.noteSubContact(m.From, m.FromTopic)
	}
	switch m.Type {
	case MsgEvent:
		p.onEvent(m)
	case MsgEventBatch:
		p.onEventBatch(m)
	case MsgReqContact:
		p.onReqContact(m)
	case MsgAnsContact:
		p.onAnsContact(m)
	case MsgNewProcessReq:
		p.onNewProcessReq(m)
	case MsgNewProcessAns:
		p.onNewProcessAns(m)
	case MsgShuffle:
		p.onShuffle(m)
	case MsgShuffleReply:
		p.onShuffleReply(m)
	case MsgPing:
		p.onPing(m)
	case MsgPong:
		p.onPong(m)
	case MsgLeave:
		p.onLeave(m)
	case MsgDigest:
		p.onDigest(m)
	case MsgDigestAns:
		p.onDigestAns(m)
	}
}

// Tick advances logical time by one step and runs periodic tasks:
// membership shuffle + aging (ShufflePeriod), KEEP_TABLE_UPDATED
// (MaintainPeriod) and FIND_SUPER_CONTACT timeouts (FindSuperPeriod).
func (p *Process) Tick() {
	if p.stopped {
		return
	}
	p.tick++
	if sp := p.params.ShufflePeriod; sp > 0 && p.tick-p.lastShuffle >= sp {
		p.lastShuffle = p.tick
		p.doShuffle()
	}
	if mp := p.params.MaintainPeriod; mp > 0 && p.tick-p.lastMaintain >= mp {
		p.lastMaintain = p.tick
		p.keepTableUpdated()
	}
	if rp := p.params.RecoverPeriod; rp > 0 && p.tick-p.lastRecover >= rp {
		p.lastRecover = p.tick
		p.doRecover()
	}
	if cp := p.params.CrossRecoverPeriod; cp > 0 && p.tick-p.lastCrossRecover >= cp {
		p.lastCrossRecover = p.tick
		p.doCrossRecover()
	}
	if p.findSuper != nil {
		p.findSuperTick()
	}
}

// Now returns the process's logical tick (for tests).
func (p *Process) Now() int { return p.tick }
