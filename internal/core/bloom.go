package core

// Bloom-filter digests for the anti-entropy recovery exchange. PR 4's
// digests listed raw event ids and were capped at the newest 4096 — a
// store of 100k events could never be advertised whole, and the cap was
// silent. A bloom filter represents the full store in RecoverDigestBits
// bits per event (10 bits ≈ 1% false positives), so a 100k-event store
// digests into ~125 KiB: one transport frame with room to spare.
//
// The price of the compression is one-sided error: a filter may claim
// the sender holds an event it never saw, and the peer then withholds
// ("suppresses") the push. Correctness survives because the error is
// never repeated deterministically — every digest is hashed under a
// fresh seed derived from (tick, process id) via xrand.SeedFor, so an
// id that false-positives this wave almost surely does not at the next,
// and the suppressed event is pushed then. Convergence is delayed by a
// wave, never prevented.
//
// Hashing is double hashing (Kirsch–Mitzenmacher): two 64-bit FNV-1a/
// splitmix64 hashes h1, h2 of (seed, origin, seq) generate the k probe
// positions h1 + i·h2. h2 is forced odd so probes cycle through all bit
// positions. Everything here is pure: same (seed, id) → same bits, on
// any worker, which keeps the simulation kernel's determinism contract.

import (
	"math"

	"damulticast/internal/ids"
)

// maxRecoverDigestBytes caps one digest's filter size so it always fits
// a live transport frame (TCPTransport.MaxFrame defaults to 1 MiB) with
// generous headroom for the envelope. When a store is so large that
// RecoverDigestBits per entry would exceed the cap, the filter is built
// at the cap anyway — every id is still inserted, at a degraded
// false-positive rate — and the truncation is counted, never silent.
const maxRecoverDigestBytes = 256 << 10

// minRecoverDigestBits floors the filter so tiny stores do not build
// degenerate one-byte filters with pathological false-positive rates.
const minRecoverDigestBits = 64

// bloomHashes derives the double-hashing pair for id under seed. h2 is
// odd, so h1 + i·h2 (mod any m) walks m distinct positions.
func bloomHashes(seed uint64, id ids.EventID) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= prime64
	}
	for i := 0; i < len(id.Origin); i++ {
		h ^= uint64(id.Origin[i])
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		h ^= (id.Seq >> (8 * i)) & 0xff
		h *= prime64
	}
	return bloomMix(h), bloomMix(h^0x9e3779b97f4a7c15) | 1
}

// bloomMix is the splitmix64 finalizer (the same avalanche xrand.SeedFor
// uses), turning the raw FNV state into a well-distributed 64-bit hash.
func bloomMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// bloomLayout sizes a filter for n entries at bitsPerEntry: the byte
// length of the bit array, the probe count k matched to the *actual*
// bits-per-entry ratio (k = ratio·ln2, the optimum), and whether the
// byte cap truncated the requested size.
func bloomLayout(n, bitsPerEntry int) (bytes, k int, truncated bool) {
	if n <= 0 {
		return 0, 0, false
	}
	if bitsPerEntry == DigestBitsAdaptive {
		bitsPerEntry = adaptiveDigestBits(n)
	}
	mBits := n * bitsPerEntry
	if mBits < minRecoverDigestBits {
		mBits = minRecoverDigestBits
	}
	if mBits > maxRecoverDigestBytes*8 {
		mBits = maxRecoverDigestBytes * 8
		truncated = true
	}
	bytes = (mBits + 7) / 8
	k = int(math.Round(float64(bytes*8) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return bytes, k, truncated
}

// adaptiveDigestBits is the DigestBitsAdaptive schedule: the per-entry
// budget chosen from the observed store count n. Small stores spend
// 16 bits/entry (~0.04% false-positive rate — on a tiny store a single
// false positive suppresses a large share of the possible repair and
// the absolute cost of generosity is trivial), mid-size stores 13
// (~0.2%), and large stores the paper-default 10 (~1%), where the
// per-entry budget dominates frame size long before the byte cap.
func adaptiveDigestBits(n int) int {
	switch {
	case n <= 2048:
		return 16
	case n <= 16384:
		return 13
	default:
		return 10
	}
}

// bloomAdd sets id's k probe bits in bits.
func bloomAdd(bits []byte, k int, seed uint64, id ids.EventID) {
	m := uint64(len(bits)) * 8
	if m == 0 {
		return
	}
	h1, h2 := bloomHashes(seed, id)
	for i := 0; i < k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		bits[pos/8] |= 1 << (pos % 8)
	}
}

// bloomHas reports whether id's probe bits are all set. An empty or
// malformed filter contains nothing — the empty digest of a process
// that missed everything is exactly the invitation to push the backlog.
func bloomHas(bits []byte, k int, seed uint64, id ids.EventID) bool {
	m := uint64(len(bits)) * 8
	if m == 0 || k <= 0 {
		return false
	}
	h1, h2 := bloomHashes(seed, id)
	for i := 0; i < k; i++ {
		pos := (h1 + uint64(i)*h2) % m
		if bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// BloomDigest builds a recovery digest filter over eventIDs at
// bitsPerEntry bits per entry (or DigestBitsAdaptive to size from
// len(eventIDs)) under the given hash seed. Exposed for drivers that
// size digests without a live Process — the sim's store-size figure
// encodes real MsgDigest frames through this.
func BloomDigest(eventIDs []ids.EventID, bitsPerEntry int, seed uint64) (bits []byte, k int, truncated bool) {
	n := len(eventIDs)
	bytes, k, truncated := bloomLayout(n, bitsPerEntry)
	if bytes == 0 {
		return nil, 0, truncated
	}
	bits = make([]byte, bytes)
	for _, id := range eventIDs {
		bloomAdd(bits, k, seed, id)
	}
	return bits, k, truncated
}
