package core

// Push-based anti-entropy event recovery over bloom digests.
// daMulticast is deliberately best-effort: an event gossiped to ln(S)+c
// members is simply lost when the channel drops the wrong messages or a
// churn wave removes the holders (that loss is exactly what the paper's
// reliability figures measure). The recovery subsystem layered here
// opens that tradeoff as a knob instead of a constant: each process
// keeps a bounded store of recently seen events and periodically
// gossips a bloom-filter digest of their ids (bloom.go) to a few random
// group mates; a receiver pushes back every stored event the filter
// proves the sender missed, and answers with its own digest so the
// exchange repairs both directions in one round trip.
//
// The exchange uses two wire messages:
//
//	MsgDigest    A -> B   bloom filter over the ids A holds. TTL=1 on
//	                      wave-initiating digests invites exactly one
//	                      counter-digest (TTL=0), so an exchange is
//	                      A-digest, B-push+B-digest, A-push — and stops.
//	MsgDigestAns B -> A   full events B holds that A's filter lacked
//
// A bloom filter cannot be enumerated, so the explicit id pull of the
// raw-id protocol (MsgEventReq) is gone: the counter-digest replaces
// it, at the same two-message cost for the common path. False
// positives — the filter claiming A holds an event it never saw — make
// B withhold ("suppress") a push; the per-wave seed rotation in
// buildDigest decorrelates the error, so the event goes out on a later
// wave instead. Convergence is delayed, never prevented; the sim's
// pinned-seed false-positive test holds this.
//
// Recovery is intra-group by default, like the gossip it repairs. With
// CrossRecoverPeriod > 0 a second, slower wave also sends digests along
// the topic hierarchy: up to the supertopic table's contacts and down
// to subgroup contacts learned from inbound traffic. Pushes crossing a
// group boundary are filtered by topic inclusion in both directions
// (only events the destination's topic includes are pushed, and
// receivers drop anything else), so the parasite invariant — no process
// delivers an event outside its subscription — survives. One healed
// subgroup thereby re-ignites its parents, and a parent restocks a
// child that lost everything.
//
// Determinism: the only randomness is target sampling, drawn from the
// process's own Env stream exactly like dissemination fanout; the store
// iterates in insertion order; bloom hashing is pure in (seed, id).
// Under the parallel simulation kernel a run with recovery enabled is
// therefore byte-identical for any worker count. With RecoverPeriod = 0
// (the default) no recovery code draws from any stream, so pre-recovery
// golden digests and figure CSVs are unchanged.

import (
	"sync/atomic"

	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Recovery message types, continuing the enum space of message.go and
// leave.go. (The raw-id protocol's MsgEventReq slot, MsgLeave+3, is
// retired with wire v3 and must not be reused without a codec bump.)
const (
	// MsgDigest carries a bloom filter over the sender's recently-seen
	// event ids.
	MsgDigest MsgType = MsgLeave + 1
	// MsgDigestAns carries full events the peer was missing.
	MsgDigestAns MsgType = MsgLeave + 2
)

func init() {
	msgTypeNames[MsgDigest] = "DIGEST"
	msgTypeNames[MsgDigestAns] = "DIGEST_ANS"
}

// IsRecovery reports whether t belongs to the anti-entropy recovery
// exchange (drivers count these separately from event and control
// traffic).
func (t MsgType) IsRecovery() bool {
	return t == MsgDigest || t == MsgDigestAns
}

// maxRecoverBatch bounds the events of one MsgDigestAns, and
// maxRecoverBatchBytes bounds the answer's payload bytes, so a single
// exchange can never produce a frame proportional to a whole store — or
// one that exceeds a live transport's frame limit (TCPTransport.MaxFrame
// defaults to 1 MiB; an oversized answer would be dropped whole, and
// rebuilt and re-dropped every wave). Whatever a bounded answer leaves
// out is advertised again by later digests once the delivered part is
// stored, so recovery advances incrementally across waves.
const (
	maxRecoverBatch      = 64
	maxRecoverBatchBytes = 256 << 10
)

// eventWireSize approximates an event's encoded size for the batch
// byte budget (payload plus id/topic strings and varint overhead).
func eventWireSize(ev *Event) int {
	return len(ev.Payload) + len(ev.ID.Origin) + len(ev.Topic) + 16
}

// admitEvent applies the shared answer budget — the count cap plus the
// byte budget with an admit-at-least-one exception — returning the
// grown batch, the running byte total, and whether ev was admitted
// (callers stop at the first refusal).
func admitEvent(dst []*Event, ev *Event, bytes int) ([]*Event, int, bool) {
	if len(dst) >= maxRecoverBatch {
		return dst, bytes, false
	}
	sz := eventWireSize(ev)
	if len(dst) > 0 && bytes+sz > maxRecoverBatchBytes {
		return dst, bytes, false
	}
	return append(dst, ev), bytes + sz, true
}

// RecoveryStats counts the recovery subsystem's work. Fields are
// cumulative since process creation.
type RecoveryStats struct {
	// Recovered is the number of first-time events obtained through the
	// recovery exchange rather than plain gossip.
	Recovered uint64
	// Suppressed is the number of stored events withheld from a push
	// because the peer's bloom digest claimed possession. Mostly true
	// positives (the peer really holds them); the false-positive
	// fraction is what seed rotation repairs on the next wave. A
	// suppression rate near the store size with reliability below 1 is
	// the signature of an undersized RecoverDigestBits.
	Suppressed uint64
	// Truncated is the number of digests built at the filter byte cap
	// (maxRecoverDigestBytes) because the store exceeded what
	// RecoverDigestBits per entry allows — every id is still inserted,
	// at a degraded false-positive rate. The raw-id protocol silently
	// dropped older ids here; this counter is the saturation signal.
	Truncated uint64
	// GCd is the number of store entries evicted by age or capacity.
	GCd uint64
}

// recoveryCounters is the internal, atomically-updated form of
// RecoveryStats: the owning goroutine increments, any goroutine may
// snapshot (the live Node reads stats from outside the protocol loop).
type recoveryCounters struct {
	recovered  atomic.Uint64
	suppressed atomic.Uint64
	truncated  atomic.Uint64
	gcd        atomic.Uint64
}

// RecoveryStats returns a snapshot of the recovery counters. Safe to
// call from any goroutine.
func (p *Process) RecoveryStats() RecoveryStats {
	return RecoveryStats{
		Recovered:  p.recoverStats.recovered.Load(),
		Suppressed: p.recoverStats.suppressed.Load(),
		Truncated:  p.recoverStats.truncated.Load(),
		GCd:        p.recoverStats.gcd.Load(),
	}
}

// EventStoreLen returns the number of events currently held for
// recovery (0 when recovery is disabled). Exposed for memory-bound
// tests and introspection.
func (p *Process) EventStoreLen() int {
	if p.store == nil {
		return 0
	}
	return p.store.Len()
}

// recoveryEnabled reports whether the recovery task is configured on.
func (p *Process) recoveryEnabled() bool { return p.params.RecoverPeriod > 0 }

// crossRecoveryEnabled reports whether recovery digests also travel
// along supertopic links.
func (p *Process) crossRecoveryEnabled() bool { return p.params.CrossRecoverPeriod > 0 }

// recoverLinked reports whether recovery traffic from a process
// subscribed to ft may be honored: always for the own group, and for
// ancestor or descendant groups when cross-group recovery is on.
func (p *Process) recoverLinked(ft topic.Topic) bool {
	if ft == p.topic {
		return true
	}
	if !p.crossRecoveryEnabled() {
		return false
	}
	return ft.StrictlyIncludes(p.topic) || p.topic.StrictlyIncludes(ft)
}

// storedRef is one FIFO/age bookkeeping entry of the event store.
type storedRef struct {
	id   ids.EventID
	tick int
}

// eventStore is a bounded, insertion-ordered store of recently seen
// events: a map for O(1) lookup plus a FIFO queue carrying the tick
// each event was first seen at, for capacity eviction and age-based GC
// (the same compaction scheme as ids.SeenSet). Memory is bounded by
// cap events regardless of traffic. Not goroutine-safe; the owning
// Process drives it.
type eventStore struct {
	cap   int
	byID  map[ids.EventID]*Event
	queue []storedRef
	head  int
}

func newEventStore(capacity int) *eventStore {
	return &eventStore{cap: capacity, byID: make(map[ids.EventID]*Event)}
}

// Len returns the number of events held.
func (s *eventStore) Len() int { return len(s.byID) }

// Cap returns the configured capacity.
func (s *eventStore) Cap() int { return s.cap }

// Add inserts ev at the given tick, evicting the oldest entry when the
// store is full. Duplicate ids are ignored (callers add only on first
// sight). It returns the number of entries evicted (0 or 1).
func (s *eventStore) Add(ev *Event, tick int) int {
	if _, dup := s.byID[ev.ID]; dup {
		return 0
	}
	evicted := 0
	if len(s.byID) >= s.cap {
		s.popHead()
		evicted = 1
	}
	s.byID[ev.ID] = ev
	s.queue = append(s.queue, storedRef{id: ev.ID, tick: tick})
	return evicted
}

// Get returns the stored event for id, if held.
func (s *eventStore) Get(id ids.EventID) (*Event, bool) {
	ev, ok := s.byID[id]
	return ev, ok
}

// popHead drops the oldest entry.
func (s *eventStore) popHead() {
	old := s.queue[s.head]
	delete(s.byID, old.id)
	s.head++
	if s.head > s.cap {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
}

// GC evicts every entry older than maxAge ticks and returns how many
// went. The queue is tick-ordered (ticks only grow), so eviction stops
// at the first young entry.
func (s *eventStore) GC(now, maxAge int) int {
	n := 0
	for s.head < len(s.queue) && now-s.queue[s.head].tick > maxAge {
		s.popHead()
		n++
	}
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	return n
}

// AppendIDs appends up to max held event ids to dst in insertion
// order. When the store holds more, the newest max are taken. (The
// digest itself is a bloom filter over *all* ids now; this remains for
// tests and introspection.)
func (s *eventStore) AppendIDs(dst []ids.EventID, max int) []ids.EventID {
	start := s.head
	if live := len(s.queue) - s.head; live > max {
		start = len(s.queue) - max
	}
	for _, ref := range s.queue[start:] {
		dst = append(dst, ref.id)
	}
	return dst
}

// rememberEvent stores a first-seen event for later recovery exchanges
// (no-op with recovery disabled).
func (p *Process) rememberEvent(ev *Event) {
	if p.store == nil {
		return
	}
	if evicted := p.store.Add(ev, p.tick); evicted > 0 {
		p.recoverStats.gcd.Add(uint64(evicted))
	}
}

// buildDigest builds this wave's bloom digest over the whole store. The
// hash seed is derived from (tick, process id), so consecutive waves
// probe different bit patterns — the false-positive decorrelation the
// protocol's convergence relies on. An empty store yields a nil filter:
// precisely how a process that missed everything invites a peer to push
// the backlog. Digests built at the filter byte cap are counted as
// truncated.
func (p *Process) buildDigest() (bits []byte, k int, seed uint64) {
	n := p.store.Len()
	if n == 0 {
		return nil, 0, 0
	}
	nBytes, k, truncated := bloomLayout(n, p.params.RecoverDigestBits)
	if truncated {
		p.recoverStats.truncated.Add(1)
	}
	seed = uint64(xrand.SeedFor(int64(p.tick), "bloom:"+string(p.id)))
	bits = make([]byte, nBytes)
	for _, ref := range p.store.queue[p.store.head:] {
		bloomAdd(bits, k, seed, ref.id)
	}
	return bits, k, seed
}

// doRecover runs one intra-group RECOVER wave: age out stale store
// entries, then gossip the store's bloom digest to RecoverFanout random
// group mates with a reply budget of one counter-digest.
func (p *Process) doRecover() {
	if gone := p.store.GC(p.tick, p.params.RecoverMaxAge); gone > 0 {
		p.recoverStats.gcd.Add(uint64(gone))
	}
	targets := p.batch[:0]
	for _, target := range p.topicTable.Sample(p.env.Rand(), p.params.RecoverFanout) {
		if target != p.id {
			targets = append(targets, target)
		}
	}
	if len(targets) == 0 {
		p.batch = targets[:0]
		return
	}
	bits, k, seed := p.buildDigest()
	p.batch = nil // reentrancy guard; see disseminate
	p.sendToAll(targets, &Message{
		Type:      MsgDigest,
		From:      p.id,
		FromTopic: p.topic,
		Dest:      p.topic,
		TTL:       1,
		BloomBits: bits,
		BloomK:    k,
		BloomSeed: seed,
	})
	p.batch = targets[:0]
}

// doCrossRecover runs one cross-group wave: the same digest, sent up to
// sampled supertopic-table contacts and down to sampled subgroup
// contacts (noteSubContact), each stamped with the destination group's
// topic so multi-topic endpoints demux it to the right process. The
// digest filter is shared across the sends — receivers treat messages
// as immutable.
func (p *Process) doCrossRecover() {
	bits, k, seed := p.buildDigest()
	proto := Message{
		Type:      MsgDigest,
		From:      p.id,
		FromTopic: p.topic,
		TTL:       1,
		BloomBits: bits,
		BloomK:    k,
		BloomSeed: seed,
	}
	if p.superKnown != "" && p.superTable.Len() > 0 {
		for _, target := range p.superTable.Sample(p.env.Rand(), p.params.CrossRecoverFanout) {
			if target == p.id {
				continue
			}
			up := proto
			up.Dest = p.superKnown
			p.env.Send(target, &up)
		}
	}
	for _, c := range p.sampleSubContacts(p.params.CrossRecoverFanout) {
		down := proto
		down.Dest = c.tp
		p.env.Send(c.id, &down)
	}
}

// onDigest answers a peer's digest: push every stored event the filter
// lacks that the peer's group is entitled to by topic inclusion, then
// return a counter-digest when the sender budgeted for one (TTL > 0;
// the counter-digest carries TTL 0, so the exchange terminates).
func (p *Process) onDigest(m *Message) {
	if p.store == nil || !p.recoverLinked(m.FromTopic) {
		return // recovery never crosses unlinked groups nor runs when disabled
	}
	var out []*Event
	bytes := 0
	for _, ref := range p.store.queue[p.store.head:] {
		ev := p.store.byID[ref.id]
		if !m.FromTopic.Includes(ev.Topic) {
			continue // the peer's group is not entitled to this event
		}
		if bloomHas(m.BloomBits, m.BloomK, m.BloomSeed, ref.id) {
			p.recoverStats.suppressed.Add(1)
			continue
		}
		var ok bool
		if out, bytes, ok = admitEvent(out, ev, bytes); !ok {
			break
		}
	}
	if len(out) > 0 {
		p.env.Send(m.From, &Message{
			Type:      MsgDigestAns,
			From:      p.id,
			FromTopic: p.topic,
			Dest:      m.FromTopic,
			Events:    out,
		})
	}
	if m.TTL > 0 {
		bits, k, seed := p.buildDigest()
		p.env.Send(m.From, &Message{
			Type:      MsgDigest,
			From:      p.id,
			FromTopic: p.topic,
			Dest:      m.FromTopic,
			TTL:       0,
			BloomBits: bits,
			BloomK:    k,
			BloomSeed: seed,
		})
	}
}

// onDigestAns folds recovered events back into the normal reception
// path: first-time events are stored, re-disseminated (re-igniting the
// epidemic) and delivered; duplicates that raced in via gossip are
// dropped by the seen-set like any other duplicate. Duplicates are
// still re-stored: a seen event whose store entry was evicted would
// otherwise be absent from every future digest, and peers would keep
// re-pushing its full payload wave after wave — re-storing it makes
// the next digest advertise it and shuts that loop after one answer.
// Events outside the receiver's subscription are dropped outright (the
// sender filters by inclusion too; this guard keeps a buggy or
// malicious peer from planting parasite deliveries).
func (p *Process) onDigestAns(m *Message) {
	if p.store == nil || !p.recoverLinked(m.FromTopic) {
		return
	}
	for _, ev := range m.Events {
		if ev == nil || !p.topic.Includes(ev.Topic) {
			continue
		}
		if p.receiveEvent(ev) {
			p.recoverStats.recovered.Add(1)
		} else {
			p.rememberEvent(ev)
		}
	}
}

// subContact is one learned subgroup contact: a process whose traffic
// proved it subscribes to a strict subtopic of ours.
type subContact struct {
	id ids.ProcessID
	tp topic.Topic
}

// maxSubContacts bounds the learned subgroup contact list.
func (p *Process) maxSubContacts() int {
	if n := 2 * p.params.Z; n > 4 {
		return n
	}
	return 4
}

// noteSubContact learns downward links for cross-group recovery from
// ordinary inbound traffic: any message whose FromTopic is a strict
// subtopic of ours names a process the downward wave can digest to.
// The list is bounded and FIFO — fresh contacts displace the oldest,
// matching the churn the rest of the membership layer assumes.
func (p *Process) noteSubContact(from ids.ProcessID, ft topic.Topic) {
	if from == p.id || ft == "" || !p.topic.StrictlyIncludes(ft) {
		return
	}
	for i := range p.subContacts {
		if p.subContacts[i].id == from {
			p.subContacts[i].tp = ft
			return
		}
	}
	if max := p.maxSubContacts(); len(p.subContacts) >= max {
		copy(p.subContacts, p.subContacts[1:])
		p.subContacts = p.subContacts[:len(p.subContacts)-1]
	}
	p.subContacts = append(p.subContacts, subContact{id: from, tp: ft})
}

// sampleSubContacts draws up to k learned subgroup contacts without
// replacement from the process's own stream (partial Fisher-Yates over
// an index copy, like xrand.SampleIDs).
func (p *Process) sampleSubContacts(k int) []subContact {
	n := len(p.subContacts)
	if n == 0 || k <= 0 {
		return nil
	}
	if k >= n {
		return p.subContacts
	}
	r := p.env.Rand()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]subContact, 0, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, p.subContacts[idx[i]])
	}
	return out
}

// SubContacts returns the learned subgroup contact ids (for tests and
// introspection).
func (p *Process) SubContacts() []ids.ProcessID {
	out := make([]ids.ProcessID, len(p.subContacts))
	for i, c := range p.subContacts {
		out[i] = c.id
	}
	return out
}
