package core

// Pull-based anti-entropy event recovery. daMulticast is deliberately
// best-effort: an event gossiped to ln(S)+c members is simply lost when
// the channel drops the wrong messages or a churn wave removes the
// holders (that loss is exactly what the paper's reliability figures
// measure). The recovery subsystem layered here opens that tradeoff as
// a knob instead of a constant: each process keeps a bounded store of
// recently seen events and periodically gossips a compact digest of
// their ids to a few random group mates; the receivers answer with the
// events the requester missed (and pull, in turn, the ids the digest
// proves they are missing themselves). Recovered events re-enter the
// normal dissemination path, so one successful exchange re-ignites the
// epidemic for everyone.
//
// The exchange uses three wire messages:
//
//	MsgDigest    A -> B   ids of the events A holds (possibly none)
//	MsgDigestAns B -> A   full events B holds that A's digest lacked
//	MsgEventReq  B -> A   ids A listed that B has never seen; A answers
//	                      with a MsgDigestAns carrying them
//
// so the common recovery path (a process that missed an event pulls it
// from a holder) is a two-message round trip, and the reverse direction
// (the digest receiver notices ITS gap) costs one extra hop. All three
// stay within one topic group, like the gossip they repair: FromTopic
// must match the receiver's topic.
//
// Determinism: the only randomness is the digest target sampling, drawn
// from the process's own Env stream exactly like dissemination fanout;
// the store iterates in insertion order; digest and request slices are
// walked in wire order. Under the parallel simulation kernel a run with
// recovery enabled is therefore byte-identical for any worker count.
// With RecoverPeriod = 0 (the default) no recovery code draws from any
// stream, so pre-recovery golden digests and figure CSVs are unchanged.

import (
	"sync/atomic"

	"damulticast/internal/ids"
)

// Recovery message types, continuing the enum space of message.go and
// leave.go.
const (
	// MsgDigest carries the sender's recently-seen event ids.
	MsgDigest MsgType = MsgLeave + 1
	// MsgDigestAns carries full events the peer was missing.
	MsgDigestAns MsgType = MsgLeave + 2
	// MsgEventReq asks the peer for the listed event ids.
	MsgEventReq MsgType = MsgLeave + 3
)

func init() {
	msgTypeNames[MsgDigest] = "DIGEST"
	msgTypeNames[MsgDigestAns] = "DIGEST_ANS"
	msgTypeNames[MsgEventReq] = "EVENT_REQ"
}

// IsRecovery reports whether t belongs to the anti-entropy recovery
// exchange (drivers count these separately from event and control
// traffic).
func (t MsgType) IsRecovery() bool {
	return t == MsgDigest || t == MsgDigestAns || t == MsgEventReq
}

// maxRecoverBatch bounds the events of one MsgDigestAns and the ids of
// one MsgEventReq, and maxRecoverBatchBytes bounds the answer's
// payload bytes, so a single exchange can never produce a frame
// proportional to a whole store — or one that exceeds a live
// transport's frame limit (TCPTransport.MaxFrame defaults to 1 MiB; an
// oversized answer would be dropped whole, and rebuilt and re-dropped
// every wave). Whatever a bounded answer leaves out is advertised
// again by later digests once the delivered part is stored, so
// recovery advances incrementally across waves.
const (
	maxRecoverBatch      = 64
	maxRecoverBatchBytes = 256 << 10
)

// maxRecoverDigest bounds the event ids of one MsgDigest for the same
// reason: a digest must fit a transport frame no matter how large
// RecoverStoreCap is configured (4096 ids with address-sized origins
// is ~100 KiB, comfortably under TCPTransport's 1 MiB default). When
// the store holds more, the newest ids are advertised — the oldest are
// closest to aging out anyway, and the re-store-on-duplicate rule
// keeps re-pushed elders advertised on later waves.
const maxRecoverDigest = 4096

// eventWireSize approximates an event's encoded size for the batch
// byte budget (payload plus id/topic strings and varint overhead).
func eventWireSize(ev *Event) int {
	return len(ev.Payload) + len(ev.ID.Origin) + len(ev.Topic) + 16
}

// admitEvent applies the shared answer budget — the count cap plus the
// byte budget with an admit-at-least-one exception — returning the
// grown batch, the running byte total, and whether ev was admitted
// (callers stop at the first refusal).
func admitEvent(dst []*Event, ev *Event, bytes int) ([]*Event, int, bool) {
	if len(dst) >= maxRecoverBatch {
		return dst, bytes, false
	}
	sz := eventWireSize(ev)
	if len(dst) > 0 && bytes+sz > maxRecoverBatchBytes {
		return dst, bytes, false
	}
	return append(dst, ev), bytes + sz, true
}

// RecoveryStats counts the recovery subsystem's work. Fields are
// cumulative since process creation.
type RecoveryStats struct {
	// Recovered is the number of first-time events obtained through the
	// recovery exchange rather than plain gossip.
	Recovered uint64
	// Requested is the number of event ids this process explicitly
	// asked peers for (MsgEventReq entries sent).
	Requested uint64
	// GCd is the number of store entries evicted by age or capacity.
	GCd uint64
}

// recoveryCounters is the internal, atomically-updated form of
// RecoveryStats: the owning goroutine increments, any goroutine may
// snapshot (the live Node reads stats from outside the protocol loop).
type recoveryCounters struct {
	recovered atomic.Uint64
	requested atomic.Uint64
	gcd       atomic.Uint64
}

// RecoveryStats returns a snapshot of the recovery counters. Safe to
// call from any goroutine.
func (p *Process) RecoveryStats() RecoveryStats {
	return RecoveryStats{
		Recovered: p.recoverStats.recovered.Load(),
		Requested: p.recoverStats.requested.Load(),
		GCd:       p.recoverStats.gcd.Load(),
	}
}

// EventStoreLen returns the number of events currently held for
// recovery (0 when recovery is disabled). Exposed for memory-bound
// tests and introspection.
func (p *Process) EventStoreLen() int {
	if p.store == nil {
		return 0
	}
	return p.store.Len()
}

// recoveryEnabled reports whether the recovery task is configured on.
func (p *Process) recoveryEnabled() bool { return p.params.RecoverPeriod > 0 }

// storedRef is one FIFO/age bookkeeping entry of the event store.
type storedRef struct {
	id   ids.EventID
	tick int
}

// eventStore is a bounded, insertion-ordered store of recently seen
// events: a map for O(1) lookup plus a FIFO queue carrying the tick
// each event was first seen at, for capacity eviction and age-based GC
// (the same compaction scheme as ids.SeenSet). Memory is bounded by
// cap events regardless of traffic. Not goroutine-safe; the owning
// Process drives it.
type eventStore struct {
	cap   int
	byID  map[ids.EventID]*Event
	queue []storedRef
	head  int
}

func newEventStore(capacity int) *eventStore {
	return &eventStore{cap: capacity, byID: make(map[ids.EventID]*Event)}
}

// Len returns the number of events held.
func (s *eventStore) Len() int { return len(s.byID) }

// Cap returns the configured capacity.
func (s *eventStore) Cap() int { return s.cap }

// Add inserts ev at the given tick, evicting the oldest entry when the
// store is full. Duplicate ids are ignored (callers add only on first
// sight). It returns the number of entries evicted (0 or 1).
func (s *eventStore) Add(ev *Event, tick int) int {
	if _, dup := s.byID[ev.ID]; dup {
		return 0
	}
	evicted := 0
	if len(s.byID) >= s.cap {
		s.popHead()
		evicted = 1
	}
	s.byID[ev.ID] = ev
	s.queue = append(s.queue, storedRef{id: ev.ID, tick: tick})
	return evicted
}

// Get returns the stored event for id, if held.
func (s *eventStore) Get(id ids.EventID) (*Event, bool) {
	ev, ok := s.byID[id]
	return ev, ok
}

// popHead drops the oldest entry.
func (s *eventStore) popHead() {
	old := s.queue[s.head]
	delete(s.byID, old.id)
	s.head++
	if s.head > s.cap {
		s.queue = append(s.queue[:0], s.queue[s.head:]...)
		s.head = 0
	}
}

// GC evicts every entry older than maxAge ticks and returns how many
// went. The queue is tick-ordered (ticks only grow), so eviction stops
// at the first young entry.
func (s *eventStore) GC(now, maxAge int) int {
	n := 0
	for s.head < len(s.queue) && now-s.queue[s.head].tick > maxAge {
		s.popHead()
		n++
	}
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	return n
}

// AppendIDs appends up to max held event ids to dst in insertion
// order (the digest payload). When the store holds more, the newest
// max are taken.
func (s *eventStore) AppendIDs(dst []ids.EventID, max int) []ids.EventID {
	start := s.head
	if live := len(s.queue) - s.head; live > max {
		start = len(s.queue) - max
	}
	for _, ref := range s.queue[start:] {
		dst = append(dst, ref.id)
	}
	return dst
}

// AppendMissing appends held events whose id is not in have, in
// insertion order, under the shared answer budget (admitEvent): at
// most maxRecoverBatch events and maxRecoverBatchBytes of estimated
// wire size, always admitting at least one event so answers make
// progress even when a single event approaches the budget.
func (s *eventStore) AppendMissing(dst []*Event, have map[ids.EventID]struct{}) []*Event {
	bytes := 0
	ok := true
	for _, ref := range s.queue[s.head:] {
		if _, skip := have[ref.id]; skip {
			continue
		}
		if dst, bytes, ok = admitEvent(dst, s.byID[ref.id], bytes); !ok {
			break
		}
	}
	return dst
}

// rememberEvent stores a first-seen event for later recovery exchanges
// (no-op with recovery disabled).
func (p *Process) rememberEvent(ev *Event) {
	if p.store == nil {
		return
	}
	if evicted := p.store.Add(ev, p.tick); evicted > 0 {
		p.recoverStats.gcd.Add(uint64(evicted))
	}
}

// doRecover runs one RECOVER wave: age out stale store entries, then
// gossip the digest of held event ids to RecoverFanout random group
// mates. An empty digest is still sent — it is precisely how a process
// that missed everything invites a peer to push the backlog.
func (p *Process) doRecover() {
	if gone := p.store.GC(p.tick, p.params.RecoverMaxAge); gone > 0 {
		p.recoverStats.gcd.Add(uint64(gone))
	}
	targets := p.batch[:0]
	for _, target := range p.topicTable.Sample(p.env.Rand(), p.params.RecoverFanout) {
		if target != p.id {
			targets = append(targets, target)
		}
	}
	if len(targets) == 0 {
		p.batch = targets[:0]
		return
	}
	// Fresh digest slice per wave: receivers (and the simulator) may
	// retain the message, so the buffer cannot be recycled.
	digest := p.store.AppendIDs(make([]ids.EventID, 0, min(p.store.Len(), maxRecoverDigest)), maxRecoverDigest)
	p.batch = nil // reentrancy guard; see disseminate
	p.sendToAll(targets, &Message{
		Type:      MsgDigest,
		From:      p.id,
		FromTopic: p.topic,
		Dest:      p.topic,
		DigestIDs: digest,
	})
	p.batch = targets[:0]
}

// onDigest answers a peer's digest: push the stored events the digest
// lacked, and request the listed ids we have never seen ourselves.
func (p *Process) onDigest(m *Message) {
	if m.FromTopic != p.topic || p.store == nil {
		return // recovery never crosses groups nor runs when disabled
	}
	have := make(map[ids.EventID]struct{}, len(m.DigestIDs))
	var wants []ids.EventID
	for _, id := range m.DigestIDs {
		have[id] = struct{}{}
		if !p.seen.Seen(id) && len(wants) < maxRecoverBatch {
			wants = append(wants, id)
		}
	}
	if missing := p.store.AppendMissing(nil, have); len(missing) > 0 {
		p.env.Send(m.From, &Message{
			Type:      MsgDigestAns,
			From:      p.id,
			FromTopic: p.topic,
			Dest:      p.topic,
			Events:    missing,
		})
	}
	if len(wants) > 0 {
		p.recoverStats.requested.Add(uint64(len(wants)))
		p.env.Send(m.From, &Message{
			Type:      MsgEventReq,
			From:      p.id,
			FromTopic: p.topic,
			Dest:      p.topic,
			DigestIDs: wants,
		})
	}
}

// onDigestAns folds recovered events back into the normal reception
// path: first-time events are stored, re-disseminated (re-igniting the
// epidemic) and delivered; duplicates that raced in via gossip are
// dropped by the seen-set like any other duplicate. Duplicates are
// still re-stored: a seen event whose store entry was evicted would
// otherwise be absent from every future digest, and peers would keep
// re-pushing its full payload wave after wave — re-storing it makes
// the next digest advertise it and shuts that loop after one answer.
func (p *Process) onDigestAns(m *Message) {
	if m.FromTopic != p.topic {
		return
	}
	for _, ev := range m.Events {
		if ev == nil {
			continue
		}
		if p.receiveEvent(ev) {
			p.recoverStats.recovered.Add(1)
		} else {
			p.rememberEvent(ev)
		}
	}
}

// onEventReq serves an explicit pull: answer with whatever requested
// events the store still holds, as one MsgDigestAns.
func (p *Process) onEventReq(m *Message) {
	if m.FromTopic != p.topic || p.store == nil {
		return
	}
	var out []*Event
	bytes := 0
	admitted := true
	for _, id := range m.DigestIDs {
		ev, held := p.store.Get(id)
		if !held {
			continue
		}
		if out, bytes, admitted = admitEvent(out, ev, bytes); !admitted {
			break
		}
	}
	if len(out) == 0 {
		return
	}
	p.env.Send(m.From, &Message{
		Type:      MsgDigestAns,
		From:      p.id,
		FromTopic: p.topic,
		Dest:      p.topic,
		Events:    out,
	})
}
