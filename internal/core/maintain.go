package core

import (
	"damulticast/internal/ids"
	"damulticast/internal/xrand"
)

// doShuffle performs one membership shuffle within the topic group
// (the underlying algorithm of [10]) and piggybacks the supertopic
// table on it (§V-A.2a: "once a process has an initialized supertopic
// table, this information is disseminated, using the updates of the
// underlying membership algorithm, to the other processes of the
// group").
func (p *Process) doShuffle() {
	// Age entries and evict suspected-failed members first.
	p.gossiper.Tick(p.params.MaxAge)

	r := p.env.Rand()
	partner, digest, ok := p.gossiper.InitiateShuffle(r)
	if !ok {
		return
	}
	m := &Message{
		Type:      MsgShuffle,
		From:      p.id,
		FromTopic: p.topic,
		Dest:      p.topic,
		Digest:    digest,
	}
	p.attachSuperInfo(m)
	p.env.Send(partner, m)
}

// attachSuperInfo piggybacks the supertopic table onto a shuffle.
func (p *Process) attachSuperInfo(m *Message) {
	if p.superKnown == "" || p.superTable.Len() == 0 {
		return
	}
	m.SuperTopic = p.superKnown
	m.SuperEntries = p.superTable.Entries()
}

// onShuffle merges the incoming digest, replies with a local digest,
// and merges any piggybacked supertopic information (Fig. 6 lines 6-9
// generalized by the piggybacking optimization).
func (p *Process) onShuffle(m *Message) {
	if m.FromTopic != p.topic {
		return // shuffles never cross groups
	}
	reply := p.gossiper.OnDigest(p.env.Rand(), m.Digest)
	p.mergeSuperInfo(m)
	out := &Message{
		Type:      MsgShuffleReply,
		From:      p.id,
		FromTopic: p.topic,
		Dest:      p.topic,
		Digest:    reply,
	}
	p.attachSuperInfo(out)
	p.env.Send(m.From, out)
}

// onShuffleReply closes the exchange.
func (p *Process) onShuffleReply(m *Message) {
	if m.FromTopic != p.topic {
		return
	}
	p.gossiper.OnReply(m.Digest)
	p.mergeSuperInfo(m)
}

// mergeSuperInfo folds a piggybacked supertopic table into ours (the
// paper's MERGE, Fig. 6 line 8): deeper supertopics supersede, equal
// ones merge keeping favorites (freshest ages).
func (p *Process) mergeSuperInfo(m *Message) {
	if m.SuperTopic == "" || len(m.SuperEntries) == 0 {
		return
	}
	contacts := make([]ids.ProcessID, 0, len(m.SuperEntries))
	for _, e := range m.SuperEntries {
		contacts = append(contacts, e.ID)
	}
	p.adoptSuper(m.SuperTopic, contacts)
}

// keepTableUpdated is the KEEP_TABLE_UPDATED task of Fig. 6:
//
//   - empty supertopic table (non-root) -> (re)start FIND_SUPER_CONTACT
//     (lines 12-14);
//   - otherwise, with probability pSel, probe the supertopic table for
//     liveness; if the number of live superprocesses has fallen to
//     τ or below, ask the live ones for fresh contacts (lines 16-23).
func (p *Process) keepTableUpdated() {
	hasPrimary := !p.topic.IsRoot()
	if hasPrimary && p.superTable.Len() == 0 {
		p.StartFindSuperContact()
		// Extra tables (§VIII) are still maintained below.
	}
	if (!hasPrimary || p.superTable.Len() == 0) && len(p.extras) == 0 {
		return // nothing upward to maintain
	}
	r := p.env.Rand()

	// Resolve a previously started ping wave whose timeout elapsed.
	if p.pingStarted >= 0 && p.tick-p.pingStarted >= p.params.PingTimeout {
		p.resolveCheck()
	}

	if !xrand.Bernoulli(r, p.pSel()) {
		return
	}
	// Start a liveness probe wave: ping every supertopic-table entry
	// (primary and extras).
	if p.pingStarted < 0 {
		p.pingStarted = p.tick
		for _, target := range p.superTable.IDs() {
			p.env.Send(target, &Message{
				Type:      MsgPing,
				From:      p.id,
				FromTopic: p.topic,
				Dest:      p.superKnown,
			})
		}
		p.pingExtras()
	}
}

// resolveCheck evaluates CHECK(sTable) after a ping wave: entries that
// never answered within PingTimeout are dead. If the live count is at
// or below τ, ask each live superprocess for fresh members
// (NEWPROCESS, Fig. 6 lines 18-21); the dead are evicted.
func (p *Process) resolveCheck() {
	waveStart := p.pingStarted
	p.pingStarted = -1
	p.resolveExtraChecks(waveStart)
	if p.superTable.Len() == 0 {
		return
	}
	var live, dead []ids.ProcessID
	for _, id := range p.superTable.IDs() {
		if seen, ok := p.superSeen[id]; ok && seen >= waveStart {
			live = append(live, id)
		} else {
			dead = append(dead, id)
		}
	}
	for _, id := range dead {
		p.superTable.Remove(id)
		delete(p.superSeen, id)
	}
	if len(live) == 0 {
		// Whole table dead: fall back to bootstrap on the next
		// maintenance round (table is now empty).
		return
	}
	if len(live) <= p.params.Tau {
		for _, id := range live {
			p.env.Send(id, &Message{
				Type:      MsgNewProcessReq,
				From:      p.id,
				FromTopic: p.topic,
				Dest:      p.superKnown,
			})
		}
	}
}

// onPing answers liveness probes.
func (p *Process) onPing(m *Message) {
	p.env.Send(m.From, &Message{
		Type:      MsgPong,
		From:      p.id,
		FromTopic: p.topic,
		Dest:      m.FromTopic,
	})
}

// onPong records proof of life for a supertopic-table entry (primary
// or extra).
func (p *Process) onPong(m *Message) {
	if p.superTable.Contains(m.From) {
		p.superSeen[m.From] = p.tick
	}
	p.recordExtraPong(m.From)
}

// onNewProcessReq serves a NEWPROCESS request from a subgroup process:
// reply with a sample of our own group (we are the superprocess; our
// group is the requester's supergroup) — Fig. 6 lines 2-5.
func (p *Process) onNewProcessReq(m *Message) {
	sample := p.topicTable.Sample(p.env.Rand(), p.params.Z)
	contacts := append(sample, p.id)
	p.env.Send(m.From, &Message{
		Type:          MsgNewProcessAns,
		From:          p.id,
		FromTopic:     p.topic,
		Dest:          m.FromTopic,
		Contacts:      contacts,
		ContactsTopic: p.topic,
	})
}

// onNewProcessAns merges fresh superprocess contacts (Fig. 6 lines
// 6-9).
func (p *Process) onNewProcessAns(m *Message) {
	if m.ContactsTopic == "" {
		return
	}
	// An extra table declared for exactly this topic consumes the
	// answer; otherwise the primary-table adoption rules apply.
	if p.mergeExtraContacts(m.ContactsTopic, m.Contacts) {
		return
	}
	p.adoptSuper(m.ContactsTopic, m.Contacts)
	for _, id := range m.Contacts {
		if p.superTable.Contains(id) {
			p.superSeen[id] = p.tick
		}
	}
}
