package core

import (
	"errors"
	"fmt"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/topic"
)

func TestAddExtraSuperTableValidation(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".sports.football", testParams(), env)
	if err := p.AddExtraSuperTable("junk", nil); !errors.Is(err, ErrBadExtraSuper) {
		t.Errorf("err = %v", err)
	}
	if err := p.AddExtraSuperTable(".sports.football", nil); !errors.Is(err, ErrBadExtraSuper) {
		t.Errorf("own topic accepted: %v", err)
	}
	if err := p.AddExtraSuperTable(".sports", nil); !errors.Is(err, ErrBadExtraSuper) {
		t.Errorf("primary supertopic accepted as extra: %v", err)
	}
	if err := p.AddExtraSuperTable(".entertainment", []ids.ProcessID{"e1"}); err != nil {
		t.Fatal(err)
	}
	if got := p.ExtraSuperTopics(); len(got) != 1 || got[0] != ".entertainment" {
		t.Errorf("ExtraSuperTopics = %v", got)
	}
	if got := p.ExtraSuperTable(".entertainment"); len(got) != 1 || got[0] != "e1" {
		t.Errorf("ExtraSuperTable = %v", got)
	}
	if got := p.ExtraSuperTable(".nope"); got != nil {
		t.Errorf("unknown extra table = %v", got)
	}
	// Merging into the same table.
	if err := p.AddExtraSuperTable(".entertainment", []ids.ProcessID{"e2"}); err != nil {
		t.Fatal(err)
	}
	if got := len(p.ExtraSuperTable(".entertainment")); got != 2 {
		t.Errorf("merged table size = %d", got)
	}
	// Capacity stays z.
	_ = p.AddExtraSuperTable(".entertainment", []ids.ProcessID{"e3", "e4", "e5"})
	if got := len(p.ExtraSuperTable(".entertainment")); got != p.Params().Z {
		t.Errorf("extra table size = %d, want z", got)
	}
	p.RemoveExtraSuperTable(".entertainment")
	if len(p.ExtraSuperTopics()) != 0 {
		t.Error("extra table not removed")
	}
}

func TestMemoryComplexityIncludesExtras(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1"})
	if err := p.AddExtraSuperTable(".x", []ids.ProcessID{"x1", "x2"}); err != nil {
		t.Fatal(err)
	}
	if got := p.MemoryComplexity(); got != 3 {
		t.Errorf("MemoryComplexity = %d, want 3", got)
	}
}

func TestDisseminateReachesExtraSupers(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.G = 1 << 20 // pSel = 1
	params.A = 3       // pA = 1 with z=3
	p := MustNewProcess("p0", ".sports.football", params, env)
	if err := p.AddExtraSuperTable(".entertainment", []ids.ProcessID{"e1", "e2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish([]byte("derby tonight")); err != nil {
		t.Fatal(err)
	}
	sentTo := map[ids.ProcessID]bool{}
	for _, s := range env.sentOfType(MsgEvent) {
		sentTo[s.to] = true
	}
	if !sentTo["e1"] || !sentTo["e2"] {
		t.Errorf("extra supers not reached: %v", sentTo)
	}
}

func TestDisseminateExtrasRespectsPSel(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.G = 0 // never self-elect
	p := MustNewProcess("p0", ".sports.football", params, env)
	if err := p.AddExtraSuperTable(".entertainment", []ids.ProcessID{"e1"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := p.Publish(nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range env.sentOfType(MsgEvent) {
		if s.to == "e1" {
			t.Fatal("extra super reached with G=0")
		}
	}
}

func TestExtraTableLivenessMaintenance(t *testing.T) {
	env := newFakeEnv(1)
	params := maintainParams() // pSel=1, MaintainPeriod=1, PingTimeout=1
	params.Tau = 1
	p := MustNewProcess("p0", ".a.b", params, env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1"})
	if err := p.AddExtraSuperTable(".x", []ids.ProcessID{"x1", "x2"}); err != nil {
		t.Fatal(err)
	}

	p.Tick() // ping wave covers s1, x1, x2
	pings := env.sentOfType(MsgPing)
	if len(pings) != 3 {
		t.Fatalf("pings = %d, want 3", len(pings))
	}
	// s1 and x1 answer; x2 stays silent.
	p.HandleMessage(&Message{Type: MsgPong, From: "s1", FromTopic: ".a"})
	p.HandleMessage(&Message{Type: MsgPong, From: "x1", FromTopic: ".x"})
	env.reset()

	p.Tick() // resolve: x2 evicted; x1 alone is <= τ, gets NEWPROCESS
	if got := p.ExtraSuperTable(".x"); len(got) != 1 || got[0] != "x1" {
		t.Fatalf("extra table after CHECK = %v", got)
	}
	var reqTargets []ids.ProcessID
	for _, s := range env.sentOfType(MsgNewProcessReq) {
		reqTargets = append(reqTargets, s.to)
	}
	foundX1 := false
	for _, id := range reqTargets {
		if id == "x1" {
			foundX1 = true
		}
	}
	if !foundX1 {
		t.Errorf("no NEWPROCESS to surviving extra contact; targets = %v", reqTargets)
	}

	// The answer replenishes the extra table, not the primary one.
	p.HandleMessage(&Message{
		Type:          MsgNewProcessAns,
		From:          "x1",
		FromTopic:     ".x",
		Contacts:      []ids.ProcessID{"x7"},
		ContactsTopic: ".x",
	})
	if got := len(p.ExtraSuperTable(".x")); got != 2 {
		t.Errorf("extra table after refresh = %d entries", got)
	}
	if p.SuperKnownTopic() != ".a" {
		t.Errorf("primary super topic corrupted: %q", p.SuperKnownTopic())
	}
}

func TestRootProcessMaintainsExtras(t *testing.T) {
	// A root-group process normally skips link maintenance; with a
	// declared extra parent (cross-hierarchy), its table must still be
	// probed.
	env := newFakeEnv(1)
	params := maintainParams()
	p := MustNewProcess("p0", topic.Root, params, env)
	if err := p.AddExtraSuperTable(".mirror", []ids.ProcessID{"m1"}); err != nil {
		t.Fatal(err)
	}
	p.Tick()
	if len(env.sentOfType(MsgPing)) != 1 {
		t.Error("root process did not ping extra table")
	}
}

// End-to-end: an event published in a group with two parents reaches
// both parent groups.
func TestMultiParentClimb(t *testing.T) {
	k := newKernel(23)
	params := testParams()
	params.G = 1 << 20
	params.A = 3
	params.GroupSizeHint = 4

	mk := func(tp topic.Topic, n int) []*Process {
		var out []*Process
		for i := 0; i < n; i++ {
			out = append(out, k.add(ids.ProcessID(fmt.Sprintf("%s/%d", tp, i)), tp, params))
		}
		var all []ids.ProcessID
		for _, p := range out {
			all = append(all, p.ID())
		}
		for _, p := range out {
			p.SetTopicTableCap(8)
			p.SeedTopicTable(all)
		}
		return out
	}
	football := mk(".sports.football", 4)
	sports := mk(".sports", 4)
	entertainment := mk(".entertainment", 4)

	sup := func(g []*Process) []ids.ProcessID {
		var out []ids.ProcessID
		for _, p := range g[:3] {
			out = append(out, p.ID())
		}
		return out
	}
	for _, p := range football {
		p.SeedSuperTable(".sports", sup(sports))
		if err := p.AddExtraSuperTable(".entertainment", sup(entertainment)); err != nil {
			t.Fatal(err)
		}
	}

	ev, err := football[0].Publish([]byte("final"))
	if err != nil {
		t.Fatal(err)
	}
	k.pump(1 << 20)

	for _, g := range [][]*Process{sports, entertainment} {
		for _, p := range g {
			got := k.delivered[p.ID()]
			if len(got) != 1 || got[0].ID != ev.ID {
				t.Fatalf("%s (topic %s) deliveries = %v", p.ID(), p.Topic(), got)
			}
		}
	}
}

// TestExtraTablesDeterministicOrder: dissemination, pings and leave
// walk the extra supertopic tables in sorted topic order, not map
// order — the send sequence for a fixed seed must not depend on the
// order the tables were declared in (byte-identical runs are the
// simulator's core contract).
func TestExtraTablesDeterministicOrder(t *testing.T) {
	build := func(declarationOrder []topic.Topic) *fakeEnv {
		env := newFakeEnv(7)
		p := MustNewProcess("self", ".a.b", testParams(), env)
		p.SeedTopicTable([]ids.ProcessID{"m1", "m2", "m3"})
		for _, sup := range declarationOrder {
			if err := p.AddExtraSuperTable(sup, []ids.ProcessID{
				ids.ProcessID("x-" + string(sup)), ids.ProcessID("y-" + string(sup)),
			}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 20; i++ {
			if _, err := p.Publish([]byte("e")); err != nil {
				t.Fatal(err)
			}
		}
		p.Leave()
		return env
	}

	ref := build([]topic.Topic{".x", ".y", ".z"})
	for _, order := range [][]topic.Topic{
		{".z", ".y", ".x"},
		{".y", ".z", ".x"},
	} {
		got := build(order)
		if len(got.sent) != len(ref.sent) {
			t.Fatalf("declaration order %v: %d sends, want %d", order, len(got.sent), len(ref.sent))
		}
		for i := range ref.sent {
			if got.sent[i].to != ref.sent[i].to || got.sent[i].msg.Type != ref.sent[i].msg.Type {
				t.Fatalf("declaration order %v: send %d = %s/%s, want %s/%s",
					order, i, got.sent[i].msg.Type, got.sent[i].to, ref.sent[i].msg.Type, ref.sent[i].to)
			}
		}
	}
}

// TestExtraSuperTopicsSortedOrder pins the determinism contract on the
// listing: whatever the declaration order, ExtraSuperTopics reports
// the extras in sorted order, never in map-iteration order (caught by
// damcvet's detrand analyzer).
func TestExtraSuperTopicsSortedOrder(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".sports.football", testParams(), env)
	for _, sup := range []topic.Topic{".zoo", ".entertainment", ".market"} {
		if err := p.AddExtraSuperTable(sup, []ids.ProcessID{"c1"}); err != nil {
			t.Fatal(err)
		}
	}
	want := []topic.Topic{".entertainment", ".market", ".zoo"}
	for i := 0; i < 16; i++ {
		got := p.ExtraSuperTopics()
		if len(got) != len(want) {
			t.Fatalf("ExtraSuperTopics = %v, want %v", got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("ExtraSuperTopics = %v, want sorted %v", got, want)
			}
		}
	}
}
