package core

import (
	"errors"
	"fmt"
	"slices"

	"damulticast/internal/topic"
)

// Registry multiplexes one shared endpoint across several Processes,
// one per subscribed topic. A live hub decodes every inbound frame
// into a Message and asks the registry which member process it is
// for; the registry resolves the message's Dest demux field (set by
// every sender, see Message.Dest) against the topics registered here.
//
// Like Process itself, a Registry is not goroutine-safe: one owner —
// the hub's inbox loop — drives it. Iteration (Tick, Topics) is in
// sorted topic order so multi-process drivers stay deterministic.
type Registry struct {
	procs map[topic.Topic]*Process
	order []topic.Topic // sorted ascending
}

// ErrDuplicateTopic rejects registering a second process for a topic
// already hosted by this endpoint.
var ErrDuplicateTopic = errors.New("core: topic already registered")

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{procs: make(map[topic.Topic]*Process)}
}

// Len returns the number of registered processes.
func (r *Registry) Len() int { return len(r.procs) }

// Topics lists the registered topics in sorted order. The slice is
// shared; callers must not mutate it.
func (r *Registry) Topics() []topic.Topic { return r.order }

// Get returns the process subscribed to tp, or nil.
func (r *Registry) Get(tp topic.Topic) *Process { return r.procs[tp] }

// Add registers p under its topic.
func (r *Registry) Add(p *Process) error {
	tp := p.Topic()
	if _, dup := r.procs[tp]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicateTopic, tp)
	}
	r.procs[tp] = p
	i, _ := slices.BinarySearch(r.order, tp)
	r.order = slices.Insert(r.order, i, tp)
	return nil
}

// Remove unregisters the process subscribed to tp and returns it (nil
// when none was registered).
func (r *Registry) Remove(tp topic.Topic) *Process {
	p, ok := r.procs[tp]
	if !ok {
		return nil
	}
	delete(r.procs, tp)
	i, _ := slices.BinarySearch(r.order, tp)
	r.order = slices.Delete(r.order, i, i+1)
	return p
}

// Route resolves the member process a message is for, or nil when no
// registered process should handle it (the frame is then a routing
// loss, counted by the caller).
//
// Messages carrying a Dest route exactly: either a process subscribed
// to that topic is registered or the message is dropped — group
// traffic must never leak into another group's process. Messages
// without a Dest are bootstrap REQCONTACT floods addressed to
// "whoever lives at this endpoint"; any process may answer or
// forward, so the registry prefers one that can actually answer (its
// topic, or the supertopic it tracks, is being searched) and
// otherwise falls back to the first process in topic order.
func (r *Registry) Route(m *Message) *Process {
	if m == nil || len(r.order) == 0 {
		return nil
	}
	if m.Dest != "" {
		return r.procs[m.Dest]
	}
	if m.Type == MsgReqContact {
		// Walk the searched topics in the searcher's order (deepest
		// first, Fig. 4) so an endpoint subscribed to both a narrow and
		// a wide match answers with the narrowest one — the same
		// preference onReqContact itself applies.
		for _, searched := range m.SearchTopics {
			for _, tp := range r.order {
				p := r.procs[tp]
				if p.Topic() == searched || (p.SuperKnownTopic() == searched && p.superTable.Len() > 0) {
					return p
				}
			}
		}
	}
	return r.procs[r.order[0]]
}

// Handle routes m and feeds it to the resolved process. It reports
// whether any process consumed the message.
func (r *Registry) Handle(m *Message) bool {
	p := r.Route(m)
	if p == nil {
		return false
	}
	p.HandleMessage(m)
	return true
}

// Tick advances every registered process by one logical step, in
// sorted topic order.
func (r *Registry) Tick() {
	for _, tp := range r.order {
		r.procs[tp].Tick()
	}
}
