// Package core implements the daMulticast protocol engine: the
// membership tables (topic table, supertopic table), the
// FIND_SUPER_CONTACT bootstrap task (paper Fig. 4), the
// subscription/reception logic (Fig. 5), the link-maintenance task
// KEEP_TABLE_UPDATED (Fig. 6), and the dissemination algorithm
// (Fig. 7).
//
// The engine is transport-agnostic and clock-agnostic: a Process is a
// pure message-driven state machine driven through HandleMessage and
// Tick, with all outbound traffic funnelled through an Env. The
// round-based simulator (internal/sim) and the live goroutine runtime
// (internal/runtime) both drive this same engine, so the figures the
// simulator regenerates exercise exactly the code a deployment runs.
package core

import (
	"errors"
	"fmt"
)

// Params are the per-topic protocol constants of the paper. The
// symbols match §V and §VII-A.
type Params struct {
	// B sizes the topic table: (B+1)·ln(S) entries (substrate [10]).
	B float64
	// C is the gossip fanout constant: events are forwarded to
	// ln(S)+C random group members.
	C float64
	// G determines the self-election probability pSel = G/S with
	// which a process forwards an event toward its supergroup.
	G float64
	// A determines the per-superprocess send probability pA = A/Z.
	A float64
	// Z is the (constant) supertopic table size.
	Z int
	// Tau is the liveness threshold τ: when CHECK(sTable) ≤ Tau the
	// process requests fresh superprocess contacts (Fig. 6 line 18).
	Tau int

	// GroupSizeHint, when > 0, is used as S for pSel and the fanout.
	// When 0, S is estimated from the topic-table occupancy, inverting
	// the (B+1)·ln(S) sizing rule.
	GroupSizeHint int

	// SeenCap bounds the duplicate-suppression window.
	SeenCap int

	// MaxAge is the membership age (in ticks) beyond which a
	// topic-table entry is suspected failed and evicted. 0 disables
	// age-based eviction (the simulator's static-table mode).
	MaxAge int

	// ShufflePeriod is the number of ticks between membership
	// shuffles (0 disables shuffling — static tables).
	ShufflePeriod int

	// MaintainPeriod is the number of ticks between KEEP_TABLE_UPDATED
	// executions (0 disables link maintenance).
	MaintainPeriod int

	// PingTimeout is how many ticks a superprocess may stay silent
	// after a ping before CHECK counts it dead.
	PingTimeout int

	// FindSuperPeriod is the number of ticks FIND_SUPER_CONTACT waits
	// for an answer before widening its search scope by one level.
	FindSuperPeriod int

	// ReqContactTTL bounds the hop count of REQCONTACT forwarding
	// through the bootstrap neighborhood.
	ReqContactTTL int

	// NeighborhoodFanout is how many bootstrap neighbors each
	// REQCONTACT wave contacts.
	NeighborhoodFanout int

	// RecoverPeriod is the number of ticks between anti-entropy
	// recovery waves (digest gossip; see recover.go). 0 — the default —
	// disables recovery entirely: the protocol is then exactly the
	// paper's best-effort daMulticast, with no extra random draws.
	RecoverPeriod int

	// RecoverFanout is how many random group mates each recovery wave
	// sends a digest to.
	RecoverFanout int

	// RecoverStoreCap bounds the per-process recovery event store
	// (events, not bytes) — the memory ceiling of the subsystem,
	// analogous to SeenCap for the duplicate window.
	RecoverStoreCap int

	// RecoverMaxAge is the store age bound: events first seen more than
	// this many ticks ago are GC'd at the next wave and can no longer
	// be served to peers.
	RecoverMaxAge int

	// RecoverDigestBits is the recovery digest's bloom-filter budget in
	// bits per stored event (10 ≈ 1% false positives). Larger stores
	// build proportionally larger filters up to a hard byte cap; see
	// bloom.go. The sentinel DigestBitsAdaptive picks the budget from
	// the observed store count at digest-build time.
	RecoverDigestBits int

	// CrossRecoverPeriod is the number of ticks between cross-group
	// recovery waves: digests sent to known supergroup and subgroup
	// contacts, so repair climbs and descends the topic hierarchy
	// instead of staying inside one group. 0 (the default) keeps
	// recovery intra-group only. Requires RecoverPeriod > 0.
	CrossRecoverPeriod int

	// CrossRecoverFanout is how many contacts per direction (up the
	// supertopic table, down the learned subgroup contacts) each
	// cross-group wave sends a digest to.
	CrossRecoverFanout int
}

// DigestBitsAdaptive, assigned to Params.RecoverDigestBits, sizes each
// recovery digest from the observed store count when the filter is
// built instead of a fixed per-entry budget: small stores get generous
// filters (16 bits/entry, ~0.04% false positives — a false positive on
// a tiny store suppresses a large fraction of the repair), big stores
// taper to the paper-default 10 bits/entry before the byte cap bites.
// See adaptiveDigestBits in bloom.go for the schedule.
const DigestBitsAdaptive = -1

// DefaultParams returns the paper's simulation setting (§VII-A):
// b=3, c=5, g=5, a=1, z=3, plus sensible defaults for the live-mode
// knobs the paper leaves to the implementation.
func DefaultParams() Params {
	return Params{
		B:                  3,
		C:                  5,
		G:                  5,
		A:                  1,
		Z:                  3,
		Tau:                1,
		SeenCap:            8192,
		MaxAge:             10,
		ShufflePeriod:      1,
		MaintainPeriod:     2,
		PingTimeout:        2,
		FindSuperPeriod:    3,
		ReqContactTTL:      8,
		NeighborhoodFanout: 4,
		RecoverPeriod:      0, // recovery is opt-in
		RecoverFanout:      2,
		RecoverStoreCap:    512,
		RecoverMaxAge:      20,
		RecoverDigestBits:  10,
		CrossRecoverPeriod: 0, // cross-group recovery is opt-in on top
		CrossRecoverFanout: 2,
	}
}

// Validation errors.
var (
	ErrBadZ       = errors.New("core: Z must be >= 1")
	ErrBadA       = errors.New("core: A must be in [0, Z]")
	ErrBadG       = errors.New("core: G must be >= 0")
	ErrBadB       = errors.New("core: B must be >= 0")
	ErrBadTau     = errors.New("core: Tau must be in [0, Z]")
	ErrBadRecover = errors.New("core: recovery knobs must be positive when RecoverPeriod > 0")
	ErrBadCross   = errors.New("core: CrossRecoverPeriod requires RecoverPeriod > 0 and a positive CrossRecoverFanout")
)

// Validate checks the constraints stated in the paper: 1 ≤ a ≤ z,
// 1 ≤ g (we relax to 0 ≤ g to allow disabling upward links in
// ablations), 0 ≤ τ ≤ z.
func (p Params) Validate() error {
	if p.Z < 1 {
		return fmt.Errorf("%w (got %d)", ErrBadZ, p.Z)
	}
	if p.A < 0 || p.A > float64(p.Z) {
		return fmt.Errorf("%w (got %g with Z=%d)", ErrBadA, p.A, p.Z)
	}
	if p.G < 0 {
		return fmt.Errorf("%w (got %g)", ErrBadG, p.G)
	}
	if p.B < 0 {
		return fmt.Errorf("%w (got %g)", ErrBadB, p.B)
	}
	if p.Tau < 0 || p.Tau > p.Z {
		return fmt.Errorf("%w (got %d with Z=%d)", ErrBadTau, p.Tau, p.Z)
	}
	if p.RecoverPeriod > 0 && (p.RecoverFanout < 1 || p.RecoverStoreCap < 1 || p.RecoverMaxAge < 1 ||
		(p.RecoverDigestBits < 1 && p.RecoverDigestBits != DigestBitsAdaptive)) {
		return fmt.Errorf("%w (fanout=%d storecap=%d maxage=%d digestbits=%d)",
			ErrBadRecover, p.RecoverFanout, p.RecoverStoreCap, p.RecoverMaxAge, p.RecoverDigestBits)
	}
	if p.CrossRecoverPeriod > 0 && (p.RecoverPeriod < 1 || p.CrossRecoverFanout < 1) {
		return fmt.Errorf("%w (recover=%d crossfanout=%d)",
			ErrBadCross, p.RecoverPeriod, p.CrossRecoverFanout)
	}
	return nil
}

// withDefaults fills zero-valued live-mode knobs from DefaultParams so
// that callers may specify only the paper's five constants.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.SeenCap == 0 {
		p.SeenCap = d.SeenCap
	}
	if p.PingTimeout == 0 {
		p.PingTimeout = d.PingTimeout
	}
	if p.FindSuperPeriod == 0 {
		p.FindSuperPeriod = d.FindSuperPeriod
	}
	if p.ReqContactTTL == 0 {
		p.ReqContactTTL = d.ReqContactTTL
	}
	if p.NeighborhoodFanout == 0 {
		p.NeighborhoodFanout = d.NeighborhoodFanout
	}
	// RecoverPeriod deliberately keeps its zero value (recovery off);
	// only the dependent knobs default, so enabling recovery is a
	// one-field change.
	if p.RecoverFanout == 0 {
		p.RecoverFanout = d.RecoverFanout
	}
	if p.RecoverStoreCap == 0 {
		p.RecoverStoreCap = d.RecoverStoreCap
	}
	if p.RecoverMaxAge == 0 {
		p.RecoverMaxAge = d.RecoverMaxAge
	}
	if p.RecoverDigestBits == 0 {
		p.RecoverDigestBits = d.RecoverDigestBits
	}
	// CrossRecoverPeriod keeps its zero value too (cross-group recovery
	// off); only its fanout defaults.
	if p.CrossRecoverFanout == 0 {
		p.CrossRecoverFanout = d.CrossRecoverFanout
	}
	return p
}
