package core

// Batched event dissemination for the live path. The per-event
// DISSEMINATE of Fig. 7 is unchanged — every event still draws its own
// upward election and its own ln(S)+c gossip targets, consuming the
// process's random stream exactly as sequential publishes would — but
// when several events are in flight at once (an application
// PublishBatch, or a whole inbound batch frame being re-disseminated),
// the elected (target, destination-group) pairs are accumulated first
// and each pair then receives ONE message carrying every event elected
// for it: MsgEventBatch when two or more rode together, a plain
// MsgEvent when only one did. N events to a shared target cost one
// frame instead of N.
//
// The simulation kernel never publishes batches, so none of this code
// runs under it and golden digests are unaffected.

import (
	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// MsgEventBatch carries several events for one destination group in a
// single frame (wire v5). The value continues the enum space of
// message.go / leave.go / recover.go; the MsgLeave+3 slot stays retired
// (see recover.go).
const MsgEventBatch MsgType = MsgLeave + 4

func init() {
	msgTypeNames[MsgEventBatch] = "EVENT_BATCH"
}

// RetainsEvents reports whether this process may retain *Event pointers
// past HandleMessage — the anti-entropy store does, holding events for
// later recovery pushes. Drivers that decode frames into reusable
// scratch (wire.Decoder) must deep-clone inbound events before handing
// them to a retaining process; for everyone else the events are only
// read synchronously.
func (p *Process) RetainsEvents() bool { return p.store != nil }

// PublishBatch creates one event per payload — ids, seen-window and
// recovery-store bookkeeping identical to the same sequence of Publish
// calls — and disseminates them coalesced: targets elected for several
// of the batch's events receive them in one MsgEventBatch frame.
func (p *Process) PublishBatch(payloads [][]byte) ([]*Event, error) {
	if p.stopped {
		return nil, ErrStopped
	}
	if len(payloads) == 0 {
		return nil, nil
	}
	evs := make([]*Event, len(payloads))
	acc := p.takeAccum()
	for i, payload := range payloads {
		p.nextSeq++
		ev := &Event{
			ID:      ids.EventID{Origin: p.id, Seq: p.nextSeq},
			Topic:   p.topic,
			Payload: payload,
		}
		evs[i] = ev
		p.seen.Add(ev.ID)
		p.rememberEvent(ev)
		p.disseminateInto(acc, ev)
	}
	p.flushAccum(acc)
	return evs, nil
}

// onEventBatch receives a batch frame: every first-time event of the
// batch is recorded, delivered, and re-disseminated — with the
// re-dissemination itself coalesced, so batching survives gossip hops
// instead of exploding back into one frame per event after the first.
func (p *Process) onEventBatch(m *Message) {
	acc := p.takeAccum()
	for _, ev := range m.Events {
		if ev == nil || !p.seen.Add(ev.ID) {
			continue // duplicate (or hole), like any gossiped duplicate
		}
		p.rememberEvent(ev)
		p.disseminateInto(acc, ev)
		p.env.Deliver(ev.Clone())
	}
	p.flushAccum(acc)
}

// batchFlight is one accumulated (target, destination group) pair and
// the events elected for it, in election order.
type batchFlight struct {
	to   ids.ProcessID
	dest topic.Topic
	evs  []*Event
}

type batchKey struct {
	to   ids.ProcessID
	dest topic.Topic
}

// batchAccum groups per-event election results by (target, group) in
// first-touch order, so the flush emits frames in a deterministic
// order.
type batchAccum struct {
	flights []batchFlight
	index   map[batchKey]int
}

func (a *batchAccum) add(to ids.ProcessID, dest topic.Topic, ev *Event) {
	k := batchKey{to: to, dest: dest}
	if i, ok := a.index[k]; ok {
		a.flights[i].evs = append(a.flights[i].evs, ev)
		return
	}
	a.index[k] = len(a.flights)
	a.flights = append(a.flights, batchFlight{to: to, dest: dest, evs: []*Event{ev}})
}

func (a *batchAccum) reset() {
	clear(a.index)
	a.flights = a.flights[:0]
}

// takeAccum hands out the process's reusable accumulator, detaching it
// first (the same reentrancy guard as p.batch in disseminate: a nested
// batch dissemination must not scribble over an accumulation in
// flight).
func (p *Process) takeAccum() *batchAccum {
	acc := p.accum
	p.accum = nil
	if acc == nil {
		acc = &batchAccum{index: make(map[batchKey]int)}
	}
	acc.reset()
	return acc
}

// disseminateInto runs one event's DISSEMINATE election (identical
// draws, in identical order, to disseminate in disseminate.go) but
// accumulates the elected pairs instead of sending immediately.
func (p *Process) disseminateInto(acc *batchAccum, ev *Event) {
	r := p.env.Rand()

	// (1) Upward dissemination toward the supergroup.
	if p.superTable.Len() > 0 && xrand.Bernoulli(r, p.pSel()) {
		pa := p.pA()
		for _, target := range p.superTable.IDs() {
			if xrand.Bernoulli(r, pa) && target != p.id {
				acc.add(target, p.superKnown, ev)
			}
		}
	}
	// (1b) Same, per declared extra supertopic (§VIII extension).
	if len(p.extras) > 0 {
		pa := p.pA()
		for _, sup := range p.extraOrder {
			v := p.extras[sup]
			if v.Len() == 0 || !xrand.Bernoulli(r, p.pSel()) {
				continue
			}
			for _, target := range v.IDs() {
				if xrand.Bernoulli(r, pa) && target != p.id {
					acc.add(target, sup, ev)
				}
			}
		}
	}
	// (2) Gossip within the group: ln(S)+c distinct targets.
	k := p.fanout()
	for _, target := range p.topicTable.Sample(r, k) {
		if target != p.id {
			acc.add(target, p.topic, ev)
		}
	}
}

// flushAccum emits one message per accumulated (target, group) pair —
// MsgEventBatch for several events, plain MsgEvent for one — and
// returns the accumulator for reuse. Sent messages are never mutated
// afterwards (receivers may retain them).
func (p *Process) flushAccum(acc *batchAccum) {
	for i := range acc.flights {
		f := &acc.flights[i]
		m := &Message{
			From:      p.id,
			FromTopic: p.topic,
			Dest:      f.dest,
		}
		if len(f.evs) == 1 {
			m.Type = MsgEvent
			m.Event = f.evs[0]
		} else {
			m.Type = MsgEventBatch
			m.Events = f.evs
		}
		p.env.Send(f.to, m)
	}
	p.accum = acc
}
