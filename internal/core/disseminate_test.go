package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/topic"
)

func TestPublishGossipsToFanoutTargets(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.GroupSizeHint = 100
	params.C = 5
	p := MustNewProcess("p0", ".a", params, env)
	p.SetTopicTableCap(64)
	var mates []ids.ProcessID
	for i := 0; i < 50; i++ {
		mates = append(mates, ids.ProcessID(fmt.Sprintf("m%02d", i)))
	}
	p.SeedTopicTable(mates)

	ev, err := p.Publish([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if ev.Topic != ".a" || ev.ID.Origin != "p0" {
		t.Errorf("event = %+v", ev)
	}
	sent := env.sentOfType(MsgEvent)
	want := 10 // ceil(ln(100)+5)
	if len(sent) != want {
		t.Errorf("event sends = %d, want %d", len(sent), want)
	}
	// All targets distinct and from the topic table.
	seen := map[ids.ProcessID]bool{}
	for _, s := range sent {
		if seen[s.to] {
			t.Errorf("duplicate target %s", s.to)
		}
		seen[s.to] = true
		if s.to == "p0" {
			t.Error("sent to self")
		}
	}
}

func TestPublishSequenceIncrements(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a", testParams(), env)
	e1, _ := p.Publish(nil)
	e2, _ := p.Publish(nil)
	if e1.ID.Seq == e2.ID.Seq {
		t.Error("sequence did not advance")
	}
}

func TestReceiveDeliversOnceAndForwards(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.GroupSizeHint = 10
	p := MustNewProcess("p0", ".a", params, env)
	p.SetTopicTableCap(16)
	p.SeedTopicTable([]ids.ProcessID{"m1", "m2", "m3", "m4", "m5", "m6", "m7", "m8", "m9"})

	ev := &Event{ID: ids.EventID{Origin: "pub", Seq: 1}, Topic: ".a", Payload: []byte("x")}
	m := &Message{Type: MsgEvent, From: "m1", FromTopic: ".a", Event: ev}
	p.HandleMessage(m)

	if len(env.delivered) != 1 {
		t.Fatalf("delivered = %d", len(env.delivered))
	}
	if got := env.delivered[0]; got.ID != ev.ID || string(got.Payload) != "x" {
		t.Errorf("delivered event = %+v", got)
	}
	forwards := len(env.sentOfType(MsgEvent))
	if forwards == 0 {
		t.Error("first reception did not forward")
	}

	// Duplicate: no new delivery, no new forwards.
	env.reset()
	p.HandleMessage(m)
	if len(env.delivered) != 0 {
		t.Error("duplicate delivered")
	}
	if len(env.sentOfType(MsgEvent)) != 0 {
		t.Error("duplicate forwarded")
	}
}

func TestDeliveredEventIsACopy(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a", testParams(), env)
	ev := &Event{ID: ids.EventID{Origin: "pub", Seq: 1}, Topic: ".a", Payload: []byte("abc")}
	p.HandleMessage(&Message{Type: MsgEvent, From: "m", Event: ev})
	ev.Payload[0] = 'Z'
	if env.delivered[0].Payload[0] == 'Z' {
		t.Error("delivered event aliases protocol buffer")
	}
}

func TestUpwardDisseminationRespectsPSelAndPA(t *testing.T) {
	// With G >= S, pSel = 1: the publisher always self-elects.
	// With A = Z, pA = 1: every supertable entry gets the event.
	env := newFakeEnv(1)
	params := testParams()
	params.GroupSizeHint = 10
	params.G = 10000
	params.A = 3
	params.Z = 3
	p := MustNewProcess("p0", ".a.b", params, env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1", "s2", "s3"})

	if _, err := p.Publish(nil); err != nil {
		t.Fatal(err)
	}
	ups := map[ids.ProcessID]bool{}
	for _, s := range env.sentOfType(MsgEvent) {
		ups[s.to] = true
	}
	for _, sid := range []ids.ProcessID{"s1", "s2", "s3"} {
		if !ups[sid] {
			t.Errorf("superprocess %s not reached with pSel=pA=1", sid)
		}
	}
}

func TestUpwardDisseminationDisabledWithGZero(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.G = 0 // never self-elect
	p := MustNewProcess("p0", ".a.b", params, env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1", "s2", "s3"})
	for i := 0; i < 50; i++ {
		if _, err := p.Publish(nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range env.sentOfType(MsgEvent) {
		switch s.to {
		case "s1", "s2", "s3":
			t.Fatalf("event sent upward with G=0")
		}
	}
}

func TestRootProcessNeverSendsUpward(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.G = 10000 // pSel = 1 if it had a supergroup
	p := MustNewProcess("p0", topic.Root, params, env)
	p.SeedTopicTable([]ids.ProcessID{"r1", "r2"})
	if _, err := p.Publish(nil); err != nil {
		t.Fatal(err)
	}
	for _, s := range env.sentOfType(MsgEvent) {
		if s.to != "r1" && s.to != "r2" {
			t.Errorf("root sent beyond its group: %s", s.to)
		}
	}
}

func TestPublisherIgnoresEchoOfOwnEvent(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"m1"})
	ev, _ := p.Publish(nil)
	env.reset()
	// The event gossips back to the publisher.
	p.HandleMessage(&Message{Type: MsgEvent, From: "m1", Event: ev})
	if len(env.delivered) != 0 {
		t.Error("publisher delivered its own event")
	}
	if len(env.sentOfType(MsgEvent)) != 0 {
		t.Error("publisher re-forwarded its own event")
	}
}

func TestOnEventNilEvent(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a", testParams(), env)
	p.HandleMessage(&Message{Type: MsgEvent, From: "m"}) // nil Event: ignored
	if len(env.delivered) != 0 {
		t.Error("nil event delivered")
	}
}

// Integration: a 3-level chain T2 -> T1 -> T0 with pSel=pA=1 and
// perfect channels must deliver a T2 publication to every process of
// every level (events climb group by group).
func TestEndToEndClimb(t *testing.T) {
	k := newKernel(7)
	params := testParams()
	params.G = 1 << 20 // pSel = 1
	params.A = 3       // pA = 1 with Z=3
	params.Z = 3

	chain, err := topic.Chain(2, "l") // [.l1, .l1.l2]
	if err != nil {
		t.Fatal(err)
	}
	t2 := chain[1] // .l1.l2
	t1 := chain[0] // .l1
	t0 := topic.Root

	mk := func(tp topic.Topic, n int, hint int) []*Process {
		p := params
		p.GroupSizeHint = hint
		var out []*Process
		for i := 0; i < n; i++ {
			id := ids.ProcessID(fmt.Sprintf("%s/%d", tp, i))
			out = append(out, k.add(id, tp, p))
		}
		return out
	}
	g2 := mk(t2, 20, 20)
	g1 := mk(t1, 10, 10)
	g0 := mk(t0, 5, 5)

	seedGroup := func(g []*Process) {
		ids_ := make([]ids.ProcessID, len(g))
		for i, p := range g {
			ids_[i] = p.ID()
		}
		for _, p := range g {
			p.SetTopicTableCap(len(g))
			p.SeedTopicTable(ids_)
		}
	}
	seedGroup(g2)
	seedGroup(g1)
	seedGroup(g0)
	for _, p := range g2 {
		p.SeedSuperTable(t1, []ids.ProcessID{g1[0].ID(), g1[1].ID(), g1[2].ID()})
	}
	for _, p := range g1 {
		p.SeedSuperTable(t0, []ids.ProcessID{g0[0].ID(), g0[1].ID(), g0[2].ID()})
	}

	ev, err := g2[0].Publish([]byte("climb"))
	if err != nil {
		t.Fatal(err)
	}
	k.pump(1 << 20)

	for _, g := range [][]*Process{g2, g1, g0} {
		for _, p := range g {
			if p == g2[0] {
				continue // publisher does not self-deliver
			}
			got := k.delivered[p.ID()]
			if len(got) != 1 || got[0].ID != ev.ID {
				t.Fatalf("process %s (topic %s) deliveries = %v", p.ID(), p.Topic(), got)
			}
		}
	}
}

// No parasite messages: processes of sibling/sub branches must never
// receive an event published on an unrelated branch.
func TestNoParasiteDeliveries(t *testing.T) {
	k := newKernel(11)
	params := testParams()
	params.G = 1 << 20
	params.A = 3
	params.Z = 3
	params.GroupSizeHint = 6

	tSports := topic.MustParse(".news.sports")
	tPolitics := topic.MustParse(".news.politics")
	tNews := topic.MustParse(".news")

	mk := func(tp topic.Topic, n int) []*Process {
		var out []*Process
		for i := 0; i < n; i++ {
			out = append(out, k.add(ids.ProcessID(fmt.Sprintf("%s/%d", tp, i)), tp, params))
		}
		return out
	}
	sports := mk(tSports, 6)
	politics := mk(tPolitics, 6)
	news := mk(tNews, 6)

	seed := func(g []*Process) {
		var all []ids.ProcessID
		for _, p := range g {
			all = append(all, p.ID())
		}
		for _, p := range g {
			p.SetTopicTableCap(8)
			p.SeedTopicTable(all)
		}
	}
	seed(sports)
	seed(politics)
	seed(news)
	sup := []ids.ProcessID{news[0].ID(), news[1].ID(), news[2].ID()}
	for _, p := range sports {
		p.SeedSuperTable(tNews, sup)
	}
	for _, p := range politics {
		p.SeedSuperTable(tNews, sup)
	}

	if _, err := sports[0].Publish([]byte("goal")); err != nil {
		t.Fatal(err)
	}
	k.pump(1 << 20)

	// Politics processes must receive nothing: the event flows up to
	// .news but never sideways/down into .news.politics.
	for _, p := range politics {
		if got := k.delivered[p.ID()]; len(got) != 0 {
			t.Errorf("parasite delivery at %s: %v", p.ID(), got)
		}
	}
	// All .news processes receive it (their topic includes .news.sports).
	for _, p := range news {
		if got := k.delivered[p.ID()]; len(got) != 1 {
			t.Errorf("news process %s deliveries = %d", p.ID(), len(got))
		}
	}
}
