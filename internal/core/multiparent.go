package core

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Multiple supertopics (§VIII, "Concluding Remarks"): the paper
// sketches multiple inheritance — a topic having several direct
// supertopics — "by adding a supertopic table for each supertopic".
// This file implements exactly that: besides the primary supertopic
// derived from the topic name, an application may declare extra parent
// topics (which need not be name-prefixes — that is the point of
// multiple inheritance). Each extra parent gets its own constant-size
// table; dissemination elects itself independently per table, and the
// KEEP_TABLE_UPDATED liveness machinery covers extra tables alongside
// the primary one.

// ErrBadExtraSuper rejects invalid extra-supertopic declarations.
var ErrBadExtraSuper = errors.New("core: invalid extra supertopic")

// AddExtraSuperTable declares an additional direct supertopic and
// seeds its table with contacts interested in it. The supertopic may
// be any topic other than the process's own and may lie outside the
// name hierarchy (e.g. ".sports.football" additionally under
// ".entertainment"). Later calls with the same topic merge contacts.
func (p *Process) AddExtraSuperTable(sup topic.Topic, contacts []ids.ProcessID) error {
	if !sup.Valid() {
		return fmt.Errorf("%w: %q", ErrBadExtraSuper, string(sup))
	}
	if sup == p.topic {
		return fmt.Errorf("%w: %s is the process's own topic", ErrBadExtraSuper, sup)
	}
	if sup == p.topic.Super() {
		return fmt.Errorf("%w: %s is the primary supertopic", ErrBadExtraSuper, sup)
	}
	if p.extras == nil {
		p.extras = make(map[topic.Topic]*membership.View)
		p.extraSeen = make(map[topic.Topic]map[ids.ProcessID]int)
	}
	v, ok := p.extras[sup]
	if !ok {
		v = membership.NewView(p.id, p.params.Z)
		p.extras[sup] = v
		p.extraSeen[sup] = make(map[ids.ProcessID]int, p.params.Z)
		i, _ := slices.BinarySearch(p.extraOrder, sup)
		p.extraOrder = slices.Insert(p.extraOrder, i, sup)
	}
	for _, c := range contacts {
		if v.Add(c) {
			p.extraSeen[sup][c] = p.tick
		}
	}
	return nil
}

// RemoveExtraSuperTable drops a declared extra supertopic.
func (p *Process) RemoveExtraSuperTable(sup topic.Topic) {
	if _, ok := p.extras[sup]; ok {
		i, _ := slices.BinarySearch(p.extraOrder, sup)
		p.extraOrder = slices.Delete(p.extraOrder, i, i+1)
	}
	delete(p.extras, sup)
	delete(p.extraSeen, sup)
}

// ExtraSuperTopics lists the declared extra supertopics in sorted
// order.
func (p *Process) ExtraSuperTopics() []topic.Topic {
	out := make([]topic.Topic, 0, len(p.extraOrder))
	return append(out, p.extraOrder...)
}

// ExtraSuperTable returns the contacts of one extra supertopic table.
func (p *Process) ExtraSuperTable(sup topic.Topic) []ids.ProcessID {
	v, ok := p.extras[sup]
	if !ok {
		return nil
	}
	return v.IDs()
}

// appendExtraTargets performs the upward election for every extra
// supertopic table, mirroring Fig. 7 lines 3-7 independently per table
// ("neither would hamper the overall performance"), appending elected
// targets — and one destination-group segment per table — for the
// caller's batched fan-out.
func (p *Process) appendExtraTargets(r *rand.Rand, targets []ids.ProcessID, segs []groupSeg) ([]ids.ProcessID, []groupSeg) {
	if len(p.extras) == 0 {
		return targets, segs
	}
	pa := p.pA()
	for _, sup := range p.extraOrder {
		v := p.extras[sup]
		if v.Len() == 0 || !xrand.Bernoulli(r, p.pSel()) {
			continue
		}
		for _, target := range v.IDs() {
			if xrand.Bernoulli(r, pa) && target != p.id {
				targets = append(targets, target)
			}
		}
		segs = appendSeg(segs, sup, len(targets))
	}
	return targets, segs
}

// pingExtras extends a liveness wave to the extra tables.
func (p *Process) pingExtras() {
	for _, sup := range p.extraOrder {
		v := p.extras[sup]
		for _, target := range v.IDs() {
			p.env.Send(target, &Message{
				Type:      MsgPing,
				From:      p.id,
				FromTopic: p.topic,
				Dest:      sup,
			})
		}
	}
}

// recordExtraPong credits a pong against every extra table containing
// the sender.
func (p *Process) recordExtraPong(from ids.ProcessID) {
	for _, sup := range p.extraOrder {
		if p.extras[sup].Contains(from) {
			p.extraSeen[sup][from] = p.tick
		}
	}
}

// resolveExtraChecks applies the CHECK logic per extra table: evict
// the silent, ask the live for fresh members when at or below τ.
func (p *Process) resolveExtraChecks(waveStart int) {
	for _, sup := range p.extraOrder {
		v := p.extras[sup]
		var live, dead []ids.ProcessID
		for _, id := range v.IDs() {
			if seen, ok := p.extraSeen[sup][id]; ok && seen >= waveStart {
				live = append(live, id)
			} else {
				dead = append(dead, id)
			}
		}
		for _, id := range dead {
			v.Remove(id)
			delete(p.extraSeen[sup], id)
		}
		if len(live) > 0 && len(live) <= p.params.Tau {
			for _, id := range live {
				p.env.Send(id, &Message{
					Type:      MsgNewProcessReq,
					From:      p.id,
					FromTopic: p.topic,
					Dest:      sup,
				})
			}
		}
	}
}

// mergeExtraContacts folds a NEWPROCESS answer into a matching extra
// table, if any. Reports whether the answer was consumed.
func (p *Process) mergeExtraContacts(sup topic.Topic, contacts []ids.ProcessID) bool {
	v, ok := p.extras[sup]
	if !ok {
		return false
	}
	for _, c := range contacts {
		if v.Add(c) {
			p.extraSeen[sup][c] = p.tick
		}
	}
	return true
}
