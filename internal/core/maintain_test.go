package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
)

func maintainParams() Params {
	p := testParams()
	p.MaintainPeriod = 1
	p.PingTimeout = 1
	p.G = 1 << 20 // pSel = 1: deterministic maintenance
	return p
}

func TestShufflePiggybacksSuperTable(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.ShufflePeriod = 1
	p := MustNewProcess("p0", ".a.b", params, env)
	p.SeedTopicTable([]ids.ProcessID{"m1", "m2"})
	p.SeedSuperTable(".a", []ids.ProcessID{"s1", "s2"})

	p.Tick()
	shuffles := env.sentOfType(MsgShuffle)
	if len(shuffles) != 1 {
		t.Fatalf("shuffles = %d", len(shuffles))
	}
	m := shuffles[0].msg
	if m.SuperTopic != ".a" {
		t.Errorf("SuperTopic = %q", m.SuperTopic)
	}
	if len(m.SuperEntries) != 2 {
		t.Errorf("SuperEntries = %v", m.SuperEntries)
	}
	if len(m.Digest.Entries) == 0 || m.Digest.From != "p0" {
		t.Errorf("bad digest: %+v", m.Digest)
	}
}

func TestOnShuffleRepliesAndMergesSuperInfo(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"m1"})

	p.HandleMessage(&Message{
		Type:      MsgShuffle,
		From:      "m2",
		FromTopic: ".a.b",
		Digest: membership.Digest{
			From:    "m2",
			Entries: []membership.Entry{{ID: "m2", Age: 0}, {ID: "m3", Age: 1}},
		},
		SuperTopic:   ".a",
		SuperEntries: []membership.Entry{{ID: "s9", Age: 0}},
	})
	replies := env.sentOfType(MsgShuffleReply)
	if len(replies) != 1 || replies[0].to != "m2" {
		t.Fatalf("replies = %v", replies)
	}
	// Learned group members and super contacts.
	tt := p.TopicTable()
	found := map[ids.ProcessID]bool{}
	for _, id := range tt {
		found[id] = true
	}
	if !found["m2"] || !found["m3"] {
		t.Errorf("topic table after shuffle = %v", tt)
	}
	if p.SuperKnownTopic() != ".a" {
		t.Errorf("super not merged: %q", p.SuperKnownTopic())
	}
}

func TestOnShuffleWrongGroupIgnored(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.HandleMessage(&Message{
		Type:      MsgShuffle,
		From:      "alien",
		FromTopic: ".zzz",
		Digest:    membership.Digest{From: "alien", Entries: []membership.Entry{{ID: "alien"}}},
	})
	if len(env.sent) != 0 {
		t.Error("cross-group shuffle answered")
	}
	if len(p.TopicTable()) != 0 {
		t.Error("cross-group shuffle merged")
	}
	// Reply path too.
	p.HandleMessage(&Message{
		Type:      MsgShuffleReply,
		From:      "alien",
		FromTopic: ".zzz",
		Digest:    membership.Digest{From: "alien", Entries: []membership.Entry{{ID: "alien"}}},
	})
	if len(p.TopicTable()) != 0 {
		t.Error("cross-group reply merged")
	}
}

func TestPingPong(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.HandleMessage(&Message{Type: MsgPing, From: "q"})
	pongs := env.sentOfType(MsgPong)
	if len(pongs) != 1 || pongs[0].to != "q" {
		t.Fatalf("pongs = %v", pongs)
	}
}

func TestKeepTableUpdatedRestartsBootstrapWhenEmpty(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	params := maintainParams()
	p := MustNewProcess("p0", ".a.b", params, env)
	p.Tick() // maintenance fires: empty super table -> FIND_SUPER_CONTACT
	if !p.FindSuperRunning() {
		t.Error("bootstrap not restarted on empty super table")
	}
	if len(env.sentOfType(MsgReqContact)) == 0 {
		t.Error("no REQCONTACT flood")
	}
}

func TestKeepTableUpdatedRootNoop(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	p := MustNewProcess("p0", topic.Root, maintainParams(), env)
	for i := 0; i < 5; i++ {
		p.Tick()
	}
	if len(env.sent) != 0 {
		t.Error("root process ran link maintenance")
	}
}

func TestCheckEvictsDeadAndRequestsFresh(t *testing.T) {
	env := newFakeEnv(1)
	params := maintainParams()
	params.Tau = 1
	p := MustNewProcess("p0", ".a.b", params, env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1", "s2", "s3"})

	// Tick 1: maintenance pings all three.
	p.Tick()
	pings := env.sentOfType(MsgPing)
	if len(pings) != 3 {
		t.Fatalf("pings = %d", len(pings))
	}
	// Only s1 answers.
	p.HandleMessage(&Message{Type: MsgPong, From: "s1", FromTopic: ".a"})
	env.reset()

	// Tick 2: timeout elapsed; CHECK = 1 <= τ: dead evicted, live
	// asked for fresh members.
	p.Tick()
	if got := p.SuperTable(); len(got) != 1 || got[0] != "s1" {
		t.Fatalf("super table after CHECK = %v", got)
	}
	reqs := env.sentOfType(MsgNewProcessReq)
	if len(reqs) != 1 || reqs[0].to != "s1" {
		t.Fatalf("NEWPROCESS requests = %v", reqs)
	}

	// The live superprocess answers with fresh supergroup members.
	p.HandleMessage(&Message{
		Type:          MsgNewProcessAns,
		From:          "s1",
		FromTopic:     ".a",
		Contacts:      []ids.ProcessID{"s4", "s5"},
		ContactsTopic: ".a",
	})
	if got := len(p.SuperTable()); got != 3 {
		t.Errorf("super table after refresh = %d entries", got)
	}
}

func TestCheckAboveTauNoRequest(t *testing.T) {
	env := newFakeEnv(1)
	params := maintainParams()
	params.Tau = 0 // request only when zero live... (live<=0 impossible with responders)
	p := MustNewProcess("p0", ".a.b", params, env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1", "s2"})

	p.Tick() // pings
	p.HandleMessage(&Message{Type: MsgPong, From: "s1", FromTopic: ".a"})
	p.HandleMessage(&Message{Type: MsgPong, From: "s2", FromTopic: ".a"})
	env.reset()
	p.Tick() // resolve: 2 live > τ=0
	if len(env.sentOfType(MsgNewProcessReq)) != 0 {
		t.Error("NEWPROCESS requested although CHECK > τ")
	}
	if len(p.SuperTable()) != 2 {
		t.Errorf("live entries evicted: %v", p.SuperTable())
	}
}

func TestCheckAllDeadLeadsToBootstrap(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	params := maintainParams()
	p := MustNewProcess("p0", ".a.b", params, env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1"})

	p.Tick() // ping wave (s1 never answers)
	env.reset()
	p.Tick() // resolve: table empties
	if len(p.SuperTable()) != 0 {
		t.Fatalf("super table = %v", p.SuperTable())
	}
	p.Tick() // maintenance sees empty table -> bootstrap
	if !p.FindSuperRunning() {
		t.Error("bootstrap not restarted after total super-table death")
	}
}

func TestOnNewProcessReqServesGroupSample(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.Z = 3
	p := MustNewProcess("super0", ".a", params, env)
	p.SeedTopicTable([]ids.ProcessID{"super1", "super2", "super3", "super4"})
	p.HandleMessage(&Message{Type: MsgNewProcessReq, From: "child", FromTopic: ".a.b"})
	ans := env.sentOfType(MsgNewProcessAns)
	if len(ans) != 1 || ans[0].to != "child" {
		t.Fatalf("answers = %v", ans)
	}
	m := ans[0].msg
	if m.ContactsTopic != ".a" {
		t.Errorf("ContactsTopic = %s", m.ContactsTopic)
	}
	if len(m.Contacts) != 4 { // Z sample + self
		t.Errorf("contacts = %v", m.Contacts)
	}
	selfIncluded := false
	for _, c := range m.Contacts {
		if c == "super0" {
			selfIncluded = true
		}
	}
	if !selfIncluded {
		t.Error("answer does not include the superprocess itself")
	}
}

func TestSuperInfoSpreadsThroughGroupViaShuffle(t *testing.T) {
	// Only one group member knows the supergroup; shuffling must
	// spread that knowledge (the §V-A.2a optimization).
	k := newKernel(17)
	params := testParams()
	params.ShufflePeriod = 1
	params.MaxAge = 50

	var group []*Process
	for i := 0; i < 8; i++ {
		group = append(group, k.add(ids.ProcessID(fmt.Sprintf("g%d", i)), ".a.b", params))
	}
	var gids []ids.ProcessID
	for _, p := range group {
		gids = append(gids, p.ID())
	}
	for _, p := range group {
		p.SetTopicTableCap(8)
		p.SeedTopicTable(gids)
	}
	group[0].SeedSuperTable(".a", []ids.ProcessID{"s1", "s2"})

	for round := 0; round < 30; round++ {
		k.tickAll(1 << 16)
	}
	withSuper := 0
	for _, p := range group {
		if p.SuperKnownTopic() == ".a" && len(p.SuperTable()) > 0 {
			withSuper++
		}
	}
	if withSuper < len(group)/2 {
		t.Errorf("super info spread to only %d/%d members", withSuper, len(group))
	}
}

func TestTickPeriodicity(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.ShufflePeriod = 3
	p := MustNewProcess("p0", ".a", params, env)
	p.SeedTopicTable([]ids.ProcessID{"m1", "m2"})
	for i := 0; i < 9; i++ {
		p.Tick()
	}
	if got := len(env.sentOfType(MsgShuffle)); got != 3 {
		t.Errorf("shuffles in 9 ticks with period 3 = %d", got)
	}
}
