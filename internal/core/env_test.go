package core

import (
	"math/rand"

	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// fakeEnv records everything a single process does.
type fakeEnv struct {
	sent      []sentMsg
	delivered []*Event
	neighbors []ids.ProcessID
	rng       *rand.Rand
}

type sentMsg struct {
	to  ids.ProcessID
	msg *Message
}

func newFakeEnv(seed int64) *fakeEnv {
	return &fakeEnv{rng: rand.New(rand.NewSource(seed))}
}

func (e *fakeEnv) Send(to ids.ProcessID, m *Message) {
	e.sent = append(e.sent, sentMsg{to: to, msg: m})
}

func (e *fakeEnv) Deliver(ev *Event) { e.delivered = append(e.delivered, ev) }

func (e *fakeEnv) Neighborhood(k int) []ids.ProcessID {
	return xrand.SampleIDs(e.rng, e.neighbors, k)
}

func (e *fakeEnv) Rand() *rand.Rand { return e.rng }

func (e *fakeEnv) sentOfType(t MsgType) []sentMsg {
	var out []sentMsg
	for _, s := range e.sent {
		if s.msg.Type == t {
			out = append(out, s)
		}
	}
	return out
}

func (e *fakeEnv) reset() {
	e.sent = nil
	e.delivered = nil
}

// kernel wires multiple processes together with immediate synchronous
// delivery — a minimal in-package cluster for integration tests.
// (The full round-based simulator with losses lives in internal/sim.)
type kernel struct {
	procs map[ids.ProcessID]*Process
	envs  map[ids.ProcessID]*kernelEnv
	rng   *rand.Rand
	// queue holds in-flight messages; pump() drains it.
	queue []kernelMsg
	// deliveries per process.
	delivered map[ids.ProcessID][]*Event
	// global overlay for Neighborhood.
	overlay []ids.ProcessID
}

type kernelMsg struct {
	to  ids.ProcessID
	msg *Message
}

type kernelEnv struct {
	k  *kernel
	id ids.ProcessID
}

func (e *kernelEnv) Send(to ids.ProcessID, m *Message) {
	e.k.queue = append(e.k.queue, kernelMsg{to: to, msg: m})
}

func (e *kernelEnv) Deliver(ev *Event) {
	e.k.delivered[e.id] = append(e.k.delivered[e.id], ev)
}

func (e *kernelEnv) Neighborhood(k int) []ids.ProcessID {
	return xrand.SampleIDs(e.k.rng, e.k.overlay, k)
}

func (e *kernelEnv) Rand() *rand.Rand { return e.k.rng }

func newKernel(seed int64) *kernel {
	return &kernel{
		procs:     make(map[ids.ProcessID]*Process),
		envs:      make(map[ids.ProcessID]*kernelEnv),
		rng:       rand.New(rand.NewSource(seed)),
		delivered: make(map[ids.ProcessID][]*Event),
	}
}

// add creates a process in the kernel.
func (k *kernel) add(id ids.ProcessID, tp topic.Topic, params Params) *Process {
	env := &kernelEnv{k: k, id: id}
	k.envs[id] = env
	p := MustNewProcess(id, tp, params, env)
	k.procs[id] = p
	k.overlay = append(k.overlay, id)
	return p
}

// pump drains the message queue until empty or the step budget runs
// out, delivering each message to its target process.
func (k *kernel) pump(maxSteps int) int {
	steps := 0
	for len(k.queue) > 0 && steps < maxSteps {
		m := k.queue[0]
		k.queue = k.queue[1:]
		if p, ok := k.procs[m.to]; ok {
			p.HandleMessage(m.msg)
		}
		steps++
	}
	return steps
}

// tickAll advances every process one tick, then pumps.
func (k *kernel) tickAll(maxSteps int) {
	for _, p := range k.procs {
		p.Tick()
	}
	k.pump(maxSteps)
}
