package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
)

// recoverParams returns params with every periodic task disabled
// except anti-entropy recovery, so ticks produce recovery traffic
// alone.
func recoverParams() Params {
	return Params{
		B: 3, C: 1, G: 5, A: 1, Z: 3,
		GroupSizeHint:   4,
		RecoverPeriod:   2,
		RecoverFanout:   1,
		RecoverStoreCap: 8,
		RecoverMaxAge:   100,
	}
}

func TestEventStoreBounds(t *testing.T) {
	s := newEventStore(3)
	for i := uint64(0); i < 10; i++ {
		ev := &Event{ID: ids.EventID{Origin: "p", Seq: i}, Topic: ".t"}
		s.Add(ev, int(i))
		if s.Len() > 3 {
			t.Fatalf("store grew to %d entries past cap 3", s.Len())
		}
	}
	// FIFO: only the three newest survive.
	for i := uint64(0); i < 7; i++ {
		if _, ok := s.Get(ids.EventID{Origin: "p", Seq: i}); ok {
			t.Errorf("event %d not evicted", i)
		}
	}
	ids9 := s.AppendIDs(nil, maxRecoverDigest)
	if len(ids9) != 3 || ids9[0].Seq != 7 || ids9[2].Seq != 9 {
		t.Errorf("AppendIDs = %v, want seqs 7..9 in insertion order", ids9)
	}
	// A digest cap smaller than the store keeps only the newest ids.
	if capped := s.AppendIDs(nil, 2); len(capped) != 2 || capped[0].Seq != 8 || capped[1].Seq != 9 {
		t.Errorf("AppendIDs capped = %v, want seqs 8..9", capped)
	}
	// Duplicate adds are ignored.
	if s.Add(&Event{ID: ids.EventID{Origin: "p", Seq: 9}}, 99); s.Len() != 3 {
		t.Errorf("duplicate add changed Len to %d", s.Len())
	}
}

func TestEventStoreGCByAge(t *testing.T) {
	s := newEventStore(10)
	for i := uint64(0); i < 4; i++ {
		s.Add(&Event{ID: ids.EventID{Origin: "p", Seq: i}}, int(i))
	}
	// At tick 7 with maxAge 4, entries from ticks 0-2 are stale.
	if gone := s.GC(7, 4); gone != 3 {
		t.Errorf("GC evicted %d, want 3", gone)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after GC, want 1", s.Len())
	}
	if _, ok := s.Get(ids.EventID{Origin: "p", Seq: 3}); !ok {
		t.Error("young entry GC'd")
	}
	if gone := s.GC(100, 4); gone != 1 || s.Len() != 0 {
		t.Errorf("final GC = %d (len %d), want 1 (0)", gone, s.Len())
	}
}

// TestEventStoreQueueCompaction drives enough traffic through a tiny
// store that the FIFO queue must compact; the backing slice stays
// bounded by ~2x cap rather than growing with total throughput.
func TestEventStoreQueueCompaction(t *testing.T) {
	s := newEventStore(4)
	for i := uint64(0); i < 1000; i++ {
		s.Add(&Event{ID: ids.EventID{Origin: "p", Seq: i}}, int(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := len(s.queue) - s.head; got != 4 {
		t.Errorf("live queue window = %d, want 4", got)
	}
	if cap(s.queue) > 64 {
		t.Errorf("queue backing array grew to %d for a cap-4 store", cap(s.queue))
	}
}

// TestRecoverDigestExchange walks one full anti-entropy exchange by
// hand: A holds an event B missed; B holds one A missed. A's digest to
// B must trigger both the direct push (B -> A: DigestAns) and the
// reverse pull (B -> A: EventReq, answered with a DigestAns).
func TestRecoverDigestExchange(t *testing.T) {
	params := recoverParams()
	envA, envB := newFakeEnv(1), newFakeEnv(2)
	A := MustNewProcess("A", ".t", params, envA)
	B := MustNewProcess("B", ".t", params, envB)
	A.SeedTopicTable([]ids.ProcessID{"B"})
	B.SeedTopicTable([]ids.ProcessID{"A"})

	evA, err := A.Publish([]byte("from-A"))
	if err != nil {
		t.Fatal(err)
	}
	evB, err := B.Publish([]byte("from-B"))
	if err != nil {
		t.Fatal(err)
	}
	envA.reset()
	envB.reset()

	// Two ticks reach RecoverPeriod: A gossips its digest.
	A.Tick()
	A.Tick()
	digests := envA.sentOfType(MsgDigest)
	if len(digests) != 1 || digests[0].to != "B" {
		t.Fatalf("recovery wave sent %d digests (%v), want 1 to B", len(digests), digests)
	}
	if got := digests[0].msg.DigestIDs; len(got) != 1 || got[0] != evA.ID {
		t.Fatalf("digest ids = %v, want [%v]", got, evA.ID)
	}

	// B answers: push evB (A's digest lacks it), pull evA (unseen).
	B.HandleMessage(digests[0].msg)
	ans := envB.sentOfType(MsgDigestAns)
	if len(ans) != 1 || ans[0].to != "A" || len(ans[0].msg.Events) != 1 || ans[0].msg.Events[0].ID != evB.ID {
		t.Fatalf("digest answer = %+v, want one push of %v to A", ans, evB.ID)
	}
	reqs := envB.sentOfType(MsgEventReq)
	if len(reqs) != 1 || reqs[0].to != "A" || len(reqs[0].msg.DigestIDs) != 1 || reqs[0].msg.DigestIDs[0] != evA.ID {
		t.Fatalf("event request = %+v, want one pull of %v from A", reqs, evA.ID)
	}
	if st := B.RecoveryStats(); st.Requested != 1 {
		t.Errorf("B requested = %d, want 1", st.Requested)
	}

	// A serves the pull; B's push recovers evB at A.
	envA.reset()
	A.HandleMessage(reqs[0].msg)
	served := envA.sentOfType(MsgDigestAns)
	if len(served) != 1 || len(served[0].msg.Events) != 1 || served[0].msg.Events[0].ID != evA.ID {
		t.Fatalf("served answer = %+v, want %v", served, evA.ID)
	}
	A.HandleMessage(ans[0].msg)
	if len(envA.delivered) != 1 || envA.delivered[0].ID != evB.ID {
		t.Fatalf("A delivered %v, want [%v]", envA.delivered, evB.ID)
	}
	if st := A.RecoveryStats(); st.Recovered != 1 {
		t.Errorf("A recovered = %d, want 1", st.Recovered)
	}

	// B folds the served answer in: delivery, stats, re-dissemination.
	envB.reset()
	B.HandleMessage(served[0].msg)
	if len(envB.delivered) != 1 || envB.delivered[0].ID != evA.ID {
		t.Fatalf("B delivered %v, want [%v]", envB.delivered, evA.ID)
	}
	if st := B.RecoveryStats(); st.Recovered != 1 {
		t.Errorf("B recovered = %d, want 1", st.Recovered)
	}
	if gossip := envB.sentOfType(MsgEvent); len(gossip) == 0 {
		t.Error("recovered event was not re-disseminated")
	}

	// Replayed answers are duplicates: no double delivery.
	envB.reset()
	B.HandleMessage(served[0].msg)
	if len(envB.delivered) != 0 {
		t.Errorf("duplicate recovery delivered again: %v", envB.delivered)
	}
}

// TestRecoverRestoresEvictedStoreEntry: a pushed duplicate of an event
// that is seen but no longer stored must be re-stored, so the next
// digest advertises it and peers stop re-pushing its payload every
// wave.
func TestRecoverRestoresEvictedStoreEntry(t *testing.T) {
	params := recoverParams()
	params.RecoverStoreCap = 1
	env := newFakeEnv(6)
	p := MustNewProcess("A", ".t", params, env)
	ev1, err := p.Publish([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish([]byte("two")); err != nil {
		t.Fatal(err) // cap 1: evicts ev1's store entry, ev1 stays seen
	}
	if _, held := p.store.Get(ev1.ID); held {
		t.Fatal("ev1 still stored; eviction setup broken")
	}
	p.HandleMessage(&Message{
		Type: MsgDigestAns, From: "B", FromTopic: ".t",
		Events: []*Event{ev1},
	})
	if _, held := p.store.Get(ev1.ID); !held {
		t.Error("pushed duplicate of a seen event was not re-stored")
	}
	// Publish does not self-deliver, and the duplicate push must not
	// deliver either.
	if len(env.delivered) != 0 {
		t.Errorf("duplicate push re-delivered: %d deliveries", len(env.delivered))
	}
	if st := p.RecoveryStats(); st.Recovered != 0 {
		t.Errorf("duplicate push counted as recovered: %+v", st)
	}
}

// TestRecoverIgnoresOtherGroups: recovery messages never cross topic
// groups, matching the gossip they repair.
func TestRecoverIgnoresOtherGroups(t *testing.T) {
	params := recoverParams()
	env := newFakeEnv(3)
	p := MustNewProcess("A", ".t", params, env)
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	env.reset()
	p.HandleMessage(&Message{Type: MsgDigest, From: "evil", FromTopic: ".other"})
	p.HandleMessage(&Message{Type: MsgEventReq, From: "evil", FromTopic: ".other",
		DigestIDs: []ids.EventID{{Origin: "A", Seq: 1}}})
	if len(env.sent) != 0 {
		t.Errorf("cross-group recovery answered: %v", env.sent)
	}
}

// TestRecoverDisabledIsInert: with RecoverPeriod 0 (the default) no
// store exists, ticks send nothing, and inbound recovery traffic is
// dropped without effect.
func TestRecoverDisabledIsInert(t *testing.T) {
	params := recoverParams()
	params.RecoverPeriod = 0
	env := newFakeEnv(4)
	p := MustNewProcess("A", ".t", params, env)
	p.SeedTopicTable([]ids.ProcessID{"B"})
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if p.EventStoreLen() != 0 {
		t.Errorf("disabled recovery stored %d events", p.EventStoreLen())
	}
	env.reset()
	for i := 0; i < 10; i++ {
		p.Tick()
	}
	for _, s := range env.sent {
		if s.msg.Type.IsRecovery() {
			t.Fatalf("disabled recovery sent %v", s.msg)
		}
	}
	p.HandleMessage(&Message{Type: MsgDigest, From: "B", FromTopic: ".t"})
	p.HandleMessage(&Message{Type: MsgEventReq, From: "B", FromTopic: ".t",
		DigestIDs: []ids.EventID{{Origin: "A", Seq: 1}}})
	if got := env.sentOfType(MsgDigestAns); len(got) != 0 {
		t.Errorf("disabled recovery served %v", got)
	}
	if st := p.RecoveryStats(); st != (RecoveryStats{}) {
		t.Errorf("disabled recovery has stats %+v", st)
	}
}

// TestRecoverStoreMemoryBound: sustained publishing never grows the
// store past its cap, and age GC drains it completely, with every
// eviction counted.
func TestRecoverStoreMemoryBound(t *testing.T) {
	params := recoverParams()
	params.RecoverPeriod = 1
	params.RecoverStoreCap = 4
	params.RecoverMaxAge = 3
	env := newFakeEnv(5)
	p := MustNewProcess("A", ".t", params, env)
	const published = 50
	for i := 0; i < published; i++ {
		if _, err := p.Publish([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
		if p.EventStoreLen() > params.RecoverStoreCap {
			t.Fatalf("store holds %d > cap %d", p.EventStoreLen(), params.RecoverStoreCap)
		}
	}
	if st := p.RecoveryStats(); st.GCd != published-uint64(params.RecoverStoreCap) {
		t.Errorf("capacity evictions = %d, want %d", st.GCd, published-params.RecoverStoreCap)
	}
	// Age everything out (empty topic table: waves only GC).
	for i := 0; i < params.RecoverMaxAge+2; i++ {
		p.Tick()
	}
	if p.EventStoreLen() != 0 {
		t.Errorf("store holds %d events after aging out", p.EventStoreLen())
	}
	if st := p.RecoveryStats(); st.GCd != published {
		t.Errorf("total evictions = %d, want %d", st.GCd, published)
	}
}
