package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
)

// recoverParams returns params with every periodic task disabled
// except anti-entropy recovery, so ticks produce recovery traffic
// alone.
func recoverParams() Params {
	return Params{
		B: 3, C: 1, G: 5, A: 1, Z: 3,
		GroupSizeHint:     4,
		RecoverPeriod:     2,
		RecoverFanout:     1,
		RecoverStoreCap:   8,
		RecoverMaxAge:     100,
		RecoverDigestBits: 10,
	}
}

func TestEventStoreBounds(t *testing.T) {
	s := newEventStore(3)
	for i := uint64(0); i < 10; i++ {
		ev := &Event{ID: ids.EventID{Origin: "p", Seq: i}, Topic: ".t"}
		s.Add(ev, int(i))
		if s.Len() > 3 {
			t.Fatalf("store grew to %d entries past cap 3", s.Len())
		}
	}
	// FIFO: only the three newest survive.
	for i := uint64(0); i < 7; i++ {
		if _, ok := s.Get(ids.EventID{Origin: "p", Seq: i}); ok {
			t.Errorf("event %d not evicted", i)
		}
	}
	ids9 := s.AppendIDs(nil, 4096)
	if len(ids9) != 3 || ids9[0].Seq != 7 || ids9[2].Seq != 9 {
		t.Errorf("AppendIDs = %v, want seqs 7..9 in insertion order", ids9)
	}
	// A cap smaller than the store keeps only the newest ids.
	if capped := s.AppendIDs(nil, 2); len(capped) != 2 || capped[0].Seq != 8 || capped[1].Seq != 9 {
		t.Errorf("AppendIDs capped = %v, want seqs 8..9", capped)
	}
	// Duplicate adds are ignored.
	if s.Add(&Event{ID: ids.EventID{Origin: "p", Seq: 9}}, 99); s.Len() != 3 {
		t.Errorf("duplicate add changed Len to %d", s.Len())
	}
}

func TestEventStoreGCByAge(t *testing.T) {
	s := newEventStore(10)
	for i := uint64(0); i < 4; i++ {
		s.Add(&Event{ID: ids.EventID{Origin: "p", Seq: i}}, int(i))
	}
	// At tick 7 with maxAge 4, entries from ticks 0-2 are stale.
	if gone := s.GC(7, 4); gone != 3 {
		t.Errorf("GC evicted %d, want 3", gone)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d after GC, want 1", s.Len())
	}
	if _, ok := s.Get(ids.EventID{Origin: "p", Seq: 3}); !ok {
		t.Error("young entry GC'd")
	}
	if gone := s.GC(100, 4); gone != 1 || s.Len() != 0 {
		t.Errorf("final GC = %d (len %d), want 1 (0)", gone, s.Len())
	}
}

// TestEventStoreQueueCompaction drives enough traffic through a tiny
// store that the FIFO queue must compact; the backing slice stays
// bounded by ~2x cap rather than growing with total throughput.
func TestEventStoreQueueCompaction(t *testing.T) {
	s := newEventStore(4)
	for i := uint64(0); i < 1000; i++ {
		s.Add(&Event{ID: ids.EventID{Origin: "p", Seq: i}}, int(i))
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := len(s.queue) - s.head; got != 4 {
		t.Errorf("live queue window = %d, want 4", got)
	}
	if cap(s.queue) > 64 {
		t.Errorf("queue backing array grew to %d for a cap-4 store", cap(s.queue))
	}
}

// TestRecoverDigestExchange walks one full anti-entropy exchange by
// hand: A holds an event B missed; B holds one A missed. A's
// wave-opening digest (TTL 1) must trigger B's push of the event A
// lacked AND B's counter-digest (TTL 0), which in turn makes A push
// the event B lacked — both directions repaired in one exchange, with
// no third digest.
func TestRecoverDigestExchange(t *testing.T) {
	params := recoverParams()
	envA, envB := newFakeEnv(1), newFakeEnv(2)
	A := MustNewProcess("A", ".t", params, envA)
	B := MustNewProcess("B", ".t", params, envB)
	A.SeedTopicTable([]ids.ProcessID{"B"})
	B.SeedTopicTable([]ids.ProcessID{"A"})

	evA, err := A.Publish([]byte("from-A"))
	if err != nil {
		t.Fatal(err)
	}
	evB, err := B.Publish([]byte("from-B"))
	if err != nil {
		t.Fatal(err)
	}
	envA.reset()
	envB.reset()

	// Two ticks reach RecoverPeriod: A gossips its digest.
	A.Tick()
	A.Tick()
	digests := envA.sentOfType(MsgDigest)
	if len(digests) != 1 || digests[0].to != "B" {
		t.Fatalf("recovery wave sent %d digests (%v), want 1 to B", len(digests), digests)
	}
	wave := digests[0].msg
	if wave.TTL != 1 {
		t.Fatalf("wave digest TTL = %d, want 1 (budget for one counter-digest)", wave.TTL)
	}
	if len(wave.BloomBits) == 0 || !bloomHas(wave.BloomBits, wave.BloomK, wave.BloomSeed, evA.ID) {
		t.Fatalf("wave digest does not contain the stored event %v", evA.ID)
	}

	// B answers: push evB (absent from A's filter) and counter-digest.
	B.HandleMessage(wave)
	ans := envB.sentOfType(MsgDigestAns)
	if len(ans) != 1 || ans[0].to != "A" || len(ans[0].msg.Events) != 1 || ans[0].msg.Events[0].ID != evB.ID {
		t.Fatalf("digest answer = %+v, want one push of %v to A", ans, evB.ID)
	}
	counters := envB.sentOfType(MsgDigest)
	if len(counters) != 1 || counters[0].to != "A" || counters[0].msg.TTL != 0 {
		t.Fatalf("counter-digest = %+v, want one TTL-0 digest to A", counters)
	}

	// A folds the push in (delivery + stats), then serves the
	// counter-digest: push evA, suppress evB (the filter rightly claims
	// B holds it), and send no further digest — the exchange terminates.
	envA.reset()
	A.HandleMessage(ans[0].msg)
	if len(envA.delivered) != 1 || envA.delivered[0].ID != evB.ID {
		t.Fatalf("A delivered %v, want [%v]", envA.delivered, evB.ID)
	}
	if st := A.RecoveryStats(); st.Recovered != 1 {
		t.Errorf("A recovered = %d, want 1", st.Recovered)
	}
	A.HandleMessage(counters[0].msg)
	served := envA.sentOfType(MsgDigestAns)
	if len(served) != 1 || len(served[0].msg.Events) != 1 || served[0].msg.Events[0].ID != evA.ID {
		t.Fatalf("served answer = %+v, want one push of %v", served, evA.ID)
	}
	if extra := envA.sentOfType(MsgDigest); len(extra) != 0 {
		t.Fatalf("TTL-0 counter-digest provoked further digests: %v", extra)
	}
	if st := A.RecoveryStats(); st.Suppressed != 1 {
		t.Errorf("A suppressed = %d, want 1 (evB is in B's own filter)", st.Suppressed)
	}

	// B folds the served answer in: delivery, stats, re-dissemination.
	envB.reset()
	B.HandleMessage(served[0].msg)
	if len(envB.delivered) != 1 || envB.delivered[0].ID != evA.ID {
		t.Fatalf("B delivered %v, want [%v]", envB.delivered, evA.ID)
	}
	if st := B.RecoveryStats(); st.Recovered != 1 {
		t.Errorf("B recovered = %d, want 1", st.Recovered)
	}
	if gossip := envB.sentOfType(MsgEvent); len(gossip) == 0 {
		t.Error("recovered event was not re-disseminated")
	}

	// Replayed answers are duplicates: no double delivery.
	envB.reset()
	B.HandleMessage(served[0].msg)
	if len(envB.delivered) != 0 {
		t.Errorf("duplicate recovery delivered again: %v", envB.delivered)
	}
}

// TestRecoverEmptyDigestInvitesBacklog: the empty (nil-filter) digest
// of a process that missed everything makes a peer push its whole
// store, budget-bounded.
func TestRecoverEmptyDigestInvitesBacklog(t *testing.T) {
	params := recoverParams()
	env := newFakeEnv(9)
	p := MustNewProcess("B", ".t", params, env)
	for i := 0; i < 5; i++ {
		if _, err := p.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	env.reset()
	p.HandleMessage(&Message{Type: MsgDigest, From: "A", FromTopic: ".t", Dest: ".t", TTL: 1})
	ans := env.sentOfType(MsgDigestAns)
	if len(ans) != 1 || len(ans[0].msg.Events) != 5 {
		t.Fatalf("empty digest answered with %+v, want all 5 stored events", ans)
	}
	if st := p.RecoveryStats(); st.Suppressed != 0 {
		t.Errorf("empty digest suppressed %d pushes", st.Suppressed)
	}
}

// TestRecoverRestoresEvictedStoreEntry: a pushed duplicate of an event
// that is seen but no longer stored must be re-stored, so the next
// digest advertises it and peers stop re-pushing its payload every
// wave.
func TestRecoverRestoresEvictedStoreEntry(t *testing.T) {
	params := recoverParams()
	params.RecoverStoreCap = 1
	env := newFakeEnv(6)
	p := MustNewProcess("A", ".t", params, env)
	ev1, err := p.Publish([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Publish([]byte("two")); err != nil {
		t.Fatal(err) // cap 1: evicts ev1's store entry, ev1 stays seen
	}
	if _, held := p.store.Get(ev1.ID); held {
		t.Fatal("ev1 still stored; eviction setup broken")
	}
	p.HandleMessage(&Message{
		Type: MsgDigestAns, From: "B", FromTopic: ".t",
		Events: []*Event{ev1},
	})
	if _, held := p.store.Get(ev1.ID); !held {
		t.Error("pushed duplicate of a seen event was not re-stored")
	}
	// Publish does not self-deliver, and the duplicate push must not
	// deliver either.
	if len(env.delivered) != 0 {
		t.Errorf("duplicate push re-delivered: %d deliveries", len(env.delivered))
	}
	if st := p.RecoveryStats(); st.Recovered != 0 {
		t.Errorf("duplicate push counted as recovered: %+v", st)
	}
}

// TestRecoverIgnoresUnlinkedGroups: recovery messages from a group that
// is neither our own nor (with cross-group recovery on) an ancestor or
// descendant are dropped, matching the gossip they repair.
func TestRecoverIgnoresUnlinkedGroups(t *testing.T) {
	for _, cross := range []bool{false, true} {
		params := recoverParams()
		if cross {
			params.CrossRecoverPeriod = 2
		}
		env := newFakeEnv(3)
		p := MustNewProcess("A", ".t", params, env)
		if _, err := p.Publish([]byte("x")); err != nil {
			t.Fatal(err)
		}
		env.reset()
		p.HandleMessage(&Message{Type: MsgDigest, From: "evil", FromTopic: ".other", TTL: 1})
		p.HandleMessage(&Message{Type: MsgDigestAns, From: "evil", FromTopic: ".other",
			Events: []*Event{{ID: ids.EventID{Origin: "evil", Seq: 1}, Topic: ".t"}}})
		if len(env.sent) != 0 || len(env.delivered) != 0 {
			t.Errorf("cross=%v: unlinked-group recovery honored: sent %v delivered %v",
				cross, env.sent, env.delivered)
		}
		// Without cross-group recovery even a genuine subtopic is
		// unlinked.
		if !cross {
			p.HandleMessage(&Message{Type: MsgDigest, From: "child", FromTopic: ".t.sub", TTL: 1})
			if len(env.sent) != 0 {
				t.Errorf("intra-only recovery answered a subgroup digest: %v", env.sent)
			}
		}
	}
}

// TestRecoverAnswerFiltersByTopicInclusion: a digest from an ancestor
// group must never be answered with events of sibling subtopics the
// ancestor holds but the descendant's own group is not entitled to —
// and the receiving side independently drops such events. Both guards
// keep the parasite invariant across cross-group recovery.
func TestRecoverAnswerFiltersByTopicInclusion(t *testing.T) {
	params := recoverParams()
	params.CrossRecoverPeriod = 2
	env := newFakeEnv(7)
	parent := MustNewProcess("P", ".a", params, env)
	// The parent's store: one event of the child's topic (flowed up),
	// one of the parent's own topic, one of a sibling subtopic.
	for _, ev := range []*Event{
		{ID: ids.EventID{Origin: "c1", Seq: 1}, Topic: ".a.b", Payload: []byte("child's")},
		{ID: ids.EventID{Origin: "p1", Seq: 1}, Topic: ".a", Payload: []byte("parent's")},
		{ID: ids.EventID{Origin: "s1", Seq: 1}, Topic: ".a.c", Payload: []byte("sibling's")},
	} {
		parent.HandleMessage(&Message{Type: MsgEvent, From: "feeder", FromTopic: ".a", Dest: ".a", Event: ev})
	}
	if parent.EventStoreLen() != 3 {
		t.Fatalf("store holds %d events, want 3", parent.EventStoreLen())
	}
	env.reset()
	// An empty digest from a .a.b subscriber: only the .a.b event may
	// be pushed down.
	parent.HandleMessage(&Message{Type: MsgDigest, From: "child", FromTopic: ".a.b", TTL: 0})
	ans := env.sentOfType(MsgDigestAns)
	if len(ans) != 1 || len(ans[0].msg.Events) != 1 || ans[0].msg.Events[0].Topic != ".a.b" {
		t.Fatalf("downward answer = %+v, want exactly the .a.b event", ans)
	}
	if ans[0].msg.Dest != ".a.b" {
		t.Errorf("downward answer Dest = %q, want .a.b", ans[0].msg.Dest)
	}

	// Receiver-side guard: a child fed an out-of-subscription event via
	// a digest answer must drop it.
	childEnv := newFakeEnv(8)
	child := MustNewProcess("C", ".a.b", params, childEnv)
	child.HandleMessage(&Message{Type: MsgDigestAns, From: "P", FromTopic: ".a",
		Events: []*Event{{ID: ids.EventID{Origin: "s1", Seq: 1}, Topic: ".a.c"}}})
	if len(childEnv.delivered) != 0 {
		t.Errorf("child delivered a parasite event: %v", childEnv.delivered)
	}
	if st := child.RecoveryStats(); st.Recovered != 0 {
		t.Errorf("parasite push counted as recovered: %+v", st)
	}
}

// TestCrossRecoverClimbsHierarchy: a child process whose supergroup
// table names a parent contact re-ignites the parent through the
// cross-group wave — the parent holds zero copies, the child's digest
// invites the parent's empty counter-digest, and the child's push
// delivers the event one level up.
func TestCrossRecoverClimbsHierarchy(t *testing.T) {
	params := recoverParams()
	params.CrossRecoverPeriod = 1
	parentEnv, childEnv := newFakeEnv(10), newFakeEnv(11)
	parent := MustNewProcess("P", ".a", params, parentEnv)
	child := MustNewProcess("C", ".a.b", params, childEnv)
	child.SeedSuperTable(".a", []ids.ProcessID{"P"})

	ev, err := child.Publish([]byte("deep news"))
	if err != nil {
		t.Fatal(err)
	}
	childEnv.reset()

	child.Tick() // cross period 1: the upward digest goes out
	ups := childEnv.sentOfType(MsgDigest)
	if len(ups) == 0 || ups[len(ups)-1].to != "P" {
		t.Fatalf("cross wave sent %v, want a digest to P", ups)
	}
	up := ups[len(ups)-1].msg
	if up.Dest != ".a" || up.FromTopic != ".a.b" || up.TTL != 1 {
		t.Fatalf("upward digest = %+v, want Dest .a FromTopic .a.b TTL 1", up)
	}

	parent.HandleMessage(up)
	if pushes := parentEnv.sentOfType(MsgDigestAns); len(pushes) != 0 {
		t.Fatalf("empty parent pushed %v", pushes)
	}
	counters := parentEnv.sentOfType(MsgDigest)
	if len(counters) != 1 || counters[0].to != "C" || counters[0].msg.Dest != ".a.b" {
		t.Fatalf("parent counter-digest = %+v, want one to C with Dest .a.b", counters)
	}

	childEnv.reset()
	child.HandleMessage(counters[0].msg)
	pushes := childEnv.sentOfType(MsgDigestAns)
	if len(pushes) != 1 || pushes[0].to != "P" || len(pushes[0].msg.Events) != 1 || pushes[0].msg.Events[0].ID != ev.ID {
		t.Fatalf("child push = %+v, want %v to P", pushes, ev.ID)
	}

	parent.HandleMessage(pushes[0].msg)
	if len(parentEnv.delivered) != 1 || parentEnv.delivered[0].ID != ev.ID {
		t.Fatalf("parent delivered %v, want [%v]", parentEnv.delivered, ev.ID)
	}
	if st := parent.RecoveryStats(); st.Recovered != 1 {
		t.Errorf("parent recovered = %d, want 1", st.Recovered)
	}
	// The child's inbound traffic from the parent must NOT be learned
	// as a subgroup contact (the parent is above, not below).
	if got := child.SubContacts(); len(got) != 0 {
		t.Errorf("child learned %v as subgroup contacts", got)
	}
	// The parent learned the child from its traffic, enabling the
	// downward direction of later waves.
	if got := parent.SubContacts(); len(got) != 1 || got[0] != "C" {
		t.Errorf("parent subgroup contacts = %v, want [C]", got)
	}
}

// TestCrossRecoverDescendsToLearnedContacts: the downward wave digests
// to contacts learned from inbound subgroup traffic, restocking a child
// that lost everything — with only the events its topic includes.
func TestCrossRecoverDescendsToLearnedContacts(t *testing.T) {
	params := recoverParams()
	params.CrossRecoverPeriod = 1
	parentEnv, childEnv := newFakeEnv(12), newFakeEnv(13)
	parent := MustNewProcess("P", ".a", params, parentEnv)
	child := MustNewProcess("C", ".a.b", params, childEnv)

	// The parent holds a child-topic event (flowed up earlier) and an
	// own-topic event; it learned C from a ping.
	deepEv := &Event{ID: ids.EventID{Origin: "x", Seq: 1}, Topic: ".a.b", Payload: []byte("deep")}
	parent.HandleMessage(&Message{Type: MsgEvent, From: "relay", FromTopic: ".a", Dest: ".a", Event: deepEv})
	if _, err := parent.Publish([]byte("broad")); err != nil {
		t.Fatal(err)
	}
	parent.HandleMessage(&Message{Type: MsgPing, From: "C", FromTopic: ".a.b", Dest: ".a"})
	parentEnv.reset()

	parent.Tick()
	var down *Message
	for _, s := range parentEnv.sentOfType(MsgDigest) {
		if s.to == "C" {
			down = s.msg
		}
	}
	if down == nil || down.Dest != ".a.b" || down.TTL != 1 {
		t.Fatalf("downward digest to C missing or mis-stamped: %+v", down)
	}

	child.HandleMessage(down)
	counters := childEnv.sentOfType(MsgDigest)
	if len(counters) != 1 {
		t.Fatalf("child sent %d counter-digests, want 1", len(counters))
	}
	parentEnv.reset()
	parent.HandleMessage(counters[0].msg)
	pushes := parentEnv.sentOfType(MsgDigestAns)
	if len(pushes) != 1 || len(pushes[0].msg.Events) != 1 || pushes[0].msg.Events[0].ID != deepEv.ID {
		t.Fatalf("parent pushed %+v, want only the .a.b event", pushes)
	}
	childEnv.reset()
	child.HandleMessage(pushes[0].msg)
	if len(childEnv.delivered) != 1 || childEnv.delivered[0].ID != deepEv.ID {
		t.Fatalf("child delivered %v, want [%v]", childEnv.delivered, deepEv.ID)
	}
}

// TestSubContactLearningBounded: the learned subgroup contact list is
// FIFO-bounded and never grows with traffic.
func TestSubContactLearningBounded(t *testing.T) {
	params := recoverParams()
	params.CrossRecoverPeriod = 1
	env := newFakeEnv(14)
	p := MustNewProcess("P", ".a", params, env)
	max := p.maxSubContacts()
	for i := 0; i < max*3; i++ {
		p.HandleMessage(&Message{
			Type: MsgPing, From: ids.ProcessID(fmt.Sprintf("c%03d", i)), FromTopic: ".a.b",
		})
	}
	got := p.SubContacts()
	if len(got) != max {
		t.Fatalf("subgroup contacts = %d, want bounded at %d", len(got), max)
	}
	// FIFO: the newest survive.
	if got[len(got)-1] != ids.ProcessID(fmt.Sprintf("c%03d", max*3-1)) {
		t.Errorf("newest contact missing; tail = %v", got[len(got)-1])
	}
	// Same-topic and supertopic traffic is never learned.
	p.HandleMessage(&Message{Type: MsgPing, From: "peer", FromTopic: ".a"})
	p.HandleMessage(&Message{Type: MsgPing, From: "root", FromTopic: "."})
	for _, id := range p.SubContacts() {
		if id == "peer" || id == "root" {
			t.Errorf("non-subgroup contact %s learned", id)
		}
	}
}

// TestRecoverDisabledIsInert: with RecoverPeriod 0 (the default) no
// store exists, ticks send nothing, and inbound recovery traffic —
// digests and pushed answers alike — is dropped without effect.
func TestRecoverDisabledIsInert(t *testing.T) {
	params := recoverParams()
	params.RecoverPeriod = 0
	env := newFakeEnv(4)
	p := MustNewProcess("A", ".t", params, env)
	p.SeedTopicTable([]ids.ProcessID{"B"})
	if _, err := p.Publish([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if p.EventStoreLen() != 0 {
		t.Errorf("disabled recovery stored %d events", p.EventStoreLen())
	}
	env.reset()
	for i := 0; i < 10; i++ {
		p.Tick()
	}
	for _, s := range env.sent {
		if s.msg.Type.IsRecovery() {
			t.Fatalf("disabled recovery sent %v", s.msg)
		}
	}
	p.HandleMessage(&Message{Type: MsgDigest, From: "B", FromTopic: ".t", TTL: 1})
	if got := env.sentOfType(MsgDigestAns); len(got) != 0 {
		t.Errorf("disabled recovery served %v", got)
	}
	p.HandleMessage(&Message{Type: MsgDigestAns, From: "B", FromTopic: ".t",
		Events: []*Event{{ID: ids.EventID{Origin: "B", Seq: 9}, Topic: ".t"}}})
	if len(env.delivered) != 0 {
		t.Errorf("disabled recovery delivered a pushed event")
	}
	if st := p.RecoveryStats(); st != (RecoveryStats{}) {
		t.Errorf("disabled recovery has stats %+v", st)
	}
}

// TestRecoverStoreMemoryBound: sustained publishing never grows the
// store past its cap, and age GC drains it completely, with every
// eviction counted.
func TestRecoverStoreMemoryBound(t *testing.T) {
	params := recoverParams()
	params.RecoverPeriod = 1
	params.RecoverStoreCap = 4
	params.RecoverMaxAge = 3
	env := newFakeEnv(5)
	p := MustNewProcess("A", ".t", params, env)
	const published = 50
	for i := 0; i < published; i++ {
		if _, err := p.Publish([]byte(fmt.Sprintf("e%d", i))); err != nil {
			t.Fatal(err)
		}
		if p.EventStoreLen() > params.RecoverStoreCap {
			t.Fatalf("store holds %d > cap %d", p.EventStoreLen(), params.RecoverStoreCap)
		}
	}
	if st := p.RecoveryStats(); st.GCd != published-uint64(params.RecoverStoreCap) {
		t.Errorf("capacity evictions = %d, want %d", st.GCd, published-params.RecoverStoreCap)
	}
	// Age everything out (empty topic table: waves only GC).
	for i := 0; i < params.RecoverMaxAge+2; i++ {
		p.Tick()
	}
	if p.EventStoreLen() != 0 {
		t.Errorf("store holds %d events after aging out", p.EventStoreLen())
	}
	if st := p.RecoveryStats(); st.GCd != published {
		t.Errorf("total evictions = %d, want %d", st.GCd, published)
	}
}

// TestCrossRecoverParamsValidation: cross-group recovery without the
// base recovery plane (or with a broken fanout) is rejected.
func TestCrossRecoverParamsValidation(t *testing.T) {
	params := recoverParams()
	params.RecoverPeriod = 0
	params.CrossRecoverPeriod = 2
	if err := params.Validate(); err == nil {
		t.Error("cross recovery without RecoverPeriod accepted")
	}
	params = recoverParams()
	params.CrossRecoverPeriod = 2
	params.CrossRecoverFanout = -1
	if err := params.Validate(); err == nil {
		t.Error("negative cross fanout accepted")
	}
	params.CrossRecoverFanout = 2
	if err := params.Validate(); err != nil {
		t.Errorf("valid cross params rejected: %v", err)
	}
}
