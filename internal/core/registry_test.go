package core

import (
	"errors"
	"testing"

	"damulticast/internal/topic"
)

func registryFixture(t *testing.T) (*Registry, map[topic.Topic]*Process) {
	t.Helper()
	r := NewRegistry()
	procs := make(map[topic.Topic]*Process)
	for _, tp := range []topic.Topic{".news", ".market", ".news.sports"} {
		p := MustNewProcess("hub", tp, DefaultParams(), newFakeEnv(1))
		if err := r.Add(p); err != nil {
			t.Fatal(err)
		}
		procs[tp] = p
	}
	return r, procs
}

func TestRegistryAddGetRemove(t *testing.T) {
	r, procs := registryFixture(t)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Topics are sorted.
	want := []topic.Topic{".market", ".news", ".news.sports"}
	got := r.Topics()
	if len(got) != len(want) {
		t.Fatalf("Topics = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Topics[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if r.Get(".news") != procs[".news"] {
		t.Error("Get returned wrong process")
	}
	// Duplicates are refused.
	dup := MustNewProcess("hub", ".news", DefaultParams(), newFakeEnv(2))
	if err := r.Add(dup); !errors.Is(err, ErrDuplicateTopic) {
		t.Errorf("duplicate Add err = %v", err)
	}
	if removed := r.Remove(".news"); removed != procs[".news"] {
		t.Error("Remove returned wrong process")
	}
	if r.Remove(".news") != nil {
		t.Error("second Remove returned a process")
	}
	if r.Len() != 2 {
		t.Errorf("Len after remove = %d", r.Len())
	}
}

func TestRegistryRouteByDest(t *testing.T) {
	r, procs := registryFixture(t)
	for tp, p := range procs {
		m := &Message{Type: MsgPing, From: "peer", Dest: tp}
		if got := r.Route(m); got != p {
			t.Errorf("Route(Dest=%s) = %v, want the %s process", tp, got, tp)
		}
	}
	// A destination this endpoint is not subscribed to routes nowhere:
	// group traffic must never leak into another group's process.
	if got := r.Route(&Message{Type: MsgEvent, From: "peer", Dest: ".weather"}); got != nil {
		t.Errorf("Route(unsubscribed dest) = %v, want nil", got)
	}
	if ok := r.Handle(&Message{Type: MsgEvent, From: "peer", Dest: ".weather"}); ok {
		t.Error("Handle claimed an unroutable message")
	}
}

func TestRegistryRouteUndirectedReqContact(t *testing.T) {
	r, procs := registryFixture(t)
	// A flood searching a topic we are subscribed to prefers that
	// process (it can answer with itself and its group mates).
	m := &Message{
		Type: MsgReqContact, From: "seeker", Origin: "seeker",
		SearchTopics: []topic.Topic{".news.sports"},
	}
	if got := r.Route(m); got != procs[".news.sports"] {
		t.Errorf("Route preferred %v, want the .news.sports process", got)
	}
	// The searcher's topic order wins over registry order: a wave
	// searching [.news.sports, .news] (deepest first, Fig. 4) must be
	// claimed by the .news.sports process even though .news sorts
	// first in the registry.
	m = &Message{
		Type: MsgReqContact, From: "seeker", Origin: "seeker",
		SearchTopics: []topic.Topic{".news.sports", ".news"},
	}
	if got := r.Route(m); got != procs[".news.sports"] {
		t.Errorf("Route preferred %v over the deeper .news.sports match", got)
	}
	// A flood searching an unknown topic falls back to the first
	// process in topic order, which forwards it.
	m = &Message{
		Type: MsgReqContact, From: "seeker", Origin: "seeker",
		SearchTopics: []topic.Topic{".weather"},
	}
	if got := r.Route(m); got != procs[".market"] {
		t.Errorf("fallback Route = %v, want the .market process", got)
	}
	// An empty registry routes nothing.
	if got := NewRegistry().Route(m); got != nil {
		t.Errorf("empty registry Route = %v", got)
	}
}

func TestRegistryTickAll(t *testing.T) {
	r, procs := registryFixture(t)
	for i := 0; i < 3; i++ {
		r.Tick()
	}
	for tp, p := range procs {
		if p.Now() != 3 {
			t.Errorf("%s process ticked %d times, want 3", tp, p.Now())
		}
	}
}
