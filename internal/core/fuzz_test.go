package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
)

// Robustness: the protocol engine must survive arbitrary (including
// adversarial or corrupted) message sequences without panicking and
// without violating its structural invariants — tables bounded, self
// never admitted, supertopic always a strict includer of the topic.

func randomMsgTopic(r *rand.Rand) topic.Topic {
	pool := []topic.Topic{
		topic.Root, ".a", ".a.b", ".a.b.c", ".x", ".x.y", ".zzz",
		"", "not-a-topic", ".a..b", // deliberately invalid ones too
	}
	return pool[r.Intn(len(pool))]
}

func randomID(r *rand.Rand) ids.ProcessID {
	pool := []ids.ProcessID{"p0", "p1", "p2", "q", "", "p0"} // includes self & empty
	return pool[r.Intn(len(pool))]
}

func randomMessage(r *rand.Rand) *Message {
	m := &Message{
		Type:      MsgType(r.Intn(12)), // includes invalid types
		From:      randomID(r),
		FromTopic: randomMsgTopic(r),
		Origin:    randomID(r),
		TTL:       r.Intn(5) - 1,
		ReqID:     uint64(r.Intn(8)),
	}
	if r.Intn(2) == 0 {
		m.Event = &Event{
			ID:      ids.EventID{Origin: randomID(r), Seq: uint64(r.Intn(4))},
			Topic:   randomMsgTopic(r),
			Payload: []byte{byte(r.Intn(256))},
		}
	}
	if r.Intn(2) == 0 {
		m.SearchTopics = []topic.Topic{randomMsgTopic(r), randomMsgTopic(r)}
	}
	if r.Intn(2) == 0 {
		m.Contacts = []ids.ProcessID{randomID(r), randomID(r)}
		m.ContactsTopic = randomMsgTopic(r)
	}
	if r.Intn(2) == 0 {
		m.Digest = membership.Digest{
			From: randomID(r),
			Entries: []membership.Entry{
				{ID: randomID(r), Age: r.Intn(10) - 2},
			},
		}
	}
	if r.Intn(2) == 0 {
		m.SuperTopic = randomMsgTopic(r)
		m.SuperEntries = []membership.Entry{{ID: randomID(r), Age: r.Intn(5)}}
	}
	return m
}

func checkInvariants(t *testing.T, p *Process) bool {
	t.Helper()
	// Supertopic table capacity is z; topic table bounded by its cap.
	if got := len(p.SuperTable()); got > p.Params().Z {
		t.Logf("super table %d > z", got)
		return false
	}
	// Self never appears in any table.
	for _, id := range p.TopicTable() {
		if id == p.ID() {
			t.Log("self in topic table")
			return false
		}
	}
	for _, id := range p.SuperTable() {
		if id == p.ID() {
			t.Log("self in super table")
			return false
		}
	}
	// The adopted supertopic, when set, strictly includes the topic.
	if sk := p.SuperKnownTopic(); sk != "" && !sk.StrictlyIncludes(p.Topic()) {
		t.Logf("super topic %q does not include %q", sk, p.Topic())
		return false
	}
	return true
}

func TestFuzzHandleMessageNeverPanics(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		env := newFakeEnv(seed)
		env.neighbors = []ids.ProcessID{"n1", "n2"}
		params := DefaultParams()
		params.ShufflePeriod = 1
		params.MaintainPeriod = 1
		p := MustNewProcess("p0", ".a.b", params, env)
		p.SeedTopicTable([]ids.ProcessID{"m1", "m2"})
		for i := 0; i < 200; i++ {
			switch r.Intn(10) {
			case 0:
				p.Tick()
			case 1:
				if _, err := p.Publish([]byte{byte(i)}); err != nil {
					return false
				}
			case 2:
				p.StartFindSuperContact()
			default:
				p.HandleMessage(randomMessage(r))
			}
			if !checkInvariants(t, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFuzzDeliveredEventsAlwaysIncluded(t *testing.T) {
	// Whatever garbage arrives, a process only ever hands the
	// application events whose topic its own topic includes... note:
	// core deliberately delivers whatever EVENT reaches it (routing is
	// the protocol's job, filtering would mask routing bugs), so this
	// check documents the sim-level invariant instead: we assert that
	// correctly-routed traffic (events of included topics) is ALWAYS
	// delivered exactly once, even interleaved with garbage.
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		env := newFakeEnv(seed)
		p := MustNewProcess("p0", ".a", DefaultParams(), env)
		p.SeedTopicTable([]ids.ProcessID{"m1"})
		legit := &Event{ID: ids.EventID{Origin: "pub", Seq: 999}, Topic: ".a.b"}
		for i := 0; i < 50; i++ {
			p.HandleMessage(randomMessage(r))
		}
		p.HandleMessage(&Message{Type: MsgEvent, From: "m1", Event: legit})
		for i := 0; i < 50; i++ {
			p.HandleMessage(randomMessage(r))
		}
		p.HandleMessage(&Message{Type: MsgEvent, From: "m1", Event: legit})
		count := 0
		for _, ev := range env.delivered {
			if ev.ID == legit.ID {
				count++
			}
		}
		return count == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
