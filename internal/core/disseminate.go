package core

import (
	"errors"

	"damulticast/internal/ids"
	"damulticast/internal/xrand"
)

// ErrStopped is returned by Publish on a stopped process.
var ErrStopped = errors.New("core: process is stopped")

// Publish creates an event of this process's topic and disseminates it
// (paper Fig. 7, invoked by the publishing process itself).
func (p *Process) Publish(payload []byte) (*Event, error) {
	if p.stopped {
		return nil, ErrStopped
	}
	p.nextSeq++
	ev := &Event{
		ID:      ids.EventID{Origin: p.id, Seq: p.nextSeq},
		Topic:   p.topic,
		Payload: payload,
	}
	// The publisher has trivially "seen" its own event; it must not
	// re-disseminate it if gossip echoes it back.
	p.seen.Add(ev.ID)
	p.rememberEvent(ev)
	p.disseminate(ev)
	return ev, nil
}

// onEvent is the RECEIVE handler of Fig. 5: first-time events are
// forwarded (DISSEMINATE) and delivered to the application; duplicates
// are dropped silently.
func (p *Process) onEvent(m *Message) {
	if m.Event != nil {
		p.receiveEvent(m.Event)
	}
}

// receiveEvent is the shared first-time reception path for gossiped
// and recovered events: record it in the seen window and the recovery
// store, forward it (DISSEMINATE) and deliver it to the application.
// It reports whether the event was new.
func (p *Process) receiveEvent(ev *Event) bool {
	if !p.seen.Add(ev.ID) {
		return false // already received
	}
	p.rememberEvent(ev)
	p.disseminate(ev)
	p.env.Deliver(ev.Clone())
	return true
}

// disseminate implements DISSEMINATE (Fig. 7):
//
//  1. with probability pSel = g/S the process elects itself as a link
//     and sends the event to each entry of its supertopic table with
//     probability pA = a/z (lines 3-7);
//  2. the event is gossiped to ln(S)+c distinct random members of the
//     topic table (lines 8-14).
//
// Root-group processes have an empty supertopic table, so step 1 is a
// no-op for them ("the processes receiving the event only gossip it in
// their group").
//
// All elected targets are collected first (in the exact order the
// per-target sends used to happen, so random draws and simulator loss
// coins are consumed identically) and the event then goes out as ONE
// message per destination group via sendSegments: batch-capable envs
// serialize it a single time per group, and every frame carries the
// Dest demux of the group it is for (supergroup targets live in a
// different group than the intra-group gossip targets).
func (p *Process) disseminate(ev *Event) {
	r := p.env.Rand()
	targets := p.batch[:0]
	segs := p.segs[:0]

	// (1) Upward dissemination toward the supergroup.
	if p.superTable.Len() > 0 && xrand.Bernoulli(r, p.pSel()) {
		pa := p.pA()
		for _, target := range p.superTable.IDs() {
			if xrand.Bernoulli(r, pa) && target != p.id {
				targets = append(targets, target)
			}
		}
		segs = appendSeg(segs, p.superKnown, len(targets))
	}
	// (1b) Same, per declared extra supertopic (§VIII extension).
	targets, segs = p.appendExtraTargets(r, targets, segs)

	// (2) Gossip within the group: ln(S)+c distinct targets, never
	// repeating a target for this event (the paper's Ω set).
	k := p.fanout()
	for _, target := range p.topicTable.Sample(r, k) {
		if target != p.id {
			targets = append(targets, target)
		}
	}
	segs = appendSeg(segs, p.topic, len(targets))

	// Reentrancy guard: should an Env ever deliver synchronously and
	// re-enter this process mid-fan-out, the nested disseminate must
	// allocate its own buffer rather than scribble over the one the
	// outer send loop is iterating. The grown buffers are kept after.
	p.batch, p.segs = nil, nil
	p.sendSegments(targets, segs, &Message{
		Type:      MsgEvent,
		From:      p.id,
		FromTopic: p.topic,
		Event:     ev,
	})
	p.batch, p.segs = targets[:0], segs[:0]
}
