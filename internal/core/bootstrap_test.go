package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/topic"
)

func TestStartFindSuperContactRootNoop(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", topic.Root, testParams(), env)
	p.StartFindSuperContact()
	if p.FindSuperRunning() {
		t.Error("root process started FIND_SUPER_CONTACT")
	}
	if len(env.sent) != 0 {
		t.Error("root process sent REQCONTACT")
	}
}

func TestStartFindSuperContactFloodsNeighborhood(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1", "n2", "n3", "n4", "n5", "n6"}
	params := testParams()
	params.NeighborhoodFanout = 3
	p := MustNewProcess("p0", ".a.b", params, env)
	p.StartFindSuperContact()
	if !p.FindSuperRunning() {
		t.Fatal("task not running")
	}
	reqs := env.sentOfType(MsgReqContact)
	if len(reqs) != 3 {
		t.Fatalf("REQCONTACT waves = %d, want 3", len(reqs))
	}
	for _, s := range reqs {
		m := s.msg
		if m.Origin != "p0" || m.OriginTopic != ".a.b" {
			t.Errorf("bad origin: %+v", m)
		}
		if len(m.SearchTopics) != 1 || m.SearchTopics[0] != ".a" {
			t.Errorf("initial search = %v, want [.a]", m.SearchTopics)
		}
		if m.TTL != params.ReqContactTTL {
			t.Errorf("TTL = %d", m.TTL)
		}
	}
	// Starting again is a no-op while running.
	env.reset()
	p.StartFindSuperContact()
	if len(env.sent) != 0 {
		t.Error("duplicate task start re-flooded")
	}
}

func TestFindSuperScopeExpansion(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	params := testParams()
	params.FindSuperPeriod = 2
	p := MustNewProcess("p0", ".a.b.c", params, env)
	p.StartFindSuperContact()
	env.reset()

	// After FindSuperPeriod ticks with no answer, the scope widens.
	p.Tick()
	if len(env.sentOfType(MsgReqContact)) != 0 {
		t.Fatal("widened too early")
	}
	p.Tick()
	reqs := env.sentOfType(MsgReqContact)
	if len(reqs) == 0 {
		t.Fatal("no re-flood after timeout")
	}
	got := reqs[len(reqs)-1].msg.SearchTopics
	want := []topic.Topic{".a.b", ".a"}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("search topics = %v, want %v", got, want)
	}

	// Widen twice more: reaches the root and stays there.
	env.reset()
	for i := 0; i < 2; i++ {
		p.Tick()
		p.Tick()
	}
	reqs = env.sentOfType(MsgReqContact)
	last := reqs[len(reqs)-1].msg.SearchTopics
	if last[len(last)-1] != topic.Root {
		t.Fatalf("scope never reached root: %v", last)
	}
	n := len(last)
	p.Tick()
	p.Tick()
	reqs = env.sentOfType(MsgReqContact)
	last = reqs[len(reqs)-1].msg.SearchTopics
	if len(last) != n {
		t.Errorf("scope grew past root: %v", last)
	}
}

func TestOnReqContactAnswersForOwnTopic(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("super1", ".a", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"super2", "super3"})
	p.HandleMessage(&Message{
		Type:         MsgReqContact,
		From:         "seeker",
		Origin:       "seeker",
		OriginTopic:  ".a.b",
		SearchTopics: []topic.Topic{".a"},
		TTL:          3,
		ReqID:        1,
	})
	ans := env.sentOfType(MsgAnsContact)
	if len(ans) != 1 {
		t.Fatalf("answers = %d", len(ans))
	}
	m := ans[0]
	if m.to != "seeker" {
		t.Errorf("answer to %s", m.to)
	}
	if m.msg.ContactsTopic != ".a" {
		t.Errorf("ContactsTopic = %s", m.msg.ContactsTopic)
	}
	found := false
	for _, c := range m.msg.Contacts {
		if c == "super1" {
			found = true
		}
	}
	if !found {
		t.Error("answer does not include the responder itself")
	}
}

func TestOnReqContactAnswersFromSuperTable(t *testing.T) {
	// A .a.b process that knows .a contacts can answer searches for .a.
	env := newFakeEnv(1)
	p := MustNewProcess("peer", ".a.b", testParams(), env)
	p.SeedSuperTable(".a", []ids.ProcessID{"s1", "s2"})
	p.HandleMessage(&Message{
		Type:         MsgReqContact,
		From:         "seeker",
		Origin:       "seeker",
		OriginTopic:  ".a.b",
		SearchTopics: []topic.Topic{".a"},
		TTL:          3,
		ReqID:        9,
	})
	ans := env.sentOfType(MsgAnsContact)
	if len(ans) != 1 {
		t.Fatalf("answers = %d", len(ans))
	}
	if ans[0].msg.ContactsTopic != ".a" {
		t.Errorf("ContactsTopic = %s", ans[0].msg.ContactsTopic)
	}
}

func TestOnReqContactForwardsWithTTL(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1", "n2"}
	params := testParams()
	params.NeighborhoodFanout = 2
	p := MustNewProcess("relay", ".x", params, env)
	req := &Message{
		Type:         MsgReqContact,
		From:         "seeker",
		Origin:       "seeker",
		OriginTopic:  ".a.b",
		SearchTopics: []topic.Topic{".a"},
		TTL:          2,
		ReqID:        5,
	}
	p.HandleMessage(req)
	fwd := env.sentOfType(MsgReqContact)
	if len(fwd) != 2 {
		t.Fatalf("forwards = %d", len(fwd))
	}
	for _, f := range fwd {
		if f.msg.TTL != 1 {
			t.Errorf("forwarded TTL = %d, want 1", f.msg.TTL)
		}
		if f.msg.From != "relay" {
			t.Errorf("forwarded From = %s", f.msg.From)
		}
		if f.msg.Origin != "seeker" {
			t.Errorf("forwarded Origin = %s", f.msg.Origin)
		}
	}
	// TTL 0: dropped.
	env.reset()
	req2 := *req
	req2.TTL = 0
	req2.ReqID = 6
	p.HandleMessage(&req2)
	if len(env.sentOfType(MsgReqContact)) != 0 {
		t.Error("TTL-0 request forwarded")
	}
}

func TestOnReqContactDedup(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	p := MustNewProcess("relay", ".x", testParams(), env)
	req := &Message{
		Type:         MsgReqContact,
		From:         "seeker",
		Origin:       "seeker",
		OriginTopic:  ".a.b",
		SearchTopics: []topic.Topic{".a"},
		TTL:          4,
		ReqID:        77,
	}
	p.HandleMessage(req)
	first := len(env.sent)
	p.HandleMessage(req) // duplicate wave
	if len(env.sent) != first {
		t.Error("duplicate REQCONTACT reprocessed")
	}
}

func TestOnReqContactIgnoresOwnRequest(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.HandleMessage(&Message{
		Type:         MsgReqContact,
		From:         "n1",
		Origin:       "p0", // our own request echoed back
		SearchTopics: []topic.Topic{".a"},
		TTL:          3,
		ReqID:        1,
	})
	if len(env.sent) != 0 {
		t.Error("process handled its own REQCONTACT")
	}
}

func TestOnAnsContactDirectSuperStopsTask(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.StartFindSuperContact()
	p.HandleMessage(&Message{
		Type:          MsgAnsContact,
		From:          "helper",
		Contacts:      []ids.ProcessID{"s1", "s2"},
		ContactsTopic: ".a",
	})
	if p.FindSuperRunning() {
		t.Error("task still running after direct-super answer")
	}
	if p.SuperKnownTopic() != ".a" {
		t.Errorf("SuperKnownTopic = %q", p.SuperKnownTopic())
	}
	if len(p.SuperTable()) != 2 {
		t.Errorf("super table = %v", p.SuperTable())
	}
}

func TestOnAnsContactIndirectNarrowsSearch(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	params := testParams()
	params.FindSuperPeriod = 1
	p := MustNewProcess("p0", ".a.b.c", params, env)
	p.StartFindSuperContact()
	// Widen scope twice: searching [.a.b, .a, .]
	p.Tick()
	p.Tick()
	// An answer arrives for .a (not the direct super .a.b).
	p.HandleMessage(&Message{
		Type:          MsgAnsContact,
		From:          "helper",
		Contacts:      []ids.ProcessID{"s1"},
		ContactsTopic: ".a",
	})
	if !p.FindSuperRunning() {
		t.Fatal("task stopped on indirect answer")
	}
	if p.SuperKnownTopic() != ".a" {
		t.Errorf("interim super topic = %q", p.SuperKnownTopic())
	}
	// Search must now contain only topics strictly deeper than .a
	// (i.e. .a.b), dropping .a and the root.
	env.reset()
	p.Tick() // re-flood
	reqs := env.sentOfType(MsgReqContact)
	if len(reqs) == 0 {
		t.Fatal("no re-flood")
	}
	for _, tt := range reqs[len(reqs)-1].msg.SearchTopics {
		if tt.Includes(".a") {
			t.Errorf("search still contains %v which includes .a", tt)
		}
	}
	// Then the direct super answers: task stops, deeper table adopted.
	p.HandleMessage(&Message{
		Type:          MsgAnsContact,
		From:          "helper2",
		Contacts:      []ids.ProcessID{"d1"},
		ContactsTopic: ".a.b",
	})
	if p.FindSuperRunning() {
		t.Error("task still running")
	}
	if p.SuperKnownTopic() != ".a.b" {
		t.Errorf("final super topic = %q", p.SuperKnownTopic())
	}
}

func TestOnAnsContactEmptyIgnored(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.HandleMessage(&Message{Type: MsgAnsContact, From: "x"})
	if p.SuperKnownTopic() != "" {
		t.Error("empty answer adopted")
	}
}

// Full bootstrap integration: a fresh process finds its direct
// supergroup through two relay hops using the expanding search.
func TestBootstrapEndToEnd(t *testing.T) {
	k := newKernel(3)
	params := testParams()
	params.FindSuperPeriod = 1
	params.NeighborhoodFanout = 8
	params.ReqContactTTL = 4

	// Supergroup .a with three members; unrelated .x relays; a fresh
	// .a.b joiner.
	var supers []*Process
	for i := 0; i < 3; i++ {
		supers = append(supers, k.add(ids.ProcessID(fmt.Sprintf("s%d", i)), ".a", params))
	}
	var sids []ids.ProcessID
	for _, s := range supers {
		sids = append(sids, s.ID())
	}
	for _, s := range supers {
		s.SeedTopicTable(sids)
	}
	for i := 0; i < 5; i++ {
		k.add(ids.ProcessID(fmt.Sprintf("x%d", i)), ".x", params)
	}
	joiner := k.add("j0", ".a.b", params)

	joiner.StartFindSuperContact()
	for i := 0; i < 10 && joiner.FindSuperRunning(); i++ {
		k.tickAll(1 << 16)
	}
	if joiner.FindSuperRunning() {
		t.Fatal("bootstrap never completed")
	}
	if joiner.SuperKnownTopic() != ".a" {
		t.Fatalf("SuperKnownTopic = %q", joiner.SuperKnownTopic())
	}
	if len(joiner.SuperTable()) == 0 {
		t.Fatal("super table empty after bootstrap")
	}
	for _, id := range joiner.SuperTable() {
		if id != "s0" && id != "s1" && id != "s2" {
			t.Errorf("super table contains non-supergroup member %s", id)
		}
	}
}

// Bootstrap with no direct supergroup: the search must climb to the
// root and adopt root contacts ("the first topic, according to the
// topic hierarchy level, that induces Ti").
func TestBootstrapFallsBackToInducingTopic(t *testing.T) {
	k := newKernel(5)
	params := testParams()
	params.FindSuperPeriod = 1
	params.NeighborhoodFanout = 8
	params.ReqContactTTL = 4

	// Only root-group members exist above the joiner (.a.b has no .a).
	var roots []*Process
	for i := 0; i < 3; i++ {
		roots = append(roots, k.add(ids.ProcessID(fmt.Sprintf("r%d", i)), topic.Root, params))
	}
	var rids []ids.ProcessID
	for _, r := range roots {
		rids = append(rids, r.ID())
	}
	for _, r := range roots {
		r.SeedTopicTable(rids)
	}
	joiner := k.add("j0", ".a.b", params)

	joiner.StartFindSuperContact()
	for i := 0; i < 12; i++ {
		k.tickAll(1 << 16)
	}
	if joiner.SuperKnownTopic() != topic.Root {
		t.Fatalf("SuperKnownTopic = %q, want root", joiner.SuperKnownTopic())
	}
	if len(joiner.SuperTable()) == 0 {
		t.Fatal("super table empty")
	}
	// The task keeps running: root is not the direct supertopic, so
	// the process keeps looking for a future .a group (Fig. 4 line 34).
	if !joiner.FindSuperRunning() {
		t.Error("task stopped even though direct super never found")
	}
}

// Request ids draw from the same per-process sequence counter as event
// ids, and multiplexed endpoints flood waves under a shared transport
// address — so a REQCONTACT's {origin, reqID} tuple can numerically
// equal a later event's {origin, seq}. The dedup entry must not shadow
// the event (a live hub would otherwise silently lose it).
func TestReqContactDedupDoesNotShadowEvents(t *testing.T) {
	env := newFakeEnv(1)
	env.neighbors = []ids.ProcessID{"n1"}
	params := testParams()
	params.GroupSizeHint = 4
	p := MustNewProcess("p0", ".a", params, env)
	p.SeedTopicTable([]ids.ProcessID{"m1", "m2", "m3"})

	p.HandleMessage(&Message{
		Type:         MsgReqContact,
		From:         "relay",
		FromTopic:    ".b",
		Origin:       "pub",
		OriginTopic:  ".b",
		SearchTopics: []topic.Topic{".c"},
		TTL:          0,
		ReqID:        7,
	})

	// The same {origin, seq} pair now arrives as a genuine event.
	ev := &Event{ID: ids.EventID{Origin: "pub", Seq: 7}, Topic: ".a", Payload: []byte("x")}
	p.HandleMessage(&Message{Type: MsgEvent, From: "m1", FromTopic: ".a", Event: ev})
	if len(env.delivered) != 1 {
		t.Fatalf("delivered = %d; REQCONTACT dedup id shadowed the event", len(env.delivered))
	}

	// And the wave itself still deduplicates: a replay is ignored.
	env.reset()
	p.HandleMessage(&Message{
		Type:         MsgReqContact,
		From:         "relay2",
		FromTopic:    ".b",
		Origin:       "pub",
		OriginTopic:  ".b",
		SearchTopics: []topic.Topic{".c"},
		TTL:          2,
		ReqID:        7,
	})
	if got := len(env.sentOfType(MsgReqContact)); got != 0 {
		t.Errorf("duplicate wave forwarded %d times, want 0", got)
	}
}
