package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
)

func TestLeaveNotifiesAllTables(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"m1", "m2"})
	p.SeedSuperTable(".a", []ids.ProcessID{"s1"})
	if err := p.AddExtraSuperTable(".x", []ids.ProcessID{"x1"}); err != nil {
		t.Fatal(err)
	}

	p.Leave()
	if !p.Stopped() {
		t.Fatal("Leave did not stop the process")
	}
	targets := map[ids.ProcessID]bool{}
	for _, s := range env.sentOfType(MsgLeave) {
		targets[s.to] = true
	}
	for _, want := range []ids.ProcessID{"m1", "m2", "s1", "x1"} {
		if !targets[want] {
			t.Errorf("no LEAVE sent to %s", want)
		}
	}
	// Idempotent: leaving again sends nothing.
	env.reset()
	p.Leave()
	if len(env.sent) != 0 {
		t.Error("second Leave sent messages")
	}
}

func TestOnLeavePurgesAllTables(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p0", ".a.b", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"gone", "stays"})
	p.SeedSuperTable(".a", []ids.ProcessID{"gone", "s2"})
	if err := p.AddExtraSuperTable(".x", []ids.ProcessID{"gone", "x2"}); err != nil {
		t.Fatal(err)
	}

	p.HandleMessage(&Message{Type: MsgLeave, From: "gone", FromTopic: ".a.b"})
	for _, id := range p.TopicTable() {
		if id == "gone" {
			t.Error("leaver still in topic table")
		}
	}
	for _, id := range p.SuperTable() {
		if id == "gone" {
			t.Error("leaver still in super table")
		}
	}
	for _, id := range p.ExtraSuperTable(".x") {
		if id == "gone" {
			t.Error("leaver still in extra table")
		}
	}
	if len(p.TopicTable()) != 1 || len(p.SuperTable()) != 1 || len(p.ExtraSuperTable(".x")) != 1 {
		t.Error("unrelated entries purged")
	}
}

func TestMsgLeaveString(t *testing.T) {
	if MsgLeave.String() != "LEAVE" {
		t.Errorf("String = %q", MsgLeave.String())
	}
}

// Integration: after a member leaves, its group mates stop gossiping
// to it and dissemination still covers the remaining group.
func TestLeaveIntegration(t *testing.T) {
	k := newKernel(47)
	params := testParams()
	params.GroupSizeHint = 6
	var group []*Process
	for i := 0; i < 6; i++ {
		group = append(group, k.add(ids.ProcessID(fmt.Sprintf("g%d", i)), ".a", params))
	}
	var gids []ids.ProcessID
	for _, p := range group {
		gids = append(gids, p.ID())
	}
	for _, p := range group {
		p.SetTopicTableCap(8)
		p.SeedTopicTable(gids)
	}

	group[5].Leave()
	k.pump(1 << 16)
	for _, p := range group[:5] {
		for _, id := range p.TopicTable() {
			if id == "g5" {
				t.Fatalf("%s still lists the leaver", p.ID())
			}
		}
	}

	ev, err := group[0].Publish([]byte("post-leave"))
	if err != nil {
		t.Fatal(err)
	}
	k.pump(1 << 16)
	for _, p := range group[1:5] {
		got := k.delivered[p.ID()]
		if len(got) != 1 || got[0].ID != ev.ID {
			t.Errorf("%s deliveries = %v", p.ID(), got)
		}
	}
	if len(k.delivered["g5"]) != 0 {
		t.Error("leaver received post-leave event")
	}
}
