package core

// Graceful departure. The paper's model lets processes "join or leave
// the system" (§IV-B); crashes are handled by the timeout machinery,
// but a cooperative leave can clean tables immediately instead of
// waiting out suspicion ages. The substrate of [10] (lpbcast) gossips
// unsubscriptions the same way; here a leaving process notifies the
// group mates it knows directly, and each receiver purges the leaver
// from every table (topic, supertopic, extras) on receipt.

// MsgLeave announces a cooperative departure. Declared alongside the
// other message types in message.go's enum space; the value continues
// that sequence.
const MsgLeave MsgType = MsgPong + 1

func init() {
	// Extend the name table (kept here so everything about leaving
	// lives in one file).
	msgTypeNames[MsgLeave] = "LEAVE"
}

// Leave announces departure to every known group mate and supergroup
// contact, then stops the process. The identical announcement goes to
// every target of a destination group, so it is batched through
// sendSegments: batch-capable envs serialize it once per group, and
// every frame carries the Dest demux of the group the receiver is in.
// Idempotent: a stopped process leaves silently.
func (p *Process) Leave() {
	if p.stopped {
		return
	}
	targets := p.batch[:0]
	segs := p.segs[:0]
	targets = append(targets, p.topicTable.IDs()...)
	segs = appendSeg(segs, p.topic, len(targets))
	targets = append(targets, p.superTable.IDs()...)
	segs = appendSeg(segs, p.superKnown, len(targets))
	for _, sup := range p.extraOrder {
		targets = append(targets, p.extras[sup].IDs()...)
		segs = appendSeg(segs, sup, len(targets))
	}
	p.batch, p.segs = nil, nil // reentrancy guard; see disseminate
	p.sendSegments(targets, segs, &Message{
		Type:      MsgLeave,
		From:      p.id,
		FromTopic: p.topic,
	})
	p.batch, p.segs = targets[:0], segs[:0]
	p.Stop()
}

// onLeave purges the departing process from all tables.
func (p *Process) onLeave(m *Message) {
	p.topicTable.Remove(m.From)
	p.superTable.Remove(m.From)
	delete(p.superSeen, m.From)
	for sup, v := range p.extras {
		if v.Remove(m.From) {
			delete(p.extraSeen[sup], m.From)
		}
	}
}
