package core

import (
	"fmt"
	"testing"

	"damulticast/internal/ids"
)

func bloomTestIDs(n int) []ids.EventID {
	out := make([]ids.EventID, n)
	for i := range out {
		out[i] = ids.EventID{
			Origin: ids.ProcessID(fmt.Sprintf("127.0.0.1:%05d", 10000+i%500)),
			Seq:    uint64(i),
		}
	}
	return out
}

// TestBloomNoFalseNegatives: every inserted id must probe positive
// under the same seed — the filter's one-sided error guarantee, which
// the recovery protocol's termination depends on.
func TestBloomNoFalseNegatives(t *testing.T) {
	for _, n := range []int{1, 7, 100, 5000} {
		idsIn := bloomTestIDs(n)
		for _, seed := range []uint64{0, 1, 0xdeadbeef} {
			bits, k, truncated := BloomDigest(idsIn, 10, seed)
			if truncated {
				t.Fatalf("n=%d unexpectedly truncated", n)
			}
			for _, id := range idsIn {
				if !bloomHas(bits, k, seed, id) {
					t.Fatalf("n=%d seed=%d: inserted id %v probes negative", n, seed, id)
				}
			}
		}
	}
}

// TestBloomFalsePositiveExists pins a seed under which a non-inserted
// id probes positive, proving the suppression path in onDigest is
// reachable — and that a different wave seed clears it, which is why
// seeds rotate.
func TestBloomFalsePositiveExists(t *testing.T) {
	inserted := bloomTestIDs(64)
	// A tight filter (2 bits/entry) makes false positives common.
	const seed = 3
	bits, k, _ := BloomDigest(inserted, 2, seed)
	var fp ids.EventID
	found := false
	for i := 0; i < 10000 && !found; i++ {
		cand := ids.EventID{Origin: "absent", Seq: uint64(i)}
		if bloomHas(bits, k, seed, cand) {
			fp, found = cand, true
		}
	}
	if !found {
		t.Fatal("no false positive in 10000 probes of a 2-bit/entry filter; hash layout changed?")
	}
	// Under a rotated seed the same id is (for this pinned pair) clean:
	// the filter built with seed+1 no longer claims it.
	bits2, k2, _ := BloomDigest(inserted, 2, seed+1)
	if bloomHas(bits2, k2, seed+1, fp) {
		t.Skip("pinned false positive persists under rotated seed (possible but rare); layout still correct")
	}
}

// TestBloomLayoutBounds: the filter respects its floor and byte cap,
// reporting truncation when the cap degrades the requested budget.
func TestBloomLayoutBounds(t *testing.T) {
	// Floor: one entry at 10 bits still gets minRecoverDigestBits.
	if bytes, k, trunc := bloomLayout(1, 10); bytes != minRecoverDigestBits/8 || k < 1 || trunc {
		t.Errorf("tiny layout = (%d bytes, k=%d, trunc=%v), want floor %d bytes", bytes, k, trunc, minRecoverDigestBits/8)
	}
	// Cap: a store that would want more than maxRecoverDigestBytes is
	// truncated to exactly the cap.
	huge := maxRecoverDigestBytes*8/10 + 1000
	bytes, k, trunc := bloomLayout(huge, 10)
	if bytes != maxRecoverDigestBytes || !trunc {
		t.Errorf("huge layout = (%d bytes, trunc=%v), want cap %d with truncation", bytes, trunc, maxRecoverDigestBytes)
	}
	if k < 1 {
		t.Errorf("huge layout k = %d, want >= 1", k)
	}
	// Nominal: 1000 entries at 10 bits = 1250 bytes, k ≈ 7.
	if bytes, k, trunc := bloomLayout(1000, 10); bytes != 1250 || k != 7 || trunc {
		t.Errorf("nominal layout = (%d bytes, k=%d, trunc=%v), want (1250, 7, false)", bytes, k, trunc)
	}
}

// TestAdaptiveDigestBits pins the DigestBitsAdaptive schedule: the
// observed store count selects 16 bits/entry at 1k, 13 at 10k and 10 at
// 100k. The thresholds are part of the wire-visible digest layout, so a
// change here must be deliberate.
func TestAdaptiveDigestBits(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 16},
		{1_000, 16},
		{2048, 16},
		{2049, 13},
		{10_000, 13},
		{16384, 13},
		{16385, 10},
		{100_000, 10},
	}
	for _, tc := range cases {
		if got := adaptiveDigestBits(tc.n); got != tc.want {
			t.Errorf("adaptiveDigestBits(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
	// The sentinel resolves through bloomLayout: an adaptive layout is
	// byte-identical to the explicit budget it selects.
	for _, n := range []int{1_000, 10_000, 100_000} {
		ab, ak, at := bloomLayout(n, DigestBitsAdaptive)
		eb, ek, et := bloomLayout(n, adaptiveDigestBits(n))
		if ab != eb || ak != ek || at != et {
			t.Errorf("n=%d: adaptive layout (%d,%d,%v) != explicit (%d,%d,%v)", n, ab, ak, at, eb, ek, et)
		}
	}
	// And Params.Validate accepts the sentinel with recovery enabled.
	p := DefaultParams()
	p.RecoverPeriod = 2
	p.RecoverDigestBits = DigestBitsAdaptive
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate rejected DigestBitsAdaptive: %v", err)
	}
	p.RecoverDigestBits = -2
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted digest bits -2")
	}
}

// TestBloomDigestDeterministic: same ids, budget and seed produce
// byte-identical filters — required for the sweep determinism gates.
func TestBloomDigestDeterministic(t *testing.T) {
	idsIn := bloomTestIDs(300)
	bits1, k1, _ := BloomDigest(idsIn, 10, 42)
	bits2, k2, _ := BloomDigest(idsIn, 10, 42)
	if k1 != k2 || string(bits1) != string(bits2) {
		t.Fatal("BloomDigest is not deterministic")
	}
	if BloomDigestLen := len(bits1); BloomDigestLen != 375 {
		t.Errorf("300 entries at 10 bits = %d bytes, want 375", BloomDigestLen)
	}
	// Empty input: nil filter (the "push me everything" digest).
	if bits, k, trunc := BloomDigest(nil, 10, 42); bits != nil || k != 0 || trunc {
		t.Errorf("empty BloomDigest = (%v, %d, %v), want (nil, 0, false)", bits, k, trunc)
	}
}

// TestBloomFalsePositiveConvergence seeds a wave where B's filter
// falsely claims A's event, verifies the push is suppressed, then
// shows the NEXT wave's rotated seed lets the event through — the
// protocol's liveness argument for one-sided filter error.
func TestBloomFalsePositiveConvergence(t *testing.T) {
	params := recoverParams()
	params.RecoverDigestBits = 2 // dense filter: false positives likely
	params.RecoverPeriod = 1
	envA, envB := newFakeEnv(20), newFakeEnv(21)
	A := MustNewProcess("A", ".t", params, envA)
	B := MustNewProcess("B", ".t", params, envB)
	B.SeedTopicTable([]ids.ProcessID{"A"})

	// A holds one event; B holds filler that makes its filter dense.
	evA, err := A.Publish([]byte("the one that matters"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := B.Publish([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}

	// Find a wave tick where B's filter falsely contains evA. B's wave
	// seed depends on its tick, so step B until the FP shows up.
	deliveredAt := -1
	for wave := 0; wave < 64; wave++ {
		envB.reset()
		B.Tick()
		digests := envB.sentOfType(MsgDigest)
		if len(digests) == 0 {
			t.Fatalf("wave %d: B sent no digest", wave)
		}
		d := digests[0].msg
		fp := bloomHas(d.BloomBits, d.BloomK, d.BloomSeed, evA.ID)

		envA.reset()
		A.HandleMessage(d)
		pushes := envA.sentOfType(MsgDigestAns)
		pushedEvA := false
		for _, p := range pushes {
			for _, ev := range p.msg.Events {
				if ev.ID == evA.ID {
					pushedEvA = true
				}
			}
		}
		if fp && pushedEvA {
			t.Fatalf("wave %d: false-positive filter did not suppress the push", wave)
		}
		if !fp && !pushedEvA {
			t.Fatalf("wave %d: clean filter did not invite the push", wave)
		}
		if pushedEvA {
			envB.reset()
			B.HandleMessage(pushes[0].msg)
			if len(envB.delivered) != 1 || envB.delivered[0].ID != evA.ID {
				t.Fatalf("wave %d: pushed event not delivered: %v", wave, envB.delivered)
			}
			deliveredAt = wave
			break
		}
		// Suppressed this wave: the rotated seed of a later wave must
		// eventually let it through.
	}
	if deliveredAt < 0 {
		t.Fatal("event never converged in 64 waves despite seed rotation")
	}
	if st := A.RecoveryStats(); deliveredAt > 0 && st.Suppressed == 0 {
		t.Errorf("delivery took %d waves but A suppressed nothing", deliveredAt)
	}
	t.Logf("converged at wave %d (A suppressed %d)", deliveredAt, A.RecoveryStats().Suppressed)
}
