package core

import (
	"fmt"

	"damulticast/internal/ids"
	"damulticast/internal/membership"
	"damulticast/internal/topic"
)

// MsgType enumerates the protocol's wire messages.
type MsgType int

// Message types. Names follow the paper's pseudo-code.
const (
	// MsgEvent carries a published event (SEND(eTi), Figs. 5/7).
	MsgEvent MsgType = iota + 1
	// MsgReqContact is the FIND_SUPER_CONTACT search request
	// (REQCONTACT, Fig. 4).
	MsgReqContact
	// MsgAnsContact answers a REQCONTACT with known contacts
	// (ANSCONTACT, Fig. 4).
	MsgAnsContact
	// MsgNewProcessReq asks a live superprocess for fresh supergroup
	// members (NEWPROCESS request, Fig. 6 line 20).
	MsgNewProcessReq
	// MsgNewProcessAns returns a sample of the supergroup
	// (NEWPROCESS reply, Fig. 6 line 4).
	MsgNewProcessAns
	// MsgShuffle is a membership view exchange within a group
	// (the underlying algorithm of [10]), optionally piggybacking the
	// sender's supertopic table (§V-A.2a optimization).
	MsgShuffle
	// MsgShuffleReply closes a shuffle.
	MsgShuffleReply
	// MsgPing probes a supertopic-table entry for liveness (the
	// timeout-based CHECK of Fig. 6, footnote 7).
	MsgPing
	// MsgPong answers a ping.
	MsgPong
)

// msgTypeNames is a dense name table indexed by MsgType. Types are
// contiguous small ints, so array indexing serves the per-message
// String/Known hot paths without a map lookup. Files declaring later
// types (leave.go) fill their slot from an init; empty slots mark
// undefined types.
var msgTypeNames [16]string

func init() {
	msgTypeNames[MsgEvent] = "EVENT"
	msgTypeNames[MsgReqContact] = "REQCONTACT"
	msgTypeNames[MsgAnsContact] = "ANSCONTACT"
	msgTypeNames[MsgNewProcessReq] = "NEWPROCESS_REQ"
	msgTypeNames[MsgNewProcessAns] = "NEWPROCESS_ANS"
	msgTypeNames[MsgShuffle] = "SHUFFLE"
	msgTypeNames[MsgShuffleReply] = "SHUFFLE_REPLY"
	msgTypeNames[MsgPing] = "PING"
	msgTypeNames[MsgPong] = "PONG"
}

// String names the message type.
func (t MsgType) String() string {
	if t.Known() {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("msgtype(%d)", int(t))
}

// Known reports whether t is a defined protocol message type. Codecs
// use it to reject frames whose type field is missing or garbage.
func (t MsgType) Known() bool {
	return t > 0 && int(t) < len(msgTypeNames) && msgTypeNames[t] != ""
}

// IsEvent reports whether messages of this type carry application
// events (and therefore count toward the paper's message complexity).
func (t MsgType) IsEvent() bool { return t == MsgEvent || t == MsgEventBatch }

// Event is a published application event. Topic is the topic it was
// published on; by topic inclusion it is implicitly also an event of
// every supertopic.
type Event struct {
	ID      ids.EventID
	Topic   topic.Topic
	Payload []byte
}

// Clone returns a deep copy (payload included) so that transports and
// applications may retain events without aliasing protocol buffers.
func (e *Event) Clone() *Event {
	if e == nil {
		return nil
	}
	cp := *e
	if e.Payload != nil {
		cp.Payload = make([]byte, len(e.Payload))
		copy(cp.Payload, e.Payload)
	}
	return &cp
}

// Message is the single wire envelope for all protocol traffic.
// Only the fields relevant to Type are populated.
type Message struct {
	Type      MsgType
	From      ids.ProcessID
	FromTopic topic.Topic

	// Dest is the destination *group* topic: the topic the receiving
	// process is subscribed to. It is the demultiplex key for
	// endpoints that host several processes (one per subscribed topic)
	// over a single transport — see Registry. The sender always knows
	// it: intra-group traffic targets its own topic, upward traffic
	// targets the supertopic the table is tracking, and replies target
	// the requester's FromTopic. It is empty only on REQCONTACT
	// floods, whose receivers are arbitrary bootstrap-overlay members.
	Dest topic.Topic

	// MsgEvent
	Event *Event

	// MsgReqContact: the searcher, its topic, the expanding list of
	// searched topics (the paper's initMsg), a hop budget and a
	// request id for duplicate suppression.
	Origin       ids.ProcessID
	OriginTopic  topic.Topic
	SearchTopics []topic.Topic
	TTL          int
	ReqID        uint64

	// MsgAnsContact / MsgNewProcessAns: contact ids and the topic
	// those contacts are interested in.
	Contacts      []ids.ProcessID
	ContactsTopic topic.Topic

	// MsgShuffle / MsgShuffleReply
	Digest membership.Digest
	// Piggybacked supertopic table (may be empty): entries about
	// processes interested in SuperTopic.
	SuperEntries []membership.Entry
	SuperTopic   topic.Topic

	// MsgDigest: a bloom filter over the sender's recently-seen event
	// ids (the anti-entropy digest; see bloom.go). BloomK is the probe
	// count and BloomSeed the hash seed the filter was built under —
	// receivers must probe with the sender's seed, which rotates every
	// wave to decorrelate false positives. A nil BloomBits is the empty
	// digest: "I hold nothing, push me everything".
	BloomBits []byte
	BloomK    int
	BloomSeed uint64
	// MsgDigestAns: full events the receiver of a digest pushes back.
	// Shared and immutable, like Event.
	Events []*Event
}

// String renders a compact human-readable form for logs and tests.
func (m *Message) String() string {
	switch m.Type {
	case MsgEvent:
		return fmt.Sprintf("EVENT(%s on %s) from %s", m.Event.ID, m.Event.Topic, m.From)
	case MsgReqContact:
		return fmt.Sprintf("REQCONTACT(origin=%s search=%v ttl=%d)", m.Origin, m.SearchTopics, m.TTL)
	case MsgAnsContact:
		return fmt.Sprintf("ANSCONTACT(%v of %s) from %s", m.Contacts, m.ContactsTopic, m.From)
	case MsgDigest:
		return fmt.Sprintf("DIGEST(%d filter bytes, k=%d) from %s", len(m.BloomBits), m.BloomK, m.From)
	case MsgDigestAns:
		return fmt.Sprintf("DIGEST_ANS(%d events) from %s", len(m.Events), m.From)
	default:
		return fmt.Sprintf("%s from %s", m.Type, m.From)
	}
}
