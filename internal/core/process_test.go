package core

import (
	"errors"
	"testing"

	"damulticast/internal/ids"
	"damulticast/internal/topic"
)

func testParams() Params {
	p := DefaultParams()
	p.ShufflePeriod = 0  // static tables unless a test opts in
	p.MaintainPeriod = 0 // no background maintenance unless opted in
	return p
}

func TestNewProcessValidation(t *testing.T) {
	env := newFakeEnv(1)
	if _, err := NewProcess("p", topic.Topic("bad"), testParams(), env); err == nil {
		t.Error("invalid topic accepted")
	}
	bad := testParams()
	bad.Z = 0
	if _, err := NewProcess("p", ".a", bad, env); !errors.Is(err, ErrBadZ) {
		t.Errorf("err = %v, want ErrBadZ", err)
	}
	bad = testParams()
	bad.A = 99
	if _, err := NewProcess("p", ".a", bad, env); !errors.Is(err, ErrBadA) {
		t.Errorf("err = %v, want ErrBadA", err)
	}
	bad = testParams()
	bad.Tau = 99
	if _, err := NewProcess("p", ".a", bad, env); !errors.Is(err, ErrBadTau) {
		t.Errorf("err = %v, want ErrBadTau", err)
	}
	bad = testParams()
	bad.G = -1
	if _, err := NewProcess("p", ".a", bad, env); !errors.Is(err, ErrBadG) {
		t.Errorf("err = %v, want ErrBadG", err)
	}
	bad = testParams()
	bad.B = -1
	if _, err := NewProcess("p", ".a", bad, env); !errors.Is(err, ErrBadB) {
		t.Errorf("err = %v, want ErrBadB", err)
	}
}

func TestMustNewProcessPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewProcess("p", topic.Topic("bad"), testParams(), newFakeEnv(1))
}

func TestAccessors(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p1", ".a.b", testParams(), env)
	if p.ID() != "p1" {
		t.Errorf("ID = %s", p.ID())
	}
	if p.Topic() != ".a.b" {
		t.Errorf("Topic = %s", p.Topic())
	}
	if p.Params().Z != 3 {
		t.Errorf("Params.Z = %d", p.Params().Z)
	}
	if p.Stopped() {
		t.Error("fresh process stopped")
	}
	if p.SuperKnownTopic() != "" {
		t.Errorf("SuperKnownTopic = %q", p.SuperKnownTopic())
	}
	if p.MemoryComplexity() != 0 {
		t.Errorf("MemoryComplexity = %d", p.MemoryComplexity())
	}
}

func TestSeedTables(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p1", ".a.b", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"p2", "p3"})
	if got := len(p.TopicTable()); got != 2 {
		t.Errorf("topic table len = %d", got)
	}
	p.SeedSuperTable(".a", []ids.ProcessID{"q1", "q2"})
	if got := len(p.SuperTable()); got != 2 {
		t.Errorf("super table len = %d", got)
	}
	if p.SuperKnownTopic() != ".a" {
		t.Errorf("SuperKnownTopic = %q", p.SuperKnownTopic())
	}
	if p.MemoryComplexity() != 4 {
		t.Errorf("MemoryComplexity = %d", p.MemoryComplexity())
	}
	// Seeding with an empty slice is a no-op.
	q := MustNewProcess("q", ".a.b", testParams(), env)
	q.SeedSuperTable(".a", nil)
	if q.SuperKnownTopic() != "" {
		t.Error("empty seed set super topic")
	}
}

func TestSuperTableCapIsZ(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.Z = 2
	p := MustNewProcess("p1", ".a.b", params, env)
	p.SeedSuperTable(".a", []ids.ProcessID{"q1", "q2", "q3", "q4"})
	if got := len(p.SuperTable()); got != 2 {
		t.Errorf("super table len = %d, want Z=2", got)
	}
}

func TestAdoptSuperPrefersDeeper(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p1", ".a.b.c", testParams(), env)
	// Root contacts first (found via expanding search).
	p.SeedSuperTable(topic.Root, []ids.ProcessID{"r1"})
	if p.SuperKnownTopic() != topic.Root {
		t.Fatalf("SuperKnownTopic = %q", p.SuperKnownTopic())
	}
	// Deeper contacts supersede.
	p.SeedSuperTable(".a", []ids.ProcessID{"q1"})
	if p.SuperKnownTopic() != ".a" {
		t.Fatalf("SuperKnownTopic = %q, want .a", p.SuperKnownTopic())
	}
	if got := p.SuperTable(); len(got) != 1 || got[0] != "q1" {
		t.Errorf("SuperTable = %v", got)
	}
	// Shallower contacts are now ignored.
	p.SeedSuperTable(topic.Root, []ids.ProcessID{"r2"})
	if p.SuperKnownTopic() != ".a" {
		t.Errorf("shallower adopt changed topic to %q", p.SuperKnownTopic())
	}
	// Non-supertopics are refused outright.
	p.SeedSuperTable(".x", []ids.ProcessID{"bad"})
	if p.SuperKnownTopic() != ".a" {
		t.Errorf("unrelated topic adopted: %q", p.SuperKnownTopic())
	}
	// The topic itself is not its own supertopic.
	p.SeedSuperTable(".a.b.c", []ids.ProcessID{"bad"})
	for _, id := range p.SuperTable() {
		if id == "bad" {
			t.Error("self-topic contacts adopted")
		}
	}
}

func TestStopAndRestart(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p1", ".a", testParams(), env)
	p.SeedTopicTable([]ids.ProcessID{"p2"})
	p.Stop()
	if !p.Stopped() {
		t.Fatal("not stopped")
	}
	if _, err := p.Publish([]byte("x")); !errors.Is(err, ErrStopped) {
		t.Errorf("Publish on stopped = %v", err)
	}
	p.HandleMessage(&Message{Type: MsgEvent, From: "p2", Event: &Event{ID: ids.EventID{Origin: "p2", Seq: 1}, Topic: ".a"}})
	if len(env.delivered) != 0 {
		t.Error("stopped process delivered")
	}
	p.Tick()
	if p.Now() != 0 {
		t.Error("stopped process ticked")
	}
	p.Restart()
	if p.Stopped() {
		t.Error("Restart did not clear stopped")
	}
	if _, err := p.Publish([]byte("y")); err != nil {
		t.Errorf("Publish after restart: %v", err)
	}
}

func TestGroupSizeEstimation(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.GroupSizeHint = 1000
	p := MustNewProcess("p1", ".a", params, env)
	if got := p.groupSize(); got != 1000 {
		t.Errorf("groupSize with hint = %d", got)
	}
	// Without a hint: empty table -> 1; the estimate grows with
	// occupancy and always exceeds the table length.
	params.GroupSizeHint = 0
	q := MustNewProcess("q1", ".a", params, env)
	if got := q.groupSize(); got != 1 {
		t.Errorf("empty-table estimate = %d", got)
	}
	q.SetTopicTableCap(64)
	seed := make([]ids.ProcessID, 20)
	for i := range seed {
		seed[i] = ids.ProcessID(rune('A' + i))
	}
	q.SeedTopicTable(seed)
	if got := q.groupSize(); got <= 20 {
		t.Errorf("estimate %d not above table occupancy", got)
	}
}

func TestProbabilities(t *testing.T) {
	env := newFakeEnv(1)
	params := testParams()
	params.GroupSizeHint = 1000
	params.G = 5
	params.A = 1
	params.Z = 3
	p := MustNewProcess("p1", ".a", params, env)
	if got := p.pSel(); got != 0.005 {
		t.Errorf("pSel = %g", got)
	}
	if got := p.pA(); got < 0.333 || got > 0.334 {
		t.Errorf("pA = %g", got)
	}
	if got := p.fanout(); got != 12 { // ceil(ln(1000)+5)
		t.Errorf("fanout = %d", got)
	}
}

func TestHandleMessageNil(t *testing.T) {
	env := newFakeEnv(1)
	p := MustNewProcess("p1", ".a", testParams(), env)
	p.HandleMessage(nil) // must not panic
	p.HandleMessage(&Message{Type: MsgType(99), From: "x"})
}

func TestEventClone(t *testing.T) {
	ev := &Event{ID: ids.EventID{Origin: "p", Seq: 1}, Topic: ".a", Payload: []byte("abc")}
	cp := ev.Clone()
	cp.Payload[0] = 'X'
	if ev.Payload[0] != 'a' {
		t.Error("Clone shares payload")
	}
	var nilEv *Event
	if nilEv.Clone() != nil {
		t.Error("nil Clone not nil")
	}
	empty := &Event{ID: ids.EventID{Origin: "p", Seq: 2}, Topic: ".a"}
	if cp2 := empty.Clone(); cp2.Payload != nil {
		t.Error("nil payload cloned to non-nil")
	}
}

func TestMessageString(t *testing.T) {
	ev := &Event{ID: ids.EventID{Origin: "p", Seq: 1}, Topic: ".a"}
	cases := []*Message{
		{Type: MsgEvent, From: "p", Event: ev},
		{Type: MsgReqContact, Origin: "p", SearchTopics: []topic.Topic{".a"}, TTL: 3},
		{Type: MsgAnsContact, From: "q", Contacts: []ids.ProcessID{"x"}, ContactsTopic: ".a"},
		{Type: MsgPing, From: "p"},
	}
	for _, m := range cases {
		if m.String() == "" {
			t.Errorf("empty String for %v", m.Type)
		}
	}
	if MsgType(42).String() != "msgtype(42)" {
		t.Errorf("unknown type string = %q", MsgType(42).String())
	}
	if !MsgEvent.IsEvent() || MsgPing.IsEvent() {
		t.Error("IsEvent misclassifies")
	}
}

func TestParamsWithDefaults(t *testing.T) {
	var p Params
	p.Z = 3
	p = p.withDefaults()
	if p.SeenCap == 0 || p.PingTimeout == 0 || p.FindSuperPeriod == 0 ||
		p.ReqContactTTL == 0 || p.NeighborhoodFanout == 0 {
		t.Errorf("withDefaults left zeros: %+v", p)
	}
}

func TestDefaultParamsMatchPaper(t *testing.T) {
	p := DefaultParams()
	if p.B != 3 || p.C != 5 || p.G != 5 || p.A != 1 || p.Z != 3 {
		t.Errorf("DefaultParams deviates from §VII-A: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("DefaultParams invalid: %v", err)
	}
}
