// Package loopblock implements the damcvet analyzer guarding the
// hub's single-threaded demux loop: a function whose doc comment
// carries //damcvet:nonblocking — and, transitively, every
// same-package function it calls — must never block. Blocking the
// demux loop stalls delivery for every subscriber and deadlocks the
// loop against its own reply channels (the PR 8 fairness contract).
//
// Flagged inside a nonblocking context:
//
//   - channel sends that are not the guarded case of a select carrying
//     an escape (a default clause or a <-ctx.Done() receive case);
//   - blocking channel receives outside such a select;
//   - time.Sleep;
//   - calls into blocking stdlib I/O: net, log, io.Copy/ReadAll/
//     ReadFull, the fmt print family, and os file operations.
//
// Bodies of `go func(){...}` literals are exempt — a spawned goroutine
// may block — and calls made inside them do not propagate the
// contract. Intentionally-safe operations (e.g. a send on a buffered
// reply channel with guaranteed capacity) use
// //damcvet:allow loopblock(reason).
package loopblock

import (
	"go/ast"
	"go/token"
	"go/types"

	"damulticast/internal/vet/analysis"
)

// Analyzer is the loopblock checker.
var Analyzer = &analysis.Analyzer{
	Name: "loopblock",
	Doc: "flags blocking operations (unguarded channel ops, time.Sleep, " +
		"stdlib I/O) in //damcvet:nonblocking functions and their " +
		"same-package callees",
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}

	// Roots are annotated functions; the contract propagates to every
	// same-package callee reached outside a `go` statement.
	roots := map[*types.Func]string{}
	var queue []*types.Func
	for fn, fd := range decls {
		if hasNonblockingDirective(fd.Doc) {
			roots[fn] = fn.Name()
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		walkBody(decls[fn].Body, func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(pass, call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return
			}
			if _, seen := roots[callee]; seen {
				return
			}
			if _, hasBody := decls[callee]; !hasBody {
				return
			}
			roots[callee] = roots[fn]
			queue = append(queue, callee)
		})
	}

	for fn, root := range roots {
		checkBody(pass, decls[fn], fn, root)
	}
	return nil
}

// hasNonblockingDirective reports whether a doc comment carries the
// //damcvet:nonblocking marker.
func hasNonblockingDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if c.Text == analysis.NonblockingDirective {
			return true
		}
	}
	return false
}

// walkBody visits body, pruning `go` statements (their work runs on
// another goroutine and may block) and nested function literals not
// invoked inline.
func walkBody(body *ast.BlockStmt, fn func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			// Deferred or stored literals run later; only the enclosing
			// function's own statements carry the contract. Inline
			// invocation is rare enough that the callee annotates
			// itself if it matters.
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

// checkBody reports blocking operations in one nonblocking function.
func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, fn *types.Func, root string) {
	ctx := fn.Name()
	if root != ctx {
		ctx = fn.Name() + " (reached from //damcvet:nonblocking " + root + ")"
	} else {
		ctx = "//damcvet:nonblocking " + ctx
	}

	// Track ancestry so channel ops guarded by an escaping select are
	// recognized.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.SendStmt:
			if !shielded(n, stack) {
				pass.Reportf(x.Pos(), "blocking channel send in %s: guard it with a select carrying a default or <-ctx.Done() escape, or annotate //damcvet:allow loopblock(reason)", ctx)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !shielded(enclosingStmt(n, stack), stack) {
				pass.Reportf(x.Pos(), "blocking channel receive in %s: guard it with a select carrying a default or <-ctx.Done() escape, or annotate //damcvet:allow loopblock(reason)", ctx)
			}
		case *ast.CallExpr:
			if why := blockingCall(pass, x); why != "" {
				pass.Reportf(x.Pos(), "%s blocks in %s: the demux loop must never stall; move the work off-loop or annotate //damcvet:allow loopblock(reason)", why, ctx)
			}
		}
		stack = append(stack, n)
		return true
	})
}

// enclosingStmt returns the statement containing expr: expr itself if
// a statement, else its nearest statement ancestor.
func enclosingStmt(n ast.Node, stack []ast.Node) ast.Node {
	if _, ok := n.(ast.Stmt); ok {
		return n
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(ast.Stmt); ok {
			return stack[i]
		}
	}
	return n
}

// shielded reports whether stmt is the guarded comm of a select that
// carries an escape: a default clause or a <-ctx.Done()-style receive.
func shielded(stmt ast.Node, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		clause, ok := stack[i].(*ast.CommClause)
		if !ok || clause.Comm != stmt {
			continue
		}
		// The clause's parent is the select's body block; the select
		// itself is one level above that.
		if i < 2 {
			return false
		}
		sel, ok := stack[i-2].(*ast.SelectStmt)
		if !ok {
			return false
		}
		return selectEscapes(sel)
	}
	return false
}

// selectEscapes reports whether a select can always make progress: it
// has a default clause or a context-cancellation receive case.
func selectEscapes(sel *ast.SelectStmt) bool {
	for _, s := range sel.Body.List {
		clause, ok := s.(*ast.CommClause)
		if !ok {
			continue
		}
		if clause.Comm == nil {
			return true // default
		}
		if recvFromDone(clause.Comm) {
			return true
		}
	}
	return false
}

// recvFromDone matches `<-x.Done()` (bare, or the RHS of an
// assignment) — the conventional cancellation escape.
func recvFromDone(stmt ast.Stmt) bool {
	var expr ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(expr).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	selx, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	return ok && selx.Sel.Name == "Done"
}

// fmtPrinters is the fmt output family (Sprintf and friends are pure).
var fmtPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Scan": true, "Scanf": true, "Scanln": true,
	"Fscan": true, "Fscanf": true, "Fscanln": true,
}

// osNonblocking lists os functions that are cheap metadata/environment
// reads, not file or process I/O.
var osNonblocking = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Getpid": true, "Getppid": true, "Getuid": true, "Geteuid": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
}

// ioBlocking lists io helpers that drive a Reader/Writer to
// completion.
var ioBlocking = map[string]bool{
	"Copy": true, "CopyN": true, "CopyBuffer": true,
	"ReadAll": true, "ReadFull": true, "ReadAtLeast": true,
	"WriteString": true,
}

// blockingCall classifies a call as blocking stdlib I/O; it returns a
// human-readable description or "".
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep"
		}
	case "net":
		return "net." + name + " (network I/O)"
	case "log", "log/slog":
		return fn.Pkg().Path() + "." + name + " (serialized log I/O)"
	case "fmt":
		if fmtPrinters[name] {
			return "fmt." + name + " (stream I/O)"
		}
	case "os":
		if fn.Type().(*types.Signature).Recv() == nil && !osNonblocking[name] {
			return "os." + name + " (file/process I/O)"
		}
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return "os." + recvTypeName(recv.Type()) + "." + name + " (file I/O)"
		}
	case "io":
		if ioBlocking[name] {
			return "io." + name + " (stream I/O)"
		}
	}
	return ""
}

func recvTypeName(t types.Type) string {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// calleeFunc resolves the static callee of a call, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.TypesInfo.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.TypesInfo.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}
