// Package loopblockclean holds code loopblock must accept: guarded
// channel ops, off-loop goroutines, the annotated buffered-reply
// escape hatch, and unannotated code that is free to block.
package loopblockclean

import (
	"context"
	"fmt"
	"time"
)

type hub struct {
	out   chan int
	in    chan int
	reply chan error
}

// demux is the loop under contract: every channel op carries an
// escape, slow work is spawned off-loop, and the reply send documents
// its capacity guarantee.
//
//damcvet:nonblocking
func demux(ctx context.Context, h *hub) {
	select {
	case v := <-h.in:
		_ = v
	case <-ctx.Done():
		return
	}
	select {
	case h.out <- 1:
	default:
	}
	go func() {
		// Spawned goroutines may block: exempt.
		time.Sleep(time.Millisecond)
		fmt.Println("off-loop work")
		h.out <- 2
	}()
	h.reply <- nil //damcvet:allow loopblock(reply channel is buffered cap 1 and consumed exactly once)
	fanout(h)
}

// fanout inherits the contract from demux and keeps its send guarded.
func fanout(h *hub) {
	select {
	case h.out <- 3:
	default:
	}
}

// offLoop is neither annotated nor reached from demux: free to block.
func offLoop(h *hub) {
	h.out <- 4
	time.Sleep(time.Second)
}
