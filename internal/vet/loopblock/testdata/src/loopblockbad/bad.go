// Package loopblockbad holds code loopblock must reject: unguarded
// channel ops, sleeps, stream I/O, an escape-less select, and a
// blocking helper reached transitively from the annotated loop.
package loopblockbad

import (
	"context"
	"fmt"
	"time"
)

type hub struct {
	out chan int
	in  chan int
}

// demux is the loop under contract.
//
//damcvet:nonblocking
func demux(ctx context.Context, h *hub) {
	h.out <- 1                   // want `blocking channel send in //damcvet:nonblocking demux`
	v := <-h.in                  // want `blocking channel receive in //damcvet:nonblocking demux`
	time.Sleep(time.Millisecond) // want `time\.Sleep blocks in //damcvet:nonblocking demux`
	fmt.Println("tick", v)       // want `fmt\.Println \(stream I/O\) blocks`
	helper(h)
	// A select with no default and no cancellation case can stall on
	// every comm: both cases are findings.
	select {
	case h.out <- 2: // want `blocking channel send`
	case v2 := <-h.in: // want `blocking channel receive`
		_ = v2
	}
	_ = ctx
}

// helper has no annotation of its own; it inherits the contract from
// its caller.
func helper(h *hub) {
	h.out <- 3 // want `blocking channel send in helper \(reached from //damcvet:nonblocking demux\)`
}
