package loopblock

import (
	"testing"

	"damulticast/internal/vet/analysistest"
)

func TestLoopblock(t *testing.T) {
	analysistest.Run(t, Analyzer, "loopblockbad", "loopblockclean")
}

func TestAppliesEverywhere(t *testing.T) {
	if Analyzer.AppliesTo != nil {
		t.Error("loopblock applies to every package; gating is per-function via //damcvet:nonblocking")
	}
}
