// Package wiresym implements the damcvet analyzer enforcing wire
// codec symmetry: every field of the envelope structs the encoder
// serializes (core.Message, core.Event and the structs they embed)
// must be referenced by both the encode path and the decode path of
// the codec package — adding a field to one side without the other
// fails lint instead of surfacing as a fuzz or interop failure.
//
// Functions are classified by the codec's own naming convention:
// Append*/Encode* (and unexported variants) are the encode path;
// Decode*/Parse* and methods on a type named decoder/Decoder are the
// decode path. A struct participates once the encode path references
// any of its fields; field references through helpers in either class
// count for that class.
//
// The analyzer also guards the protocol's retired wire slots: MsgType
// constants must be unique, and the v3 EVENT_REQ slot (13) must stay
// dead until a codec version bump deliberately reuses it (ROADMAP,
// wire stability contract).
package wiresym

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"sort"

	"damulticast/internal/vet/analysis"
)

// retiredSlots maps dead MsgType values to why they are dead.
var retiredSlots = map[int64]string{
	13: "EVENT_REQ (retired with wire v3; reuse requires a codec version bump)",
}

var (
	encodeRE = regexp.MustCompile(`^(Append|append|Encode|encode)`)
	decodeRE = regexp.MustCompile(`^(Decode|decode|Parse|parse)`)
)

// Analyzer is the wiresym checker.
var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc: "verifies every wire envelope field is referenced by both the " +
		"encode and decode paths, and that retired MsgType slots stay dead",
	AppliesTo: func(pkgPath string) bool {
		// The codec package (symmetry) and the package declaring the
		// MsgType constants (slot reuse).
		return pkgPath == "damulticast/internal/wire" || pkgPath == "damulticast/internal/core"
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkRetiredSlots(pass)
	checkSymmetry(pass)
	return nil
}

// pathClass is which half of the codec a function belongs to.
type pathClass int

const (
	neither pathClass = iota
	encodePath
	decodePath
)

func classify(fd *ast.FuncDecl) pathClass {
	if fd.Recv != nil {
		if id := recvTypeName(fd.Recv); id == "decoder" || id == "Decoder" {
			return decodePath
		}
	}
	switch {
	case encodeRE.MatchString(fd.Name.Name):
		return encodePath
	case decodeRE.MatchString(fd.Name.Name):
		return decodePath
	}
	return neither
}

func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// structKey identifies a struct type as "pkgpath.Name".
type structKey string

// checkSymmetry cross-references struct field usage between the two
// codec paths.
func checkSymmetry(pass *analysis.Pass) {
	refs := map[pathClass]map[structKey]map[string]bool{
		encodePath: {},
		decodePath: {},
	}
	structTypes := map[structKey]*types.Named{}
	haveEncode, haveDecode := false, false

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			class := classify(fd)
			if class == neither {
				continue
			}
			if class == encodePath {
				haveEncode = true
			} else {
				haveDecode = true
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if named, field := fieldRef(pass, x); named != nil {
						key := structKey(named.Obj().Pkg().Path() + "." + named.Obj().Name())
						addRef(refs[class], key, field)
						structTypes[key] = named
					}
				case *ast.CompositeLit:
					// Message{Field: v} construction counts as a
					// reference to Field (decode paths often build the
					// result this way).
					if named := namedStruct(pass.TypesInfo.TypeOf(x)); named != nil && named.Obj().Pkg() != nil {
						key := structKey(named.Obj().Pkg().Path() + "." + named.Obj().Name())
						for _, el := range x.Elts {
							if kv, ok := el.(*ast.KeyValueExpr); ok {
								if id, ok := kv.Key.(*ast.Ident); ok {
									addRef(refs[class], key, id.Name)
									structTypes[key] = named
								}
							}
						}
					}
				}
				return true
			})
		}
	}
	if !haveEncode || !haveDecode {
		return // not a codec package; nothing to cross-reference
	}

	// Every struct the encoder serializes must round-trip completely.
	keys := make([]string, 0, len(refs[encodePath]))
	for key := range refs[encodePath] {
		keys = append(keys, string(key))
	}
	sort.Strings(keys)
	for _, key := range keys {
		named := structTypes[structKey(key)]
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			inEnc := refs[encodePath][structKey(key)][field.Name()]
			inDec := refs[decodePath][structKey(key)][field.Name()]
			if inEnc && inDec {
				continue
			}
			var missing string
			switch {
			case !inEnc && !inDec:
				missing = "either the encode or the decode path"
			case !inDec:
				missing = "the decode path"
			default:
				missing = "the encode path"
			}
			pass.Reportf(field.Pos(), "wire asymmetry: %s.%s is not referenced by %s of %s; fields of serialized envelopes must round-trip (or be exempted with //damcvet:allow wiresym(reason) at the field)", named.Obj().Name(), field.Name(), missing, pass.Pkg.Path())
		}
	}
}

// fieldRef resolves a selector to (declaring struct, field name) when
// it selects a field of a named struct type.
func fieldRef(pass *analysis.Pass, sel *ast.SelectorExpr) (*types.Named, string) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, ""
	}
	recv := types.Unalias(s.Recv())
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(ptr.Elem())
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil, ""
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil, ""
	}
	return named, sel.Sel.Name
}

func namedStruct(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

func addRef(m map[structKey]map[string]bool, key structKey, field string) {
	if m[key] == nil {
		m[key] = map[string]bool{}
	}
	m[key][field] = true
}

// checkRetiredSlots verifies MsgType constants are unique and avoid
// retired wire slots.
func checkRetiredSlots(pass *analysis.Pass) {
	type slot struct {
		name string
		pos  ast.Node
		val  int64
	}
	var slots []slot
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || c.Type() == nil {
						continue
					}
					named, ok := types.Unalias(c.Type()).(*types.Named)
					if !ok || named.Obj().Name() != "MsgType" {
						continue
					}
					v, ok := constant.Int64Val(constant.ToInt(c.Val()))
					if !ok {
						continue
					}
					slots = append(slots, slot{name.Name, name, v})
				}
			}
		}
	}
	seen := map[int64]string{}
	for _, s := range slots {
		if why, retired := retiredSlots[s.val]; retired {
			pass.Reportf(s.pos.Pos(), "MsgType %s reuses retired wire slot %d: %s", s.name, s.val, why)
		}
		if prev, dup := seen[s.val]; dup {
			pass.Reportf(s.pos.Pos(), "MsgType %s duplicates wire slot %d already taken by %s: two message types must never share a slot", s.name, s.val, prev)
			continue
		}
		seen[s.val] = s.name
	}
}
