package wiresym

import (
	"testing"

	"damulticast/internal/vet/analysistest"
)

func TestWiresym(t *testing.T) {
	analysistest.Run(t, Analyzer, "wiresymbad", "wiresymclean")
}

func TestAppliesTo(t *testing.T) {
	if !Analyzer.AppliesTo("damulticast/internal/wire") {
		t.Error("wiresym must cover the codec package")
	}
	if !Analyzer.AppliesTo("damulticast/internal/core") {
		t.Error("wiresym must cover the package declaring MsgType slots")
	}
	if Analyzer.AppliesTo("damulticast") {
		t.Error("wiresym is scoped to the wire layer, not the hub")
	}
}
