// Package wiresymbad holds codec shapes wiresym must reject: an
// encode-only field, a dead field, a retired-slot reuse, and a
// duplicated MsgType slot.
package wiresymbad

type MsgType uint8

const (
	MsgPing     MsgType = 1
	MsgData     MsgType = 2
	MsgEventReq MsgType = 13 // want `MsgType MsgEventReq reuses retired wire slot 13`
	MsgDup      MsgType = 2  // want `MsgType MsgDup duplicates wire slot 2 already taken by MsgData`
)

// Header is the envelope: Seq is serialized but never decoded, and Pad
// is touched by neither path.
type Header struct {
	Kind MsgType
	Seq  uint64 // want `wire asymmetry: Header\.Seq is not referenced by the decode path`
	Pad  uint8  // want `wire asymmetry: Header\.Pad is not referenced by either the encode or the decode path`
}

// AppendHeader is the encode path.
func AppendHeader(dst []byte, h *Header) []byte {
	dst = append(dst, byte(h.Kind))
	dst = append(dst, byte(h.Seq))
	return dst
}

// DecodeHeader is the decode path; it forgets Seq.
func DecodeHeader(b []byte) Header {
	var h Header
	h.Kind = MsgType(b[0])
	return h
}
