// Package wiresymclean holds codec shapes wiresym must accept: a
// fully-symmetric envelope (decode via a decoder-typed receiver and a
// composite literal), unique MsgType slots that avoid retired values,
// and the annotated escape hatch for a never-serialized field.
package wiresymclean

type MsgType uint8

const (
	MsgPing MsgType = 1
	MsgData MsgType = 2
)

// Header round-trips completely; scratch is runtime-only bookkeeping
// and documents its exemption.
type Header struct {
	Kind    MsgType
	Seq     uint64
	scratch int //damcvet:allow wiresym(runtime bookkeeping, never serialized)
}

// AppendHeader is the encode path.
func AppendHeader(dst []byte, h *Header) []byte {
	dst = append(dst, byte(h.Kind))
	dst = append(dst, byte(h.Seq))
	return dst
}

// decoder mirrors the real codec's pooled cursor; its methods classify
// as the decode path by receiver type, whatever their names.
type decoder struct {
	b []byte
	i int
}

func (d *decoder) next() byte {
	c := d.b[d.i]
	d.i++
	return c
}

// DecodeHeader rebuilds the envelope via a composite literal: keyed
// fields count as decode-path references.
func DecodeHeader(b []byte) Header {
	d := &decoder{b: b}
	return Header{Kind: MsgType(d.next()), Seq: uint64(d.next())}
}
