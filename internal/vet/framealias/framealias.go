// Package framealias implements the damcvet analyzer encoding the
// wire.Decoder buffer contract (PR 8): byte fields of pooled-decoded
// messages — core.Event.Payload and core.Message.BloomBits — alias the
// transport frame and are valid only within the handling of that
// frame. Code that stores such a field into longer-lived state (struct
// fields, globals, maps, slices, channels, goroutine closures) must
// copy it first (bytes.Clone, append into a fresh slice, or
// Event.Clone).
//
// The check is intraprocedural with one level of local taint tracking:
// a local assigned an aliased field (directly or inside a composite
// literal) is tainted, and sinking a tainted value is a finding. Calls
// are copy boundaries — append(dst, payload...) spreads bytes and
// bytes.Clone/string conversions copy — so wrapping the field in any
// call clears the taint. Pointer flows (storing a *core.Event whole)
// are out of scope; the hub's RetainsEvents cloning covers those.
package framealias

import (
	"go/ast"
	"go/token"
	"go/types"

	"damulticast/internal/vet/analysis"
)

// aliasedFields lists the frame-aliasing byte fields by declaring
// package, type and field name (see wire.Decoder's lifetime contract).
var aliasedFields = map[string]map[string]bool{
	"damulticast/internal/core.Event":   {"Payload": true},
	"damulticast/internal/core.Message": {"BloomBits": true},
}

// Analyzer is the framealias checker.
var Analyzer = &analysis.Analyzer{
	Name: "framealias",
	Doc: "flags retention of wire.Decoder frame-aliased byte fields " +
		"(Event.Payload, Message.BloomBits) beyond the handler frame " +
		"without an intervening copy",
	// The wire package produces the aliases by design; everything else
	// must honor the contract.
	AppliesTo: func(pkgPath string) bool {
		return pkgPath != "damulticast/internal/wire"
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

// checkFunc runs the taint pass over one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := map[types.Object]bool{}

	// bearing reports whether e evaluates to (or contains, via
	// composite literals) a frame-aliased value: a direct aliased field
	// selector, a tainted local, or an append that stores one as an
	// element (append(s, payload) retains the alias; append(s,
	// payload...) copies the bytes and is clean, as is any other call).
	var bearing func(e ast.Expr) bool
	bearing = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			return isAliasedField(pass, x)
		case *ast.Ident:
			return tainted[pass.TypesInfo.Uses[x]]
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if bearing(el) {
					return true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return bearing(x.X)
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass, x) && x.Ellipsis == token.NoPos {
				for _, arg := range x.Args[1:] {
					if bearing(arg) {
						return true
					}
				}
			}
		case *ast.SliceExpr:
			return bearing(x.X) // subslices alias the same frame
		}
		return false
	}

	// Taint propagation to a fixpoint: local := <bearing expr> marks
	// the local. A handful of rounds covers chained locals.
	for i := 0; i < 4; i++ {
		changed := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || tainted[obj] {
					continue
				}
				if bearing(as.Rhs[i]) {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	report := func(pos token.Pos, sink string) {
		pass.Reportf(pos, "frame-aliased payload bytes %s: the slice aliases the transport frame and is only valid within this handler frame; copy first (bytes.Clone / append([]byte(nil), b...) / Event.Clone) or annotate //damcvet:allow framealias(reason)", sink)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i >= len(st.Rhs) {
					break
				}
				if !bearing(st.Rhs[i]) {
					continue
				}
				switch l := ast.Unparen(lhs).(type) {
				case *ast.SelectorExpr:
					if sel, ok := pass.TypesInfo.Selections[l]; ok && sel.Kind() == types.FieldVal {
						report(st.Rhs[i].Pos(), "stored into struct field "+l.Sel.Name)
					}
				case *ast.IndexExpr:
					report(st.Rhs[i].Pos(), "stored into a map or slice element")
				case *ast.Ident:
					if obj := pass.TypesInfo.Uses[l]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
						report(st.Rhs[i].Pos(), "stored into package-level variable "+l.Name)
					}
				}
			}
		case *ast.SendStmt:
			if bearing(st.Value) {
				report(st.Value.Pos(), "sent on a channel")
			}
		case *ast.GoStmt:
			if fl, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					switch x := m.(type) {
					case *ast.SelectorExpr:
						if isAliasedField(pass, x) {
							report(x.Pos(), "captured by a goroutine closure")
							return false
						}
					case *ast.Ident:
						if tainted[pass.TypesInfo.Uses[x]] {
							report(x.Pos(), "captured by a goroutine closure")
							return false
						}
					}
					return true
				})
			}
			for _, arg := range st.Call.Args {
				if bearing(arg) {
					report(arg.Pos(), "passed to a goroutine")
				}
			}
		}
		return true
	})
}

// isAliasedField reports whether sel is a read of one of the
// frame-aliased byte fields.
func isAliasedField(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	// A field read off a call result (ev.Clone().Payload) is not the
	// pooled decoder's value: calls are copy boundaries.
	if _, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok {
		return false
	}
	recv := types.Unalias(s.Recv())
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(ptr.Elem())
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	fields := aliasedFields[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
	return fields != nil && fields[sel.Sel.Name]
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
