package framealias

import (
	"testing"

	"damulticast/internal/vet/analysistest"
)

func TestFramealias(t *testing.T) {
	analysistest.Run(t, Analyzer, "framealiasbad", "framealiasclean")
}

func TestAppliesTo(t *testing.T) {
	if Analyzer.AppliesTo("damulticast/internal/wire") {
		t.Error("framealias must not run on internal/wire: the decoder produces the aliases by design")
	}
	if !Analyzer.AppliesTo("damulticast") {
		t.Error("framealias must cover the root package (hub delivery path)")
	}
}
