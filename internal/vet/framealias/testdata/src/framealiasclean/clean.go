// Package framealiasclean holds code framealias must accept: copies
// before retention, frame-local reads, and the annotated escape hatch.
package framealiasclean

import (
	"bytes"

	"damulticast/internal/core"
)

type cache struct {
	last   []byte
	frames [][]byte
}

var lastGlobal []byte

// copyIdioms retain copies, never the alias.
func copyIdioms(c *cache, ev *core.Event) {
	c.last = bytes.Clone(ev.Payload)
	c.frames = append(c.frames, append([]byte(nil), ev.Payload...))
	lastGlobal = []byte(string(ev.Payload))
}

// cloneBeforeRetain uses the protocol's own deep copy.
func cloneBeforeRetain(c *cache, ev *core.Event) {
	c.last = ev.Clone().Payload
}

// frameLocal reads within the handler frame are the whole point of the
// zero-copy decode path.
func frameLocal(ev *core.Event) int {
	n := 0
	for _, b := range ev.Payload {
		n += int(b)
	}
	return n
}

// spreadAppend copies the bytes into dst: clean.
func spreadAppend(dst []byte, ev *core.Event) []byte {
	return append(dst, ev.Payload...)
}

// annotated shows the escape hatch for a contractually-safe retention
// (e.g. the transport hands over buffer ownership per frame).
func annotated(ch chan []byte, ev *core.Event) {
	ch <- ev.Payload //damcvet:allow framealias(transport hands the handler a fresh buffer per frame; the frame is never reused)
}
