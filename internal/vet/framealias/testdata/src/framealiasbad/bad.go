// Package framealiasbad holds framealias true positives: every way of
// retaining a frame-aliased byte field past the handler frame.
package framealiasbad

import (
	"damulticast/internal/core"
)

type cache struct {
	last   []byte
	byID   map[string][]byte
	frames [][]byte
}

var lastGlobal []byte

func fieldStore(c *cache, ev *core.Event) {
	c.last = ev.Payload // want `frame-aliased payload bytes stored into struct field last`
}

func mapStore(c *cache, ev *core.Event) {
	c.byID[ev.ID.String()] = ev.Payload // want `frame-aliased payload bytes stored into a map or slice element`
}

func globalStore(ev *core.Event) {
	lastGlobal = ev.Payload // want `frame-aliased payload bytes stored into package-level variable lastGlobal`
}

func appendElement(c *cache, ev *core.Event) {
	c.frames = append(c.frames, ev.Payload) // want `frame-aliased payload bytes stored into struct field frames`
}

func channelSend(ch chan []byte, m *core.Message) {
	ch <- m.BloomBits // want `frame-aliased payload bytes sent on a channel`
}

type delivered struct {
	payload []byte
}

func compositeSend(ch chan delivered, ev *core.Event) {
	out := delivered{payload: ev.Payload}
	ch <- out // want `frame-aliased payload bytes sent on a channel`
}

func goroutineCapture(ev *core.Event) {
	go func() {
		_ = ev.Payload[0] // want `frame-aliased payload bytes captured by a goroutine closure`
	}()
}

func subsliceStore(c *cache, ev *core.Event) {
	c.last = ev.Payload[1:] // want `frame-aliased payload bytes stored into struct field last`
}
