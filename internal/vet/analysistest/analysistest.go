// Package analysistest runs a damcvet analyzer over testdata packages
// and checks its findings against // want comments, mirroring the
// upstream golang.org/x/tools/go/analysis/analysistest contract on the
// in-tree framework.
//
// Testdata layout follows the upstream convention:
//
//	<analyzer>/testdata/src/<pkg>/*.go
//
// A line expecting a finding carries a trailing comment of the form
//
//	// want "regexp"
//
// (several, space-separated, if several findings land on one line).
// Every reported diagnostic must match a want on its line and every
// want must be matched — unexpected findings and unmatched wants both
// fail the test. The Analyzer.AppliesTo filter is ignored: the
// analyzer runs on whatever package the test names.
package analysistest

import (
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strings"
	"testing"

	"damulticast/internal/vet/analysis"
	"damulticast/internal/vet/loadpkg"
)

var wantRE = regexp.MustCompile("//\\s*want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")
var wantArgRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads each named package from the calling test's testdata/src
// directory, applies the analyzer (with //damcvet:allow suppression
// active, so clean cases can demonstrate the escape hatch), and
// verifies the findings against the packages' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(1)
	if !ok {
		t.Fatal("analysistest: cannot locate caller for testdata path")
	}
	testdata := filepath.Join(filepath.Dir(thisFile), "testdata", "src")
	moduleRoot := moduleRootOf(t, filepath.Dir(thisFile))

	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, pkg)
		rel, err := filepath.Rel(moduleRoot, dir)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		loaded, err := loadpkg.Load(moduleRoot, "./"+filepath.ToSlash(rel))
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", pkg, err)
		}
		if len(loaded) != 1 {
			t.Fatalf("analysistest: load %s: got %d packages", pkg, len(loaded))
		}
		p := loaded[0]
		for _, e := range p.Errors {
			t.Errorf("analysistest: %s: type error: %v", pkg, e)
		}
		allow := analysis.BuildAllowIndex(p.Fset, p.Files)
		diags, err := analysis.Run(a, p.Fset, p.Files, p.Types, p.TypesInfo, allow)
		if err != nil {
			t.Fatalf("analysistest: %s: %v", pkg, err)
		}
		diags = append(diags, allow.Malformed...)
		checkWants(t, pkg, p.Fset, p.Files, diags)
	}
}

// want is one expectation: a regexp at a file line, matched at most
// once.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func checkWants(t *testing.T, pkg string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					pat := arg[2] // backquoted form, no unescaping
					if arg[1] != "" {
						pat = strings.ReplaceAll(arg[1], `\"`, `"`)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: %s:%d: bad want regexp: %v", pkg, pos.Filename, pos.Line, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: %s:%d: unexpected finding: [%s] %s", pkg, filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: no finding matched want %q", pkg, filepath.Base(w.file), w.line, w.re)
		}
	}
}

// moduleRootOf walks up from dir to the directory holding go.mod.
func moduleRootOf(t *testing.T, dir string) string {
	t.Helper()
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatal("analysistest: go.mod not found above testdata")
		}
		d = parent
	}
}
