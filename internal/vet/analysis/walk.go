package analysis

import "go/ast"

// WalkStack traverses each file in depth-first order, calling fn with
// every node and the stack of its ancestors (outermost first, not
// including n itself). Returning false prunes the subtree under n.
func WalkStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	for _, f := range files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if !fn(n, stack) {
				return false
			}
			stack = append(stack, n)
			return true
		})
	}
}
