package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// The //damcvet: directive grammar. Directives are machine-readable
// comments (no space after //, like //go:build), so gofmt leaves them
// alone:
//
//	//damcvet:allow <analyzer>(<reason>)
//	    Suppresses <analyzer> findings. Placed at the end of a line or
//	    on the line above, it covers that line; placed in a function's
//	    doc comment, it covers the whole function. The reason is
//	    mandatory — every exemption documents itself.
//
//	//damcvet:nonblocking
//	    On a function's doc comment: marks the function as part of a
//	    never-block loop. The loopblock analyzer checks the function
//	    and everything it (statically, same-package) calls.
//
// Anything else after //damcvet: is a malformed directive, reported by
// the checker itself so typos cannot silently disable an invariant.

const directivePrefix = "//damcvet:"

// NonblockingDirective marks a function checked by loopblock.
const NonblockingDirective = "//damcvet:nonblocking"

var allowRE = regexp.MustCompile(`^//damcvet:allow ([a-z][a-z0-9]*)\((.+)\)\s*$`)

// allowSpan is one allow directive's coverage: lines [from, to] of one
// file, for one analyzer.
type allowSpan struct {
	file     string
	from, to int
	analyzer string
}

// AllowIndex resolves //damcvet:allow suppressions for a set of files.
type AllowIndex struct {
	spans []allowSpan
	// Malformed holds diagnostics for comments that start with
	// //damcvet: but parse as no known directive.
	Malformed []Diagnostic
}

// BuildAllowIndex scans files (which must carry comments) for allow
// directives and returns the suppression index. Files from several
// packages may be combined into one index.
func BuildAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	idx := &AllowIndex{}
	for _, f := range files {
		// Function-doc directives cover the whole declaration.
		docCovered := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				docCovered[fd.Doc] = true
				for _, c := range fd.Doc.List {
					if name, ok := parseAllow(c.Text); ok {
						idx.spans = append(idx.spans, allowSpan{
							file:     fset.Position(fd.Pos()).Filename,
							from:     fset.Position(fd.Pos()).Line,
							to:       fset.Position(fd.End()).Line,
							analyzer: name,
						})
					}
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				if c.Text == NonblockingDirective {
					continue
				}
				name, ok := parseAllow(c.Text)
				if !ok {
					idx.Malformed = append(idx.Malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "damcvet",
						Message:  "malformed //damcvet: directive (want //damcvet:allow <analyzer>(<reason>) or //damcvet:nonblocking): " + c.Text,
					})
					continue
				}
				if docCovered[cg] {
					continue // already indexed with the function's span
				}
				// A line directive covers its own line (end-of-line
				// placement) and the next (placed above a statement).
				pos := fset.Position(c.Pos())
				idx.spans = append(idx.spans, allowSpan{
					file:     pos.Filename,
					from:     pos.Line,
					to:       pos.Line + 1,
					analyzer: name,
				})
			}
		}
	}
	return idx
}

// parseAllow extracts the analyzer name from an allow directive,
// requiring a non-empty reason.
func parseAllow(text string) (analyzer string, ok bool) {
	m := allowRE.FindStringSubmatch(text)
	if m == nil || strings.TrimSpace(m[2]) == "" {
		return "", false
	}
	return m[1], true
}

// Suppressed reports whether a finding of the named analyzer at pos is
// covered by an allow directive.
func (idx *AllowIndex) Suppressed(analyzer string, pos token.Position) bool {
	for _, s := range idx.spans {
		if s.analyzer == analyzer && s.file == pos.Filename && s.from <= pos.Line && pos.Line <= s.to {
			return true
		}
	}
	return false
}
