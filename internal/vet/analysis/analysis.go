// Package analysis is the minimal in-tree counterpart of
// golang.org/x/tools/go/analysis that damcvet's invariant checkers are
// built on. The container this repo builds in has no module proxy
// access, so the canonical framework cannot be a dependency; this
// package keeps the same shape (Analyzer, Pass, Diagnostic, a runner)
// so the analyzers port to the upstream API mechanically if the
// dependency ever becomes available.
//
// Not to be confused with internal/analysis, which holds the paper's
// closed-form math: internal/vet is build-time linting, and nothing
// here links into the protocol binaries.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one invariant checker: a name (used by the
// //damcvet:allow grammar), documentation, an optional package filter,
// and the check itself.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //damcvet:allow comments. Lowercase, no spaces.
	Name string

	// Doc describes what the analyzer enforces. The first line is the
	// summary shown by damcvet's analyzer listing.
	Doc string

	// AppliesTo optionally restricts which packages the checker runs
	// this analyzer on, by import path. A nil AppliesTo means every
	// package. Test harnesses (analysistest) ignore this filter and
	// run the analyzer on whatever package they load.
	AppliesTo func(pkgPath string) bool

	// Run performs the check on one package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Run applies one analyzer to one package and returns its findings,
// with //damcvet:allow-suppressed diagnostics already removed. allow
// may be nil (no suppression). Findings positioned outside the files
// the allow index was built from are returned as-is.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, allow *AllowIndex) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     files,
		Pkg:       pkg,
		TypesInfo: info,
		report: func(d Diagnostic) {
			if allow != nil && allow.Suppressed(a.Name, fset.Position(d.Pos)) {
				return
			}
			diags = append(diags, d)
		},
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %w", a.Name, err)
	}
	return diags, nil
}
