// Package loadpkg loads and type-checks Go packages for damcvet's
// analyzers without golang.org/x/tools/go/packages (unavailable in the
// build container): package metadata comes from `go list -json`, and
// type checking is plain go/types in dependency order. Dependencies
// are checked declarations-only (IgnoreFuncBodies); the requested
// target packages get full bodies, comments and a populated
// types.Info.
package loadpkg

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	// Files are the package's parsed non-test sources. Target packages
	// are parsed with comments; dependency packages are not.
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Errors holds type errors. Target packages with errors are still
	// returned (best-effort ASTs) so callers can report them.
	Errors []error
}

// listedPkg mirrors the `go list -json` fields the loader consumes.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	Error      *struct{ Err string }
}

// loader state shared across Load calls in one process: the file set
// must be shared for positions to stay meaningful, and re-checking the
// standard library per call would make every analysistest suite pay
// seconds of redundant work.
var (
	mu     sync.Mutex
	fset   = token.NewFileSet()
	byPath = map[string]*Package{}
)

// Fset returns the loader's shared file set.
func Fset() *token.FileSet { return fset }

// Load loads the packages matched by patterns (go list syntax;
// explicit directory patterns may name testdata packages) rooted at
// dir, type-checks them and their dependency closure, and returns the
// matched packages in listing order.
func Load(dir string, patterns ...string) ([]*Package, error) {
	mu.Lock()
	defer mu.Unlock()

	targets, err := goList(dir, false, patterns)
	if err != nil {
		return nil, err
	}
	isTarget := make(map[string]bool, len(targets))
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("loadpkg: %s: %s", t.ImportPath, t.Error.Err)
		}
		isTarget[t.ImportPath] = true
	}

	deps, err := goList(dir, true, patterns)
	if err != nil {
		return nil, err
	}
	// `go list -deps` emits dependencies before dependents, so one
	// in-order pass type-checks every import before its importers.
	for _, lp := range deps {
		if lp.Error != nil {
			return nil, fmt.Errorf("loadpkg: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if err := check(lp, isTarget[lp.ImportPath]); err != nil {
			return nil, err
		}
	}

	out := make([]*Package, 0, len(targets))
	for _, t := range targets {
		p := byPath[t.ImportPath]
		if p == nil {
			return nil, fmt.Errorf("loadpkg: %s: not in dependency listing", t.ImportPath)
		}
		out = append(out, p)
	}
	return out, nil
}

// goList shells out to the go tool for package metadata. CGO is
// disabled so every listed package has a pure-Go file set the type
// checker can consume.
func goList(dir string, deps bool, patterns []string) ([]*listedPkg, error) {
	args := []string{"list", "-e", "-json=ImportPath,Name,Dir,GoFiles,Imports,ImportMap,Standard,Error"}
	if deps {
		args = append(args, "-deps")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("loadpkg: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPkg
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loadpkg: go list output: %v", err)
		}
		pkgs = append(pkgs, &lp)
	}
	return pkgs, nil
}

// check parses and type-checks one listed package into the cache. A
// cached dependency-grade package is re-checked at target grade when a
// later Load asks for full detail.
func check(lp *listedPkg, target bool) error {
	if lp.ImportPath == "unsafe" {
		return nil // types.Unsafe, handled by the importer
	}
	if p := byPath[lp.ImportPath]; p != nil && (p.TypesInfo != nil || !target) {
		return nil
	}
	if lp.Name == "" || len(lp.GoFiles) == 0 {
		return fmt.Errorf("loadpkg: %s: no buildable Go files", lp.ImportPath)
	}

	mode := parser.SkipObjectResolution
	if target {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, mode)
		if err != nil {
			return fmt.Errorf("loadpkg: %s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}

	p := &Package{PkgPath: lp.ImportPath, Name: lp.Name, Dir: lp.Dir, Fset: fset, Files: files}
	var info *types.Info
	if target {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
		}
	}
	conf := types.Config{
		IgnoreFuncBodies: !target,
		FakeImportC:      true,
		Importer:         &pkgImporter{importMap: lp.ImportMap},
		Error:            func(err error) { p.Errors = append(p.Errors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil && len(p.Errors) == 0 {
		p.Errors = append(p.Errors, err)
	}
	// Dependency packages must check cleanly or every dependent's
	// analysis is garbage; target packages surface their own errors.
	if !target && len(p.Errors) > 0 {
		return fmt.Errorf("loadpkg: dependency %s: %v", lp.ImportPath, errors.Join(p.Errors...))
	}
	p.Types = tpkg
	p.TypesInfo = info
	byPath[lp.ImportPath] = p
	return nil
}

// pkgImporter resolves imports from the cross-call package cache,
// applying one package's vendor import map (stdlib-vendored paths like
// golang.org/x/net/... list under vendor/...).
type pkgImporter struct {
	importMap map[string]string
}

func (im *pkgImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *pkgImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := byPath[path]; p != nil && p.Types != nil {
		return p.Types, nil
	}
	return nil, fmt.Errorf("package %s not loaded", path)
}
