package loadpkg

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatal("go.mod not found above test directory")
		}
		d = parent
	}
}

func TestLoadTargetGrade(t *testing.T) {
	root := moduleRoot(t)
	pkgs, err := Load(root, "./internal/wire", "./internal/core")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.Errors) > 0 {
			t.Errorf("%s: type errors: %v", p.PkgPath, p.Errors)
		}
		if p.Types == nil || p.TypesInfo == nil {
			t.Fatalf("%s: target package missing type info", p.PkgPath)
		}
		if len(p.TypesInfo.Defs) == 0 || len(p.TypesInfo.Uses) == 0 {
			t.Errorf("%s: type info not populated", p.PkgPath)
		}
		// Target packages parse with comments: the analyzers and the
		// allow index both depend on them.
		comments := 0
		for _, f := range p.Files {
			comments += len(f.Comments)
		}
		if comments == 0 {
			t.Errorf("%s: no comments parsed; target grade requires ParseComments", p.PkgPath)
		}
	}
}

func TestLoadReusesCache(t *testing.T) {
	root := moduleRoot(t)
	a, err := Load(root, "./internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(root, "./internal/wire")
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Error("second Load of the same package did not hit the cache")
	}
	if a[0].Fset != Fset() {
		t.Error("package file set is not the shared loader file set")
	}
}

func TestLoadBadPattern(t *testing.T) {
	if _, err := Load(moduleRoot(t), "./does/not/exist"); err == nil {
		t.Error("expected an error for a pattern matching no packages")
	}
}
