package detrand

import (
	"testing"

	"damulticast/internal/vet/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, Analyzer, "detrandbad", "detrandclean")
}

func TestAppliesTo(t *testing.T) {
	for _, pkg := range []string{
		"damulticast/internal/simnet",
		"damulticast/internal/sim",
		"damulticast/internal/core",
		"damulticast/internal/baseline",
		"damulticast/internal/workload",
		"damulticast/internal/scale",
	} {
		if !Analyzer.AppliesTo(pkg) {
			t.Errorf("AppliesTo(%s) = false, want true", pkg)
		}
	}
	for _, pkg := range []string{
		"damulticast/internal/xrand", // seeded-randomness layer wraps math/rand on purpose
		"damulticast/internal/chaos", // wall-clock fault schedules are its job
		"damulticast",
	} {
		if Analyzer.AppliesTo(pkg) {
			t.Errorf("AppliesTo(%s) = true, want false", pkg)
		}
	}
}
