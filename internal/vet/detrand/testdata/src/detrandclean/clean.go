// Package detrandclean holds code detrand must accept: seeded rand
// streams, order-independent map iteration, the sorted-keys idiom, and
// the //damcvet:allow escape hatch.
package detrandclean

import (
	"math/rand"
	"sort"
	"time"
)

// seededStream draws from an explicit seeded generator — the supported
// idiom, never flagged.
func seededStream(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// sortedKeys is the canonical deterministic map walk.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// orderIndependent writes commute: integer accumulation, counters, and
// writes keyed by the loop variable each own their slot.
func orderIndependent(m map[string]int) (int, int, map[string]int) {
	var sum, n int
	out := make(map[string]int, len(m))
	for k, v := range m {
		sum += v
		n++
		out[k] = v * 2
	}
	return sum, n, out
}

// sampledClock shows the escape hatch: experiment wall-time sampling
// is legitimately wall-clock and documents itself.
func sampledClock() time.Duration {
	start := time.Now()                              //damcvet:allow detrand(wall-time sampling for run reports, not a protocol result)
	return time.Since(start).Round(time.Millisecond) //damcvet:allow detrand(wall-time sampling for run reports, not a protocol result)
}
