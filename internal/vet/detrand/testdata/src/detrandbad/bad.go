// Package detrandbad holds detrand true positives: wall-clock reads,
// global math/rand draws, and order-dependent map iteration.
package detrandbad

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now() // want `time\.Now in determinism-contract package`
	_ = start
	return time.Since(start) // want `time\.Since in determinism-contract package`
}

func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle`
	return rand.Intn(10)               // want `global math/rand\.Intn`
}

func lastWriterWins(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want `iteration-order-dependent write to last`
	}
	return last
}

func unsortedCollect(m map[string]int) []string {
	var keys []string
	for k := range m { // keys are never sorted: emission order is map order
		keys = append(keys, k) // want `append to keys \(keys not sorted after the loop\)`
	}
	return keys
}

func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `iteration-order-dependent write to sum`
	}
	return sum
}

func sendInOrder(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `iteration-order-dependent channel send`
	}
}
