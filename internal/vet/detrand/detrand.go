// Package detrand implements the damcvet analyzer enforcing the
// repo's determinism contract: kernel results must be byte-identical
// for any Workers count and figure CSVs byte-identical for any
// -sweepworkers value (ROADMAP, standing contracts). Inside the
// contract packages that means no wall-clock reads, no global
// math/rand state, and no result-affecting writes made in map
// iteration order.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"damulticast/internal/vet/analysis"
)

// contractPackages are the packages whose outputs feed golden digests
// and byte-compared figure CSVs. xrand is deliberately absent: it is
// the seeded-randomness utility layer and wraps math/rand on purpose.
var contractPackages = map[string]bool{
	"damulticast/internal/simnet":   true,
	"damulticast/internal/sim":      true,
	"damulticast/internal/core":     true,
	"damulticast/internal/baseline": true,
	"damulticast/internal/workload": true,
	"damulticast/internal/scale":    true,
}

// Analyzer is the detrand checker.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "flags nondeterminism sources in determinism-contract packages: " +
		"time.Now/Since/Until, global math/rand state, and map iteration " +
		"with iteration-order-dependent writes",
	AppliesTo: func(pkgPath string) bool { return contractPackages[pkgPath] },
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkCalls(pass, f)
	}
	analysis.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(rs.X); t == nil || !isMap(t) {
			return true
		}
		checkMapRange(pass, rs, stack)
		return true
	})
	return nil
}

// checkCalls flags wall-clock reads and global math/rand use. Methods
// on a seeded *rand.Rand are the supported idiom and stay clean; only
// the package-level functions (shared process-global state, seeded
// from the clock) are findings.
func checkCalls(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods never touch the global generators
		}
		switch fn.Pkg().Path() {
		case "time":
			switch fn.Name() {
			case "Now", "Since", "Until":
				pass.Reportf(call.Pos(), "time.%s in determinism-contract package %s: results must not depend on the wall clock (derive from round/tick counters, or annotate //damcvet:allow detrand(reason))", fn.Name(), pass.Pkg.Path())
			}
		case "math/rand", "math/rand/v2":
			if strings.HasPrefix(fn.Name(), "New") {
				return true // explicit-seed constructors are the supported idiom
			}
			pass.Reportf(call.Pos(), "global %s.%s in determinism-contract package %s: draws from the process-global generator are scheduling-dependent; use a seeded *rand.Rand stream (xrand.NewStream/SeedFor) or annotate //damcvet:allow detrand(reason)", fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
		}
		return true
	})
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange flags a range over a map whose body performs
// iteration-order-dependent writes to state declared outside the loop.
// Order-independent writes stay clean: counter increments, commutative
// integer accumulation, and writes keyed by the loop variables (each
// key owns its slot). The sorted-keys idiom — collect keys with
// append, sort the slice after the loop — is recognized and clean.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	inLoop := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}
	// usesLoopState reports whether e reads the key/value variables or
	// anything else declared inside the loop (per-iteration state).
	usesLoopState := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; inLoop(obj) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	type finding struct {
		pos  token.Pos
		what string
	}
	var findings []finding
	// appendCollects maps an outer slice variable to the position of
	// its order-dependent append, pending the sorted-after exemption.
	appendCollects := map[types.Object]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.SendStmt:
			findings = append(findings, finding{st.Arrow, "channel send"})
		case *ast.AssignStmt:
			if st.Tok == token.DEFINE {
				return true
			}
			for i, lhs := range st.Lhs {
				var rhs ast.Expr
				if len(st.Rhs) == len(st.Lhs) {
					rhs = st.Rhs[i]
				} else {
					rhs = st.Rhs[0] // multi-value call: treat each LHS as fed by it
				}
				root := rootIdent(lhs)
				if root == nil {
					continue
				}
				obj := pass.TypesInfo.Uses[root]
				if obj == nil || inLoop(obj) {
					continue
				}
				if !usesLoopState(rhs) && !usesLoopState(lhs) {
					continue // idempotent across iterations
				}
				// Writes keyed by loop state address a distinct slot
				// per iteration: order-independent.
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && usesLoopState(ix.Index) {
					continue
				}
				// s = append(s, ...loop state...) is order-dependent
				// unless the slice is sorted after the loop.
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(pass, call, "append") {
					appendCollects[obj] = st.Pos()
					continue
				}
				if commutativeOp(pass, st.Tok, lhs) {
					continue
				}
				findings = append(findings, finding{st.Pos(), "write to " + root.Name})
			}
		}
		return true
	})

	// Sorted-after exemption for append collectors.
	for obj, pos := range appendCollects {
		if !sortedAfter(pass, rs, stack, obj) {
			findings = append(findings, finding{pos, "append to " + obj.Name() + " (keys not sorted after the loop)"})
		}
	}

	for _, f := range findings {
		pass.Reportf(f.pos, "iteration-order-dependent %s inside range over map: map order is randomized per run, breaking byte-identical results; iterate sorted keys or annotate //damcvet:allow detrand(reason)", f.what)
	}
}

// commutativeOp reports whether an op-assign write commutes across
// iterations for the written type: integer +=, *=, |=, &=, ^= do
// (order never changes the result); float accumulation, string
// concatenation, shifts and division do not.
func commutativeOp(pass *analysis.Pass, tok token.Token, lhs ast.Expr) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
	default:
		return false
	}
	t := pass.TypesInfo.TypeOf(lhs)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsInteger != 0
}

// sortedAfter reports whether obj is passed to a sort call in the
// statements that follow rs in its enclosing block.
func sortedAfter(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node, obj types.Object) bool {
	var block *ast.BlockStmt
	for i := len(stack) - 1; i >= 0; i-- {
		if b, ok := stack[i].(*ast.BlockStmt); ok {
			block = b
			break
		}
	}
	if block == nil {
		return false
	}
	after := false
	for _, st := range block.List {
		if st == rs || (rs.Pos() >= st.Pos() && rs.End() <= st.End()) {
			after = true
			continue
		}
		if !after {
			continue
		}
		sorted := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || sorted {
				return !sorted
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if pkg := fn.Pkg().Path(); pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id := rootIdent(arg); id != nil && pass.TypesInfo.Uses[id] == obj {
					sorted = true
				}
			}
			return true
		})
		if sorted {
			return true
		}
	}
	return false
}

// rootIdent unwraps selectors, indexes, stars and parens down to the
// base identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}
