package ids

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEventIDString(t *testing.T) {
	e := EventID{Origin: "p7", Seq: 42}
	if got := e.String(); got != "p7#42" {
		t.Errorf("String = %q", got)
	}
}

func TestEventIDLess(t *testing.T) {
	tests := []struct {
		a, b EventID
		want bool
	}{
		{EventID{"a", 1}, EventID{"b", 0}, true},
		{EventID{"b", 0}, EventID{"a", 1}, false},
		{EventID{"a", 1}, EventID{"a", 2}, true},
		{EventID{"a", 2}, EventID{"a", 2}, false},
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("%v.Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSortProcessIDs(t *testing.T) {
	got := SortProcessIDs([]ProcessID{"c", "a", "b"})
	want := []ProcessID{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SortProcessIDs = %v", got)
	}
}

func TestSeenSetBasic(t *testing.T) {
	s := NewSeenSet(4)
	id := EventID{"p", 1}
	if s.Seen(id) {
		t.Error("fresh set claims Seen")
	}
	if !s.Add(id) {
		t.Error("first Add returned false")
	}
	if s.Add(id) {
		t.Error("second Add returned true")
	}
	if !s.Seen(id) {
		t.Error("Seen false after Add")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Cap() != 4 {
		t.Errorf("Cap = %d", s.Cap())
	}
}

func TestSeenSetEviction(t *testing.T) {
	s := NewSeenSet(3)
	for i := uint64(0); i < 3; i++ {
		s.Add(EventID{"p", i})
	}
	// Adding a 4th evicts the oldest (seq 0).
	s.Add(EventID{"p", 3})
	if s.Seen(EventID{"p", 0}) {
		t.Error("oldest id not evicted")
	}
	for i := uint64(1); i <= 3; i++ {
		if !s.Seen(EventID{"p", i}) {
			t.Errorf("id %d unexpectedly evicted", i)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestSeenSetDefaultCap(t *testing.T) {
	s := NewSeenSet(0)
	if s.Cap() != DefaultSeenCap {
		t.Errorf("Cap = %d, want %d", s.Cap(), DefaultSeenCap)
	}
	s = NewSeenSet(-5)
	if s.Cap() != DefaultSeenCap {
		t.Errorf("Cap = %d, want %d", s.Cap(), DefaultSeenCap)
	}
}

func TestSeenSetCompaction(t *testing.T) {
	// Push far past capacity to exercise the queue-compaction branch.
	s := NewSeenSet(8)
	for i := uint64(0); i < 1000; i++ {
		if !s.Add(EventID{"p", i}) {
			t.Fatalf("Add(%d) returned false", i)
		}
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d, want 8", s.Len())
	}
	// The last 8 must be present, earlier ones gone.
	for i := uint64(992); i < 1000; i++ {
		if !s.Seen(EventID{"p", i}) {
			t.Errorf("recent id %d missing", i)
		}
	}
	if s.Seen(EventID{"p", 0}) {
		t.Error("ancient id still present")
	}
}

// Property: after any Add sequence, Len never exceeds Cap and the most
// recently added id is always present.
func TestPropSeenSetBounds(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewSeenSet(16)
		var last EventID
		for i := 0; i < int(n)+1; i++ {
			last = EventID{ProcessID(string(rune('a' + r.Intn(4)))), uint64(r.Intn(64))}
			s.Add(last)
			if s.Len() > s.Cap() {
				return false
			}
		}
		return s.Seen(last)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Add returns true iff the id was not already present.
func TestPropAddIdempotent(t *testing.T) {
	prop := func(seqs []uint8) bool {
		s := NewSeenSet(1024)
		ref := map[EventID]bool{}
		for _, q := range seqs {
			id := EventID{"p", uint64(q)}
			fresh := s.Add(id)
			if fresh == ref[id] {
				return false // Add said fresh but ref saw it (or vice versa)
			}
			ref[id] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSeenSetAdd(b *testing.B) {
	s := NewSeenSet(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(EventID{"p", uint64(i)})
	}
}
