// Package ids defines process and event identities shared by all
// daMulticast components, plus a bounded duplicate-suppression set used
// by the RECEIVE handler ("if eTi not received", Fig. 5 of the paper).
package ids

import (
	"fmt"
	"sort"
	"strconv"
)

// ProcessID uniquely names a process in the system. In simulations it
// is a small decimal string; in live deployments it is typically
// "host:port" or an application-chosen name.
type ProcessID string

// String returns the identifier.
func (p ProcessID) String() string { return string(p) }

// Indexed builds the simulators' canonical "<prefix>#<i>" process id
// without the fmt machinery — one allocation, no reflection. The bytes
// are exactly fmt.Sprintf("%s#%d", prefix, i), which existing seeds and
// golden digests derive from, so the two constructions stay
// interchangeable.
func Indexed(prefix string, i int) ProcessID {
	b := make([]byte, 0, len(prefix)+12)
	b = append(b, prefix...)
	b = append(b, '#')
	b = strconv.AppendInt(b, int64(i), 10)
	return ProcessID(b)
}

// EventID uniquely identifies a published event as (origin, sequence).
// Each publisher numbers its own events, so IDs are unique without
// coordination.
type EventID struct {
	Origin ProcessID
	Seq    uint64
}

// String formats the event id as "origin#seq".
func (e EventID) String() string {
	return fmt.Sprintf("%s#%d", e.Origin, e.Seq)
}

// Less provides a total order for deterministic iteration in tests.
func (e EventID) Less(o EventID) bool {
	if e.Origin != o.Origin {
		return e.Origin < o.Origin
	}
	return e.Seq < o.Seq
}

// SortProcessIDs sorts ids in place and returns them (for deterministic
// logs and tests).
func SortProcessIDs(ps []ProcessID) []ProcessID {
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// SeenSet is a bounded set of EventIDs with FIFO eviction. Gossip
// protocols must suppress duplicate deliveries of the same event, but
// cannot remember every event forever; a bounded window is the standard
// compromise (cf. lpbcast's event-id buffer).
//
// The zero value is unusable; use NewSeenSet. SeenSet is not
// goroutine-safe; callers synchronize (each core.Process owns one).
type SeenSet struct {
	cap   int
	set   map[EventID]struct{}
	queue []EventID
	head  int
}

// DefaultSeenCap is a generous default window for simulations and
// examples: large enough that no legitimate duplicate window is missed,
// small enough to bound memory.
const DefaultSeenCap = 8192

// NewSeenSet returns a SeenSet that remembers at most capacity ids.
// capacity <= 0 selects DefaultSeenCap.
func NewSeenSet(capacity int) *SeenSet {
	if capacity <= 0 {
		capacity = DefaultSeenCap
	}
	// The map grows on demand toward cap; preallocating cap slots here
	// would make building an N-process simulation O(N·cap) — ~46s of
	// wall clock for 20k processes at the default window.
	return &SeenSet{
		cap: capacity,
		set: make(map[EventID]struct{}),
	}
}

// Seen reports whether id is in the window.
func (s *SeenSet) Seen(id EventID) bool {
	_, ok := s.set[id]
	return ok
}

// Add inserts id, evicting the oldest entry if the window is full.
// It returns true if the id was new (i.e. this is the first sighting).
func (s *SeenSet) Add(id EventID) bool {
	if _, ok := s.set[id]; ok {
		return false
	}
	if len(s.set) >= s.cap {
		old := s.queue[s.head]
		delete(s.set, old)
		s.head++
		// Compact the backing slice occasionally so the queue does
		// not grow without bound.
		if s.head > s.cap {
			s.queue = append(s.queue[:0], s.queue[s.head:]...)
			s.head = 0
		}
	}
	s.set[id] = struct{}{}
	s.queue = append(s.queue, id)
	return true
}

// Len returns the number of ids currently remembered.
func (s *SeenSet) Len() int { return len(s.set) }

// Cap returns the configured window capacity.
func (s *SeenSet) Cap() int { return s.cap }
