package scale

import (
	"testing"

	"damulticast/internal/topic"
)

func TestTableInternFirstSightOrder(t *testing.T) {
	tab := NewTable[topic.Topic]()
	if got := tab.Intern("/a"); got != 0 {
		t.Fatalf("first intern id = %d, want 0", got)
	}
	if got := tab.Intern("/b"); got != 1 {
		t.Fatalf("second intern id = %d, want 1", got)
	}
	if got := tab.Intern("/a"); got != 0 {
		t.Fatalf("re-intern id = %d, want 0", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestTableLookupAndName(t *testing.T) {
	tab := NewTable[topic.Topic]()
	tab.Intern("/sport")
	tab.Intern("/sport/soccer")

	id, ok := tab.Lookup("/sport/soccer")
	if !ok || id != 1 {
		t.Fatalf("Lookup(/sport/soccer) = %d, %v; want 1, true", id, ok)
	}
	if _, ok := tab.Lookup("/news"); ok {
		t.Fatal("Lookup of uninterned key reported found")
	}
	if got := tab.Name(0); got != "/sport" {
		t.Fatalf("Name(0) = %q, want /sport", got)
	}
	if got := tab.Name(1); got != "/sport/soccer" {
		t.Fatalf("Name(1) = %q, want /sport/soccer", got)
	}
}
