package scale

// Hash-keyed randomness for the scale kernel. At a million processes a
// per-process *rand.Rand (the internal/sim idiom) costs a pointer, an
// allocation and ~5KB of generator state each — more than the entire
// per-process budget here. Instead every decision sequence is a
// splitmix64 stream keyed by a pure hash of (seed, role, event, round,
// process): stateless across rounds, allocation-free, identical on any
// shard interleaving, and safe from any goroutine. This is the same
// move simnet made for pair-failure coins (xrand.HashCoin), applied to
// all kernel randomness.

// Stream tags keep the view-building, supertopic, publisher-choice and
// per-round forwarding streams statistically independent.
const (
	tagView uint64 = iota + 1
	tagSuper
	tagPub
	tagRound
)

// mixFinal is the splitmix64 finalizer — the same avalanche
// xrand.SeedFor and core's bloom hashing use.
func mixFinal(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// mix2 hashes (seed, tag, a) into a stream key.
func mix2(seed, tag, a uint64) uint64 {
	h := mixFinal(seed + 0x9e3779b97f4a7c15*tag)
	return mixFinal(h + 0x9e3779b97f4a7c15*a)
}

// mix3 hashes (seed, tag, a, b) into a stream key.
func mix3(seed, tag, a, b uint64) uint64 {
	return mixFinal(mix2(seed, tag, a) + 0x9e3779b97f4a7c15*b)
}

// sm64 is a splitmix64 stream: advance the counter by the golden-gamma,
// finalize for output. Period 2^64, passes BigCrush, two arithmetic ops
// plus the finalizer per draw.
type sm64 uint64

// next returns the next 64 uniform bits.
func (s *sm64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	return mixFinal(uint64(*s))
}

// intn returns a uniform draw from [0, n). The modulo bias is below
// n/2^64 — unobservable for any group size — and keeps the draw a
// single multiply-free operation.
func (s *sm64) intn(n uint32) uint32 {
	return uint32(s.next() % uint64(n))
}

// float returns a uniform draw from [0, 1) with 53 random bits.
func (s *sm64) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}
