// Package scale is the million-process simulation backend: a
// struct-of-arrays process-state store and a sharded epidemic round
// kernel that together make a 1e6-process figure sweep finish on one
// machine within a small, published memory-per-process budget.
//
// The ordinary simulation stack (internal/sim on internal/simnet over
// internal/core) carries a full protocol engine per process — maps for
// the seen window, per-process metric counters, string ids everywhere —
// which is exactly right for protocol fidelity at 1k-50k processes and
// exactly wrong at a million: the per-process maps and slice headers
// dominate memory long before the interesting scale. This package keeps
// the paper's dissemination model (Fig. 7: forward on first receipt to
// ln(S)+c random group members, self-elect with pSel = g/S and push to
// each supertopic-table entry with pA = a/z, under per-message Bernoulli
// loss) but flattens all process state:
//
//   - process identity is a dense uint32 index; names exist only at the
//     boundary, via the interning Table;
//   - membership views and supertopic tables are two flat uint32 arrays
//     indexed by (group base + member offset × stride);
//   - the seen window, the in-flight round and the next round are three
//     N-bit bitsets;
//   - metrics stream through a Sink into metrics.Registry every round
//     instead of accumulating per process.
//
// Determinism contract (same as internal/simnet): every random decision
// is a pure hash of (seed, event, round, process), per-round cross-shard
// effects commute (bitset OR, counter sums), and shard slabs are
// word-aligned so no two workers touch the same word. Results are
// therefore byte-identical for every Workers value.
package scale

// Table interns strings of type K as dense uint32 ids, so hot-path
// state costs 4 bytes per reference instead of a 16-byte string header
// plus the bytes themselves. Interning is append-only: ids are assigned
// in first-sight order, which makes them deterministic whenever the
// intern order is.
//
// The zero value is unusable; use NewTable. Not goroutine-safe: intern
// everything during setup, then share the table read-only.
type Table[K ~string] struct {
	index map[K]uint32
	names []K
}

// NewTable returns an empty interning table.
func NewTable[K ~string]() *Table[K] {
	return &Table[K]{index: make(map[K]uint32)}
}

// Intern returns k's dense id, assigning the next free one on first
// sight.
func (t *Table[K]) Intern(k K) uint32 {
	if id, ok := t.index[k]; ok {
		return id
	}
	id := uint32(len(t.names))
	t.index[k] = id
	t.names = append(t.names, k)
	return id
}

// Lookup returns k's id without interning it.
func (t *Table[K]) Lookup(k K) (uint32, bool) {
	id, ok := t.index[k]
	return id, ok
}

// Name returns the string interned as id. It panics for ids the table
// never issued, like any out-of-range index.
func (t *Table[K]) Name(id uint32) K { return t.names[id] }

// Len returns the number of interned strings.
func (t *Table[K]) Len() int { return len(t.names) }
