package scale

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"damulticast/internal/core"
	"damulticast/internal/metrics"
	"damulticast/internal/topic"
)

// testConfig builds a three-level 1:10:100 topology totalling n
// processes, matching the scale figure's shape.
func testConfig(n int, workers int) Config {
	chain, err := topic.Chain(2, "t")
	if err != nil {
		panic(err)
	}
	n0 := n / 111
	if n0 < 2 {
		n0 = 2
	}
	n1 := n * 10 / 111
	if n1 < 4 {
		n1 = 4
	}
	n2 := n - n0 - n1
	if n2 < 4 {
		n2 = 4
	}
	return Config{
		Groups: []GroupSpec{
			{Topic: topic.Root, Size: n0},
			{Topic: chain[0], Size: n1},
			{Topic: chain[1], Size: n2},
		},
		Params:       core.DefaultParams(),
		PSucc:        0.85,
		PublishTopic: chain[1],
		Publications: 2,
		MaxRounds:    200,
		Seed:         42,
		Workers:      workers,
	}
}

func TestConfigValidate(t *testing.T) {
	ok := testConfig(500, 1)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"no groups", func(c *Config) { c.Groups = nil }, ErrNoGroups},
		{"zero size", func(c *Config) { c.Groups[0].Size = 0 }, ErrBadSize},
		{"dup topic", func(c *Config) { c.Groups[1].Topic = c.Groups[0].Topic }, ErrDupTopic},
		{"no publisher", func(c *Config) { c.PublishTopic = "/nowhere" }, ErrNoPublisher},
		{"bad psucc", func(c *Config) { c.PSucc = 0 }, ErrBadPSucc},
		{"psucc above one", func(c *Config) { c.PSucc = 1.5 }, ErrBadPSucc},
	}
	for _, tc := range cases {
		c := testConfig(500, 1)
		tc.mutate(&c)
		if err := c.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestStoreTablesDistinctAndInRange(t *testing.T) {
	cfg := testConfig(1000, 1)
	st, err := NewStore(cfg.Groups, cfg.Params, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for pi := uint32(0); pi < uint32(st.Len()); pi++ {
		gi := st.groupOf(pi)
		g := &st.groups[gi]
		view := st.View(pi)
		seen := map[uint32]bool{}
		for _, v := range view {
			if v == pi {
				t.Fatalf("proc %d: view contains self", pi)
			}
			if v < g.start || v >= g.start+g.size {
				t.Fatalf("proc %d: view entry %d outside group [%d,%d)", pi, v, g.start, g.start+g.size)
			}
			if seen[v] {
				t.Fatalf("proc %d: duplicate view entry %d", pi, v)
			}
			seen[v] = true
		}
		if tab := st.SuperTable(pi); tab != nil {
			sg := &st.groups[g.super]
			seen = map[uint32]bool{}
			for _, v := range tab {
				if v < sg.start || v >= sg.start+sg.size {
					t.Fatalf("proc %d: super entry %d outside supergroup", pi, v)
				}
				if seen[v] {
					t.Fatalf("proc %d: duplicate super entry %d", pi, v)
				}
				seen[v] = true
			}
		}
	}
}

func TestStorePopulateWorkerInvariance(t *testing.T) {
	cfg := testConfig(2000, 1)
	base, err := NewStore(cfg.Groups, cfg.Params, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		st, err := NewStore(cfg.Groups, cfg.Params, 11, w)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.view, st.view) || !reflect.DeepEqual(base.super, st.super) {
			t.Fatalf("store arrays differ between 1 and %d populate workers", w)
		}
	}
}

func TestProcName(t *testing.T) {
	cfg := testConfig(500, 1)
	st, err := NewStore(cfg.Groups, cfg.Params, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	g1 := &st.groups[1]
	got := st.ProcName(g1.start + 3)
	want := string(st.GroupTopic(1)) + "#3"
	if string(got) != want {
		t.Fatalf("ProcName = %q, want %q", got, want)
	}
}

// TestWorkerCountInvariance is the kernel's core determinism contract:
// identical results — reliability, every metrics row, round count, and
// the self-accounted StateBytes — for any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	run := func(workers int) (*Result, string) {
		k, err := New(testConfig(3000, workers))
		if err != nil {
			t.Fatal(err)
		}
		res, err := k.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, k.Registry().CSV()
	}
	base, baseCSV := run(1)
	for _, w := range []int{2, 4, 8} {
		res, csv := run(w)
		if !reflect.DeepEqual(base, res) {
			t.Fatalf("results differ between 1 and %d workers:\n%+v\nvs\n%+v", w, base, res)
		}
		if baseCSV != csv {
			t.Fatalf("metrics CSV differs between 1 and %d workers", w)
		}
	}
}

func TestRepeatRunDeterminism(t *testing.T) {
	a, err := Run(testConfig(2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testConfig(2000, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated runs differ:\n%+v\nvs\n%+v", a, b)
	}
}

// TestLosslessPublishGroupReliability pins the gossip mechanics: with a
// lossless channel and the paper's fanout, the publish group must be
// fully covered well within MaxRounds.
func TestLosslessPublishGroupReliability(t *testing.T) {
	cfg := testConfig(1000, 2)
	cfg.PSucc = 1.0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.Reliability[cfg.PublishTopic]; rel != 1.0 {
		t.Fatalf("lossless publish-group reliability = %v, want 1.0", rel)
	}
	if res.Rounds == 0 || res.TotalEvents == 0 {
		t.Fatalf("degenerate run: rounds=%d events=%d", res.Rounds, res.TotalEvents)
	}
}

// TestDeliveredExcludesPublisher checks the sim-compatible accounting:
// the delivered counter counts first-time receipts only, so with one
// publication it equals total processes reached minus the publisher.
func TestDeliveredExcludesPublisher(t *testing.T) {
	cfg := testConfig(1000, 1)
	cfg.Publications = 1
	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	reached := popcountRange(k.has, 0, uint32(k.store.Len()))
	if got := res.KindTotals[metrics.Delivered.String()]; got != int64(reached-1) {
		t.Fatalf("delivered = %d, want reached-1 = %d", got, reached-1)
	}
}

// TestReliabilityCountsPublisher: reliability derives from the has
// bitset, which includes the publisher — matching sim, where the
// publisher is trivially reached.
func TestReliabilityCountsPublisher(t *testing.T) {
	cfg := testConfig(300, 1)
	cfg.PSucc = 1.0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tp, rel := range res.Reliability {
		if rel < 0 || rel > 1 {
			t.Fatalf("reliability[%s] = %v out of [0,1]", tp, rel)
		}
	}
	if res.Reliability[cfg.PublishTopic] <= 0 {
		t.Fatal("publish group reliability must be positive (publisher reached)")
	}
}

func TestSinkFlushRound(t *testing.T) {
	cfg := testConfig(400, 1)
	st, err := NewStore(cfg.Groups, cfg.Params, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewSink(st, 2)
	sink.shard(0).intra[2] = 5
	sink.shard(1).intra[2] = 7
	sink.shard(0).inter[2] = 2
	sink.shard(1).delivered[2] = 9
	sink.shard(0).dropped[1] = 1

	reg := metrics.NewRegistry()
	sink.FlushRound(reg)

	t2 := st.GroupTopic(2)
	if got := reg.Get(metrics.Key{Kind: metrics.IntraGroup, Topic: t2}); got != 12 {
		t.Fatalf("intra = %d, want 12", got)
	}
	if got := reg.Get(metrics.Key{Kind: metrics.InterGroup, Topic: t2, Dest: st.GroupTopic(int(st.groups[2].super))}); got != 2 {
		t.Fatalf("inter = %d, want 2", got)
	}
	if got := reg.Get(metrics.Key{Kind: metrics.Delivered, Topic: t2}); got != 9 {
		t.Fatalf("delivered = %d, want 9", got)
	}
	if got := reg.Get(metrics.Key{Kind: metrics.Dropped, Topic: st.GroupTopic(1)}); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	for sh := 0; sh < 2; sh++ {
		for gi := 0; gi < st.Groups(); gi++ {
			b := sink.shard(sh)
			if b.intra[gi]|b.inter[gi]|b.delivered[gi]|b.dropped[gi] != 0 {
				t.Fatalf("shard %d group %d not zeroed after flush", sh, gi)
			}
		}
	}
	// A second flush of zeroed shards must not move the registry.
	before := reg.CSV()
	sink.FlushRound(reg)
	if reg.CSV() != before {
		t.Fatal("flush of zeroed shards changed the registry")
	}
}

func TestPopcountRange(t *testing.T) {
	bs := make([]uint64, 4)
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 200, 255} {
		bs[i/64] |= 1 << (i % 64)
	}
	cases := []struct {
		from, to uint32
		want     int
	}{
		{0, 256, 9},
		{0, 1, 1},
		{1, 63, 1},
		{63, 65, 2},
		{64, 128, 3},
		{128, 128, 0},
		{129, 200, 0},
		{200, 256, 2},
	}
	for _, tc := range cases {
		if got := popcountRange(bs, tc.from, tc.to); got != tc.want {
			t.Errorf("popcountRange(%d,%d) = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestStateBytesScalesLinearly(t *testing.T) {
	small, err := New(testConfig(10000, 1))
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(testConfig(100000, 1))
	if err != nil {
		t.Fatal(err)
	}
	perSmall := float64(small.StateBytes()) / 10000
	perBig := float64(big.StateBytes()) / 100000
	if perBig > float64(BudgetBytesPerProcess) {
		t.Fatalf("state bytes per process %v exceeds budget %d", perBig, BudgetBytesPerProcess)
	}
	// Per-process cost grows only with ln(group size): the 10x jump may
	// add a few view slots but nothing near linear growth.
	if perBig > 2*perSmall {
		t.Fatalf("state not near-linear: %v B/proc at 10k vs %v at 100k", perSmall, perBig)
	}
	if math.IsNaN(perBig) || perBig <= 0 {
		t.Fatalf("implausible per-process bytes %v", perBig)
	}
}
