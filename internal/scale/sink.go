package scale

import (
	"damulticast/internal/metrics"
	"damulticast/internal/topic"
)

// Sink streams the kernel's per-round counts into a metrics.Registry.
// The full simulation stack retains counters per process and harvests
// them at collection time; at a million processes that retention is
// exactly the memory the scale kernel exists to avoid. Instead each
// worker shard accumulates four flat per-group counters (intra sends,
// inter sends, first-time deliveries, channel drops) during the round
// phase — contention-free, since a shard only touches its own arrays —
// and FlushRound folds them into the shared registry at the serial
// round boundary, zeroing them for the next round. Registry totals are
// sums of per-round sums, so the streamed result equals the retained
// one while the sink's footprint stays O(workers × groups).
type Sink struct {
	topics  []topic.Topic // group index -> topic
	superOf []topic.Topic // group index -> supergroup topic ("" at the root)
	shards  []sinkShard
}

// sinkShard is one worker's counter block. The trailing pad keeps
// neighboring shards' hot counters off a shared cache line.
type sinkShard struct {
	intra, inter, delivered, dropped []int64
	_                                [64]byte
}

// NewSink sizes a sink for the store's groups and the given worker
// count (minimum 1).
func NewSink(st *Store, workers int) *Sink {
	if workers < 1 {
		workers = 1
	}
	ng := st.Groups()
	s := &Sink{
		topics:  make([]topic.Topic, ng),
		superOf: make([]topic.Topic, ng),
		shards:  make([]sinkShard, workers),
	}
	for gi := 0; gi < ng; gi++ {
		s.topics[gi] = st.GroupTopic(gi)
		if sg := st.groups[gi].super; sg >= 0 {
			s.superOf[gi] = st.GroupTopic(int(sg))
		}
	}
	for i := range s.shards {
		s.shards[i].intra = make([]int64, ng)
		s.shards[i].inter = make([]int64, ng)
		s.shards[i].delivered = make([]int64, ng)
		s.shards[i].dropped = make([]int64, ng)
	}
	return s
}

// Shard returns worker sh's private counter block accessors. The
// returned slices are indexed by group.
func (s *Sink) shard(sh int) *sinkShard { return &s.shards[sh] }

// FlushRound folds every shard's counters into reg and zeroes them.
// Called serially at the round boundary; the fold order (groups
// ascending, kinds fixed) is canonical, and registry totals are
// order-independent sums anyway.
func (s *Sink) FlushRound(reg *metrics.Registry) {
	for gi, t := range s.topics {
		var intra, inter, delivered, dropped int64
		for sh := range s.shards {
			b := &s.shards[sh]
			intra += b.intra[gi]
			inter += b.inter[gi]
			delivered += b.delivered[gi]
			dropped += b.dropped[gi]
			b.intra[gi], b.inter[gi], b.delivered[gi], b.dropped[gi] = 0, 0, 0, 0
		}
		if intra > 0 {
			reg.AddIntra(t, intra)
		}
		if inter > 0 {
			reg.AddInter(t, s.superOf[gi], inter)
		}
		if delivered > 0 {
			reg.AddDelivered(t, delivered)
		}
		if dropped > 0 {
			reg.AddDropped(t, dropped)
		}
	}
}
