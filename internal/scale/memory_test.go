package scale

import (
	"runtime"
	"testing"
)

// TestMemoryPerProcessBudget is the memory regression gate for the
// scale backend (ROADMAP item 1): building a 100k-process kernel must
// allocate under BudgetBytesPerProcess per process as measured by the
// runtime, not just by the kernel's own accounting. ReadMemStats deltas
// are inherently noisy (allocator rounding, GC timing), which is why
// the budget carries ~2x headroom over the accounted footprint and why
// this measurement never feeds a figure CSV — it gates, it does not
// report.
func TestMemoryPerProcessBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-process allocation test skipped in -short mode")
	}
	const n = 100_000
	cfg := testConfig(n, 1)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	k, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(k)

	delta := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	perProc := float64(delta) / n
	t.Logf("heap delta %d B for %d processes = %.1f B/process (budget %d)",
		delta, n, perProc, BudgetBytesPerProcess)
	if perProc > BudgetBytesPerProcess {
		t.Fatalf("measured %.1f B/process exceeds budget %d", perProc, BudgetBytesPerProcess)
	}
	// Cross-check the self-accounting: the runtime should never report
	// dramatically less than what the kernel claims to hold live.
	if acc := k.StateBytes(); delta > 0 && float64(delta) < 0.5*float64(acc) {
		t.Fatalf("heap delta %d B implausibly below accounted state %d B", delta, acc)
	}
}
