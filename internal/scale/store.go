package scale

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"unsafe"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// group is the per-group slice of the struct-of-arrays layout. Group
// members occupy the contiguous process-index range [start, start+size);
// member m's membership view is view[viewBase+m*viewStride :
// viewBase+(m+1)*viewStride] and its supertopic table the analogous
// super span. All strides are per group — tiny groups get tiny views —
// so the arrays waste nothing on the paper's skewed 1:10:100 sizing.
type group struct {
	topicID     uint32 // interned topic id (== group index; kept explicit)
	start, size uint32
	viewStride  uint32 // membership-view entries per member, min(size-1, (B+1)·ln S)
	superStride uint32 // supertopic-table entries per member, min(Z, supergroup size)
	fanout      uint32 // gossip fanout min(viewStride, ln S + C)
	super       int32  // supergroup's group index, or -1 for the root
	viewBase    uint64 // offset of this group's views in Store.view
	superBase   uint64 // offset of this group's tables in Store.super
	pSel, pA    float64
}

// Store is the struct-of-arrays process state: every per-process map
// and slice of the full engine collapsed into two flat uint32 arrays
// plus per-group metadata. Building it is the only place randomness
// touches membership; afterwards the store is immutable and shared
// read-only by all kernel shards.
type Store struct {
	topics    *Table[topic.Topic]
	groups    []group
	view      []uint32 // all membership views, group-major then member-major
	super     []uint32 // all supertopic tables, same layout
	n         uint32   // total processes
	maxStride uint32   // largest viewStride (shard scratch sizing)
}

// maxViewStride bounds a single view so the kernel's per-shard
// Fisher-Yates scratch can index entries with uint16. (B+1)·ln(S) stays
// under 100 for any population that fits in memory; the bound exists to
// make the invariant explicit, not because it is ever near.
const maxViewStride = 1 << 16

// NewStore lays out and populates the state for the given groups under
// the paper's parameters. Views are filled with distinct random group
// mates and supertopic tables with distinct random members of the
// nearest configured supergroup (deepest topic strictly including the
// group's), exactly like sim.NewRunner's static table initialization.
// Population is sharded across workers (0 = serial); every member's
// tables derive from a pure hash of (seed, member index), so the result
// is identical for any worker count.
func NewStore(specs []GroupSpec, params core.Params, seed int64, workers int) (*Store, error) {
	s := &Store{topics: NewTable[topic.Topic]()}
	var viewLen, superLen uint64
	n := uint64(0)
	for _, g := range specs {
		n += uint64(g.Size)
	}
	if n >= math.MaxUint32 {
		return nil, fmt.Errorf("scale: %d processes exceed the uint32 index space", n)
	}

	// Pass 1: metadata and offsets. Supergroup resolution needs all
	// groups known, so strides involving it are fixed in pass 2.
	start := uint32(0)
	for _, spec := range specs {
		size := uint32(spec.Size)
		stride := uint32(0)
		if size > 1 {
			stride = uint32(xrand.ViewSize(int(size), params.B))
			if stride > size-1 {
				stride = size - 1
			}
		}
		if stride >= maxViewStride {
			return nil, fmt.Errorf("scale: view stride %d for %s exceeds %d", stride, spec.Topic, maxViewStride)
		}
		fanout := uint32(xrand.Fanout(int(size), params.C))
		if fanout > stride {
			fanout = stride
		}
		g := group{
			topicID:    s.topics.Intern(spec.Topic),
			start:      start,
			size:       size,
			viewStride: stride,
			fanout:     fanout,
			super:      -1,
			viewBase:   viewLen,
			pSel:       xrand.PSel(params.G, int(size)),
		}
		viewLen += uint64(size) * uint64(stride)
		if stride > s.maxStride {
			s.maxStride = stride
		}
		s.groups = append(s.groups, g)
		start += size
	}
	s.n = start

	// Pass 2: supergroup links and supertopic-table strides.
	for gi := range s.groups {
		g := &s.groups[gi]
		if sg := s.nearestSupergroup(gi); sg >= 0 {
			g.super = int32(sg)
			stride := uint32(params.Z)
			if ssize := s.groups[sg].size; stride > ssize {
				stride = ssize
			}
			g.superStride = stride
			g.superBase = superLen
			g.pA = xrand.PA(params.A, int(stride))
			superLen += uint64(g.size) * uint64(stride)
		}
	}

	s.view = make([]uint32, viewLen)
	s.super = make([]uint32, superLen)
	s.populate(seed, workers)
	return s, nil
}

// nearestSupergroup returns the index of the deepest group whose topic
// strictly includes group gi's, ties broken to the lexicographically
// smallest topic — the same rule sim.Runner.nearestSupergroup applies.
func (s *Store) nearestSupergroup(gi int) int {
	t := s.topics.Name(s.groups[gi].topicID)
	cands := make([]int, 0, len(s.groups))
	for i := range s.groups {
		if s.topics.Name(s.groups[i].topicID).StrictlyIncludes(t) {
			cands = append(cands, i)
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		return s.topics.Name(s.groups[cands[a]].topicID) < s.topics.Name(s.groups[cands[b]].topicID)
	})
	best := -1
	for _, i := range cands {
		if best < 0 || s.topics.Name(s.groups[i].topicID).Depth() > s.topics.Name(s.groups[best].topicID).Depth() {
			best = i
		}
	}
	return best
}

// populate fills every member's view and supertopic table, sharded
// across workers by contiguous process-index blocks. Each member's
// entries depend only on (seed, member index), never on the block
// boundaries, so any worker count produces identical arrays.
func (s *Store) populate(seed int64, workers int) {
	n := int(s.n)
	p := workers
	if p <= 0 {
		p = 1
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	block := (n + p - 1) / p
	fill := func(lo, hi int) {
		gi := s.groupOf(uint32(lo))
		for i := lo; i < hi; i++ {
			pi := uint32(i)
			for pi >= s.groups[gi].start+s.groups[gi].size {
				gi++
			}
			g := &s.groups[gi]
			m := uint64(pi - g.start)
			if g.viewStride > 0 {
				rng := sm64(mix2(uint64(seed), tagView, uint64(pi)))
				fillDistinct(&rng, s.view[g.viewBase+m*uint64(g.viewStride):][:g.viewStride],
					g.start, g.size, pi)
			}
			if g.superStride > 0 {
				sg := &s.groups[g.super]
				rng := sm64(mix2(uint64(seed), tagSuper, uint64(pi)))
				fillDistinct(&rng, s.super[g.superBase+m*uint64(g.superStride):][:g.superStride],
					sg.start, sg.size, pi)
			}
		}
	}
	if p == 1 {
		fill(0, n)
		return
	}
	var wg sync.WaitGroup
	for sh := 0; sh < p; sh++ {
		lo := sh * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fill(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// fillDistinct fills dst with distinct members of [start, start+size),
// never self. Rejection sampling handles the common sparse case (stride
// much smaller than the group); near-full tables — tiny groups where
// the stride approaches size-1 — fall back to a deterministic linear
// scan for the slot instead of rejection-looping toward coupon-collector
// cost. Callers guarantee a free candidate exists (stride ≤ size-1 for
// views, stride ≤ size for tables whose self lies outside the range).
func fillDistinct(rng *sm64, dst []uint32, start, size, self uint32) {
	for j := range dst {
		dst[j] = self // sentinel: self is never a valid entry
		for tries := 0; tries < 64; tries++ {
			c := start + rng.intn(size)
			if c == self || contains(dst, c, j) {
				continue
			}
			dst[j] = c
			break
		}
		if dst[j] == self {
			// Rejection exhausted: take the first unused candidate
			// scanning from a random offset, still per-member
			// deterministic.
			off := rng.intn(size)
			for k := uint32(0); k < size; k++ {
				c := start + (off+k)%size
				if c != self && !contains(dst, c, j) {
					dst[j] = c
					break
				}
			}
		}
	}
}

// contains reports whether dst[:limit] already holds c.
func contains(dst []uint32, c uint32, limit int) bool {
	for _, prev := range dst[:limit] {
		if prev == c {
			return true
		}
	}
	return false
}

// groupOf returns the index of the group containing process pi (binary
// search over the contiguous group spans).
func (s *Store) groupOf(pi uint32) int {
	lo, hi := 0, len(s.groups)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.groups[mid].start <= pi {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// Len returns the total process count.
func (s *Store) Len() int { return int(s.n) }

// Groups returns the number of groups.
func (s *Store) Groups() int { return len(s.groups) }

// GroupTopic returns group gi's topic.
func (s *Store) GroupTopic(gi int) topic.Topic { return s.topics.Name(s.groups[gi].topicID) }

// ProcName renders process pi's boundary identity in the simulator's
// canonical "<topic>#<member>" form. Only tests and debug output pay
// for the string; the kernel itself never materializes names.
func (s *Store) ProcName(pi uint32) ids.ProcessID {
	gi := s.groupOf(pi)
	g := &s.groups[gi]
	return ids.Indexed(string(s.topics.Name(g.topicID)), int(pi-g.start))
}

// View returns process pi's membership view (aliasing the store; do not
// mutate). For tests and introspection.
func (s *Store) View(pi uint32) []uint32 {
	gi := s.groupOf(pi)
	g := &s.groups[gi]
	if g.viewStride == 0 {
		return nil
	}
	m := uint64(pi - g.start)
	return s.view[g.viewBase+m*uint64(g.viewStride):][:g.viewStride]
}

// SuperTable returns process pi's supertopic table (aliasing the store;
// do not mutate). For tests and introspection.
func (s *Store) SuperTable(pi uint32) []uint32 {
	gi := s.groupOf(pi)
	g := &s.groups[gi]
	if g.superStride == 0 {
		return nil
	}
	m := uint64(pi - g.start)
	return s.super[g.superBase+m*uint64(g.superStride):][:g.superStride]
}

// AccountedBytes is the store's self-accounted footprint: the two flat
// arrays plus per-group metadata. Deliberately a pure function of the
// topology (never of worker counts or allocator behavior) so figure
// series built from it are byte-reproducible.
func (s *Store) AccountedBytes() int64 {
	return int64(len(s.view))*4 + int64(len(s.super))*4 +
		int64(len(s.groups))*int64(unsafe.Sizeof(group{}))
}
