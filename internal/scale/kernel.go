package scale

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"damulticast/internal/core"
	"damulticast/internal/metrics"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// GroupSpec declares one topic group and its population, mirroring
// sim.GroupSpec.
type GroupSpec struct {
	Topic topic.Topic
	Size  int
}

// Config parameterizes one scale-kernel run. The knobs mirror
// sim.Config where the models overlap; the scale kernel supports
// channel loss (PSucc) but not the static failure models — its job is
// the memory/complexity scaling curve, not the failure figures.
type Config struct {
	// Groups lists every group; members are laid out contiguously in
	// declaration order.
	Groups []GroupSpec
	// Params are the paper's protocol constants (B, C, G, A, Z used).
	Params core.Params
	// PSucc is the per-message channel success probability (1 = lossless).
	PSucc float64
	// PublishTopic is the topic events are published on.
	PublishTopic topic.Topic
	// Publications is how many independent events are published
	// (sequentially; metrics sum, reliability averages). Default 1.
	Publications int
	// MaxRounds bounds each publication's dissemination. Default 200.
	MaxRounds int
	// Seed drives all randomness.
	Seed int64
	// Workers is the shard count: 0 = GOMAXPROCS, 1 = sequential.
	// Results are byte-identical for every value.
	Workers int
}

// BudgetBytesPerProcess is the published memory budget for the scale
// kernel: the self-accounted state (views, supertopic tables, group
// metadata, round bitsets) stays under this per process at every figure
// point up to a million processes. The measured footprint at 1e6 in the
// paper topology is ~240 B/process (a ~55-entry uint32 view, a 3-entry
// table, and 3 bits of round state); the budget leaves ~2x headroom for
// allocator overhead and larger view strides. The memory regression
// test enforces the budget against runtime.ReadMemStats.
const BudgetBytesPerProcess = 512

// Validation errors.
var (
	ErrNoGroups    = errors.New("scale: no groups configured")
	ErrBadSize     = errors.New("scale: group size must be >= 1")
	ErrBadPSucc    = errors.New("scale: PSucc must be in (0, 1]")
	ErrNoPublisher = errors.New("scale: PublishTopic has no group")
	ErrDupTopic    = errors.New("scale: duplicate group topic")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Groups) == 0 {
		return ErrNoGroups
	}
	seen := map[topic.Topic]bool{}
	foundPub := false
	for _, g := range c.Groups {
		if g.Size < 1 {
			return fmt.Errorf("%w: %s has %d", ErrBadSize, g.Topic, g.Size)
		}
		if !g.Topic.Valid() {
			return fmt.Errorf("scale: invalid group topic %q", string(g.Topic))
		}
		if seen[g.Topic] {
			return fmt.Errorf("%w: %s", ErrDupTopic, g.Topic)
		}
		seen[g.Topic] = true
		if g.Topic == c.PublishTopic {
			foundPub = true
		}
	}
	if !foundPub {
		return fmt.Errorf("%w: %s", ErrNoPublisher, c.PublishTopic)
	}
	if c.PSucc <= 0 || c.PSucc > 1 {
		return fmt.Errorf("%w: %g", ErrBadPSucc, c.PSucc)
	}
	return c.Params.Validate()
}

// Result aggregates one run's measurements, shaped like the sim.Result
// fields the figures consume.
type Result struct {
	// Reliability maps each group to the average fraction of its
	// members reached per publication (publisher counted as trivially
	// reached, like sim).
	Reliability map[topic.Topic]float64
	// TotalEvents is the total number of event messages sent.
	TotalEvents int64
	// KindTotals sums every metrics counter by kind name.
	KindTotals map[string]int64
	// Rounds is the total number of dissemination rounds executed
	// across publications.
	Rounds int
	// StateBytes is the kernel's self-accounted per-run state: the
	// struct-of-arrays store plus the three round bitsets. A pure
	// function of the topology — never of Workers or the allocator — so
	// figure series derived from it are byte-reproducible.
	StateBytes int64
}

// BytesPerProcess is StateBytes amortized over the population.
func (r *Result) BytesPerProcess(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(r.StateBytes) / float64(n)
}

// kernelShard is one worker's private round scratch. landed counts
// sends the channel did not drop (the quiescence signal). The pad
// keeps shard counters off shared cache lines.
type kernelShard struct {
	scratch []uint16 // partial Fisher-Yates space, maxStride entries
	landed  int64
	_       [64]byte
}

// Kernel is the sharded million-process round engine. State per
// process: 4·viewStride bytes of view, 4·superStride bytes of
// supertopic table, and 3 bits across the round bitsets. Everything
// else is per-group or per-worker.
type Kernel struct {
	cfg   Config
	store *Store
	sink  *Sink
	reg   *metrics.Registry

	// has marks processes that delivered the current event; inbox holds
	// arrivals for the round being processed; next collects sends for
	// the round after (written with atomic OR — commutative, so shard
	// interleaving cannot change the result).
	has, inbox, next []uint64

	shards     []kernelShard
	p          int // effective worker count
	blockWords int // bitset words per shard slab (word-aligned ownership)

	seedPub, seedRound int64
}

// New validates cfg and builds the kernel: the struct-of-arrays store,
// the metrics sink, and the word-aligned shard slabs.
func New(cfg Config) (*Kernel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	st, err := NewStore(cfg.Groups, cfg.Params, xrand.SeedFor(cfg.Seed, "scale:store"), p)
	if err != nil {
		return nil, err
	}
	n := st.Len()
	words := (n + 63) / 64
	if p > words {
		p = words
	}
	if p < 1 {
		p = 1
	}
	k := &Kernel{
		cfg:       cfg,
		store:     st,
		sink:      NewSink(st, p),
		reg:       metrics.NewRegistry(),
		has:       make([]uint64, words),
		inbox:     make([]uint64, words),
		next:      make([]uint64, words),
		shards:    make([]kernelShard, p),
		p:         p,
		seedPub:   xrand.SeedFor(cfg.Seed, "scale:pub"),
		seedRound: xrand.SeedFor(cfg.Seed, "scale:round"),
	}
	// Word-aligned slabs: each worker owns a contiguous range of bitset
	// words (hence of processes), so has-bitset writes never share a
	// word across shards and each worker walks a contiguous slice of
	// the state arrays — the same NUMA-friendly ownership simnet's
	// shards use.
	k.blockWords = (words + p - 1) / p
	for i := range k.shards {
		k.shards[i].scratch = make([]uint16, st.maxStride)
	}
	return k, nil
}

// Store exposes the kernel's state store (for tests and accounting).
func (k *Kernel) Store() *Store { return k.store }

// Registry exposes the kernel's metrics registry.
func (k *Kernel) Registry() *metrics.Registry { return k.reg }

// StateBytes self-accounts the run state: store arrays plus the three
// round bitsets. Per-worker scratch (O(workers·stride)) and sink
// counters (O(workers·groups)) are deliberately excluded — they depend
// on Workers, and the published budget is per-process state.
func (k *Kernel) StateBytes() int64 {
	return k.store.AccountedBytes() + int64(3*len(k.has))*8
}

// Run executes the configured publications and aggregates the result.
func Run(cfg Config) (*Result, error) {
	k, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return k.Run()
}

// Run drives every publication to quiescence (or MaxRounds) and
// collects the result. Metrics stream into the registry at every round
// boundary via the sink.
func (k *Kernel) Run() (*Result, error) {
	pubs := k.cfg.Publications
	if pubs <= 0 {
		pubs = 1
	}
	maxRounds := k.cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 200
	}
	pgi, _ := k.store.topics.Lookup(k.cfg.PublishTopic)
	relSum := make([]float64, k.store.Groups())
	totalRounds := 0

	for e := 0; e < pubs; e++ {
		clear(k.has)
		clear(k.inbox)
		clear(k.next)

		// Publish: a deterministic pseudo-random member of the publish
		// group delivers trivially and disseminates into the first
		// round's inbox. Its sends land in inbox directly (serial, no
		// atomics needed) by forwarding into next and swapping.
		pg := &k.store.groups[pgi]
		pub := pg.start + sm64ValueIntn(mix2(uint64(k.seedPub), tagPub, uint64(e)), pg.size)
		setBit(k.has, pub)
		k.forward(pub, int(pgi), e, 0, &k.shards[0], k.sink.shard(0))
		k.inbox, k.next = k.next, k.inbox
		pending := k.harvestLanded()
		k.sink.FlushRound(k.reg)

		for r := 1; r <= maxRounds && pending > 0; r++ {
			k.stepRound(e, r)
			k.inbox, k.next = k.next, k.inbox
			clear(k.next)
			pending = k.harvestLanded()
			k.sink.FlushRound(k.reg)
			totalRounds++
		}

		for gi := range k.store.groups {
			g := &k.store.groups[gi]
			got := popcountRange(k.has, g.start, g.start+g.size)
			relSum[gi] += float64(got) / float64(g.size)
		}
	}

	res := &Result{
		Reliability: make(map[topic.Topic]float64, k.store.Groups()),
		KindTotals:  make(map[string]int64),
		Rounds:      totalRounds,
		StateBytes:  k.StateBytes(),
	}
	for gi := range k.store.groups {
		res.Reliability[k.store.GroupTopic(gi)] = relSum[gi] / float64(pubs)
	}
	for _, row := range k.reg.Rows() {
		res.KindTotals[row.Key.Kind.String()] += row.Value
		if row.Key.Kind == metrics.IntraGroup || row.Key.Kind == metrics.InterGroup {
			res.TotalEvents += row.Value
		}
	}
	return res, nil
}

// stepRound runs one parallel dissemination round: every shard scans
// its own slab of inbox for first-time receipts, marks them in has
// (own-slab words only — no races by layout), counts the delivery, and
// forwards into next (cross-slab, atomic OR — commutative, so the
// result is identical for any shard interleaving or count).
func (k *Kernel) stepRound(e, r int) {
	if k.p == 1 {
		k.runSlab(0, e, r)
		return
	}
	var wg sync.WaitGroup
	wg.Add(k.p)
	for s := 0; s < k.p; s++ {
		go func(s int) {
			defer wg.Done()
			k.runSlab(s, e, r)
		}(s)
	}
	wg.Wait()
}

// runSlab processes shard s's word range for round r of event e.
func (k *Kernel) runSlab(s, e, r int) {
	ks := &k.shards[s]
	ss := k.sink.shard(s)
	lo := s * k.blockWords
	hi := lo + k.blockWords
	if hi > len(k.inbox) {
		hi = len(k.inbox)
	}
	gi := -1
	for w := lo; w < hi; w++ {
		fresh := k.inbox[w] &^ k.has[w]
		if fresh == 0 {
			continue
		}
		k.has[w] |= fresh
		base := uint32(w) * 64
		for fresh != 0 {
			i := base + uint32(bits.TrailingZeros64(fresh))
			fresh &= fresh - 1
			if gi < 0 {
				gi = k.store.groupOf(i)
			}
			for i >= k.store.groups[gi].start+k.store.groups[gi].size {
				gi++
			}
			ss.delivered[gi]++
			k.forward(i, gi, e, r, ks, ss)
		}
	}
}

// forward disseminates the event from process i (paper Fig. 7): with
// probability pSel elect up toward the supergroup, pushing to each
// supertopic-table entry with probability pA; then gossip to fanout
// distinct view entries. Loss coins draw from the same per-(event,
// round, process) stream, so every decision is pure and
// order-independent. Sends OR bits into k.next — atomically, because
// targets may live in any shard's slab.
func (k *Kernel) forward(i uint32, gi, e, r int, ks *kernelShard, ss *sinkShard) {
	g := &k.store.groups[gi]
	rng := sm64(mix3(uint64(k.seedRound), tagRound, uint64(e)<<32|uint64(uint32(r)), uint64(i)))
	m := uint64(i - g.start)

	if g.superStride > 0 && rng.float() < g.pSel {
		table := k.store.super[g.superBase+m*uint64(g.superStride):][:g.superStride]
		for _, t := range table {
			if rng.float() >= g.pA {
				continue
			}
			ss.inter[gi]++
			if k.cfg.PSucc >= 1 || rng.float() < k.cfg.PSucc {
				orBit(k.next, t)
				ks.landed++
			} else {
				ss.dropped[gi]++
			}
		}
	}

	stride := g.viewStride
	if stride == 0 {
		return
	}
	view := k.store.view[g.viewBase+m*uint64(stride):][:stride]
	if g.fanout >= stride {
		// Degenerate fanout: the whole view.
		for _, t := range view {
			k.sendIntra(t, gi, &rng, ks, ss)
		}
		return
	}
	// Partial Fisher-Yates over the shard's scratch picks fanout
	// distinct view slots.
	sc := ks.scratch[:stride]
	for j := range sc {
		sc[j] = uint16(j)
	}
	for j := uint32(0); j < g.fanout; j++ {
		t := j + rng.intn(stride-j)
		sc[j], sc[t] = sc[t], sc[j]
		k.sendIntra(view[sc[j]], gi, &rng, ks, ss)
	}
}

// sendIntra counts and delivers (or drops) one intra-group send.
func (k *Kernel) sendIntra(t uint32, gi int, rng *sm64, ks *kernelShard, ss *sinkShard) {
	ss.intra[gi]++
	if k.cfg.PSucc >= 1 || rng.float() < k.cfg.PSucc {
		orBit(k.next, t)
		ks.landed++
	} else {
		ss.dropped[gi]++
	}
}

// harvestLanded sums and resets the per-shard landed counters: the
// number of sends that survived the channel this phase, i.e. next
// round's pending work.
func (k *Kernel) harvestLanded() int64 {
	var total int64
	for s := range k.shards {
		total += k.shards[s].landed
		k.shards[s].landed = 0
	}
	return total
}

// sm64ValueIntn draws one uniform [0, n) value from a fresh stream key
// (publisher selection).
func sm64ValueIntn(key uint64, n uint32) uint32 {
	s := sm64(key)
	return s.intn(n)
}

// setBit sets bit i (serial contexts).
func setBit(bs []uint64, i uint32) { bs[i/64] |= 1 << (i % 64) }

// orBit sets bit i with an atomic OR (parallel round phase; OR
// commutes, so the final bitset is independent of scheduling).
func orBit(bs []uint64, i uint32) { atomic.OrUint64(&bs[i/64], 1<<(i%64)) }

// popcountRange counts set bits in [from, to).
func popcountRange(bs []uint64, from, to uint32) int {
	if from >= to {
		return 0
	}
	fw, tw := from/64, (to-1)/64
	if fw == tw {
		mask := (^uint64(0) << (from % 64)) & (^uint64(0) >> (63 - (to-1)%64))
		return bits.OnesCount64(bs[fw] & mask)
	}
	total := bits.OnesCount64(bs[fw] &^ ((1 << (from % 64)) - 1))
	for w := fw + 1; w < tw; w++ {
		total += bits.OnesCount64(bs[w])
	}
	total += bits.OnesCount64(bs[tw] & (^uint64(0) >> (63 - (to-1)%64)))
	return total
}
