package scale

import "testing"

// BenchmarkScaleRun benchmarks a full publication sweep at the given
// population (paper topology, lossy channel), end to end: store build,
// rounds, metrics streaming, result assembly.
func benchmarkScaleRun(b *testing.B, n, workers int) {
	cfg := testConfig(n, workers)
	cfg.Publications = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleRun10k(b *testing.B)          { benchmarkScaleRun(b, 10_000, 1) }
func BenchmarkScaleRun100k(b *testing.B)         { benchmarkScaleRun(b, 100_000, 1) }
func BenchmarkScaleRun100kParallel(b *testing.B) { benchmarkScaleRun(b, 100_000, 8) }
