// Package xrand provides the small set of random primitives the
// gossip protocols need — Bernoulli trials, uniform sampling without
// replacement, shuffles — on top of a seedable *rand.Rand so that every
// simulation run is reproducible from its seed.
//
// All functions take an explicit *rand.Rand; nothing in this package
// touches the global math/rand source (avoid mutable globals).
package xrand

import (
	"math"
	"math/rand"

	"damulticast/internal/ids"
)

// Bernoulli returns true with probability p. p <= 0 always returns
// false; p >= 1 always returns true.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// SampleIDs returns min(k, len(pool)) distinct elements drawn uniformly
// without replacement from pool. The pool itself is never mutated; the
// result is a fresh slice. Order of the sample is random.
func SampleIDs(r *rand.Rand, pool []ids.ProcessID, k int) []ids.ProcessID {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	if k >= len(pool) {
		out := make([]ids.ProcessID, len(pool))
		copy(out, pool)
		Shuffle(r, out)
		return out
	}
	// Partial Fisher-Yates over a copy of indices: O(len(pool)) setup,
	// O(k) draws. For the table sizes in this system (tens of entries)
	// this is both simple and fast.
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	out := make([]ids.ProcessID, 0, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, pool[idx[i]])
	}
	return out
}

// SampleExcluding samples k distinct ids from pool, never returning
// any id in exclude. Matches the paper's Fig. 7 loop that selects
// targets from Table \ Ω.
func SampleExcluding(r *rand.Rand, pool []ids.ProcessID, k int, exclude map[ids.ProcessID]struct{}) []ids.ProcessID {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	filtered := make([]ids.ProcessID, 0, len(pool))
	for _, p := range pool {
		if _, skip := exclude[p]; !skip {
			filtered = append(filtered, p)
		}
	}
	return SampleIDs(r, filtered, k)
}

// Shuffle permutes s in place.
func Shuffle(r *rand.Rand, s []ids.ProcessID) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Pick returns one uniformly random element of pool and true, or the
// zero ProcessID and false if pool is empty.
func Pick(r *rand.Rand, pool []ids.ProcessID) (ids.ProcessID, bool) {
	if len(pool) == 0 {
		return "", false
	}
	return pool[r.Intn(len(pool))], true
}

// Fanout computes the paper's intra-group dissemination fanout
// ln(S) + c for a group of size s, rounded up, never negative, and at
// least 1 for any non-empty group (a process must be able to forward
// even in tiny groups).
func Fanout(s int, c float64) int {
	if s <= 0 {
		return 0
	}
	f := int(math.Ceil(math.Log(float64(s)) + c))
	if f < 1 {
		f = 1
	}
	return f
}

// ViewSize computes the membership-table size (b+1)·ln(S) of the
// underlying flat membership algorithm (Kermarrec-Massoulié-Ganesh,
// paper ref [10]), rounded up, with a floor of 1 for non-empty groups.
func ViewSize(s int, b float64) int {
	if s <= 0 {
		return 0
	}
	v := int(math.Ceil((b + 1) * math.Log(float64(s))))
	if v < 1 {
		v = 1
	}
	return v
}

// PSel computes the self-election probability g/S (clamped to [0,1])
// with which a process decides to forward an event to its supertopic
// table (paper §V-B).
func PSel(g float64, s int) float64 {
	if s <= 0 {
		return 0
	}
	p := g / float64(s)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// PA computes the per-superprocess send probability a/z (clamped).
func PA(a float64, z int) float64 {
	if z <= 0 {
		return 0
	}
	p := a / float64(z)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}
