// Package xrand provides the small set of random primitives the
// gossip protocols need — Bernoulli trials, uniform sampling without
// replacement, shuffles — on top of a seedable *rand.Rand so that every
// simulation run is reproducible from its seed.
//
// All functions take an explicit *rand.Rand; nothing in this package
// touches the global math/rand source (avoid mutable globals).
package xrand

import (
	"math"
	"math/rand"

	"damulticast/internal/ids"
)

// SeedFor derives a child seed from a base seed and a label by hashing
// both through FNV-1a with a splitmix64-style finalizer. Distinct
// labels yield statistically independent streams, so a simulation can
// hand every node its own *rand.Rand — the foundation of the parallel
// kernel's determinism contract: per-node streams never interleave, so
// results do not depend on execution order across worker goroutines.
func SeedFor(base int64, label string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= uint64(base) >> (8 * i) & 0xff
		h *= 1099511628211
	}
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return int64(h & 0x7fffffffffffffff)
}

// NewStream returns a fresh deterministic random stream for the given
// base seed and label (see SeedFor).
func NewStream(base int64, label string) *rand.Rand {
	return rand.New(rand.NewSource(SeedFor(base, label)))
}

// HashCoin is a pure Bernoulli trial: it returns true with probability
// p, decided solely by (seed, label) — no stream state. Repeated calls
// with the same arguments always agree, and calls are safe from any
// number of goroutines, which makes it the right coin for per-pair
// failure appearances and partition cell assignment in the parallel
// simulation kernel.
func HashCoin(seed int64, label string, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return HashUniform(seed, label) < p
}

// HashUniform maps (seed, label) to a uniform float64 in [0, 1),
// deterministically and statelessly.
func HashUniform(seed int64, label string) float64 {
	return float64(uint64(SeedFor(seed, label))>>10) / float64(1<<53)
}

// Bernoulli returns true with probability p. p <= 0 always returns
// false; p >= 1 always returns true.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// SampleIDs returns min(k, len(pool)) distinct elements drawn uniformly
// without replacement from pool. The pool itself is never mutated; the
// result is a fresh slice. Order of the sample is random.
func SampleIDs(r *rand.Rand, pool []ids.ProcessID, k int) []ids.ProcessID {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	if k >= len(pool) {
		out := make([]ids.ProcessID, len(pool))
		copy(out, pool)
		Shuffle(r, out)
		return out
	}
	if k*8 < len(pool) {
		// Sparse sample: virtual Fisher-Yates with a displacement map,
		// O(k) time and space. Building tables for simulations with
		// tens of thousands of processes calls this once per process;
		// the dense path's O(len(pool)) index copy would make setup
		// quadratic in the population.
		swapped := make(map[int]int, k)
		out := make([]ids.ProcessID, 0, k)
		for i := 0; i < k; i++ {
			j := i + r.Intn(len(pool)-i)
			vj, ok := swapped[j]
			if !ok {
				vj = j
			}
			vi, ok := swapped[i]
			if !ok {
				vi = i
			}
			swapped[j] = vi
			out = append(out, pool[vj])
		}
		return out
	}
	// Dense sample: partial Fisher-Yates over a copy of indices,
	// O(len(pool)) setup, O(k) draws.
	idx := make([]int, len(pool))
	for i := range idx {
		idx[i] = i
	}
	out := make([]ids.ProcessID, 0, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, pool[idx[i]])
	}
	return out
}

// SampleExcluding samples k distinct ids from pool, never returning
// any id in exclude. Matches the paper's Fig. 7 loop that selects
// targets from Table \ Ω.
func SampleExcluding(r *rand.Rand, pool []ids.ProcessID, k int, exclude map[ids.ProcessID]struct{}) []ids.ProcessID {
	if k <= 0 || len(pool) == 0 {
		return nil
	}
	if len(exclude) == 0 {
		return SampleIDs(r, pool, k)
	}
	if (k+len(exclude))*8 < len(pool) {
		// Sparse: rejection-sample distinct indices, skipping excluded
		// ids — O(k + |exclude|) expected, no O(len(pool)) copy. The
		// attempt bound guards pools dominated by duplicates of
		// excluded ids; on exhaustion we fall through to the exact
		// filtered path.
		chosen := make(map[int]struct{}, k)
		out := make([]ids.ProcessID, 0, k)
		maxAttempts := 8*(k+len(exclude)) + 32
		for attempts := 0; len(out) < k && attempts < maxAttempts; attempts++ {
			j := r.Intn(len(pool))
			if _, dup := chosen[j]; dup {
				continue
			}
			chosen[j] = struct{}{}
			if _, skip := exclude[pool[j]]; skip {
				continue
			}
			out = append(out, pool[j])
		}
		if len(out) == k {
			return out
		}
	}
	filtered := make([]ids.ProcessID, 0, len(pool))
	for _, p := range pool {
		if _, skip := exclude[p]; !skip {
			filtered = append(filtered, p)
		}
	}
	return SampleIDs(r, filtered, k)
}

// Shuffle permutes s in place.
func Shuffle(r *rand.Rand, s []ids.ProcessID) {
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
}

// Pick returns one uniformly random element of pool and true, or the
// zero ProcessID and false if pool is empty.
func Pick(r *rand.Rand, pool []ids.ProcessID) (ids.ProcessID, bool) {
	if len(pool) == 0 {
		return "", false
	}
	return pool[r.Intn(len(pool))], true
}

// Fanout computes the paper's intra-group dissemination fanout
// ln(S) + c for a group of size s, rounded up, never negative, and at
// least 1 for any non-empty group (a process must be able to forward
// even in tiny groups).
func Fanout(s int, c float64) int {
	if s <= 0 {
		return 0
	}
	f := int(math.Ceil(math.Log(float64(s)) + c))
	if f < 1 {
		f = 1
	}
	return f
}

// ViewSize computes the membership-table size (b+1)·ln(S) of the
// underlying flat membership algorithm (Kermarrec-Massoulié-Ganesh,
// paper ref [10]), rounded up, with a floor of 1 for non-empty groups.
func ViewSize(s int, b float64) int {
	if s <= 0 {
		return 0
	}
	v := int(math.Ceil((b + 1) * math.Log(float64(s))))
	if v < 1 {
		v = 1
	}
	return v
}

// PSel computes the self-election probability g/S (clamped to [0,1])
// with which a process decides to forward an event to its supertopic
// table (paper §V-B).
func PSel(g float64, s int) float64 {
	if s <= 0 {
		return 0
	}
	p := g / float64(s)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}

// PA computes the per-superprocess send probability a/z (clamped).
func PA(a float64, z int) float64 {
	if z <= 0 {
		return 0
	}
	p := a / float64(z)
	if p > 1 {
		return 1
	}
	if p < 0 {
		return 0
	}
	return p
}
