package xrand

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"damulticast/internal/ids"
)

func newRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func pool(n int) []ids.ProcessID {
	out := make([]ids.ProcessID, n)
	for i := range out {
		out[i] = ids.ProcessID(string(rune('a' + i)))
	}
	return out
}

func TestBernoulliExtremes(t *testing.T) {
	r := newRand()
	for i := 0; i < 100; i++ {
		if Bernoulli(r, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(r, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if Bernoulli(r, -0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !Bernoulli(r, 1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := newRand()
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bernoulli(0.3) frequency = %.4f", got)
	}
}

func TestSampleIDsBasic(t *testing.T) {
	r := newRand()
	p := pool(10)
	got := SampleIDs(r, p, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[ids.ProcessID]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("duplicate %s in sample", id)
		}
		seen[id] = true
	}
}

func TestSampleIDsEdge(t *testing.T) {
	r := newRand()
	if got := SampleIDs(r, nil, 3); got != nil {
		t.Errorf("sample from empty pool = %v", got)
	}
	if got := SampleIDs(r, pool(3), 0); got != nil {
		t.Errorf("sample of 0 = %v", got)
	}
	// k >= len(pool) returns the whole pool (shuffled).
	got := SampleIDs(r, pool(3), 10)
	if len(got) != 3 {
		t.Errorf("len = %d, want 3", len(got))
	}
}

func TestSampleIDsDoesNotMutatePool(t *testing.T) {
	r := newRand()
	p := pool(8)
	orig := make([]ids.ProcessID, len(p))
	copy(orig, p)
	for i := 0; i < 50; i++ {
		SampleIDs(r, p, 3)
	}
	for i := range p {
		if p[i] != orig[i] {
			t.Fatal("pool mutated by SampleIDs")
		}
	}
}

func TestSampleExcluding(t *testing.T) {
	r := newRand()
	p := pool(6)
	excl := map[ids.ProcessID]struct{}{"a": {}, "b": {}}
	for i := 0; i < 100; i++ {
		got := SampleExcluding(r, p, 4, excl)
		if len(got) != 4 {
			t.Fatalf("len = %d", len(got))
		}
		for _, id := range got {
			if _, bad := excl[id]; bad {
				t.Fatalf("excluded id %s sampled", id)
			}
		}
	}
	// All excluded -> nil.
	all := map[ids.ProcessID]struct{}{}
	for _, id := range p {
		all[id] = struct{}{}
	}
	if got := SampleExcluding(r, p, 2, all); got != nil {
		t.Errorf("sample from fully excluded pool = %v", got)
	}
}

func TestPick(t *testing.T) {
	r := newRand()
	if _, ok := Pick(r, nil); ok {
		t.Error("Pick from empty pool reported ok")
	}
	id, ok := Pick(r, pool(1))
	if !ok || id != "a" {
		t.Errorf("Pick = %q, %v", id, ok)
	}
}

func TestFanout(t *testing.T) {
	tests := []struct {
		s    int
		c    float64
		want int
	}{
		{0, 5, 0},
		{-3, 5, 0},
		{1, 0, 1},     // ln(1)=0, floor at 1
		{1000, 5, 12}, // ln(1000)=6.907 -> ceil(11.907)=12
		{100, 5, 10},  // ln(100)=4.605 -> ceil(9.605)=10
		{10, 5, 8},    // ln(10)=2.302 -> ceil(7.302)=8
		{10, -10, 1},  // negative total floors at 1
	}
	for _, tt := range tests {
		if got := Fanout(tt.s, tt.c); got != tt.want {
			t.Errorf("Fanout(%d,%g) = %d, want %d", tt.s, tt.c, got, tt.want)
		}
	}
}

func TestViewSize(t *testing.T) {
	tests := []struct {
		s    int
		b    float64
		want int
	}{
		{0, 3, 0},
		{1000, 3, 28}, // 4*6.907 = 27.63 -> 28
		{100, 3, 19},  // 4*4.605 = 18.42 -> 19
		{10, 3, 10},   // 4*2.302 = 9.21 -> 10
		{1, 3, 1},
	}
	for _, tt := range tests {
		if got := ViewSize(tt.s, tt.b); got != tt.want {
			t.Errorf("ViewSize(%d,%g) = %d, want %d", tt.s, tt.b, got, tt.want)
		}
	}
}

func TestPSelPA(t *testing.T) {
	if got := PSel(5, 1000); math.Abs(got-0.005) > 1e-12 {
		t.Errorf("PSel = %g", got)
	}
	if got := PSel(5, 0); got != 0 {
		t.Errorf("PSel(s=0) = %g", got)
	}
	if got := PSel(50, 10); got != 1 {
		t.Errorf("PSel clamp = %g", got)
	}
	if got := PSel(-1, 10); got != 0 {
		t.Errorf("PSel negative = %g", got)
	}
	if got := PA(1, 3); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("PA = %g", got)
	}
	if got := PA(1, 0); got != 0 {
		t.Errorf("PA(z=0) = %g", got)
	}
	if got := PA(9, 3); got != 1 {
		t.Errorf("PA clamp = %g", got)
	}
	if got := PA(-2, 3); got != 0 {
		t.Errorf("PA negative = %g", got)
	}
}

// Property: samples are always duplicate-free subsets of the pool with
// size min(k, len(pool)).
func TestPropSampleIsSubset(t *testing.T) {
	prop := func(seed int64, n, k uint8) bool {
		r := rand.New(rand.NewSource(seed))
		size := int(n%20) + 1
		p := pool(size)
		kk := int(k % 25)
		got := SampleIDs(r, p, kk)
		want := kk
		if want > size {
			want = size
		}
		if want == 0 {
			return got == nil
		}
		if len(got) != want {
			return false
		}
		inPool := map[ids.ProcessID]bool{}
		for _, id := range p {
			inPool[id] = true
		}
		seen := map[ids.ProcessID]bool{}
		for _, id := range got {
			if !inPool[id] || seen[id] {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: sampling is uniform enough that over many trials every
// element is selected at least once (coverage, not a chi-square test).
func TestSampleCoverage(t *testing.T) {
	r := newRand()
	p := pool(12)
	counts := map[ids.ProcessID]int{}
	for i := 0; i < 2000; i++ {
		for _, id := range SampleIDs(r, p, 3) {
			counts[id]++
		}
	}
	for _, id := range p {
		if counts[id] == 0 {
			t.Errorf("element %s never sampled", id)
		}
	}
}

func BenchmarkSampleIDs(b *testing.B) {
	r := newRand()
	p := make([]ids.ProcessID, 28) // typical topic-table size for S=1000
	for i := range p {
		p[i] = ids.ProcessID(rune('a' + i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SampleIDs(r, p, 12)
	}
}
