package xrand

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"damulticast/internal/ids"
)

func TestSeedForStableAndDistinct(t *testing.T) {
	if SeedFor(1, "a") != SeedFor(1, "a") {
		t.Error("SeedFor not stable")
	}
	seen := map[int64]string{}
	for base := int64(0); base < 10; base++ {
		for i := 0; i < 100; i++ {
			label := fmt.Sprintf("node:%d", i)
			s := SeedFor(base, label)
			if s < 0 {
				t.Fatalf("negative seed %d", s)
			}
			key := fmt.Sprintf("%d/%s", base, label)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s -> %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestNewStreamIndependence(t *testing.T) {
	a := NewStream(7, "a")
	b := NewStream(7, "b")
	a2 := NewStream(7, "a")
	same, diff := 0, 0
	for i := 0; i < 100; i++ {
		va, vb, va2 := a.Int63(), b.Int63(), a2.Int63()
		if va == va2 {
			same++
		}
		if va != vb {
			diff++
		}
	}
	if same != 100 {
		t.Error("same label does not reproduce the stream")
	}
	if diff < 99 {
		t.Error("distinct labels share a stream")
	}
}

func TestHashCoinDeterministicAndCalibrated(t *testing.T) {
	if HashCoin(1, "x", 0) {
		t.Error("p=0 returned true")
	}
	if !HashCoin(1, "x", 1) {
		t.Error("p=1 returned false")
	}
	for i := 0; i < 10; i++ {
		if HashCoin(3, "pair", 0.5) != HashCoin(3, "pair", 0.5) {
			t.Fatal("coin not stable")
		}
	}
	const total = 20000
	for _, p := range []float64{0.15, 0.5, 0.85} {
		hits := 0
		for i := 0; i < total; i++ {
			if HashCoin(9, fmt.Sprintf("k%d", i), p) {
				hits++
			}
		}
		if got := float64(hits) / total; math.Abs(got-p) > 0.02 {
			t.Errorf("p=%g: observed %g", p, got)
		}
	}
}

func TestHashUniformRange(t *testing.T) {
	var sum float64
	const total = 20000
	for i := 0; i < total; i++ {
		u := HashUniform(5, fmt.Sprintf("u%d", i))
		if u < 0 || u >= 1 {
			t.Fatalf("uniform out of range: %g", u)
		}
		sum += u
	}
	if mean := sum / total; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %g", mean)
	}
}

// bigPool triggers the sparse sampling fast paths (k*8 < len(pool)).
func bigPool(n int) []ids.ProcessID {
	pool := make([]ids.ProcessID, n)
	for i := range pool {
		pool[i] = ids.ProcessID(fmt.Sprintf("p%05d", i))
	}
	return pool
}

func TestSampleIDsSparsePath(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	pool := bigPool(10000)
	const k = 40
	counts := map[ids.ProcessID]int{}
	for trial := 0; trial < 200; trial++ {
		got := SampleIDs(r, pool, k)
		if len(got) != k {
			t.Fatalf("len = %d", len(got))
		}
		seen := map[ids.ProcessID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate %s in sample", id)
			}
			seen[id] = true
			counts[id]++
		}
	}
	// Uniformity smoke: no element should dominate; with 200·40 draws
	// over 10000 elements the expected count is 0.8.
	for id, c := range counts {
		if c > 10 {
			t.Errorf("%s sampled %d times", id, c)
		}
	}
}

func TestSampleExcludingSparsePath(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	pool := bigPool(10000)
	exclude := map[ids.ProcessID]struct{}{}
	for i := 0; i < 50; i++ {
		exclude[pool[i]] = struct{}{}
	}
	for trial := 0; trial < 100; trial++ {
		got := SampleExcluding(r, pool, 30, exclude)
		if len(got) != 30 {
			t.Fatalf("len = %d", len(got))
		}
		seen := map[ids.ProcessID]bool{}
		for _, id := range got {
			if _, skip := exclude[id]; skip {
				t.Fatalf("excluded id %s sampled", id)
			}
			if seen[id] {
				t.Fatalf("duplicate %s", id)
			}
			seen[id] = true
		}
	}
}

func TestSampleExcludingSparseFallback(t *testing.T) {
	// A pool dominated by duplicates of an excluded id exhausts the
	// rejection path's attempt budget; the exact filtered path must
	// still produce a correct sample.
	pool := make([]ids.ProcessID, 10000)
	for i := range pool {
		pool[i] = "dup"
	}
	pool[137] = "rare"
	r := rand.New(rand.NewSource(3))
	got := SampleExcluding(r, pool, 1, map[ids.ProcessID]struct{}{"dup": {}})
	if len(got) != 1 || got[0] != "rare" {
		t.Errorf("got %v, want [rare]", got)
	}
}
