package sim

import (
	"fmt"
	"sort"
	"strings"

	"damulticast/internal/topic"
)

// Row is one x-axis point of a figure: an alive fraction plus named
// series values.
type Row struct {
	Alive  float64
	Values map[string]float64
}

// Figure is regenerated figure data: ordered rows with a stable set of
// series names.
type Figure struct {
	Name   string
	XLabel string
	YLabel string
	Series []string
	Rows   []Row
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("alive")
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s)
	}
	b.WriteByte('\n')
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%.2f", row.Alive)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%.4f", row.Values[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultAliveFractions is the x-axis of Figs. 8-11: alive fractions
// from 10% to 100%.
func DefaultAliveFractions() []float64 {
	out := make([]float64, 0, 10)
	for f := 0.1; f <= 1.0001; f += 0.1 {
		out = append(out, f)
	}
	return out
}

// groupSeriesName labels a group's series like the paper's legends.
func groupSeriesName(t topic.Topic) string {
	switch t.Depth() {
	case 0:
		return "T0"
	default:
		return fmt.Sprintf("T%d", t.Depth())
	}
}

// averageRuns runs cfgFor runsPerPoint times per alive fraction and
// averages extract's named values.
func averageRuns(
	alives []float64,
	runsPerPoint int,
	cfgFor func(alive float64, seed int64) Config,
	extract func(*Result) map[string]float64,
) ([]Row, []string, error) {
	if runsPerPoint < 1 {
		runsPerPoint = 1
	}
	var rows []Row
	nameSet := map[string]bool{}
	for i, alive := range alives {
		acc := map[string]float64{}
		for run := 0; run < runsPerPoint; run++ {
			seed := int64(1000*i + run + 1)
			res, err := Run(cfgFor(alive, seed))
			if err != nil {
				return nil, nil, err
			}
			for k, v := range extract(res) {
				acc[k] += v
				nameSet[k] = true
			}
		}
		for k := range acc {
			acc[k] /= float64(runsPerPoint)
		}
		rows = append(rows, Row{Alive: alive, Values: acc})
	}
	names := make([]string, 0, len(nameSet))
	for k := range nameSet {
		names = append(names, k)
	}
	sort.Strings(names)
	return rows, names, nil
}

// Figure8 regenerates "Number of events sent in each group" vs. alive
// fraction (stillborn failures).
func Figure8(alives []float64, runsPerPoint int) (*Figure, error) {
	rows, names, err := averageRuns(alives, runsPerPoint, PaperConfig,
		func(res *Result) map[string]float64 {
			out := map[string]float64{}
			for t, v := range res.Intra {
				out[groupSeriesName(t)] = float64(v)
			}
			return out
		})
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   "fig8",
		XLabel: "fraction of alive processes",
		YLabel: "events sent within group",
		Series: names,
		Rows:   rows,
	}, nil
}

// Figure9 regenerates "Number of intergroup events" vs. alive fraction
// (stillborn failures): series T2->T1 and T1->T0.
func Figure9(alives []float64, runsPerPoint int) (*Figure, error) {
	rows, names, err := averageRuns(alives, runsPerPoint, PaperConfig,
		func(res *Result) map[string]float64 {
			out := map[string]float64{}
			for link, v := range res.Inter {
				name := fmt.Sprintf("%s->%s", groupSeriesName(link[0]), groupSeriesName(link[1]))
				out[name] = float64(v)
			}
			return out
		})
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   "fig9",
		XLabel: "fraction of alive processes",
		YLabel: "intergroup events",
		Series: names,
		Rows:   rows,
	}, nil
}

// reliabilityFigure is shared by Figures 10 and 11.
func reliabilityFigure(name string, mode FailureMode, alives []float64, runsPerPoint int) (*Figure, error) {
	cfgFor := func(alive float64, seed int64) Config {
		cfg := PaperConfig(alive, seed)
		cfg.FailureMode = mode
		return cfg
	}
	rows, names, err := averageRuns(alives, runsPerPoint, cfgFor,
		func(res *Result) map[string]float64 {
			out := map[string]float64{}
			for t, v := range res.ReliabilityAll {
				out[groupSeriesName(t)] = v
			}
			return out
		})
	if err != nil {
		return nil, err
	}
	return &Figure{
		Name:   name,
		XLabel: "fraction of alive processes",
		YLabel: "fraction of processes receiving",
		Series: names,
		Rows:   rows,
	}, nil
}

// Figure10 regenerates reliability under stillborn failures.
func Figure10(alives []float64, runsPerPoint int) (*Figure, error) {
	return reliabilityFigure("fig10", FailStillborn, alives, runsPerPoint)
}

// Figure11 regenerates reliability under per-observer (weakly
// consistent) failures.
func Figure11(alives []float64, runsPerPoint int) (*Figure, error) {
	return reliabilityFigure("fig11", FailPerObserver, alives, runsPerPoint)
}

// FigureChurn goes beyond the paper: it sweeps the size of a crash
// wave hitting the publish group two rounds into dissemination and
// reports each group's delivered fraction. The x-axis is the fraction
// of processes SURVIVING the wave, so the curve reads like Figs. 10/11
// (right edge = no churn). Each point runs the paper topology on the
// sharded kernel; runsPerPoint independent runs are averaged.
func FigureChurn(survives []float64, runsPerPoint int) (*Figure, error) {
	if runsPerPoint < 1 {
		runsPerPoint = 1
	}
	var rows []Row
	nameSet := map[string]bool{}
	for i, survive := range survives {
		acc := map[string]float64{}
		for run := 0; run < runsPerPoint; run++ {
			seed := int64(1000*i + run + 1)
			cfg := PaperConfig(1, seed)
			cfg.FailureMode = FailNone
			sc := Scenario{
				Name:   "churn-wave",
				Rounds: 30, // gossip quiesces in ~O(log S) rounds; 30 is ample
				Events: []ScenarioEvent{
					{Round: 0, Kind: ScenarioPublish},
					{Round: 2, Kind: ScenarioCrashWave, Topic: cfg.PublishTopic, Fraction: 1 - survive},
				},
			}
			res, err := RunScenario(cfg, sc)
			if err != nil {
				return nil, err
			}
			for t, v := range res.ReliabilityAll {
				name := groupSeriesName(t)
				acc[name] += v
				nameSet[name] = true
			}
		}
		for k := range acc {
			acc[k] /= float64(runsPerPoint)
		}
		rows = append(rows, Row{Alive: survive, Values: acc})
	}
	names := make([]string, 0, len(nameSet))
	for k := range nameSet {
		names = append(names, k)
	}
	sort.Strings(names)
	return &Figure{
		Name:   "churn",
		XLabel: "fraction surviving the churn wave",
		YLabel: "fraction of processes receiving",
		Series: names,
		Rows:   rows,
	}, nil
}
