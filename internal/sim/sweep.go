package sim

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"damulticast/internal/experiment"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Row is one x-axis point of a figure: an alive fraction plus named
// series values.
type Row struct {
	Alive  float64
	Values map[string]float64
}

// Figure is regenerated figure data: ordered rows with a stable set of
// series names.
type Figure struct {
	Name   string
	XLabel string
	YLabel string
	Series []string
	Rows   []Row
}

// CSV renders the figure as comma-separated values with a header row.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString("alive")
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(s)
	}
	b.WriteByte('\n')
	for _, row := range f.Rows {
		fmt.Fprintf(&b, "%.2f", row.Alive)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%.4f", row.Values[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// DefaultAliveFractions is the x-axis of Figs. 8-11: alive fractions
// from 10% to 100%.
func DefaultAliveFractions() []float64 {
	out := make([]float64, 0, 10)
	for f := 0.1; f <= 1.0001; f += 0.1 {
		out = append(out, f)
	}
	return out
}

// groupSeriesName labels a group's series like the paper's legends.
func groupSeriesName(t topic.Topic) string {
	switch t.Depth() {
	case 0:
		return "T0"
	default:
		return fmt.Sprintf("T%d", t.Depth())
	}
}

// pointResult is what one sweep job contributes to a figure: the named
// series values at its x-axis point, plus bookkeeping for the run
// report.
type pointResult struct {
	values map[string]float64
	counts map[string]int64
	rounds int
}

// figureSpec declares one figure sweep: how to run a single point and
// produce its named series values.
type figureSpec struct {
	name   string
	xlabel string
	ylabel string
	// grid, when non-nil, pins the figure's canonical x-axis for a
	// given point count (see FigureXs); nil uses the default i/points
	// sweep over (0, 1].
	grid func(points int) []float64
	// runPoint executes one independent run (or, for comparison
	// figures like "recovery", a deterministic bundle of sub-runs) at
	// x-axis value x with the given seed, on kernelWorkers simnet
	// shards (0 = GOMAXPROCS).
	runPoint func(x float64, seed int64, kernelWorkers int) (pointResult, error)
}

// resultPoint adapts a full simulation Result to a pointResult.
func resultPoint(res *Result, extract func(*Result) map[string]float64) pointResult {
	return pointResult{values: extract(res), counts: res.KindTotals, rounds: res.Rounds}
}

// paperSpec builds the spec shared by Figs. 8-11: the paper topology
// with a per-figure failure mode and extractor.
func paperSpec(name, ylabel string, mode FailureMode, extract func(*Result) map[string]float64) figureSpec {
	return figureSpec{
		name:   name,
		xlabel: "fraction of alive processes",
		ylabel: ylabel,
		runPoint: func(x float64, seed int64, kernelWorkers int) (pointResult, error) {
			cfg := PaperConfig(x, seed)
			if mode != 0 {
				cfg.FailureMode = mode
			}
			cfg.Workers = kernelWorkers
			res, err := Run(cfg)
			if err != nil {
				return pointResult{}, err
			}
			return resultPoint(res, extract), nil
		},
	}
}

func extractIntra(res *Result) map[string]float64 {
	out := map[string]float64{}
	for t, v := range res.Intra {
		out[groupSeriesName(t)] = float64(v)
	}
	return out
}

func extractInter(res *Result) map[string]float64 {
	out := map[string]float64{}
	for link, v := range res.Inter {
		name := fmt.Sprintf("%s->%s", groupSeriesName(link[0]), groupSeriesName(link[1]))
		out[name] = float64(v)
	}
	return out
}

func extractReliabilityAll(res *Result) map[string]float64 {
	out := map[string]float64{}
	for t, v := range res.ReliabilityAll {
		out[groupSeriesName(t)] = v
	}
	return out
}

// churnSpec is the beyond-paper churn-wave sweep: x is the fraction of
// the publish group SURVIVING a crash wave two rounds into
// dissemination, so the curve reads like Figs. 10/11 (right edge = no
// churn).
func churnSpec() figureSpec {
	return figureSpec{
		name:   "churn",
		xlabel: "fraction surviving the churn wave",
		ylabel: "fraction of processes receiving",
		runPoint: func(x float64, seed int64, kernelWorkers int) (pointResult, error) {
			cfg := PaperConfig(1, seed)
			cfg.FailureMode = FailNone
			cfg.Workers = kernelWorkers
			sc := Scenario{
				Name:   "churn-wave",
				Rounds: 30, // gossip quiesces in ~O(log S) rounds; 30 is ample
				Events: []ScenarioEvent{
					{Round: 0, Kind: ScenarioPublish},
					{Round: 2, Kind: ScenarioCrashWave, Topic: cfg.PublishTopic, Fraction: 1 - x},
				},
			}
			res, err := RunScenario(cfg, sc)
			if err != nil {
				return pointResult{}, err
			}
			return resultPoint(res, extractReliabilityAll), nil
		},
	}
}

// recoveryRounds and recoveryPeriod pin the "recovery" figure's
// schedule: enough rounds for ~20 anti-entropy waves after the single
// publication at round 0.
const (
	recoveryRounds = 48
	recoveryPeriod = 2
)

// recoveryRun executes one lossy dissemination of the paper topology,
// with the anti-entropy recovery subsystem on or off.
func recoveryRun(psucc float64, seed int64, kernelWorkers int, recovery bool) (*Result, error) {
	cfg := PaperConfig(1, seed)
	cfg.FailureMode = FailNone
	cfg.PSucc = psucc
	cfg.Workers = kernelWorkers
	if recovery {
		cfg.Params.RecoverPeriod = recoveryPeriod
		cfg.Params.RecoverMaxAge = recoveryRounds + 1 // nothing ages out mid-figure
	}
	sc := Scenario{
		Name:   "recovery",
		Rounds: recoveryRounds,
		Events: []ScenarioEvent{{Round: 0, Kind: ScenarioPublish}},
	}
	return RunScenario(cfg, sc)
}

// recoveryRootRun executes the root-revival stress: the root group is
// isolated from the rest of the hierarchy BEFORE the round-0
// publication, so it holds zero copies when the partition heals
// halfway through the run — by then gossip has quiesced, so only the
// anti-entropy plane can carry the event across the healed boundary.
// Intra-group recovery provably cannot (root members digest each
// other's identically empty stores); cross-group recovery revives the
// root through T1's upward digests.
func recoveryRootRun(psucc float64, seed int64, kernelWorkers int, cross bool) (*Result, error) {
	cfg := PaperConfig(1, seed)
	cfg.FailureMode = FailNone
	cfg.PSucc = psucc
	cfg.Workers = kernelWorkers
	cfg.Params.RecoverPeriod = recoveryPeriod
	cfg.Params.RecoverMaxAge = recoveryRounds + 1
	if cross {
		cfg.Params.CrossRecoverPeriod = recoveryPeriod
	}
	t0, _, _ := PaperTopics()
	sc := Scenario{
		Name:   "recovery-root",
		Rounds: recoveryRounds,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioIsolate, Topic: t0},
			{Round: 0, Kind: ScenarioPublish},
			{Round: recoveryRounds / 2, Kind: ScenarioHeal},
		},
	}
	return RunScenario(cfg, sc)
}

// recoverySpec is the anti-entropy figure: delivery ratio of the
// publish group under channel loss, best-effort baseline vs recovery
// enabled, plus the root-revival pair (see recoveryRootRun) showing
// what cross-group recovery adds over intra-group recovery alone. x is
// the channel success probability psucc (loss rate = 1-x), so the
// right edge is the lossless network, like the other figures. All
// sub-runs share the point's seed, which aligns the rounds before the
// first recovery wave and pairs away most of the outbreak variance;
// after that wave the recovery run's extra draws and sends shift the
// per-process and loss streams, so the epidemics diverge and dominance
// of the "recovery" series is an empirical property of the paired
// design (recovery keeps re-offering every held event until it lands),
// enforced at pinned seeds by TestRecoveryFigureDominatesBaseline —
// not a per-draw guarantee. The root pair is structural at the
// lossless edge: gossip quiesces long before the heal, so "root_intra"
// sits at exactly 0 (no root member ever holds a copy to exchange)
// while "root_cross" climbs the healed boundary. At lossy points the
// epidemic can still be sputtering when the partition heals, and
// recovery-driven re-dissemination inside T1 leaks upward through
// normal gossip, so there "root_intra" is merely dominated, not zero.
func recoverySpec() figureSpec {
	return figureSpec{
		name:   "recovery",
		xlabel: "channel success probability (1 - loss rate)",
		ylabel: "fraction of processes receiving",
		runPoint: func(x float64, seed int64, kernelWorkers int) (pointResult, error) {
			base, err := recoveryRun(x, seed, kernelWorkers, false)
			if err != nil {
				return pointResult{}, err
			}
			rec, err := recoveryRun(x, seed, kernelWorkers, true)
			if err != nil {
				return pointResult{}, err
			}
			rootIntra, err := recoveryRootRun(x, seed, kernelWorkers, false)
			if err != nil {
				return pointResult{}, err
			}
			rootCross, err := recoveryRootRun(x, seed, kernelWorkers, true)
			if err != nil {
				return pointResult{}, err
			}
			t0, _, t2 := PaperTopics()
			// Per-kind counts keep the sub-runs apart so reports
			// expose the recovery overhead next to the baseline.
			counts := make(map[string]int64, 4*len(rec.KindTotals))
			for prefix, res := range map[string]*Result{
				"base": base, "recovery": rec,
				"root_intra": rootIntra, "root_cross": rootCross,
			} {
				for k, v := range res.KindTotals {
					counts[prefix+":"+k] += v
				}
			}
			return pointResult{
				values: map[string]float64{
					"base":       base.ReliabilityAll[t2],
					"recovery":   rec.ReliabilityAll[t2],
					"root_intra": rootIntra.ReliabilityAll[t0],
					"root_cross": rootCross.ReliabilityAll[t0],
				},
				counts: counts,
				rounds: base.Rounds + rec.Rounds + rootIntra.Rounds + rootCross.Rounds,
			}, nil
		},
	}
}

// figureSpecs maps canonical figure names to their sweep specs.
func figureSpecs() map[string]figureSpec {
	return map[string]figureSpec{
		"fig8":          paperSpec("fig8", "events sent within group", 0, extractIntra),
		"fig9":          paperSpec("fig9", "intergroup events", 0, extractInter),
		"fig10":         paperSpec("fig10", "fraction of processes receiving", FailStillborn, extractReliabilityAll),
		"fig11":         paperSpec("fig11", "fraction of processes receiving", FailPerObserver, extractReliabilityAll),
		"churn":         churnSpec(),
		"recovery":      recoverySpec(),
		"recoverystore": recoveryStoreSpec(),
		"recoverydepth": recoveryDepthSpec(),
		"baselines":     baselinesSpec(),
		"scale":         scaleSpec(),
	}
}

// FigureNames lists the figure names GenerateFigure accepts, sorted.
func FigureNames() []string {
	specs := figureSpecs()
	names := make([]string, 0, len(specs))
	for name := range specs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FigureOpts parameterizes a figure sweep.
type FigureOpts struct {
	// RunsPerPoint is how many independent runs are averaged per
	// x-axis point (minimum 1).
	RunsPerPoint int
	// SweepWorkers bounds the orchestrator's worker pool fanning runs
	// out: 0 = GOMAXPROCS, 1 = serial. Any value yields byte-identical
	// figure CSVs — seeds derive from (BaseSeed, figure, point, run),
	// never from scheduling.
	SweepWorkers int
	// KernelWorkers is the simnet shard count per run. 0 auto-selects:
	// GOMAXPROCS when the sweep itself is serial, 1 when sweep workers
	// already saturate the cores (run-level parallelism beats
	// round-level for many small runs).
	KernelWorkers int
	// BaseSeed roots the per-run seed derivation; 0 means 1.
	BaseSeed int64
}

// GenerateFigure sweeps the named figure over the given x values on
// the experiment orchestrator and returns the figure plus a
// machine-readable report of every underlying run. Known names are
// listed by FigureNames. The figure bytes depend only on (name, xs,
// RunsPerPoint, BaseSeed); worker counts change wall clock alone.
func GenerateFigure(ctx context.Context, name string, xs []float64, opts FigureOpts) (*Figure, *experiment.FigureReport, error) {
	spec, ok := figureSpecs()[name]
	if !ok {
		return nil, nil, fmt.Errorf("sim: unknown figure %q (want %v)", name, FigureNames())
	}
	runs := opts.RunsPerPoint
	if runs < 1 {
		runs = 1
	}
	baseSeed := opts.BaseSeed
	if baseSeed == 0 {
		baseSeed = 1
	}
	sweepWorkers := opts.SweepWorkers
	if sweepWorkers <= 0 {
		sweepWorkers = runtime.GOMAXPROCS(0)
	}
	kernelWorkers := opts.KernelWorkers
	if kernelWorkers == 0 && sweepWorkers > 1 {
		kernelWorkers = 1
	}

	sample := experiment.BeginSample()
	n := len(xs) * runs
	recs, err := experiment.Map(ctx, sweepWorkers, n,
		func(_ context.Context, j int) (experiment.RunRecord, error) {
			pi, run := j/runs, j%runs
			seed := xrand.SeedFor(baseSeed, fmt.Sprintf("fig:%s:point:%d:run:%d", spec.name, pi, run))
			start := time.Now() //damcvet:allow detrand(WallNS is a wall-clock timing report, not a protocol result)
			res, err := spec.runPoint(xs[pi], seed, kernelWorkers)
			if err != nil {
				return experiment.RunRecord{}, err
			}
			return experiment.RunRecord{
				Point:  pi,
				X:      xs[pi],
				Run:    run,
				Seed:   seed,
				Rounds: res.rounds,
				WallNS: time.Since(start).Nanoseconds(), //damcvet:allow detrand(WallNS is a wall-clock timing report, not a protocol result)
				Counts: res.counts,
				Values: res.values,
			}, nil
		})
	if err != nil {
		return nil, nil, fmt.Errorf("figure %s: %w", name, err)
	}

	// Assemble rows serially in index order: averaging consumes the
	// records point-major exactly as the serial sweep produced them,
	// so floating-point accumulation order — and hence the CSV bytes —
	// cannot depend on the worker count.
	rows := make([]Row, 0, len(xs))
	nameSet := map[string]bool{}
	totals := map[string]int64{}
	for pi, x := range xs {
		acc := map[string]float64{}
		for run := 0; run < runs; run++ {
			rec := recs[pi*runs+run]
			for k, v := range rec.Values {
				acc[k] += v
				nameSet[k] = true
			}
			for k, v := range rec.Counts {
				totals[k] += v
			}
		}
		for k := range acc {
			acc[k] /= float64(runs)
		}
		rows = append(rows, Row{Alive: x, Values: acc})
	}
	names := make([]string, 0, len(nameSet))
	for k := range nameSet {
		names = append(names, k)
	}
	sort.Strings(names)

	wall, cpu, mwait := sample.End()
	report := &experiment.FigureReport{
		Name:          spec.name,
		XLabel:        spec.xlabel,
		YLabel:        spec.ylabel,
		RunsPerPoint:  runs,
		BaseSeed:      baseSeed,
		SweepWorkers:  sweepWorkers,
		KernelWorkers: kernelWorkers,
		WallNS:        wall,
		CPUNS:         cpu,
		MutexWaitNS:   mwait,
		Totals:        totals,
		Runs:          recs,
	}
	return &Figure{
		Name:   spec.name,
		XLabel: spec.xlabel,
		YLabel: spec.ylabel,
		Series: names,
		Rows:   rows,
	}, report, nil
}

// legacyFigure preserves the original serial-sweep entry points on top
// of the orchestrator.
func legacyFigure(name string, xs []float64, runsPerPoint int) (*Figure, error) {
	fig, _, err := GenerateFigure(context.Background(), name, xs,
		FigureOpts{RunsPerPoint: runsPerPoint, SweepWorkers: 1})
	return fig, err
}

// Figure8 regenerates "Number of events sent in each group" vs. alive
// fraction (stillborn failures).
func Figure8(alives []float64, runsPerPoint int) (*Figure, error) {
	return legacyFigure("fig8", alives, runsPerPoint)
}

// Figure9 regenerates "Number of intergroup events" vs. alive fraction
// (stillborn failures): series T2->T1 and T1->T0.
func Figure9(alives []float64, runsPerPoint int) (*Figure, error) {
	return legacyFigure("fig9", alives, runsPerPoint)
}

// Figure10 regenerates reliability under stillborn failures.
func Figure10(alives []float64, runsPerPoint int) (*Figure, error) {
	return legacyFigure("fig10", alives, runsPerPoint)
}

// Figure11 regenerates reliability under per-observer (weakly
// consistent) failures.
func Figure11(alives []float64, runsPerPoint int) (*Figure, error) {
	return legacyFigure("fig11", alives, runsPerPoint)
}

// FigureChurn goes beyond the paper: it sweeps the size of a crash
// wave hitting the publish group two rounds into dissemination and
// reports each group's delivered fraction (see churnSpec).
func FigureChurn(survives []float64, runsPerPoint int) (*Figure, error) {
	return legacyFigure("churn", survives, runsPerPoint)
}
