package sim

import (
	"errors"
	"fmt"
	"sort"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/simnet"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// ScenarioKind enumerates the dynamic events a scenario can inject
// between simulation rounds.
type ScenarioKind int

// Scenario event kinds.
const (
	// ScenarioPublish publishes one event from a random alive member
	// of the publish group (Topic overrides the config's PublishTopic
	// when set).
	ScenarioPublish ScenarioKind = iota + 1
	// ScenarioCrashWave stops and crashes Fraction of the currently
	// alive members of Topic (every group when Topic is empty) — a
	// correlated churn wave.
	ScenarioCrashWave
	// ScenarioFlashCrowd restarts Fraction of the currently stopped
	// members of Topic (every group when empty) and seeds their
	// membership tables afresh — a burst of simultaneous
	// subscriptions.
	ScenarioFlashCrowd
	// ScenarioPartition splits the members of Topic (every group when
	// empty) into Cells cells; messages crossing cells are dropped
	// until a ScenarioHeal.
	ScenarioPartition
	// ScenarioHeal removes the current partition.
	ScenarioHeal
	// ScenarioLossBurst sets the channel success probability to PSucc
	// (correlated message loss) until a ScenarioLossRestore.
	ScenarioLossBurst
	// ScenarioLossRestore restores the configured channel success
	// probability.
	ScenarioLossRestore
	// ScenarioStragglers makes Fraction of all sends spend between 1
	// and Delay extra rounds in flight (per-link latency skew).
	// Fraction 0 clears any straggler distribution.
	ScenarioStragglers
	// ScenarioIsolate cuts every link crossing the boundary of Topic's
	// group: members keep talking to each other, but nothing flows in
	// or out until a ScenarioHeal — the "one group cut off at birth"
	// shape the cross-group recovery figure stresses.
	ScenarioIsolate
)

var scenarioKindNames = map[ScenarioKind]string{
	ScenarioPublish:     "publish",
	ScenarioCrashWave:   "crash-wave",
	ScenarioFlashCrowd:  "flash-crowd",
	ScenarioPartition:   "partition",
	ScenarioHeal:        "heal",
	ScenarioLossBurst:   "loss-burst",
	ScenarioLossRestore: "loss-restore",
	ScenarioStragglers:  "stragglers",
	ScenarioIsolate:     "isolate",
}

// String names the scenario kind.
func (k ScenarioKind) String() string {
	if s, ok := scenarioKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("scenariokind(%d)", int(k))
}

// ScenarioEvent is one timed injection. Round r means "after r rounds
// have executed": round 0 events apply before the first Step.
type ScenarioEvent struct {
	Round int
	Kind  ScenarioKind
	// Topic targets one group; empty targets every group (crash,
	// flash-crowd, partition) or the config's PublishTopic (publish).
	Topic topicOrAll
	// Fraction of candidates affected (crash-wave, flash-crowd).
	Fraction float64
	// Cells is the partition cell count (>= 2).
	Cells int
	// PSucc is the loss-burst channel success probability in (0, 1].
	PSucc float64
	// Delay is the stragglers' maximum extra rounds in flight (>= 1
	// when Fraction > 0).
	Delay int
}

// topicOrAll aliases topic.Topic for scenario targeting; the empty
// value means "all groups".
type topicOrAll = topic.Topic

// Scenario is a deterministic schedule of dynamic events driven over a
// fixed number of rounds. The same scenario with the same Config seed
// yields a byte-identical Result for any kernel worker count.
type Scenario struct {
	Name   string
	Rounds int
	Events []ScenarioEvent
}

// Scenario validation errors.
var (
	ErrBadRounds    = errors.New("sim: scenario rounds must be >= 1")
	ErrBadEvent     = errors.New("sim: bad scenario event")
	ErrNoPartition  = errors.New("sim: heal without partition")
	ErrBadEventKind = errors.New("sim: unknown scenario event kind")
)

// Validate checks the scenario against basic well-formedness rules,
// including that every heal is preceded (in round order) by a
// partition.
func (s Scenario) Validate() error {
	if s.Rounds < 1 {
		return ErrBadRounds
	}
	for i, ev := range s.Events {
		if ev.Round < 0 || ev.Round >= s.Rounds {
			return fmt.Errorf("%w: event %d round %d outside [0, %d)", ErrBadEvent, i, ev.Round, s.Rounds)
		}
		switch ev.Kind {
		case ScenarioPublish, ScenarioHeal, ScenarioLossRestore:
		case ScenarioCrashWave, ScenarioFlashCrowd:
			if ev.Fraction < 0 || ev.Fraction > 1 {
				return fmt.Errorf("%w: event %d fraction %g", ErrBadEvent, i, ev.Fraction)
			}
		case ScenarioPartition:
			if ev.Cells < 2 {
				return fmt.Errorf("%w: event %d needs >= 2 cells", ErrBadEvent, i)
			}
		case ScenarioLossBurst:
			if ev.PSucc <= 0 || ev.PSucc > 1 {
				return fmt.Errorf("%w: event %d psucc %g", ErrBadEvent, i, ev.PSucc)
			}
		case ScenarioStragglers:
			if ev.Fraction < 0 || ev.Fraction > 1 {
				return fmt.Errorf("%w: event %d fraction %g", ErrBadEvent, i, ev.Fraction)
			}
			if ev.Fraction > 0 && ev.Delay < 1 {
				return fmt.Errorf("%w: event %d stragglers need Delay >= 1", ErrBadEvent, i)
			}
		case ScenarioIsolate:
			if ev.Topic == "" {
				return fmt.Errorf("%w: event %d isolate needs a topic", ErrBadEvent, i)
			}
		default:
			return fmt.Errorf("%w: %d", ErrBadEventKind, int(ev.Kind))
		}
	}
	// A heal must follow a partition in application (round) order —
	// the same order RunScenario uses.
	ordered := make([]ScenarioEvent, len(s.Events))
	copy(ordered, s.Events)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Round < ordered[j].Round })
	partitioned := false
	for _, ev := range ordered {
		switch ev.Kind {
		case ScenarioPartition, ScenarioIsolate:
			partitioned = true
		case ScenarioHeal:
			if !partitioned {
				return fmt.Errorf("%w: heal at round %d", ErrNoPartition, ev.Round)
			}
			partitioned = false
		}
	}
	return nil
}

// RunScenario drives the built network through the scenario: events
// apply serially between rounds, every round steps the (possibly
// sharded) kernel once, and the aggregate Result covers all scenario
// publications. Unlike Run, the network does not stop at quiescence —
// exactly sc.Rounds rounds execute.
func (r *Runner) RunScenario(sc Scenario) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	events := make([]ScenarioEvent, len(sc.Events))
	copy(events, sc.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Round < events[j].Round })

	var evs []ids.EventID
	ei := 0
	for round := 0; round < sc.Rounds; round++ {
		for ei < len(events) && events[ei].Round <= round {
			if err := r.applyEvent(events[ei], &evs); err != nil {
				return nil, err
			}
			ei++
		}
		r.net.Step()
	}
	return r.collect(evs, sc.Rounds), nil
}

// RunScenario builds a network for cfg and drives it through sc.
func RunScenario(cfg Config, sc Scenario) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.RunScenario(sc)
}

// targetGroups resolves an event's topic to group specs, in config
// order (deterministic).
func (r *Runner) targetGroups(t topicOrAll) []GroupSpec {
	if t == "" {
		return r.cfg.Groups
	}
	for _, g := range r.cfg.Groups {
		if g.Topic == t {
			return []GroupSpec{g}
		}
	}
	return nil
}

// applyEvent injects one scenario event. All mutations run serially
// between rounds and draw from the kernel's serial stream, so they are
// independent of the worker count.
func (r *Runner) applyEvent(ev ScenarioEvent, evs *[]ids.EventID) error {
	switch ev.Kind {
	case ScenarioPublish:
		pubTopic := r.cfg.PublishTopic
		if ev.Topic != "" {
			pubTopic = ev.Topic
		}
		id, err := r.publishFromGroup(pubTopic, r.net.Rand())
		if err != nil {
			return err
		}
		*evs = append(*evs, id)
	case ScenarioCrashWave:
		rng := r.net.Rand()
		for _, g := range r.targetGroups(ev.Topic) {
			var alive []*core.Process
			for _, p := range r.groups[g.Topic] {
				if !p.Stopped() {
					alive = append(alive, p)
				}
			}
			nCrash := int(float64(len(alive)) * ev.Fraction)
			perm := rng.Perm(len(alive))
			for i := 0; i < nCrash; i++ {
				p := alive[perm[i]]
				p.Stop()
				if err := r.net.Crash(p.ID()); err != nil {
					return err
				}
			}
		}
	case ScenarioFlashCrowd:
		rng := r.net.Rand()
		for _, g := range r.targetGroups(ev.Topic) {
			members := r.groups[g.Topic]
			memberIDs := make([]ids.ProcessID, len(members))
			for i, p := range members {
				memberIDs[i] = p.ID()
			}
			var stopped []*core.Process
			for _, p := range members {
				if p.Stopped() {
					stopped = append(stopped, p)
				}
			}
			nJoin := int(float64(len(stopped)) * ev.Fraction)
			tableCap := xrand.ViewSize(g.Size, r.cfg.Params.B)
			superTopic, superIDs := r.nearestSupergroup(g.Topic)
			perm := rng.Perm(len(stopped))
			for i := 0; i < nJoin; i++ {
				p := stopped[perm[i]]
				p.Restart()
				r.net.Recover(p.ID())
				p.SeedTopicTable(sampleOthers(rng, memberIDs, p.ID(), tableCap))
				if superTopic != "" {
					p.SeedSuperTable(superTopic, xrand.SampleIDs(rng, superIDs, r.cfg.Params.Z))
				}
			}
		}
	case ScenarioPartition:
		cells := make(map[ids.ProcessID]int)
		for _, g := range r.targetGroups(ev.Topic) {
			for _, p := range r.groups[g.Topic] {
				id := p.ID()
				cells[id] = int(xrand.HashUniform(r.cfg.Seed+int64(ev.Round), "cell:"+string(id)) * float64(ev.Cells))
			}
		}
		r.net.SetLinkDown(func(from, to ids.ProcessID) bool {
			cf, okf := cells[from]
			ct, okt := cells[to]
			return okf && okt && cf != ct
		})
	case ScenarioIsolate:
		inGroup := make(map[ids.ProcessID]bool)
		for _, g := range r.targetGroups(ev.Topic) {
			for _, p := range r.groups[g.Topic] {
				inGroup[p.ID()] = true
			}
		}
		r.net.SetLinkDown(func(from, to ids.ProcessID) bool {
			return inGroup[from] != inGroup[to]
		})
	case ScenarioHeal:
		r.net.SetLinkDown(nil)
	case ScenarioLossBurst:
		r.net.PSucc = ev.PSucc
	case ScenarioLossRestore:
		r.net.PSucc = r.cfg.PSucc
	case ScenarioStragglers:
		if ev.Fraction <= 0 {
			r.net.SetLinkDelay(nil)
			break
		}
		r.net.SetLinkDelay(simnet.StragglerDelay(
			xrand.SeedFor(r.cfg.Seed, "stragglers"), ev.Fraction, ev.Delay))
	default:
		return fmt.Errorf("%w: %d", ErrBadEventKind, int(ev.Kind))
	}
	return nil
}
