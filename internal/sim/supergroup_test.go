package sim

import (
	"testing"

	"damulticast/internal/core"
	"damulticast/internal/topic"
)

// TestNearestSupergroupDeepestWins pins the induced-supergroup choice
// across the detrand-driven rewrite: the deepest configured group
// strictly including the topic wins, identically on every call (the
// candidate set is sorted before selection, so the result can never
// depend on map iteration order).
func TestNearestSupergroupDeepestWins(t *testing.T) {
	r := &Runner{groups: map[topic.Topic][]*core.Process{
		".a": nil, ".a.b": nil, ".a.b.c": nil, ".x": nil,
	}}
	for i := 0; i < 50; i++ {
		if got, _ := r.nearestSupergroup(".a.b.c"); got != ".a.b" {
			t.Fatalf("nearestSupergroup(.a.b.c) = %q, want .a.b", got)
		}
	}
	if got, members := r.nearestSupergroup(".zzz.q"); got != "" || members != nil {
		t.Fatalf("expected no supergroup for .zzz.q, got %q %v", got, members)
	}
}
