package sim

import (
	"fmt"
	"sort"

	"damulticast/internal/core"
	"damulticast/internal/topic"
)

// flatConfig builds a single-group (root topic) configuration of n
// processes with static tables — the workhorse for large-scale
// scenario runs (20k-50k processes on the sharded kernel).
func flatConfig(n int, seed int64, workers int) Config {
	params := core.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	return Config{
		Groups:        []GroupSpec{{Topic: topic.Root, Size: n}},
		Params:        params,
		PSucc:         0.85,
		AliveFraction: 1,
		FailureMode:   FailNone,
		PublishTopic:  topic.Root,
		MaxRounds:     200,
		Seed:          seed,
		Workers:       workers,
	}
}

// BuiltinScenario returns a named ready-to-run (Config, Scenario) pair
// over a single group of n processes. Supported names:
//
//   - "churn": publish, then a crash wave of `intensity` of the group,
//     a later flash-crowd rejoin of everyone stopped, and a second
//     publication against the recovered group.
//   - "flashcrowd": start with `intensity` of the group unsubscribed
//     (stillborn), publish, then have the whole crowd subscribe at
//     once and publish again.
//   - "partition": split the group in two cells mid-dissemination,
//     publish inside the partition, heal, and publish again.
//   - "lossburst": degrade the channel success probability to
//     `intensity` mid-run, publish through the burst, restore, and
//     publish again.
//
// intensity is the scenario's knob in [0, 1] (crash fraction,
// unsubscribed fraction, or burst success probability). rounds bounds
// the run; 0 selects a default per scenario, and fewer than 8 rounds
// is rejected — the presets pin their fault events at rounds 1-2 and
// their recovery at the midpoint, which degenerates (recovery sorted
// before the fault) on shorter runs.
func BuiltinScenario(name string, n int, intensity float64, rounds int, seed int64, workers int) (Config, Scenario, error) {
	if n < 2 {
		return Config{}, Scenario{}, fmt.Errorf("sim: scenario needs >= 2 processes, got %d", n)
	}
	if rounds <= 0 {
		rounds = 24
	}
	if rounds < 8 {
		return Config{}, Scenario{}, fmt.Errorf("sim: scenario needs >= 8 rounds, got %d", rounds)
	}
	cfg := flatConfig(n, seed, workers)
	mid := rounds / 2
	switch name {
	case "churn":
		if intensity <= 0 {
			intensity = 0.3
		}
		return cfg, Scenario{
			Name:   "churn",
			Rounds: rounds,
			Events: []ScenarioEvent{
				{Round: 0, Kind: ScenarioPublish},
				{Round: 2, Kind: ScenarioCrashWave, Fraction: intensity},
				{Round: mid, Kind: ScenarioFlashCrowd, Fraction: 1},
				{Round: mid, Kind: ScenarioPublish},
			},
		}, nil
	case "flashcrowd":
		if intensity <= 0 {
			intensity = 0.5
		}
		cfg.AliveFraction = 1 - intensity
		cfg.FailureMode = FailStillborn
		return cfg, Scenario{
			Name:   "flashcrowd",
			Rounds: rounds,
			Events: []ScenarioEvent{
				{Round: 0, Kind: ScenarioPublish},
				{Round: mid, Kind: ScenarioFlashCrowd, Fraction: 1},
				{Round: mid, Kind: ScenarioPublish},
			},
		}, nil
	case "partition":
		return cfg, Scenario{
			Name:   "partition",
			Rounds: rounds,
			Events: []ScenarioEvent{
				{Round: 0, Kind: ScenarioPublish},
				{Round: 1, Kind: ScenarioPartition, Cells: 2},
				{Round: 2, Kind: ScenarioPublish},
				{Round: mid, Kind: ScenarioHeal},
				{Round: mid, Kind: ScenarioPublish},
			},
		}, nil
	case "lossburst":
		if intensity <= 0 {
			intensity = 0.4
		}
		return cfg, Scenario{
			Name:   "lossburst",
			Rounds: rounds,
			Events: []ScenarioEvent{
				{Round: 0, Kind: ScenarioPublish},
				{Round: 1, Kind: ScenarioLossBurst, PSucc: intensity},
				{Round: 2, Kind: ScenarioPublish},
				{Round: mid, Kind: ScenarioLossRestore},
				{Round: mid, Kind: ScenarioPublish},
			},
		}, nil
	default:
		return Config{}, Scenario{}, fmt.Errorf("sim: unknown scenario %q (want %v)", name, BuiltinScenarioNames())
	}
}

// BuiltinScenarioNames lists the scenarios BuiltinScenario accepts.
func BuiltinScenarioNames() []string {
	names := []string{"churn", "flashcrowd", "partition", "lossburst"}
	sort.Strings(names)
	return names
}
