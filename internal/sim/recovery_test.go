package sim

import (
	"context"
	"reflect"
	"testing"

	"damulticast/internal/topic"
)

// recoveryConfig builds a flat root group of n processes with
// anti-entropy recovery enabled (period 2, nothing ages out during the
// run) and every other periodic task off.
func recoveryConfig(n int, seed int64, enabled bool) Config {
	cfg := flatConfig(n, seed, 1)
	cfg.PSucc = 1
	if enabled {
		cfg.Params.RecoverPeriod = 2
		cfg.Params.RecoverMaxAge = 1000
	}
	return cfg
}

// TestRecoveryHealsPartition: a group is split before the publication,
// so one cell never sees the event in flight; best-effort gossip has
// quiesced by the time the partition heals, and only the anti-entropy
// layer can carry the event across afterwards.
func TestRecoveryHealsPartition(t *testing.T) {
	sc := Scenario{
		Name:   "partition-then-heal",
		Rounds: 30,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioPartition, Cells: 2},
			{Round: 1, Kind: ScenarioPublish},
			{Round: 8, Kind: ScenarioHeal},
		},
	}
	const seed = 7
	base, err := RunScenario(recoveryConfig(80, seed, false), sc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RunScenario(recoveryConfig(80, seed, true), sc)
	if err != nil {
		t.Fatal(err)
	}
	root := topic.Root
	if base.ReliabilityAll[root] >= 1 {
		t.Fatalf("best-effort run delivered %.3f across a partition: the miss this test needs never happened",
			base.ReliabilityAll[root])
	}
	if rec.ReliabilityAll[root] < 1 {
		t.Errorf("recovery run delivered %.3f, want 1.0 after heal (base %.3f)",
			rec.ReliabilityAll[root], base.ReliabilityAll[root])
	}
	if rec.KindTotals["recovered"] == 0 {
		t.Error("no deliveries attributed to recovery")
	}
	if rec.KindTotals["recover_msg"] == 0 {
		t.Error("no recovery wire traffic counted")
	}
}

// TestRecoveryHealsLossBurst: the publication happens inside a deep
// correlated loss burst (SetLinkDown's probabilistic sibling), so the
// epidemic dies subcritically; after the channel recovers, only
// anti-entropy retransmission completes the delivery.
func TestRecoveryHealsLossBurst(t *testing.T) {
	sc := Scenario{
		Name:   "loss-burst",
		Rounds: 30,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioLossBurst, PSucc: 0.03},
			{Round: 1, Kind: ScenarioPublish},
			{Round: 6, Kind: ScenarioLossRestore},
		},
	}
	const seed = 11
	base, err := RunScenario(recoveryConfig(100, seed, false), sc)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RunScenario(recoveryConfig(100, seed, true), sc)
	if err != nil {
		t.Fatal(err)
	}
	root := topic.Root
	if base.ReliabilityAll[root] >= 1 {
		t.Fatalf("best-effort run survived the burst with %.3f: pick a deeper burst or another seed",
			base.ReliabilityAll[root])
	}
	if rec.ReliabilityAll[root] < 1 {
		t.Errorf("recovery run delivered %.3f, want 1.0 after the burst (base %.3f)",
			rec.ReliabilityAll[root], base.ReliabilityAll[root])
	}
}

// TestRecoveryWorkerCountInvariance: a recovery-enabled scenario is
// part of the kernel determinism contract — identical Results for any
// shard count, because all recovery randomness draws from per-process
// streams.
func TestRecoveryWorkerCountInvariance(t *testing.T) {
	sc := Scenario{
		Name:   "invariance",
		Rounds: 16,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioLossBurst, PSucc: 0.3},
			{Round: 1, Kind: ScenarioPublish},
			{Round: 5, Kind: ScenarioLossRestore},
			{Round: 6, Kind: ScenarioPublish},
		},
	}
	var base *Result
	for _, workers := range []int{1, 2, 8} {
		cfg := recoveryConfig(120, 3, true)
		cfg.Workers = workers
		res, err := RunScenario(cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = res
			continue
		}
		if !reflect.DeepEqual(res, base) {
			t.Errorf("workers=%d: recovery scenario result differs from workers=1", workers)
		}
	}
}

// TestRecoveryStoreBoundedInSim: under many publications with a tiny
// store cap, no process's store ever exceeds the bound (checked after
// the run; the core-level test checks it mid-flight).
func TestRecoveryStoreBoundedInSim(t *testing.T) {
	cfg := recoveryConfig(40, 5, true)
	cfg.Params.RecoverStoreCap = 4
	sc := Scenario{Name: "flood", Rounds: 24}
	for r := 0; r < 12; r++ {
		sc.Events = append(sc.Events, ScenarioEvent{Round: r, Kind: ScenarioPublish})
	}
	runner, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range runner.Group(topic.Root) {
		if n := p.EventStoreLen(); n > 4 {
			t.Fatalf("process %s holds %d stored events > cap 4", p.ID(), n)
		}
	}
	if res.KindTotals["recover_gc"] == 0 {
		t.Error("flood never evicted a store entry")
	}
}

// TestRecoveryFigureDominatesBaseline is the figure-level acceptance
// gate: at every loss point of the "recovery" sweep the
// recovery-enabled delivery ratio is at least the best-effort
// baseline's, cross-group recovery dominates intra-only on the
// isolated-root pair (with intra provably stuck at zero), and the
// lossless edge delivers everything recovery can reach.
func TestRecoveryFigureDominatesBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full paper-topology sweep")
	}
	xs := []float64{0.2, 0.5, 0.8, 1.0}
	fig, _, err := GenerateFigure(context.Background(), "recovery", xs,
		FigureOpts{RunsPerPoint: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"base", "recovery", "root_cross", "root_intra"}
	if !reflect.DeepEqual(fig.Series, want) {
		t.Fatalf("series = %v, want %v", fig.Series, want)
	}
	for _, row := range fig.Rows {
		base, rec := row.Values["base"], row.Values["recovery"]
		if rec < base {
			t.Errorf("psucc=%.2f: recovery %.4f < baseline %.4f", row.Alive, rec, base)
		}
		intra, cross := row.Values["root_intra"], row.Values["root_cross"]
		if cross < intra {
			t.Errorf("psucc=%.2f: root_cross %.4f < root_intra %.4f", row.Alive, cross, intra)
		}
	}
	last := fig.Rows[len(fig.Rows)-1]
	if last.Values["base"] < 1 || last.Values["recovery"] < 1 {
		t.Errorf("lossless point should deliver 1.0/1.0, got %.4f/%.4f",
			last.Values["base"], last.Values["recovery"])
	}
	// The structural guarantee lives at the lossless edge: gossip
	// quiesces long before the heal, so without cross-group digests no
	// root member ever holds a copy to exchange (at lossy points the
	// epidemic can still be sputtering at heal time, and recovery-driven
	// re-dissemination inside T1 leaks upward through normal gossip).
	if intra := last.Values["root_intra"]; intra != 0 {
		t.Errorf("lossless point: root_intra = %.4f, want exactly 0", intra)
	}
	if last.Values["root_cross"] < 0.9 {
		t.Errorf("lossless point: cross-group recovery revived %.4f of the root, want >= 0.9",
			last.Values["root_cross"])
	}
}

// TestRecoveryStoreFigure is the tentpole's scaling gate: at the 100k
// head of the "recoverystore" sweep the encoded bloom digest frame
// fits the transport's 1 MiB MaxFrame with room to spare, while the
// retired raw-id digest provably cannot — the structural reason the
// v3 codec had to cap digests at 4096 ids and v4 does not.
func TestRecoveryStoreFigure(t *testing.T) {
	xs := FigureXs("recoverystore", 3)
	if got := xs[len(xs)-1]; got != 100000 {
		t.Fatalf("grid head = %g, want 100000", got)
	}
	fig, _, err := GenerateFigure(context.Background(), "recoverystore", xs,
		FigureOpts{RunsPerPoint: 1, SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"bloom_frame", "max_frame", "rawid_frame"}
	if !reflect.DeepEqual(fig.Series, want) {
		t.Fatalf("series = %v, want %v", fig.Series, want)
	}
	for _, row := range fig.Rows {
		bloom, raw := row.Values["bloom_frame"], row.Values["rawid_frame"]
		if bloom >= raw {
			t.Errorf("n=%.0f: bloom frame %.0f B >= raw-id frame %.0f B", row.Alive, bloom, raw)
		}
		if mf := row.Values["max_frame"]; mf != 1<<20 {
			t.Errorf("n=%.0f: max_frame = %.0f, want %d", row.Alive, mf, 1<<20)
		}
	}
	head := fig.Rows[len(fig.Rows)-1]
	if bloom := head.Values["bloom_frame"]; bloom > 1<<20 {
		t.Errorf("100k-event bloom digest frame = %.0f B, does not fit one MaxFrame", bloom)
	}
	if raw := head.Values["rawid_frame"]; raw <= 1<<20 {
		t.Errorf("100k-event raw-id digest frame = %.0f B, unexpectedly fits MaxFrame", raw)
	}
}

// TestRecoveryDepthFigure pins the hierarchy-depth axis: at every
// depth the isolated root group is revived by cross-group recovery
// (lossless network, so revival is structural, not statistical) while
// intra-group-only recovery leaves it at exactly zero.
func TestRecoveryDepthFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-depth hierarchy sweep")
	}
	xs := FigureXs("recoverydepth", 3) // depths 1, 2, 3
	fig, _, err := GenerateFigure(context.Background(), "recoverydepth", xs,
		FigureOpts{RunsPerPoint: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"root_cross", "root_intra"}
	if !reflect.DeepEqual(fig.Series, want) {
		t.Fatalf("series = %v, want %v", fig.Series, want)
	}
	for _, row := range fig.Rows {
		if intra := row.Values["root_intra"]; intra != 0 {
			t.Errorf("depth=%.0f: root_intra = %.4f, want exactly 0", row.Alive, intra)
		}
		if cross := row.Values["root_cross"]; cross < 0.9 {
			t.Errorf("depth=%.0f: root_cross = %.4f, want >= 0.9", row.Alive, cross)
		}
	}
}

// TestRecoveryParamsValidation: enabling recovery with broken knobs is
// rejected by config validation before a runner is built.
func TestRecoveryParamsValidation(t *testing.T) {
	cfg := recoveryConfig(10, 1, true)
	cfg.Params.RecoverFanout = -1
	if _, err := NewRunner(cfg); err == nil {
		t.Error("negative recovery fanout accepted")
	}
}
