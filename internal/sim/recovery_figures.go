package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/topic"
	"damulticast/internal/wire"
)

// This file holds the two figures that size the bloom-digest redesign
// of the anti-entropy plane: "recoverystore" (digest frame bytes vs
// store size — the scaling argument for replacing raw id lists) and
// "recoverydepth" (root revival vs hierarchy depth — the coverage
// argument for cross-group waves).

// maxWireFrame mirrors TCPTransport's default MaxFrame: the budget a
// digest frame must fit to traverse the live transport in one piece.
const maxWireFrame = 1 << 20

// syntheticStoreIDs builds n event ids shaped like live traffic:
// origins are transport addresses ("host:port" strings, which double
// as process ids in live mode) drawn from a pool of publishers, each
// with a growing sequence number.
func syntheticStoreIDs(n int) []ids.EventID {
	const publishers = 500
	out := make([]ids.EventID, n)
	for i := range out {
		p := i % publishers
		out[i] = ids.EventID{
			Origin: ids.ProcessID(fmt.Sprintf("10.%d.%d.%d:36500", p/200, p/50%4, p%50)),
			Seq:    uint64(i / publishers),
		}
	}
	return out
}

// uvarintLen is the encoded size of v as an unsigned varint.
func uvarintLen(v uint64) int {
	var buf [binary.MaxVarintLen64]byte
	return binary.PutUvarint(buf[:], v)
}

// rawIDListBytes is the wire cost the retired v3 codec paid for the
// same store: an explicit id list (count, then per id the
// length-prefixed origin and the seq varint).
func rawIDListBytes(eventIDs []ids.EventID) int {
	total := uvarintLen(uint64(len(eventIDs)))
	for _, id := range eventIDs {
		total += uvarintLen(uint64(len(id.Origin))) + len(id.Origin) + uvarintLen(id.Seq)
	}
	return total
}

// bloomSectionBytes is the wire cost of the v4 bloom digest section
// (length-prefixed filter, probe count, seed).
func bloomSectionBytes(bits []byte, k int, seed uint64) int {
	return uvarintLen(uint64(len(bits))) + len(bits) + uvarintLen(uint64(k)) + uvarintLen(seed)
}

// recoveryStoreSpec is the digest scaling figure: x sweeps the
// recovery store size (events held) log-spaced from 1e3 to 1e5, and
// the series compare the encoded MsgDigest frame under the v4 bloom
// layout against what the retired raw-id layout would have cost, next
// to the transport's 1 MiB frame ceiling. No simulation runs — the
// point function builds a real digest over synthetic ids and encodes a
// real frame, so the bytes are the codec's, not a model's. The
// headline point (enforced by TestRecoveryStoreFigure): at 100k events
// the bloom digest fits one MaxFrame with room to spare while the
// raw-id digest provably cannot, which is why v3 capped digests at
// 4096 ids (silently dropping the rest) and v4 does not have to.
func recoveryStoreSpec() figureSpec {
	return figureSpec{
		name:   "recoverystore",
		xlabel: "events in the recovery store",
		ylabel: "digest frame bytes",
		grid: func(points int) []float64 {
			if points < 2 {
				return []float64{100000}
			}
			out := make([]float64, points)
			for i := range out {
				out[i] = math.Round(1000 * math.Pow(100, float64(i)/float64(points-1)))
			}
			return out
		},
		runPoint: func(x float64, seed int64, _ int) (pointResult, error) {
			n := int(x)
			eventIDs := syntheticStoreIDs(n)
			bitsPerEntry := core.DefaultParams().RecoverDigestBits
			bits, k, truncated := core.BloomDigest(eventIDs, bitsPerEntry, uint64(seed))
			m := &core.Message{
				Type: core.MsgDigest, From: "10.0.0.1:36500",
				FromTopic: ".t1.t2", Dest: ".t1.t2", TTL: 1,
				BloomBits: bits, BloomK: k, BloomSeed: uint64(seed),
			}
			frame := wire.AppendMessage(nil, m)
			bloomFrame := len(frame)
			// The v3 frame is the same envelope with the bloom section
			// swapped for the raw id list.
			rawFrame := bloomFrame - bloomSectionBytes(bits, k, uint64(seed)) + rawIDListBytes(eventIDs)
			var trunc int64
			if truncated {
				trunc = 1
			}
			return pointResult{
				values: map[string]float64{
					"bloom_frame": float64(bloomFrame),
					"rawid_frame": float64(rawFrame),
					"max_frame":   float64(maxWireFrame),
				},
				counts: map[string]int64{"truncated_digests": trunc},
			}, nil
		},
	}
}

// recoveryDepthRounds pins the depth figure's schedule: the root is
// isolated before a round-0 publication at the bottom of the chain,
// the partition heals halfway, and the remaining rounds give the
// cross-group plane a dozen waves to climb the healed boundary.
const recoveryDepthRounds = 48

// recoveryDepthRun builds a linear topic chain of the given depth
// (root + depth groups), isolates the root before the publication,
// heals halfway, and reports how much of the root group the recovery
// plane revived.
func recoveryDepthRun(depth int, seed int64, kernelWorkers int, cross bool) (*Result, error) {
	chain, err := topic.Chain(depth, "t")
	if err != nil {
		return nil, err
	}
	groups := []GroupSpec{{Topic: topic.Root, Size: 10}}
	for i, t := range chain {
		size := 30
		if i == len(chain)-1 {
			size = 60 // the publish group at the bottom, biggest as in the paper
		}
		groups = append(groups, GroupSpec{Topic: t, Size: size})
	}
	params := core.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	params.RecoverPeriod = recoveryPeriod
	params.RecoverMaxAge = recoveryDepthRounds + 1
	if cross {
		params.CrossRecoverPeriod = recoveryPeriod
	}
	cfg := Config{
		Groups:        groups,
		Params:        params,
		PSucc:         1, // lossless: isolates the partition effect
		AliveFraction: 1,
		FailureMode:   FailNone,
		PublishTopic:  chain[len(chain)-1],
		Publications:  1,
		MaxRounds:     recoveryDepthRounds,
		Seed:          seed,
		Workers:       kernelWorkers,
	}
	sc := Scenario{
		Name:   "recovery-depth",
		Rounds: recoveryDepthRounds,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioIsolate, Topic: topic.Root},
			{Round: 0, Kind: ScenarioPublish},
			{Round: recoveryDepthRounds / 2, Kind: ScenarioHeal},
		},
	}
	return RunScenario(cfg, sc)
}

// recoveryDepthSpec is the hierarchy coverage figure: x is the topic
// chain depth (1 = root plus one subgroup), and the series compare
// root-group delivery with intra-group-only recovery ("root_intra",
// structurally 0: by heal time gossip has quiesced and no root member
// holds a copy to exchange) against cross-group recovery
// ("root_cross", revived through the bottom-up digest waves at every
// depth). TestRecoveryDepthFigure pins both at seeds.
func recoveryDepthSpec() figureSpec {
	return figureSpec{
		name:   "recoverydepth",
		xlabel: "topic hierarchy depth",
		ylabel: "fraction of root processes receiving",
		grid: func(points int) []float64 {
			if points < 1 {
				points = 1
			}
			out := make([]float64, points)
			for i := range out {
				out[i] = float64(i + 1)
			}
			return out
		},
		runPoint: func(x float64, seed int64, kernelWorkers int) (pointResult, error) {
			depth := int(x)
			intra, err := recoveryDepthRun(depth, seed, kernelWorkers, false)
			if err != nil {
				return pointResult{}, err
			}
			cross, err := recoveryDepthRun(depth, seed, kernelWorkers, true)
			if err != nil {
				return pointResult{}, err
			}
			counts := make(map[string]int64, 2*len(cross.KindTotals))
			for k, v := range intra.KindTotals {
				counts["root_intra:"+k] += v
			}
			for k, v := range cross.KindTotals {
				counts["root_cross:"+k] += v
			}
			return pointResult{
				values: map[string]float64{
					"root_intra": intra.ReliabilityAll[topic.Root],
					"root_cross": cross.ReliabilityAll[topic.Root],
				},
				counts: counts,
				rounds: intra.Rounds + cross.Rounds,
			}, nil
		},
	}
}
