package sim

import (
	"context"
	"testing"
)

// TestBaselinesWorkerCountInvariance is the determinism contract of the
// head-to-head figure: its CSV bytes must not depend on the sweep or
// kernel worker counts.
func TestBaselinesWorkerCountInvariance(t *testing.T) {
	xs := FigureXs("baselines", 2)
	var want string
	for _, w := range []int{1, 2, 8} {
		fig, _, err := GenerateFigure(context.Background(), "baselines", xs,
			FigureOpts{RunsPerPoint: 1, SweepWorkers: w, KernelWorkers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		got := fig.CSV()
		if w == 1 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("figure CSV differs between workers=1 and workers=%d:\n--- workers=1\n%s--- workers=%d\n%s", w, want, w, got)
		}
	}
}

// TestBaselinesDominance is the figure's acceptance gate: at every
// sweep point da-multicast must beat (or tie) all three §VI-E baselines
// on interested-alive reliability while spending fewer event messages
// than gossip broadcast.
func TestBaselinesDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("full dominance sweep skipped in short mode")
	}
	fig, _, err := GenerateFigure(context.Background(), "baselines", FigureXs("baselines", 4),
		FigureOpts{RunsPerPoint: 2, SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig.Rows {
		damc := row.Values["damc"]
		for _, algo := range []string{"broadcast", "multicast", "hierarchical"} {
			if base := row.Values[algo]; damc < base {
				t.Errorf("x=%.2f: damc reliability %.4f < %s %.4f", row.Alive, damc, algo, base)
			}
		}
		if dm, bm := row.Values["damc_msgs"], row.Values["broadcast_msgs"]; dm >= bm {
			t.Errorf("x=%.2f: damc %.1f event msgs not below broadcast %.1f", row.Alive, dm, bm)
		}
	}
}
