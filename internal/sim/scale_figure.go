package sim

import (
	"damulticast/internal/core"
	"damulticast/internal/scale"
)

// scaleGridFull is the canonical population sweep for the "scale"
// figure: half-decade log steps from a thousand processes to a million.
// The full simulation stack tops out around 2e4 processes on one
// machine; every point here runs on the struct-of-arrays scale kernel,
// whose per-process state is bounded by scale.BudgetBytesPerProcess.
var scaleGridFull = []float64{1_000, 3_162, 10_000, 31_623, 100_000, 316_228, 1_000_000}

// scaleGrid truncates the canonical sweep to the requested point count
// (so CI's fast pass can stop at 1e5 with -points 5 while the default
// -points 10 includes the million-process point).
func scaleGrid(points int) []float64 {
	if points < 1 {
		points = 1
	}
	if points > len(scaleGridFull) {
		points = len(scaleGridFull)
	}
	out := make([]float64, points)
	copy(out, scaleGridFull[:points])
	return out
}

// scaleGroups scales the paper's 1:10:100 three-level topology to n
// total processes: the T2 leaf group keeps ~100/111 of the population,
// T1 ~10/111, the root ~1/111 — the same shape as PaperConfig at
// n=1110, held constant as n grows.
func scaleGroups(n int) []scale.GroupSpec {
	t0, t1, t2 := PaperTopics()
	n0 := n / 111
	if n0 < 2 {
		n0 = 2
	}
	n1 := n * 10 / 111
	if n1 < 4 {
		n1 = 4
	}
	n2 := n - n0 - n1
	if n2 < 4 {
		n2 = 4
	}
	return []scale.GroupSpec{
		{Topic: t0, Size: n0},
		{Topic: t1, Size: n1},
		{Topic: t2, Size: n2},
	}
}

// scaleSpec is the million-process scaling figure: x is the total
// population, swept over scaleGrid on the scale kernel (not the full
// simulation stack). Series: per-group delivery reliability under the
// paper's lossy channel, plus two per-process cost curves — events sent
// and self-accounted state bytes — which should stay near-flat (they
// grow only with ln of the group size) while x spans three decades.
func scaleSpec() figureSpec {
	return figureSpec{
		name:   "scale",
		xlabel: "total processes",
		ylabel: "fraction receiving / per-process cost",
		grid:   scaleGrid,
		runPoint: func(x float64, seed int64, kernelWorkers int) (pointResult, error) {
			n := int(x)
			_, _, t2 := PaperTopics()
			cfg := scale.Config{
				Groups:       scaleGroups(n),
				Params:       core.DefaultParams(),
				PSucc:        0.85,
				PublishTopic: t2,
				Publications: 1,
				MaxRounds:    200,
				Seed:         seed,
				Workers:      kernelWorkers,
			}
			res, err := scale.Run(cfg)
			if err != nil {
				return pointResult{}, err
			}
			values := map[string]float64{
				"events_per_proc":      float64(res.TotalEvents) / float64(n),
				"state_bytes_per_proc": res.BytesPerProcess(n),
			}
			for t, rel := range res.Reliability {
				values[groupSeriesName(t)] = rel
			}
			return pointResult{values: values, counts: res.KindTotals, rounds: res.Rounds}, nil
		},
	}
}
