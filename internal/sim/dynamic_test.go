package sim

import (
	"testing"

	"damulticast/internal/core"
	"damulticast/internal/topic"
)

// The paper's figure runs freeze the membership ("pessimistically, we
// assume that the membership algorithm does not replace a failed
// process"). These tests exercise the opposite regime — periodic
// shuffles and link maintenance enabled inside the simulator — to show
// the full protocol also runs under the round harness and that
// dynamic membership does not break the figures' invariants.

func dynamicConfig(alive float64, seed int64) Config {
	t0, t1, t2 := PaperTopics()
	params := core.DefaultParams()
	params.ShufflePeriod = 2
	params.MaintainPeriod = 4
	params.MaxAge = 30
	return Config{
		Groups: []GroupSpec{
			{Topic: t0, Size: 5},
			{Topic: t1, Size: 15},
			{Topic: t2, Size: 40},
		},
		Params:        params,
		PSucc:         0.95,
		AliveFraction: alive,
		FailureMode:   FailStillborn,
		PublishTopic:  t2,
		Publications:  1,
		MaxRounds:     60,
		Seed:          seed,
	}
}

func TestDynamicMembershipRunsAndDelivers(t *testing.T) {
	res, err := Run(dynamicConfig(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	_, _, t2 := PaperTopics()
	if res.Reliability[t2] < 0.9 {
		t.Errorf("T2 reliability = %g with dynamic membership", res.Reliability[t2])
	}
	if res.Parasites != 0 {
		t.Errorf("parasites = %d", res.Parasites)
	}
	// Control traffic (shuffles, pings) must be counted separately
	// from event traffic.
	reg := func() int64 {
		r, err := NewRunner(dynamicConfig(1, 5))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
		var control int64
		for k, v := range r.Registry().Snapshot() {
			if k.Kind.String() == "control" {
				control += v
			}
		}
		return control
	}()
	if reg == 0 {
		t.Error("no control messages despite shuffling enabled")
	}
}

func TestDynamicMembershipSurvivesFailures(t *testing.T) {
	// With maintenance on, moderate stillborn failures must still let
	// most alive T2 members receive (the membership keeps views fresh
	// even though dead entries linger in seeded tables).
	var rel float64
	const runs = 5
	_, _, t2 := PaperTopics()
	for seed := int64(0); seed < runs; seed++ {
		res, err := Run(dynamicConfig(0.7, 50+seed))
		if err != nil {
			t.Fatal(err)
		}
		rel += res.Reliability[t2]
	}
	rel /= runs
	if rel < 0.75 {
		t.Errorf("mean T2 reliability under churn = %g", rel)
	}
}

func TestDynamicDoesNotLeakEventsAcrossBranches(t *testing.T) {
	// Add a disjoint branch; even with shuffles and bootstrap searches
	// running, its members must receive nothing.
	cfg := dynamicConfig(1, 9)
	cfg.Groups = append(cfg.Groups, GroupSpec{Topic: topic.MustParse(".iso"), Size: 10})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Parasites != 0 {
		t.Fatalf("parasites = %d", res.Parasites)
	}
	if got := res.Reliability[topic.MustParse(".iso")]; got != 0 {
		t.Errorf("disjoint branch delivery = %g", got)
	}
}
