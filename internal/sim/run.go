package sim

import (
	"fmt"
	"math/rand"
	"slices"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/metrics"
	"damulticast/internal/simnet"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Result aggregates one run's measurements.
type Result struct {
	// Intra maps each group to the number of event messages sent
	// within it (Fig. 8's y-axis).
	Intra map[topic.Topic]int64
	// Inter maps src->dst group links to event messages sent across
	// them (Fig. 9's y-axis).
	Inter map[[2]topic.Topic]int64
	// DeliveredAlive counts alive processes per group that received
	// the event (averaged over publications).
	DeliveredAlive map[topic.Topic]float64
	// Alive counts alive processes per group (publisher included).
	Alive map[topic.Topic]int
	// Size is the configured group size.
	Size map[topic.Topic]int
	// Reliability is DeliveredAlive / Alive per group, counting the
	// publisher as trivially reached: the protocol-level reliability
	// of §VI-D measured over processes that could receive at all.
	Reliability map[topic.Topic]float64
	// ReliabilityAll is DeliveredAlive / Size: the fraction of ALL
	// group members (failed ones included) that received the event —
	// the y-axis of Figs. 10-11 ("percentage of processes receiving a
	// message"), which is why those curves track the alive fraction.
	ReliabilityAll map[topic.Topic]float64
	// AllAliveReached reports whether every alive process of the
	// group received every publication (the paper's strict
	// "reliability" event of §VI-D).
	AllAliveReached map[topic.Topic]bool
	// FirstDeliveryRound maps each group to the simulation round of
	// its earliest delivery (gossip latency in rounds; 0 when the
	// group never received). The paper does not plot latency, but it
	// is the standard companion metric for epidemic dissemination and
	// the ablation benches report it.
	FirstDeliveryRound map[topic.Topic]int
	// Parasites counts deliveries to uninterested processes
	// (invariantly 0 for daMulticast).
	Parasites int64
	// TotalEvents is the total number of event messages sent.
	TotalEvents int64
	// KindTotals sums every metrics counter by kind name (intra,
	// inter, delivered, parasite, control, dropped) across all groups
	// — the per-kind counts experiment run reports record.
	KindTotals map[string]int64
	// Rounds is how many rounds ran before quiescence.
	Rounds int
}

// node adapts a core.Process to the simnet kernel.
type node struct {
	proc *core.Process
	env  *nodeEnv
}

func (n *node) ID() ids.ProcessID { return n.proc.ID() }
func (n *node) Tick()             { n.proc.Tick() }
func (n *node) HandleMessage(msg any) {
	if m, ok := msg.(*core.Message); ok {
		n.proc.HandleMessage(m)
	}
}

// nodeEnv implements core.Env on the kernel. Each process owns a
// private random stream (derived from the run seed and its id) and a
// private delivery buffer, so HandleMessage can run on any shard
// goroutine without contending on shared state; the Runner flushes the
// buffers serially in insertion order at the end of every round.
type nodeEnv struct {
	id      ids.ProcessID
	net     *simnet.Network
	overlay *[]ids.ProcessID
	rng     *rand.Rand
	pending []*core.Event // deliveries buffered during the round phase
}

func (e *nodeEnv) Send(to ids.ProcessID, m *core.Message) { e.net.Send(e.id, to, m) }

// SendBatch implements core.SendBatcher. The kernel carries messages
// by reference, so batching is just the per-target loop — but routing
// fan-outs through here keeps the sim on the exact code path the live
// runtime uses, loss coins drawn in the same per-target order.
func (e *nodeEnv) SendBatch(targets []ids.ProcessID, m *core.Message) {
	for _, to := range targets {
		e.net.Send(e.id, to, m)
	}
}
func (e *nodeEnv) Deliver(ev *core.Event) { e.pending = append(e.pending, ev) }
func (e *nodeEnv) Rand() *rand.Rand       { return e.rng }
func (e *nodeEnv) Neighborhood(k int) []ids.ProcessID {
	return xrand.SampleIDs(e.rng, *e.overlay, k)
}

// Runner holds a fully built simulation, exposed so tests and ablation
// benches can poke at intermediate state. Most callers use Run.
type Runner struct {
	cfg     Config
	net     *simnet.Network
	reg     *metrics.Registry
	groups  map[topic.Topic][]*core.Process
	byID    map[ids.ProcessID]*core.Process
	topicOf map[ids.ProcessID]topic.Topic
	overlay []ids.ProcessID
	envs    []*nodeEnv // insertion order, for deterministic delivery flush
	// received[eventID][process] marks deliveries.
	received map[ids.EventID]map[ids.ProcessID]bool
	// firstRound[group] is the earliest round any member delivered.
	firstRound map[topic.Topic]int
	pubCount   uint64
	// harvested guards the one-shot fold of per-process recovery
	// counters into the registry (collect may run more than once on a
	// Runner tests poke at).
	harvested bool
}

// NewRunner builds the network per cfg: groups of processes with
// statically initialized topic tables (size (b+1)·ln(S), random group
// mates) and supertopic tables (z random members of the nearest
// configured supergroup), exactly like the paper's simulator setup.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &Runner{
		cfg:        cfg,
		net:        simnet.New(cfg.Seed),
		reg:        metrics.NewRegistry(),
		groups:     make(map[topic.Topic][]*core.Process, len(cfg.Groups)),
		byID:       make(map[ids.ProcessID]*core.Process),
		topicOf:    make(map[ids.ProcessID]topic.Topic),
		received:   make(map[ids.EventID]map[ids.ProcessID]bool),
		firstRound: make(map[topic.Topic]int),
	}
	r.net.PSucc = cfg.PSucc
	r.net.OnSend = r.onSend
	r.net.OnRoundEnd = r.flushDeliveries
	r.net.Workers = cfg.Workers

	// Periodic protocol tasks only matter when the config enables
	// them; the paper's figure runs use static tables.
	r.net.TickNodes = cfg.Params.ShufflePeriod > 0 || cfg.Params.MaintainPeriod > 0 ||
		cfg.Params.RecoverPeriod > 0

	// Create processes.
	for _, g := range cfg.Groups {
		params := cfg.Params
		params.GroupSizeHint = g.Size
		for i := 0; i < g.Size; i++ {
			id := ids.Indexed(string(g.Topic), i)
			env := &nodeEnv{
				id:      id,
				net:     r.net,
				overlay: &r.overlay,
				rng:     xrand.NewStream(cfg.Seed, "proc:"+string(id)),
			}
			proc, err := core.NewProcess(id, g.Topic, params, env)
			if err != nil {
				return nil, err
			}
			r.groups[g.Topic] = append(r.groups[g.Topic], proc)
			r.byID[id] = proc
			r.topicOf[id] = g.Topic
			r.overlay = append(r.overlay, id)
			r.envs = append(r.envs, env)
			if err := r.net.AddNode(&node{proc: proc, env: env}); err != nil {
				return nil, err
			}
		}
	}

	// Static table initialization.
	rng := r.net.Rand()
	for _, g := range cfg.Groups {
		members := r.groups[g.Topic]
		memberIDs := make([]ids.ProcessID, len(members))
		for i, p := range members {
			memberIDs[i] = p.ID()
		}
		tableCap := xrand.ViewSize(g.Size, cfg.Params.B)
		superTopic, superIDs := r.nearestSupergroup(g.Topic)
		for _, p := range members {
			p.SetTopicTableCap(tableCap)
			p.SeedTopicTable(sampleOthers(rng, memberIDs, p.ID(), tableCap))
			if superTopic != "" {
				p.SeedSuperTable(superTopic, xrand.SampleIDs(rng, superIDs, cfg.Params.Z))
			}
		}
	}

	// Failure installation.
	switch cfg.FailureMode {
	case FailStillborn:
		r.installStillborn()
	case FailPerObserver:
		pFail := 1 - cfg.AliveFraction
		r.net.SetPairDown(simnet.PairDownCoin(cfg.Seed+1, pFail))
	}
	return r, nil
}

// nearestSupergroup finds the deepest configured group whose topic
// strictly includes t (the topic that "induces" t), with its members.
// Depth ties break to the lexicographically smallest topic so the
// choice never depends on map iteration order.
func (r *Runner) nearestSupergroup(t topic.Topic) (topic.Topic, []ids.ProcessID) {
	cands := make([]topic.Topic, 0, len(r.groups))
	for gt := range r.groups {
		if gt.StrictlyIncludes(t) {
			cands = append(cands, gt)
		}
	}
	slices.Sort(cands)
	best := topic.Topic("")
	for _, gt := range cands {
		if best == "" || gt.Depth() > best.Depth() {
			best = gt
		}
	}
	if best == "" {
		return "", nil
	}
	members := r.groups[best]
	out := make([]ids.ProcessID, len(members))
	for i, p := range members {
		out[i] = p.ID()
	}
	return best, out
}

// sampleOthers samples up to k ids from pool excluding self.
func sampleOthers(rng *rand.Rand, pool []ids.ProcessID, self ids.ProcessID, k int) []ids.ProcessID {
	return xrand.SampleExcluding(rng, pool, k, map[ids.ProcessID]struct{}{self: {}})
}

// installStillborn fails floor((1-alive)·S) processes per group at
// time zero. Failed processes stay in others' tables ("pessimistically,
// we assume that the membership algorithm does not replace a failed
// process").
func (r *Runner) installStillborn() {
	rng := r.net.Rand()
	// Iterate the config slice, not the groups map: map order would
	// consume the RNG nondeterministically across runs.
	for _, g := range r.cfg.Groups {
		members := r.groups[g.Topic]
		nFail := int(float64(len(members)) * (1 - r.cfg.AliveFraction))
		perm := rng.Perm(len(members))
		for i := 0; i < nFail && i < len(members); i++ {
			p := members[perm[i]]
			p.Stop()
			if err := r.net.Crash(p.ID()); err != nil {
				panic(err) // node was just added; cannot fail
			}
		}
	}
}

// onSend classifies and counts every message attempt.
func (r *Runner) onSend(env simnet.Envelope, dropped bool) {
	m, ok := env.Msg.(*core.Message)
	if !ok {
		return
	}
	src, dst := r.topicOf[env.From], r.topicOf[env.To]
	switch {
	case m.Type == core.MsgEvent:
		if src == dst {
			r.reg.IncIntra(src)
		} else {
			r.reg.IncInter(src, dst)
		}
	case m.Type.IsRecovery():
		r.reg.IncRecoverMsg(src)
	default:
		r.reg.IncControl(src)
	}
	if dropped {
		r.reg.IncDropped(src)
	}
}

// flushDeliveries drains every node's buffered deliveries serially in
// insertion order at the end of a round — the only point where the
// shared tracking maps are written, so the parallel phase stays
// race-free and the recorded order is canonical for any worker count.
func (r *Runner) flushDeliveries(round int) {
	for _, e := range r.envs {
		for _, ev := range e.pending {
			r.recordDeliver(e.id, ev, round)
		}
		e.pending = e.pending[:0]
	}
}

// recordDeliver records one delivery and checks the no-parasite
// invariant.
func (r *Runner) recordDeliver(id ids.ProcessID, ev *core.Event, round int) {
	gt := r.topicOf[id]
	if !gt.Includes(ev.Topic) {
		r.reg.IncParasite(gt)
		return
	}
	r.reg.IncDelivered(gt)
	if set, ok := r.received[ev.ID]; ok {
		set[id] = true
	}
	if _, ok := r.firstRound[gt]; !ok {
		r.firstRound[gt] = round
	}
}

// PublishFrom makes a random alive member of the publish group publish
// one event, returning its id for tracking. Deliveries only occur when
// the network is subsequently stepped, so registering the tracking set
// right after Publish is race-free.
func (r *Runner) PublishFrom(rng *rand.Rand) (ids.EventID, error) {
	return r.publishFromGroup(r.cfg.PublishTopic, rng)
}

// publishFromGroup publishes one event from a random alive member of
// the given group.
func (r *Runner) publishFromGroup(t topic.Topic, rng *rand.Rand) (ids.EventID, error) {
	members := r.groups[t]
	alive := make([]*core.Process, 0, len(members))
	for _, p := range members {
		if !p.Stopped() {
			alive = append(alive, p)
		}
	}
	if len(alive) == 0 {
		return ids.EventID{}, fmt.Errorf("sim: no alive publisher in %s", t)
	}
	pub := alive[rng.Intn(len(alive))]
	r.pubCount++
	ev, err := pub.Publish([]byte(fmt.Sprintf("event-%d", r.pubCount)))
	if err != nil {
		return ids.EventID{}, err
	}
	// The publisher counts as trivially reached.
	r.received[ev.ID] = map[ids.ProcessID]bool{pub.ID(): true}
	return ev.ID, nil
}

// Run executes the configured experiment and aggregates the result.
func Run(cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.Run()
}

// Run performs the publications and drives the network to quiescence.
func (r *Runner) Run() (*Result, error) {
	cfg := r.cfg
	pubs := cfg.Publications
	if pubs <= 0 {
		pubs = 1
	}
	rng := r.net.Rand()
	totalRounds := 0
	evs := make([]ids.EventID, 0, pubs)
	for i := 0; i < pubs; i++ {
		id, err := r.PublishFrom(rng)
		if err != nil {
			return nil, err
		}
		evs = append(evs, id)
		totalRounds += r.net.Run(cfg.MaxRounds)
	}
	return r.collect(evs, totalRounds), nil
}

// harvestRecoveryStats folds the per-process recovery counters into
// the registry (once, at collection time) so they surface in Rows,
// KindTotals and run reports like every other counter.
func (r *Runner) harvestRecoveryStats() {
	if r.cfg.Params.RecoverPeriod <= 0 || r.harvested {
		return
	}
	r.harvested = true
	for _, g := range r.cfg.Groups {
		var recovered, suppressed, gcd, truncated int64
		for _, p := range r.groups[g.Topic] {
			st := p.RecoveryStats()
			recovered += int64(st.Recovered)
			suppressed += int64(st.Suppressed)
			gcd += int64(st.GCd)
			truncated += int64(st.Truncated)
		}
		if recovered > 0 {
			r.reg.AddRecovered(g.Topic, recovered)
		}
		if suppressed > 0 {
			r.reg.AddRecoverSupp(g.Topic, suppressed)
		}
		if gcd > 0 {
			r.reg.AddRecoverGC(g.Topic, gcd)
		}
		if truncated > 0 {
			r.reg.AddRecoverTrunc(g.Topic, truncated)
		}
	}
}

func (r *Runner) collect(evs []ids.EventID, rounds int) *Result {
	r.harvestRecoveryStats()
	res := &Result{
		Intra:              make(map[topic.Topic]int64),
		Inter:              make(map[[2]topic.Topic]int64),
		DeliveredAlive:     make(map[topic.Topic]float64),
		Alive:              make(map[topic.Topic]int),
		Size:               make(map[topic.Topic]int),
		Reliability:        make(map[topic.Topic]float64),
		ReliabilityAll:     make(map[topic.Topic]float64),
		AllAliveReached:    make(map[topic.Topic]bool),
		FirstDeliveryRound: make(map[topic.Topic]int, len(r.firstRound)),
		KindTotals:         make(map[string]int64),
		Rounds:             rounds,
	}
	// One merged pass over the sharded registry feeds all three
	// aggregate fields.
	for _, row := range r.reg.Rows() {
		res.KindTotals[row.Key.Kind.String()] += row.Value
		switch row.Key.Kind {
		case metrics.Parasite:
			res.Parasites += row.Value
		case metrics.IntraGroup, metrics.InterGroup:
			res.TotalEvents += row.Value
		}
	}
	for gt, round := range r.firstRound {
		res.FirstDeliveryRound[gt] = round
	}
	for _, g := range r.cfg.Groups {
		res.Size[g.Topic] = g.Size
		res.Intra[g.Topic] = r.reg.Intra(g.Topic)
		alive := 0
		for _, p := range r.groups[g.Topic] {
			if !p.Stopped() {
				alive++
			}
		}
		res.Alive[g.Topic] = alive

		// Average received fraction over publications; strict
		// all-reached over all publications.
		allReached := true
		var fracSum float64
		for _, evID := range evs {
			got := 0
			for _, p := range r.groups[g.Topic] {
				if !p.Stopped() && r.received[evID][p.ID()] {
					got++
				}
			}
			if alive > 0 {
				fracSum += float64(got) / float64(alive)
				if got < alive {
					allReached = false
				}
			}
		}
		if n := len(evs); n > 0 && alive > 0 {
			res.DeliveredAlive[g.Topic] = fracSum / float64(n) * float64(alive)
			res.Reliability[g.Topic] = fracSum / float64(n)
			res.ReliabilityAll[g.Topic] = res.DeliveredAlive[g.Topic] / float64(g.Size)
		}
		res.AllAliveReached[g.Topic] = allReached && alive > 0
	}
	for src := range r.groups {
		for dst := range r.groups {
			if src == dst {
				continue
			}
			if v := r.reg.Inter(src, dst); v > 0 {
				res.Inter[[2]topic.Topic{src, dst}] += v
			}
		}
	}
	return res
}

// Registry exposes the metrics registry (for tests and benches).
func (r *Runner) Registry() *metrics.Registry { return r.reg }

// Group returns the processes of one group (for tests).
func (r *Runner) Group(t topic.Topic) []*core.Process { return r.groups[t] }
