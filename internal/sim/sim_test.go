package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"damulticast/internal/core"
	"damulticast/internal/topic"
)

// smallConfig is a fast three-level chain for unit tests.
func smallConfig(alive float64, seed int64) Config {
	t0, t1, t2 := PaperTopics()
	params := core.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	return Config{
		Groups: []GroupSpec{
			{Topic: t0, Size: 5},
			{Topic: t1, Size: 20},
			{Topic: t2, Size: 60},
		},
		Params:        params,
		PSucc:         0.95,
		AliveFraction: alive,
		FailureMode:   FailStillborn,
		PublishTopic:  t2,
		Publications:  1,
		MaxRounds:     100,
		Seed:          seed,
	}
}

func TestConfigValidate(t *testing.T) {
	t0, t1, t2 := PaperTopics()
	good := smallConfig(1, 1)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr error
	}{
		{"no groups", func(c *Config) { c.Groups = nil }, ErrNoGroups},
		{"bad size", func(c *Config) { c.Groups[0].Size = 0 }, ErrBadSize},
		{"bad psucc low", func(c *Config) { c.PSucc = 0 }, ErrBadPSucc},
		{"bad psucc high", func(c *Config) { c.PSucc = 1.5 }, ErrBadPSucc},
		{"bad alive", func(c *Config) { c.AliveFraction = -0.1 }, ErrBadAlive},
		{"no publisher", func(c *Config) { c.PublishTopic = ".nope" }, ErrNoPublisher},
		{"bad mode", func(c *Config) { c.FailureMode = 0 }, ErrBadMode},
		{"dup topic", func(c *Config) { c.Groups[1].Topic = c.Groups[0].Topic }, ErrDupGroupTopic},
	}
	for _, tc := range cases {
		cfg := smallConfig(1, 1)
		tc.mutate(&cfg)
		if err := cfg.Validate(); !errors.Is(err, tc.wantErr) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.wantErr)
		}
	}
	_ = t0
	_ = t1
	_ = t2
	// Invalid core params bubble up.
	cfg := smallConfig(1, 1)
	cfg.Params.Z = 0
	if err := cfg.Validate(); err == nil {
		t.Error("invalid params accepted")
	}
	// Invalid group topic.
	cfg = smallConfig(1, 1)
	cfg.Groups[0].Topic = "junk"
	if err := cfg.Validate(); err == nil {
		t.Error("invalid group topic accepted")
	}
}

func TestFailureModeString(t *testing.T) {
	if FailNone.String() != "none" || FailStillborn.String() != "stillborn" ||
		FailPerObserver.String() != "per-observer" {
		t.Error("mode names wrong")
	}
	if !strings.Contains(FailureMode(9).String(), "9") {
		t.Error("unknown mode string")
	}
}

func TestPaperConfig(t *testing.T) {
	cfg := PaperConfig(0.8, 42)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	sizes := map[int]bool{}
	for _, g := range cfg.Groups {
		sizes[g.Size] = true
	}
	for _, want := range []int{10, 100, 1000} {
		if !sizes[want] {
			t.Errorf("missing group size %d", want)
		}
	}
	if cfg.PSucc != 0.85 {
		t.Errorf("PSucc = %g", cfg.PSucc)
	}
	if cfg.Params.B != 3 || cfg.Params.C != 5 || cfg.Params.G != 5 ||
		cfg.Params.A != 1 || cfg.Params.Z != 3 {
		t.Errorf("params deviate from §VII-A: %+v", cfg.Params)
	}
}

func TestRunNoFailuresFullReliability(t *testing.T) {
	cfg := smallConfig(1, 7)
	cfg.FailureMode = FailNone
	cfg.PSucc = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tp, rel := range res.Reliability {
		if rel != 1 {
			t.Errorf("group %s reliability = %g, want 1 (lossless, no failures)", tp, rel)
		}
		if !res.AllAliveReached[tp] {
			t.Errorf("group %s not fully reached", tp)
		}
	}
	if res.Parasites != 0 {
		t.Errorf("parasites = %d", res.Parasites)
	}
	if res.TotalEvents == 0 {
		t.Error("no events counted")
	}
	if res.Rounds == 0 {
		t.Error("no rounds ran")
	}
	// Latency: the publish group delivers first (round 1); supergroups
	// strictly later, in hierarchy order.
	t0, t1, t2 := PaperTopics()
	r2, ok2 := res.FirstDeliveryRound[t2]
	r1, ok1 := res.FirstDeliveryRound[t1]
	r0, ok0 := res.FirstDeliveryRound[t0]
	if !ok2 || !ok1 || !ok0 {
		t.Fatalf("missing first-delivery rounds: %v", res.FirstDeliveryRound)
	}
	if r2 != 1 {
		t.Errorf("publish group first delivery at round %d, want 1", r2)
	}
	if !(r2 <= r1 && r1 <= r0) {
		t.Errorf("latency not ordered up the hierarchy: T2=%d T1=%d T0=%d", r2, r1, r0)
	}
}

func TestRunIntraScalesWithGroupSize(t *testing.T) {
	cfg := smallConfig(1, 3)
	cfg.FailureMode = FailNone
	cfg.PSucc = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, t1, t2 := PaperTopics()
	// S·(ln S + c): T2 (60 processes) must send far more than T1 (20).
	if res.Intra[t2] <= res.Intra[t1] {
		t.Errorf("intra T2 (%d) <= intra T1 (%d)", res.Intra[t2], res.Intra[t1])
	}
	// Rough magnitude: between S·lnS and 1.3·S·(ln S + c).
	s := 60.0
	upper := 1.3 * s * (math.Log(s) + 5)
	if got := float64(res.Intra[t2]); got < s || got > upper {
		t.Errorf("intra T2 = %g outside [%g, %g]", got, s, upper)
	}
}

func TestRunInterGroupLinksExist(t *testing.T) {
	cfg := smallConfig(1, 5)
	cfg.FailureMode = FailNone
	cfg.PSucc = 1
	// Boost g so upward election is near-certain even in small groups.
	cfg.Params.G = 1000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t0, t1, t2 := PaperTopics()
	if res.Inter[[2]topic.Topic{t2, t1}] == 0 {
		t.Error("no T2->T1 events")
	}
	if res.Inter[[2]topic.Topic{t1, t0}] == 0 {
		t.Error("no T1->T0 events")
	}
	// Events never flow downward.
	if res.Inter[[2]topic.Topic{t1, t2}] != 0 || res.Inter[[2]topic.Topic{t0, t1}] != 0 {
		t.Error("events flowed downward")
	}
}

func TestRunStillbornReducesMessages(t *testing.T) {
	full, err := Run(smallConfig(1, 11))
	if err != nil {
		t.Fatal(err)
	}
	half, err := Run(smallConfig(0.5, 11))
	if err != nil {
		t.Fatal(err)
	}
	if half.TotalEvents >= full.TotalEvents {
		t.Errorf("half-alive events (%d) >= full (%d)", half.TotalEvents, full.TotalEvents)
	}
	_, _, t2 := PaperTopics()
	if half.Alive[t2] >= full.Alive[t2] {
		t.Errorf("alive counts wrong: %d vs %d", half.Alive[t2], full.Alive[t2])
	}
}

func TestRunPerObserverBeatsStillborn(t *testing.T) {
	// At the same nominal failure level, the weakly consistent model
	// must yield (weakly) better reliability: processes are actually
	// alive and reachable through other observers (Fig. 11 vs 10).
	const alive = 0.5
	var relStill, relObs float64
	const runs = 5
	_, _, t2 := PaperTopics()
	for seed := int64(0); seed < runs; seed++ {
		s, err := Run(smallConfig(alive, 100+seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg := smallConfig(alive, 100+seed)
		cfg.FailureMode = FailPerObserver
		o, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		relStill += s.ReliabilityAll[t2]
		relObs += o.ReliabilityAll[t2]
	}
	if relObs < relStill {
		t.Errorf("per-observer reliability (%g) < stillborn (%g)", relObs/runs, relStill/runs)
	}
}

func TestRunNeverProducesParasites(t *testing.T) {
	for _, alive := range []float64{0.3, 0.7, 1.0} {
		for seed := int64(0); seed < 3; seed++ {
			res, err := Run(smallConfig(alive, seed))
			if err != nil {
				t.Fatal(err)
			}
			if res.Parasites != 0 {
				t.Fatalf("alive=%g seed=%d: %d parasites", alive, seed, res.Parasites)
			}
		}
	}
}

func TestRunMultiplePublications(t *testing.T) {
	cfg := smallConfig(1, 9)
	cfg.FailureMode = FailNone
	cfg.PSucc = 1
	cfg.Publications = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(func() Config {
		c := smallConfig(1, 9)
		c.FailureMode = FailNone
		c.PSucc = 1
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	// Three publications send roughly three times the messages.
	lo, hi := 2*single.TotalEvents, 4*single.TotalEvents
	if res.TotalEvents < lo || res.TotalEvents > hi {
		t.Errorf("3 pubs = %d events, single = %d", res.TotalEvents, single.TotalEvents)
	}
	for tp, rel := range res.Reliability {
		if rel != 1 {
			t.Errorf("group %s reliability = %g", tp, rel)
		}
	}
}

func TestRunZeroAliveFails(t *testing.T) {
	cfg := smallConfig(0, 1)
	if _, err := Run(cfg); err == nil {
		t.Error("run with zero alive publishers succeeded")
	}
}

func TestRunnerAccessors(t *testing.T) {
	r, err := NewRunner(smallConfig(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	_, _, t2 := PaperTopics()
	if len(r.Group(t2)) != 60 {
		t.Errorf("group size = %d", len(r.Group(t2)))
	}
	if r.Registry() == nil {
		t.Error("nil registry")
	}
	// Table sizing: (b+1)·ln(60) = 4·4.09 = 16.4 -> 17.
	p := r.Group(t2)[0]
	if got := len(p.TopicTable()); got != 17 {
		t.Errorf("topic table size = %d, want 17", got)
	}
	if got := len(p.SuperTable()); got != 3 {
		t.Errorf("super table size = %d, want z=3", got)
	}
	if p.SuperKnownTopic().Depth() != 1 {
		t.Errorf("super topic = %s", p.SuperKnownTopic())
	}
}

func TestRunnerSkipsMissingIntermediateGroup(t *testing.T) {
	// Hierarchy with a hole: .t1.t2 exists, .t1 does not, root does.
	// T2's supergroup must resolve to the root (nearest inducing topic).
	t0, _, t2 := PaperTopics()
	params := core.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	cfg := Config{
		Groups: []GroupSpec{
			{Topic: t0, Size: 5},
			{Topic: t2, Size: 20},
		},
		Params:        params,
		PSucc:         1,
		AliveFraction: 1,
		FailureMode:   FailNone,
		PublishTopic:  t2,
		MaxRounds:     50,
		Seed:          4,
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := r.Group(t2)[0]
	if p.SuperKnownTopic() != t0 {
		t.Errorf("super topic = %s, want root", p.SuperKnownTopic())
	}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability[t0] == 0 {
		t.Error("root group unreachable across the hole")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(smallConfig(0.6, 77))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig(0.6, 77))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalEvents != b.TotalEvents {
		t.Errorf("non-deterministic: %d vs %d events", a.TotalEvents, b.TotalEvents)
	}
	for tp := range a.Reliability {
		if a.Reliability[tp] != b.Reliability[tp] {
			t.Errorf("non-deterministic reliability for %s", tp)
		}
	}
}

func TestDefaultAliveFractions(t *testing.T) {
	fs := DefaultAliveFractions()
	if len(fs) != 10 {
		t.Fatalf("len = %d", len(fs))
	}
	if math.Abs(fs[0]-0.1) > 1e-9 || math.Abs(fs[9]-1.0) > 1e-9 {
		t.Errorf("range = [%g, %g]", fs[0], fs[9])
	}
}

func TestFigureSweepsSmall(t *testing.T) {
	// Use tiny sweeps over the small config by temporarily running the
	// real figure code paths on two alive fractions (the paper-size
	// config is exercised by the benchmarks).
	alives := []float64{0.5, 1.0}
	fig8, err := Figure8(alives, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig8.Rows) != 2 || len(fig8.Series) != 3 {
		t.Errorf("fig8 rows=%d series=%v", len(fig8.Rows), fig8.Series)
	}
	// T2 sends the most messages (largest group).
	last := fig8.Rows[1].Values
	if !(last["T2"] > last["T1"] && last["T1"] > last["T0"]) {
		t.Errorf("fig8 ordering broken: %v", last)
	}
	csv := fig8.CSV()
	if !strings.HasPrefix(csv, "alive,T0,T1,T2\n") {
		t.Errorf("csv header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("csv lines = %d", lines)
	}

	fig9, err := Figure9(alives, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig9.Series) == 0 {
		t.Error("fig9 has no series")
	}
	for _, s := range fig9.Series {
		if !strings.Contains(s, "->") {
			t.Errorf("fig9 series %q not a link", s)
		}
	}

	fig10, err := Figure10(alives, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range fig10.Rows {
		for s, v := range row.Values {
			if v < 0 || v > 1 {
				t.Errorf("fig10 %s at %g = %g outside [0,1]", s, row.Alive, v)
			}
		}
	}
	// Full-alive reliability should be high for T2.
	if v := fig10.Rows[1].Values["T2"]; v < 0.9 {
		t.Errorf("fig10 T2 at alive=1 = %g", v)
	}

	fig11, err := Figure11(alives, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Weakly consistent failures beat stillborn at alive=0.5 for T2.
	if fig11.Rows[0].Values["T2"] < fig10.Rows[0].Values["T2"]-0.05 {
		t.Errorf("fig11 (%g) worse than fig10 (%g) at alive=0.5",
			fig11.Rows[0].Values["T2"], fig10.Rows[0].Values["T2"])
	}
}
