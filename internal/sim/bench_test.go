package sim

import (
	"fmt"
	"testing"

	"damulticast/internal/topic"
)

// Large-scale benchmarks for the sharded kernel: single-topic
// dissemination and dynamic scenarios at 20k-50k processes, far beyond
// the paper's 1110-process setting. Run with -benchtime=1x for a smoke
// pass; the per-iteration metrics report delivery quality alongside
// timing.

// benchDissemination builds a flat n-process group, publishes once and
// drives the kernel to quiescence.
func benchDissemination(b *testing.B, n, workers int) {
	b.Helper()
	var rel float64
	var msgs int64
	for i := 0; i < b.N; i++ {
		cfg := flatConfig(n, int64(i+1), workers)
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rel += res.Reliability[topic.Root]
		msgs += res.TotalEvents
	}
	b.ReportMetric(rel/float64(b.N), "delivery")
	b.ReportMetric(float64(msgs)/float64(b.N), "event-msgs")
}

func BenchmarkSharded20k(b *testing.B) { benchDissemination(b, 20000, 0) }
func BenchmarkSharded50k(b *testing.B) { benchDissemination(b, 50000, 0) }

// BenchmarkShardedWorkers compares shard counts at 20k processes; all
// variants produce byte-identical results, only wall clock differs.
func BenchmarkShardedWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchDissemination(b, 20000, workers)
		})
	}
}

// BenchmarkScenarioChurn20k drives the full churn scenario — crash
// wave, flash-crowd recovery, two publications — at 20k processes.
func BenchmarkScenarioChurn20k(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		cfg, sc, err := BuiltinScenario("churn", 20000, 0.3, 0, int64(i+1), 0)
		if err != nil {
			b.Fatal(err)
		}
		res, err := RunScenario(cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
		rel += res.Reliability[topic.Root]
	}
	b.ReportMetric(rel/float64(b.N), "delivery")
}

// TestSharded20kCompletes is the scaled-kernel acceptance gate: a
// 20,000-process single-topic dissemination must complete on the
// sharded kernel and reach the overwhelming majority of the group.
func TestSharded20kCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-process run")
	}
	cfg := flatConfig(20000, 1, 0)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds == 0 || res.Rounds >= cfg.MaxRounds {
		t.Errorf("did not quiesce: %d rounds", res.Rounds)
	}
	if rel := res.Reliability[topic.Root]; rel < 0.95 {
		t.Errorf("20k delivery = %g", rel)
	}
	if res.Parasites != 0 {
		t.Errorf("parasites = %d", res.Parasites)
	}
}
