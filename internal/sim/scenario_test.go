package sim

import (
	"errors"
	"testing"

	"damulticast/internal/topic"
)

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want error
	}{
		{"no rounds", Scenario{}, ErrBadRounds},
		{"round out of range", Scenario{Rounds: 5, Events: []ScenarioEvent{
			{Round: 5, Kind: ScenarioPublish}}}, ErrBadEvent},
		{"bad fraction", Scenario{Rounds: 5, Events: []ScenarioEvent{
			{Round: 1, Kind: ScenarioCrashWave, Fraction: 1.5}}}, ErrBadEvent},
		{"bad cells", Scenario{Rounds: 5, Events: []ScenarioEvent{
			{Round: 1, Kind: ScenarioPartition, Cells: 1}}}, ErrBadEvent},
		{"bad burst psucc", Scenario{Rounds: 5, Events: []ScenarioEvent{
			{Round: 1, Kind: ScenarioLossBurst}}}, ErrBadEvent},
		{"bad kind", Scenario{Rounds: 5, Events: []ScenarioEvent{
			{Round: 1, Kind: ScenarioKind(99)}}}, ErrBadEventKind},
		{"heal without partition", Scenario{Rounds: 5, Events: []ScenarioEvent{
			{Round: 1, Kind: ScenarioHeal}}}, ErrNoPartition},
		{"heal before partition", Scenario{Rounds: 5, Events: []ScenarioEvent{
			{Round: 3, Kind: ScenarioPartition, Cells: 2},
			{Round: 1, Kind: ScenarioHeal}}}, ErrNoPartition},
	}
	for _, tc := range cases {
		if err := tc.sc.Validate(); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	good := Scenario{Rounds: 10, Events: []ScenarioEvent{
		{Round: 0, Kind: ScenarioPublish},
		{Round: 2, Kind: ScenarioCrashWave, Fraction: 0.5},
		{Round: 3, Kind: ScenarioFlashCrowd, Fraction: 1},
		{Round: 4, Kind: ScenarioPartition, Cells: 2},
		{Round: 5, Kind: ScenarioHeal},
		{Round: 6, Kind: ScenarioLossBurst, PSucc: 0.5},
		{Round: 7, Kind: ScenarioLossRestore},
	}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid scenario rejected: %v", err)
	}
}

func TestScenarioKindString(t *testing.T) {
	for k, want := range map[ScenarioKind]string{
		ScenarioPublish:    "publish",
		ScenarioCrashWave:  "crash-wave",
		ScenarioFlashCrowd: "flash-crowd",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if ScenarioKind(42).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestScenarioCrashWaveReducesAlive(t *testing.T) {
	cfg := flatConfig(200, 9, 1)
	res, err := RunScenario(cfg, Scenario{
		Name:   "wave",
		Rounds: 10,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioPublish},
			{Round: 2, Kind: ScenarioCrashWave, Fraction: 0.5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Alive[topic.Root]; got != 100 {
		t.Errorf("alive after 50%% wave = %d, want 100", got)
	}
	if res.Rounds != 10 {
		t.Errorf("rounds = %d", res.Rounds)
	}
}

func TestScenarioFlashCrowdRestoresDelivery(t *testing.T) {
	// Half the group is stillborn; the first publication cannot reach
	// them. After the flash crowd subscribes everyone, a second
	// publication must reach (nearly) the whole group, pulling average
	// delivered-of-all above the 50% ceiling of the first event.
	cfg := flatConfig(200, 17, 1)
	cfg.AliveFraction = 0.5
	cfg.FailureMode = FailStillborn
	cfg.PSucc = 1
	res, err := RunScenario(cfg, Scenario{
		Name:   "flash",
		Rounds: 20,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioPublish},
			{Round: 10, Kind: ScenarioFlashCrowd, Fraction: 1},
			{Round: 10, Kind: ScenarioPublish},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Alive[topic.Root]; got != 200 {
		t.Errorf("alive after flash crowd = %d, want 200", got)
	}
	// Average of (≈0.5, ≈1.0) over the two publications.
	if rel := res.ReliabilityAll[topic.Root]; rel < 0.6 {
		t.Errorf("post-flash-crowd mean delivery = %g, want > 0.6", rel)
	}
}

func TestScenarioPartitionBlocksThenHeals(t *testing.T) {
	// With the group split in two cells and lossless channels, an
	// event published inside the partition stays in its cell: strictly
	// fewer deliveries than the healed run.
	base := flatConfig(200, 23, 1)
	base.PSucc = 1
	partitioned, err := RunScenario(base, Scenario{
		Name:   "split",
		Rounds: 12,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioPartition, Cells: 2},
			{Round: 0, Kind: ScenarioPublish},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	open, err := RunScenario(base, Scenario{
		Name:   "open",
		Rounds: 12,
		Events: []ScenarioEvent{{Round: 0, Kind: ScenarioPublish}},
	})
	if err != nil {
		t.Fatal(err)
	}
	relPart := partitioned.Reliability[topic.Root]
	relOpen := open.Reliability[topic.Root]
	if relOpen < 0.99 {
		t.Fatalf("lossless un-partitioned delivery = %g", relOpen)
	}
	if relPart > 0.75 {
		t.Errorf("partitioned delivery = %g, want well under the open %g", relPart, relOpen)
	}
	// Heal before publishing: full delivery returns.
	healed, err := RunScenario(base, Scenario{
		Name:   "healed",
		Rounds: 12,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioPartition, Cells: 2},
			{Round: 1, Kind: ScenarioHeal},
			{Round: 1, Kind: ScenarioPublish},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := healed.Reliability[topic.Root]; rel < 0.99 {
		t.Errorf("healed delivery = %g", rel)
	}
}

func TestScenarioLossBurstDegradesDelivery(t *testing.T) {
	base := flatConfig(200, 31, 1)
	base.PSucc = 1
	burst, err := RunScenario(base, Scenario{
		Name:   "burst",
		Rounds: 12,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioLossBurst, PSucc: 0.05},
			{Round: 0, Kind: ScenarioPublish},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := burst.Reliability[topic.Root]; rel > 0.9 {
		t.Errorf("delivery through 95%% loss = %g", rel)
	}
	// Restore, then publish: the restored run delivers fully.
	restored, err := RunScenario(base, Scenario{
		Name:   "restored",
		Rounds: 12,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioLossBurst, PSucc: 0.05},
			{Round: 2, Kind: ScenarioLossRestore},
			{Round: 2, Kind: ScenarioPublish},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := restored.Reliability[topic.Root]; rel < 0.99 {
		t.Errorf("post-restore delivery = %g", rel)
	}
}

func TestScenarioPublishOverrideTopic(t *testing.T) {
	// Publishing on a supergroup topic mid-scenario must not leak to
	// the subgroup (events flow up, never down).
	t0, t1, t2 := PaperTopics()
	cfg := smallConfig(1, 3)
	cfg.PSucc = 1
	cfg.FailureMode = FailNone
	res, err := RunScenario(cfg, Scenario{
		Name:   "up-only",
		Rounds: 20,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioPublish, Topic: t1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Parasites != 0 {
		t.Errorf("parasites = %d", res.Parasites)
	}
	if rel := res.Reliability[t2]; rel != 0 {
		t.Errorf("T2 received a T1 event: %g", rel)
	}
	if rel := res.Reliability[t0]; rel == 0 {
		t.Error("T0 never received the T1 event")
	}
}

func TestBuiltinScenarios(t *testing.T) {
	for _, name := range BuiltinScenarioNames() {
		t.Run(name, func(t *testing.T) {
			cfg, sc, err := BuiltinScenario(name, 120, 0, 0, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			if err := sc.Validate(); err != nil {
				t.Fatalf("builtin scenario invalid: %v", err)
			}
			res, err := RunScenario(cfg, sc)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalEvents == 0 {
				t.Error("scenario sent nothing")
			}
			if res.Parasites != 0 {
				t.Errorf("parasites = %d", res.Parasites)
			}
		})
	}
	if _, _, err := BuiltinScenario("bogus", 100, 0, 0, 1, 1); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, _, err := BuiltinScenario("churn", 1, 0, 0, 1, 1); err == nil {
		t.Error("single-process scenario accepted")
	}
}

func TestFigureChurnSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-size sweep")
	}
	fig, err := FigureChurn([]float64{0.5, 1.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 2 {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// No churn (right edge) must deliver at least as well as a 50% wave.
	if fig.Rows[1].Values["T2"] < fig.Rows[0].Values["T2"] {
		t.Errorf("churn sweep not monotone: %v vs %v", fig.Rows[1].Values, fig.Rows[0].Values)
	}
	if fig.Rows[1].Values["T2"] < 0.9 {
		t.Errorf("no-churn delivery = %g", fig.Rows[1].Values["T2"])
	}
}
