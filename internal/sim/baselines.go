package sim

import (
	"damulticast/internal/baseline"
	"damulticast/internal/core"
	"damulticast/internal/sizing"
	"damulticast/internal/topic"
)

// The "baselines" figure pits da-multicast against the three §VI-E
// comparison algorithms (gossip broadcast, per-topic multicast,
// hierarchical broadcast) on one shared adversity schedule: an initial
// partition with straggler links, a churn wave, a mid-run loss burst,
// then heal/restore and a flash-crowd restart. The x-axis is the
// steady-state channel success probability, swept over [0.4, 1.0] —
// below that the one-shot epidemics the baselines rely on die out
// entirely and the comparison degenerates.
const (
	// baselinesRounds gives the recovery plane ~20 anti-entropy waves
	// after the round-8 heal.
	baselinesRounds = 48
	// baselinesTotal is the whole-population size, zipf-distributed
	// over seven topics on three branches; only the .t1 branch is
	// interested in the published event, so broadcast's parasite cost
	// shows.
	baselinesTotal   = 800
	baselinesZipfExp = 1.0
	// baselinesRecoverPeriod/Fanout drive the da-multicast recovery
	// subsystem in this figure.
	baselinesRecoverPeriod = 2
	baselinesRecoverFanout = 3
	// baselinesG/baselinesA widen the paper's inter-group knobs (g
	// electors, a-of-z supertable sends) for this figure: the upward
	// .t1 -> root pipe is one-shot, and under a round-0 partition plus
	// heavy loss the default ~g*(a/z) expected crossings can all drop,
	// leaving the root group permanently empty-handed — intra-group
	// recovery cannot regrow an event no member ever held.
	baselinesG = 8
	baselinesA = 3
)

// baselinesTopics names the figure's hierarchy: three branches of
// depth 2 under the root. Publishing happens at .t1.t2; the .a and .z
// branches are uninterested bystanders.
func baselinesTopics() []string {
	return []string{".a1", ".t1", ".z1", ".a1.a2", ".t1.t2", ".z1.z2"}
}

// baselinesTopology builds the shared population: zipf-skewed sizes
// over the hierarchy, emitted in the hierarchy's canonical topic order
// for both the sim groups and the baseline populations, so both worlds
// construct identical process-id sets ("topic#i").
func baselinesTopology() ([]GroupSpec, []baseline.Population, topic.Topic, error) {
	h := topic.NewHierarchy()
	for _, name := range baselinesTopics() {
		t, err := topic.Parse(name)
		if err != nil {
			return nil, nil, "", err
		}
		if err := h.Add(t); err != nil {
			return nil, nil, "", err
		}
	}
	sizes, err := sizing.Zipf(h, baselinesTotal, baselinesZipfExp)
	if err != nil {
		return nil, nil, "", err
	}
	groups := make([]GroupSpec, 0, h.Len())
	pops := make([]baseline.Population, 0, h.Len())
	for _, t := range h.Topics() {
		groups = append(groups, GroupSpec{Topic: t, Size: sizes[t]})
		pops = append(pops, baseline.Population{Topic: t, Size: sizes[t]})
	}
	pub, err := topic.Parse(".t1.t2")
	if err != nil {
		return nil, nil, "", err
	}
	return groups, pops, pub, nil
}

// baselinesBurst is the loss-burst success probability at sweep point
// x: half the steady-state rate, floored so the burst never silences
// the network outright.
func baselinesBurst(x float64) float64 {
	if b := 0.5 * x; b > 0.15 {
		return b
	}
	return 0.15
}

// baselinesScenario is the da-multicast side of the shared schedule.
// The partition and stragglers are installed before the publish, so
// the very first fanout already faces them — mirroring the baseline
// schedule's round-0 semantics.
func baselinesScenario(x float64) Scenario {
	return Scenario{
		Name:   "baselines",
		Rounds: baselinesRounds,
		Events: []ScenarioEvent{
			{Round: 0, Kind: ScenarioStragglers, Fraction: 0.2, Delay: 2},
			{Round: 0, Kind: ScenarioPartition, Cells: 2},
			{Round: 0, Kind: ScenarioPublish},
			{Round: 2, Kind: ScenarioCrashWave, Fraction: 0.15},
			{Round: 4, Kind: ScenarioLossBurst, PSucc: baselinesBurst(x)},
			{Round: 8, Kind: ScenarioHeal},
			{Round: 9, Kind: ScenarioLossRestore},
			{Round: 12, Kind: ScenarioFlashCrowd, Fraction: 1},
		},
	}
}

// baselinesSchedule is the identical adversity for the baseline
// algorithms. Partition cells and straggler coins hash the same seeds
// and process ids as the scenario above, so paired runs see the same
// cells and the same slow links.
func baselinesSchedule(x float64) []baseline.ScheduleEvent {
	return []baseline.ScheduleEvent{
		{Round: 0, Kind: baseline.ScheduleStragglers, Fraction: 0.2, Delay: 2},
		{Round: 0, Kind: baseline.SchedulePartition, Cells: 2},
		{Round: 2, Kind: baseline.ScheduleCrash, Fraction: 0.15},
		{Round: 4, Kind: baseline.ScheduleLossBurst, PSucc: baselinesBurst(x)},
		{Round: 8, Kind: baseline.ScheduleHeal},
		{Round: 9, Kind: baseline.ScheduleLossRestore},
		{Round: 12, Kind: baseline.ScheduleRestart, Fraction: 1},
	}
}

// baselinesDamcRun executes the da-multicast side of one point.
func baselinesDamcRun(x float64, seed int64, kernelWorkers int) (*Result, error) {
	groups, _, pub, err := baselinesTopology()
	if err != nil {
		return nil, err
	}
	params := core.DefaultParams()
	params.ShufflePeriod = 0
	params.MaintainPeriod = 0
	params.G = baselinesG
	params.A = baselinesA
	params.RecoverPeriod = baselinesRecoverPeriod
	params.RecoverFanout = baselinesRecoverFanout
	params.RecoverMaxAge = baselinesRounds + 1 // nothing ages out mid-figure
	cfg := Config{
		Groups:        groups,
		Params:        params,
		PSucc:         x,
		AliveFraction: 1,
		FailureMode:   FailNone,
		PublishTopic:  pub,
		Publications:  1,
		MaxRounds:     baselinesRounds,
		Seed:          seed,
		Workers:       kernelWorkers,
	}
	return RunScenario(cfg, baselinesScenario(x))
}

// baselinesInterestedReliability folds the per-group delivery numbers
// of the publish path (root, .t1, .t1.t2) into one interested-alive
// delivery fraction, the same quantity baseline.Result.Reliability
// measures.
func baselinesInterestedReliability(res *Result, pub topic.Topic) float64 {
	var delivered float64
	var alive int
	for t := pub; ; t = t.Super() {
		delivered += res.DeliveredAlive[t]
		alive += res.Alive[t]
		if t.IsRoot() {
			break
		}
	}
	if alive == 0 {
		return 0
	}
	return delivered / float64(alive)
}

// baselinesSpec is the head-to-head figure: per point, four runs on
// paired seeds — da-multicast plus the three §VI-E baselines — under
// the shared schedule, reporting each algorithm's interested-alive
// reliability and its event-message cost ("<algo>_msgs" series; for
// da-multicast that is the §VI-E event-message count, recovery control
// traffic excluded and reported separately in the run-report counts).
func baselinesSpec() figureSpec {
	return figureSpec{
		name:   "baselines",
		xlabel: "channel success probability (1 - loss rate)",
		ylabel: "interested-alive delivery fraction / event messages",
		grid:   baselinesGrid,
		runPoint: func(x float64, seed int64, kernelWorkers int) (pointResult, error) {
			damc, err := baselinesDamcRun(x, seed, kernelWorkers)
			if err != nil {
				return pointResult{}, err
			}
			_, pops, pub, err := baselinesTopology()
			if err != nil {
				return pointResult{}, err
			}
			bcfg := baseline.Config{
				Populations:   pops,
				PublishTopic:  pub,
				B:             3,
				C:             5,
				PSucc:         x,
				AliveFraction: 1,
				NumGroups:     8,
				MaxRounds:     baselinesRounds,
				Seed:          seed,
				Workers:       kernelWorkers,
				Schedule:      baselinesSchedule(x),
			}
			type algo struct {
				name string
				run  func(baseline.Config) (*baseline.Result, error)
			}
			algos := []algo{
				{"broadcast", baseline.RunBroadcast},
				{"multicast", baseline.RunMulticast},
				{"hierarchical", baseline.RunHierarchical},
			}
			values := map[string]float64{
				"damc":      baselinesInterestedReliability(damc, pub),
				"damc_msgs": float64(damc.TotalEvents),
			}
			counts := make(map[string]int64, len(damc.KindTotals)+len(algos))
			for k, v := range damc.KindTotals {
				counts["damc:"+k] += v
			}
			rounds := damc.Rounds
			for _, a := range algos {
				res, err := a.run(bcfg)
				if err != nil {
					return pointResult{}, err
				}
				values[a.name] = res.Reliability()
				values[a.name+"_msgs"] = float64(res.Messages)
				counts[a.name+":event"] += res.Messages
				counts[a.name+":parasite"] += res.Parasites
				rounds += res.Rounds
			}
			return pointResult{values: values, counts: counts, rounds: rounds}, nil
		},
	}
}

// baselinesGrid sweeps the channel success probability over
// [0.4, 1.0]: evenly spaced, right edge lossless.
func baselinesGrid(points int) []float64 {
	if points == 1 {
		return []float64{1}
	}
	out := make([]float64, points)
	for i := range out {
		out[i] = 0.4 + 0.6*float64(i)/float64(points-1)
	}
	return out
}

// FigureXs returns the canonical x-axis grid for the named figure at
// the given point count: most figures sweep i/points over (0, 1], but
// a spec may pin its own grid (the baselines figure restricts the loss
// sweep to [0.4, 1.0]). Unknown names get the default grid; the
// subsequent GenerateFigure call reports them properly.
func FigureXs(name string, points int) []float64 {
	if points < 1 {
		points = 1
	}
	if spec, ok := figureSpecs()[name]; ok && spec.grid != nil {
		return spec.grid(points)
	}
	out := make([]float64, 0, points)
	for i := 1; i <= points; i++ {
		out = append(out, float64(i)/float64(points))
	}
	return out
}
