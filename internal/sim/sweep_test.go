package sim

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestSweepWorkerCountInvariance is the orchestrator's determinism
// gate: the same sweep on 1, 2 and 8 workers must produce deep-equal
// figures and byte-identical CSVs — seeds derive from the job index,
// never from scheduling.
func TestSweepWorkerCountInvariance(t *testing.T) {
	xs := []float64{0.5, 1.0}
	for _, name := range []string{"fig8", "churn", "recovery"} {
		var base *Figure
		var baseCSV string
		for _, workers := range []int{1, 2, 8} {
			fig, rep, err := GenerateFigure(context.Background(), name, xs,
				FigureOpts{RunsPerPoint: 2, SweepWorkers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if rep.SweepWorkers != workers {
				t.Errorf("%s: report workers = %d, want %d", name, rep.SweepWorkers, workers)
			}
			if base == nil {
				base, baseCSV = fig, fig.CSV()
				continue
			}
			if !reflect.DeepEqual(fig, base) {
				t.Errorf("%s: figure differs between workers=1 and workers=%d", name, workers)
			}
			if csv := fig.CSV(); csv != baseCSV {
				t.Errorf("%s: CSV differs at workers=%d:\n%s\nvs\n%s", name, workers, csv, baseCSV)
			}
		}
	}
}

// TestSweepLegacyEquivalence pins the serial wrappers to the
// orchestrator: Figure8 must equal GenerateFigure("fig8") at any
// worker count.
func TestSweepLegacyEquivalence(t *testing.T) {
	xs := []float64{1.0}
	legacy, err := Figure8(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	fig, _, err := GenerateFigure(context.Background(), "fig8", xs,
		FigureOpts{RunsPerPoint: 1, SweepWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, fig) {
		t.Errorf("legacy Figure8 differs from orchestrated sweep:\n%s\nvs\n%s", legacy.CSV(), fig.CSV())
	}
}

func TestGenerateFigureReport(t *testing.T) {
	xs := []float64{0.5, 1.0}
	const runs = 2
	fig, rep, err := GenerateFigure(context.Background(), "fig8", xs,
		FigureOpts{RunsPerPoint: runs, SweepWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != len(xs) {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	if rep.Name != "fig8" || rep.RunsPerPoint != runs || rep.BaseSeed != 1 {
		t.Errorf("report header = %+v", rep)
	}
	if len(rep.Runs) != len(xs)*runs {
		t.Fatalf("report runs = %d, want %d", len(rep.Runs), len(xs)*runs)
	}
	seeds := map[int64]bool{}
	for i, rec := range rep.Runs {
		if rec.Point != i/runs || rec.Run != i%runs {
			t.Errorf("run %d misindexed: %+v", i, rec)
		}
		if rec.X != xs[rec.Point] {
			t.Errorf("run %d x = %g, want %g", i, rec.X, xs[rec.Point])
		}
		if rec.Rounds <= 0 {
			t.Errorf("run %d rounds = %d", i, rec.Rounds)
		}
		if rec.Counts["intra"] <= 0 {
			t.Errorf("run %d missing intra count: %v", i, rec.Counts)
		}
		if len(rec.Values) == 0 {
			t.Errorf("run %d has no extracted values", i)
		}
		if seeds[rec.Seed] {
			t.Errorf("duplicate seed %d at run %d", rec.Seed, i)
		}
		seeds[rec.Seed] = true
	}
	if rep.WallNS <= 0 {
		t.Errorf("wall = %d", rep.WallNS)
	}
	if rep.Totals["intra"] <= 0 {
		t.Errorf("totals = %v", rep.Totals)
	}
}

func TestGenerateFigureUnknown(t *testing.T) {
	if _, _, err := GenerateFigure(context.Background(), "fig99", []float64{1}, FigureOpts{}); err == nil {
		t.Error("unknown figure accepted")
	}
}

// TestSweepCancellation cancels a sweep mid-flight and checks that it
// aborts with the context error and leaves no goroutines behind.
func TestSweepCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// Plenty of points so the sweep cannot finish before the cancel.
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = 1
	}
	_, _, err := GenerateFigure(ctx, "fig8", xs, FigureOpts{RunsPerPoint: 4, SweepWorkers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && runtime.NumGoroutine() > base {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		t.Errorf("goroutines leaked after cancellation: %d, want <= %d", n, base)
	}
}

// benchSweepFig8 generates Fig. 8 at paper scale with the given sweep
// worker count, reporting the runtime's mutex-wait delta per op — near
// zero now that the metrics registry shards its counters.
func benchSweepFig8(b *testing.B, workers int) {
	b.Helper()
	xs := []float64{0.25, 0.5, 0.75, 1.0}
	var mwait int64
	for i := 0; i < b.N; i++ {
		_, rep, err := GenerateFigure(context.Background(), "fig8", xs,
			FigureOpts{RunsPerPoint: 2, SweepWorkers: workers, BaseSeed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		mwait += rep.MutexWaitNS
	}
	b.ReportMetric(float64(mwait)/float64(b.N), "mutex-wait-ns/op")
}

func BenchmarkSweepFig8Serial(b *testing.B)   { benchSweepFig8(b, 1) }
func BenchmarkSweepFig8Parallel(b *testing.B) { benchSweepFig8(b, 8) }

// BenchmarkSweepWorkers charts sweep scaling across pool sizes.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchSweepFig8(b, workers)
		})
	}
}
