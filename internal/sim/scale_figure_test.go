package sim

import (
	"context"
	"testing"
)

func TestScaleGrid(t *testing.T) {
	xs := FigureXs("scale", 5)
	want := []float64{1_000, 3_162, 10_000, 31_623, 100_000}
	if len(xs) != len(want) {
		t.Fatalf("FigureXs(scale, 5) = %v, want %v", xs, want)
	}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("FigureXs(scale, 5) = %v, want %v", xs, want)
		}
	}
	if full := FigureXs("scale", 10); len(full) != 7 || full[6] != 1_000_000 {
		t.Fatalf("full scale grid = %v, want 7 points ending at 1e6", full)
	}
	if one := FigureXs("scale", 1); len(one) != 1 || one[0] != 1_000 {
		t.Fatalf("FigureXs(scale, 1) = %v, want [1000]", one)
	}
}

func TestScaleGroupsShape(t *testing.T) {
	for _, n := range []int{1_000, 100_000, 1_000_000} {
		gs := scaleGroups(n)
		if len(gs) != 3 {
			t.Fatalf("scaleGroups(%d) has %d groups", n, len(gs))
		}
		total := 0
		for _, g := range gs {
			if g.Size < 2 {
				t.Fatalf("scaleGroups(%d): group %s too small (%d)", n, g.Topic, g.Size)
			}
			total += g.Size
		}
		if total != n {
			t.Fatalf("scaleGroups(%d) sizes sum to %d", n, total)
		}
		if !(gs[0].Size < gs[1].Size && gs[1].Size < gs[2].Size) {
			t.Fatalf("scaleGroups(%d) not 1:10:100 shaped: %+v", n, gs)
		}
	}
}

// TestSweepWorkerCountInvarianceScale extends the figure determinism
// contract to the scale figure: CSV bytes identical for any
// -sweepworkers and any kernel worker count.
func TestSweepWorkerCountInvarianceScale(t *testing.T) {
	xs := FigureXs("scale", 2)
	opts := FigureOpts{RunsPerPoint: 2, SweepWorkers: 1, KernelWorkers: 1}
	base, _, err := GenerateFigure(context.Background(), "scale", xs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []FigureOpts{
		{RunsPerPoint: 2, SweepWorkers: 4, KernelWorkers: 1},
		{RunsPerPoint: 2, SweepWorkers: 1, KernelWorkers: 8},
		{RunsPerPoint: 2, SweepWorkers: 8},
	} {
		fig, _, err := GenerateFigure(context.Background(), "scale", xs, o)
		if err != nil {
			t.Fatal(err)
		}
		if fig.CSV() != base.CSV() {
			t.Fatalf("scale CSV differs at opts %+v:\n%s\nvs\n%s", o, fig.CSV(), base.CSV())
		}
	}
}

func TestScaleFigureSeries(t *testing.T) {
	fig, report, err := GenerateFigure(context.Background(), "scale", FigureXs("scale", 2),
		FigureOpts{RunsPerPoint: 1, SweepWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"T0": true, "T1": true, "T2": true,
		"events_per_proc": true, "state_bytes_per_proc": true,
	}
	if len(fig.Series) != len(want) {
		t.Fatalf("series = %v, want keys %v", fig.Series, want)
	}
	for _, s := range fig.Series {
		if !want[s] {
			t.Fatalf("unexpected series %q in %v", s, fig.Series)
		}
	}
	for _, row := range fig.Rows {
		if b := row.Values["state_bytes_per_proc"]; b <= 0 || b > 512 {
			t.Fatalf("state_bytes_per_proc = %v at n=%v, want (0, 512]", b, row.Alive)
		}
		if r := row.Values["T2"]; r <= 0.5 {
			t.Fatalf("T2 reliability %v at n=%v implausibly low", r, row.Alive)
		}
	}
	if report.Name != "scale" || len(report.Runs) != 2 {
		t.Fatalf("report: name=%q runs=%d", report.Name, len(report.Runs))
	}
}
