package sim

import (
	"reflect"
	"testing"
)

// resultForWorkers runs the same configuration with a given kernel
// shard count.
func resultForWorkers(t *testing.T, base Config, workers int) *Result {
	t.Helper()
	cfg := base
	cfg.Workers = workers
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestWorkerCountInvariance is the determinism regression test: the
// same seed and config must yield a deep-equal Result (every map
// included) for worker counts 1, 2 and 8 — the sharded kernel's
// byte-identical contract, end to end through the full experiment
// harness.
func TestWorkerCountInvariance(t *testing.T) {
	configs := map[string]Config{
		"static-stillborn": smallConfig(0.6, 77),
		"per-observer": func() Config {
			c := smallConfig(0.5, 13)
			c.FailureMode = FailPerObserver
			return c
		}(),
		"dynamic-membership": dynamicConfig(0.8, 21),
		"multi-publication": func() Config {
			c := smallConfig(1, 5)
			c.Publications = 3
			return c
		}(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			ref := resultForWorkers(t, cfg, 1)
			if ref.TotalEvents == 0 {
				t.Fatal("reference run sent nothing")
			}
			for _, workers := range []int{2, 8} {
				got := resultForWorkers(t, cfg, workers)
				if !reflect.DeepEqual(ref, got) {
					t.Errorf("workers=%d Result differs from sequential kernel:\nseq: %+v\ngot: %+v", workers, ref, got)
				}
			}
		})
	}
}

// TestWorkerCountInvarianceScenario extends the contract to the
// dynamic scenario engine: churn waves, partitions and loss bursts
// injected between parallel rounds must not break worker-count
// invariance.
func TestWorkerCountInvarianceScenario(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		cfg, sc, err := BuiltinScenario("churn", 300, 0.4, 16, 42, workers)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunScenario(cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 8} {
		if got := run(workers); !reflect.DeepEqual(ref, got) {
			t.Errorf("workers=%d scenario Result differs from sequential kernel", workers)
		}
	}
}

// TestDefaultWorkersMatchSequential: leaving Workers at zero (the
// GOMAXPROCS default) is also byte-identical to the sequential kernel.
func TestDefaultWorkersMatchSequential(t *testing.T) {
	ref := resultForWorkers(t, smallConfig(0.7, 3), 1)
	got := resultForWorkers(t, smallConfig(0.7, 3), 0)
	if !reflect.DeepEqual(ref, got) {
		t.Error("default worker count differs from sequential kernel")
	}
}
