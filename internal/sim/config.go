// Package sim is the experiment harness that reproduces the paper's
// simulation study (§VII): it builds a topic hierarchy of daMulticast
// processes on the simnet kernel with statically initialized membership
// tables, publishes events, and measures per-group message counts
// (Fig. 8), inter-group message counts (Fig. 9) and delivery
// reliability under stillborn (Fig. 10) and weakly consistent (Fig. 11)
// failure models.
//
// The harness runs on internal/simnet's sharded parallel kernel:
// Config.Workers picks the shard count (0 = GOMAXPROCS) and every
// process owns a private random stream and delivery buffer, so the
// same seed yields a deep-equal Result for ANY worker count — the
// determinism regression tests in determinism_test.go enforce this.
// This scales runs to tens of thousands of processes (see
// bench_test.go's 20k/50k benchmarks).
//
// Beyond the paper's static failure models, the scenario engine
// (scenario.go) injects timed dynamic events between rounds — churn
// waves, flash-crowd subscriptions, group partitions and heals,
// correlated loss bursts — declared as a Scenario value or picked from
// BuiltinScenario's named presets, and driven by Runner.RunScenario.
package sim

import (
	"errors"
	"fmt"

	"damulticast/internal/core"
	"damulticast/internal/topic"
)

// FailureMode selects how process failures are modelled.
type FailureMode int

// Failure models of §VII.
const (
	// FailNone disables failures.
	FailNone FailureMode = iota + 1
	// FailStillborn fails processes at time zero, for every observer
	// ("the state of a process is set at the beginning of the
	// simulation and does not change") — Figs. 8-10.
	FailStillborn
	// FailPerObserver makes each process appear failed independently
	// per observer, with the appearance fixed for the whole run
	// (weakly consistent membership) — Fig. 11.
	FailPerObserver
)

// String names the failure mode.
func (f FailureMode) String() string {
	switch f {
	case FailNone:
		return "none"
	case FailStillborn:
		return "stillborn"
	case FailPerObserver:
		return "per-observer"
	default:
		return fmt.Sprintf("failuremode(%d)", int(f))
	}
}

// GroupSpec declares one topic group and its population.
type GroupSpec struct {
	Topic topic.Topic
	Size  int
}

// Config parameterizes one simulation run.
type Config struct {
	// Groups lists every group; each group's topic must include the
	// publish topic or be included by it... in the paper's linear
	// chain every group lies on the root path of PublishTopic.
	Groups []GroupSpec
	// Params are the protocol constants (same for all groups, as in
	// §VII-A; per-group parameterization can be layered later).
	Params core.Params
	// PSucc is the channel success probability (paper: 0.85).
	PSucc float64
	// AliveFraction is the fraction of processes alive (stillborn
	// mode) or appearing alive per observer (per-observer mode).
	AliveFraction float64
	// FailureMode selects the model.
	FailureMode FailureMode
	// PublishTopic is the topic the event is published on (paper: T2,
	// the bottom-most).
	PublishTopic topic.Topic
	// Publications is how many independent events are published (each
	// by a random alive member of the publish group). Metrics are
	// summed; reliability averages. Default 1.
	Publications int
	// MaxRounds bounds the run (static-table runs quiesce naturally).
	MaxRounds int
	// Seed drives all randomness.
	Seed int64
	// Workers is the simulation kernel's shard count: the round phase
	// runs across this many goroutines. 0 selects GOMAXPROCS, 1 is the
	// sequential kernel. The Result is byte-identical for every value
	// (see internal/simnet's determinism contract).
	Workers int
}

// Validation errors.
var (
	ErrNoGroups      = errors.New("sim: no groups configured")
	ErrBadSize       = errors.New("sim: group size must be >= 1")
	ErrBadPSucc      = errors.New("sim: PSucc must be in (0, 1]")
	ErrBadAlive      = errors.New("sim: AliveFraction must be in [0, 1]")
	ErrNoPublisher   = errors.New("sim: PublishTopic has no group")
	ErrBadMode       = errors.New("sim: unknown failure mode")
	ErrDupGroupTopic = errors.New("sim: duplicate group topic")
)

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Groups) == 0 {
		return ErrNoGroups
	}
	seen := map[topic.Topic]bool{}
	foundPub := false
	for _, g := range c.Groups {
		if g.Size < 1 {
			return fmt.Errorf("%w: %s has %d", ErrBadSize, g.Topic, g.Size)
		}
		if !g.Topic.Valid() {
			return fmt.Errorf("sim: invalid group topic %q", string(g.Topic))
		}
		if seen[g.Topic] {
			return fmt.Errorf("%w: %s", ErrDupGroupTopic, g.Topic)
		}
		seen[g.Topic] = true
		if g.Topic == c.PublishTopic {
			foundPub = true
		}
	}
	if !foundPub {
		return fmt.Errorf("%w: %s", ErrNoPublisher, c.PublishTopic)
	}
	if c.PSucc <= 0 || c.PSucc > 1 {
		return fmt.Errorf("%w: %g", ErrBadPSucc, c.PSucc)
	}
	if c.AliveFraction < 0 || c.AliveFraction > 1 {
		return fmt.Errorf("%w: %g", ErrBadAlive, c.AliveFraction)
	}
	switch c.FailureMode {
	case FailNone, FailStillborn, FailPerObserver:
	default:
		return fmt.Errorf("%w: %d", ErrBadMode, int(c.FailureMode))
	}
	if err := c.Params.Validate(); err != nil {
		return err
	}
	return nil
}

// PaperTopics returns the paper's three-level chain: T0 = root,
// T1 = .t1, T2 = .t1.t2.
func PaperTopics() (t0, t1, t2 topic.Topic) {
	chain, err := topic.Chain(2, "t")
	if err != nil {
		panic(err) // static input; cannot fail
	}
	return topic.Root, chain[0], chain[1]
}

// PaperConfig returns the exact setting of §VII-A: S(T2)=1000,
// S(T1)=100, S(T0)=10; b=3, c=5, g=5, a=1, z=3; psucc=0.85; events
// published on T2; stillborn failures with the given alive fraction.
func PaperConfig(alive float64, seed int64) Config {
	t0, t1, t2 := PaperTopics()
	params := core.DefaultParams()
	params.ShufflePeriod = 0  // "tables are determined statically"
	params.MaintainPeriod = 0 // "and do not change during the simulation"
	return Config{
		Groups: []GroupSpec{
			{Topic: t0, Size: 10},
			{Topic: t1, Size: 100},
			{Topic: t2, Size: 1000},
		},
		Params:        params,
		PSucc:         0.85,
		AliveFraction: alive,
		FailureMode:   FailStillborn,
		PublishTopic:  t2,
		Publications:  1,
		MaxRounds:     200,
		Seed:          seed,
	}
}
