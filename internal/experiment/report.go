package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// RunRecord is one simulation run inside a sweep: which sweep point it
// belongs to, the seed that fully determines it, and what it measured.
type RunRecord struct {
	// Point is the index of the sweep point (x-axis position).
	Point int `json:"point"`
	// X is the point's x value (alive or surviving fraction).
	X float64 `json:"x"`
	// Run is the run index within the point, in [0, RunsPerPoint).
	Run int `json:"run"`
	// Seed is the run's derived seed (xrand.SeedFor of the base seed
	// and the figure/point/run labels) — rerunning with it alone
	// reproduces the run bit for bit.
	Seed int64 `json:"seed"`
	// Rounds is how many simulation rounds the run executed.
	Rounds int `json:"rounds"`
	// WallNS is the run's wall-clock time. Timing naturally varies
	// between executions; everything else in the record is
	// deterministic.
	WallNS int64 `json:"wall_ns"`
	// Counts are the run's per-kind message counters (intra, inter,
	// delivered, parasite, control, dropped).
	Counts map[string]int64 `json:"counts,omitempty"`
	// Values are the extracted series values this run contributed to
	// the figure (averaged across runs per point).
	Values map[string]float64 `json:"values,omitempty"`
}

// FigureReport describes one generated figure: its configuration, the
// aggregate cost of producing it, and every underlying run.
type FigureReport struct {
	Name   string `json:"name"`
	XLabel string `json:"x_label,omitempty"`
	YLabel string `json:"y_label,omitempty"`
	// RunsPerPoint, BaseSeed, SweepWorkers and KernelWorkers echo the
	// sweep configuration. Only timing depends on the worker counts;
	// the figure bytes depend solely on RunsPerPoint, BaseSeed and the
	// x values.
	RunsPerPoint  int   `json:"runs_per_point"`
	BaseSeed      int64 `json:"base_seed"`
	SweepWorkers  int   `json:"sweep_workers"`
	KernelWorkers int   `json:"kernel_workers"`
	// WallNS/CPUNS measure the whole sweep; MutexWaitNS is the delta
	// of the Go runtime's cumulative mutex-wait during it (near zero
	// when the sweep hot path is contention-free).
	WallNS      int64 `json:"wall_ns"`
	CPUNS       int64 `json:"cpu_ns,omitempty"`
	MutexWaitNS int64 `json:"mutex_wait_ns"`
	// Totals sums every run's per-kind counts.
	Totals map[string]int64 `json:"totals,omitempty"`
	Runs   []RunRecord      `json:"runs"`
}

// Report is the top-level document damcsim -report writes: one entry
// per generated figure plus the environment the sweep ran in.
type Report struct {
	Label        string         `json:"label,omitempty"`
	GoMaxProcs   int            `json:"gomaxprocs"`
	SweepWorkers int            `json:"sweep_workers"`
	Figures      []FigureReport `json:"figures"`
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var out Report
	dec := json.NewDecoder(r)
	if err := dec.Decode(&out); err != nil {
		return nil, fmt.Errorf("experiment: parse report: %w", err)
	}
	return &out, nil
}

// ReadReportFile parses the report at path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}
