package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Label:        "test",
		GoMaxProcs:   8,
		SweepWorkers: 4,
		Figures: []FigureReport{{
			Name:          "fig8",
			XLabel:        "fraction of alive processes",
			YLabel:        "events sent within group",
			RunsPerPoint:  3,
			BaseSeed:      1,
			SweepWorkers:  4,
			KernelWorkers: 1,
			WallNS:        123456789,
			CPUNS:         234567890,
			MutexWaitNS:   0,
			Totals:        map[string]int64{"intra": 4200, "inter": 37},
			Runs: []RunRecord{{
				Point:  0,
				X:      0.5,
				Run:    2,
				Seed:   987654321,
				Rounds: 14,
				WallNS: 1111,
				Counts: map[string]int64{"intra": 1400, "dropped": 12},
				Values: map[string]float64{"T2": 1337.5},
			}},
		}},
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	want := sampleReport()
	var buf bytes.Buffer
	if err := want.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	want := sampleReport()
	path := filepath.Join(t.TempDir(), "report.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := want.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("file round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadReportRejectsGarbage(t *testing.T) {
	if _, err := ReadReport(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadReportFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}
