//go:build !unix

package experiment

// processCPUNS reports 0 on platforms without rusage; reports then
// omit cpu_ns.
func processCPUNS() int64 { return 0 }
