package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count drops back to at most
// base, tolerating the runtime's own background goroutines settling.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d running, want <= %d", runtime.NumGoroutine(), base)
}

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		out, err := Map(context.Background(), workers, 100, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	var inFlight, peak atomic.Int64
	_, err := Map(context.Background(), 3, 64, func(_ context.Context, i int) (struct{}, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Errorf("peak concurrency = %d, want <= 3", p)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	base := runtime.NumGoroutine()
	boom := errors.New("boom")
	var started atomic.Int64
	_, err := Map(context.Background(), 4, 1000, func(ctx context.Context, i int) (int, error) {
		started.Add(1)
		if i == 5 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if !strings.Contains(err.Error(), "job 5") {
		t.Errorf("error does not name the failing job: %v", err)
	}
	if n := started.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop the sweep: %d jobs started", n)
	}
	waitGoroutines(t, base)
}

func TestMapParentCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	go func() {
		<-release
		cancel()
	}()
	var done atomic.Int64
	_, err := Map(ctx, 2, 500, func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			close(release)
		}
		select {
		case <-ctx.Done():
		case <-time.After(time.Millisecond):
		}
		done.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := done.Load(); n >= 500 {
		t.Errorf("cancellation mid-sweep did not stop the pool: %d jobs ran", n)
	}
	waitGoroutines(t, base)
}

func TestMapCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := Map(ctx, 4, 10, func(context.Context, int) (int, error) {
		ran.Add(1)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// The claim loop checks ctx before running fn, so nothing runs.
	if n := ran.Load(); n != 0 {
		t.Errorf("%d jobs ran under a pre-canceled context", n)
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) {
		t.Error("fn called for n=0")
		return 0, nil
	})
	if err != nil || out != nil {
		t.Errorf("Map(0) = %v, %v", out, err)
	}
}

// TestMapNoGoroutineLeaks runs many small sweeps and checks the
// goroutine count returns to its baseline — the pool must fully drain
// on every exit path.
func TestMapNoGoroutineLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, 32, func(_ context.Context, i int) (int, error) {
			if trial%2 == 1 && i == 7 {
				return 0, fmt.Errorf("trial %d", trial)
			}
			return i, nil
		})
		if trial%2 == 1 && err == nil {
			t.Fatalf("trial %d: expected error", trial)
		}
	}
	waitGoroutines(t, base)
}

func TestSampleMonotonic(t *testing.T) {
	s := BeginSample()
	busy := 0
	for i := 0; i < 1_000_000; i++ {
		busy += i
	}
	_ = busy
	wall, cpu, mwait := s.End()
	if wall <= 0 {
		t.Errorf("wall = %d", wall)
	}
	if cpu < 0 {
		t.Errorf("cpu = %d", cpu)
	}
	if mwait < 0 {
		t.Errorf("mutex wait = %d", mwait)
	}
}
