package experiment

import (
	"runtime/metrics"
	"time"
)

// mutexWaitSample is the runtime metric tracking cumulative time
// goroutines have spent blocked on sync.Mutex/RWMutex — the direct
// witness for "the sweep hot path has no mutex contention".
const mutexWaitSample = "/sync/mutex/wait/total:seconds"

// mutexWaitNS reads the cumulative mutex-wait clock, or 0 if the
// metric is unsupported by this runtime.
func mutexWaitNS() int64 {
	s := []metrics.Sample{{Name: mutexWaitSample}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindFloat64 {
		return 0
	}
	return int64(s[0].Value.Float64() * 1e9)
}

// Sample captures wall-clock, process CPU and runtime mutex-wait
// baselines so a sweep can report the deltas it caused.
type Sample struct {
	start     time.Time
	cpuNS     int64
	mutexWait int64
}

// BeginSample records the current clocks.
func BeginSample() Sample {
	return Sample{start: time.Now(), cpuNS: processCPUNS(), mutexWait: mutexWaitNS()}
}

// End returns the wall, CPU and mutex-wait nanoseconds elapsed since
// BeginSample. CPU is 0 on platforms without rusage support; both CPU
// and mutex-wait are process-wide, so concurrent unrelated work is
// included.
func (s Sample) End() (wallNS, cpuNS, mutexNS int64) {
	wallNS = time.Since(s.start).Nanoseconds()
	if c := processCPUNS(); c > 0 {
		cpuNS = c - s.cpuNS
	}
	mutexNS = mutexWaitNS() - s.mutexWait
	return wallNS, cpuNS, mutexNS
}
