// Package experiment orchestrates simulation sweeps: it fans the
// independent runs behind a figure (alive fractions × runs-per-point ×
// seeds) across a bounded worker pool and captures machine-readable
// reports (JSON: configuration, per-kind message counts, wall/CPU
// time, rounds) that cmd/damcsim emits and CI archives and diffs.
//
// The package is deliberately generic — it knows nothing about the
// simulator. internal/sim plumbs its figure sweeps through Map and
// fills the report types; keeping the dependency one-way lets the
// orchestrator host any future workload (baseline comparisons,
// parameter-grid searches) without import cycles.
//
// Determinism contract: Map preserves index order in its results and
// callers derive every run's seed from the job index (xrand.SeedFor),
// never from worker identity or completion order — so any worker
// count, 1 included, produces byte-identical figures.
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(ctx, i) for every i in [0, n) across at most workers
// goroutines and returns the n results in index order. workers <= 0
// selects GOMAXPROCS; the pool never exceeds n. The first error
// cancels the context passed to the remaining jobs and is returned
// (wrapped with its job index); a canceled parent context likewise
// aborts the sweep. Map never leaks goroutines — it returns only
// after every worker has exited.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	out := make([]T, n)
	var (
		next     atomic.Int64 // next job index to claim
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || runCtx.Err() != nil {
					return
				}
				v, err := fn(runCtx, i)
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("experiment: job %d: %w", i, err)
						cancel()
					})
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
