// Package topic implements the hierarchical topic model of daMulticast
// (Baehni, Eugster, Guerraoui; DSN 2004).
//
// Topics are dotted paths rooted at "." (the root topic). For example,
// in ".dsn04.reviewers", "dsn04" is the direct supertopic of
// "reviewers" and "." (the root) is the supertopic of "dsn04".
//
// A topic Ta *includes* a topic Tb when Ta is a (direct or transitive)
// supertopic of Tb; an event published on Tb is, by definition, also an
// event of every topic that includes Tb. daMulticast exploits exactly
// this relation to route events bottom-up through the group hierarchy.
package topic

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Root is the root topic ".". Every other topic is (transitively)
// included by it. The root has no supertopic.
const Root = Topic(".")

// Topic is a normalized, dot-separated hierarchical topic name.
//
// The zero value "" is not a valid topic; use Parse or MustParse to
// obtain one. Valid topics are either Root or strings of the form
// ".seg1.seg2...." where every segment matches [a-z0-9_-]+
// case-insensitively (we normalize to lower case).
type Topic string

// Errors returned by Parse.
var (
	ErrEmpty        = errors.New("topic: empty name")
	ErrNoLeadingDot = errors.New("topic: name must start with '.'")
	ErrEmptySegment = errors.New("topic: empty segment")
	ErrBadSegment   = errors.New("topic: segment contains invalid character")
	ErrTooDeep      = errors.New("topic: hierarchy too deep")
)

// MaxDepth bounds the depth of a topic to keep FIND_SUPER_CONTACT's
// expanding search finite even with adversarial inputs.
const MaxDepth = 64

// Parse validates and normalizes a topic name.
//
// Accepted forms:
//
//	"."                  -> Root
//	".a", ".a.b.c"       -> as-is (lower-cased)
//	"a.b" (no leading dot) is rejected.
//
// Trailing dots are rejected except for the root itself.
func Parse(s string) (Topic, error) {
	if s == "" {
		return "", ErrEmpty
	}
	if s == "." {
		return Root, nil
	}
	if s[0] != '.' {
		return "", fmt.Errorf("%w: %q", ErrNoLeadingDot, s)
	}
	segs := strings.Split(s[1:], ".")
	if len(segs) > MaxDepth {
		return "", fmt.Errorf("%w: %d segments (max %d)", ErrTooDeep, len(segs), MaxDepth)
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, seg := range segs {
		if seg == "" {
			return "", fmt.Errorf("%w: %q", ErrEmptySegment, s)
		}
		for _, r := range seg {
			if !isSegmentRune(r) {
				return "", fmt.Errorf("%w: %q in %q", ErrBadSegment, string(r), s)
			}
		}
		b.WriteByte('.')
		b.WriteString(strings.ToLower(seg))
	}
	return Topic(b.String()), nil
}

func isSegmentRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z':
		return true
	case r >= 'A' && r <= 'Z':
		return true
	case r >= '0' && r <= '9':
		return true
	case r == '_' || r == '-':
		return true
	}
	return false
}

// MustParse is like Parse but panics on error. Intended for tests and
// package-level literals with known-good names.
func MustParse(s string) Topic {
	t, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return t
}

// String returns the dotted name.
func (t Topic) String() string { return string(t) }

// IsRoot reports whether t is the root topic.
func (t Topic) IsRoot() bool { return t == Root }

// Valid reports whether t would survive a Parse round-trip unchanged.
func (t Topic) Valid() bool {
	p, err := Parse(string(t))
	return err == nil && p == t
}

// Depth returns the number of segments below the root: Root has depth
// 0, ".a" has depth 1, ".a.b" has depth 2, and so on. This matches the
// paper's topic-hierarchy levels where the root topic is T0.
func (t Topic) Depth() int {
	if t.IsRoot() || t == "" {
		return 0
	}
	return strings.Count(string(t), ".")
}

// Super returns the direct supertopic of t, as in the paper's
// super(Ti). The supertopic of ".a.b" is ".a"; of ".a" it is Root.
// Super of Root returns Root itself (the root has no supertopic);
// callers should guard with IsRoot.
func (t Topic) Super() Topic {
	if t.IsRoot() || t == "" {
		return Root
	}
	i := strings.LastIndexByte(string(t), '.')
	if i <= 0 {
		return Root
	}
	return t[:i]
}

// Leaf returns the last segment of the topic ("reviewers" for
// ".dsn04.reviewers"), or "." for the root.
func (t Topic) Leaf() string {
	if t.IsRoot() || t == "" {
		return "."
	}
	i := strings.LastIndexByte(string(t), '.')
	return string(t[i+1:])
}

// Includes reports whether t includes sub, i.e. whether t is a direct
// or transitive supertopic of sub, or t == sub. Every event of topic
// sub is also an event of topic t when t.Includes(sub).
//
// The root includes everything. A topic includes itself (reflexive),
// matching the paper's usage where events of Ti are "also of topic
// super(Ti)" and dissemination within Ti itself is always performed.
func (t Topic) Includes(sub Topic) bool {
	if t.IsRoot() {
		return true
	}
	if t == sub {
		return true
	}
	if len(sub) <= len(t) {
		return false
	}
	return strings.HasPrefix(string(sub), string(t)) && sub[len(t)] == '.'
}

// StrictlyIncludes is Includes minus reflexivity.
func (t Topic) StrictlyIncludes(sub Topic) bool {
	return t != sub && t.Includes(sub)
}

// Ancestors returns the chain of supertopics of t from the direct
// supertopic up to and including the root, in bottom-up order.
// Ancestors of Root is empty.
func (t Topic) Ancestors() []Topic {
	if t.IsRoot() || t == "" {
		return nil
	}
	out := make([]Topic, 0, t.Depth())
	for cur := t.Super(); ; cur = cur.Super() {
		out = append(out, cur)
		if cur.IsRoot() {
			break
		}
	}
	return out
}

// PathFromRoot returns [Root, ..., t] in top-down order, always
// starting at the root and ending at t itself.
func (t Topic) PathFromRoot() []Topic {
	anc := t.Ancestors()
	out := make([]Topic, 0, len(anc)+1)
	for i := len(anc) - 1; i >= 0; i-- {
		out = append(out, anc[i])
	}
	return append(out, t)
}

// CommonAncestor returns the deepest topic that includes both a and b
// (possibly one of a, b themselves, and at worst the root).
func CommonAncestor(a, b Topic) Topic {
	if a.Includes(b) {
		return a
	}
	if b.Includes(a) {
		return b
	}
	pa, pb := a.PathFromRoot(), b.PathFromRoot()
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	best := Root
	for i := 0; i < n; i++ {
		if pa[i] != pb[i] {
			break
		}
		best = pa[i]
	}
	return best
}

// Child returns the direct subtopic of t obtained by appending one
// segment. The segment must be valid; otherwise an error is returned.
func (t Topic) Child(segment string) (Topic, error) {
	if t == "" {
		return "", ErrEmpty
	}
	base := string(t)
	if t.IsRoot() {
		base = ""
	}
	return Parse(base + "." + segment)
}

// Hierarchy is an explicit registry of the topics known to an
// application or a simulation. daMulticast itself never needs a global
// topic registry (that is the point of the protocol), but simulations,
// workload generators and the analysis package do: they need to know
// which groups exist and how many processes each contains.
//
// A Hierarchy is not safe for concurrent mutation; wrap it if shared.
type Hierarchy struct {
	topics map[Topic]struct{}
}

// NewHierarchy returns a hierarchy containing only the root topic.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{topics: map[Topic]struct{}{Root: {}}}
}

// Add registers t and all its ancestors.
func (h *Hierarchy) Add(t Topic) error {
	if !t.Valid() {
		return fmt.Errorf("topic: invalid topic %q", string(t))
	}
	h.topics[t] = struct{}{}
	for _, a := range t.Ancestors() {
		h.topics[a] = struct{}{}
	}
	return nil
}

// MustAdd is Add but panics on invalid input (for tests/fixtures).
func (h *Hierarchy) MustAdd(t Topic) {
	if err := h.Add(t); err != nil {
		panic(err)
	}
}

// Contains reports whether t has been registered (or is an ancestor of
// a registered topic).
func (h *Hierarchy) Contains(t Topic) bool {
	_, ok := h.topics[t]
	return ok
}

// Len returns the number of registered topics, including the root.
func (h *Hierarchy) Len() int { return len(h.topics) }

// Topics returns all registered topics sorted top-down (by depth, then
// lexicographically). The root comes first.
func (h *Hierarchy) Topics() []Topic {
	out := make([]Topic, 0, len(h.topics))
	for t := range h.topics {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Depth(), out[j].Depth()
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// Children returns the direct subtopics of t among registered topics,
// sorted lexicographically.
func (h *Hierarchy) Children(t Topic) []Topic {
	var out []Topic
	for cand := range h.topics {
		if cand != t && cand.Super() == t && !cand.IsRoot() {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subtree returns t plus all registered topics that t strictly
// includes, sorted top-down.
func (h *Hierarchy) Subtree(t Topic) []Topic {
	var out []Topic
	for cand := range h.topics {
		if t.Includes(cand) {
			out = append(out, cand)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Depth(), out[j].Depth()
		if di != dj {
			return di < dj
		}
		return out[i] < out[j]
	})
	return out
}

// Depth returns the depth t of the hierarchy: the maximum topic depth
// among registered topics (the paper's parameter t).
func (h *Hierarchy) Depth() int {
	max := 0
	for t := range h.topics {
		if d := t.Depth(); d > max {
			max = d
		}
	}
	return max
}

// Leaves returns registered topics with no registered subtopic.
func (h *Hierarchy) Leaves() []Topic {
	var out []Topic
	for t := range h.topics {
		if len(h.Children(t)) == 0 {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Chain builds a linear hierarchy of the given depth with the given
// segment prefix: Chain(3, "l") = [".l1", ".l1.l2", ".l1.l2.l3"],
// returned bottom-up-last (top-down order). This matches the paper's
// analysis model where Ti's supertopic is T(i-1) down from the root T0.
func Chain(depth int, prefix string) ([]Topic, error) {
	if depth < 0 || depth > MaxDepth {
		return nil, fmt.Errorf("%w: depth %d", ErrTooDeep, depth)
	}
	out := make([]Topic, 0, depth)
	cur := Root
	for i := 1; i <= depth; i++ {
		next, err := cur.Child(fmt.Sprintf("%s%d", prefix, i))
		if err != nil {
			return nil, err
		}
		out = append(out, next)
		cur = next
	}
	return out, nil
}
