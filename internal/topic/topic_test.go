package topic

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseValid(t *testing.T) {
	tests := []struct {
		in   string
		want Topic
	}{
		{".", Root},
		{".a", ".a"},
		{".dsn04.reviewers", ".dsn04.reviewers"},
		{".A.B", ".a.b"},
		{".news.sports.foot-ball", ".news.sports.foot-ball"},
		{".x_1.y_2", ".x_1.y_2"},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q) error: %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestParseInvalid(t *testing.T) {
	tests := []struct {
		in      string
		wantErr error
	}{
		{"", ErrEmpty},
		{"a.b", ErrNoLeadingDot},
		{"..a", ErrEmptySegment},
		{".a.", ErrEmptySegment},
		{".a..b", ErrEmptySegment},
		{".a b", ErrBadSegment},
		{".a/b", ErrBadSegment},
		{".ä", ErrBadSegment},
		{"." + strings.Repeat("x.", MaxDepth) + "x", ErrTooDeep},
	}
	for _, tt := range tests {
		_, err := Parse(tt.in)
		if !errors.Is(err, tt.wantErr) {
			t.Errorf("Parse(%q) error = %v, want %v", tt.in, err, tt.wantErr)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on invalid input did not panic")
		}
	}()
	MustParse("not-a-topic")
}

func TestDepth(t *testing.T) {
	tests := []struct {
		in   Topic
		want int
	}{
		{Root, 0},
		{".a", 1},
		{".a.b", 2},
		{".dsn04.reviewers", 2},
		{".a.b.c.d", 4},
	}
	for _, tt := range tests {
		if got := tt.in.Depth(); got != tt.want {
			t.Errorf("%q.Depth() = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestSuper(t *testing.T) {
	tests := []struct {
		in, want Topic
	}{
		{Root, Root},
		{".a", Root},
		{".a.b", ".a"},
		{".dsn04.reviewers", ".dsn04"},
	}
	for _, tt := range tests {
		if got := tt.in.Super(); got != tt.want {
			t.Errorf("%q.Super() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestLeaf(t *testing.T) {
	tests := []struct {
		in   Topic
		want string
	}{
		{Root, "."},
		{".a", "a"},
		{".dsn04.reviewers", "reviewers"},
	}
	for _, tt := range tests {
		if got := tt.in.Leaf(); got != tt.want {
			t.Errorf("%q.Leaf() = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestIncludes(t *testing.T) {
	tests := []struct {
		super, sub Topic
		want       bool
	}{
		{Root, ".a", true},
		{Root, Root, true},
		{".a", ".a", true},
		{".a", ".a.b", true},
		{".a", ".a.b.c", true},
		{".a", ".ab", false}, // prefix but not a segment boundary
		{".a.b", ".a", false},
		{".a", ".b", false},
		{".dsn04", ".dsn04.reviewers", true},
		{".dsn04.reviewers", ".dsn04", false},
	}
	for _, tt := range tests {
		if got := tt.super.Includes(tt.sub); got != tt.want {
			t.Errorf("%q.Includes(%q) = %v, want %v", tt.super, tt.sub, got, tt.want)
		}
	}
}

func TestStrictlyIncludes(t *testing.T) {
	if Topic(".a").StrictlyIncludes(".a") {
		t.Error(".a strictly includes itself")
	}
	if !Topic(".a").StrictlyIncludes(".a.b") {
		t.Error(".a does not strictly include .a.b")
	}
}

func TestAncestorsAndPath(t *testing.T) {
	tt := MustParse(".a.b.c")
	wantAnc := []Topic{".a.b", ".a", Root}
	if got := tt.Ancestors(); !reflect.DeepEqual(got, wantAnc) {
		t.Errorf("Ancestors = %v, want %v", got, wantAnc)
	}
	wantPath := []Topic{Root, ".a", ".a.b", ".a.b.c"}
	if got := tt.PathFromRoot(); !reflect.DeepEqual(got, wantPath) {
		t.Errorf("PathFromRoot = %v, want %v", got, wantPath)
	}
	if got := Root.Ancestors(); got != nil {
		t.Errorf("Root.Ancestors = %v, want nil", got)
	}
	if got := Root.PathFromRoot(); !reflect.DeepEqual(got, []Topic{Root}) {
		t.Errorf("Root.PathFromRoot = %v", got)
	}
}

func TestCommonAncestor(t *testing.T) {
	tests := []struct {
		a, b, want Topic
	}{
		{".a.b", ".a.c", ".a"},
		{".a.b", ".a.b.c", ".a.b"},
		{".a", ".b", Root},
		{Root, ".x.y", Root},
		{".a.b.c", ".a.b.c", ".a.b.c"},
	}
	for _, tt := range tests {
		if got := CommonAncestor(tt.a, tt.b); got != tt.want {
			t.Errorf("CommonAncestor(%q,%q) = %q, want %q", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestChild(t *testing.T) {
	c, err := Root.Child("a")
	if err != nil || c != ".a" {
		t.Errorf("Root.Child(a) = %q, %v", c, err)
	}
	c, err = Topic(".a").Child("b")
	if err != nil || c != ".a.b" {
		t.Errorf(".a.Child(b) = %q, %v", c, err)
	}
	if _, err := Topic(".a").Child("bad seg"); err == nil {
		t.Error("Child with invalid segment succeeded")
	}
}

func TestHierarchy(t *testing.T) {
	h := NewHierarchy()
	h.MustAdd(".a.b.c")
	h.MustAdd(".a.d")

	if !h.Contains(Root) || !h.Contains(".a") || !h.Contains(".a.b") {
		t.Error("ancestors not auto-registered")
	}
	if h.Len() != 5 {
		t.Errorf("Len = %d, want 5", h.Len())
	}
	if got := h.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	wantKids := []Topic{".a.b", ".a.d"}
	if got := h.Children(".a"); !reflect.DeepEqual(got, wantKids) {
		t.Errorf("Children(.a) = %v, want %v", got, wantKids)
	}
	wantLeaves := []Topic{".a.b.c", ".a.d"}
	if got := h.Leaves(); !reflect.DeepEqual(got, wantLeaves) {
		t.Errorf("Leaves = %v, want %v", got, wantLeaves)
	}
	sub := h.Subtree(".a")
	if len(sub) != 4 || sub[0] != ".a" {
		t.Errorf("Subtree(.a) = %v", sub)
	}
	all := h.Topics()
	if all[0] != Root {
		t.Errorf("Topics()[0] = %q, want root", all[0])
	}
	if err := h.Add(Topic("junk")); err == nil {
		t.Error("Add(junk) succeeded")
	}
}

func TestChain(t *testing.T) {
	got, err := Chain(3, "l")
	if err != nil {
		t.Fatal(err)
	}
	want := []Topic{".l1", ".l1.l2", ".l1.l2.l3"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Chain = %v, want %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Super() != got[i-1] {
			t.Errorf("chain link broken at %d", i)
		}
	}
	if _, err := Chain(-1, "l"); err == nil {
		t.Error("Chain(-1) succeeded")
	}
	if _, err := Chain(MaxDepth+1, "l"); err == nil {
		t.Error("Chain(too deep) succeeded")
	}
	empty, err := Chain(0, "l")
	if err != nil || len(empty) != 0 {
		t.Errorf("Chain(0) = %v, %v", empty, err)
	}
}

// randomTopic builds an arbitrary valid topic from a random source.
func randomTopic(r *rand.Rand) Topic {
	depth := r.Intn(6)
	cur := Root
	for i := 0; i < depth; i++ {
		seg := string(rune('a' + r.Intn(26)))
		next, err := cur.Child(seg)
		if err != nil {
			panic(err)
		}
		cur = next
	}
	return cur
}

// Property: Parse is idempotent on its own output.
func TestPropParseRoundTrip(t *testing.T) {
	f := func() bool { return true }
	_ = f
	cfg := &quick.Config{MaxCount: 500}
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tp := randomTopic(r)
		again, err := Parse(string(tp))
		return err == nil && again == tp
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Super decreases depth by exactly one (except at root), and
// the supertopic always includes the topic.
func TestPropSuperDepth(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tp := randomTopic(r)
		if tp.IsRoot() {
			return tp.Super() == Root
		}
		s := tp.Super()
		return s.Depth() == tp.Depth()-1 && s.Includes(tp) && !tp.Includes(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Includes is transitive.
func TestPropIncludesTransitive(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomTopic(r)
		b := c.Super()
		a := b.Super()
		return a.Includes(b) && b.Includes(c) && a.Includes(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: CommonAncestor includes both arguments and is the deepest
// such topic along either path.
func TestPropCommonAncestor(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomTopic(r), randomTopic(r)
		ca := CommonAncestor(a, b)
		if !ca.Includes(a) || !ca.Includes(b) {
			return false
		}
		// No strictly deeper common ancestor exists on a's path.
		for _, cand := range a.PathFromRoot() {
			if cand.Depth() > ca.Depth() && cand.Includes(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkIncludes(b *testing.B) {
	super := MustParse(".news.sports")
	sub := MustParse(".news.sports.football.premier")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !super.Includes(sub) {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(".news.sports.football"); err != nil {
			b.Fatal(err)
		}
	}
}
