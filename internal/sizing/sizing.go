// Package sizing computes subscriber-count distributions over topic
// hierarchies. It is a leaf package — it depends only on
// internal/topic — so both the workload generators and the simulation
// figure specs can share the same distribution code without an import
// cycle (workload already imports sim).
package sizing

import (
	"errors"
	"fmt"
	"math"

	"damulticast/internal/topic"
)

// ErrBadSizing reports invalid distribution parameters.
var ErrBadSizing = errors.New("sizing: invalid parameters")

// Zipf distributes total subscribers over the topics of h with a
// Zipf(s=exponent) rank distribution, deepest-first ranking — a common
// model for subscription popularity skew. Every topic gets at least one
// subscriber; the rounding remainder lands on the largest group. The
// result is a pure function of (h, total, exponent).
func Zipf(h *topic.Hierarchy, total int, exponent float64) (map[topic.Topic]int, error) {
	if total < h.Len() {
		return nil, fmt.Errorf("%w: total %d below topic count %d", ErrBadSizing, total, h.Len())
	}
	if exponent <= 0 {
		return nil, fmt.Errorf("%w: exponent %g", ErrBadSizing, exponent)
	}
	topics := h.Topics()
	// Deepest (most specific) topics get the top ranks, mirroring the
	// paper's leaf-heavy populations.
	for i, j := 0, len(topics)-1; i < j; i, j = i+1, j-1 {
		topics[i], topics[j] = topics[j], topics[i]
	}
	weights := make([]float64, len(topics))
	var norm float64
	for i := range topics {
		weights[i] = 1 / math.Pow(float64(i+1), exponent)
		norm += weights[i]
	}
	out := make(map[topic.Topic]int, len(topics))
	assigned := 0
	for i, t := range topics {
		n := int(float64(total) * weights[i] / norm)
		if n < 1 {
			n = 1
		}
		out[t] = n
		assigned += n
	}
	// Distribute the rounding remainder (or trim overshoot) on the
	// largest group.
	out[topics[0]] += total - assigned
	if out[topics[0]] < 1 {
		out[topics[0]] = 1
	}
	return out, nil
}
