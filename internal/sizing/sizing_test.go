package sizing

import (
	"errors"
	"testing"

	"damulticast/internal/topic"
)

func hierarchy(t *testing.T, names ...string) *topic.Hierarchy {
	t.Helper()
	h := topic.NewHierarchy()
	for _, name := range names {
		tp, err := topic.Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Add(tp); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

func TestZipfSumAndFloor(t *testing.T) {
	h := hierarchy(t, ".a", ".b", ".a.c")
	const total = 100
	sizes, err := Zipf(h, total, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for tp, n := range sizes {
		if n < 1 {
			t.Errorf("topic %s: size %d below floor", tp, n)
		}
		sum += n
	}
	if sum != total {
		t.Errorf("sum = %d, want %d", sum, total)
	}
	if len(sizes) != h.Len() {
		t.Errorf("assigned %d topics, want %d", len(sizes), h.Len())
	}
}

func TestZipfDeepestFirstRanking(t *testing.T) {
	h := hierarchy(t, ".a", ".a.b", ".a.b.c")
	sizes, err := Zipf(h, 1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	deep, _ := topic.Parse(".a.b.c")
	mid, _ := topic.Parse(".a.b")
	if !(sizes[deep] > sizes[mid] && sizes[mid] > sizes[topic.Root]) {
		t.Errorf("skew not deepest-first: %v", sizes)
	}
}

func TestZipfPure(t *testing.T) {
	h := hierarchy(t, ".a", ".b", ".a.c", ".b.d")
	a, err := Zipf(h, 777, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Zipf(h, 777, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	for tp, n := range a {
		if b[tp] != n {
			t.Errorf("topic %s: %d vs %d on identical inputs", tp, n, b[tp])
		}
	}
}

func TestZipfValidation(t *testing.T) {
	h := hierarchy(t, ".a", ".b")
	if _, err := Zipf(h, h.Len()-1, 1.0); !errors.Is(err, ErrBadSizing) {
		t.Errorf("total below topic count: err = %v", err)
	}
	if _, err := Zipf(h, 100, 0); !errors.Is(err, ErrBadSizing) {
		t.Errorf("zero exponent: err = %v", err)
	}
	if _, err := Zipf(h, 100, -1); !errors.Is(err, ErrBadSizing) {
		t.Errorf("negative exponent: err = %v", err)
	}
}
