package chaos

import (
	"reflect"
	"testing"
	"time"
)

func TestGenScheduleReplaysIdentically(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		a := GenSchedule(seed, 14)
		b := GenSchedule(seed, 14)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedule not reproducible:\n%v\n%v", seed, a, b)
		}
	}
	if reflect.DeepEqual(GenSchedule(1, 14), GenSchedule(2, 14)) {
		t.Error("seeds 1 and 2 yielded identical schedules; generator ignores its seed?")
	}
}

func TestGenScheduleCoversEveryFaultKind(t *testing.T) {
	sched := GenSchedule(3, 14)
	kinds := make(map[FaultKind]bool)
	for _, f := range sched {
		if err := f.validate(); err != nil {
			t.Errorf("generated fault invalid: %v", err)
		}
		kinds[f.Kind] = true
	}
	for k := FaultPublish; k <= FaultLossRestore; k++ {
		if !kinds[k] {
			t.Errorf("schedule never fires %v", k)
		}
	}
	last := sched[len(sched)-1]
	if last.Kind != FaultPublish {
		t.Errorf("schedule ends with %v, want a trailing publish", last.Kind)
	}
}

func TestFaultValidate(t *testing.T) {
	cases := []struct {
		name string
		f    Fault
		ok   bool
	}{
		{"publish", Fault{Kind: FaultPublish}, true},
		{"negative step", Fault{Step: -1, Kind: FaultPublish}, false},
		{"kill no count", Fault{Kind: FaultKill}, false},
		{"kill", Fault{Kind: FaultKill, Count: 2}, true},
		{"partition one cell", Fault{Kind: FaultPartition, Cells: 1}, false},
		{"partition", Fault{Kind: FaultPartition, Cells: 2}, true},
		{"loss rate 1", Fault{Kind: FaultLoss, Rate: 1}, false},
		{"loss", Fault{Kind: FaultLoss, Rate: 0.3}, true},
		{"unknown", Fault{Kind: FaultKind(99)}, false},
	}
	for _, tc := range cases {
		if err := tc.f.validate(); (err == nil) != tc.ok {
			t.Errorf("%s: validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// partitionSchedule publishes once on a healthy cluster, then twice
// inside a two-cell partition, then heals: without recovery the
// cross-cell halves permanently miss the partitioned events.
func partitionSchedule() []Fault {
	return []Fault{
		{Step: 0, Kind: FaultPublish},
		{Step: 1, Kind: FaultPartition, Cells: 2},
		{Step: 2, Kind: FaultPublish},
		{Step: 3, Kind: FaultPublish},
		{Step: 5, Kind: FaultHeal},
	}
}

func partitionConfig(recovery bool) Config {
	return Config{
		Endpoints: 12,
		Topics:    []string{".alpha", ".beta"},
		Seed:      11,
		Tick:      10 * time.Millisecond,
		Step:      80 * time.Millisecond,
		Settle:    1500 * time.Millisecond,
		Recovery:  recovery,
		Schedule:  partitionSchedule(),
		SLO:       0.99,
	}
}

func TestPartitionHealMeetsSLOWithRecovery(t *testing.T) {
	rep, err := Run(partitionConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reliability %.4f, per-topic %v, recovered %d, partition drops %d",
		rep.Reliability, rep.PerTopic, rep.Final.Recovered, rep.Final.PartitionDrops)
	if !rep.MetSLO {
		t.Errorf("reliability %.4f below SLO 0.99 despite recovery", rep.Reliability)
	}
	if rep.Final.PartitionDrops == 0 {
		t.Error("partition never dropped a frame; fault fabric inert?")
	}
	if rep.Final.Recovered == 0 {
		t.Error("recovery plane never recovered an event across the heal")
	}
}

func TestPartitionWithoutRecoveryMissesSLO(t *testing.T) {
	rep, err := Run(partitionConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("reliability %.4f without recovery", rep.Reliability)
	// Two of the three events per topic were published inside the
	// partition; without a recovery plane roughly half their
	// subscribers never see them.
	if rep.Reliability >= 0.9 {
		t.Errorf("reliability %.4f without recovery; expected the partitioned events to stay lost", rep.Reliability)
	}
	if rep.MetSLO {
		t.Error("run without recovery claims to meet the SLO")
	}
}

// TestChaosSoak is the full harness: 24 real TCP endpoints, three
// topics, a seeded schedule covering kills, restarts, a partition and
// a loss burst — graded against the 99% delivery SLO over surviving
// subscribers after the settle window.
func TestChaosSoak(t *testing.T) {
	cfg := Config{
		Endpoints: 24,
		Topics:    []string{".t0", ".t1", ".t2"},
		Seed:      5,
		Tick:      10 * time.Millisecond,
		Step:      80 * time.Millisecond,
		Settle:    2 * time.Second,
		Recovery:  true,
		Schedule:  GenSchedule(5, 14),
		SLO:       0.99,
	}
	start := time.Now()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak done in %s: reliability %.4f, faults %v, recovered %d, drops %d/%d",
		time.Since(start).Round(time.Millisecond), rep.Reliability, rep.FaultCounts,
		rep.Final.Recovered, rep.Final.PartitionDrops, rep.Final.LossDrops)
	if !rep.MetSLO {
		t.Errorf("reliability %.4f below SLO %.2f", rep.Reliability, cfg.SLO)
	}
	if rep.AliveEndpoints != cfg.Endpoints {
		t.Errorf("%d endpoints alive at end, want %d (schedule restarts everyone)", rep.AliveEndpoints, cfg.Endpoints)
	}
	for _, kind := range []string{"publish", "kill", "restart", "partition", "heal", "loss-burst", "loss-restore"} {
		if rep.FaultCounts[kind] == 0 {
			t.Errorf("fault kind %s never applied", kind)
		}
		if _, ok := rep.AfterFault[kind]; !ok {
			t.Errorf("no post-fault stats snapshot for %s", kind)
		}
	}
}

// hierarchyTwinConfig builds the parent re-ignition soak: a two-level
// hierarchy (6 parents on .p, 6 children on .p.c) where the entire
// parent group is killed before the only child-group publication and
// revived after dissemination has quiesced. The restarted parents come
// back with empty protocol state and the event is long gone from the
// wire, so whether they ever deliver it is decided purely by the
// cross-group recovery plane.
func hierarchyTwinConfig(cross bool) Config {
	return Config{
		Endpoints:     12,
		Topics:        []string{".p", ".p.c"},
		Hierarchy:     true,
		Seed:          17,
		Tick:          10 * time.Millisecond,
		Step:          80 * time.Millisecond,
		Settle:        2 * time.Second,
		Recovery:      true,
		CrossRecovery: cross,
		Schedule: []Fault{
			{Step: 0, Kind: FaultKill, Count: 64, Topic: ".p"},
			{Step: 1, Kind: FaultPublish},
			{Step: 4, Kind: FaultRestart, Topic: ".p"},
			{Step: 8, Kind: FaultPublish},
		},
		SLO: 0.99,
	}
}

// TestChaosHierarchyTwin runs the parent re-ignition soak twice —
// cross-group recovery on and off — and pins the asymmetry: with it the
// revived parent group obtains the child event it never saw and the run
// meets the SLO; without it the parents stay structurally starved (they
// hold zero copies and intra-group digests exchange nothing), so the
// same schedule misses.
func TestChaosHierarchyTwin(t *testing.T) {
	withCross, err := Run(hierarchyTwinConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(hierarchyTwinConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cross on:  reliability %.4f per-topic %v recovered %d",
		withCross.Reliability, withCross.PerTopic, withCross.Final.Recovered)
	t.Logf("cross off: reliability %.4f per-topic %v recovered %d missing %d",
		without.Reliability, without.PerTopic, without.Final.Recovered, len(without.Missing))

	if !withCross.MetSLO {
		t.Errorf("cross-group recovery: reliability %.4f below SLO despite hierarchy links", withCross.Reliability)
	}
	if withCross.PerTopic[".p.c"] < 1 {
		t.Errorf("cross-group recovery: child events reached %.4f of owed endpoints, want 1.0 (parents re-ignited)",
			withCross.PerTopic[".p.c"])
	}
	if withCross.Final.Recovered == 0 {
		t.Error("cross-group run never recovered an event; re-ignition happened some other way?")
	}
	if without.MetSLO {
		t.Error("intra-only run claims to meet the SLO; the dead parent group should have missed the child event")
	}
	// 6 parents each owed the 1 pre-restart child event: exactly those
	// pairs miss, so the child topic's fraction sits well below 1.
	if without.PerTopic[".p.c"] > 0.8 {
		t.Errorf("intra-only run delivered %.4f of child-topic pairs; parents were expected to stay starved",
			without.PerTopic[".p.c"])
	}
	if len(without.Missing) == 0 {
		t.Error("intra-only run reports no missing pairs")
	}
}

func TestConfigValidate(t *testing.T) {
	base := partitionConfig(true)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"one endpoint", func(c *Config) { c.Endpoints = 1 }},
		{"no topics", func(c *Config) { c.Topics = nil }},
		{"bad topic", func(c *Config) { c.Topics = []string{"nodot"} }},
		{"duplicate topic", func(c *Config) { c.Topics = []string{".a", ".a"} }},
		{"bad slo", func(c *Config) { c.SLO = 1.5 }},
		{"empty schedule", func(c *Config) { c.Schedule = nil }},
		{"bad fault", func(c *Config) { c.Schedule = []Fault{{Kind: FaultPartition, Cells: 1}} }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if err := cfg.withDefaults().validate(); err == nil {
			t.Errorf("%s: validate accepted invalid config", tc.name)
		}
	}
	if err := base.withDefaults().validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}
