package chaos

import (
	"sync"

	"damulticast"
)

// netCtrl is the shared fault fabric of one chaos run: every endpoint's
// outbound sends consult it before touching the real TCP transport, so
// a partition or loss burst applies to the whole in-process cluster
// atomically. Drops are counted, never silent — the same contract the
// hub's own receive path keeps.
type netCtrl struct {
	mu sync.Mutex
	// cell maps transport addresses to partition cells; nil means no
	// partition. Messages crossing cells are dropped.
	cell map[string]int
	// loss is the drop probability of the current loss burst (0 = off).
	loss float64
	// lossSeq drives the deterministic loss pattern: of every 1000
	// consecutive sends, the first loss*1000 are dropped (the same
	// counter scheme MemNetwork uses, so the dropped fraction is exact
	// rather than a coin-flip estimate).
	lossSeq uint64

	partitionDrops int64
	lossDrops      int64
}

// setCells installs (or, with nil, heals) a partition.
func (c *netCtrl) setCells(cells map[string]int) {
	c.mu.Lock()
	c.cell = cells
	c.mu.Unlock()
}

// setLoss sets the loss-burst drop probability (0 restores).
func (c *netCtrl) setLoss(p float64) {
	c.mu.Lock()
	c.loss = p
	c.mu.Unlock()
}

// allow decides one send. Partition checks precede loss: a dropped
// cross-cell frame is a partition casualty regardless of the burst.
func (c *netCtrl) allow(from, to string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cell != nil {
		cf, okf := c.cell[from]
		ct, okt := c.cell[to]
		if okf && okt && cf != ct {
			c.partitionDrops++
			return false
		}
	}
	if c.loss > 0 {
		c.lossSeq++
		if float64(c.lossSeq%1000) < c.loss*1000 {
			c.lossDrops++
			return false
		}
	}
	return true
}

// drops snapshots the drop counters.
func (c *netCtrl) drops() (partition, loss int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.partitionDrops, c.lossDrops
}

// filteredTransport wraps a real transport with the run's fault
// fabric: sends the fabric vetoes are swallowed as best-effort losses
// (exactly what a lossy or partitioned network does to UDP-style
// gossip), everything else hits the genuine TCP stack.
type filteredTransport struct {
	inner damulticast.Transport
	ctrl  *netCtrl
}

var _ damulticast.Transport = (*filteredTransport)(nil)

func (f *filteredTransport) Addr() string { return f.inner.Addr() }

func (f *filteredTransport) Send(addr string, payload []byte) error {
	if !f.ctrl.allow(f.inner.Addr(), addr) {
		return nil // injected network loss: best-effort, counted by ctrl
	}
	return f.inner.Send(addr, payload)
}

func (f *filteredTransport) SetHandler(h func(payload []byte)) { f.inner.SetHandler(h) }

func (f *filteredTransport) Close() error { return f.inner.Close() }
