// Package chaos soaks the live Hub/TCP stack under seeded fault
// schedules. Unlike the round-driven simulations of internal/sim, a
// chaos run stands up N real daMulticast endpoints in one OS process —
// each a Hub over its own TCP listener — publishes multi-topic
// traffic, and injects faults from a deterministic schedule: endpoint
// kills and restarts, network partitions and heals, loss bursts. The
// run's Report grades the cluster against a delivery SLO (what
// fraction of the published events reached every surviving subscriber
// by the end of the settle window) with per-fault-type snapshots of
// the hubs' own counters.
//
// The schedule is deterministic (GenSchedule is a pure function of its
// seed) but the run itself is wall-clock concurrent code over real
// sockets — the harness asserts outcomes (SLOs), not traces.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"damulticast"
	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// Config parameterizes one chaos run.
type Config struct {
	// Endpoints is how many hubs the run stands up (>= 2).
	Endpoints int
	// Topics are the flat topics endpoints subscribe to: endpoint i
	// joins Topics[i%len], and every third endpoint additionally joins
	// the next topic (multi-topic multiplexing over one socket).
	Topics []string
	// Seed roots every random decision: hub protocol seeds, fault
	// target sampling, publisher election.
	Seed int64
	// Tick is the hubs' protocol tick interval (default 15ms).
	Tick time.Duration
	// Step is the wall-clock length of one schedule step (default
	// 8 * Tick).
	Step time.Duration
	// Settle is how long the cluster runs after the last scheduled
	// step before delivery is graded — the live analogue of "within R
	// rounds of the heal" (default 2s).
	Settle time.Duration
	// Recovery enables the anti-entropy recovery plane on every
	// subscription. Without it, events lost to a fault stay lost.
	Recovery bool
	// Hierarchy declares Topics as a root-path chain (each topic
	// strictly includes the next). Endpoints then join exactly one
	// group, each group's joins are wired to the group above via super
	// contacts, and delivery is graded by topic inclusion: an event
	// published at the bottom is owed to every ancestor group too.
	Hierarchy bool
	// CrossRecovery additionally sends recovery digests along the
	// hierarchy's super/sub links, so a group that held zero copies of
	// an event can be re-ignited by its neighbors above and below.
	// Requires Recovery and Hierarchy.
	CrossRecovery bool
	// Schedule is the fault script (see GenSchedule for a seeded one).
	Schedule []Fault
	// SLO is the target delivery fraction over surviving subscribers
	// in [0, 1]; the Report records whether the run met it.
	SLO float64
}

// Chaos configuration errors.
var (
	ErrBadConfig = errors.New("chaos: invalid config")
	ErrPublish   = errors.New("chaos: publish failed")
)

func (c Config) withDefaults() Config {
	if c.Tick <= 0 {
		c.Tick = 15 * time.Millisecond
	}
	if c.Step <= 0 {
		c.Step = 8 * c.Tick
	}
	if c.Settle <= 0 {
		c.Settle = 2 * time.Second
	}
	return c
}

func (c Config) validate() error {
	if c.Endpoints < 2 {
		return fmt.Errorf("%w: need >= 2 endpoints, got %d", ErrBadConfig, c.Endpoints)
	}
	if len(c.Topics) == 0 {
		return fmt.Errorf("%w: no topics", ErrBadConfig)
	}
	seen := make(map[string]bool, len(c.Topics))
	for _, t := range c.Topics {
		if _, err := topic.Parse(t); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		if seen[t] {
			return fmt.Errorf("%w: duplicate topic %s", ErrBadConfig, t)
		}
		seen[t] = true
	}
	if c.Hierarchy {
		for i := 1; i < len(c.Topics); i++ {
			sup, sub := topic.Topic(c.Topics[i-1]), topic.Topic(c.Topics[i])
			if !sup.Includes(sub) || sup == sub {
				return fmt.Errorf("%w: hierarchy topics must be an ancestor chain, %s does not include %s",
					ErrBadConfig, sup, sub)
			}
		}
	}
	if c.CrossRecovery && (!c.Recovery || !c.Hierarchy) {
		return fmt.Errorf("%w: CrossRecovery requires Recovery and Hierarchy", ErrBadConfig)
	}
	if c.SLO < 0 || c.SLO > 1 {
		return fmt.Errorf("%w: SLO %g outside [0, 1]", ErrBadConfig, c.SLO)
	}
	if len(c.Schedule) == 0 {
		return fmt.Errorf("%w: empty schedule", ErrBadConfig)
	}
	for i, f := range c.Schedule {
		if err := f.validate(); err != nil {
			return fmt.Errorf("fault %d: %w", i, err)
		}
	}
	return nil
}

// NetStats aggregates the cluster's counters — the hubs' own Stats()
// rolled up across every endpoint (including stopped generations) plus
// the fault fabric's drop counts.
type NetStats struct {
	// Recovered and Suppressed sum the subscriptions' anti-entropy
	// counters: events obtained through recovery, and pushes a peer's
	// bloom digest suppressed.
	Recovered  uint64
	Suppressed uint64
	// MalformedFrames, OverflowFrames, UnroutedFrames and
	// DroppedDeliveries sum the hubs' receive-path loss counters.
	MalformedFrames   int64
	OverflowFrames    int64
	UnroutedFrames    int64
	DroppedDeliveries int64
	// PartitionDrops and LossDrops count sends the fault fabric ate.
	PartitionDrops int64
	LossDrops      int64
}

// Report is the outcome of one chaos run.
type Report struct {
	// Published counts events published per topic.
	Published map[string]int
	// PerTopic is each topic's delivery fraction over its surviving
	// subscribers.
	PerTopic map[string]float64
	// Reliability is the overall delivered fraction over all
	// (event, surviving subscriber) pairs.
	Reliability float64
	// AliveEndpoints is how many endpoints were up at grading time.
	AliveEndpoints int
	// FaultCounts tallies applied faults by kind name.
	FaultCounts map[string]int
	// AfterFault snapshots the cluster counters right after the last
	// application of each fault kind.
	AfterFault map[string]NetStats
	// Final is the cluster counter snapshot at grading time.
	Final NetStats
	// Missing lists undelivered (endpoint, topic, event) pairs, capped
	// at 64 entries — enough to see who is starving without flooding
	// the report.
	Missing []string
	// MetSLO reports Reliability >= Config.SLO.
	MetSLO bool
}

// endpoint is one hub of the cluster, restartable at a stable address.
type endpoint struct {
	idx    int
	addr   string
	topics []string
	tr     *damulticast.TCPTransport
	hub    *damulticast.Hub
	subs   map[string]*damulticast.Subscription
	down   bool
	gen    int
}

type harness struct {
	cfg      Config
	ctrl     *netCtrl
	eps      []*endpoint
	faultRng *rand.Rand
	pubRng   *rand.Rand
	pubSeq   int
	wg       sync.WaitGroup

	mu        sync.Mutex
	delivered []map[string]map[string]bool // endpoint -> topic -> event ids
	published map[string][]string
	retired   NetStats // counters absorbed from stopped hub generations
}

// Run executes one chaos soak and grades it. The run is synchronous:
// it returns after the settle window with every endpoint stopped.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	h := &harness{
		cfg:       cfg,
		ctrl:      &netCtrl{},
		eps:       make([]*endpoint, cfg.Endpoints),
		faultRng:  xrand.NewStream(cfg.Seed, "chaos:faults"),
		pubRng:    xrand.NewStream(cfg.Seed, "chaos:publish"),
		delivered: make([]map[string]map[string]bool, cfg.Endpoints),
		published: make(map[string][]string, len(cfg.Topics)),
	}
	for i := range h.eps {
		h.eps[i] = &endpoint{idx: i, topics: memberTopics(i, cfg.Topics, cfg.Hierarchy)}
		h.delivered[i] = make(map[string]map[string]bool, len(cfg.Topics))
	}
	defer h.stopAll()

	// Phase 1: bind every listener so contact lists are complete before
	// any hub joins.
	for _, ep := range h.eps {
		tr, err := bindTCP("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		ep.tr = tr
		ep.addr = tr.Addr()
	}
	// Phase 2: hubs and subscriptions.
	for i := range h.eps {
		if err := h.startHub(i); err != nil {
			return nil, err
		}
	}
	time.Sleep(2 * cfg.Tick)

	sched := make([]Fault, len(cfg.Schedule))
	copy(sched, cfg.Schedule)
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Step < sched[j].Step })
	report := &Report{
		Published:   make(map[string]int, len(cfg.Topics)),
		PerTopic:    make(map[string]float64, len(cfg.Topics)),
		FaultCounts: make(map[string]int),
		AfterFault:  make(map[string]NetStats),
	}
	maxStep := sched[len(sched)-1].Step
	fi := 0
	for step := 0; step <= maxStep; step++ {
		for fi < len(sched) && sched[fi].Step <= step {
			f := sched[fi]
			if err := h.apply(f); err != nil {
				return nil, err
			}
			report.FaultCounts[f.Kind.String()]++
			report.AfterFault[f.Kind.String()] = h.netStats()
			fi++
		}
		time.Sleep(cfg.Step)
	}
	time.Sleep(cfg.Settle)

	h.grade(report)
	return report, nil
}

// memberTopics assigns endpoint i its subscriptions: its home topic by
// round-robin, and for every third endpoint the next topic as well. In
// hierarchy mode every endpoint joins exactly one group — cross-group
// links come from super contacts, not multi-topic membership, and the
// twin soak's grading needs group membership to stay crisp.
func memberTopics(i int, topics []string, hierarchy bool) []string {
	out := []string{topics[i%len(topics)]}
	if !hierarchy && i%3 == 0 && len(topics) > 1 {
		out = append(out, topics[(i+1)%len(topics)])
	}
	return out
}

// bindTCP binds a listener, retrying briefly: a restart rebinding its
// old address can race the kernel's release of the previous socket.
func bindTCP(addr string) (*damulticast.TCPTransport, error) {
	var lastErr error
	for attempt := 0; attempt < 50; attempt++ {
		tr, err := damulticast.NewTCPTransport(addr)
		if err == nil {
			return tr, nil
		}
		lastErr = err
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("chaos: bind %s: %w", addr, lastErr)
}

// params builds the hubs' protocol parameters. Membership never ages
// out (a partition must not dissolve the overlay into permanent
// islands) and super-table maintenance is off (flat runs have no
// hierarchy to maintain; hierarchy runs seed super tables at join).
func (h *harness) params() damulticast.Params {
	p := damulticast.DefaultParams()
	p.MaxAge = 1 << 20
	p.MaintainPeriod = 0
	if h.cfg.Recovery {
		p.RecoverPeriod = 2
		p.RecoverFanout = 3
		p.RecoverStoreCap = 2048
		p.RecoverMaxAge = 1 << 20
	}
	if h.cfg.CrossRecovery {
		p.CrossRecoverPeriod = 4
	}
	return p
}

// superTopic returns t's parent in the hierarchy chain, or "" when
// hierarchy mode is off or t is the chain's top.
func (h *harness) superTopic(t string) string {
	if !h.cfg.Hierarchy {
		return ""
	}
	for i := 1; i < len(h.cfg.Topics); i++ {
		if h.cfg.Topics[i] == t {
			return h.cfg.Topics[i-1]
		}
	}
	return ""
}

// contacts lists the other endpoints subscribed to t, by address.
func (h *harness) contacts(idx int, t string) []string {
	var out []string
	for _, ep := range h.eps {
		if ep.idx == idx {
			continue
		}
		for _, et := range ep.topics {
			if et == t {
				out = append(out, ep.addr)
				break
			}
		}
	}
	return out
}

// startHub builds endpoint idx's hub over its already-bound transport
// and joins its topics. Each generation derives a fresh protocol seed.
func (h *harness) startHub(idx int) error {
	ep := h.eps[idx]
	hub, err := damulticast.NewHub(
		&filteredTransport{inner: ep.tr, ctrl: h.ctrl},
		damulticast.WithSeed(xrand.SeedFor(h.cfg.Seed, fmt.Sprintf("hub:%d:gen:%d", idx, ep.gen))),
		damulticast.WithTickInterval(h.cfg.Tick),
		damulticast.WithParams(h.params()),
	)
	if err != nil {
		_ = ep.tr.Close()
		return err
	}
	ep.hub = hub
	ep.subs = make(map[string]*damulticast.Subscription, len(ep.topics))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, t := range ep.topics {
		opts := []damulticast.JoinOption{damulticast.WithGroupContacts(h.contacts(idx, t)...)}
		if sup := h.superTopic(t); sup != "" {
			// Hierarchy mode: seed the super table with the group above,
			// so events climb and cross-group recovery has links to walk.
			opts = append(opts, damulticast.WithSuperContacts(sup, h.contacts(idx, sup)...))
		}
		sub, err := hub.Join(ctx, t, opts...)
		if err != nil {
			_ = hub.Stop()
			return fmt.Errorf("chaos: endpoint %d join %s: %w", idx, t, err)
		}
		ep.subs[t] = sub
		h.drain(idx, sub)
	}
	ep.down = false
	return nil
}

// drain consumes one subscription's deliveries into the cumulative
// per-endpoint ledger (cumulative across restarts: like the paper's
// reliability accounting, a delivery before a crash still counts).
func (h *harness) drain(idx int, sub *damulticast.Subscription) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for ev := range sub.Events() {
			h.record(idx, ev.Topic, ev.ID)
		}
	}()
}

func (h *harness) record(idx int, tp, id string) {
	h.mu.Lock()
	m := h.delivered[idx][tp]
	if m == nil {
		m = make(map[string]bool)
		h.delivered[idx][tp] = m
	}
	m[id] = true
	h.mu.Unlock()
}

// subscribes reports whether the endpoint is assigned topic t (by the
// static assignment, which survives kills — a down endpoint keeps its
// topics for restart).
func subscribes(ep *endpoint, t string) bool {
	for _, et := range ep.topics {
		if et == t {
			return true
		}
	}
	return false
}

// apply executes one scheduled fault.
func (h *harness) apply(f Fault) error {
	switch f.Kind {
	case FaultPublish:
		return h.publishAll()
	case FaultKill:
		var alive []*endpoint
		aliveTotal := 0
		for _, ep := range h.eps {
			if ep.down {
				continue
			}
			aliveTotal++
			if f.Topic == "" || subscribes(ep, f.Topic) {
				alive = append(alive, ep)
			}
		}
		n := f.Count
		if n > len(alive) {
			n = len(alive)
		}
		if n >= aliveTotal {
			n = aliveTotal - 1 // never kill the whole cluster
		}
		perm := h.faultRng.Perm(len(alive))
		for i := 0; i < n; i++ {
			h.kill(alive[perm[i]])
		}
	case FaultRestart:
		var down []*endpoint
		for _, ep := range h.eps {
			if ep.down && (f.Topic == "" || subscribes(ep, f.Topic)) {
				down = append(down, ep)
			}
		}
		n := f.Count
		if n == 0 || n > len(down) {
			n = len(down)
		}
		perm := h.faultRng.Perm(len(down))
		for i := 0; i < n; i++ {
			if err := h.restart(down[perm[i]]); err != nil {
				return err
			}
		}
	case FaultPartition:
		cells := make(map[string]int, len(h.eps))
		for _, ep := range h.eps {
			// Cell by endpoint stripe, deliberately not by topic parity:
			// every topic group must span cells for the partition to
			// bite.
			cells[ep.addr] = (ep.idx / len(h.cfg.Topics)) % f.Cells
		}
		h.ctrl.setCells(cells)
	case FaultHeal:
		h.ctrl.setCells(nil)
	case FaultLoss:
		h.ctrl.setLoss(f.Rate)
	case FaultLossRestore:
		h.ctrl.setLoss(0)
	}
	return nil
}

// publishAll publishes one event per topic from a randomly elected
// alive subscriber. The publisher's own delivery is recorded here —
// Publish does not loop an event back to its origin.
func (h *harness) publishAll() error {
	for _, t := range h.cfg.Topics {
		var cands []*endpoint
		for _, ep := range h.eps {
			if !ep.down && ep.subs[t] != nil {
				cands = append(cands, ep)
			}
		}
		if len(cands) == 0 {
			continue // every subscriber of t is down right now
		}
		ep := cands[h.pubRng.Intn(len(cands))]
		h.pubSeq++
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		id, err := ep.subs[t].Publish(ctx, []byte(fmt.Sprintf("%s/%d", t, h.pubSeq)))
		cancel()
		if err != nil {
			return fmt.Errorf("%w: endpoint %d topic %s: %v", ErrPublish, ep.idx, t, err)
		}
		h.mu.Lock()
		h.published[t] = append(h.published[t], id)
		h.mu.Unlock()
		h.record(ep.idx, t, id)
	}
	return nil
}

// kill hard-stops an endpoint: its counters are absorbed first, then
// the hub goes down with its listener (peers see dead TCP, not a
// graceful leave).
func (h *harness) kill(ep *endpoint) {
	ep.down = true
	_ = ep.hub.Stop()
	h.absorb(ep.hub)
	ep.hub = nil
	ep.subs = nil
}

// restart revives a killed endpoint at its old address with a fresh
// hub generation (empty protocol state — whatever it missed is the
// recovery plane's problem).
func (h *harness) restart(ep *endpoint) error {
	tr, err := bindTCP(ep.addr)
	if err != nil {
		return err
	}
	ep.tr = tr
	ep.gen++
	return h.startHub(ep.idx)
}

// absorb folds a stopped hub's counters into the retired totals so
// NetStats spans every generation, dead or alive.
func (h *harness) absorb(hub *damulticast.Hub) {
	st := hub.Stats()
	h.mu.Lock()
	h.retired.MalformedFrames += st.MalformedFrames
	h.retired.OverflowFrames += st.OverflowFrames
	h.retired.UnroutedFrames += st.UnroutedFrames
	h.retired.DroppedDeliveries += st.DroppedDeliveries
	for _, ss := range st.Subscriptions {
		h.retired.Recovered += ss.Recovery.Recovered
		h.retired.Suppressed += ss.Recovery.Suppressed
	}
	h.mu.Unlock()
}

// netStats snapshots the cluster-wide counters: retired generations
// plus every live hub, plus the fault fabric's drops.
func (h *harness) netStats() NetStats {
	h.mu.Lock()
	ns := h.retired
	h.mu.Unlock()
	for _, ep := range h.eps {
		if ep.down || ep.hub == nil {
			continue
		}
		st := ep.hub.Stats()
		ns.MalformedFrames += st.MalformedFrames
		ns.OverflowFrames += st.OverflowFrames
		ns.UnroutedFrames += st.UnroutedFrames
		ns.DroppedDeliveries += st.DroppedDeliveries
		for _, ss := range st.Subscriptions {
			ns.Recovered += ss.Recovery.Recovered
			ns.Suppressed += ss.Recovery.Suppressed
		}
	}
	ns.PartitionDrops, ns.LossDrops = h.ctrl.drops()
	return ns
}

// owed reports whether a surviving endpoint must have delivered events
// published on t: its own group in flat mode, and in hierarchy mode any
// subscribed ancestor group too — events flow up, so every group above
// the publish topic is owed a copy.
func (h *harness) owed(ep *endpoint, t string) bool {
	if ep.subs[t] != nil {
		return true
	}
	if !h.cfg.Hierarchy {
		return false
	}
	for st := range ep.subs {
		if topic.Topic(st).Includes(topic.Topic(t)) {
			return true
		}
	}
	return false
}

// grade fills the report's delivery verdict: for every topic, what
// fraction of (event, surviving subscriber) pairs were delivered.
func (h *harness) grade(r *Report) {
	r.Final = h.netStats()
	var got, total int
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range h.cfg.Topics {
		evs := h.published[t]
		r.Published[t] = len(evs)
		var tGot, tTotal int
		for _, ep := range h.eps {
			if ep.down || !h.owed(ep, t) {
				continue
			}
			tTotal += len(evs)
			for _, id := range evs {
				if h.delivered[ep.idx][t][id] {
					tGot++
				} else if len(r.Missing) < 64 {
					r.Missing = append(r.Missing, fmt.Sprintf("ep%d %s %s", ep.idx, t, id))
				}
			}
		}
		if tTotal > 0 {
			r.PerTopic[t] = float64(tGot) / float64(tTotal)
		}
		got += tGot
		total += tTotal
	}
	for _, ep := range h.eps {
		if !ep.down {
			r.AliveEndpoints++
		}
	}
	if total > 0 {
		r.Reliability = float64(got) / float64(total)
	}
	r.MetSLO = r.Reliability >= h.cfg.SLO
}

// stopAll tears the cluster down and waits for the drain goroutines.
func (h *harness) stopAll() {
	for _, ep := range h.eps {
		if !ep.down && ep.hub != nil {
			_ = ep.hub.Stop()
		}
	}
	h.wg.Wait()
}
