package chaos

import (
	"errors"
	"fmt"

	"damulticast/internal/topic"
	"damulticast/internal/xrand"
)

// FaultKind enumerates the faults a chaos schedule can inject between
// steps of a live soak run.
type FaultKind int

const (
	// FaultPublish publishes one event on every topic, each from a
	// deterministically chosen alive subscriber.
	FaultPublish FaultKind = iota + 1
	// FaultKill hard-stops Count endpoints (hub stopped, TCP listener
	// closed): a crash, not a graceful leave.
	FaultKill
	// FaultRestart revives down endpoints (all of them when Count is 0):
	// same address, fresh hub, empty protocol state. With recovery
	// enabled the restartee pulls its backlog via anti-entropy.
	FaultRestart
	// FaultPartition splits the endpoints into Cells cells and drops
	// every frame crossing cells until FaultHeal.
	FaultPartition
	// FaultHeal removes the partition.
	FaultHeal
	// FaultLoss starts a loss burst dropping Rate of all sends.
	FaultLoss
	// FaultLossRestore ends the loss burst.
	FaultLossRestore
)

var faultKindNames = map[FaultKind]string{
	FaultPublish:     "publish",
	FaultKill:        "kill",
	FaultRestart:     "restart",
	FaultPartition:   "partition",
	FaultHeal:        "heal",
	FaultLoss:        "loss-burst",
	FaultLossRestore: "loss-restore",
}

// String names the fault kind.
func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("faultkind(%d)", int(k))
}

// ErrBadFault reports an invalid schedule entry.
var ErrBadFault = errors.New("chaos: invalid fault")

// Fault is one scheduled injection, applied at the start of step Step
// (steps are fixed wall-clock slices of the soak run).
type Fault struct {
	Step int
	Kind FaultKind
	// Count is how many endpoints FaultKill stops, or FaultRestart
	// revives (0 = every down endpoint).
	Count int
	// Cells is the partition cell count (>= 2).
	Cells int
	// Rate is the loss-burst drop probability in [0, 1).
	Rate float64
	// Topic restricts FaultKill and FaultRestart to subscribers of this
	// topic (empty = any endpoint) — how a hierarchy soak takes one
	// whole group down and later revives it.
	Topic string
}

func (f Fault) validate() error {
	if f.Step < 0 {
		return fmt.Errorf("%w: negative step %d", ErrBadFault, f.Step)
	}
	if f.Topic != "" {
		if f.Kind != FaultKill && f.Kind != FaultRestart {
			return fmt.Errorf("%w: Topic only targets kill/restart, not %v", ErrBadFault, f.Kind)
		}
		if _, err := topic.Parse(f.Topic); err != nil {
			return fmt.Errorf("%w: %v", ErrBadFault, err)
		}
	}
	switch f.Kind {
	case FaultPublish, FaultHeal, FaultLossRestore:
	case FaultKill:
		if f.Count < 1 {
			return fmt.Errorf("%w: kill needs Count >= 1", ErrBadFault)
		}
	case FaultRestart:
		if f.Count < 0 {
			return fmt.Errorf("%w: negative restart count", ErrBadFault)
		}
	case FaultPartition:
		if f.Cells < 2 {
			return fmt.Errorf("%w: partition needs >= 2 cells, got %d", ErrBadFault, f.Cells)
		}
	case FaultLoss:
		if f.Rate < 0 || f.Rate >= 1 {
			return fmt.Errorf("%w: loss rate %g outside [0, 1)", ErrBadFault, f.Rate)
		}
	default:
		return fmt.Errorf("%w: unknown kind %d", ErrBadFault, int(f.Kind))
	}
	return nil
}

// GenSchedule derives a deterministic soak schedule from a seed: a
// fixed skeleton guaranteeing every fault kind fires — publish, then a
// partition with a publish inside it, a kill wave, a loss burst with
// another publish, then heal/restore/restart and trailing publishes —
// with the exact step offsets, kill width, loss rate and publish
// density drawn from the seeded stream. The same (seed, steps) always
// yields the same schedule, byte for byte; replaying a soak is
// re-running its seed.
func GenSchedule(seed int64, steps int) []Fault {
	if steps < 10 {
		steps = 10
	}
	rng := xrand.NewStream(seed, "chaos:schedule")
	out := []Fault{{Step: 0, Kind: FaultPublish}}
	partAt := 1 + rng.Intn(2)
	out = append(out, Fault{Step: partAt, Kind: FaultPartition, Cells: 2})
	out = append(out, Fault{Step: partAt + 1, Kind: FaultPublish})
	killAt := partAt + 1 + rng.Intn(2)
	out = append(out, Fault{Step: killAt, Kind: FaultKill, Count: 1 + rng.Intn(3)})
	lossAt := killAt + 1
	out = append(out, Fault{Step: lossAt, Kind: FaultLoss, Rate: 0.2 + 0.3*rng.Float64()})
	out = append(out, Fault{Step: lossAt + 1, Kind: FaultPublish})
	healAt := lossAt + 2
	out = append(out, Fault{Step: healAt, Kind: FaultHeal})
	out = append(out, Fault{Step: healAt, Kind: FaultLossRestore})
	out = append(out, Fault{Step: healAt + 1, Kind: FaultRestart})
	for s := healAt + 2; s < steps-1; s++ {
		if rng.Float64() < 0.5 {
			out = append(out, Fault{Step: s, Kind: FaultPublish})
		}
	}
	out = append(out, Fault{Step: steps - 1, Kind: FaultPublish})
	return out
}
