package metrics

import (
	"strings"
	"sync"
	"testing"

	"damulticast/internal/topic"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{IntraGroup, "intra"},
		{InterGroup, "inter"},
		{Delivered, "delivered"},
		{Parasite, "parasite"},
		{Control, "control"},
		{Dropped, "dropped"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	ta, tb := topic.MustParse(".a"), topic.MustParse(".a.b")

	r.IncIntra(tb)
	r.IncIntra(tb)
	r.IncInter(tb, ta)
	r.IncDelivered(tb)
	r.IncParasite(ta)
	r.IncControl(ta)
	r.IncDropped(tb)

	if got := r.Intra(tb); got != 2 {
		t.Errorf("Intra = %d", got)
	}
	if got := r.Inter(tb, ta); got != 1 {
		t.Errorf("Inter = %d", got)
	}
	if got := r.Delivered(tb); got != 1 {
		t.Errorf("Delivered = %d", got)
	}
	if got := r.Parasites(); got != 1 {
		t.Errorf("Parasites = %d", got)
	}
	if got := r.TotalEvents(); got != 3 {
		t.Errorf("TotalEvents = %d", got)
	}
	if got := r.Get(Key{Kind: Control, Topic: ta}); got != 1 {
		t.Errorf("Control = %d", got)
	}
	if got := r.Get(Key{Kind: Dropped, Topic: tb}); got != 1 {
		t.Errorf("Dropped = %d", got)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.IncIntra(topic.Root)
	r.Reset()
	if got := r.Intra(topic.Root); got != 0 {
		t.Errorf("after Reset Intra = %d", got)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("snapshot not empty after reset")
	}
}

func TestRegistrySnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.IncIntra(topic.Root)
	snap := r.Snapshot()
	snap[Key{Kind: IntraGroup, Topic: topic.Root}] = 999
	if got := r.Intra(topic.Root); got != 1 {
		t.Errorf("mutating snapshot changed registry: %d", got)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.IncIntra(topic.Root)
	b.IncIntra(topic.Root)
	b.IncDelivered(topic.Root)
	a.Merge(b)
	if got := a.Intra(topic.Root); got != 2 {
		t.Errorf("merged Intra = %d", got)
	}
	if got := a.Delivered(topic.Root); got != 1 {
		t.Errorf("merged Delivered = %d", got)
	}
	// b unchanged.
	if got := b.Intra(topic.Root); got != 1 {
		t.Errorf("source registry mutated: %d", got)
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	ta, tb := topic.MustParse(".a"), topic.MustParse(".a.b")
	r.IncIntra(tb)
	r.IncInter(tb, ta)
	s := r.String()
	if !strings.Contains(s, "intra[.a.b]=1") {
		t.Errorf("String missing intra line: %q", s)
	}
	if !strings.Contains(s, "inter[.a.b->.a]=1") {
		t.Errorf("String missing inter line: %q", s)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.IncIntra(topic.Root)
				r.IncInter(topic.MustParse(".a"), topic.Root)
			}
		}()
	}
	wg.Wait()
	if got := r.Intra(topic.Root); got != workers*each {
		t.Errorf("Intra = %d, want %d", got, workers*each)
	}
	if got := r.Inter(topic.MustParse(".a"), topic.Root); got != workers*each {
		t.Errorf("Inter = %d, want %d", got, workers*each)
	}
}

func BenchmarkRegistryInc(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.IncIntra(topic.Root)
	}
}
