package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"damulticast/internal/topic"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{IntraGroup, "intra"},
		{InterGroup, "inter"},
		{Delivered, "delivered"},
		{Parasite, "parasite"},
		{Control, "control"},
		{Dropped, "dropped"},
		{RecoverMsg, "recover_msg"},
		{Recovered, "recovered"},
		{RecoverSupp, "recover_supp"},
		{RecoverGC, "recover_gc"},
		{RecoverTrunc, "recover_trunc"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestRegistryBasics(t *testing.T) {
	r := NewRegistry()
	ta, tb := topic.MustParse(".a"), topic.MustParse(".a.b")

	r.IncIntra(tb)
	r.IncIntra(tb)
	r.IncInter(tb, ta)
	r.IncDelivered(tb)
	r.IncParasite(ta)
	r.IncControl(ta)
	r.IncDropped(tb)

	if got := r.Intra(tb); got != 2 {
		t.Errorf("Intra = %d", got)
	}
	if got := r.Inter(tb, ta); got != 1 {
		t.Errorf("Inter = %d", got)
	}
	if got := r.Delivered(tb); got != 1 {
		t.Errorf("Delivered = %d", got)
	}
	if got := r.Parasites(); got != 1 {
		t.Errorf("Parasites = %d", got)
	}
	if got := r.TotalEvents(); got != 3 {
		t.Errorf("TotalEvents = %d", got)
	}
	if got := r.Get(Key{Kind: Control, Topic: ta}); got != 1 {
		t.Errorf("Control = %d", got)
	}
	if got := r.Get(Key{Kind: Dropped, Topic: tb}); got != 1 {
		t.Errorf("Dropped = %d", got)
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.IncIntra(topic.Root)
	r.Reset()
	if got := r.Intra(topic.Root); got != 0 {
		t.Errorf("after Reset Intra = %d", got)
	}
	if len(r.Snapshot()) != 0 {
		t.Error("snapshot not empty after reset")
	}
}

func TestRegistrySnapshotIsCopy(t *testing.T) {
	r := NewRegistry()
	r.IncIntra(topic.Root)
	snap := r.Snapshot()
	snap[Key{Kind: IntraGroup, Topic: topic.Root}] = 999
	if got := r.Intra(topic.Root); got != 1 {
		t.Errorf("mutating snapshot changed registry: %d", got)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.IncIntra(topic.Root)
	b.IncIntra(topic.Root)
	b.IncDelivered(topic.Root)
	a.Merge(b)
	if got := a.Intra(topic.Root); got != 2 {
		t.Errorf("merged Intra = %d", got)
	}
	if got := a.Delivered(topic.Root); got != 1 {
		t.Errorf("merged Delivered = %d", got)
	}
	// b unchanged.
	if got := b.Intra(topic.Root); got != 1 {
		t.Errorf("source registry mutated: %d", got)
	}
}

func TestRegistryString(t *testing.T) {
	r := NewRegistry()
	ta, tb := topic.MustParse(".a"), topic.MustParse(".a.b")
	r.IncIntra(tb)
	r.IncInter(tb, ta)
	s := r.String()
	if !strings.Contains(s, "intra[.a.b]=1") {
		t.Errorf("String missing intra line: %q", s)
	}
	if !strings.Contains(s, "inter[.a.b->.a]=1") {
		t.Errorf("String missing inter line: %q", s)
	}
}

// TestRegistryConcurrency hammers the sharded counters from 32
// goroutines (run under -race in CI): every increment must land
// exactly once regardless of shard assignment, including increments
// racing with first-sight key registration and mid-flight reads.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	ta := topic.MustParse(".a")
	var wg sync.WaitGroup
	const workers, each = 32, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// A fresh per-goroutine key mid-run exercises the slow
			// path's slot growth concurrently with fast-path adds.
			own := topic.MustParse(fmt.Sprintf(".a.g%d", w))
			for i := 0; i < each; i++ {
				r.IncIntra(topic.Root)
				r.IncInter(ta, topic.Root)
				r.IncDelivered(own)
				if i%100 == 0 {
					_ = r.TotalEvents()
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Intra(topic.Root); got != workers*each {
		t.Errorf("Intra = %d, want %d", got, workers*each)
	}
	if got := r.Inter(ta, topic.Root); got != workers*each {
		t.Errorf("Inter = %d, want %d", got, workers*each)
	}
	for w := 0; w < workers; w++ {
		own := topic.MustParse(fmt.Sprintf(".a.g%d", w))
		if got := r.Delivered(own); got != each {
			t.Errorf("Delivered(%s) = %d, want %d", own, got, each)
		}
	}
	if got := r.TotalEvents(); got != 2*workers*each {
		t.Errorf("TotalEvents = %d, want %d", got, 2*workers*each)
	}
}

// TestRegistryDeterministicOutput asserts that Rows and CSV are
// byte-identical for equal counter contents, independent of insertion
// order and of which goroutines (hence shards) did the incrementing.
func TestRegistryDeterministicOutput(t *testing.T) {
	keys := []Key{
		{Kind: Dropped, Topic: topic.MustParse(".b")},
		{Kind: IntraGroup, Topic: topic.MustParse(".a")},
		{Kind: InterGroup, Topic: topic.MustParse(".a.b"), Dest: topic.MustParse(".a")},
		{Kind: IntraGroup, Topic: topic.MustParse(".a.b")},
		{Kind: Delivered, Topic: topic.Root},
	}

	// Serial, reverse insertion order.
	a := NewRegistry()
	for i := len(keys) - 1; i >= 0; i-- {
		a.Add(keys[i], int64(i+1))
	}

	// Concurrent, one goroutine per key, forward order.
	b := NewRegistry()
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(k Key, v int64) {
			defer wg.Done()
			for j := int64(0); j < v; j++ {
				b.Inc(k)
			}
		}(k, int64(i+1))
	}
	wg.Wait()

	if a.CSV() != b.CSV() {
		t.Errorf("CSV not deterministic:\n%s\nvs\n%s", a.CSV(), b.CSV())
	}
	if a.String() != b.String() {
		t.Errorf("String not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
	rows := a.Rows()
	if len(rows) != len(keys) {
		t.Fatalf("Rows len = %d, want %d", len(rows), len(keys))
	}
	for i := 1; i < len(rows); i++ {
		if compareKeys(rows[i-1].Key, rows[i].Key) >= 0 {
			t.Errorf("Rows not strictly sorted at %d: %+v >= %+v", i, rows[i-1].Key, rows[i].Key)
		}
	}
	if !strings.HasPrefix(a.CSV(), "kind,topic,dest,count\n") {
		t.Errorf("CSV header: %q", strings.SplitN(a.CSV(), "\n", 2)[0])
	}
}

func TestRegistryRowsAfterReset(t *testing.T) {
	r := NewRegistry()
	r.IncIntra(topic.Root)
	r.Reset()
	if rows := r.Rows(); len(rows) != 0 {
		t.Errorf("Rows after Reset = %v", rows)
	}
	// Keys registered before a Reset must count from zero again.
	r.IncIntra(topic.Root)
	if got := r.Intra(topic.Root); got != 1 {
		t.Errorf("Intra after Reset+Inc = %d", got)
	}
}

func BenchmarkRegistryInc(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.IncIntra(topic.Root)
	}
}

// BenchmarkRegistryIncParallel measures contended increments on one
// hot key from all procs — the sweep-orchestrator hot path. With the
// sharded atomic registry this scales without mutex contention (the
// read lock is uncontended; see the sweep benchmark's mutex-wait
// metric).
func BenchmarkRegistryIncParallel(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.IncIntra(topic.Root)
		}
	})
}

func TestRecoveryCounters(t *testing.T) {
	r := NewRegistry()
	r.IncRecoverMsg(".t")
	r.IncRecoverMsg(".t")
	r.AddRecovered(".t", 3)
	r.AddRecoverSupp(".t", 5)
	r.AddRecoverGC(".t", 7)
	r.AddRecoverTrunc(".t", 1)
	for _, tt := range []struct {
		kind Kind
		want int64
	}{
		{RecoverMsg, 2}, {Recovered, 3}, {RecoverSupp, 5}, {RecoverGC, 7}, {RecoverTrunc, 1},
	} {
		if got := r.Get(Key{Kind: tt.kind, Topic: ".t"}); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.kind, got, tt.want)
		}
	}
}
