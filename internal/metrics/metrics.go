// Package metrics provides the counters the simulator and the live
// runtime use to reproduce the paper's measurements: per-group message
// counts (Fig. 8), inter-group message counts (Fig. 9) and delivery
// tallies for reliability (Figs. 10-11).
//
// Registry is safe for concurrent use; the live runtime increments from
// many goroutines while the simulator runs single-threaded.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"damulticast/internal/topic"
)

// Kind classifies a counted message or delivery.
type Kind int

// Counter kinds. Start at 1 so the zero value is invalid.
const (
	// IntraGroup counts event messages gossiped within one group.
	IntraGroup Kind = iota + 1
	// InterGroup counts event messages sent from a group to its
	// supergroup over supertopic-table links.
	InterGroup
	// Delivered counts first-time deliveries to the application.
	Delivered
	// Parasite counts deliveries of events whose topic the receiving
	// process is NOT interested in. daMulticast guarantees this stays 0.
	Parasite
	// Control counts protocol control messages (membership gossip,
	// REQCONTACT/ANSCONTACT, NEWPROCESS).
	Control
	// Dropped counts messages lost by the unreliable channel.
	Dropped
)

var kindNames = map[Kind]string{
	IntraGroup: "intra",
	InterGroup: "inter",
	Delivered:  "delivered",
	Parasite:   "parasite",
	Control:    "control",
	Dropped:    "dropped",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Key identifies one counter: a kind scoped to a topic (group). For
// InterGroup counters, Topic is the *source* group and Dest the
// destination (super) group; for all other kinds Dest is empty.
type Key struct {
	Kind  Kind
	Topic topic.Topic
	Dest  topic.Topic
}

// Registry is a concurrent counter map.
type Registry struct {
	mu     sync.Mutex
	counts map[Key]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counts: make(map[Key]int64)}
}

// Add increments the counter for key by delta.
func (r *Registry) Add(key Key, delta int64) {
	r.mu.Lock()
	r.counts[key] += delta
	r.mu.Unlock()
}

// Inc increments the counter for key by one.
func (r *Registry) Inc(key Key) { r.Add(key, 1) }

// IncIntra counts one intra-group event message in group t.
func (r *Registry) IncIntra(t topic.Topic) { r.Inc(Key{Kind: IntraGroup, Topic: t}) }

// IncInter counts one inter-group event message from group src to dst.
func (r *Registry) IncInter(src, dst topic.Topic) {
	r.Inc(Key{Kind: InterGroup, Topic: src, Dest: dst})
}

// IncDelivered counts one first-time application delivery in group t.
func (r *Registry) IncDelivered(t topic.Topic) { r.Inc(Key{Kind: Delivered, Topic: t}) }

// IncParasite counts one parasite delivery in group t (should never
// happen with daMulticast; baselines do produce these).
func (r *Registry) IncParasite(t topic.Topic) { r.Inc(Key{Kind: Parasite, Topic: t}) }

// IncControl counts one control message in group t.
func (r *Registry) IncControl(t topic.Topic) { r.Inc(Key{Kind: Control, Topic: t}) }

// IncDropped counts one message lost by the channel in group t.
func (r *Registry) IncDropped(t topic.Topic) { r.Inc(Key{Kind: Dropped, Topic: t}) }

// Get returns the current value for key.
func (r *Registry) Get(key Key) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[key]
}

// Intra returns the intra-group event count for t.
func (r *Registry) Intra(t topic.Topic) int64 { return r.Get(Key{Kind: IntraGroup, Topic: t}) }

// Inter returns the inter-group event count from src to dst.
func (r *Registry) Inter(src, dst topic.Topic) int64 {
	return r.Get(Key{Kind: InterGroup, Topic: src, Dest: dst})
}

// Delivered returns the delivery count for t.
func (r *Registry) Delivered(t topic.Topic) int64 { return r.Get(Key{Kind: Delivered, Topic: t}) }

// Parasites returns the total parasite deliveries across all groups.
func (r *Registry) Parasites() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for k, v := range r.counts {
		if k.Kind == Parasite {
			total += v
		}
	}
	return total
}

// TotalEvents returns intra + inter event messages across all groups
// (the paper's total message complexity for one dissemination).
func (r *Registry) TotalEvents() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	for k, v := range r.counts {
		if k.Kind == IntraGroup || k.Kind == InterGroup {
			total += v
		}
	}
	return total
}

// Reset zeroes all counters.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counts = make(map[Key]int64)
	r.mu.Unlock()
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[Key]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[Key]int64, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Merge adds every counter of other into r.
func (r *Registry) Merge(other *Registry) {
	snap := other.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range snap {
		r.counts[k] += v
	}
}

// String renders the registry sorted by key for deterministic logs.
func (r *Registry) String() string {
	snap := r.Snapshot()
	keys := make([]Key, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Kind != keys[j].Kind {
			return keys[i].Kind < keys[j].Kind
		}
		if keys[i].Topic != keys[j].Topic {
			return keys[i].Topic < keys[j].Topic
		}
		return keys[i].Dest < keys[j].Dest
	})
	var b strings.Builder
	for _, k := range keys {
		if k.Dest != "" {
			fmt.Fprintf(&b, "%s[%s->%s]=%d\n", k.Kind, k.Topic, k.Dest, snap[k])
		} else {
			fmt.Fprintf(&b, "%s[%s]=%d\n", k.Kind, k.Topic, snap[k])
		}
	}
	return b.String()
}
