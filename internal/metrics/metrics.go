// Package metrics provides the counters the simulator and the live
// runtime use to reproduce the paper's measurements: per-group message
// counts (Fig. 8), inter-group message counts (Fig. 9) and delivery
// tallies for reliability (Figs. 10-11).
//
// Registry is safe for concurrent use and designed for write-heavy
// concurrency: increments land on sharded atomic counters (one shard
// per cache line, picked per goroutine), so goroutines hammering the
// same counter never serialize on a mutex. Reads (Snapshot, Get, CSV)
// merge the shards; sorted accessors (Rows, CSV, String) iterate keys
// in a canonical (Kind, Topic, Dest) order so output is deterministic
// regardless of increment interleaving or shard assignment.
package metrics

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"damulticast/internal/topic"
)

// Kind classifies a counted message or delivery.
type Kind int

// Counter kinds. Start at 1 so the zero value is invalid.
const (
	// IntraGroup counts event messages gossiped within one group.
	IntraGroup Kind = iota + 1
	// InterGroup counts event messages sent from a group to its
	// supergroup over supertopic-table links.
	InterGroup
	// Delivered counts first-time deliveries to the application.
	Delivered
	// Parasite counts deliveries of events whose topic the receiving
	// process is NOT interested in. daMulticast guarantees this stays 0.
	Parasite
	// Control counts protocol control messages (membership gossip,
	// REQCONTACT/ANSCONTACT, NEWPROCESS).
	Control
	// Dropped counts messages lost by the unreliable channel.
	Dropped
	// RecoverMsg counts anti-entropy recovery wire messages (digests
	// and digest answers) — the subsystem's traffic overhead.
	RecoverMsg
	// Recovered counts first-time deliveries obtained through the
	// recovery exchange rather than plain gossip.
	Recovered
	// RecoverSupp counts stored events whose push was suppressed by a
	// peer's bloom digest claiming possession.
	RecoverSupp
	// RecoverGC counts recovery-store entries evicted by age or
	// capacity.
	RecoverGC
	// RecoverTrunc counts recovery digests built under the hard byte
	// cap, i.e. at a degraded false-positive rate.
	RecoverTrunc
)

var kindNames = map[Kind]string{
	IntraGroup:   "intra",
	InterGroup:   "inter",
	Delivered:    "delivered",
	Parasite:     "parasite",
	Control:      "control",
	Dropped:      "dropped",
	RecoverMsg:   "recover_msg",
	Recovered:    "recovered",
	RecoverSupp:  "recover_supp",
	RecoverGC:    "recover_gc",
	RecoverTrunc: "recover_trunc",
}

// String names the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Key identifies one counter: a kind scoped to a topic (group). For
// InterGroup counters, Topic is the *source* group and Dest the
// destination (super) group; for all other kinds Dest is empty.
type Key struct {
	Kind  Kind
	Topic topic.Topic
	Dest  topic.Topic
}

// compareKeys orders keys canonically by (Kind, Topic, Dest) — the
// sort every deterministic accessor uses.
func compareKeys(a, b Key) int {
	if a.Kind != b.Kind {
		if a.Kind < b.Kind {
			return -1
		}
		return 1
	}
	if c := strings.Compare(string(a.Topic), string(b.Topic)); c != 0 {
		return c
	}
	return strings.Compare(string(a.Dest), string(b.Dest))
}

// Row is one counter with its key, as returned by Rows in canonical
// order.
type Row struct {
	Key   Key
	Value int64
}

// shardCount is the number of counter shards: the smallest power of
// two covering GOMAXPROCS at startup, clamped to [8, 128]. Power of
// two so shard selection is a mask, not a modulo.
var shardCount = func() int {
	n := 8
	for n < runtime.GOMAXPROCS(0) && n < 128 {
		n *= 2
	}
	return n
}()

// shard holds one stripe of every counter. The slots slice is indexed
// by the registry's dense key slots and its elements are updated with
// atomic operations only. The pad keeps neighboring shard headers on
// distinct cache lines; the slot arrays themselves are separate
// allocations, so two shards never share a line for their counters.
type shard struct {
	slots []int64
	_     [64 - unsafe.Sizeof([]int64{})%64]byte
}

// Registry is a concurrent counter map. Increments are lock-free at
// steady state: the RWMutex is taken in read mode on the hot path
// (guarding slot-table growth only) and in write mode only when a
// never-before-seen key appears or the registry is reset.
type Registry struct {
	mu     sync.RWMutex
	index  map[Key]int // key -> dense slot
	keys   []Key       // slot -> key
	shards []shard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		index:  make(map[Key]int),
		shards: make([]shard, shardCount),
	}
}

// shardHint picks this goroutine's shard. The address of a stack
// variable is effectively unique per goroutine and stable across calls
// (stacks move rarely), so each goroutine sticks to one shard — cache
// friendly for single-threaded increment loops, spread out for
// many-goroutine ones — without any runtime hooks. Correctness never
// depends on the choice: every shard is merged on read.
func shardHint() int {
	var b byte
	// Drop the low bits: frames within one goroutine differ by less
	// than a few hundred bytes, distinct goroutine stacks by at least
	// the 2KB minimum stack.
	return int(uintptr(unsafe.Pointer(&b))>>11) & (shardCount - 1)
}

// Add increments the counter for key by delta.
func (r *Registry) Add(key Key, delta int64) {
	s := shardHint()
	r.mu.RLock()
	if slot, ok := r.index[key]; ok {
		atomic.AddInt64(&r.shards[s].slots[slot], delta)
		r.mu.RUnlock()
		return
	}
	r.mu.RUnlock()
	r.addSlow(key, delta, s)
}

// addSlow registers a new key (growing every shard's slot array) and
// applies the increment. Growth is safe: fast-path adds hold the read
// lock for the duration of their atomic add, so no add can target a
// slice the write-locked copy is replacing.
func (r *Registry) addSlow(key Key, delta int64, s int) {
	r.mu.Lock()
	slot, ok := r.index[key]
	if !ok {
		slot = len(r.keys)
		r.index[key] = slot
		r.keys = append(r.keys, key)
		if slot >= len(r.shards[0].slots) {
			grown := len(r.shards[0].slots) * 2
			if grown < 16 {
				grown = 16
			}
			for grown <= slot {
				grown *= 2
			}
			for i := range r.shards {
				ns := make([]int64, grown)
				copy(ns, r.shards[i].slots)
				r.shards[i].slots = ns
			}
		}
	}
	atomic.AddInt64(&r.shards[s].slots[slot], delta)
	r.mu.Unlock()
}

// Inc increments the counter for key by one.
func (r *Registry) Inc(key Key) { r.Add(key, 1) }

// IncIntra counts one intra-group event message in group t.
func (r *Registry) IncIntra(t topic.Topic) { r.Inc(Key{Kind: IntraGroup, Topic: t}) }

// IncInter counts one inter-group event message from group src to dst.
func (r *Registry) IncInter(src, dst topic.Topic) {
	r.Inc(Key{Kind: InterGroup, Topic: src, Dest: dst})
}

// IncDelivered counts one first-time application delivery in group t.
func (r *Registry) IncDelivered(t topic.Topic) { r.Inc(Key{Kind: Delivered, Topic: t}) }

// IncParasite counts one parasite delivery in group t (should never
// happen with daMulticast; baselines do produce these).
func (r *Registry) IncParasite(t topic.Topic) { r.Inc(Key{Kind: Parasite, Topic: t}) }

// IncControl counts one control message in group t.
func (r *Registry) IncControl(t topic.Topic) { r.Inc(Key{Kind: Control, Topic: t}) }

// IncDropped counts one message lost by the channel in group t.
func (r *Registry) IncDropped(t topic.Topic) { r.Inc(Key{Kind: Dropped, Topic: t}) }

// IncRecoverMsg counts one recovery wire message sent from group t.
func (r *Registry) IncRecoverMsg(t topic.Topic) { r.Inc(Key{Kind: RecoverMsg, Topic: t}) }

// AddIntra adds n intra-group event messages in group t. The Add*
// bulk variants serve drivers that stream pre-aggregated per-round
// counts (internal/scale's Sink) instead of incrementing per message.
func (r *Registry) AddIntra(t topic.Topic, n int64) { r.Add(Key{Kind: IntraGroup, Topic: t}, n) }

// AddInter adds n inter-group event messages from group src to dst.
func (r *Registry) AddInter(src, dst topic.Topic, n int64) {
	r.Add(Key{Kind: InterGroup, Topic: src, Dest: dst}, n)
}

// AddDelivered adds n first-time application deliveries in group t.
func (r *Registry) AddDelivered(t topic.Topic, n int64) {
	r.Add(Key{Kind: Delivered, Topic: t}, n)
}

// AddDropped adds n channel-lost messages in group t.
func (r *Registry) AddDropped(t topic.Topic, n int64) { r.Add(Key{Kind: Dropped, Topic: t}, n) }

// AddRecovered adds n recovery-path deliveries in group t.
func (r *Registry) AddRecovered(t topic.Topic, n int64) { r.Add(Key{Kind: Recovered, Topic: t}, n) }

// AddRecoverSupp adds n digest-suppressed pushes in group t.
func (r *Registry) AddRecoverSupp(t topic.Topic, n int64) { r.Add(Key{Kind: RecoverSupp, Topic: t}, n) }

// AddRecoverGC adds n recovery-store evictions in group t.
func (r *Registry) AddRecoverGC(t topic.Topic, n int64) { r.Add(Key{Kind: RecoverGC, Topic: t}, n) }

// AddRecoverTrunc adds n byte-capped digest builds in group t.
func (r *Registry) AddRecoverTrunc(t topic.Topic, n int64) {
	r.Add(Key{Kind: RecoverTrunc, Topic: t}, n)
}

// load sums one slot across all shards. Callers hold r.mu (either
// mode).
func (r *Registry) load(slot int) int64 {
	var total int64
	for i := range r.shards {
		total += atomic.LoadInt64(&r.shards[i].slots[slot])
	}
	return total
}

// Get returns the current value for key.
func (r *Registry) Get(key Key) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	slot, ok := r.index[key]
	if !ok {
		return 0
	}
	return r.load(slot)
}

// Intra returns the intra-group event count for t.
func (r *Registry) Intra(t topic.Topic) int64 { return r.Get(Key{Kind: IntraGroup, Topic: t}) }

// Inter returns the inter-group event count from src to dst.
func (r *Registry) Inter(src, dst topic.Topic) int64 {
	return r.Get(Key{Kind: InterGroup, Topic: src, Dest: dst})
}

// Delivered returns the delivery count for t.
func (r *Registry) Delivered(t topic.Topic) int64 { return r.Get(Key{Kind: Delivered, Topic: t}) }

// sumKinds totals every counter whose kind passes the filter.
func (r *Registry) sumKinds(match func(Kind) bool) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total int64
	for slot, k := range r.keys {
		if match(k.Kind) {
			total += r.load(slot)
		}
	}
	return total
}

// Parasites returns the total parasite deliveries across all groups.
func (r *Registry) Parasites() int64 {
	return r.sumKinds(func(k Kind) bool { return k == Parasite })
}

// TotalEvents returns intra + inter event messages across all groups
// (the paper's total message complexity for one dissemination).
func (r *Registry) TotalEvents() int64 {
	return r.sumKinds(func(k Kind) bool { return k == IntraGroup || k == InterGroup })
}

// Reset zeroes all counters and forgets all keys.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.index = make(map[Key]int)
	r.keys = r.keys[:0]
	for i := range r.shards {
		for j := range r.shards[i].slots {
			r.shards[i].slots[j] = 0
		}
	}
}

// Snapshot returns a copy of all counters.
func (r *Registry) Snapshot() map[Key]int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[Key]int64, len(r.keys))
	for slot, k := range r.keys {
		out[k] = r.load(slot)
	}
	return out
}

// Rows returns every counter in canonical (Kind, Topic, Dest) order —
// the deterministic iteration the CSV and String renderings use.
func (r *Registry) Rows() []Row {
	r.mu.RLock()
	out := make([]Row, 0, len(r.keys))
	for slot, k := range r.keys {
		out = append(out, Row{Key: k, Value: r.load(slot)})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return compareKeys(out[i].Key, out[j].Key) < 0 })
	return out
}

// Merge adds every counter of other into r.
func (r *Registry) Merge(other *Registry) {
	for _, row := range other.Rows() {
		r.Add(row.Key, row.Value)
	}
}

// CSV renders the registry as "kind,topic,dest,count" lines (header
// included) in canonical key order — byte-identical for equal counter
// contents, however the increments were interleaved.
func (r *Registry) CSV() string {
	var b strings.Builder
	b.WriteString("kind,topic,dest,count\n")
	for _, row := range r.Rows() {
		fmt.Fprintf(&b, "%s,%s,%s,%d\n", row.Key.Kind, row.Key.Topic, row.Key.Dest, row.Value)
	}
	return b.String()
}

// String renders the registry sorted by key for deterministic logs.
func (r *Registry) String() string {
	var b strings.Builder
	for _, row := range r.Rows() {
		if row.Key.Dest != "" {
			fmt.Fprintf(&b, "%s[%s->%s]=%d\n", row.Key.Kind, row.Key.Topic, row.Key.Dest, row.Value)
		} else {
			fmt.Fprintf(&b, "%s[%s]=%d\n", row.Key.Kind, row.Key.Topic, row.Value)
		}
	}
	return b.String()
}
