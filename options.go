package damulticast

import (
	"context"
	"time"
)

// Functional options for the Hub/Subscription API. Two option kinds
// exist: HubOption configures the endpoint (NewHub), JoinOption
// configures one topic subscription (Hub.Join). Options that make
// sense in both positions — protocol params, seeds for determinism,
// delivery buffering — implement HubJoinOption: passed to NewHub they
// set the default for every subscription, passed to Join they
// override it for that subscription alone.

// HubOption configures a Hub at construction.
type HubOption interface{ applyHub(*hubConfig) }

// JoinOption configures one subscription at Hub.Join.
type JoinOption interface{ applyJoin(*joinConfig) }

// HubJoinOption is accepted by both NewHub (hub-wide default) and
// Hub.Join (per-subscription override).
type HubJoinOption interface {
	HubOption
	JoinOption
}

// hubConfig collects NewHub options.
type hubConfig struct {
	id       string
	params   Params
	seed     int64
	tick     time.Duration
	eventBuf int
	overflow OverflowPolicy
	ctx      context.Context
}

// joinConfig collects Hub.Join options.
type joinConfig struct {
	params        *Params
	seed          int64
	eventBuf      int
	overflow      *OverflowPolicy
	seeds         []string
	groupContacts []string
	superTopic    string
	superContacts []string
}

// WithParams sets the protocol constants — for every subscription when
// passed to NewHub, for one subscription when passed to Join. The zero
// Params value selects DefaultParams.
func WithParams(p Params) HubJoinOption { return paramsOption(p) }

type paramsOption Params

func (o paramsOption) applyHub(c *hubConfig) { c.params = Params(o) }
func (o paramsOption) applyJoin(c *joinConfig) {
	p := Params(o)
	c.params = &p
}

// WithSeed seeds the deterministic random streams. Passed to NewHub it
// is the base seed every subscription derives its private stream from;
// passed to Join it seeds that subscription's stream directly. Seed 0
// (the default) derives a seed from the endpoint address and topic.
func WithSeed(seed int64) HubJoinOption { return seedOption(seed) }

type seedOption int64

func (o seedOption) applyHub(c *hubConfig)   { c.seed = int64(o) }
func (o seedOption) applyJoin(c *joinConfig) { c.seed = int64(o) }

// WithEventBuffer sets the capacity of the Events delivery channel
// (default 256). What happens when the application falls behind and
// the buffer fills is governed by WithOverflow.
func WithEventBuffer(n int) HubJoinOption { return eventBufferOption(n) }

type eventBufferOption int

func (o eventBufferOption) applyHub(c *hubConfig)   { c.eventBuf = int(o) }
func (o eventBufferOption) applyJoin(c *joinConfig) { c.eventBuf = int(o) }

// OverflowPolicy says what a subscription does when an event arrives
// and its Events channel is full: the application is not keeping up
// and something has to give. Every policy counts what it sacrificed in
// SubscriptionStats (and the Prometheus export).
type OverflowPolicy int

const (
	// DropNewest (the default) discards the arriving event, keeping
	// the backlog the application has not read yet. Cheapest and
	// never blocks the hub: losses are ordinary gossip losses, which
	// the recovery layer already repairs.
	DropNewest OverflowPolicy = iota
	// DropOldest discards the oldest unread event to make room for
	// the arriving one — a "latest wins" window for applications that
	// only care about fresh state.
	DropOldest
	// Block makes the hub's delivery loop wait until the application
	// reads an event. Lossless, but a stalled consumer stalls every
	// subscription on the hub — protocol traffic keeps flowing
	// (frames queue, bounded, in the fairness queues), yet sibling
	// deliveries wait their turn behind the block. Use with a
	// consumer that is guaranteed to drain.
	Block
)

// String names the policy.
func (p OverflowPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop-newest"
	case DropOldest:
		return "drop-oldest"
	case Block:
		return "block"
	default:
		return "overflow-policy(?)"
	}
}

// WithOverflow sets the subscription overflow policy — for every
// subscription when passed to NewHub, for one subscription when passed
// to Join. Default DropNewest.
func WithOverflow(p OverflowPolicy) HubJoinOption { return overflowOption(p) }

type overflowOption OverflowPolicy

func (o overflowOption) applyHub(c *hubConfig) { c.overflow = OverflowPolicy(o) }
func (o overflowOption) applyJoin(c *joinConfig) {
	p := OverflowPolicy(o)
	c.overflow = &p
}

// WithTickInterval sets the period of the hub's shared protocol
// maintenance tick (membership shuffles, link maintenance, recovery
// waves; default 500ms). One ticker drives every subscription.
func WithTickInterval(d time.Duration) HubOption { return tickOption(d) }

type tickOption time.Duration

func (o tickOption) applyHub(c *hubConfig) { c.tick = time.Duration(o) }

// WithID overrides the hub's process id (default: the transport's
// address). The id must equal the address other endpoints reach this
// hub at, or nothing will ever route back.
func WithID(id string) HubOption { return idOption(id) }

type idOption string

func (o idOption) applyHub(c *hubConfig) { c.id = string(o) }

// WithContext bounds the hub's lifetime: when ctx is cancelled the hub
// stops as if Stop had been called (the transport still needs a Stop
// or Close to release the listener). Default: context.Background().
func WithContext(ctx context.Context) HubOption { return ctxOption{ctx} }

type ctxOption struct{ ctx context.Context }

func (o ctxOption) applyHub(c *hubConfig) { c.ctx = o.ctx }

// WithSeeds provides bootstrap overlay contacts (the paper's
// neighborhood(p)) for the subscription's FIND_SUPER_CONTACT search.
// Optional when WithSuperContacts is given or the topic is the root.
func WithSeeds(addrs ...string) JoinOption { return seedsOption(addrs) }

type seedsOption []string

func (o seedsOption) applyJoin(c *joinConfig) { c.seeds = append(c.seeds, o...) }

// WithGroupContacts provides known members of the subscription's own
// topic group, installed into the topic table at join.
func WithGroupContacts(addrs ...string) JoinOption { return groupContactsOption(addrs) }

type groupContactsOption []string

func (o groupContactsOption) applyJoin(c *joinConfig) {
	c.groupContacts = append(c.groupContacts, o...)
}

// WithSuperContacts provides known members of the supergroup: addrs
// are endpoints whose subscription topic is superTopic, which must
// strictly include the joined topic. When given, the bootstrap search
// is skipped (paper Fig. 4 lines 5-8).
func WithSuperContacts(superTopic string, addrs ...string) JoinOption {
	return superContactsOption{topic: superTopic, addrs: addrs}
}

type superContactsOption struct {
	topic string
	addrs []string
}

func (o superContactsOption) applyJoin(c *joinConfig) {
	c.superTopic = o.topic
	c.superContacts = append(c.superContacts, o.addrs...)
}
