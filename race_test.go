package damulticast

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Race-detector coverage for the live path: concurrent publishers,
// subscribers draining delivery channels, background protocol ticks
// and transport goroutines all running at once, over both the
// in-memory fabric and real TCP. These tests assert behavior loosely —
// their real job is to fail under `go test -race` if any shared state
// on the publish/subscribe path is unsynchronized.

// raceParams disables maintenance randomness-heavy periods but keeps a
// fast tick so the protocol loop competes with publishers.
func raceParams() Params {
	p := DefaultParams()
	p.ShufflePeriod = 1
	p.MaintainPeriod = 2
	return p
}

// TestRaceConcurrentPublishSubscribeMem hammers a fully-meshed
// in-memory group from many goroutines: every node publishes
// concurrently while every node's Events channel is drained, with
// protocol ticks running throughout.
func TestRaceConcurrentPublishSubscribeMem(t *testing.T) {
	const nodes = 5
	const pubsPerNode = 20

	net := NewMemNetwork()
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("n%d", i)
	}
	peers := func(self int) []string {
		out := make([]string, 0, nodes-1)
		for i, a := range addrs {
			if i != self {
				out = append(out, a)
			}
		}
		return out
	}

	all := make([]*Node, nodes)
	ctx := context.Background()
	for i := range all {
		n, err := NewNode(Config{
			ID:            addrs[i],
			Topic:         ".race",
			Transport:     net.NewTransport(addrs[i]),
			Params:        raceParams(),
			GroupContacts: peers(i),
			TickInterval:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(ctx); err != nil {
			t.Fatal(err)
		}
		all[i] = n
	}

	var delivered atomic.Int64
	var wg sync.WaitGroup
	for _, n := range all {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			for range n.Events() {
				delivered.Add(1)
			}
		}(n)
	}

	var pubs sync.WaitGroup
	for i, n := range all {
		pubs.Add(1)
		go func(i int, n *Node) {
			defer pubs.Done()
			for j := 0; j < pubsPerNode; j++ {
				if _, err := n.Publish([]byte(fmt.Sprintf("p%d-%d", i, j))); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(i, n)
	}
	pubs.Wait()

	// Let gossip settle, then concurrently stop everything (Stop races
	// with in-flight transport deliveries by design).
	time.Sleep(50 * time.Millisecond)
	var stops sync.WaitGroup
	for _, n := range all {
		stops.Add(1)
		go func(n *Node) {
			defer stops.Done()
			if err := n.Stop(); err != nil {
				t.Errorf("stop: %v", err)
			}
		}(n)
	}
	stops.Wait()
	wg.Wait()

	if delivered.Load() == 0 {
		t.Error("no deliveries across the mesh")
	}
}

// TestRaceConcurrentPublishSubscribeTCP runs publishers and
// subscribers concurrently over real TCP transports, including a
// concurrent Leave while traffic flows.
func TestRaceConcurrentPublishSubscribeTCP(t *testing.T) {
	const nodes = 3
	trs := make([]*TCPTransport, nodes)
	for i := range trs {
		tr, err := NewTCPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		trs[i] = tr
	}
	peers := func(self int) []string {
		out := make([]string, 0, nodes-1)
		for i, tr := range trs {
			if i != self {
				out = append(out, tr.Addr())
			}
		}
		return out
	}

	all := make([]*Node, nodes)
	ctx := context.Background()
	for i := range all {
		n, err := NewNode(Config{
			Topic:         ".race.tcp",
			Transport:     trs[i],
			Params:        raceParams(),
			GroupContacts: peers(i),
			TickInterval:  time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(ctx); err != nil {
			t.Fatal(err)
		}
		all[i] = n
	}

	var delivered atomic.Int64
	var drains sync.WaitGroup
	for _, n := range all {
		drains.Add(1)
		go func(n *Node) {
			defer drains.Done()
			for range n.Events() {
				delivered.Add(1)
			}
		}(n)
	}

	var pubs sync.WaitGroup
	for i := 0; i < nodes-1; i++ {
		n := all[i]
		pubs.Add(1)
		go func(i int, n *Node) {
			defer pubs.Done()
			for j := 0; j < 10; j++ {
				if _, err := n.Publish([]byte(fmt.Sprintf("t%d-%d", i, j))); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(i, n)
	}
	// The last node leaves mid-traffic: departure races with inbound
	// frames and outbound dials.
	pubs.Add(1)
	go func() {
		defer pubs.Done()
		if _, err := all[nodes-1].Publish([]byte("bye")); err != nil {
			t.Errorf("publish: %v", err)
		}
		if err := all[nodes-1].Leave(); err != nil {
			t.Errorf("leave: %v", err)
		}
	}()
	pubs.Wait()

	waitFor(t, func() bool { return delivered.Load() > 0 })
	for i := 0; i < nodes-1; i++ {
		if err := all[i].Stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}
	drains.Wait()
}

// TestRaceMemNetworkSendClose races frame delivery against endpoint
// closure and loss-rate mutation on the shared fabric.
func TestRaceMemNetworkSendClose(t *testing.T) {
	net := NewMemNetwork()
	a := net.NewTransport("a")
	b := net.NewTransport("b")
	b.SetHandler(func([]byte) {})
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = a.Send("b", []byte{byte(i)})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			net.SetLossRate(float64(i%2) * 0.5)
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(time.Millisecond)
		_ = b.Close()
	}()
	wg.Wait()
}
