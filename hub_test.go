package damulticast

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"damulticast/internal/core"
)

// drainTopics collects events from a subscription until n arrive or
// the deadline passes, failing on any event of an unexpected topic —
// the cross-group isolation assertion.
func drainTopics(t *testing.T, sub *Subscription, n int, wantTopic string) []Event {
	t.Helper()
	var got []Event
	deadline := time.After(10 * time.Second)
	for len(got) < n {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatalf("%s: events channel closed after %d/%d events", sub.Topic(), len(got), n)
			}
			if ev.Topic != wantTopic {
				t.Fatalf("%s: received event of topic %s — cross-group leak", sub.Topic(), ev.Topic)
			}
			got = append(got, ev)
		case <-deadline:
			t.Fatalf("%s: only %d/%d events arrived", sub.Topic(), len(got), n)
		}
	}
	return got
}

// TestHubTwoSubscriptionsOneTCPTransport is the acceptance gate for
// the multiplexing tentpole: a single TCPTransport hosts two
// subscriptions on different topics, and events published on each
// topic reach only that topic's group — over one shared socket.
func TestHubTwoSubscriptionsOneTCPTransport(t *testing.T) {
	mk := func() *TCPTransport {
		tr, err := NewTCPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	trHub, trAlpha, trBeta := mk(), mk(), mk()

	hub, err := NewHub(trHub, WithParams(liveParams()), WithTickInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Stop() })

	ctx := context.Background()
	alphaSub, err := hub.Join(ctx, ".alpha")
	if err != nil {
		t.Fatal(err)
	}
	betaSub, err := hub.Join(ctx, ".beta")
	if err != nil {
		t.Fatal(err)
	}

	// Two single-topic peers, each in one of the hub's groups,
	// reaching the hub through its one shared listen socket.
	alphaPeer, err := NewHub(trAlpha, WithParams(liveParams()), WithTickInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = alphaPeer.Stop() })
	alphaPub, err := alphaPeer.Join(ctx, ".alpha", WithGroupContacts(trHub.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	betaPeer, err := NewHub(trBeta, WithParams(liveParams()), WithTickInterval(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = betaPeer.Stop() })
	betaPub, err := betaPeer.Join(ctx, ".beta", WithGroupContacts(trHub.Addr()))
	if err != nil {
		t.Fatal(err)
	}

	const each = 5
	for i := 0; i < each; i++ {
		if _, err := alphaPub.Publish(ctx, []byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := betaPub.Publish(ctx, []byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	drainTopics(t, alphaSub, each, ".alpha")
	drainTopics(t, betaSub, each, ".beta")
}

// TestHubLateJoinRecoveryThroughSharedSocket: a hub already busy with
// one subscription joins a second topic after that group's event was
// published; the anti-entropy exchange pulls the missed event through
// the same shared TCP socket the first subscription is using.
func TestHubLateJoinRecoveryThroughSharedSocket(t *testing.T) {
	params := liveParams()
	params.RecoverPeriod = 1
	params.RecoverMaxAge = 100000 // the store must outlive test scheduling

	trHolder, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	trLate, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	holder, err := NewHub(trHolder, WithParams(params), WithTickInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = holder.Stop() })
	room, err := holder.Join(ctx, ".room")
	if err != nil {
		t.Fatal(err)
	}

	late, err := NewHub(trLate, WithParams(params), WithTickInterval(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = late.Stop() })
	// The late hub's socket is already carrying another group's
	// subscription before it joins .room.
	if _, err := late.Join(ctx, ".other"); err != nil {
		t.Fatal(err)
	}

	// Publish while the late hub is not in .room yet: this event can
	// only ever reach it through recovery.
	missedID, err := room.Publish(ctx, []byte("you missed this"))
	if err != nil {
		t.Fatal(err)
	}

	lateRoom, err := late.Join(ctx, ".room", WithGroupContacts(trHolder.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-lateRoom.Events():
		if ev.ID != missedID {
			t.Fatalf("late subscription got %s, want %s", ev.ID, missedID)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("late subscription never recovered the missed event")
	}
	if st := lateRoom.Stats(); st.Recovery.Recovered != 1 {
		t.Errorf("late recovery stats = %+v, want exactly 1 recovered", st.Recovery)
	}
}

// gateTransport wedges its Send until released, so tests can hold the
// hub's loop inside a send mid-publish deterministically.
type gateTransport struct {
	addr    string
	entered chan struct{} // one tick per Send that started blocking
	release chan struct{} // closed to unblock all Sends
}

func newGateTransport(addr string) *gateTransport {
	return &gateTransport{
		addr:    addr,
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (t *gateTransport) Addr() string { return t.addr }
func (t *gateTransport) Send(addr string, payload []byte) error {
	select {
	case t.entered <- struct{}{}:
	default:
	}
	<-t.release
	return nil
}
func (t *gateTransport) SetHandler(func(payload []byte)) {}
func (t *gateTransport) Close() error                    { return nil }

// TestHubPublishContextCancelMidFlight: with the hub's loop wedged
// inside a transport send (a stalled peer), a Publish whose context is
// cancelled returns promptly with ctx.Err() instead of hanging until
// the peer unwedges — the context-aware lifecycle gate.
func TestHubPublishContextCancelMidFlight(t *testing.T) {
	tr := newGateTransport("gate")
	hub, err := NewHub(tr, WithParams(liveParams()), WithTickInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// Root topic: no bootstrap search fires at join (which would walk
	// into the gate before any publish); the gossip fan-out to the
	// group contact is what wedges the loop.
	sub, err := hub.Join(context.Background(), ".", WithGroupContacts("peer"))
	if err != nil {
		t.Fatal(err)
	}

	// First publish: the loop walks into the gated Send and stays
	// there.
	firstDone := make(chan error, 1)
	go func() {
		_, err := sub.Publish(context.Background(), []byte("wedge"))
		firstDone <- err
	}()
	select {
	case <-tr.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("loop never entered the gated send")
	}

	// Second publish cannot be accepted while the loop is wedged; its
	// context cancellation must release it promptly.
	ctx, cancel := context.WithCancel(context.Background())
	secondDone := make(chan error, 1)
	go func() {
		_, err := sub.Publish(ctx, []byte("cancel me"))
		secondDone <- err
	}()
	cancel()
	select {
	case err := <-secondDone:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled publish err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled publish did not return while the loop was wedged")
	}

	// Release the gate: the wedged publish completes normally.
	close(tr.release)
	select {
	case err := <-firstDone:
		if err != nil {
			t.Errorf("wedged publish err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedged publish never completed after release")
	}
	if err := hub.Stop(); err != nil {
		t.Fatal(err)
	}
}

// TestHubStopWithInflightPublishes is the graceful-shutdown ordering
// gate: publishers hammering two subscriptions while the hub stops
// must all return promptly, with a published id or a clean lifecycle
// error — run under -race, this also proves the shutdown path shares
// no unsynchronized state with the publish path.
func TestHubStopWithInflightPublishes(t *testing.T) {
	for round := 0; round < 10; round++ {
		net := NewMemNetwork()
		hub, err := NewHub(net.NewTransport("hub"),
			WithParams(liveParams()), WithTickInterval(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		subA, err := hub.Join(ctx, ".a")
		if err != nil {
			t.Fatal(err)
		}
		subB, err := hub.Join(ctx, ".b")
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		for _, sub := range []*Subscription{subA, subB} {
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(s *Subscription) {
					defer wg.Done()
					for {
						if _, err := s.Publish(ctx, []byte("spin")); err != nil {
							if !errors.Is(err, ErrNotRunning) && !errors.Is(err, core.ErrStopped) {
								t.Errorf("publish error = %v", err)
							}
							return
						}
					}
				}(sub)
			}
		}
		time.Sleep(time.Duration(round%3) * time.Millisecond)
		if err := hub.Stop(); err != nil {
			t.Fatal(err)
		}
		wg.Wait() // hangs here if shutdown can strand a publisher
		for _, sub := range []*Subscription{subA, subB} {
			if _, open := <-sub.Events(); open {
				// Drain until close; a buffered event before the close
				// is fine.
				for range sub.Events() {
				}
			}
		}
	}
}

// TestHubLeaveIsolation: leaving one subscription leaves the other
// subscription's gossip undisturbed — every event published in the
// surviving group after the leave still arrives, counted exactly.
func TestHubLeaveIsolation(t *testing.T) {
	net := NewMemNetwork()
	ctx := context.Background()
	mkHub := func(addr string) *Hub {
		h, err := NewHub(net.NewTransport(addr),
			WithParams(liveParams()), WithTickInterval(10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = h.Stop() })
		return h
	}
	hub := mkHub("hub")
	subA, err := hub.Join(ctx, ".a", WithGroupContacts("peerA"))
	if err != nil {
		t.Fatal(err)
	}
	subB, err := hub.Join(ctx, ".b", WithGroupContacts("peerB"))
	if err != nil {
		t.Fatal(err)
	}

	peerA := mkHub("peerA")
	peerAPub, err := peerA.Join(ctx, ".a", WithGroupContacts("hub"))
	if err != nil {
		t.Fatal(err)
	}
	peerB := mkHub("peerB")
	peerBPub, err := peerB.Join(ctx, ".b", WithGroupContacts("hub"))
	if err != nil {
		t.Fatal(err)
	}

	// Both groups work before the leave.
	if _, err := peerAPub.Publish(ctx, []byte("pre-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := peerBPub.Publish(ctx, []byte("pre-b")); err != nil {
		t.Fatal(err)
	}
	drainTopics(t, subA, 1, ".a")
	drainTopics(t, subB, 1, ".b")

	if err := subA.Leave(ctx); err != nil {
		t.Fatal(err)
	}
	// The left subscription's channel closes; a second leave reports
	// not running.
	if _, open := <-subA.Events(); open {
		t.Error("left subscription still delivering")
	}
	if err := subA.Leave(ctx); !errors.Is(err, ErrNotRunning) {
		t.Errorf("second Leave = %v, want ErrNotRunning", err)
	}
	if _, err := subA.Publish(ctx, nil); !errors.Is(err, ErrNotRunning) {
		t.Errorf("publish after leave = %v, want ErrNotRunning", err)
	}

	// The surviving subscription still receives every event of its
	// group, exactly once each.
	const n = 10
	for i := 0; i < n; i++ {
		if _, err := peerBPub.Publish(ctx, []byte(fmt.Sprintf("post-b%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := drainTopics(t, subB, n, ".b")
	seen := make(map[string]bool, len(got))
	for _, ev := range got {
		if seen[ev.ID] {
			t.Errorf("event %s delivered twice", ev.ID)
		}
		seen[ev.ID] = true
	}
	// The hub's stats show exactly one live subscription.
	st := hub.Stats()
	if len(st.Subscriptions) != 1 || st.Subscriptions[0].Topic != ".b" {
		t.Errorf("Stats().Subscriptions = %+v, want only .b", st.Subscriptions)
	}
}

// TestHubJoinValidation covers the typed join errors.
func TestHubJoinValidation(t *testing.T) {
	net := NewMemNetwork()
	hub, err := NewHub(net.NewTransport("h"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Stop() })
	ctx := context.Background()

	if _, err := hub.Join(ctx, "not-a-topic"); !errors.Is(err, ErrInvalidTopic) {
		t.Errorf("bad topic err = %v, want ErrInvalidTopic", err)
	}
	if _, err := hub.Join(ctx, ".a.b", WithSuperContacts("nope", "x")); !errors.Is(err, ErrInvalidSuperTopic) {
		t.Errorf("bad super topic err = %v, want ErrInvalidSuperTopic", err)
	}
	if _, err := hub.Join(ctx, ".a.b", WithSuperContacts(".zzz", "x")); !errors.Is(err, ErrInvalidSuperTopic) {
		t.Errorf("unrelated super topic err = %v, want ErrInvalidSuperTopic", err)
	}
	if _, err := hub.Join(ctx, ".a"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Join(ctx, ".a"); !errors.Is(err, ErrDuplicateTopic) {
		t.Errorf("duplicate join err = %v, want ErrDuplicateTopic", err)
	}
	// NewHub without a transport fails like NewNode.
	if _, err := NewHub(nil); !errors.Is(err, ErrNoTransport) {
		t.Errorf("nil transport err = %v, want ErrNoTransport", err)
	}
}

// TestHubContextLifecycle: a hub built WithContext stops when the
// context is cancelled, and every subscription's channel closes.
func TestHubContextLifecycle(t *testing.T) {
	net := NewMemNetwork()
	ctx, cancel := context.WithCancel(context.Background())
	hub, err := NewHub(net.NewTransport("h"), WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	sub, err := hub.Join(context.Background(), ".a")
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	select {
	case _, open := <-sub.Events():
		if open {
			t.Error("unexpected event")
		}
	case <-time.After(2 * time.Second):
		t.Error("hub did not stop on context cancel")
	}
	if _, err := sub.Publish(context.Background(), nil); !errors.Is(err, ErrNotRunning) {
		t.Errorf("publish after ctx stop = %v", err)
	}
	// Join on a stopped hub reports not running.
	if _, err := hub.Join(context.Background(), ".b"); !errors.Is(err, ErrNotRunning) {
		t.Errorf("join after stop = %v, want ErrNotRunning", err)
	}
	_ = hub.Stop()
}

// TestHubWriteMetrics: the Prometheus text dump carries the hub-level
// counters and one labeled sample per subscription.
func TestHubWriteMetrics(t *testing.T) {
	net := NewMemNetwork()
	hub, err := NewHub(net.NewTransport("h"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Stop() })
	ctx := context.Background()
	if _, err := hub.Join(ctx, ".news"); err != nil {
		t.Fatal(err)
	}
	if _, err := hub.Join(ctx, ".market"); err != nil {
		t.Fatal(err)
	}
	// Provoke a malformed-frame count through the receive path.
	hub.onRaw([]byte("garbage"))

	var b strings.Builder
	if err := hub.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE damulticast_malformed_frames_total counter",
		"damulticast_malformed_frames_total 1",
		"damulticast_subscriptions 2",
		`damulticast_dropped_deliveries_total{topic=".market"} 0`,
		`damulticast_dropped_deliveries_total{topic=".news"} 0`,
		`damulticast_dropped_newest_total{topic=".news"} 0`,
		`damulticast_dropped_oldest_total{topic=".news"} 0`,
		`damulticast_recovered_events_total{topic=".news"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
	st := hub.Stats()
	if st.MalformedFrames != 1 {
		t.Errorf("MalformedFrames = %d, want 1", st.MalformedFrames)
	}
	if len(st.Subscriptions) != 2 {
		t.Errorf("Subscriptions = %+v", st.Subscriptions)
	}
}
