package damulticast

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"damulticast/internal/core"
	"damulticast/internal/ids"
	"damulticast/internal/wire"
)

// TestDecoderMatchesDecodeMessage: the pooled decoder accepts exactly
// what the allocating decoder accepts and produces a deep-equal
// message for every wire type — the two paths differ only in buffer
// ownership.
func TestDecoderMatchesDecodeMessage(t *testing.T) {
	dec := wire.NewDecoder()
	for _, m := range codecSeedMessages() {
		frame, err := encodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		want, err := decodeMessage(frame)
		if err != nil {
			t.Fatalf("%s: DecodeMessage: %v", m.Type, err)
		}
		got, err := dec.Decode(frame)
		if err != nil {
			t.Fatalf("%s: Decoder.Decode: %v", m.Type, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: pooled decode mismatch:\n  alloc:  %+v\n  pooled: %+v", m.Type, want, got)
		}
	}
}

// TestDecoderRejectsWhatDecodeMessageRejects: truncations, retired
// versions and trailing garbage fail identically on the pooled path.
func TestDecoderRejectsWhatDecodeMessageRejects(t *testing.T) {
	dec := wire.NewDecoder()
	frame, err := encodeMessage(codecSeedMessages()[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := dec.Decode(frame[:cut]); err == nil {
			t.Fatalf("pooled decoder accepted truncation to %d of %d bytes", cut, len(frame))
		}
	}
	for _, version := range []byte{0x01, 0x02, 0x03, 0x04, 0x06, '{'} {
		bad := append([]byte{}, frame...)
		bad[0] = version
		if _, err := dec.Decode(bad); err == nil {
			t.Errorf("pooled decoder accepted version byte %#x", version)
		}
	}
	if _, err := dec.Decode(append(append([]byte{}, frame...), 0)); err == nil {
		t.Error("pooled decoder accepted trailing garbage")
	}
	// And after all that rejection, a valid frame still decodes.
	if _, err := dec.Decode(frame); err != nil {
		t.Fatalf("valid frame after rejections: %v", err)
	}
}

// TestDecoderScratchContract pins the documented lifetime rules: each
// Decode reuses the same Message, and byte fields alias the frame
// buffer instead of copying.
func TestDecoderScratchContract(t *testing.T) {
	dec := wire.NewDecoder()
	frameA, _ := encodeMessage(&core.Message{
		Type: core.MsgEvent, From: "a", FromTopic: ".t", Dest: ".t",
		Event: &core.Event{ID: ids.EventID{Origin: "a", Seq: 1}, Topic: ".t", Payload: []byte("AAAA")},
	})
	frameB, _ := encodeMessage(&core.Message{Type: core.MsgPing, From: "b", FromTopic: ".t", Dest: ".t"})

	m1, err := dec.Decode(frameA)
	if err != nil {
		t.Fatal(err)
	}
	payload := m1.Event.Payload
	// The payload aliases the frame: corrupting the frame shows through
	// (which is why the frame must stay untouched while the message is
	// live, and why the receive path owns its buffers).
	off := bytes.Index(frameA, []byte("AAAA"))
	if off < 0 {
		t.Fatal("payload bytes not found in frame")
	}
	frameA[off] = 'X'
	if string(payload) != "XAAA" {
		t.Errorf("payload = %q: pooled decode copied instead of aliasing", payload)
	}
	m2, err := dec.Decode(frameB)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("Decode returned a fresh message: scratch is not being reused")
	}
	if m2.Event != nil || m2.Type != core.MsgPing {
		t.Errorf("second decode = %+v: scratch from the first leaked through", m2)
	}
}

// batchFrame encodes an n-event EVENT_BATCH frame with distinct
// payloads, the steady-state unit of live batched traffic.
func batchFrame(tb testing.TB, n int) []byte {
	tb.Helper()
	evs := make([]*core.Event, n)
	for i := range evs {
		evs[i] = &core.Event{
			ID:      ids.EventID{Origin: "publisher", Seq: uint64(i + 1)},
			Topic:   ".bench",
			Payload: []byte(fmt.Sprintf("batch-payload-%03d-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx", i)),
		}
	}
	frame, err := encodeMessage(&core.Message{
		Type: core.MsgEventBatch, From: "publisher", FromTopic: ".bench", Dest: ".bench", Events: evs,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return frame
}

// TestDecodePooledAllocs is the decode-side allocation regression gate
// (the receive twin of TestEncodeOnceFanoutAllocs): once the decoder's
// scratch and intern table are warm, decoding a live frame — single
// event or a 16-event batch — costs at most 1 allocation, against ~7
// for the allocating path on even the single-event frame.
func TestDecodePooledAllocs(t *testing.T) {
	dec := wire.NewDecoder()
	single, err := encodeMessage(codecBenchMessage())
	if err != nil {
		t.Fatal(err)
	}
	batch := batchFrame(t, 16)
	for _, frame := range [][]byte{single, batch} { // warm scratch + interns
		if _, err := dec.Decode(frame); err != nil {
			t.Fatal(err)
		}
	}
	for name, frame := range map[string][]byte{"single": single, "batch16": batch} {
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := dec.Decode(frame); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 1 {
			t.Errorf("pooled decode of %s frame: %.1f allocs, want <= 1", name, allocs)
		}
		t.Logf("pooled decode of %s frame: %.1f allocs", name, allocs)
	}
}

// TestPeekDest: the routing prefix peek agrees with the full decode on
// type and dest for every wire type, rejects what the decoder rejects
// at the prefix, and never allocates.
func TestPeekDest(t *testing.T) {
	for _, m := range codecSeedMessages() {
		frame, err := encodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		typ, dest, err := wire.PeekDest(frame)
		if err != nil {
			t.Fatalf("%s: PeekDest: %v", m.Type, err)
		}
		if typ != m.Type || string(dest) != string(m.Dest) {
			t.Errorf("%s: PeekDest = (%v, %q), want (%v, %q)", m.Type, typ, dest, m.Type, m.Dest)
		}
	}
	for _, bad := range [][]byte{
		nil,
		{},
		[]byte("garbage"),
		[]byte(`{"Type":1}`),
		{0x04, 1, 0},         // retired version
		{codecVersion},       // truncated before the type
		{codecVersion, 0},    // unknown type
		{codecVersion, 1, 9}, // dest length past the end
	} {
		if _, _, err := wire.PeekDest(bad); err == nil {
			t.Errorf("PeekDest accepted % x", bad)
		}
	}
	frame, _ := encodeMessage(codecBenchMessage())
	if allocs := testing.AllocsPerRun(200, func() {
		if _, _, err := wire.PeekDest(frame); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("PeekDest allocates %.1f per call, want 0", allocs)
	}
}

// BenchmarkCodecDecodePooled is the steady-state receive path: one
// pooled decoder, one live event frame, zero expected allocations.
func BenchmarkCodecDecodePooled(b *testing.B) {
	frame, err := encodeMessage(codecBenchMessage())
	if err != nil {
		b.Fatal(err)
	}
	dec := wire.NewDecoder()
	if _, err := dec.Decode(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecDecodeBatch16 decodes a 16-event batch frame with the
// pooled decoder — the per-event cost is ~1/16th of a frame's.
func BenchmarkCodecDecodeBatch16(b *testing.B) {
	frame := batchFrame(b, 16)
	dec := wire.NewDecoder()
	if _, err := dec.Decode(frame); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
