package damulticast_test

import (
	"context"
	"fmt"
	"time"

	"damulticast"
)

// ExampleNode shows the minimal publisher/subscriber pair: the
// subscriber is interested in ".news" and receives an event published
// on the subtopic ".news.sports".
func ExampleNode() {
	net := damulticast.NewMemNetwork()

	sub, err := damulticast.NewNode(damulticast.Config{
		ID:        "sub",
		Topic:     ".news",
		Transport: net.NewTransport("sub"),
	})
	if err != nil {
		fmt.Println("new sub:", err)
		return
	}

	// a = z makes every upward link fire — deterministic for the
	// example; production deployments keep the probabilistic default.
	params := damulticast.DefaultParams()
	params.A = float64(params.Z)
	pub, err := damulticast.NewNode(damulticast.Config{
		ID:            "pub",
		Topic:         ".news.sports",
		Transport:     net.NewTransport("pub"),
		Params:        params,
		SuperTopic:    ".news",
		SuperContacts: []string{"sub"},
	})
	if err != nil {
		fmt.Println("new pub:", err)
		return
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sub.Start(ctx); err != nil {
		fmt.Println("start sub:", err)
		return
	}
	if err := pub.Start(ctx); err != nil {
		fmt.Println("start pub:", err)
		return
	}
	defer func() { _ = sub.Stop(); _ = pub.Stop() }()

	if _, err := pub.Publish([]byte("goal!")); err != nil {
		fmt.Println("publish:", err)
		return
	}
	select {
	case ev := <-sub.Events():
		fmt.Printf("received %q on %s\n", ev.Payload, ev.Topic)
	case <-ctx.Done():
		fmt.Println("timeout")
	}
	// Output: received "goal!" on .news.sports
}

// ExampleNewTCPTransport shows wiring two nodes over loopback TCP.
func ExampleNewTCPTransport() {
	ta, err := damulticast.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	tb, err := damulticast.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	sub, err := damulticast.NewNode(damulticast.Config{
		Topic: ".metrics", Transport: ta,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	pub, err := damulticast.NewNode(damulticast.Config{
		Topic: ".metrics", Transport: tb,
		GroupContacts: []string{ta.Addr()},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sub.Start(ctx); err != nil {
		fmt.Println(err)
		return
	}
	if err := pub.Start(ctx); err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = sub.Stop(); _ = pub.Stop() }()

	if _, err := pub.Publish([]byte("cpu=42")); err != nil {
		fmt.Println(err)
		return
	}
	select {
	case ev := <-sub.Events():
		fmt.Printf("%s\n", ev.Payload)
	case <-ctx.Done():
		fmt.Println("timeout")
	}
	// Output: cpu=42
}
