package damulticast_test

import (
	"context"
	"fmt"
	"time"

	"damulticast"
)

// ExampleHub shows the multi-topic API: one hub subscribes to two
// unrelated topics over a single transport endpoint, and a publisher
// in the ".news.sports" subgroup reaches its ".news" subscription
// while the ".market" subscription stays silent.
func ExampleHub() {
	net := damulticast.NewMemNetwork()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	hub, err := damulticast.NewHub(net.NewTransport("hub"))
	if err != nil {
		fmt.Println("new hub:", err)
		return
	}
	defer func() { _ = hub.Stop() }()
	news, err := hub.Join(ctx, ".news")
	if err != nil {
		fmt.Println("join news:", err)
		return
	}
	if _, err := hub.Join(ctx, ".market"); err != nil {
		fmt.Println("join market:", err)
		return
	}

	// a = z makes every upward link fire — deterministic for the
	// example; production deployments keep the probabilistic default.
	params := damulticast.DefaultParams()
	params.A = float64(params.Z)
	pubHub, err := damulticast.NewHub(net.NewTransport("pub"),
		damulticast.WithParams(params))
	if err != nil {
		fmt.Println("new pub:", err)
		return
	}
	defer func() { _ = pubHub.Stop() }()
	sports, err := pubHub.Join(ctx, ".news.sports",
		damulticast.WithSuperContacts(".news", "hub"))
	if err != nil {
		fmt.Println("join sports:", err)
		return
	}

	if _, err := sports.Publish(ctx, []byte("goal!")); err != nil {
		fmt.Println("publish:", err)
		return
	}
	select {
	case ev := <-news.Events():
		fmt.Printf("received %q on %s\n", ev.Payload, ev.Topic)
	case <-ctx.Done():
		fmt.Println("timeout")
	}
	// Output: received "goal!" on .news.sports
}

// ExampleNewTCPTransport shows wiring two hubs over loopback TCP.
func ExampleNewTCPTransport() {
	ta, err := damulticast.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	tb, err := damulticast.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	subHub, err := damulticast.NewHub(ta)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = subHub.Stop() }()
	sub, err := subHub.Join(ctx, ".metrics")
	if err != nil {
		fmt.Println(err)
		return
	}
	pubHub, err := damulticast.NewHub(tb)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer func() { _ = pubHub.Stop() }()
	pub, err := pubHub.Join(ctx, ".metrics",
		damulticast.WithGroupContacts(ta.Addr()))
	if err != nil {
		fmt.Println(err)
		return
	}

	if _, err := pub.Publish(ctx, []byte("cpu=42")); err != nil {
		fmt.Println(err)
		return
	}
	select {
	case ev := <-sub.Events():
		fmt.Printf("%s\n", ev.Payload)
	case <-ctx.Done():
		fmt.Println("timeout")
	}
	// Output: cpu=42
}
