package damulticast

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestTCPTransportSendReceive(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()

	var mu sync.Mutex
	var got [][]byte
	b.SetHandler(func(p []byte) {
		mu.Lock()
		got = append(got, p)
		mu.Unlock()
	})
	if err := a.Send(b.Addr(), []byte("frame-1")); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), []byte("frame-2")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 2
	})
	mu.Lock()
	if string(got[0]) != "frame-1" || string(got[1]) != "frame-2" {
		t.Errorf("frames = %q", got)
	}
	mu.Unlock()
}

func TestTCPTransportConnectionReuse(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(p []byte) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	for i := 0; i < 50; i++ {
		if err := a.Send(b.Addr(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return count == 50
	})
}

func TestTCPTransportSendErrors(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Dialing a dead port fails.
	if err := a.Send("127.0.0.1:1", []byte("x")); err == nil {
		t.Error("send to dead port succeeded")
	}
	// Oversized frame.
	a.MaxFrame = 4
	if err := a.Send("127.0.0.1:1", []byte("toolong")); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("127.0.0.1:1", []byte("x")); !errors.Is(err, ErrTransportClosed) {
		t.Errorf("send after close = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestTCPNodesEndToEnd(t *testing.T) {
	ta, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	sub, err := NewNode(Config{
		Topic:        ".metrics",
		Transport:    ta,
		Params:       liveParams(),
		TickInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub, err := NewNode(Config{
		Topic:         ".metrics",
		Transport:     tb,
		Params:        liveParams(),
		GroupContacts: []string{ta.Addr()},
		TickInterval:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sub.Start(ctx); err != nil {
		t.Fatal(err)
	}
	if err := pub.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sub.Stop(); _ = pub.Stop() })

	id, err := pub.Publish([]byte("cpu=97"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Events():
		if ev.ID != id || string(ev.Payload) != "cpu=97" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event never crossed TCP")
	}
}

// TestFrameTooLargeGuard pins the MaxFrame comparison to int64 space.
// The old guard compared uint32(len(payload)) > MaxFrame, so a payload
// of 4 GiB + n wrapped to n, slipped past the check and wrote a length
// prefix of n — the receiver would then misframe the stream. Payload
// lengths are faked (nobody allocates 4 GiB in a unit test); the guard
// is a pure function of the length.
func TestFrameTooLargeGuard(t *testing.T) {
	const maxFrame = 1 << 20
	tests := []struct {
		n    int64
		want bool
	}{
		{0, false},
		{maxFrame, false},
		{maxFrame + 1, true},
		{1<<32 - 1, true}, // max uint32
		{1 << 32, true},   // wraps a uint32 cast to 0
		{1<<32 + 5, true}, // wraps a uint32 cast to 5 — the old bypass
	}
	for _, tt := range tests {
		if got := frameTooLarge(tt.n, maxFrame); got != tt.want {
			t.Errorf("frameTooLarge(%d, %d) = %v, want %v", tt.n, maxFrame, got, tt.want)
		}
		// Demonstrate the wrap the old comparison suffered: every case
		// the fixed guard rejects must also exceed MaxFrame in uint64
		// space, even when its uint32 truncation does not.
		if tt.want && uint64(tt.n) <= maxFrame {
			t.Errorf("test case %d does not exceed MaxFrame", tt.n)
		}
	}
}

// TestTCPSendRejectsOversizedFrame: the live Send path refuses frames
// over MaxFrame with ErrFrameTooLarge before touching any connection.
func TestTCPSendRejectsOversizedFrame(t *testing.T) {
	tr, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tr.Close() })
	tr.MaxFrame = 16
	if err := tr.Send(tr.Addr(), make([]byte, 17)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized send error = %v, want ErrFrameTooLarge", err)
	}
	if err := tr.Send(tr.Addr(), make([]byte, 16)); err != nil {
		t.Errorf("exact-size send failed: %v", err)
	}
}

// TestTCPSendRetriesAfterPeerRestart: a peer that restarts between
// sends leaves a half-dead cached connection behind; writes to it fail
// (or vanish into the kernel buffer until the RST lands). Send must
// absorb the failure by redialing once, so no Send to a live listener
// ever surfaces an error — without the retry, the first post-restart
// write error would both lose the frame and bubble up as a loss.
func TestTCPSendRetriesAfterPeerRestart(t *testing.T) {
	a, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	a.FlushDelay = -1 // synchronous flush: write errors surface in Send

	b, err := NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	var mu sync.Mutex
	var got []string
	handler := func(p []byte) {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
	}
	b.SetHandler(handler)

	if err := a.Send(addr, []byte("before")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 1
	})

	// Kill the listener and restart it on the same address: a's cached
	// connection is now talking to a closed socket.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := NewTCPTransport(addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	defer func() { _ = b2.Close() }()
	b2.SetHandler(handler)

	// Depending on timing, the first write after the restart may still
	// land in the kernel buffer of the dead connection (silently lost)
	// before the RST poisons it; every subsequent Send then hits the
	// poisoned connection and must transparently redial. The guarantee
	// under test: no Send errors, and a frame gets through promptly.
	deadline := time.Now().Add(3 * time.Second)
	for i := 0; ; i++ {
		if err := a.Send(addr, []byte("after")); err != nil {
			t.Fatalf("Send %d after peer restart: %v", i, err)
		}
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no frame delivered to the restarted peer")
		}
		time.Sleep(10 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[len(got)-1] != "after" {
		t.Errorf("restarted peer received %q", got[len(got)-1])
	}
}
