// Newsroom: a three-level topic hierarchy —
//
//	.news
//	├── .news.sports
//	│   └── .news.sports.football
//	└── .news.politics
//
// with a group of nodes per topic. An event published on
// .news.sports.football is delivered to every football, sports and
// news subscriber — and to NO politics subscriber (the paper's
// zero-parasite property). The demo prints the delivery matrix.
//
//	go run ./examples/newsroom
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"damulticast"
)

const groupSize = 4

type group struct {
	topic string
	nodes []*damulticast.Node
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := damulticast.NewMemNetwork()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	topics := []string{".news", ".news.sports", ".news.politics", ".news.sports.football"}
	superOf := map[string]string{
		".news.sports":          ".news",
		".news.politics":        ".news",
		".news.sports.football": ".news.sports",
	}

	// Deterministic demo parameters: every upward link fires.
	params := damulticast.DefaultParams()
	params.G = 1 << 20
	params.A = float64(params.Z)

	names := func(tp string) []string {
		out := make([]string, groupSize)
		for i := range out {
			out[i] = fmt.Sprintf("%s/%d", tp, i)
		}
		return out
	}

	groups := map[string]*group{}
	for _, tp := range topics {
		g := &group{topic: tp}
		ids := names(tp)
		for i, id := range ids {
			others := append(append([]string{}, ids[:i]...), ids[i+1:]...)
			cfg := damulticast.Config{
				ID:            id,
				Topic:         tp,
				Transport:     net.NewTransport(id),
				Params:        params,
				GroupContacts: others,
				TickInterval:  50 * time.Millisecond,
			}
			if sup, ok := superOf[tp]; ok {
				cfg.SuperTopic = sup
				cfg.SuperContacts = names(sup)
			}
			n, err := damulticast.NewNode(cfg)
			if err != nil {
				return err
			}
			if err := n.Start(ctx); err != nil {
				return err
			}
			defer func(n *damulticast.Node) { _ = n.Stop() }(n)
			g.nodes = append(g.nodes, n)
		}
		groups[tp] = g
	}

	// Collect deliveries per group.
	var mu sync.Mutex
	received := map[string]int{}
	var wg sync.WaitGroup
	for _, g := range groups {
		for _, n := range g.nodes {
			wg.Add(1)
			go func(tp string, n *damulticast.Node) {
				defer wg.Done()
				for {
					select {
					case ev, ok := <-n.Events():
						if !ok {
							return
						}
						mu.Lock()
						received[tp]++
						mu.Unlock()
						_ = ev
					case <-ctx.Done():
						return
					}
				}
			}(g.topic, n)
		}
	}

	id, err := groups[".news.sports.football"].nodes[0].Publish(
		[]byte("89' — decisive goal in the derby"))
	if err != nil {
		return err
	}
	fmt.Printf("published %s on .news.sports.football\n\n", id)

	// Let gossip settle, then report.
	time.Sleep(2 * time.Second)
	cancel()
	wg.Wait()

	fmt.Println("deliveries per group (publisher does not self-deliver):")
	sorted := make([]string, 0, len(topics))
	sorted = append(sorted, topics...)
	sort.Strings(sorted)
	ok := true
	for _, tp := range sorted {
		mu.Lock()
		got := received[tp]
		mu.Unlock()
		want := groupSize
		if tp == ".news.sports.football" {
			want = groupSize - 1
		}
		if tp == ".news.politics" {
			want = 0
		}
		status := "OK"
		if got != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
			// Politics receiving anything is a protocol violation; the
			// interested groups missing some deliveries can happen on
			// unlucky gossip draws but should be rare at these sizes.
			if tp == ".news.politics" {
				ok = false
			}
		}
		fmt.Printf("  %-24s %d/%d  %s\n", tp, got, groupSize, status)
	}
	if !ok {
		return fmt.Errorf("parasite delivery detected — protocol invariant broken")
	}
	fmt.Println("\nno parasite deliveries: politics subscribers received nothing.")
	return nil
}
